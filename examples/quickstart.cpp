// Quickstart: run one experiment under each buffer mechanism and print the
// §III.B metrics side by side.
//
//   ./quickstart [--rate 50] [--flows 200] [--packets 1] [--buffer 256]
//
// This is the smallest end-to-end use of the library: configure an
// `ExperimentConfig`, call `run_experiment`, read the result.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;

  const util::CliFlags flags(argc, argv, {"rate", "flows", "packets", "buffer", "verbose"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n"
              << "usage: quickstart [--rate MBPS] [--flows N] [--packets N] [--buffer UNITS]\n";
    return 1;
  }
  if (flags.get_bool("verbose", false)) util::set_log_level(util::LogLevel::Debug);

  core::ExperimentConfig base;
  base.rate_mbps = flags.get_double("rate", 50.0);
  base.n_flows = static_cast<std::uint64_t>(flags.get_int("flows", 200));
  base.packets_per_flow = static_cast<std::uint32_t>(flags.get_int("packets", 1));
  base.buffer_capacity = static_cast<std::size_t>(flags.get_int("buffer", 256));

  util::TableWriter table("quickstart: one run per mechanism, " +
                          util::format_double(base.rate_mbps, 0) + " Mbps, " +
                          std::to_string(base.n_flows) + " flows x " +
                          std::to_string(base.packets_per_flow) + " packets");
  table.set_columns({"mechanism", "up Mbps", "down Mbps", "sw cpu %", "ctrl cpu %", "setup ms",
                     "ctrl ms", "pkt_ins", "buf max", "delivered"});

  const struct {
    sw::BufferMode mode;
    const char* label;
  } mechanisms[] = {
      {sw::BufferMode::NoBuffer, "no-buffer"},
      {sw::BufferMode::PacketGranularity, "packet-granularity"},
      {sw::BufferMode::FlowGranularity, "flow-granularity"},
  };

  for (const auto& m : mechanisms) {
    core::ExperimentConfig config = base;
    config.mode = m.mode;
    const core::ExperimentResult r = core::run_experiment(config);
    table.add_row({m.label, util::format_double(r.to_controller_mbps, 3),
                   util::format_double(r.to_switch_mbps, 3),
                   util::format_double(r.switch_cpu_pct, 1),
                   util::format_double(r.controller_cpu_pct, 1),
                   util::format_double(r.setup_ms.mean(), 3),
                   util::format_double(r.controller_ms.mean(), 3),
                   std::to_string(r.pkt_ins_sent), util::format_double(r.buffer_max_units, 0),
                   std::to_string(r.packets_delivered) + "/" + std::to_string(r.packets_sent)});
    if (!r.drained) {
      std::cerr << "warning: " << m.label << " did not deliver every packet\n";
    }
  }
  table.print(std::cout);
  return 0;
}

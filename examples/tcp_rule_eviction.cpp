// TCP rule eviction (§VI.B): why the buffer also helps TCP.
//
// A TCP connection sets up with small handshake packets (its rule installs
// cheaply), transfers data, then goes quiet. During the quiet period the
// size-limited flow table evicts its rule to make room for other flows —
// but the connection is NOT terminated. When the transfer resumes with a
// burst of full-size segments, every segment is a miss-match packet again.
//
// This example drives exactly that scenario against a deliberately tiny
// flow table and reports what the resumption burst costs under each buffer
// mechanism.
//
//   ./tcp_rule_eviction [--table 8] [--burst 16]
#include <iostream>

#include "core/testbed.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using namespace sdnbuf;

struct Result {
  std::uint64_t pkt_ins_handshake = 0;
  std::uint64_t pkt_ins_resume = 0;
  std::uint64_t control_bytes_resume = 0;
  std::uint64_t evictions = 0;
  std::uint64_t delivered = 0;
  double resume_latency_ms = 0.0;  // first resumed segment: send -> delivery
};

Result run_scenario(sw::BufferMode mode, std::size_t table_capacity, std::uint32_t burst) {
  core::TestbedConfig config;
  config.switch_config.buffer_mode = mode;
  config.switch_config.flow_table_capacity = table_capacity;
  core::Testbed bed{config};
  bed.warm_up();
  Result r;

  const auto tcp = [&bed](std::uint8_t flags, std::uint32_t frame, std::uint32_t seq,
                          bool from_host1) {
    net::Packet p =
        from_host1
            ? net::make_tcp_packet(bed.host1_mac(), bed.host2_mac(), bed.host1_ip(),
                                   bed.host2_ip(), 45000, 80, flags, frame)
            : net::make_tcp_packet(bed.host2_mac(), bed.host1_mac(), bed.host2_ip(),
                                   bed.host1_ip(), 80, 45000, flags, frame);
    p.flow_id = from_host1 ? 1 : 2;  // one id per direction
    p.seq_in_flow = seq;
    p.created_at = bed.sim().now();
    return p;
  };
  auto settle = [&bed]() { bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(20)); };

  // --- Three-way handshake: SYN, SYN|ACK, ACK (small frames). ---
  bed.inject_from_host1(tcp(net::kTcpSyn, 74, 0, true));
  settle();
  bed.inject_from_host2(tcp(net::kTcpSyn | net::kTcpAck, 74, 0, false));
  settle();
  bed.inject_from_host1(tcp(net::kTcpAck, 66, 1, true));
  settle();
  r.pkt_ins_handshake = bed.ovs().counters().pkt_ins_sent;

  // --- Initial data transfer: the rule is hot, everything forwards. ---
  for (std::uint32_t i = 0; i < 8; ++i) {
    bed.inject_from_host1(tcp(net::kTcpAck | net::kTcpPsh, 1000, 2 + i, true));
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(1));
  }
  settle();

  // --- Quiet period: other flows churn through the tiny flow table and
  //     evict the TCP rule (the connection stays up). ---
  for (std::uint32_t f = 0; f < 4 * table_capacity; ++f) {
    net::Packet p = net::make_udp_packet(bed.host1_mac(), bed.host2_mac(),
                                         net::Ipv4Address{0x0a016400u + f}, bed.host2_ip(),
                                         static_cast<std::uint16_t>(30000 + f), 9, 200);
    p.flow_id = metrics::kUntrackedFlow;
    bed.inject_from_host1(p);
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(2));
  }
  settle();
  r.evictions = bed.ovs().flow_table().evictions();

  // --- Resumption burst: full-size segments, rule gone -> misses again. ---
  const std::uint64_t pkt_ins_before = bed.ovs().counters().pkt_ins_sent;
  const std::uint64_t bytes_before = bed.to_controller_link().tap().bytes();
  const sim::SimTime resume_start = bed.sim().now();
  for (std::uint32_t i = 0; i < burst; ++i) {
    net::Packet p = tcp(net::kTcpAck | net::kTcpPsh, 1000, 100 + i, true);
    bed.sim().schedule_at(resume_start + sim::SimTime::microseconds(84 * i),
                          [&bed, p]() mutable {
                            p.created_at = bed.sim().now();
                            bed.inject_from_host1(p);
                          });
  }
  bed.sim().run_until(bed.sim().now() + sim::SimTime::seconds(1));
  bed.ovs().stop();
  bed.sim().run();

  r.pkt_ins_resume = bed.ovs().counters().pkt_ins_sent - pkt_ins_before;
  r.control_bytes_resume = bed.to_controller_link().tap().bytes() - bytes_before;
  r.delivered = bed.sink2().packets_received();
  const auto* rec = bed.recorder().record(1);
  if (rec != nullptr && rec->last_departure) {
    r.resume_latency_ms = (*rec->last_departure - resume_start).ms();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliFlags flags(argc, argv, {"table", "burst"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\nusage: tcp_rule_eviction [--table N] [--burst N]\n";
    return 1;
  }
  const auto table_capacity = static_cast<std::size_t>(flags.get_int("table", 8));
  const auto burst = static_cast<std::uint32_t>(flags.get_int("burst", 16));

  util::TableWriter table("TCP rule eviction: " + std::to_string(table_capacity) +
                          "-entry flow table, " + std::to_string(burst) +
                          "-segment resumption burst");
  table.set_columns({"mechanism", "handshake pkt_ins", "rule evictions", "resume pkt_ins",
                     "resume ctrl bytes", "burst done (ms)"});
  const struct {
    sw::BufferMode mode;
    const char* label;
  } mechanisms[] = {
      {sw::BufferMode::NoBuffer, "no-buffer"},
      {sw::BufferMode::PacketGranularity, "packet-granularity"},
      {sw::BufferMode::FlowGranularity, "flow-granularity"},
  };
  for (const auto& m : mechanisms) {
    const Result r = run_scenario(m.mode, table_capacity, burst);
    table.add_row({m.label, std::to_string(r.pkt_ins_handshake), std::to_string(r.evictions),
                   std::to_string(r.pkt_ins_resume), std::to_string(r.control_bytes_resume),
                   util::format_double(r.resume_latency_ms, 3)});
  }
  table.print(std::cout);
  std::cout << "\nAfter eviction the resumed TCP transfer behaves like a brand-new flow:\n"
               "the flow-granularity buffer absorbs the whole burst behind one request\n"
               "(§VI.B: \"rules may be kicked out ... but the connections are not\n"
               "terminated; buffer is also useful for such TCP connections\").\n";
  return 0;
}

// Algorithm walkthrough: a narrated, step-by-step trace of the
// flow-granularity buffer mechanism (Algorithms 1 and 2 of the paper).
//
// A scripted controller replaces the real one so each protocol step can be
// annotated as it happens: buffering the first miss-match packet, silent
// buffering of the followers, the single packet_in, the timeout re-request,
// and the whole-flow release triggered by one packet_out.
//
//   ./mechanism_walkthrough
#include <iomanip>
#include <iostream>
#include <memory>

#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "switchd/switch.hpp"

namespace {

using namespace sdnbuf;

class Narrator {
 public:
  explicit Narrator(sim::Simulator& sim) : sim_(sim) {}
  void say(const std::string& what) const {
    std::cout << "  t=" << std::setw(9) << sim_.now().to_string() << "  " << what << '\n';
  }

 private:
  sim::Simulator& sim_;
};

net::Packet flow_packet(std::uint32_t seq) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address::from_octets(10, 1, 0, 1),
                                net::Ipv4Address::from_octets(10, 2, 0, 1), 10000, 9, 1000);
  p.flow_id = 1;
  p.seq_in_flow = seq;
  return p;
}

}  // namespace

int main() {
  sim::Simulator sim;
  Narrator narrator{sim};
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link h1{sim, "h1", 100e6, sim::SimTime::microseconds(20)};
  net::Link h2{sim, "h2", 100e6, sim::SimTime::microseconds(20)};
  of::Channel channel{sim, control.forward(), control.reverse()};

  sw::SwitchConfig config;
  config.buffer_mode = sw::BufferMode::FlowGranularity;
  config.costs.flow_resend_timeout = sim::SimTime::milliseconds(3);
  sw::Switch ovs{sim, config, 7};
  ovs.attach_port(1, h1, [&](const net::Packet& p) {
    narrator.say("host1 received packet seq=" + std::to_string(p.seq_in_flow));
  });
  ovs.attach_port(2, h2, [&](const net::Packet& p) {
    narrator.say("host2 received packet seq=" + std::to_string(p.seq_in_flow) +
                 "  (forwarded out of the buffer, in order)");
  });
  ovs.connect(channel);

  // Scripted controller: narrate each packet_in; deliberately ignore the
  // first one so the timeout re-request (Algorithm 1, lines 12-13) fires,
  // then answer the second with Algorithm 2's flow_mod + packet_out pair.
  int seen = 0;
  channel.set_controller_handler([&](const of::OfMessage& msg, std::size_t wire_bytes) {
    const auto* pi = std::get_if<of::PacketIn>(&msg);
    if (pi == nullptr) return;
    ++seen;
    const bool resend = pi->reason == of::PacketInReason::FlowResend;
    narrator.say(std::string("controller got packet_in #") + std::to_string(seen) +
                 (resend ? " (reason: FLOW RESEND after timeout)" : " (reason: no match)") +
                 ", buffer_id=" + std::to_string(pi->buffer_id) + ", " +
                 std::to_string(pi->data.size()) + "-byte capture, " +
                 std::to_string(wire_bytes) + " B on the wire");
    if (seen == 1) {
      narrator.say("controller stays SILENT to demonstrate the re-request timeout ...");
      return;
    }
    const auto parsed = net::Packet::parse(pi->data, pi->total_len);
    narrator.say("controller decides: install exact rule, then release flow via packet_out");
    of::FlowMod fm;
    fm.xid = pi->xid;
    fm.match = of::Match::exact_from(*parsed, pi->in_port);
    fm.priority = 100;
    fm.actions = of::output_to(2);
    channel.send_from_controller(fm);  // Algorithm 2, line 1
    of::PacketOut po;
    po.xid = pi->xid;
    po.buffer_id = pi->buffer_id;  // Algorithm 2, line 2
    po.in_port = pi->in_port;
    po.actions = of::output_to(2);  // Algorithm 2, line 3 (out_port)
    channel.send_from_controller(po);
  });

  std::cout << "== Flow-granularity buffer mechanism walkthrough (Algorithms 1-2) ==\n\n";
  std::cout << "Phase 1: a new 4-packet flow arrives; only packet 0 may trigger a request.\n";
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    sim.schedule(sim::SimTime::microseconds(80 * seq), [&ovs, &narrator, seq]() {
      narrator.say("packet seq=" + std::to_string(seq) +
                   " arrives at the switch -> table miss -> " +
                   (seq == 0 ? "buffer + create buffer_id + packet_in (Alg.1 l.7-9)"
                             : "buffered silently under the shared buffer_id (Alg.1 l.10-11)"));
      ovs.receive(1, flow_packet(seq));
    });
  }
  sim.run_until(sim::SimTime::milliseconds(2));
  const std::size_t buffered = ovs.flow_buffer()->packets_buffered();
  std::cout << "\nPhase 2: " << buffered << " packets sit in the buffer under one buffer_id; "
            << "the response timeout (" << config.costs.flow_resend_timeout.to_string()
            << ") expires and the switch asks again (Alg.1 l.12-13).\n"
            << "Phase 3: flow_mod installs the rule; ONE packet_out releases the whole flow "
            << "in order (Alg.2 l.4-9).\n";
  sim.run_until(sim::SimTime::milliseconds(6));
  ovs.stop();
  sim.run();

  std::cout << "\nFinal state: pkt_ins sent=" << ovs.counters().pkt_ins_sent
            << " (of which resends=" << ovs.counters().resend_pkt_ins
            << "), packets forwarded=" << ovs.counters().packets_forwarded
            << ", buffer units in use=" << ovs.buffer_units_in_use() << "\n";
  std::cout << "A packet-granularity switch would have sent 4 packet_ins for this flow;\n"
               "the flow-granularity mechanism sent 1 (+1 only because the controller\n"
               "ignored the first request on purpose).\n";
  return 0;
}

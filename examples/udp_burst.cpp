// UDP burst (§VI.A): a connectionless sender suddenly emits a burst of
// packets belonging to one brand-new flow — no handshake warns the switch.
//
// Without a buffer every packet of the burst becomes a full-frame packet_in;
// with the default buffer each still costs a (small) request; with the
// flow-granularity buffer the whole burst costs ONE request and is released
// in order by one packet_out.
//
//   ./udp_burst [--packets 32] [--rate 95]
#include <iostream>

#include "core/testbed.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using namespace sdnbuf;

struct BurstResult {
  std::uint64_t pkt_ins = 0;
  std::uint64_t control_bytes_up = 0;
  std::uint64_t control_bytes_down = 0;
  std::uint64_t delivered = 0;
  double first_delivery_ms = 0.0;
  double last_delivery_ms = 0.0;
  bool in_order = true;
};

BurstResult run_burst(sw::BufferMode mode, std::uint32_t packets, double rate_mbps) {
  core::TestbedConfig config;
  config.switch_config.buffer_mode = mode;
  config.switch_config.buffer_capacity = 256;
  core::Testbed bed{config};
  bed.warm_up();

  // One flow, `packets` back-to-back frames at the given rate.
  const sim::SimTime gap = sim::transmission_time(1000, rate_mbps * 1e6);
  const sim::SimTime start = bed.sim().now();
  for (std::uint32_t i = 0; i < packets; ++i) {
    net::Packet p = net::make_udp_packet(bed.host1_mac(), bed.host2_mac(),
                                         net::Ipv4Address::from_octets(10, 1, 7, 7),
                                         bed.host2_ip(), 20000, 9, 1000);
    p.flow_id = 1;
    p.seq_in_flow = i;
    p.created_at = start + gap.scaled(i);
    bed.sim().schedule_at(p.created_at, [&bed, p]() { bed.inject_from_host1(p); });
  }
  bed.sim().run_until(bed.sim().now() + sim::SimTime::seconds(2));
  bed.ovs().stop();
  bed.sim().run();

  BurstResult r;
  r.pkt_ins = bed.ovs().counters().pkt_ins_sent;
  r.control_bytes_up = bed.to_controller_link().tap().bytes();
  r.control_bytes_down = bed.to_switch_link().tap().bytes();
  r.delivered = bed.sink2().packets_received();
  const auto* rec = bed.recorder().record(1);
  if (rec != nullptr && rec->first_departure && rec->last_departure) {
    r.first_delivery_ms = (*rec->first_departure - start).ms();
    r.last_delivery_ms = (*rec->last_departure - start).ms();
  }
  // In-order check: the sink saw every sequence number exactly once; order
  // is implied by FIFO links if no packet overtook another inside the
  // switch, which the flow-granularity release guarantees.
  for (std::uint32_t i = 0; i < packets; ++i) {
    if (bed.sink2().flow_packets(1) != packets) r.in_order = false;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliFlags flags(argc, argv, {"packets", "rate"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\nusage: udp_burst [--packets N] [--rate MBPS]\n";
    return 1;
  }
  const auto packets = static_cast<std::uint32_t>(flags.get_int("packets", 32));
  const double rate = flags.get_double("rate", 95.0);

  util::TableWriter table("UDP burst: one new flow, " + std::to_string(packets) +
                          " packets at " + util::format_double(rate, 0) + " Mbps");
  table.set_columns({"mechanism", "pkt_ins", "ctrl bytes up", "ctrl bytes down", "delivered",
                     "first out (ms)", "last out (ms)"});
  const struct {
    sw::BufferMode mode;
    const char* label;
  } mechanisms[] = {
      {sw::BufferMode::NoBuffer, "no-buffer"},
      {sw::BufferMode::PacketGranularity, "packet-granularity"},
      {sw::BufferMode::FlowGranularity, "flow-granularity"},
  };
  for (const auto& m : mechanisms) {
    const BurstResult r = run_burst(m.mode, packets, rate);
    table.add_row({m.label, std::to_string(r.pkt_ins), std::to_string(r.control_bytes_up),
                   std::to_string(r.control_bytes_down), std::to_string(r.delivered),
                   util::format_double(r.first_delivery_ms, 3),
                   util::format_double(r.last_delivery_ms, 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe flow-granularity buffer answers the whole burst with a single request\n"
               "(§VI.A: \"for an UDP connection, one communication end may suddenly send\n"
               "massive packets ... in which case, buffer becomes inevitable\").\n";
  return 0;
}

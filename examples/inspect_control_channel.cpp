// Control-channel inspection: attach the capture (the tcpdump stand-in) to
// a live testbed, run a tiny workload under the flow-granularity buffer,
// and dump the dissected message trace — the debugging workflow for anyone
// modifying a buffer mechanism.
//
//   ./inspect_control_channel [--flows 3] [--packets 4] [--filter packet_in]
#include <iostream>

#include "core/testbed.hpp"
#include "host/traffic_gen.hpp"
#include "openflow/capture.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const util::CliFlags flags(argc, argv, {"flows", "packets", "filter", "mode"});
  if (!flags.ok()) {
    std::cerr << flags.error()
              << "\nusage: inspect_control_channel [--flows N] [--packets N]"
                 " [--filter TYPE] [--mode no-buffer|packet|flow]\n";
    return 1;
  }
  const auto n_flows = static_cast<std::uint64_t>(flags.get_int("flows", 3));
  const auto packets = static_cast<std::uint32_t>(flags.get_int("packets", 4));
  const std::string filter = flags.get_string("filter", "");
  const std::string mode_name = flags.get_string("mode", "flow");

  core::TestbedConfig config;
  config.switch_config.buffer_mode = mode_name == "no-buffer"
                                         ? sw::BufferMode::NoBuffer
                                     : mode_name == "packet"
                                         ? sw::BufferMode::PacketGranularity
                                         : sw::BufferMode::FlowGranularity;
  core::Testbed bed{config};
  of::ChannelCapture capture;
  capture.attach(bed.channel());
  bed.warm_up();
  capture.clear();  // keep only the measured workload in the trace

  host::TrafficConfig traffic;
  traffic.rate_mbps = 95.0;
  traffic.n_flows = n_flows;
  traffic.packets_per_flow = packets;
  traffic.order = host::EmissionOrder::CrossSequence;
  traffic.batch_size = static_cast<std::uint32_t>(n_flows);
  traffic.src_mac = bed.host1_mac();
  traffic.dst_mac = bed.host2_mac();
  traffic.src_ip_base = bed.host1_ip();
  traffic.dst_ip = bed.host2_ip();
  host::TrafficGenerator gen{bed.sim(), traffic, 7,
                             [&bed](const net::Packet& p) { bed.inject_from_host1(p); }};
  gen.start();
  bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(200));
  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();

  std::cout << "== control-channel capture: " << sw::buffer_mode_name(config.switch_config.buffer_mode)
            << ", " << n_flows << " flows x " << packets << " packets ==\n";
  capture.dump(std::cout, filter);
  std::cout << "\ntotals: " << capture.total_messages(of::Direction::ToController)
            << " msgs / " << capture.total_bytes(of::Direction::ToController)
            << " B up,  " << capture.total_messages(of::Direction::ToSwitch) << " msgs / "
            << capture.total_bytes(of::Direction::ToSwitch) << " B down;  delivered "
            << bed.sink2().packets_received() << '/' << gen.total_packets() << " packets\n";
  return 0;
}

// Simulation-core performance benchmark — the repo's perf trajectory.
//
// Three layers, mirroring the performance engine (DESIGN.md §9):
//
//   scheduler   events/sec on a scheduler-only workload (self-rescheduling
//               timer chain plus a cancelled victim per tick, so slot reuse
//               and tombstone handling are both on the clock)
//   e1_run      packets/sec through the full reactive path on a standard E1
//               run (1000 single-packet UDP flows at 50 Mbps, buffer-256)
//   sweep       wall-clock of a repeated E1 sweep at --jobs 1 vs --jobs N,
//               with the bitwise determinism contract checked on the spot
//
// Results go to stdout and to a JSON file (default BENCH_simcore.json in
// the current directory — run from the repo root to seed the trajectory).
// CI runs `--quick` and uploads the JSON as an artifact so regressions in
// events/sec, packets/sec, or parallel speedup are visible per commit.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using sdnbuf::sim::EventHandle;
using sdnbuf::sim::Simulator;
using sdnbuf::sim::SimTime;
namespace core = sdnbuf::core;
namespace sw = sdnbuf::sw;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Scheduler-only workload. Each tick cancels the previous victim timer,
// schedules a fresh one, and reschedules itself: 2 schedules + 1 cancel per
// tick, all through pooled slots. Captures fit the EventFn inline buffer.
struct Tick {
  Simulator* sim;
  std::uint64_t* remaining;
  EventHandle* victim;
  void operator()() const {
    if (victim->pending()) victim->cancel();
    *victim = sim->schedule(SimTime::milliseconds(10), []() {});
    if (--*remaining > 0) sim->schedule(SimTime::microseconds(1), Tick{*this});
  }
};

struct SchedulerScore {
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

SchedulerScore bench_scheduler(std::uint64_t ticks) {
  Simulator sim;
  std::uint64_t remaining = ticks;
  EventHandle victim;
  sim.schedule(SimTime::zero(), Tick{&sim, &remaining, &victim});
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  SchedulerScore score;
  score.wall_s = seconds_since(t0);
  score.executed = sim.executed_events();
  score.cancelled = ticks - 1;  // every victim but the last is cancelled
  score.events_per_sec = static_cast<double>(score.executed) / score.wall_s;
  return score;
}

core::ExperimentConfig e1_config() {
  core::ExperimentConfig config;
  config.mode = sw::BufferMode::PacketGranularity;
  config.buffer_capacity = 256;
  config.rate_mbps = 50.0;
  config.frame_size = 1000;
  config.n_flows = 1000;
  config.packets_per_flow = 1;
  config.seed = 1;
  return config;
}

struct E1Score {
  std::uint64_t runs = 0;
  std::uint64_t packets = 0;
  double wall_s = 0.0;
  double packets_per_sec = 0.0;
};

E1Score bench_e1(int runs) {
  E1Score score;
  score.runs = static_cast<std::uint64_t>(runs);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) {
    core::ExperimentConfig config = e1_config();
    config.seed = static_cast<std::uint64_t>(i + 1);
    const core::ExperimentResult r = core::run_experiment(config);
    score.packets += r.packets_delivered;
    // run_experiment tears the testbed down, so count what the workload
    // pushed through: every delivered packet crossed the full reactive
    // path (miss -> packet_in -> flow_mod/packet_out -> forward).
  }
  score.wall_s = seconds_since(t0);
  score.packets_per_sec = static_cast<double>(score.packets) / score.wall_s;
  return score;
}

struct SweepScore {
  std::size_t rates = 0;
  int reps = 0;
  unsigned jobs = 1;
  double sequential_s = 0.0;
  double parallel_s = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

SweepScore bench_sweep(bool quick, unsigned jobs) {
  core::SweepConfig sweep;
  sweep.base = e1_config();
  sweep.rates_mbps = quick ? std::vector<double>{5, 50} : std::vector<double>{5, 50, 100};
  sweep.repetitions = quick ? 4 : 20;

  SweepScore score;
  score.rates = sweep.rates_mbps.size();
  score.reps = sweep.repetitions;
  score.jobs = jobs;

  sweep.jobs = 1;
  auto t0 = std::chrono::steady_clock::now();
  const core::SweepResult sequential = core::run_sweep(sweep, "e1");
  score.sequential_s = seconds_since(t0);

  sweep.jobs = static_cast<int>(jobs);
  t0 = std::chrono::steady_clock::now();
  const core::SweepResult parallel = core::run_sweep(sweep, "e1");
  score.parallel_s = seconds_since(t0);

  score.speedup = score.sequential_s / score.parallel_s;
  std::ostringstream seq_csv;
  std::ostringstream par_csv;
  core::write_csv(sequential, seq_csv);
  core::write_csv(parallel, par_csv);
  score.identical = core::bitwise_equal(sequential, parallel) && seq_csv.str() == par_csv.str();
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  const sdnbuf::util::CliFlags flags(argc, argv, {"quick", "jobs", "out", "e1-runs", "ticks"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n"
              << "usage: " << argv[0] << " [--quick] [--jobs N] [--out PATH]\n";
    return 1;
  }
  const bool quick = flags.get_bool("quick", false);
  const unsigned jobs = static_cast<unsigned>(flags.get_int(
      "jobs", static_cast<long long>(sdnbuf::util::ThreadPool::default_parallelism())));
  const std::string out_path = flags.get_string("out", "BENCH_simcore.json");
  const auto ticks =
      static_cast<std::uint64_t>(flags.get_int("ticks", quick ? 300'000 : 2'000'000));
  const int e1_runs = static_cast<int>(flags.get_int("e1-runs", quick ? 1 : 3));

  std::printf("bench_simcore (%s, jobs=%u)\n", quick ? "quick" : "full", jobs);

  const SchedulerScore sched = bench_scheduler(ticks);
  std::printf("scheduler : %llu events (%llu cancels) in %.3f s -> %.0f events/sec\n",
              static_cast<unsigned long long>(sched.executed),
              static_cast<unsigned long long>(sched.cancelled), sched.wall_s,
              sched.events_per_sec);

  const E1Score e1 = bench_e1(e1_runs);
  std::printf("e1_run    : %llu packets over %llu runs in %.3f s -> %.0f packets/sec\n",
              static_cast<unsigned long long>(e1.packets),
              static_cast<unsigned long long>(e1.runs), e1.wall_s, e1.packets_per_sec);

  const SweepScore sweep = bench_sweep(quick, jobs);
  std::printf(
      "sweep     : %zu rates x %d reps  jobs=1 %.3f s  jobs=%u %.3f s  speedup %.2fx  %s\n",
      sweep.rates, sweep.reps, sweep.sequential_s, sweep.jobs, sweep.parallel_s, sweep.speedup,
      sweep.identical ? "bit-identical" : "DIVERGED");

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"simcore\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"scheduler\": {\n"
      << "    \"executed_events\": " << sched.executed << ",\n"
      << "    \"cancelled_events\": " << sched.cancelled << ",\n"
      << "    \"wall_s\": " << sched.wall_s << ",\n"
      << "    \"events_per_sec\": " << sched.events_per_sec << "\n"
      << "  },\n"
      << "  \"e1_run\": {\n"
      << "    \"runs\": " << e1.runs << ",\n"
      << "    \"packets\": " << e1.packets << ",\n"
      << "    \"wall_s\": " << e1.wall_s << ",\n"
      << "    \"packets_per_sec\": " << e1.packets_per_sec << "\n"
      << "  },\n"
      << "  \"sweep\": {\n"
      << "    \"rates\": " << sweep.rates << ",\n"
      << "    \"repetitions\": " << sweep.reps << ",\n"
      << "    \"jobs\": " << sweep.jobs << ",\n"
      << "    \"sequential_s\": " << sweep.sequential_s << ",\n"
      << "    \"parallel_s\": " << sweep.parallel_s << ",\n"
      << "    \"speedup\": " << sweep.speedup << ",\n"
      << "    \"identical\": " << (sweep.identical ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return sweep.identical ? 0 : 1;
}

// Simulation-core performance benchmark — the repo's perf trajectory.
//
// Five stages, mirroring the performance engine (DESIGN.md §9) and the
// observability overhead contract (DESIGN.md §10.5):
//
//   scheduler   events/sec on a scheduler-only workload (self-rescheduling
//               timer chain plus a cancelled victim per tick, so slot reuse
//               and tombstone handling are both on the clock)
//   e1_run      packets/sec through the full reactive path on a standard E1
//               run (1000 single-packet UDP flows at 50 Mbps, buffer-256)
//   e1_obs      the obs overhead gate: interleaved obs-off / obs-on E1 runs
//               (metrics + tracing at default 1-in-16 sampling), comparing
//               minimum per-run wall times — must stay ≤5%
//   e1_prof     same, with the event-loop profiler added (opt-in layer,
//               ~20% by design: two steady_clock reads per event)
//   sweep       wall-clock of a repeated E1 sweep at --jobs 1 vs --jobs N,
//               with the bitwise determinism contract checked on the spot
//               (skipped under --no-sweep, e.g. in the sanitizer pass)
//   shard_scaling  sequential vs sharded-engine wall-clock on a fat-tree
//               permutation workload (k=4 quick, k=4 and k=8 full), with the
//               delivered-multiset agreement checked per point and the
//               host's core count recorded — a 1-core host cannot show real
//               speedup, so readers need host_cores to interpret the ratio
//
// Results go to stdout and to a JSON file (default BENCH_simcore.json in
// the current directory — run from the repo root to seed the trajectory).
// CI runs `--quick` and uploads the JSON as an artifact so regressions in
// events/sec, packets/sec, or parallel speedup are visible per commit.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <thread>

#include "core/experiment.hpp"
#include "core/fabric_experiment.hpp"
#include "core/sweep.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using sdnbuf::sim::EventHandle;
using sdnbuf::sim::Simulator;
using sdnbuf::sim::SimTime;
namespace core = sdnbuf::core;
namespace sw = sdnbuf::sw;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Scheduler-only workload. Each tick cancels the previous victim timer,
// schedules a fresh one, and reschedules itself: 2 schedules + 1 cancel per
// tick, all through pooled slots. Captures fit the EventFn inline buffer.
struct Tick {
  Simulator* sim;
  std::uint64_t* remaining;
  EventHandle* victim;
  void operator()() const {
    if (victim->pending()) victim->cancel();
    *victim = sim->schedule(SimTime::milliseconds(10), []() {});
    if (--*remaining > 0) sim->schedule(SimTime::microseconds(1), Tick{*this});
  }
};

struct SchedulerScore {
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

SchedulerScore bench_scheduler(std::uint64_t ticks) {
  Simulator sim;
  std::uint64_t remaining = ticks;
  EventHandle victim;
  sim.schedule(SimTime::zero(), Tick{&sim, &remaining, &victim});
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  SchedulerScore score;
  score.wall_s = seconds_since(t0);
  score.executed = sim.executed_events();
  score.cancelled = ticks - 1;  // every victim but the last is cancelled
  score.events_per_sec = static_cast<double>(score.executed) / score.wall_s;
  return score;
}

core::ExperimentConfig e1_config() {
  core::ExperimentConfig config;
  config.mode = sw::BufferMode::PacketGranularity;
  config.buffer_capacity = 256;
  config.rate_mbps = 50.0;
  config.frame_size = 1000;
  config.n_flows = 1000;
  config.packets_per_flow = 1;
  config.seed = 1;
  return config;
}

struct E1Score {
  std::uint64_t runs = 0;
  std::uint64_t packets = 0;
  double wall_s = 0.0;
  double packets_per_sec = 0.0;
};

E1Score bench_e1(int runs) {
  E1Score score;
  score.runs = static_cast<std::uint64_t>(runs);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) {
    core::ExperimentConfig config = e1_config();
    config.seed = static_cast<std::uint64_t>(i + 1);
    const core::ExperimentResult r = core::run_experiment(config);
    score.packets += r.packets_delivered;
    // run_experiment tears the testbed down, so count what the workload
    // pushed through: every delivered packet crossed the full reactive
    // path (miss -> packet_in -> flow_mod/packet_out -> forward).
  }
  score.wall_s = seconds_since(t0);
  score.packets_per_sec = static_cast<double>(score.packets) / score.wall_s;
  return score;
}

// Obs-overhead stage (ISSUE 4 acceptance): the same E1 workload with the
// observability layers attached — metrics registry with instruments and
// polls plus the flow tracer at the default sampling period (and, for the
// e1_prof variant, the event-loop profiler too). Obs-off and obs-on runs
// interleave, and the overhead compares the MINIMUM per-run wall time of
// each side: the minimum is what the code costs when the machine does not
// preempt it, so the number is stable where a mean would inherit scheduler
// noise. The contract is <= 5% for metrics+tracing at default sampling.
// (The obs-off run IS the disabled-cost measurement: every null-sink
// pointer check is on its path.)
struct ObsScore {
  std::uint64_t runs = 0;
  std::uint64_t packets = 0;
  double min_off_s = 0.0;   // best obs-off run
  double min_on_s = 0.0;    // best obs-on run
  double packets_per_sec = 0.0;  // obs-on, from the best run
  double overhead_pct = 0.0;
  bool converged = false;  // both minima stalled before the run cap
  std::uint64_t trace_events = 0;
  std::uint64_t snapshots = 0;
};

ObsScore bench_e1_obs(int runs, bool with_profiler) {
  namespace obs = sdnbuf::obs;
  if (runs < 10) runs = 10;  // a single-run minimum is still noise
  // A fixed run count is not enough on a preemption-happy (1-core CI) host:
  // if every obs-off run of the batch lands on a bad scheduler slice the
  // "minimum" is still inflated and the gate reports phantom overhead (a
  // recorded 15.7% that no code change explained). So the interleaving
  // continues past `runs` until BOTH minima have gone kStallRuns
  // consecutive iterations without improving by more than 1%, i.e. until
  // the floor has actually been observed — capped at 5x in case the host
  // never quiets down (reported as converged=false).
  constexpr int kStallRuns = 8;
  const int max_runs = runs * 5;
  ObsScore score;
  double min_off = 1e300;
  double min_on = 1e300;
  std::uint64_t best_on_packets = 0;
  int stall = 0;
  int i = 0;
  for (; i < max_runs && (i < runs || stall < kStallRuns); ++i) {
    core::ExperimentConfig config = e1_config();
    config.seed = static_cast<std::uint64_t>(i + 1);
    auto t0 = std::chrono::steady_clock::now();
    (void)core::run_experiment(config);
    const double off_s = seconds_since(t0);
    bool improved = off_s < min_off * 0.99;
    min_off = std::min(min_off, off_s);

    obs::MetricsRegistry registry;
    obs::TraceWriter writer;
    obs::FlowTracer tracer{writer, static_cast<std::uint64_t>(i + 1), 16};
    obs::EventLoopProfiler profiler;
    // Decomposition knobs: OBS_NO_METRICS / OBS_NO_TRACER in the environment
    // drop one layer so a regression can be attributed without a rebuild.
    if (std::getenv("OBS_NO_METRICS") == nullptr) config.metrics = &registry;
    if (std::getenv("OBS_NO_TRACER") == nullptr) config.tracer = &tracer;
    if (with_profiler) config.profiler = &profiler;
    t0 = std::chrono::steady_clock::now();
    const core::ExperimentResult r = core::run_experiment(config);
    const double on_s = seconds_since(t0);
    if (on_s < min_on * 0.99) improved = true;
    if (on_s < min_on) {
      min_on = on_s;
      best_on_packets = r.packets_delivered;
    }
    stall = improved ? 0 : stall + 1;
    score.packets += r.packets_delivered;
    score.trace_events += writer.event_count();
    score.snapshots += registry.snapshot_count();
  }
  score.runs = static_cast<std::uint64_t>(i);
  score.converged = stall >= kStallRuns;
  score.min_off_s = min_off;
  score.min_on_s = min_on;
  if (min_on > 0.0) score.packets_per_sec = static_cast<double>(best_on_packets) / min_on;
  if (min_off > 0.0) score.overhead_pct = (min_on / min_off - 1.0) * 100.0;
  return score;
}

// Telemetry-overhead stage (DESIGN.md §15): the same adaptive interleaved
// minimum as bench_e1_obs, but with the telemetry plane on — observatory
// ledger + INT stamping (depth 4) + 1-in-16 sampling feeding the flow
// monitor. Unlike the passive obs layer, telemetry-on legitimately changes
// the simulated run (vendor messages, CPU costs); the gate is about the
// wall-clock cost of the machinery, which must stay <= 5% at default
// sampling.
struct TelemetryScore {
  std::uint64_t runs = 0;
  double min_off_s = 0.0;
  double min_on_s = 0.0;
  double overhead_pct = 0.0;
  bool converged = false;
  std::uint64_t flow_samples = 0;  // from the best telemetry-on run
  std::uint64_t int_stamps = 0;
};

TelemetryScore bench_e1_telemetry(int runs) {
  namespace obs = sdnbuf::obs;
  if (runs < 10) runs = 10;
  constexpr int kStallRuns = 8;
  const int max_runs = runs * 5;
  TelemetryScore score;
  double min_off = 1e300;
  double min_on = 1e300;
  int stall = 0;
  int i = 0;
  for (; i < max_runs && (i < runs || stall < kStallRuns); ++i) {
    core::ExperimentConfig config = e1_config();
    config.seed = static_cast<std::uint64_t>(i + 1);
    auto t0 = std::chrono::steady_clock::now();
    (void)core::run_experiment(config);
    const double off_s = seconds_since(t0);
    bool improved = off_s < min_off * 0.99;
    min_off = std::min(min_off, off_s);

    // Decomposition knobs, mirroring OBS_NO_METRICS/OBS_NO_TRACER: drop one
    // telemetry layer via the environment to attribute a regression.
    obs::FabricObservatory observatory;
    if (std::getenv("TELEM_NO_OBSERVATORY") == nullptr) config.observatory = &observatory;
    if (std::getenv("TELEM_NO_INT") == nullptr) {
      config.testbed.switch_config.telemetry_int_depth = 4;
    }
    if (std::getenv("TELEM_NO_SAMPLING") == nullptr) {
      config.testbed.switch_config.telemetry_sample_period = 16;
      config.testbed.controller_config.flow_monitor_enabled = true;
    }
    t0 = std::chrono::steady_clock::now();
    const core::ExperimentResult r = core::run_experiment(config);
    const double on_s = seconds_since(t0);
    if (on_s < min_on * 0.99) improved = true;
    if (on_s < min_on) {
      min_on = on_s;
      score.flow_samples = r.flow_samples;
      score.int_stamps = r.int_stamps;
    }
    stall = improved ? 0 : stall + 1;
  }
  score.runs = static_cast<std::uint64_t>(i);
  score.converged = stall >= kStallRuns;
  score.min_off_s = min_off;
  score.min_on_s = min_on;
  if (min_off > 0.0) score.overhead_pct = (min_on / min_off - 1.0) * 100.0;
  return score;
}

struct SweepScore {
  std::size_t rates = 0;
  int reps = 0;
  unsigned jobs = 1;
  double sequential_s = 0.0;
  double parallel_s = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

SweepScore bench_sweep(bool quick, unsigned jobs) {
  core::SweepConfig sweep;
  sweep.base = e1_config();
  sweep.rates_mbps = quick ? std::vector<double>{5, 50} : std::vector<double>{5, 50, 100};
  sweep.repetitions = quick ? 4 : 20;

  SweepScore score;
  score.rates = sweep.rates_mbps.size();
  score.reps = sweep.repetitions;
  score.jobs = jobs;

  sweep.jobs = 1;
  auto t0 = std::chrono::steady_clock::now();
  const core::SweepResult sequential = core::run_sweep(sweep, "e1");
  score.sequential_s = seconds_since(t0);

  sweep.jobs = static_cast<int>(jobs);
  t0 = std::chrono::steady_clock::now();
  const core::SweepResult parallel = core::run_sweep(sweep, "e1");
  score.parallel_s = seconds_since(t0);

  score.speedup = score.sequential_s / score.parallel_s;
  std::ostringstream seq_csv;
  std::ostringstream par_csv;
  core::write_csv(sequential, seq_csv);
  core::write_csv(parallel, par_csv);
  score.identical = core::bitwise_equal(sequential, parallel) && seq_csv.str() == par_csv.str();
  return score;
}

// Shard-scaling stage (DESIGN.md §14): the bench_shards workload folded into
// the trajectory JSON. One fat-tree permutation case per k, sequential engine
// vs sharded at 2/4 shards (threads = host cores), delivered-multiset
// agreement checked per point. host_cores is part of the record because the
// speedup is only meaningful relative to it.
struct ShardPoint {
  unsigned shards = 0;
  double wall_s = 0.0;
  double speedup = 1.0;
  bool agrees = true;
};

struct ShardCase {
  std::string label;
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  double sequential_s = 0.0;
  std::vector<ShardPoint> points;
};

struct ShardScore {
  unsigned threads = 1;
  unsigned host_cores = 1;
  std::vector<ShardCase> cases;
  bool all_agree = true;
};

core::FabricExperimentConfig shard_config(const sdnbuf::topo::Topology& topology,
                                           double duration_s, double arrival_per_s,
                                           unsigned shards, unsigned threads) {
  core::FabricExperimentConfig config;
  config.topology = topology;
  config.routing = core::FabricRouting::TopologyPerHop;
  config.mode = sw::BufferMode::PacketGranularity;
  config.buffer_capacity = 256;
  config.pattern = sdnbuf::host::TrafficPattern::Permutation;
  config.duration_s = duration_s;
  config.flow_arrival_per_s = arrival_per_s;
  config.max_packets = 20;
  config.seed = 11;
  config.fabric.shards = shards;
  config.fabric.shard_threads = threads;
  return config;
}

ShardScore bench_shard_scaling(bool quick) {
  ShardScore score;
  score.host_cores = std::max(1u, std::thread::hardware_concurrency());
  score.threads = score.host_cores;

  struct Spec {
    std::string label;
    unsigned k;
    double duration_s;
    double arrival_per_s;
  };
  std::vector<Spec> specs{{"fat-tree-k4", 4, quick ? 0.05 : 0.3, quick ? 400.0 : 1000.0}};
  if (!quick) specs.push_back({"fat-tree-k8", 8, 0.25, 2000.0});

  for (const Spec& spec : specs) {
    const sdnbuf::topo::Topology topology = sdnbuf::topo::make_fat_tree(spec.k);
    ShardCase c;
    c.label = spec.label;

    auto t0 = std::chrono::steady_clock::now();
    const core::FabricExperimentResult reference = core::run_fabric_experiment(
        shard_config(topology, spec.duration_s, spec.arrival_per_s, 0, 1));
    c.sequential_s = seconds_since(t0);
    c.flows = reference.flows;
    c.packets = reference.packets_delivered;

    for (const unsigned shards : {2u, 4u}) {
      t0 = std::chrono::steady_clock::now();
      const core::FabricExperimentResult r = core::run_fabric_experiment(
          shard_config(topology, spec.duration_s, spec.arrival_per_s, shards, score.threads));
      ShardPoint p;
      p.shards = shards;
      p.wall_s = seconds_since(t0);
      p.speedup = c.sequential_s / p.wall_s;
      p.agrees = r.delivered == reference.delivered && r.flows == reference.flows;
      score.all_agree = score.all_agree && p.agrees;
      c.points.push_back(p);
    }
    score.cases.push_back(std::move(c));
  }
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  const sdnbuf::util::CliFlags flags(argc, argv,
                                     {"quick", "jobs", "out", "e1-runs", "ticks", "no-sweep"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n"
              << "usage: " << argv[0] << " [--quick] [--jobs N] [--out PATH] [--no-sweep]\n";
    return 1;
  }
  const bool quick = flags.get_bool("quick", false);
  const bool no_sweep = flags.get_bool("no-sweep", false);
  const unsigned jobs = static_cast<unsigned>(flags.get_int(
      "jobs", static_cast<long long>(sdnbuf::util::ThreadPool::default_parallelism())));
  const std::string out_path = flags.get_string("out", "BENCH_simcore.json");
  const auto ticks =
      static_cast<std::uint64_t>(flags.get_int("ticks", quick ? 300'000 : 2'000'000));
  const int e1_runs = static_cast<int>(flags.get_int("e1-runs", quick ? 1 : 3));

  std::printf("bench_simcore (%s, jobs=%u)\n", quick ? "quick" : "full", jobs);

  const SchedulerScore sched = bench_scheduler(ticks);
  std::printf("scheduler : %llu events (%llu cancels) in %.3f s -> %.0f events/sec\n",
              static_cast<unsigned long long>(sched.executed),
              static_cast<unsigned long long>(sched.cancelled), sched.wall_s,
              sched.events_per_sec);

  const E1Score e1 = bench_e1(e1_runs);
  std::printf("e1_run    : %llu packets over %llu runs in %.3f s -> %.0f packets/sec\n",
              static_cast<unsigned long long>(e1.packets),
              static_cast<unsigned long long>(e1.runs), e1.wall_s, e1.packets_per_sec);

  const ObsScore obs = bench_e1_obs(e1_runs, /*with_profiler=*/false);
  std::printf(
      "e1_obs    : min run off %.4f s / on %.4f s -> %.0f packets/sec  overhead %.1f%%  "
      "(%llu trace events, %llu snapshots)\n",
      obs.min_off_s, obs.min_on_s, obs.packets_per_sec, obs.overhead_pct,
      static_cast<unsigned long long>(obs.trace_events),
      static_cast<unsigned long long>(obs.snapshots));

  const ObsScore prof = bench_e1_obs(e1_runs, /*with_profiler=*/true);
  std::printf("e1_prof   : min run off %.4f s / on %.4f s -> %.0f packets/sec  overhead %.1f%%\n",
              prof.min_off_s, prof.min_on_s, prof.packets_per_sec, prof.overhead_pct);

  const TelemetryScore telem = bench_e1_telemetry(e1_runs);
  std::printf(
      "e1_telem  : min run off %.4f s / on %.4f s  overhead %.1f%%  "
      "(%llu samples, %llu stamps)\n",
      telem.min_off_s, telem.min_on_s, telem.overhead_pct,
      static_cast<unsigned long long>(telem.flow_samples),
      static_cast<unsigned long long>(telem.int_stamps));

  SweepScore sweep;
  if (!no_sweep) {
    sweep = bench_sweep(quick, jobs);
    std::printf(
        "sweep     : %zu rates x %d reps  jobs=1 %.3f s  jobs=%u %.3f s  speedup %.2fx  %s\n",
        sweep.rates, sweep.reps, sweep.sequential_s, sweep.jobs, sweep.parallel_s, sweep.speedup,
        sweep.identical ? "bit-identical" : "DIVERGED");
  }

  const ShardScore shards = bench_shard_scaling(quick);
  for (const ShardCase& c : shards.cases) {
    std::printf("shards    : %s sequential %.3f s", c.label.c_str(), c.sequential_s);
    for (const ShardPoint& p : c.points)
      std::printf("  %u-shard %.3f s (%.2fx%s)", p.shards, p.wall_s, p.speedup,
                  p.agrees ? "" : ", DISAGREES");
    std::printf("  [host_cores=%u]\n", shards.host_cores);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"simcore\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"scheduler\": {\n"
      << "    \"executed_events\": " << sched.executed << ",\n"
      << "    \"cancelled_events\": " << sched.cancelled << ",\n"
      << "    \"wall_s\": " << sched.wall_s << ",\n"
      << "    \"events_per_sec\": " << sched.events_per_sec << "\n"
      << "  },\n"
      << "  \"e1_run\": {\n"
      << "    \"runs\": " << e1.runs << ",\n"
      << "    \"packets\": " << e1.packets << ",\n"
      << "    \"wall_s\": " << e1.wall_s << ",\n"
      << "    \"packets_per_sec\": " << e1.packets_per_sec << "\n"
      << "  },\n"
      << "  \"obs_overhead\": {\n"
      << "    \"runs\": " << obs.runs << ",\n"
      << "    \"packets\": " << obs.packets << ",\n"
      << "    \"min_run_off_s\": " << obs.min_off_s << ",\n"
      << "    \"min_run_on_s\": " << obs.min_on_s << ",\n"
      << "    \"packets_per_sec\": " << obs.packets_per_sec << ",\n"
      << "    \"overhead_pct\": " << obs.overhead_pct << ",\n"
      << "    \"converged\": " << (obs.converged ? "true" : "false") << ",\n"
      << "    \"trace_events\": " << obs.trace_events << ",\n"
      << "    \"snapshots\": " << obs.snapshots << ",\n"
      << "    \"note\": \"minimum of interleaved obs-off/obs-on runs, continued until both "
         "minima stall for 8 iterations (converged). A fixed 10-run minimum once recorded a "
         "phantom 15.7% on a 1-core host -- scheduler preemption inflating the obs-off floor, "
         "not a code regression; the adaptive floor reads 1-4% on the same host.\"\n"
      << "  },\n"
      << "  \"obs_profile\": {\n"
      << "    \"runs\": " << prof.runs << ",\n"
      << "    \"min_run_off_s\": " << prof.min_off_s << ",\n"
      << "    \"min_run_on_s\": " << prof.min_on_s << ",\n"
      << "    \"packets_per_sec\": " << prof.packets_per_sec << ",\n"
      << "    \"overhead_pct\": " << prof.overhead_pct << "\n"
      << "  },\n"
      << "  \"telemetry_overhead\": {\n"
      << "    \"runs\": " << telem.runs << ",\n"
      << "    \"min_run_off_s\": " << telem.min_off_s << ",\n"
      << "    \"min_run_on_s\": " << telem.min_on_s << ",\n"
      << "    \"overhead_pct\": " << telem.overhead_pct << ",\n"
      << "    \"converged\": " << (telem.converged ? "true" : "false") << ",\n"
      << "    \"flow_samples\": " << telem.flow_samples << ",\n"
      << "    \"int_stamps\": " << telem.int_stamps << ",\n"
      << "    \"note\": \"telemetry plane fully on (observatory ledger, INT depth 4, 1-in-16 "
         "sampling into the flow monitor) vs off, same adaptive interleaved-minimum protocol "
         "as obs_overhead; the <= 5% contract covers the machinery cost at default sampling.\"\n"
      << "  },\n";
  if (no_sweep) {
    out << "  \"sweep\": null,\n";
  } else {
    out << "  \"sweep\": {\n"
        << "    \"rates\": " << sweep.rates << ",\n"
        << "    \"repetitions\": " << sweep.reps << ",\n"
        << "    \"jobs\": " << sweep.jobs << ",\n"
        << "    \"sequential_s\": " << sweep.sequential_s << ",\n"
        << "    \"parallel_s\": " << sweep.parallel_s << ",\n"
        << "    \"speedup\": " << sweep.speedup << ",\n"
        << "    \"identical\": " << (sweep.identical ? "true" : "false") << ",\n"
        << "    \"note\": \"parallel cells pull from a shared atomic counter (one task per "
           "worker), per-cell dispatch ~0.006 us (was ~0.3 us with submit-per-cell, recorded "
           "speedup 0.96272 at jobs=4). Residual sub-1.0 speedups on 1-core hosts are "
           "oversubscription, not queue contention; results stay bit-identical for any job "
           "count.\"\n"
        << "  },\n";
  }
  out << "  \"shard_scaling\": {\n"
      << "    \"host_cores\": " << shards.host_cores << ",\n"
      << "    \"threads\": " << shards.threads << ",\n"
      << "    \"cases\": [\n";
  for (std::size_t ci = 0; ci < shards.cases.size(); ++ci) {
    const ShardCase& c = shards.cases[ci];
    out << "      {\n"
        << "        \"topology\": \"" << c.label << "\",\n"
        << "        \"flows\": " << c.flows << ",\n"
        << "        \"packets\": " << c.packets << ",\n"
        << "        \"sequential_s\": " << c.sequential_s << ",\n"
        << "        \"sharded\": [";
    for (std::size_t pi = 0; pi < c.points.size(); ++pi) {
      const ShardPoint& p = c.points[pi];
      out << (pi == 0 ? "" : ", ") << "{\"shards\": " << p.shards << ", \"wall_s\": " << p.wall_s
          << ", \"speedup\": " << p.speedup << ", \"agrees\": " << (p.agrees ? "true" : "false")
          << "}";
    }
    out << "]\n"
        << "      }" << (ci + 1 < shards.cases.size() ? "," : "") << "\n";
  }
  out << "    ],\n"
      << "    \"note\": \"sequential engine (shards=0) vs conservative-window sharded engine "
         "on a fat-tree permutation workload; delivered payload multisets compared per point. "
         "Speedup is only meaningful relative to host_cores -- on a 1-core host the threaded "
         "windows add barrier cost and the ratio sits at or below 1.0 by construction; the "
         ">=2.5x acceptance target applies to 4+ shards on a 4+-core host.\"\n"
      << "  }\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  const bool sweep_ok = no_sweep || sweep.identical;
  return sweep_ok && shards.all_agree ? 0 : 1;
}

// Analytical oracle vs simulator — the Fig. 5/6/7 delay family with the
// closed-form prediction overlaid on every simulated curve (DESIGN.md §12).
//
// For each E1 mechanism and each swept rate the oracle (model::predict)
// forecasts pkt_in rate, the three delay means and the control-path load;
// the simulated sweep provides the measured means and spreads. Output is
// one aligned table per metric plus results/model_validation.csv in long
// form (mechanism, rate, metric, predicted, simulated mean/std, relative
// error) for plotting overlays, and claim lines with the worst relative
// error inside the validated region (<= 50 Mbps, everything unsaturated —
// the band tests/test_model_validation.cpp enforces).
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "model/node_model.hpp"
#include "util/csv.hpp"

namespace {

// The validated operating region: unsaturated for every mechanism.
constexpr double kValidatedMaxRateMbps = 50.0;

struct MetricRow {
  std::string mechanism;
  double rate_mbps = 0.0;
  std::string metric;
  double predicted = 0.0;
  double simulated_mean = 0.0;
  double simulated_std = 0.0;
  double rel_error = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  std::vector<bench::MechanismSpec> mechanisms = bench::e1_mechanisms();
  for (const auto& mechanism : mechanisms) {
    sweeps.push_back(bench::run_e1(options, mechanism));
  }

  // One E1 base config per mechanism, matching run_e1's sweep cells.
  const auto params_for = [&](const bench::MechanismSpec& mechanism, double rate) {
    core::ExperimentConfig base;
    base.n_flows = 1000;
    base.packets_per_flow = 1;
    base.frame_size = 1000;
    base.order = host::EmissionOrder::Sequential;
    base.mode = mechanism.mode;
    base.buffer_capacity = mechanism.buffer_capacity == 0 ? 256 : mechanism.buffer_capacity;
    base.rate_mbps = rate;
    return model::Params::from(base);
  };

  struct MetricSpec {
    const char* name;
    double (*predicted)(const model::Prediction&);
    const util::Summary& (*simulated)(const core::RatePoint&);
  };
  const MetricSpec metrics[] = {
      {"setup_ms", [](const model::Prediction& p) { return p.setup_ms; },
       [](const core::RatePoint& p) -> const util::Summary& { return p.setup_ms; }},
      {"controller_ms", [](const model::Prediction& p) { return p.controller_ms; },
       [](const core::RatePoint& p) -> const util::Summary& { return p.controller_ms; }},
      {"switch_ms", [](const model::Prediction& p) { return p.switch_ms; },
       [](const core::RatePoint& p) -> const util::Summary& { return p.switch_ms; }},
      {"pkt_ins_sent", [](const model::Prediction& p) { return p.pkt_ins_total; },
       [](const core::RatePoint& p) -> const util::Summary& { return p.pkt_ins_sent; }},
      {"to_controller_mbps", [](const model::Prediction& p) { return p.to_controller_mbps; },
       [](const core::RatePoint& p) -> const util::Summary& { return p.to_controller_mbps; }},
  };

  std::vector<MetricRow> rows;
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    for (const auto& point : sweeps[s].points) {
      const model::Prediction prediction =
          model::predict(params_for(mechanisms[s], point.rate_mbps));
      for (const auto& metric : metrics) {
        MetricRow row;
        row.mechanism = sweeps[s].label;
        row.rate_mbps = point.rate_mbps;
        row.metric = metric.name;
        row.predicted = metric.predicted(prediction);
        row.simulated_mean = metric.simulated(point).mean();
        row.simulated_std = metric.simulated(point).stddev();
        row.rel_error = row.simulated_mean != 0.0
                            ? std::abs(row.predicted - row.simulated_mean) / row.simulated_mean
                            : 0.0;
        rows.push_back(std::move(row));
      }
    }
  }

  // Per-metric overlay tables (predicted next to measured, like the figure
  // tables print mean next to std).
  if (!options.quiet) {
    for (const auto& metric : metrics) {
      util::TableWriter table(std::string("model oracle: ") + metric.name +
                              " (predicted / simulated)");
      std::vector<std::string> columns{"rate (Mbps)"};
      for (const auto& sweep : sweeps) {
        columns.push_back(sweep.label + " model");
        columns.push_back(sweep.label + " sim");
      }
      table.set_columns(columns);
      const std::size_t n_rates = sweeps.front().points.size();
      for (std::size_t i = 0; i < n_rates; ++i) {
        std::vector<std::string> row{
            util::format_double(sweeps.front().points[i].rate_mbps, 0)};
        for (std::size_t s = 0; s < sweeps.size(); ++s) {
          const auto& point = sweeps[s].points[i];
          const model::Prediction prediction =
              model::predict(params_for(mechanisms[s], point.rate_mbps));
          row.push_back(util::format_double(metric.predicted(prediction), 3));
          row.push_back(util::format_double(metric.simulated(point).mean(), 3));
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
      std::cout << '\n';
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(options.csv_dir, ec);
  const std::string path = options.csv_dir + "/model_validation.csv";
  std::ofstream file(path);
  if (file) {
    file << "mechanism,rate_mbps,metric,predicted,simulated_mean,simulated_std,rel_error\n";
    for (const auto& row : rows) {
      file << row.mechanism << ',' << util::format_double(row.rate_mbps, 17) << ',' << row.metric
           << ',' << util::format_double(row.predicted, 17) << ','
           << util::format_double(row.simulated_mean, 17) << ','
           << util::format_double(row.simulated_std, 17) << ','
           << util::format_double(row.rel_error, 17) << '\n';
    }
    if (!options.quiet) std::cout << "wrote " << path << "\n\n";
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }

  // Claim lines: worst relative error per delay metric inside the
  // validated region.
  for (const char* name : {"setup_ms", "controller_ms", "switch_ms", "pkt_ins_sent"}) {
    double worst = 0.0;
    for (const auto& row : rows) {
      if (row.metric == name && row.rate_mbps <= kValidatedMaxRateMbps) {
        worst = std::max(worst, row.rel_error);
      }
    }
    bench::print_claim(std::string("max |model - sim| / sim, ") + name + " (<= " +
                           util::format_double(kValidatedMaxRateMbps, 0) + " Mbps)",
                       "<= 10%", 100.0 * worst, "%");
  }
  return 0;
}

// Extension: multi-switch paths (the data-center context of §I).
//
// A new flow's first packets miss at EVERY switch on the path, so the
// reactive overhead the paper measures on one switch multiplies per hop —
// and so does the buffer's saving. This bench runs the E1-style workload
// over chains of 1-4 switches and reports total control bytes, requests,
// and end-to-end first-packet latency per mechanism.
#include <iostream>

#include "common.hpp"
#include "core/chain_testbed.hpp"
#include "host/traffic_gen.hpp"
#include "util/csv.hpp"

namespace {

using namespace sdnbuf;

struct ChainResult {
  std::uint64_t pkt_ins = 0;
  std::uint64_t control_bytes = 0;
  double first_packet_ms = 0.0;  // mean end-to-end latency of flow-first packets
  std::uint64_t delivered = 0;
};

ChainResult run_chain(unsigned hops, sw::BufferMode mode, std::uint64_t seed) {
  core::ChainConfig config;
  config.n_switches = hops;
  config.switch_config.buffer_mode = mode;
  config.seed = seed;
  core::ChainTestbed bed{config};
  bed.warm_up();

  host::TrafficConfig traffic;
  traffic.rate_mbps = 50.0;
  traffic.n_flows = 300;
  traffic.src_mac = bed.host1_mac();
  traffic.dst_mac = bed.host2_mac();
  traffic.src_ip_base = bed.host1_ip();
  traffic.dst_ip = bed.host2_ip();
  host::TrafficGenerator gen{bed.sim(), traffic, seed * 3 + 1,
                             [&bed](const net::Packet& p) { bed.inject_from_host1(p); }};
  gen.start();
  const sim::SimTime deadline = bed.sim().now() + sim::SimTime::seconds(10);
  while (bed.sim().now() < deadline &&
         bed.sink2().packets_received() < gen.total_packets()) {
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(20));
  }
  bed.stop();
  bed.sim().run();

  ChainResult r;
  r.pkt_ins = bed.total_pkt_ins();
  r.control_bytes = bed.total_control_bytes();
  r.first_packet_ms = bed.sink2().latency_ms().mean();  // 1 packet per flow
  r.delivered = bed.sink2().packets_received();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);

  util::TableWriter table("multi-hop: 300 single-packet flows at 50 Mbps across a switch chain");
  table.set_columns({"hops", "mechanism", "pkt_ins", "ctrl KB", "first-packet ms",
                     "delivered"});
  for (const unsigned hops : {1u, 2u, 3u, 4u}) {
    for (const auto& mechanism :
         {bench::MechanismSpec{"no-buffer", sw::BufferMode::NoBuffer, 0},
          bench::MechanismSpec{"buffer-256", sw::BufferMode::PacketGranularity, 256},
          bench::MechanismSpec{"flow-granularity", sw::BufferMode::FlowGranularity, 256}}) {
      util::Summary pkt_ins;
      util::Summary control_kb;
      util::Summary latency;
      util::Summary delivered;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        const auto r = run_chain(hops, mechanism.mode,
                                 options.seed * 53 + static_cast<std::uint64_t>(rep));
        pkt_ins.add(static_cast<double>(r.pkt_ins));
        control_kb.add(static_cast<double>(r.control_bytes) / 1000.0);
        latency.add(r.first_packet_ms);
        delivered.add(static_cast<double>(r.delivered));
      }
      table.add_row({std::to_string(hops), mechanism.label,
                     util::format_double(pkt_ins.mean(), 0),
                     util::format_double(control_kb.mean(), 1),
                     util::format_double(latency.mean(), 3),
                     util::format_double(delivered.mean(), 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nRequests and control bytes scale linearly with the path length for every\n"
               "mechanism — so the buffer's per-hop saving compounds: on a 4-hop path the\n"
               "no-buffer design ships 4x the full frames, the buffered designs 4x the\n"
               "headers. First-packet latency grows per hop with the per-switch setup\n"
               "delay, and fastest with buffering.\n";
  return 0;
}

// Telemetry-plane benchmark (DESIGN.md §15): what does measurement cost?
//
// Section A — controller contention. NetFlow-style sampling ships one vendor
// FlowSample per sampled packet over the same channel, and the controller
// pays sample_parse + flow_cache_update on the same cores that answer
// packet_ins. Sweeping the sampling period (off, 1-in-64, 1-in-16, 1-in-4)
// across the three buffer mechanisms shows how aggressively a deployment can
// sample before measurement traffic moves the paper's flow-setup-delay
// curves: the no-buffer mechanism is hit hardest (its full-frame pkt_ins
// already saturate the channel), the flow-granularity buffer least.
//
// Section B — a leaf-spine incast run with INT stamping on, producing the
// per-switch queue-depth heatmap, fate ledger and per-flow path CSVs
// (results/bench_telemetry_*.csv) that scripts/validate_trace.py checks.
//
// Every cell runs in a pre-assigned slot and the CSV is written after a
// sequential merge, so output is bit-identical for any --jobs value.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fabric_experiment.hpp"
#include "obs/fabric_observatory.hpp"
#include "switchd/mmu/mmu.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace core = sdnbuf::core;
namespace obs = sdnbuf::obs;
namespace sw = sdnbuf::sw;
namespace util = sdnbuf::util;
namespace host = sdnbuf::host;
namespace topo = sdnbuf::topo;

struct Mechanism {
  std::string label;
  sw::BufferMode mode;
  std::size_t capacity;
};

struct CellResult {
  core::ExperimentResult r;
};

// Fixed-point formatting keeps the CSV byte-identical across platforms.
std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliFlags flags(argc, argv, {"quick", "jobs", "reps", "csv-dir", "seed"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n"
              << "usage: " << argv[0] << " [--quick] [--jobs N] [--reps N] [--csv-dir DIR]\n";
    return 1;
  }
  const bool quick = flags.get_bool("quick", false);
  const int reps = static_cast<int>(flags.get_int("reps", quick ? 2 : 10));
  const unsigned jobs = static_cast<unsigned>(
      flags.get_int("jobs", static_cast<long long>(util::ThreadPool::default_parallelism())));
  const std::string csv_dir = flags.get_string("csv-dir", "results");
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::error_code ec;
  std::filesystem::create_directories(csv_dir, ec);

  const std::vector<Mechanism> mechanisms{
      {"no-buffer", sw::BufferMode::NoBuffer, 0},
      {"buffer-256", sw::BufferMode::PacketGranularity, 256},
      {"flow-256", sw::BufferMode::FlowGranularity, 256},
  };
  const std::vector<std::uint32_t> periods{0, 64, 16, 4};
  const std::uint64_t n_flows = quick ? 200 : 1000;

  std::printf("bench_telemetry (%s, reps=%d, jobs=%u)\n", quick ? "quick" : "full", reps, jobs);

  // --- Section A: sampling-rate x mechanism contention grid ---
  const std::size_t n_cells = mechanisms.size() * periods.size() * static_cast<std::size_t>(reps);
  std::vector<CellResult> cells(n_cells);
  {
    util::ThreadPool pool(jobs);
    std::size_t slot = 0;
    for (const Mechanism& mech : mechanisms) {
      for (const std::uint32_t period : periods) {
        for (int rep = 0; rep < reps; ++rep, ++slot) {
          pool.submit([&cells, slot, &mech, period, rep, base_seed, n_flows]() {
            core::ExperimentConfig config;
            config.mode = mech.mode;
            config.buffer_capacity = mech.capacity;
            config.rate_mbps = 50.0;
            config.frame_size = 1000;
            config.n_flows = n_flows;
            config.packets_per_flow = 1;
            config.seed = base_seed + static_cast<std::uint64_t>(rep);
            config.testbed.switch_config.telemetry_sample_period = period;
            config.testbed.controller_config.flow_monitor_enabled = period != 0;
            cells[slot].r = core::run_experiment(config);
          });
        }
      }
    }
    pool.wait_idle();
  }

  const std::string contention_path = csv_dir + "/bench_telemetry_contention.csv";
  std::ofstream csv(contention_path);
  csv << "mechanism,sample_period,reps,setup_ms_mean,setup_ms_std,setup_ms_p99,"
         "controller_cpu_pct,flow_samples,pkt_ins,to_controller_mbps\n";
  std::printf("%-11s %8s %14s %14s %10s %12s\n", "mechanism", "period", "setup_ms", "cpu_pct",
              "samples", "pkt_ins");
  std::size_t slot = 0;
  for (const Mechanism& mech : mechanisms) {
    for (const std::uint32_t period : periods) {
      util::Summary setup_means;
      util::Samples all_setup;
      util::Summary cpu;
      util::Summary mbps;
      std::uint64_t samples_total = 0;
      std::uint64_t pkt_ins_total = 0;
      for (int rep = 0; rep < reps; ++rep, ++slot) {
        const core::ExperimentResult& r = cells[slot].r;
        setup_means.add(r.setup_ms.mean());
        for (const double v : r.setup_ms.values()) all_setup.add(v);
        cpu.add(r.controller_cpu_pct);
        mbps.add(r.to_controller_mbps);
        samples_total += r.flow_samples;
        pkt_ins_total += r.pkt_ins_sent;
      }
      csv << mech.label << ',' << period << ',' << reps << ',' << fixed3(setup_means.mean())
          << ',' << fixed3(setup_means.stddev()) << ',' << fixed3(all_setup.percentile(99.0))
          << ',' << fixed3(cpu.mean()) << ',' << samples_total << ',' << pkt_ins_total << ','
          << fixed3(mbps.mean()) << '\n';
      std::printf("%-11s %8u %8.3f ms %10.1f %10llu %12llu\n", mech.label.c_str(), period,
                  setup_means.mean(), cpu.mean(),
                  static_cast<unsigned long long>(samples_total),
                  static_cast<unsigned long long>(pkt_ins_total));
    }
  }
  csv.close();
  std::printf("wrote %s\n", contention_path.c_str());

  // --- Section B: leaf-spine incast with INT stamping -> observatory CSVs ---
  obs::FabricObservatory obsy;
  core::FabricExperimentConfig fc;
  fc.topology = topo::make_leaf_spine(2, 4, 4);  // 2 spines, 4 leaves, 4 hosts/leaf
  fc.routing = core::FabricRouting::TopologyPerHop;
  fc.mode = sw::BufferMode::PacketGranularity;
  fc.buffer_capacity = 256;
  fc.pattern = host::TrafficPattern::Incast;
  fc.incast_target = 0;
  fc.incast_fanin = quick ? 6 : 12;
  fc.duration_s = quick ? 0.1 : 0.4;
  fc.flow_arrival_per_s = quick ? 300.0 : 800.0;
  fc.seed = base_seed;
  fc.observatory = &obsy;
  fc.fabric.switch_config.telemetry_int_depth = 8;
  fc.fabric.switch_config.telemetry_sample_period = 8;
  fc.fabric.controller_config.flow_monitor_enabled = true;
  // Dynamic-threshold MMU (DESIGN.md §16) so the harvested stamps carry live
  // sharing dynamics: the heatmap's pool_cells/threshold columns show the
  // incast's hot egress borrowing the idle queues' share.
  fc.fabric.switch_config.mmu.enabled = true;
  fc.fabric.switch_config.mmu.policy = sw::mmu::PolicyKind::DynamicThreshold;
  fc.fabric.switch_config.mmu.pool_cells = 2048;
  const core::FabricExperimentResult fr = core::run_fabric_experiment(fc);

  std::printf(
      "incast    : %llu/%llu packets delivered, %llu INT stamps, %llu samples "
      "(%llu seen), ledger fated %llu stranded %llu\n",
      static_cast<unsigned long long>(fr.packets_delivered),
      static_cast<unsigned long long>(fr.packets_sent),
      static_cast<unsigned long long>(fr.int_stamps),
      static_cast<unsigned long long>(fr.flow_samples),
      static_cast<unsigned long long>(fr.flow_samples_seen),
      static_cast<unsigned long long>(obsy.fated()),
      static_cast<unsigned long long>(obsy.stranded()));

  // Ledger totality is this benchmark's self-check: every emitted packet is
  // delivered, fated or stranded — nothing may go missing silently.
  if (obsy.injected() != fr.packets_sent ||
      obsy.injected() != obsy.delivered() + obsy.fated() + obsy.stranded()) {
    std::fprintf(stderr, "LEDGER MISMATCH: injected=%llu sent=%llu delivered+fated+stranded=%llu\n",
                 static_cast<unsigned long long>(obsy.injected()),
                 static_cast<unsigned long long>(fr.packets_sent),
                 static_cast<unsigned long long>(obsy.delivered() + obsy.fated() + obsy.stranded()));
    return 1;
  }

  const std::string heatmap_path = csv_dir + "/bench_telemetry_heatmap.csv";
  const std::string fates_path = csv_dir + "/bench_telemetry_fates.csv";
  const std::string paths_path = csv_dir + "/bench_telemetry_paths.csv";
  const std::string summary_path = csv_dir + "/bench_telemetry_summary.json";
  {
    std::ofstream f(heatmap_path);
    obsy.write_heatmap_csv(f);
  }
  {
    std::ofstream f(fates_path);
    obsy.write_fates_csv(f);
  }
  {
    std::ofstream f(paths_path);
    obsy.write_paths_csv(f);
  }
  {
    std::ofstream f(summary_path);
    obsy.write_summary_json(f);
  }
  std::printf("wrote %s, %s, %s, %s\n", heatmap_path.c_str(), fates_path.c_str(),
              paths_path.c_str(), summary_path.c_str());

  for (const obs::FabricObservatory::Hotspot& h : obsy.hotspots(5)) {
    std::printf("hotspot   : switch %llu port %u  qdepth_max %u  residence %.1f us\n",
                static_cast<unsigned long long>(h.switch_id), h.port, h.queue_depth_max,
                h.residence_us_mean);
  }
  return 0;
}

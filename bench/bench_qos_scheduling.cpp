// Extension: ingress buffer + egress QoS scheduling (the paper's §VII
// future-work combination).
//
// Two ingress ports share one congested 100 Mbps egress port (~1.6x offered
// load). A priority class (IP precedence 3) competes with best-effort bulk
// traffic; the table compares per-class queueing delay and loss under FIFO,
// strict priority, and deficit round robin — while the flow-granularity
// ingress buffer handles the reactive setup of every new flow.
#include <iostream>
#include <memory>

#include "common.hpp"
#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "switchd/switch.hpp"
#include "util/csv.hpp"

namespace {

using namespace sdnbuf;

net::Packet class_packet(unsigned precedence, std::uint32_t flow, std::uint32_t seq) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, 1000);
  p.ip.dscp = static_cast<std::uint8_t>(precedence << 5);
  p.flow_id = flow;
  p.seq_in_flow = seq;
  return p;
}

struct QosResult {
  double high_delay_ms = 0.0;
  double low_delay_ms = 0.0;
  std::uint64_t high_drops = 0;
  std::uint64_t low_drops = 0;
  std::uint64_t pkt_ins = 0;
};

QosResult run_policy(sw::SchedulerPolicy policy, std::uint64_t seed) {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link in1{sim, "in1", 100e6, sim::SimTime::zero()};
  net::Link in2{sim, "in2", 100e6, sim::SimTime::zero()};
  net::Link out{sim, "out", 100e6, sim::SimTime::zero()};
  of::Channel channel{sim, control.forward(), control.reverse()};

  sw::SwitchConfig config;
  config.buffer_mode = sw::BufferMode::FlowGranularity;  // ingress buffer on
  config.egress.policy = policy;
  config.egress.num_classes = 4;
  config.egress.queue_limit_bytes = 64 * 1024;
  config.egress.drr_quanta = {1500, 1500, 1500, 4500};  // DRR favours class 3
  sw::Switch ovs{sim, config, seed};
  ovs.attach_port(1, in1, nullptr);
  ovs.attach_port(2, in2, nullptr);
  ovs.attach_port(3, out, nullptr);
  ovs.connect(channel);

  // Scripted controller: install an output:3 rule for any packet_in and
  // release the buffered flow (Algorithm 2).
  channel.set_controller_handler([&](const of::OfMessage& m, std::size_t) {
    const auto* pi = std::get_if<of::PacketIn>(&m);
    if (pi == nullptr) return;
    const auto packet = net::Packet::parse(pi->data, pi->total_len);
    if (!packet) return;
    of::FlowMod fm;
    fm.xid = pi->xid;
    fm.match = of::Match::exact_from(*packet, pi->in_port);
    fm.priority = 100;
    fm.actions = of::output_to(3);
    channel.send_from_controller(fm);
    of::PacketOut po;
    po.xid = pi->xid;
    po.buffer_id = pi->buffer_id;
    po.in_port = pi->in_port;
    po.actions = of::output_to(3);
    if (pi->buffer_id == of::kNoBuffer) po.data = pi->data;
    channel.send_from_controller(po);
  });

  // Offered load ~1.6x the egress line rate for 60 ms: port 1 carries 16
  // best-effort flows, port 2 carries 4 priority flows.
  for (std::uint32_t i = 0; i < 750; ++i) {
    const auto when = sim::SimTime::microseconds(80 * i);
    sim.schedule_at(when, [&ovs, i]() {
      ovs.receive(1, class_packet(0, i % 16, i / 16));
    });
    if (i % 5 == 0) {
      sim.schedule_at(when, [&ovs, i]() {
        ovs.receive(2, class_packet(3, 100 + i % 4, i / 4));
      });
    }
  }
  sim.run_until(sim::SimTime::milliseconds(200));
  ovs.stop();
  sim.run();

  auto& sched = ovs.port_scheduler(3);
  QosResult r;
  const unsigned high = policy == sw::SchedulerPolicy::Fifo ? 0 : 3;
  const unsigned low = 0;
  r.high_delay_ms = sched.class_stats(high).queue_delay_ms.mean();
  r.low_delay_ms = sched.class_stats(low).queue_delay_ms.mean();
  r.high_drops = sched.class_stats(high).dropped;
  r.low_drops = sched.class_stats(low).dropped;
  r.pkt_ins = ovs.counters().pkt_ins_sent;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  (void)options;

  util::TableWriter table(
      "QoS extension: congested egress port, priority vs best-effort classes "
      "(flow-granularity ingress buffer active)");
  table.set_columns({"egress policy", "prio delay ms", "bulk delay ms", "prio drops",
                     "bulk drops", "pkt_ins (ingress)"});
  const struct {
    sw::SchedulerPolicy policy;
    const char* label;
  } policies[] = {
      {sw::SchedulerPolicy::Fifo, "fifo (shared queue)"},
      {sw::SchedulerPolicy::StrictPriority, "strict priority"},
      {sw::SchedulerPolicy::DeficitRoundRobin, "drr (3x quantum)"},
  };
  for (const auto& p : policies) {
    const QosResult r = run_policy(p.policy, 7);
    table.add_row({p.label, util::format_double(r.high_delay_ms, 3),
                   util::format_double(r.low_delay_ms, 3), std::to_string(r.high_drops),
                   std::to_string(r.low_drops), std::to_string(r.pkt_ins)});
  }
  table.print(std::cout);
  std::cout << "\nWith FIFO the priority class inherits the bulk queue's delay; strict\n"
               "priority isolates it to sub-frame latency, and DRR bounds it while still\n"
               "serving bulk traffic — the §VII \"ingress buffer + egress scheduling\"\n"
               "combination, demonstrated end to end (one packet_in per new flow).\n";
  return 0;
}

// Fig. 2 — control path load under different sending rates (§IV.A).
//
// Paper shape: (a) switch->controller load is ~linear in sending rate
// without buffer (entire frames in packet_in); buffer-16 stays low until it
// exhausts around 30-35 Mbps, buffer-256 stays low throughout (mean
// ~10.9 Mbps). (b) controller->switch behaves the same (full frames in
// packet_out vs a header-sized flow_mod), with ~96% reduction.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e1_mechanisms()) {
    sweeps.push_back(bench::run_e1(options, mechanism));
  }

  bench::print_figure(options, "fig2a", "control path load, switch -> controller", "Mbps",
                      sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.to_controller_mbps;
                      });
  bench::print_figure(options, "fig2b", "control path load, controller -> switch", "Mbps",
                      sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.to_switch_mbps;
                      });
  return 0;
}

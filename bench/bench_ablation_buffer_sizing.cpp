// Ablation: how large does the switch buffer have to be, and how much of a
// miss-match packet should the packet_in carry?
//
// (a) Buffer capacity sweep at a fixed high sending rate (default 95 Mbps,
//     E1 workload). The paper's Fig. 8 argues ~80 units suffice for a
//     100 Mbps interface; this sweep locates the knee: below it, exhaustion
//     fallbacks (full-frame packet_ins) appear and the control load rises.
// (b) miss_send_len sweep: the packet_in capture size trades control-path
//     bytes against how much of the packet the controller can inspect.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  const double rate = 95.0;

  // --- (a) capacity sweep ---
  util::TableWriter capacity_table(
      "ablation A: buffer capacity at " + util::format_double(rate, 0) +
      " Mbps (packet-granularity, E1 workload)");
  capacity_table.set_columns({"capacity", "up Mbps", "full-frame pkt_ins", "setup ms",
                              "max units used"});
  for (const std::size_t capacity : {8, 16, 32, 64, 96, 128, 256}) {
    util::Summary up;
    util::Summary full;
    util::Summary setup;
    util::Summary max_units;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      core::ExperimentConfig config;
      config.mode = sw::BufferMode::PacketGranularity;
      config.buffer_capacity = capacity;
      config.rate_mbps = rate;
      config.n_flows = 1000;
      config.seed = options.seed * 977 + static_cast<std::uint64_t>(rep);
      const auto r = core::run_experiment(config);
      up.add(r.to_controller_mbps);
      full.add(static_cast<double>(r.full_frame_pkt_ins));
      setup.add(r.setup_ms.mean());
      max_units.add(r.buffer_max_units);
    }
    capacity_table.add_row(std::to_string(capacity),
                           {up.mean(), full.mean(), setup.mean(), max_units.mean()});
  }
  capacity_table.print(std::cout);
  std::cout << "\nThe knee sits where 'max units used' stops hitting the capacity: beyond\n"
               "it extra units are never touched — the paper's \"80 KB buffer suffices for\n"
               "a 100 Mbps interface\" claim, located empirically.\n\n";

  // --- (b) miss_send_len sweep ---
  util::TableWriter capture_table("ablation B: miss_send_len (buffer-256, " +
                                  util::format_double(rate, 0) + " Mbps)");
  capture_table.set_columns({"capture bytes", "up Mbps", "ctrl cpu %", "setup ms"});
  for (const std::uint16_t capture : {64, 128, 256, 512, 1000}) {
    util::Summary up;
    util::Summary cpu;
    util::Summary setup;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      core::ExperimentConfig config;
      config.mode = sw::BufferMode::PacketGranularity;
      config.rate_mbps = rate;
      config.n_flows = 1000;
      config.seed = options.seed * 3203 + static_cast<std::uint64_t>(rep);
      config.testbed.switch_config.miss_send_len = capture;
      const auto r = core::run_experiment(config);
      up.add(r.to_controller_mbps);
      cpu.add(r.controller_cpu_pct);
      setup.add(r.setup_ms.mean());
    }
    capture_table.add_row(std::to_string(capture), {up.mean(), cpu.mean(), setup.mean()});
  }
  capture_table.print(std::cout);
  std::cout << "\nCapturing the whole 1000-byte frame while still buffering approaches the\n"
               "no-buffer control load — the message-size saving, not the buffering\n"
               "itself, carries most of Fig. 2's benefit.\n";
  return 0;
}

#include "common.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>

#include "model/prescreen.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace sdnbuf::bench {

Options parse_options(int argc, char** argv) {
  const util::CliFlags flags(
      argc, argv,
      {"reps", "quick", "rates-coarse", "csv-dir", "seed", "quiet", "jobs", "prescreen",
       "metrics-out", "trace-out", "trace-sample", "profile", "log-level", "shards",
       "shard-threads"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n"
              << "usage: " << argv[0]
              << " [--reps N] [--quick] [--rates-coarse] [--csv-dir DIR] [--seed S] [--jobs N]\n"
              << "       [--prescreen] [--metrics-out F.json] [--trace-out F.json]\n"
              << "       [--trace-sample N] [--profile]"
              << " [--log-level trace|debug|info|warn|error|off]\n"
              << "       [--shards N] [--shard-threads N]  (fabric benches only)\n";
    std::exit(1);
  }
  Options options;
  options.repetitions = static_cast<int>(flags.get_int("reps", 20));
  if (flags.get_bool("quick", false)) options.repetitions = 3;
  if (flags.get_bool("rates-coarse", false)) {
    options.rates = {5, 20, 35, 50, 65, 80, 95};
  }
  options.csv_dir = flags.get_string("csv-dir", "results");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.quiet = flags.get_bool("quiet", false);
  options.jobs = static_cast<int>(flags.get_int(
      "jobs", static_cast<long long>(util::ThreadPool::default_parallelism())));
  if (options.jobs < 1) options.jobs = 1;
  options.prescreen = flags.get_bool("prescreen", false);
  options.metrics_out = flags.get_string("metrics-out", "");
  options.trace_out = flags.get_string("trace-out", "");
  options.trace_sample = static_cast<std::uint32_t>(flags.get_int("trace-sample", 16));
  if (options.trace_sample < 1) options.trace_sample = 1;
  options.profile = flags.get_bool("profile", false);
  options.shards = static_cast<unsigned>(flags.get_int("shards", 0));
  options.shard_threads = static_cast<unsigned>(flags.get_int("shard-threads", 1));
  if (options.shard_threads < 1) options.shard_threads = 1;
  if (flags.has("log-level")) {
    const std::string name = flags.get_string("log-level", "warn");
    const auto level = util::log_level_from_name(name);
    if (!level) {
      std::cerr << "error: unknown log level '" << name
                << "' (use trace|debug|info|warn|error|off)\n";
      std::exit(1);
    }
    util::set_log_level(*level);
  }
  return options;
}

std::string suffixed_path(const std::string& path, const std::string& label) {
  const auto dot = path.rfind('.');
  const auto slash = path.find_last_of("/\\");
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "-" + label;
  }
  return path.substr(0, dot) + "-" + label + path.substr(dot);
}

std::vector<MechanismSpec> e1_mechanisms() {
  return {
      {"no-buffer", sw::BufferMode::NoBuffer, 0},
      {"buffer-16", sw::BufferMode::PacketGranularity, 16},
      {"buffer-256", sw::BufferMode::PacketGranularity, 256},
  };
}

std::vector<MechanismSpec> e2_mechanisms() {
  return {
      {"packet-granularity", sw::BufferMode::PacketGranularity, 256},
      {"flow-granularity", sw::BufferMode::FlowGranularity, 256},
  };
}

namespace {

// The representative rate for the per-mechanism instrumented runs; the
// middle of the paper's 5..100 Mbps range, where buffering effects are
// visible but nothing saturates.
constexpr double kObservedRateMbps = 50.0;

// Screens the sweep's rate grid through the analytical oracle: every
// mechanism of the experiment becomes one model::Sweep scenario, and only
// the rates the model flags as interesting survive. All mechanisms of one
// experiment see the same mechanism set, so repeated calls return the same
// screened axis and overlaid figure curves stay aligned.
std::vector<double> prescreen_rates(const Options& options,
                                    const std::vector<MechanismSpec>& mechanisms,
                                    const core::ExperimentConfig& base) {
  model::Sweep sweep;
  sweep.rates_mbps = options.rates.empty() ? core::default_rates() : options.rates;
  std::string signature;
  for (const auto& m : mechanisms) {
    core::ExperimentConfig config = base;
    config.mode = m.mode;
    config.buffer_capacity = m.buffer_capacity == 0 ? 256 : m.buffer_capacity;
    sweep.scenarios.push_back({m.label, model::Params::from(config)});
    signature += m.label + "|";
  }
  const model::ScreenResult screen = sweep.run();

  // One log line per distinct mechanism set (run_e1 is called once per
  // mechanism with the identical grid; repeating the line is just noise).
  static std::set<std::string> logged;
  if (!options.quiet && logged.insert(signature).second) {
    std::cout << "prescreen: model kept " << screen.kept_rates_mbps.size() << "/"
              << sweep.rates_mbps.size() << " rates, skipping " << screen.skipped_cells() << "/"
              << screen.total_cells << " sweep cells\n";
    for (const auto& x : screen.crossovers) {
      std::cout << "prescreen: " << sweep.scenarios[x.scenario_a].label << " x "
                << sweep.scenarios[x.scenario_b].label << " delay crossover in ["
                << util::format_double(x.rate_low_mbps, 0) << ", "
                << util::format_double(x.rate_high_mbps, 0) << "] Mbps (~"
                << util::format_double(x.rate_estimate_mbps, 1) << ")\n";
    }
  }
  return screen.kept_rates_mbps;
}

core::SweepResult run_sweep_for(const Options& options, const MechanismSpec& mechanism,
                                core::ExperimentConfig base,
                                const std::vector<MechanismSpec>& experiment_mechanisms) {
  base.mode = mechanism.mode;
  base.buffer_capacity = mechanism.buffer_capacity == 0 ? 256 : mechanism.buffer_capacity;
  base.seed = options.seed;
  core::SweepConfig sweep;
  sweep.rates_mbps = options.prescreen ? prescreen_rates(options, experiment_mechanisms, base)
                                       : options.rates;
  sweep.repetitions = options.repetitions;
  sweep.jobs = options.jobs;
  sweep.base = base;
  core::SweepResult result = core::run_sweep(sweep, mechanism.label);
  run_observed(options, mechanism, base, kObservedRateMbps);
  return result;
}

}  // namespace

void run_observed(const Options& options, const MechanismSpec& mechanism,
                  core::ExperimentConfig base, double rate_mbps) {
  if (!options.observability_enabled()) return;

  core::ExperimentConfig config = base;
  config.mode = mechanism.mode;
  config.buffer_capacity = mechanism.buffer_capacity == 0 ? 256 : mechanism.buffer_capacity;
  config.seed = options.seed;
  config.rate_mbps = rate_mbps;

  obs::MetricsRegistry registry;
  obs::TraceWriter writer;
  obs::FlowTracer tracer{writer, options.seed, options.trace_sample};
  obs::EventLoopProfiler profiler;
  if (!options.metrics_out.empty()) config.metrics = &registry;
  if (!options.trace_out.empty()) config.tracer = &tracer;
  if (options.profile) config.profiler = &profiler;

  const core::ExperimentResult result = core::run_experiment(config);
  if (!options.quiet) {
    std::cout << "observed [" << mechanism.label << "] @ "
              << util::format_double(rate_mbps, 0) << " Mbps: " << core::summarize(result)
              << '\n';
  }

  if (!options.metrics_out.empty()) {
    registry.set_meta("label", mechanism.label);
    const std::string path = suffixed_path(options.metrics_out, mechanism.label);
    std::ofstream file(path);
    if (file) {
      registry.write_json(file);
      if (!options.quiet) std::cout << "wrote " << path << '\n';
    } else {
      std::cerr << "warning: could not write " << path << '\n';
    }
  }
  if (!options.trace_out.empty()) {
    writer.set_meta("label", mechanism.label);
    writer.set_meta("seed", std::to_string(options.seed));
    writer.set_meta("sample_period", std::to_string(options.trace_sample));
    const std::string path = suffixed_path(options.trace_out, mechanism.label);
    std::ofstream file(path);
    if (file) {
      writer.write_json(file);
      if (!options.quiet) {
        std::cout << "wrote " << path << " (" << writer.event_count() << " events)\n";
      }
    } else {
      std::cerr << "warning: could not write " << path << '\n';
    }
  }
  if (options.profile) {
    std::cout << "event-loop profile [" << mechanism.label << "]:\n";
    profiler.write_report(std::cout);
  }
}

core::SweepResult run_e1(const Options& options, const MechanismSpec& mechanism) {
  core::ExperimentConfig base;
  base.n_flows = 1000;
  base.packets_per_flow = 1;
  base.frame_size = 1000;
  base.order = host::EmissionOrder::Sequential;
  return run_sweep_for(options, mechanism, base, e1_mechanisms());
}

core::SweepResult run_e2(const Options& options, const MechanismSpec& mechanism) {
  core::ExperimentConfig base;
  base.n_flows = 50;
  base.packets_per_flow = 20;
  base.frame_size = 1000;
  base.order = host::EmissionOrder::CrossSequence;
  base.batch_size = 5;
  return run_sweep_for(options, mechanism, base, e2_mechanisms());
}

void print_figure(const Options& options, const std::string& figure_id, const std::string& title,
                  const std::string& unit, const std::vector<core::SweepResult>& sweeps,
                  const MetricFn& metric) {
  util::TableWriter table(figure_id + ": " + title + " [" + unit + "]");
  std::vector<std::string> columns{"rate (Mbps)"};
  for (const auto& sweep : sweeps) {
    columns.push_back(sweep.label + " mean");
    columns.push_back(sweep.label + " std");
  }
  table.set_columns(columns);

  const std::size_t n_rates = sweeps.empty() ? 0 : sweeps.front().points.size();
  for (std::size_t i = 0; i < n_rates; ++i) {
    std::vector<std::string> row{util::format_double(sweeps.front().points[i].rate_mbps, 0)};
    for (const auto& sweep : sweeps) {
      const auto& summary = metric(sweep.points[i]);
      row.push_back(util::format_double(summary.mean(), 3));
      row.push_back(util::format_double(summary.stddev(), 3));
    }
    table.add_row(std::move(row));
  }
  if (!options.quiet) {
    table.print(std::cout);
    std::cout << '\n';
  }

  std::error_code ec;
  std::filesystem::create_directories(options.csv_dir, ec);
  const std::string path = options.csv_dir + "/" + figure_id + ".csv";
  std::ofstream file(path);
  if (file) {
    util::CsvWriter csv(file);
    csv.header(columns);
    for (std::size_t i = 0; i < n_rates; ++i) {
      std::vector<double> cells{sweeps.front().points[i].rate_mbps};
      for (const auto& sweep : sweeps) {
        const auto& summary = metric(sweep.points[i]);
        cells.push_back(summary.mean());
        cells.push_back(summary.stddev());
      }
      csv.row(cells);
    }
    if (!options.quiet) std::cout << "wrote " << path << "\n\n";
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }
}

void print_claim(const std::string& label, const std::string& paper, double measured,
                 const std::string& unit) {
  std::cout << "  " << label << ": paper " << paper << ", measured "
            << util::format_double(measured, 1) << ' ' << unit << '\n';
}

}  // namespace sdnbuf::bench

// Fig. 13 — buffer utilization, packet- vs flow-granularity (§V.B.5):
// (a) average and (b) maximum number of buffer units in use.
//
// Paper shape: the flow-granularity buffer never needs more than ~5 units
// (all concurrent flows share one buffer_id slot each, and one packet_out
// frees a whole flow at once), while the packet-granularity buffer grows
// with the sending rate up to ~43 units at 95 Mbps (one unit per buffered
// packet, each released only by its own response) — a ~71.6% improvement in
// buffer utilization efficiency.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e2_mechanisms()) {
    sweeps.push_back(bench::run_e2(options, mechanism));
  }
  bench::print_figure(options, "fig13a", "average buffer units used (E2)", "units", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.buffer_avg_units;
                      });
  bench::print_figure(options, "fig13b", "maximum buffer units used (E2)", "units", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.buffer_max_units;
                      });
  return 0;
}

// Fig. 12 — (a) flow setup delay and (b) flow forwarding delay,
// packet- vs flow-granularity buffer (§V.B.4).
//
// Paper shape: (a) packet-granularity has slightly lower setup delay at low
// and middle rates (the flow-granularity map operations delay the first
// packet_in), but flow-granularity wins past ~80 Mbps; (b) forwarding delay
// (first packet in -> last packet out) is similar until ~80 Mbps, then the
// flow-granularity buffer is clearly faster (34.2 vs 54.7 ms at 95 Mbps in
// the paper) because one packet_out releases the whole flow — ~18% average
// reduction.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e2_mechanisms()) {
    sweeps.push_back(bench::run_e2(options, mechanism));
  }
  bench::print_figure(options, "fig12a", "flow setup delay (E2)", "ms", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.setup_ms;
                      });
  bench::print_figure(options, "fig12b", "flow forwarding delay (E2)", "ms", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.forwarding_ms;
                      });
  return 0;
}

// Fig. 9 — control path load, packet- vs flow-granularity buffer (§V.B.1).
//
// Workload: 50 flows x 20 packets in cross-sequence batches of 5, buffer
// 256. Paper shape: (a) flow-granularity keeps switch->controller load low
// and flat (one packet_in per flow; ~0.045 Mbps mean) while packet-
// granularity rises past ~30 Mbps (~0.123 Mbps mean) — ~64% reduction;
// (b) controller->switch shrinks ~80% (fewer responses).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e2_mechanisms()) {
    sweeps.push_back(bench::run_e2(options, mechanism));
  }
  bench::print_figure(options, "fig9a", "control path load, switch -> controller (E2)", "Mbps",
                      sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.to_controller_mbps;
                      });
  bench::print_figure(options, "fig9b", "control path load, controller -> switch (E2)", "Mbps",
                      sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.to_switch_mbps;
                      });
  return 0;
}

// Extension: Gigabit Ethernet (the paper's future work, §VII: "we will
// further evaluate the benefits of buffer adoption through commodity SDN
// switches with Gigabit Ethernet").
//
// Scales the testbed 10x: 1 Gbps host links, 1500-byte frames, rates
// 50-1000 Mbps, and a proportionally faster switch (bus and per-packet CPU
// costs scaled) — then re-asks the paper's headline question. The shapes
// survive: buffered control load stays an order of magnitude below
// no-buffer, and the buffer sizing needed grows with the line rate.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "util/csv.hpp"

namespace {

using namespace sdnbuf;

core::ExperimentConfig gigabit_config(sw::BufferMode mode, double rate, std::uint64_t seed) {
  core::ExperimentConfig config;
  config.mode = mode;
  config.buffer_capacity = 2048;  // scaled with the line rate
  config.rate_mbps = rate;
  config.frame_size = 1500;
  config.n_flows = 1000;
  config.seed = seed;
  config.testbed.host_link_mbps = 1000.0;
  config.testbed.control_link_mbps = 10000.0;
  // A switch built for GbE: ~10x the bus and substantially faster software
  // path than the 100 Mbps-era testbed machine.
  auto& costs = config.testbed.switch_config.costs;
  costs.bus_bandwidth_bps = 1.5e9;
  costs.miss_base_us = 10.0;
  costs.pkt_in_base_us = 8.0;
  costs.pkt_in_per_byte_us = 0.002;
  costs.flow_mod_install_us = 8.0;
  costs.pkt_out_base_us = 6.0;
  costs.pkt_out_per_byte_us = 0.0015;
  costs.buffer_store_us = 2.5;
  costs.buffer_release_us = 2.0;
  costs.buffer_reclaim_delay = sim::SimTime::milliseconds(1);
  auto& ctrl_costs = config.testbed.controller_config.costs;
  ctrl_costs.parse_base_us = 3.0;
  ctrl_costs.parse_per_byte_us = 0.015;
  ctrl_costs.decision_us = 6.0;
  ctrl_costs.encode_flow_mod_us = 4.0;
  ctrl_costs.encode_pkt_out_base_us = 3.0;
  ctrl_costs.encode_pkt_out_per_byte_us = 0.01;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);

  util::TableWriter table("gigabit extension: 1000 single-packet flows, 1500-byte frames, "
                          "1 Gbps access links");
  table.set_columns({"rate (Mbps)", "no-buffer up Mbps", "buffered up Mbps", "reduction %",
                     "no-buffer setup ms", "buffered setup ms", "buf max units"});

  for (const double rate : {100.0, 250.0, 500.0, 750.0, 950.0}) {
    util::Summary none_up;
    util::Summary buf_up;
    util::Summary none_setup;
    util::Summary buf_setup;
    util::Summary buf_units;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto seed = options.seed * 7121 + static_cast<std::uint64_t>(rep);
      const auto none =
          core::run_experiment(gigabit_config(sw::BufferMode::NoBuffer, rate, seed));
      const auto buffered =
          core::run_experiment(gigabit_config(sw::BufferMode::PacketGranularity, rate, seed));
      none_up.add(none.to_controller_mbps);
      buf_up.add(buffered.to_controller_mbps);
      none_setup.add(none.setup_ms.mean());
      buf_setup.add(buffered.setup_ms.mean());
      buf_units.add(buffered.buffer_max_units);
    }
    const double reduction = (1.0 - buf_up.mean() / none_up.mean()) * 100.0;
    table.add_row({util::format_double(rate, 0), util::format_double(none_up.mean(), 2),
                   util::format_double(buf_up.mean(), 2), util::format_double(reduction, 1),
                   util::format_double(none_setup.mean(), 3),
                   util::format_double(buf_setup.mean(), 3),
                   util::format_double(buf_units.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nThe benefit survives the 10x line-rate jump: the packet_in shrinkage is\n"
               "relative, so the control-path reduction holds at every scale, while the\n"
               "absolute buffer requirement grows roughly with the rate.\n";
  return 0;
}

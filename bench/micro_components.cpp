// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// OpenFlow codec, match evaluation, flow-table lookup, buffer managers,
// event queue, RNG — so regressions in the substrate are visible
// independently of the figure-level harness.
#include <benchmark/benchmark.h>

#include "net/packet.hpp"
#include "openflow/messages.hpp"
#include "sim/simulator.hpp"
#include "switchd/flow_buffer.hpp"
#include "switchd/flow_table.hpp"
#include "switchd/packet_buffer.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdnbuf;

net::Packet sample_packet(std::uint32_t flow) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow % 20000), 9, 1000);
  p.flow_id = flow;
  return p;
}

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng{42};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngLognormal(benchmark::State& state) {
  util::Rng rng{42};
  for (auto _ : state) benchmark::DoNotOptimize(rng.lognormal(1.0, 0.15));
}
BENCHMARK(BM_RngLognormal);

void BM_PacketSerialize(benchmark::State& state) {
  const auto p = sample_packet(1);
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(p.serialize(bytes));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PacketSerialize)->Arg(128)->Arg(1000);

void BM_PacketParse(benchmark::State& state) {
  const auto wire = sample_packet(1).serialize(128);
  for (auto _ : state) benchmark::DoNotOptimize(net::Packet::parse(wire, 1000));
}
BENCHMARK(BM_PacketParse);

void BM_EncodePacketIn(benchmark::State& state) {
  of::PacketIn pi;
  pi.buffer_id = 7;
  pi.total_len = 1000;
  pi.in_port = 1;
  pi.data = sample_packet(1).serialize(static_cast<std::size_t>(state.range(0)));
  const of::OfMessage msg{pi};
  for (auto _ : state) benchmark::DoNotOptimize(of::encode_message(msg));
}
BENCHMARK(BM_EncodePacketIn)->Arg(128)->Arg(1000);

void BM_DecodeFlowMod(benchmark::State& state) {
  of::FlowMod fm;
  fm.match = of::Match::exact_from(sample_packet(1), 1);
  fm.actions = of::output_to(2);
  const auto wire = of::encode_message(fm);
  for (auto _ : state) benchmark::DoNotOptimize(of::decode_message(wire));
}
BENCHMARK(BM_DecodeFlowMod);

void BM_MatchEvaluation(benchmark::State& state) {
  const auto p = sample_packet(1);
  const auto m = of::Match::exact_from(p, 1);
  for (auto _ : state) benchmark::DoNotOptimize(m.matches(p, 1));
}
BENCHMARK(BM_MatchEvaluation);

void BM_FlowTableLookupHit(benchmark::State& state) {
  sw::FlowTable table{16384};
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t f = 0; f < n; ++f) {
    sw::FlowEntry e;
    e.match = of::Match::exact_from(sample_packet(f), 1);
    e.priority = 100;
    e.actions = of::output_to(2);
    table.add(std::move(e), sim::SimTime::zero());
  }
  std::uint32_t f = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(sample_packet(f % n), 1, sim::SimTime::zero()));
    ++f;
  }
}
BENCHMARK(BM_FlowTableLookupHit)->Arg(16)->Arg(1024)->Arg(8192);

void BM_FlowTableLookupMiss(benchmark::State& state) {
  sw::FlowTable table{16384};
  for (std::uint32_t f = 0; f < 1024; ++f) {
    sw::FlowEntry e;
    e.match = of::Match::exact_from(sample_packet(f), 1);
    table.add(std::move(e), sim::SimTime::zero());
  }
  const auto p = sample_packet(99999);
  for (auto _ : state) benchmark::DoNotOptimize(table.lookup(p, 1, sim::SimTime::zero()));
}
BENCHMARK(BM_FlowTableLookupMiss);

void BM_PacketBufferStoreRelease(benchmark::State& state) {
  sim::Simulator sim;
  sw::PacketBufferManager buf{sim, 1 << 20, sim::SimTime::zero()};
  const auto p = sample_packet(1);
  for (auto _ : state) {
    const auto id = buf.store(p);
    benchmark::DoNotOptimize(buf.release(*id));
    if (sim.pending_events() > 4096) sim.run();
  }
  sim.run();
}
BENCHMARK(BM_PacketBufferStoreRelease);

void BM_FlowBufferStoreReleaseBurst(benchmark::State& state) {
  sim::Simulator sim;
  sw::FlowBufferManager buf{sim, 1 << 20, sim::SimTime::zero()};
  const auto burst = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    std::uint32_t id = 0;
    for (std::uint32_t i = 0; i < burst; ++i) {
      auto r = buf.store(sample_packet(1));
      id = r->buffer_id;
    }
    benchmark::DoNotOptimize(buf.release_all(id));
    if (sim.pending_events() > 4096) sim.run();
  }
  sim.run();
}
BENCHMARK(BM_FlowBufferStoreReleaseBurst)->Arg(1)->Arg(20);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(sim::SimTime::microseconds(i), []() {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_FlowKeyHash(benchmark::State& state) {
  const auto key = sample_packet(7).flow_key();
  for (auto _ : state) benchmark::DoNotOptimize(key.hash());
}
BENCHMARK(BM_FlowKeyHash);

}  // namespace

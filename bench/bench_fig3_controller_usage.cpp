// Fig. 3 — controller CPU usage under different sending rates (§IV.B).
//
// Paper shape: linear growth below ~50 Mbps for all variants; above that
// no-buffer escalates steeply (full-frame parsing + re-encapsulation
// saturates the controller), while buffer-16 (mean ~53%) and buffer-256
// (mean ~35%) stay comparatively low and stable; ~37% average reduction.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e1_mechanisms()) {
    sweeps.push_back(bench::run_e1(options, mechanism));
  }
  bench::print_figure(options, "fig3", "controller CPU usage (100% = one core)", "%", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.controller_cpu_pct;
                      });
  return 0;
}

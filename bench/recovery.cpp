#include "recovery.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/csv.hpp"

namespace sdnbuf::bench {

util::Summary& RecoveryCell::metric(const std::string& name) {
  for (auto& [n, s] : metrics_) {
    if (n == name) return s;
  }
  metrics_.emplace_back(name, util::Summary{});
  return metrics_.back().second;
}

const util::Summary* RecoveryCell::find(const std::string& name) const {
  for (const auto& [n, s] : metrics_) {
    if (n == name) return &s;
  }
  return nullptr;
}

double percent(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

RecoverySweep::RecoverySweep(std::string title, std::vector<std::string> key_columns,
                             std::vector<std::pair<std::string, int>> metric_columns)
    : title_(std::move(title)),
      key_columns_(std::move(key_columns)),
      metric_columns_(std::move(metric_columns)) {}

void RecoverySweep::add_cell(std::vector<std::string> keys, const RecoveryCell& cell) {
  rows_.push_back(Row{std::move(keys), cell});
}

void RecoverySweep::print(std::ostream& out) const {
  util::TableWriter table(title_);
  std::vector<std::string> columns = key_columns_;
  for (const auto& [name, decimals] : metric_columns_) {
    (void)decimals;
    columns.push_back(name);
  }
  table.set_columns(columns);
  for (const Row& row : rows_) {
    std::vector<std::string> cells = row.keys;
    for (const auto& [name, decimals] : metric_columns_) {
      const util::Summary* s = row.cell.find(name);
      cells.push_back(s == nullptr || s->count() == 0 ? "-"
                                                      : util::format_double(s->mean(), decimals));
    }
    table.add_row(std::move(cells));
  }
  table.print(out);
}

bool RecoverySweep::write_csv(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream file(path);
  if (!file) {
    std::cerr << "warning: could not write " << path << '\n';
    return false;
  }
  util::CsvWriter csv(file);
  std::vector<std::string> header = key_columns_;
  header.insert(header.end(), {"metric", "mean", "std", "count"});
  csv.header(header);
  for (const Row& row : rows_) {
    for (const auto& [name, summary] : row.cell.metrics()) {
      std::vector<std::string> cells = row.keys;
      cells.push_back(name);
      cells.push_back(util::format_double(summary.mean(), 6));
      cells.push_back(util::format_double(summary.stddev(), 6));
      cells.push_back(std::to_string(summary.count()));
      csv.row_strings(cells);
    }
  }
  return true;
}

}  // namespace sdnbuf::bench

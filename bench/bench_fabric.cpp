// Fabric-scale extension of the paper's single-switch analysis (§I, §VI):
// the reactive control-path cost and the buffer's saving measured on REAL
// datacenter topologies instead of a chain.
//
// Three sections:
//   A. Fabric size: a permutation traffic matrix over leaf-spine fabrics and
//      a k=4 fat-tree, per buffer mechanism — the Fig. 2 (control-path
//      load), Fig. 5 (flow setup delay) and Fig. 8 (buffer occupancy)
//      analogues as the path length and switch count grow.
//   B. Incast fan-in: N senders converge on one host; every sender's flow
//      misses at every hop toward the shared leaf, so pkt_in pressure
//      concentrates where fan-in does. Flow-granularity answers one miss per
//      flow per switch and so beats packet-granularity as fan-in grows.
//   C. Route installation: per-hop reactive vs controller full-path install
//      on the fat-tree (per-hop pays one round-trip per hop, full-path one
//      round-trip total plus proactive FlowMods).
//
// Every (cell, repetition) owns an independent Simulator/FabricTestbed with
// a seed derived only from its coordinates, so cells fan out across a
// ThreadPool into pre-assigned slots and merge sequentially: results are
// bit-identical for any --jobs value. A self-check re-runs the first cell
// inline and asserts exact equality.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/fabric_experiment.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sdnbuf;

struct FabricSpec {
  std::string label;
  topo::Topology topology;
};

struct CellMeta {
  std::string section;
  std::string fabric;
  std::string mechanism;
  unsigned fanin = 0;  // section B only
};

std::vector<core::FabricExperimentResult> run_cells(
    const std::vector<core::FabricExperimentConfig>& configs, int jobs) {
  std::vector<core::FabricExperimentResult> out(configs.size());
  if (jobs <= 1 || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) out[i] = run_fabric_experiment(configs[i]);
    return out;
  }
  const auto workers = std::min<std::size_t>(static_cast<std::size_t>(jobs), configs.size());
  util::ThreadPool pool(static_cast<unsigned>(workers));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    pool.submit([&configs, &out, i] { out[i] = run_fabric_experiment(configs[i]); });
  }
  pool.wait_idle();
  return out;
}

// Aggregates one metric across the repetitions of one cell.
struct CellSummary {
  util::Summary pkt_ins, full_frame, ctrl_kb, ctrl_mbps, first_pkt_ms, buf_avg, buf_max,
      flow_mods, preinstalls, delivered;
  std::uint64_t undelivered = 0;

  void add(const core::FabricExperimentResult& r) {
    pkt_ins.add(static_cast<double>(r.pkt_ins));
    full_frame.add(static_cast<double>(r.full_frame_pkt_ins));
    ctrl_kb.add(static_cast<double>(r.control_bytes) / 1000.0);
    ctrl_mbps.add(r.control_mbps);
    first_pkt_ms.add(r.first_packet_ms.empty() ? 0.0 : r.first_packet_ms.mean());
    buf_avg.add(r.buffer_avg_units);
    buf_max.add(r.buffer_max_units);
    flow_mods.add(static_cast<double>(r.flow_mods));
    preinstalls.add(static_cast<double>(r.path_preinstalls));
    delivered.add(static_cast<double>(r.packets_delivered));
    undelivered += r.packets_sent - r.packets_delivered;
  }
};

std::vector<bench::MechanismSpec> fabric_mechanisms() {
  return {
      {"no-buffer", sw::BufferMode::NoBuffer, 0},
      {"packet-granularity", sw::BufferMode::PacketGranularity, 256},
      {"flow-granularity", sw::BufferMode::FlowGranularity, 256},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  const int reps = options.repetitions;

  // Common workload shape: short multi-packet flows so packet- and
  // flow-granularity actually differ, at a rate the 100 Mbps edges carry.
  core::FabricExperimentConfig base;
  base.pattern = host::TrafficPattern::Permutation;
  base.duration_s = 0.25;
  base.flow_arrival_per_s = 300.0;
  base.min_packets = 2;
  base.max_packets = 20;
  base.in_flow_rate_mbps = 20.0;
  // --shards N runs every cell on the sharded engine (DESIGN.md §14); the
  // delivered multisets match the sequential engine, and the determinism
  // self-check below still holds at any fixed shard count.
  base.fabric.shards = options.shards;
  base.fabric.shard_threads = options.shard_threads;

  std::vector<core::FabricExperimentConfig> configs;
  std::vector<CellMeta> meta;
  std::vector<int> cell_of;  // config index -> cell index
  std::vector<int> cell_first;  // cell index -> first config index

  const auto push_cell = [&](const CellMeta& m, const core::FabricExperimentConfig& cell) {
    const int cell_index = static_cast<int>(meta.size());
    meta.push_back(m);
    cell_first.push_back(static_cast<int>(configs.size()));
    for (int rep = 0; rep < reps; ++rep) {
      core::FabricExperimentConfig c = cell;
      c.seed = options.seed * 97 + static_cast<std::uint64_t>(rep);
      configs.push_back(c);
      cell_of.push_back(cell_index);
    }
  };

  // --- Section A: fabric size sweep, permutation matrix.
  std::vector<FabricSpec> fabrics;
  fabrics.push_back({"leaf-spine-2x2", topo::make_leaf_spine(2, 2, 2)});
  fabrics.push_back({"leaf-spine-4x4", topo::make_leaf_spine(4, 4, 4)});
  fabrics.push_back({"fat-tree-k4", topo::make_fat_tree(4)});
  for (const auto& fabric : fabrics) {
    for (const auto& mechanism : fabric_mechanisms()) {
      core::FabricExperimentConfig c = base;
      c.topology = fabric.topology;
      c.mode = mechanism.mode;
      c.buffer_capacity = mechanism.buffer_capacity == 0 ? 256 : mechanism.buffer_capacity;
      push_cell({"A", fabric.label, mechanism.label, 0}, c);
    }
  }

  // --- Section B: incast fan-in sweep on the 4x4 leaf-spine.
  for (const unsigned fanin : {4u, 8u, 15u}) {
    for (const auto& mechanism : fabric_mechanisms()) {
      core::FabricExperimentConfig c = base;
      c.topology = fabrics[1].topology;
      c.pattern = host::TrafficPattern::Incast;
      c.incast_target = 0;
      c.incast_fanin = fanin;
      c.flow_arrival_per_s = 200.0;
      c.mode = mechanism.mode;
      c.buffer_capacity = mechanism.buffer_capacity == 0 ? 256 : mechanism.buffer_capacity;
      push_cell({"B", fabrics[1].label, mechanism.label, fanin}, c);
    }
  }

  // --- Section C: per-hop vs full-path install on the fat-tree.
  for (const auto routing :
       {core::FabricRouting::TopologyPerHop, core::FabricRouting::TopologyFullPath}) {
    core::FabricExperimentConfig c = base;
    c.topology = fabrics[2].topology;
    c.routing = routing;
    c.mode = sw::BufferMode::FlowGranularity;
    c.buffer_capacity = 256;
    push_cell({"C", fabrics[2].label, core::fabric_routing_name(routing), 0}, c);
  }

  const auto results = run_cells(configs, options.jobs);

  // Parallel determinism self-check: the first cell's first repetition,
  // re-run inline, must match the (possibly worker-produced) slot exactly.
  {
    const auto again = run_fabric_experiment(configs[0]);
    SDNBUF_CHECK_MSG(again.packets_sent == results[0].packets_sent &&
                         again.packets_delivered == results[0].packets_delivered &&
                         again.pkt_ins == results[0].pkt_ins &&
                         again.control_bytes == results[0].control_bytes &&
                         again.delivered == results[0].delivered,
                     "fabric determinism self-check failed");
  }

  std::vector<CellSummary> cells(meta.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    cells[static_cast<std::size_t>(cell_of[i])].add(results[i]);
  }

  util::TableWriter table_a(
      "A. permutation matrix vs fabric size (means over " + std::to_string(reps) + " seeds)");
  table_a.set_columns({"fabric", "mechanism", "pkt_ins", "full-frame", "ctrl KB", "ctrl Mbps",
                       "first-pkt ms", "buf avg", "buf max", "delivered"});
  util::TableWriter table_b("B. incast fan-in on leaf-spine-4x4");
  table_b.set_columns({"fan-in", "mechanism", "pkt_ins", "full-frame", "ctrl KB", "ctrl Mbps",
                       "first-pkt ms", "buf avg", "buf max", "delivered"});
  util::TableWriter table_c("C. route installation on fat-tree-k4 (flow-granularity)");
  table_c.set_columns({"install", "pkt_ins", "flow_mods", "preinstalls", "ctrl KB",
                       "first-pkt ms", "delivered"});

  std::uint64_t undelivered = 0;
  for (std::size_t i = 0; i < meta.size(); ++i) {
    const auto& m = meta[i];
    const auto& c = cells[i];
    undelivered += c.undelivered;
    if (m.section == "A") {
      table_a.add_row({m.fabric, m.mechanism, util::format_double(c.pkt_ins.mean(), 0),
                       util::format_double(c.full_frame.mean(), 0),
                       util::format_double(c.ctrl_kb.mean(), 1),
                       util::format_double(c.ctrl_mbps.mean(), 3),
                       util::format_double(c.first_pkt_ms.mean(), 3),
                       util::format_double(c.buf_avg.mean(), 2),
                       util::format_double(c.buf_max.mean(), 0),
                       util::format_double(c.delivered.mean(), 0)});
    } else if (m.section == "B") {
      table_b.add_row({std::to_string(m.fanin), m.mechanism,
                       util::format_double(c.pkt_ins.mean(), 0),
                       util::format_double(c.full_frame.mean(), 0),
                       util::format_double(c.ctrl_kb.mean(), 1),
                       util::format_double(c.ctrl_mbps.mean(), 3),
                       util::format_double(c.first_pkt_ms.mean(), 3),
                       util::format_double(c.buf_avg.mean(), 2),
                       util::format_double(c.buf_max.mean(), 0),
                       util::format_double(c.delivered.mean(), 0)});
    } else {
      table_c.add_row({m.mechanism, util::format_double(c.pkt_ins.mean(), 0),
                       util::format_double(c.flow_mods.mean(), 0),
                       util::format_double(c.preinstalls.mean(), 0),
                       util::format_double(c.ctrl_kb.mean(), 1),
                       util::format_double(c.first_pkt_ms.mean(), 3),
                       util::format_double(c.delivered.mean(), 0)});
    }
  }

  if (!options.quiet) {
    table_a.print(std::cout);
    std::cout << "\n";
    table_b.print(std::cout);
    std::cout << "\n";
    table_c.print(std::cout);
    std::cout << "\nControl-path load grows with fabric size for every mechanism (a miss per\n"
                 "hop), and the buffered designs ship headers instead of frames at every one\n"
                 "of those hops. Under incast the misses concentrate on the shared leaf:\n"
                 "flow-granularity answers one request per flow per switch and so sends\n"
                 "fewer pkt_ins than packet-granularity, more so as fan-in grows. Full-path\n"
                 "installation trades pkt_ins for proactive flow_mods: one round-trip per\n"
                 "flow instead of one per hop.\n";
    if (undelivered > 0) {
      std::cout << "warning: " << undelivered << " packets undelivered across all runs\n";
    }
    std::cout << "determinism self-check: OK (cell 0 re-run matches bit-for-bit)\n";
  }

  // Full-precision CSV, one row per cell (means across repetitions).
  std::error_code ec;
  std::filesystem::create_directories(options.csv_dir, ec);
  const std::string path = options.csv_dir + "/fabric.csv";
  std::ofstream out(path);
  util::CsvWriter csv(out);
  csv.header({"section", "fabric", "mechanism", "fanin", "pkt_ins", "full_frame_pkt_ins",
              "ctrl_kb", "ctrl_mbps", "first_packet_ms", "buffer_avg_units",
              "buffer_max_units", "flow_mods", "path_preinstalls", "delivered"});
  for (std::size_t i = 0; i < meta.size(); ++i) {
    const auto& m = meta[i];
    const auto& c = cells[i];
    csv.row_strings({m.section, m.fabric, m.mechanism, std::to_string(m.fanin),
                     util::format_double(c.pkt_ins.mean(), 6),
                     util::format_double(c.full_frame.mean(), 6),
                     util::format_double(c.ctrl_kb.mean(), 6),
                     util::format_double(c.ctrl_mbps.mean(), 6),
                     util::format_double(c.first_pkt_ms.mean(), 6),
                     util::format_double(c.buf_avg.mean(), 6),
                     util::format_double(c.buf_max.mean(), 6),
                     util::format_double(c.flow_mods.mean(), 6),
                     util::format_double(c.preinstalls.mean(), 6),
                     util::format_double(c.delivered.mean(), 6)});
  }
  if (!options.quiet) std::cout << "wrote " << path << "\n";
  return undelivered == 0 ? 0 : 2;
}

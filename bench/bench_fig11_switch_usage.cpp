// Fig. 11 — switch usage, packet- vs flow-granularity buffer (§V.B.3).
//
// Paper shape: both mechanisms show similar, low switch usage (the E2
// workload is light); the flow-granularity buffer does not add measurable
// switch overhead despite the extra buffer_id-map operations (paper means:
// 11.67% proposed vs 17.31% default — i.e. the proposed one is, if
// anything, slightly cheaper because it skips per-packet packet_in work).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e2_mechanisms()) {
    sweeps.push_back(bench::run_e2(options, mechanism));
  }
  bench::print_figure(options, "fig11", "switch CPU usage (E2)", "%", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.switch_cpu_pct;
                      });
  return 0;
}

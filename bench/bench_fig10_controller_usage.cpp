// Fig. 10 — controller usage, packet- vs flow-granularity buffer (§V.B.2).
//
// Paper shape: the proposed (flow-granularity) buffer keeps controller
// usage below ~30% across rates, while the default buffer needs more
// (mean ~25%, max ~65%), especially above 70 Mbps — ~35.7% average
// reduction from sending one request per flow instead of one per packet.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e2_mechanisms()) {
    sweeps.push_back(bench::run_e2(options, mechanism));
  }
  bench::print_figure(options, "fig10", "controller CPU usage (E2)", "%", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.controller_cpu_pct;
                      });
  return 0;
}

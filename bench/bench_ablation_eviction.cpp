// Ablation: flow-table eviction policy under table pressure.
//
// §VI.B's motivation — rules "kicked out from the size limited flow table"
// — depends on *which* rule gets kicked. The related work (LRU caching
// [13], flow-driven caching [17], adaptive wildcard caching [29]) is about
// exactly this choice. Here a skewed workload (a few hot flows + a long
// tail of one-off flows, Zipf-like) runs against an undersized table; every
// victim that gets re-used costs another packet_in, so the request count
// directly measures the policy's caching quality.
#include <iostream>

#include "common.hpp"
#include "core/testbed.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdnbuf;

struct EvictionResult {
  std::uint64_t pkt_ins = 0;
  std::uint64_t evictions = 0;
  double hit_rate_pct = 0.0;
};

EvictionResult run_policy(sw::EvictionPolicy policy, std::uint64_t seed) {
  core::TestbedConfig config;
  config.switch_config.buffer_mode = sw::BufferMode::PacketGranularity;
  config.switch_config.flow_table_capacity = 48;
  config.switch_config.eviction_policy = policy;
  config.seed = seed;
  core::Testbed bed{config};
  bed.warm_up();

  // 3000 packet arrivals: 70% drawn from 24 hot flows (fits in half the
  // table), 30% from a 2000-flow cold tail (each cold flow ~once).
  util::Rng rng{seed * 131 + 7};
  const sim::SimTime gap = sim::SimTime::microseconds(200);
  std::uint32_t cold_next = 1000;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    const bool hot = rng.next_double() < 0.7;
    const std::uint32_t flow =
        hot ? static_cast<std::uint32_t>(rng.next_below(24)) : cold_next++;
    net::Packet p = net::make_udp_packet(bed.host1_mac(), bed.host2_mac(),
                                         net::Ipv4Address{0x0a010001u + flow}, bed.host2_ip(),
                                         static_cast<std::uint16_t>(10000 + flow % 20000), 9,
                                         500);
    p.flow_id = flow;
    bed.sim().schedule_at(bed.sim().now() + gap.scaled(i),
                          [&bed, p]() { bed.inject_from_host1(p); });
  }
  bed.sim().run_until(bed.sim().now() + sim::SimTime::seconds(2));
  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();

  EvictionResult r;
  r.pkt_ins = bed.ovs().counters().pkt_ins_sent;
  r.evictions = bed.ovs().flow_table().evictions();
  r.hit_rate_pct = 100.0 * static_cast<double>(bed.ovs().flow_table().hits()) /
                   static_cast<double>(bed.ovs().flow_table().lookups());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);

  util::TableWriter table(
      "ablation: eviction policy, 48-rule table, skewed workload "
      "(24 hot flows + cold tail, 3000 packets)");
  table.set_columns({"policy", "pkt_ins", "evictions", "table hit rate %"});
  for (const auto policy :
       {sw::EvictionPolicy::Lru, sw::EvictionPolicy::Fifo, sw::EvictionPolicy::Random}) {
    util::Summary pkt_ins;
    util::Summary evictions;
    util::Summary hit_rate;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto r = run_policy(policy, options.seed * 17 + static_cast<std::uint64_t>(rep));
      pkt_ins.add(static_cast<double>(r.pkt_ins));
      evictions.add(static_cast<double>(r.evictions));
      hit_rate.add(r.hit_rate_pct);
    }
    table.add_row({sw::eviction_policy_name(policy), util::format_double(pkt_ins.mean(), 0),
                   util::format_double(evictions.mean(), 0),
                   util::format_double(hit_rate.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nLRU keeps the hot flows resident (fewest repeat packet_ins); FIFO and\n"
               "random keep evicting them — every re-miss is another request the buffer\n"
               "mechanism then has to absorb. Rule caching and switch buffering attack\n"
               "the same overhead from opposite ends.\n";
  return 0;
}

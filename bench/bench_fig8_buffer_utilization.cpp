// Fig. 8 — buffer utilization under different sending rates (§IV.G).
//
// Paper shape: buffer-16 is pinned at its 16-unit capacity once the rate
// exceeds ~30 Mbps (exhaustion); buffer-256's usage grows with the rate and
// needs no more than ~80 units at the maximum rate — i.e. an 80 KB buffer
// suffices for a 100 Mbps interface with 1000-byte frames. We report the
// peak units in use per run (and the time-weighted average as a second
// table).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  // Only the buffered variants have a buffer to observe.
  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e1_mechanisms()) {
    if (mechanism.mode == sw::BufferMode::NoBuffer) continue;
    sweeps.push_back(bench::run_e1(options, mechanism));
  }
  bench::print_figure(options, "fig8", "buffer utilization (max units in use)", "units", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.buffer_max_units;
                      });
  bench::print_figure(options, "fig8_avg", "buffer utilization (time-weighted average)",
                      "units", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.buffer_avg_units;
                      });
  return 0;
}

// Ablation: protocol choices on the control path.
//
// (a) Piggybacked release: the controller can put the buffer_id into the
//     flow_mod (one message down per flow, Floodlight-style) or send an
//     explicit packet_out after the flow_mod (two messages, the shape
//     Algorithm 2 specifies). This isolates how much of the
//     controller->switch saving in Fig. 2(b) comes from the piggyback.
// (b) Statistics polling: periodic aggregate+port stats requests add a
//     baseline control load independent of the buffer mechanism; the sweep
//     shows the buffer savings dominate until polling gets very aggressive.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  // --- (a) piggyback on/off ---
  util::TableWriter piggy_table(
      "ablation A: buffered release via flow_mod piggyback vs explicit packet_out "
      "(buffer-256, 50 Mbps, E1)");
  piggy_table.set_columns({"variant", "down Mbps", "down msgs", "setup ms"});
  for (const bool piggyback : {true, false}) {
    util::Summary down;
    util::Summary msgs;
    util::Summary setup;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      core::ExperimentConfig config;
      config.mode = sw::BufferMode::PacketGranularity;
      config.rate_mbps = 50.0;
      config.n_flows = 1000;
      config.seed = options.seed * 5471 + static_cast<std::uint64_t>(rep);
      config.testbed.controller_config.piggyback_buffer_id = piggyback;
      const auto r = core::run_experiment(config);
      down.add(r.to_switch_mbps);
      msgs.add(static_cast<double>(r.to_switch_msgs));
      setup.add(r.setup_ms.mean());
    }
    piggy_table.add_row({piggyback ? "flow_mod(buffer_id)" : "flow_mod + packet_out",
                         util::format_double(down.mean(), 3),
                         util::format_double(msgs.mean(), 0),
                         util::format_double(setup.mean(), 3)});
  }
  piggy_table.print(std::cout);
  std::cout << '\n';

  // --- (b) stats polling interval ---
  util::TableWriter stats_table(
      "ablation B: periodic statistics polling on top of buffer-256 (50 Mbps, E1)");
  stats_table.set_columns({"poll interval", "up Mbps", "down Mbps", "stats requests"});
  for (const int interval_ms : {0, 1000, 100, 10}) {
    util::Summary up;
    util::Summary down;
    util::Summary requests;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      core::ExperimentConfig config;
      config.mode = sw::BufferMode::PacketGranularity;
      config.rate_mbps = 50.0;
      config.n_flows = 1000;
      config.seed = options.seed * 6007 + static_cast<std::uint64_t>(rep);
      config.testbed.controller_config.stats_poll_interval =
          sim::SimTime::milliseconds(interval_ms);
      const auto r = core::run_experiment(config);
      up.add(r.to_controller_mbps);
      down.add(r.to_switch_mbps);
      requests.add(static_cast<double>(r.stats_requests));
    }
    stats_table.add_row({interval_ms == 0 ? "off" : std::to_string(interval_ms) + " ms",
                         util::format_double(up.mean(), 3),
                         util::format_double(down.mean(), 3),
                         util::format_double(requests.mean(), 0)});
  }
  stats_table.print(std::cout);
  std::cout << "\nEven 10 ms polling adds little next to full-frame packet_ins — reducing\n"
               "the reactive path (the buffer's job) dominates monitoring overheads.\n";
  return 0;
}

// Sharded-engine scaling benchmark (DESIGN.md §14).
//
// Runs the same fat-tree permutation workload on the sequential engine
// (shards = 0, the legacy Simulator path) and on the sharded engine at
// increasing shard counts, with the worker-thread count pinned to the
// host's core count (or --threads). Two contracts are checked on the spot,
// not just timed:
//
//   identity   every sharded configuration is run twice and the full result
//              fingerprint (all counters, first-packet samples, delivered
//              multiset) must be bit-identical across the repeats
//   agreement  each sharded run must deliver the exact payload multiset of
//              the sequential run, with the same flow and emission counts
//
// Speedup is min-wall(sequential) / min-wall(sharded). On a 1-core host the
// threaded windows only add synchronization cost, so speedups below 1.0
// there are expected — the JSON/CSV records host_cores so readers can tell
// oversubscription from a real regression. Cases: fat-tree k=4 always,
// k=8 added in full (non --quick) mode.
//
// Output: an aligned table on stdout and results/shards.csv.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fabric_experiment.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"

namespace {

namespace core = sdnbuf::core;
namespace topo = sdnbuf::topo;
namespace sw = sdnbuf::sw;
namespace host = sdnbuf::host;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Case {
  std::string label;
  topo::Topology topology;
  double duration_s;
  double flow_arrival_per_s;
};

core::FabricExperimentConfig make_config(const Case& c, unsigned shards, unsigned threads) {
  core::FabricExperimentConfig config;
  config.topology = c.topology;
  config.routing = core::FabricRouting::TopologyPerHop;
  config.mode = sw::BufferMode::PacketGranularity;
  config.buffer_capacity = 256;
  config.pattern = host::TrafficPattern::Permutation;
  config.duration_s = c.duration_s;
  config.flow_arrival_per_s = c.flow_arrival_per_s;
  config.max_packets = 20;
  config.seed = 11;
  config.fabric.shards = shards;
  config.fabric.shard_threads = threads;
  return config;
}

// Everything that must be bit-identical at a fixed shard count, serialized
// with full precision (mirrors tests/test_sharded.cpp).
std::string fingerprint(const core::FabricExperimentResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.flows << ' ' << r.packets_sent << ' ' << r.packets_delivered << ' ' << r.duplicates
     << ' ' << r.pkt_ins << ' ' << r.full_frame_pkt_ins << ' ' << r.flow_mods << ' '
     << r.pkt_outs << ' ' << r.path_preinstalls << ' ' << r.control_msgs << ' '
     << r.control_bytes << ' ' << r.buffer_avg_units << ' ' << r.buffer_max_units << ' '
     << r.duration_s << ' ' << r.drained << '\n';
  for (const double v : r.first_packet_ms.values()) os << v << ' ';
  os << '\n';
  for (const auto& [flow, seq] : r.delivered) os << flow << ':' << seq << ' ';
  return os.str();
}

struct Point {
  unsigned shards = 0;  // 0 = sequential engine
  unsigned threads = 1;
  double min_wall_s = 0.0;
  double speedup = 1.0;       // vs the sequential point of the same case
  bool identical = true;      // repeat fingerprints matched
  bool agrees = true;         // delivered multiset == sequential run's
  std::uint64_t packets = 0;
};

struct CaseScore {
  std::string label;
  unsigned hosts = 0;
  unsigned switches = 0;
  std::uint64_t flows = 0;
  std::vector<Point> points;
};

CaseScore run_case(const Case& c, const std::vector<unsigned>& shard_counts, unsigned threads,
                   int reps) {
  CaseScore score;
  score.label = c.label;
  score.hosts = c.topology.n_hosts();
  score.switches = c.topology.n_switches();

  // Sequential reference: best-of-reps wall time plus the reference
  // fingerprint every sharded configuration must agree with.
  Point seq;
  seq.shards = 0;
  seq.threads = 1;
  seq.min_wall_s = 1e300;
  core::FabricExperimentResult reference;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    core::FabricExperimentResult r = core::run_fabric_experiment(make_config(c, 0, 1));
    const double wall = seconds_since(t0);
    if (wall < seq.min_wall_s) seq.min_wall_s = wall;
    if (i == 0) {
      reference = std::move(r);
    } else if (fingerprint(r) != fingerprint(reference)) {
      seq.identical = false;
    }
  }
  seq.packets = reference.packets_delivered;
  score.flows = reference.flows;
  score.points.push_back(seq);

  for (const unsigned shards : shard_counts) {
    Point p;
    p.shards = shards;
    p.threads = threads;
    p.min_wall_s = 1e300;
    std::string first_print;
    for (int i = 0; i < std::max(reps, 2); ++i) {  // >=2 runs: identity needs a repeat
      const auto t0 = std::chrono::steady_clock::now();
      const core::FabricExperimentResult r =
          core::run_fabric_experiment(make_config(c, shards, threads));
      const double wall = seconds_since(t0);
      if (wall < p.min_wall_s) p.min_wall_s = wall;
      const std::string print = fingerprint(r);
      if (i == 0) {
        first_print = print;
        p.packets = r.packets_delivered;
        p.agrees = r.delivered == reference.delivered && r.flows == reference.flows &&
                   r.packets_sent == reference.packets_sent;
      } else if (print != first_print) {
        p.identical = false;
      }
    }
    p.speedup = seq.min_wall_s / p.min_wall_s;
    score.points.push_back(p);
  }
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  const sdnbuf::util::CliFlags flags(argc, argv, {"quick", "threads", "reps", "csv-dir"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n"
              << "usage: " << argv[0] << " [--quick] [--threads N] [--reps N] [--csv-dir DIR]\n";
    return 1;
  }
  const bool quick = flags.get_bool("quick", false);
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  const auto threads =
      static_cast<unsigned>(flags.get_int("threads", static_cast<long long>(host_cores)));
  const int reps = static_cast<int>(flags.get_int("reps", quick ? 2 : 3));
  const std::string csv_dir = flags.get_string("csv-dir", "results");

  std::vector<Case> cases;
  cases.push_back({"fat-tree-k4", topo::make_fat_tree(4), quick ? 0.05 : 0.3,
                   quick ? 400.0 : 1000.0});
  if (!quick) cases.push_back({"fat-tree-k8", topo::make_fat_tree(8), 0.25, 2000.0});

  const std::vector<unsigned> shard_counts = quick ? std::vector<unsigned>{2, 4}
                                                   : std::vector<unsigned>{2, 4, 8};

  std::printf("bench_shards (%s, threads=%u, host_cores=%u, reps=%d)\n",
              quick ? "quick" : "full", threads, host_cores, reps);

  std::vector<CaseScore> scores;
  bool all_ok = true;
  for (const Case& c : cases) {
    CaseScore score = run_case(c, shard_counts, threads, reps);
    std::printf("%s: %u switches, %u hosts, %llu flows\n", score.label.c_str(), score.switches,
                score.hosts, static_cast<unsigned long long>(score.flows));
    for (const Point& p : score.points) {
      if (p.shards == 0) {
        std::printf("  sequential          %8.3f s   %llu packets\n", p.min_wall_s,
                    static_cast<unsigned long long>(p.packets));
      } else {
        std::printf("  shards=%u threads=%u %8.3f s   speedup %5.2fx   %s  %s\n", p.shards,
                    p.threads, p.min_wall_s, p.speedup,
                    p.identical ? "bit-identical" : "DIVERGED", p.agrees ? "agrees" : "DISAGREES");
      }
      all_ok = all_ok && p.identical && p.agrees;
    }
    scores.push_back(std::move(score));
  }

  std::filesystem::create_directories(csv_dir);
  const std::string csv_path = csv_dir + "/shards.csv";
  std::ofstream csv(csv_path);
  if (!csv) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  csv << "case,switches,hosts,flows,shards,threads,host_cores,min_wall_s,speedup,"
         "identical,agrees\n";
  csv.precision(9);
  for (const CaseScore& score : scores) {
    for (const Point& p : score.points) {
      csv << score.label << ',' << score.switches << ',' << score.hosts << ',' << score.flows
          << ',' << p.shards << ',' << p.threads << ',' << host_cores << ',' << p.min_wall_s
          << ',' << p.speedup << ',' << (p.identical ? 1 : 0) << ',' << (p.agrees ? 1 : 0)
          << '\n';
    }
  }
  std::printf("wrote %s\n", csv_path.c_str());

  if (!all_ok) {
    std::cerr << "determinism contract violated -- see DIVERGED/DISAGREES rows above\n";
    return 1;
  }
  return 0;
}

// Robustness: the control channel misbehaves.
//
// Part 1 — lossy channel. A fraction of control messages is dropped in
// both directions (seeded of::FaultProfile). The flow-granularity
// mechanism's re-request timeout (Algorithm 1, lines 12-13) recovers a
// lost request or release, so its delivery stays near 100%; the
// packet-granularity buffer strands each affected packet until expiry;
// without a buffer the full-frame exchange is both slower (longer
// vulnerable window, more punts per flow) and unrecoverable.
//
// Part 2 — outage, degradation and recovery. The channel goes dark at
// 1.05 s, just before the 1.1 s table sweep hard-expires the installed
// rules (hard timeout 1 s), so the flows re-miss into a dead channel:
// misses are buffered and their pkt_ins lost until echo liveness
// (50 ms x 3) degrades the switch at ~1.2 s. From then on fail-standalone
// floods misses while fail-secure drops them (and has already expired its
// buffers). When the window closes the hello re-handshake restores the
// connection; after the short outage the stranded flow-granularity units
// are still younger than the 500 ms buffer expiry, so reconciliation
// re-requests and delivers them (packet-granularity orphans are expired);
// the long outage outlives the expiry and recovery comes too late.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "recovery.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  const std::vector<bench::MechanismSpec> mechanisms = {
      {"no-buffer", sw::BufferMode::NoBuffer, 0},
      {"packet-granularity", sw::BufferMode::PacketGranularity, 256},
      {"flow-granularity", sw::BufferMode::FlowGranularity, 256}};

  // ---- Part 1: symmetric channel loss sweep --------------------------------
  bench::RecoverySweep loss_sweep(
      "robustness: control channel drops a fraction of messages in each direction "
      "(50 flows x 6 packets at 50 Mbps)",
      {"mechanism", "loss %"},
      {{"delivered %", 1}, {"resend pkt_ins", 1}, {"msgs lost", 1}, {"setup ms", 3}});

  for (const auto& mechanism : mechanisms) {
    for (const double loss : {0.0, 0.05, 0.10, 0.20}) {
      bench::RecoveryCell cell;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        core::ExperimentConfig config;
        config.mode = mechanism.mode;
        config.buffer_capacity = 256;
        config.rate_mbps = 50.0;
        config.n_flows = 50;
        config.packets_per_flow = 6;
        config.order = host::EmissionOrder::CrossSequence;
        config.seed = options.seed * 4241 + static_cast<std::uint64_t>(rep);
        config.testbed.fault_profile.loss_to_controller = loss;
        config.testbed.fault_profile.loss_to_switch = loss;
        config.drain_timeout = sim::SimTime::seconds(2);
        const auto r = core::run_experiment(config);
        cell.metric("delivered %").add(bench::percent(r.packets_delivered, r.packets_sent));
        cell.metric("resend pkt_ins").add(static_cast<double>(r.resend_pkt_ins));
        cell.metric("msgs lost").add(static_cast<double>(r.channel_lost_msgs));
        if (r.setup_ms.count() > 0) cell.metric("setup ms").add(r.setup_ms.mean());
      }
      loss_sweep.add_cell({mechanism.label, util::format_double(loss * 100, 0)}, cell);
    }
  }
  loss_sweep.print(std::cout);
  loss_sweep.write_csv(options.csv_dir + "/robustness_loss.csv");
  std::cout << "\nOnly the flow-granularity mechanism re-requests after a loss, so it\n"
               "recovers both lost requests and lost releases; packet-granularity\n"
               "strands the affected packet until buffer expiry, and no-buffer both\n"
               "loses the frame outright and punts more packets per flow (its\n"
               "full-frame exchange is slower, widening the vulnerable window).\n\n";

  // ---- Part 2: outage, degradation modes and recovery ----------------------
  bench::RecoverySweep outage_sweep(
      "robustness: control connection outage starting 1.05 s into a 5-flow, 20 Mbps run "
      "(rules hard-expire after 1 s; echo 50 ms x 3 misses)",
      {"mechanism", "fail mode", "outage s"},
      {{"delivered %", 1},
       {"restore ms", 0},
       {"degraded fwd", 0},
       {"degraded drop", 0},
       {"reconcile rereq", 1},
       {"reconcile exp", 1},
       {"resends", 1}});

  const sim::SimTime outage_start = sim::SimTime::milliseconds(1050);
  for (const auto& mechanism : mechanisms) {
    for (const auto fail_mode :
         {sw::ConnectionFailMode::FailSecure, sw::ConnectionFailMode::FailStandalone}) {
      for (const double outage_s : {0.3, 0.7}) {
        bench::RecoveryCell cell;
        for (int rep = 0; rep < options.repetitions; ++rep) {
          core::ExperimentConfig config;
          config.mode = mechanism.mode;
          config.buffer_capacity = 256;
          config.rate_mbps = 20.0;
          config.n_flows = 5;
          config.packets_per_flow = 1200;
          config.order = host::EmissionOrder::CrossSequence;
          config.seed = options.seed * 51721 + static_cast<std::uint64_t>(rep);
          config.testbed.controller_config.rule_hard_timeout_s = 1;
          config.testbed.switch_config.echo_interval = sim::SimTime::milliseconds(50);
          config.testbed.switch_config.echo_miss_threshold = 3;
          config.testbed.switch_config.fail_mode = fail_mode;
          config.testbed.fault_profile.outages.push_back(
              {outage_start, outage_start + sim::SimTime::from_seconds(outage_s)});
          config.drain_timeout = sim::SimTime::seconds(2);
          const auto r = core::run_experiment(config);
          cell.metric("delivered %").add(bench::percent(r.packets_delivered, r.packets_sent));
          if (r.last_reconnect_s >= 0.0) {
            cell.metric("restore ms")
                .add(1e3 * (r.last_reconnect_s - (outage_start.sec() + outage_s)));
          }
          cell.metric("degraded fwd").add(static_cast<double>(r.standalone_forwarded));
          cell.metric("degraded drop").add(static_cast<double>(r.failsecure_dropped));
          cell.metric("reconcile rereq").add(static_cast<double>(r.reconcile_rerequests));
          cell.metric("reconcile exp").add(static_cast<double>(r.reconcile_expired));
          cell.metric("resends").add(static_cast<double>(r.resend_pkt_ins));
        }
        outage_sweep.add_cell({mechanism.label, sw::fail_mode_name(fail_mode),
                               util::format_double(outage_s, 1)},
                              cell);
      }
    }
  }
  outage_sweep.print(std::cout);
  outage_sweep.write_csv(options.csv_dir + "/robustness_outage.csv");
  std::cout << "\nThe rules hard-expire into a dead channel, so misses are buffered and\n"
               "their pkt_ins lost until liveness degrades the switch; from then on\n"
               "fail-standalone floods misses (fwd) while fail-secure drops them (drop,\n"
               "after expiring its buffers at degradation). After the short outage the\n"
               "re-handshake lands while stranded flow-granularity units are younger\n"
               "than the 500 ms buffer expiry, so reconciliation re-requests and\n"
               "delivers them; packet-granularity can only expire its orphans. The\n"
               "long outage outlives the buffer expiry: nothing is left to reconcile\n"
               "and the buffered packets are lost in every mechanism.\n";
  return 0;
}

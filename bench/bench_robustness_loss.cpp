// Robustness: lossy/overloaded controller (fault injection).
//
// The flow-granularity mechanism carries a re-request timeout (Algorithm 1,
// lines 12-13) precisely so a lost or ignored packet_in does not strand the
// buffered flow. This bench drops a fraction of packet_ins at the controller
// and compares delivery: without a buffer a dropped request loses the packet
// outright; with the packet-granularity buffer the packet waits until buffer
// expiry and is lost; with the flow-granularity buffer the resend recovers
// it at the cost of one timeout.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  util::TableWriter table("robustness: controller drops a fraction of packet_ins "
                          "(50 flows x 4 packets at 50 Mbps)");
  table.set_columns({"mechanism", "drop %", "delivered %", "resend pkt_ins", "setup ms"});

  for (const auto& mechanism :
       {bench::MechanismSpec{"no-buffer", sw::BufferMode::NoBuffer, 0},
        bench::MechanismSpec{"packet-granularity", sw::BufferMode::PacketGranularity, 256},
        bench::MechanismSpec{"flow-granularity", sw::BufferMode::FlowGranularity, 256}}) {
    for (const double drop : {0.0, 0.05, 0.10, 0.20}) {
      util::Summary delivered_pct;
      util::Summary resends;
      util::Summary setup;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        core::ExperimentConfig config;
        config.mode = mechanism.mode;
        config.buffer_capacity = 256;
        config.rate_mbps = 50.0;
        config.n_flows = 50;
        config.packets_per_flow = 4;
        config.order = host::EmissionOrder::CrossSequence;
        config.seed = options.seed * 4241 + static_cast<std::uint64_t>(rep);
        config.testbed.controller_config.drop_pkt_in_probability = drop;
        const auto r = core::run_experiment(config);
        delivered_pct.add(100.0 * static_cast<double>(r.packets_delivered) /
                          static_cast<double>(r.packets_sent));
        resends.add(static_cast<double>(r.resend_pkt_ins));
        if (r.setup_ms.count() > 0) setup.add(r.setup_ms.mean());
      }
      table.add_row({mechanism.label, util::format_double(drop * 100, 0),
                     util::format_double(delivered_pct.mean(), 1),
                     util::format_double(resends.mean(), 1),
                     util::format_double(setup.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nOnly the flow-granularity mechanism recovers dropped requests (its\n"
               "timeout re-request), sustaining ~100% delivery; the others lose every\n"
               "packet whose request the controller dropped.\n";
  return 0;
}

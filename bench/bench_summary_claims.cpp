// Headline claims — every "on average" percentage in the abstract, §IV and
// §V, recomputed from full sweeps and printed next to the paper's number.
//
// Reductions use the ratio of means over the whole rate sweep (1 - b̄/ā),
// the arithmetic behind the paper's "on average" numbers (e.g. its 78% flow
// setup delay reduction is 1 - 1.17 ms / 5.28 ms).
#include <iostream>

#include "common.hpp"

namespace {

using sdnbuf::core::RatePoint;
using sdnbuf::core::SweepResult;

// (1 - mean_over_rates(b) / mean_over_rates(a)) * 100 — ratio of means, the
// paper's "on average" arithmetic (e.g. 1 - 1.17ms/5.28ms = 78%).
double reduction_pct(const SweepResult& a, const SweepResult& b,
                     const std::function<double(const RatePoint&)>& metric) {
  sdnbuf::util::Summary sa;
  sdnbuf::util::Summary sb;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    sa.add(metric(a.points[i]));
    sb.add(metric(b.points[i]));
  }
  if (sa.mean() <= 0) return 0.0;
  return (1.0 - sb.mean() / sa.mean()) * 100.0;
}

double at_rate(const SweepResult& r, double rate,
               const std::function<double(const RatePoint&)>& metric) {
  for (const auto& p : r.points) {
    if (p.rate_mbps == rate) return metric(p);
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::cout << "== Summary claims: paper vs this reproduction ==\n";
  std::cout << "(reps=" << options.repetitions << " per rate; reductions are means over the "
            << "5-100 Mbps sweep)\n\n";

  // --- Experiment 1 (default buffer benefits, §IV) ---
  const auto e1 = bench::e1_mechanisms();
  const auto none = bench::run_e1(options, e1[0]);
  const auto b16 = bench::run_e1(options, e1[1]);
  const auto b256 = bench::run_e1(options, e1[2]);

  auto up = [](const RatePoint& p) { return p.to_controller_mbps.mean(); };
  auto down = [](const RatePoint& p) { return p.to_switch_mbps.mean(); };
  auto ctrl_cpu = [](const RatePoint& p) { return p.controller_cpu_pct.mean(); };
  auto sw_cpu = [](const RatePoint& p) { return p.switch_cpu_pct.mean(); };
  auto setup = [](const RatePoint& p) { return p.setup_ms.mean(); };
  auto ctrl_delay = [](const RatePoint& p) { return p.controller_ms.mean(); };
  auto sw_delay = [](const RatePoint& p) { return p.switch_ms.mean(); };
  auto fwd = [](const RatePoint& p) { return p.forwarding_ms.mean(); };
  auto buf_avg = [](const RatePoint& p) { return p.buffer_avg_units.mean(); };
  auto buf_max = [](const RatePoint& p) { return p.buffer_max_units.mean(); };

  std::cout << "Experiment 1 (no-buffer vs buffer-256, 1000 single-packet flows):\n";
  bench::print_claim("control path load reduction, switch->controller", "78.7%",
                     reduction_pct(none, b256, up), "%");
  bench::print_claim("control path load reduction, controller->switch", "96%",
                     reduction_pct(none, b256, down), "%");
  bench::print_claim("controller overhead reduction", "37%",
                     reduction_pct(none, b256, ctrl_cpu), "%");
  bench::print_claim("switch overhead increase (buffer-256 vs no-buffer)", "+5.6%",
                     -reduction_pct(none, b256, sw_cpu), "%");
  bench::print_claim("flow setup delay reduction (buffer-256)", "78%",
                     reduction_pct(none, b256, setup), "%");
  bench::print_claim("controller delay reduction (buffer-256)", "58%",
                     reduction_pct(none, b256, ctrl_delay), "%");
  bench::print_claim("switch delay reduction (buffer-256)", "87%",
                     reduction_pct(none, b256, sw_delay), "%");
  bench::print_claim("buffer-256 units needed at 95 Mbps", "<= ~80",
                     at_rate(b256, 95.0, buf_max), "units");
  bench::print_claim("buffer-16 exhausted (full-frame fallbacks) at 35 Mbps", "> 0",
                     at_rate(b16, 35.0, [](const RatePoint& p) {
                       return p.full_frame_pkt_ins.mean();
                     }),
                     "pkt_ins");

  // --- Experiment 2 (flow- vs packet-granularity, §V.B) ---
  const auto e2 = bench::e2_mechanisms();
  const auto pkt = bench::run_e2(options, e2[0]);
  const auto flow = bench::run_e2(options, e2[1]);

  std::cout << "\nExperiment 2 (packet- vs flow-granularity, 50 flows x 20 packets):\n";
  bench::print_claim("control path load reduction, switch->controller", "64%",
                     reduction_pct(pkt, flow, up), "%");
  bench::print_claim("control path load reduction, controller->switch", "80%",
                     reduction_pct(pkt, flow, down), "%");
  bench::print_claim("controller overhead reduction", "35.7%",
                     reduction_pct(pkt, flow, ctrl_cpu), "%");
  bench::print_claim("switch overhead change (flow vs packet; paper means 11.67 vs 17.31)",
                     "~-33%", -reduction_pct(pkt, flow, sw_cpu), "%");
  bench::print_claim("flow forwarding delay reduction", "18%", reduction_pct(pkt, flow, fwd),
                     "%");
  bench::print_claim("buffer utilization improvement (avg units)", "71.6%",
                     reduction_pct(pkt, flow, buf_avg), "%");
  bench::print_claim("flow setup delay reduction at 95 Mbps", "10.8%",
                     (1.0 - at_rate(flow, 95.0, setup) / at_rate(pkt, 95.0, setup)) * 100.0,
                     "%");
  bench::print_claim("flow forwarding delay reduction at 95 Mbps", "37.4%",
                     (1.0 - at_rate(flow, 95.0, fwd) / at_rate(pkt, 95.0, fwd)) * 100.0, "%");
  bench::print_claim("requests per 20-packet flow (flow-granularity)", "1",
                     flow.overall_mean([](const RatePoint& p) {
                       return p.pkt_ins_sent.mean() / 50.0;
                     }),
                     "pkt_in/flow");
  return 0;
}

// Fig. 4 — switch CPU usage under different sending rates (§IV.C).
//
// Paper shape: all three variants rise quickly, then flatten past ~40 Mbps;
// buffering adds only a small extra load (paper: +5.6% on average,
// buffer-256 slightly above buffer-16 slightly above no-buffer). At very
// high rates our no-buffer variant dips below the buffered ones because the
// saturated ASIC<->CPU bus starves its CPU stage (see EXPERIMENTS.md).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e1_mechanisms()) {
    sweeps.push_back(bench::run_e1(options, mechanism));
  }
  bench::print_figure(options, "fig4", "switch CPU usage (100% = one core)", "%", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.switch_cpu_pct;
                      });
  return 0;
}

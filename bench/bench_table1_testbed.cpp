// Table I — configurations of the experimental devices.
//
// The paper's Table I lists the physical testbed (OVS PC, Floodlight PC,
// hosts, 100 Mbps interfaces). This binary prints the simulated equivalents:
// the platform parameters and the calibrated cost models every other bench
// runs on, so a reader can map each simulated device to Table I.
#include <iostream>

#include "common.hpp"
#include "core/testbed.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  (void)bench::parse_options(argc, argv);

  const core::TestbedConfig config;
  const sw::SwitchConfig& sw_config = config.switch_config;
  const ctrl::ControllerConfig& ctrl_config = config.controller_config;

  util::TableWriter table("Table I: simulated experimental platform (cf. paper Table I)");
  table.set_columns({"device", "parameter", "value"});
  table.add_row({"OVS switch", "CPU cores", std::to_string(sw_config.cpu_cores)});
  table.add_row({"OVS switch", "flow table capacity",
                 std::to_string(sw_config.flow_table_capacity) + " rules"});
  table.add_row({"OVS switch", "ASIC<->CPU bus",
                 util::format_rate_bps(sw_config.costs.bus_bandwidth_bps)});
  table.add_row({"OVS switch", "miss_send_len",
                 std::to_string(sw_config.miss_send_len) + " B"});
  table.add_row({"OVS switch", "buffer reclaim delay",
                 sw_config.costs.buffer_reclaim_delay.to_string()});
  table.add_row({"OVS switch", "buffered packet expiry",
                 sw_config.costs.buffer_expiry.to_string()});
  table.add_row({"Floodlight", "CPU cores", std::to_string(ctrl_config.cpu_cores)});
  table.add_row({"Floodlight", "reactive rule idle timeout",
                 std::to_string(ctrl_config.rule_idle_timeout_s) + " s"});
  table.add_row({"Host1/Host2", "access links",
                 util::format_rate_bps(config.host_link_mbps * 1e6) + " / " +
                     config.host_link_delay.to_string() + " delay"});
  table.add_row({"control path", "link",
                 util::format_rate_bps(config.control_link_mbps * 1e6) + " / " +
                     config.control_link_delay.to_string() + " delay"});
  table.add_row({"pktgen", "frame size", "1000 B"});
  table.add_row({"pktgen", "sending rates", "5 - 100 Mbps"});
  table.print(std::cout);

  std::cout << "\nSwitch cost model (us unless noted): asic_match="
            << sw_config.costs.asic_match_us << " miss_base=" << sw_config.costs.miss_base_us
            << " pkt_in=" << sw_config.costs.pkt_in_base_us << "+"
            << sw_config.costs.pkt_in_per_byte_us << "/B"
            << " buffer_store=" << sw_config.costs.buffer_store_us
            << " buffer_release=" << sw_config.costs.buffer_release_us
            << " flow_mod=" << sw_config.costs.flow_mod_install_us
            << " pkt_out=" << sw_config.costs.pkt_out_base_us << "+"
            << sw_config.costs.pkt_out_per_byte_us << "/B"
            << " map_lookup=" << sw_config.costs.flow_map_lookup_us
            << " map_store=" << sw_config.costs.flow_map_store_us << '\n';
  std::cout << "Controller cost model (us): parse=" << ctrl_config.costs.parse_base_us << "+"
            << ctrl_config.costs.parse_per_byte_us << "/B"
            << " decision=" << ctrl_config.costs.decision_us
            << " encode_flow_mod=" << ctrl_config.costs.encode_flow_mod_us
            << " encode_pkt_out=" << ctrl_config.costs.encode_pkt_out_base_us << "+"
            << ctrl_config.costs.encode_pkt_out_per_byte_us << "/B" << '\n';
  return 0;
}

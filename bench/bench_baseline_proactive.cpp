// Baseline: rule-pushing strategies vs the reactive path the paper
// optimizes.
//
// Related work reduces controller requests by installing broader rules:
// aggregated/cached rules ([16], [17], [29]) or fully proactive authority
// rules (DevoFlow [10], DIFANE [15]). The extreme point — a proactive
// wildcard rule covering all traffic — eliminates packet_ins entirely, but
// gives up micro-flow visibility and control (no per-flow rules, no
// per-flow counters); /16 source aggregation sits in between. This bench
// places the buffer mechanisms on that axis: they keep the reactive model's
// per-flow control while approaching the rule-pushers' control-path costs.
#include <iostream>

#include "common.hpp"
#include "core/testbed.hpp"
#include "host/traffic_gen.hpp"
#include "util/csv.hpp"

namespace {

using namespace sdnbuf;

struct BaselineResult {
  double up_mbps = 0.0;
  double setup_ms = 0.0;
  std::uint64_t pkt_ins = 0;
  std::uint64_t per_flow_rules = 0;
};

BaselineResult run_strategy(bool proactive, sw::BufferMode mode, double rate,
                            std::uint64_t seed, int aggregate_src_bits = 0) {
  core::TestbedConfig config;
  config.switch_config.buffer_mode = mode;
  config.controller_config.aggregate_src_bits = aggregate_src_bits;
  config.seed = seed;
  core::Testbed bed{config};
  bed.warm_up();

  if (proactive) {
    // One wildcard rule per direction, installed before any traffic — the
    // DIFANE-style authority shortcut.
    of::FlowMod fm;
    fm.match = of::Match::wildcard_all();
    fm.match.wildcards &= ~of::kWildcardInPort;
    fm.match.in_port = core::Testbed::kHost1Port;
    fm.priority = 10;
    fm.actions = of::output_to(core::Testbed::kHost2Port);
    bed.channel().send_from_controller(fm);
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(5));
  }

  host::TrafficConfig traffic;
  traffic.rate_mbps = rate;
  traffic.n_flows = 1000;
  traffic.src_mac = bed.host1_mac();
  traffic.dst_mac = bed.host2_mac();
  traffic.src_ip_base = bed.host1_ip();
  traffic.dst_ip = bed.host2_ip();
  host::TrafficGenerator gen{bed.sim(), traffic, seed * 3 + 1,
                             [&bed](const net::Packet& p) { bed.inject_from_host1(p); }};
  const sim::SimTime start = bed.sim().now();
  gen.start();
  while (bed.sink2().packets_received() < gen.total_packets() &&
         bed.sim().now() < start + sim::SimTime::seconds(10)) {
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(20));
  }
  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();

  BaselineResult r;
  const sim::SimTime end = bed.sink2().last_arrival();
  r.up_mbps = bed.to_controller_link().tap().load_mbps(start, end);
  const auto delays = bed.recorder().finalize();
  r.setup_ms = delays.setup_ms.count() > 0 ? delays.setup_ms.mean() : 0.0;
  r.pkt_ins = bed.ovs().counters().pkt_ins_sent;
  // Per-flow rules = exact-match entries the reactive controller installed.
  r.per_flow_rules = bed.controller().counters().flow_mods_sent;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);

  util::TableWriter table("baseline: proactive wildcard rules vs reactive (+buffer), "
                          "1000 flows at 50 Mbps");
  table.set_columns({"strategy", "up Mbps", "pkt_ins", "per-flow rules", "setup ms"});
  struct Strategy {
    const char* label;
    bool proactive;
    sw::BufferMode mode;
    int aggregate_src_bits;
  };
  const Strategy strategies[] = {
      {"reactive, no buffer", false, sw::BufferMode::NoBuffer, 0},
      {"reactive, buffer-256", false, sw::BufferMode::PacketGranularity, 0},
      {"reactive, flow-granularity", false, sw::BufferMode::FlowGranularity, 0},
      {"reactive, /16 aggregated rules", false, sw::BufferMode::PacketGranularity, 16},
      {"proactive wildcard", true, sw::BufferMode::NoBuffer, 0},
  };
  for (const auto& s : strategies) {
    util::Summary up;
    util::Summary setup;
    util::Summary pkt_ins;
    util::Summary rules;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto r = run_strategy(s.proactive, s.mode, 50.0,
                                  options.seed * 23 + static_cast<std::uint64_t>(rep),
                                  s.aggregate_src_bits);
      up.add(r.up_mbps);
      setup.add(r.setup_ms);
      pkt_ins.add(static_cast<double>(r.pkt_ins));
      rules.add(static_cast<double>(r.per_flow_rules));
    }
    table.add_row({s.label, util::format_double(up.mean(), 3),
                   util::format_double(pkt_ins.mean(), 0), util::format_double(rules.mean(), 0),
                   util::format_double(setup.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nProactive rules zero the control path but install no per-flow state (no\n"
               "per-flow counters, no per-flow policy); the /16-aggregated strategy is\n"
               "nearly as cheap because its single block rule (installed on the first\n"
               "miss, during warm-up here) already covers every forged source. The\n"
               "buffer mechanisms keep the reactive model's micro-flow control at a\n"
               "fraction of its control cost — the niche the paper claims between fully\n"
               "reactive and DevoFlow/DIFANE-style rule pushing.\n";
  return 0;
}

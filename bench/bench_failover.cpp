// Data-plane failover: link outages and switch crashes on a leaf-spine
// fabric, with the closed control loop (port_status -> route repair ->
// reinstall) and the closed data loop (timeout -> retransmit) both running.
//
// Section A — fault sweep. Every (mechanism x install mode) pair runs a
// no-fault baseline, one planned 120 ms outage on a single leaf-spine link,
// and two seeded flap processes over ALL inter-switch links. Hosts send
// through a ReliableSender, so loss becomes re-offered load and the final
// delivery ratio measures recovery, not luck. Per-bin delivery timelines
// (paired with the same-seed baseline rep) yield degradation depth, reroute
// latency and time-to-recovery.
//
// Section B — leaf crash under incast. The shared leaf crashes while misses
// are queued against it, so every buffered unit on it is lost. Packet
// granularity buffers one unit per packet, flow granularity one per flow:
// the crash must cost flow granularity strictly fewer units.
//
// Exit status: 0 when the recovery acceptance checks pass (post-fault
// delivery within 2 points of the paired baseline for every cell; flow <
// packet units lost in section B), 3 when they fail, so CI can gate on it.
// Cells fan out across a ThreadPool into pre-assigned slots; a self-check
// re-runs the first cell inline and asserts exact equality, keeping results
// bit-identical for any --jobs value.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/fabric_experiment.hpp"
#include "net/link_fault.hpp"
#include "recovery.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sdnbuf;

using FaultFactory = std::function<std::vector<core::LinkFaultSpec>(std::uint64_t seed)>;

struct FaultLevel {
  std::string label;
  sim::SimTime first_down;  // earliest possible outage start (zero = none)
  FaultFactory make;
};

struct CellMeta {
  std::string section;  // "A" fault sweep, "B" crash
  std::string mechanism;
  std::string install;
  std::string fault;
  int baseline_cell = -1;  // same (mechanism, install) with no faults
  sim::SimTime first_down;
};

std::vector<core::FabricExperimentResult> run_cells(
    const std::vector<core::FabricExperimentConfig>& configs, int jobs) {
  std::vector<core::FabricExperimentResult> out(configs.size());
  if (jobs <= 1 || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) out[i] = run_fabric_experiment(configs[i]);
    return out;
  }
  const auto workers = std::min<std::size_t>(static_cast<std::size_t>(jobs), configs.size());
  util::ThreadPool pool(static_cast<unsigned>(workers));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    pool.submit([&configs, &out, i] { out[i] = run_fabric_experiment(configs[i]); });
  }
  pool.wait_idle();
  return out;
}

// Timeline comparison of one fault repetition against its same-seed no-fault
// baseline (identical workload, so differences are the faults').
struct BinAnalysis {
  double depth_pct = 100.0;   // worst fault-window bin vs baseline steady rate
  double reroute_ms = 0.0;    // fault start -> delivery back above 90% steady
  double recover_ms = 0.0;    // last fault clear -> cumulative within 2% of baseline
  double post_pct = 100.0;    // post-clear delivered vs baseline, same window
};

BinAnalysis analyze_bins(const core::FabricExperimentResult& fault,
                         const core::FabricExperimentResult& base, sim::SimTime bin,
                         sim::SimTime first_down, std::size_t traffic_bins) {
  BinAnalysis out;
  const auto at = [](const std::vector<std::uint64_t>& v, std::size_t i) {
    return i < v.size() ? static_cast<double>(v[i]) : 0.0;
  };
  double base_total = 0.0;
  for (std::size_t i = 0; i < traffic_bins; ++i) base_total += at(base.delivered_per_bin, i);
  const double steady = base_total / static_cast<double>(traffic_bins);
  if (steady <= 0.0 || bin <= sim::SimTime::zero()) return out;
  const double bin_ms = static_cast<double>(bin.ns()) / 1e6;

  const auto start_bin = static_cast<std::size_t>(first_down.ns() / bin.ns());
  const auto clear_bin = std::min<std::size_t>(
      traffic_bins, static_cast<std::size_t>((fault.last_fault_clear.ns() + bin.ns() - 1) / bin.ns()));

  out.depth_pct = 100.0;
  for (std::size_t i = start_bin; i < clear_bin; ++i) {
    out.depth_pct = std::min(out.depth_pct, 100.0 * at(fault.delivered_per_bin, i) / steady);
  }

  out.reroute_ms = static_cast<double>(traffic_bins - start_bin) * bin_ms;
  for (std::size_t i = start_bin; i < traffic_bins; ++i) {
    if (at(fault.delivered_per_bin, i) >= 0.9 * steady) {
      out.reroute_ms = static_cast<double>(i - start_bin) * bin_ms;
      break;
    }
  }

  // Time to recovery: cumulative post-clear delivery catches the baseline's
  // (within 2%). The retransmit backlog flushes here, so this converges even
  // when the fault window itself delivered almost nothing.
  double cum_fault = 0.0;
  double cum_base = 0.0;
  out.recover_ms = static_cast<double>(traffic_bins - clear_bin) * bin_ms;
  for (std::size_t i = clear_bin; i < traffic_bins; ++i) {
    cum_fault += at(fault.delivered_per_bin, i);
    cum_base += at(base.delivered_per_bin, i);
    if (cum_base > 0.0 && cum_fault >= 0.98 * cum_base) {
      out.recover_ms = static_cast<double>(i + 1 - clear_bin) * bin_ms;
      break;
    }
  }
  out.post_pct = cum_base > 0.0 ? 100.0 * cum_fault / cum_base : 100.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  const int reps = options.repetitions;

  // 2 spines x 2 leaves x 2 hosts: every leaf has an ECMP alternative, so a
  // single downed leaf-spine link is survivable by rerouting.
  const topo::Topology topology = topo::make_leaf_spine(2, 2, 2);
  std::vector<std::size_t> fabric_links;  // inter-switch links only
  for (std::size_t i = 0; i < topology.links().size(); ++i) {
    if (!topology.links()[i].host_edge) fabric_links.push_back(i);
  }
  SDNBUF_CHECK_MSG(!fabric_links.empty(), "leaf-spine has no inter-switch links");

  const sim::SimTime bin = sim::SimTime::milliseconds(10);
  const double duration_s = 0.4;
  const auto traffic_bins = static_cast<std::size_t>(sim::SimTime::from_seconds(duration_s).ns() /
                                                     bin.ns());

  core::FabricExperimentConfig base;
  base.topology = topology;
  base.pattern = host::TrafficPattern::Permutation;
  base.duration_s = duration_s;
  base.flow_arrival_per_s = 300.0;
  base.min_packets = 2;
  base.max_packets = 16;
  base.in_flow_rate_mbps = 20.0;
  base.buffer_capacity = 256;
  base.fabric.switch_config.port_down_policy = sw::PortDownPolicy::RePktIn;
  base.closed_loop = true;
  base.reliable.rto = sim::SimTime::milliseconds(20);
  base.reliable.backoff = 1.5;
  base.reliable.max_retransmits = 10;
  base.delivery_bin = bin;
  base.drain_timeout = sim::SimTime::seconds(4);

  // Fault levels. Flap horizons stop at 240 ms so every run has a guaranteed
  // fault-free tail (160 ms of offered traffic) in which to demonstrate
  // recovery.
  const sim::SimTime flap_start = sim::SimTime::milliseconds(50);
  const sim::SimTime flap_horizon = sim::SimTime::milliseconds(240);
  const auto flap_level = [&](std::string label, double mean_up_s, double mean_down_s) {
    return FaultLevel{std::move(label), flap_start,
                      [&fabric_links, flap_start, flap_horizon, mean_up_s,
                       mean_down_s](std::uint64_t seed) {
                        std::vector<core::LinkFaultSpec> out;
                        for (const std::size_t link : fabric_links) {
                          core::LinkFaultSpec spec;
                          spec.link_index = link;
                          spec.schedule = net::LinkFaultSchedule::flap(
                              seed * 1000003 + link, flap_start, flap_horizon, mean_up_s,
                              mean_down_s);
                          out.push_back(std::move(spec));
                        }
                        return out;
                      }};
  };
  std::vector<FaultLevel> levels;
  levels.push_back(
      {"none", sim::SimTime::zero(), [](std::uint64_t) { return std::vector<core::LinkFaultSpec>{}; }});
  levels.push_back({"single-outage", sim::SimTime::milliseconds(80),
                    [&fabric_links](std::uint64_t) {
                      core::LinkFaultSpec spec;
                      spec.link_index = fabric_links.front();
                      spec.schedule.add_outage(sim::SimTime::milliseconds(80),
                                               sim::SimTime::milliseconds(200));
                      return std::vector<core::LinkFaultSpec>{spec};
                    }});
  levels.push_back(flap_level("flap-mild", 0.10, 0.015));
  levels.push_back(flap_level("flap-harsh", 0.06, 0.020));

  const std::vector<bench::MechanismSpec> mechanisms = {
      {"no-buffer", sw::BufferMode::NoBuffer, 0},
      {"packet-granularity", sw::BufferMode::PacketGranularity, 256},
      {"flow-granularity", sw::BufferMode::FlowGranularity, 256}};

  std::vector<core::FabricExperimentConfig> configs;
  std::vector<CellMeta> meta;
  std::vector<int> cell_of;
  std::vector<int> cell_first;

  const auto push_cell = [&](CellMeta m, const core::FabricExperimentConfig& cell,
                             const FaultFactory& faults) {
    const int cell_index = static_cast<int>(meta.size());
    meta.push_back(std::move(m));
    cell_first.push_back(static_cast<int>(configs.size()));
    for (int rep = 0; rep < reps; ++rep) {
      core::FabricExperimentConfig c = cell;
      c.seed = options.seed * 131 + static_cast<std::uint64_t>(rep);
      c.link_faults = faults(c.seed);
      configs.push_back(std::move(c));
      cell_of.push_back(cell_index);
    }
    return cell_index;
  };

  // --- Section A: fault level x mechanism x install mode.
  for (const auto routing :
       {core::FabricRouting::TopologyPerHop, core::FabricRouting::TopologyFullPath}) {
    for (const auto& mechanism : mechanisms) {
      int baseline_cell = -1;
      for (const FaultLevel& level : levels) {
        core::FabricExperimentConfig c = base;
        c.routing = routing;
        c.mode = mechanism.mode;
        const int cell = push_cell({"A", mechanism.label, core::fabric_routing_name(routing),
                                    level.label, baseline_cell, level.first_down},
                                   c, level.make);
        if (level.label == "none") baseline_cell = cell;
      }
    }
  }

  // --- Section B: the shared leaf crashes mid-incast with misses buffered.
  const unsigned target_leaf =
      topology.index_of(topology.attachment(topology.host_id(0)).peer);
  const FaultFactory no_faults = [](std::uint64_t) { return std::vector<core::LinkFaultSpec>{}; };
  int crash_packet_cell = -1;
  int crash_flow_cell = -1;
  for (const auto& mechanism : mechanisms) {
    if (mechanism.mode == sw::BufferMode::NoBuffer) continue;
    core::FabricExperimentConfig c = base;
    c.pattern = host::TrafficPattern::Incast;
    c.incast_target = 0;
    c.incast_fanin = 3;
    c.flow_arrival_per_s = 800.0;
    c.duration_s = 0.25;
    c.mode = mechanism.mode;
    core::SwitchCrashSpec crash;
    crash.switch_index = target_leaf;
    crash.crash_at = sim::SimTime::milliseconds(20);
    crash.restart_at = sim::SimTime::milliseconds(70);
    c.switch_crashes.push_back(crash);
    const int cell =
        push_cell({"B", mechanism.label, "per-hop", "leaf-crash", -1, crash.crash_at}, c,
                  no_faults);
    (mechanism.mode == sw::BufferMode::PacketGranularity ? crash_packet_cell : crash_flow_cell) =
        cell;
  }

  const auto results = run_cells(configs, options.jobs);

  // Parallel determinism self-check: the first cell's first repetition,
  // re-run inline, must match the (possibly worker-produced) slot exactly.
  {
    const auto again = run_fabric_experiment(configs[0]);
    SDNBUF_CHECK_MSG(again.packets_sent == results[0].packets_sent &&
                         again.unique_acked == results[0].unique_acked &&
                         again.pkt_ins == results[0].pkt_ins &&
                         again.control_bytes == results[0].control_bytes &&
                         again.link_fault_drops == results[0].link_fault_drops &&
                         again.rules_invalidated == results[0].rules_invalidated &&
                         again.delivered_per_bin == results[0].delivered_per_bin &&
                         again.delivered == results[0].delivered,
                     "failover determinism self-check failed");
  }

  bench::RecoverySweep sweep(
      "failover: link faults on leaf-spine-2x2, closed-loop senders "
      "(delivery timelines paired with the same-seed no-fault baseline)",
      {"mechanism", "install", "fault"},
      {{"delivered %", 2},
       {"depth %", 0},
       {"reroute ms", 0},
       {"recover ms", 0},
       {"post %", 1},
       {"rules inval", 1},
       {"link drops", 0},
       {"retrans", 1},
       {"units lost", 1}});
  bench::RecoverySweep crash_sweep(
      "failover: shared-leaf crash at 20 ms under 3-way incast (RePktIn, per-hop install)",
      {"mechanism"},
      {{"delivered %", 2}, {"units lost", 1}, {"retrans", 1}, {"crashes", 0}});

  bool ok = true;
  for (std::size_t i = 0; i < meta.size(); ++i) {
    const CellMeta& m = meta[i];
    bench::RecoveryCell cell;
    for (int rep = 0; rep < reps; ++rep) {
      const auto& r = results[static_cast<std::size_t>(cell_first[i]) + static_cast<std::size_t>(rep)];
      cell.metric("delivered %").add(bench::percent(r.unique_acked, r.unique_offered));
      cell.metric("retrans").add(static_cast<double>(r.retransmits));
      cell.metric("units lost").add(static_cast<double>(r.buffer_units_expired));
      if (m.section == "A") {
        cell.metric("rules inval").add(static_cast<double>(r.rules_invalidated));
        cell.metric("link drops").add(static_cast<double>(r.link_fault_drops));
        if (m.baseline_cell >= 0) {
          const auto& b = results[static_cast<std::size_t>(cell_first[m.baseline_cell]) +
                                  static_cast<std::size_t>(rep)];
          const BinAnalysis a = analyze_bins(r, b, bin, m.first_down, traffic_bins);
          cell.metric("depth %").add(a.depth_pct);
          cell.metric("reroute ms").add(a.reroute_ms);
          cell.metric("recover ms").add(a.recover_ms);
          cell.metric("post %").add(a.post_pct);
        }
      } else {
        cell.metric("crashes").add(static_cast<double>(r.switch_crashes));
      }
    }
    if (m.section == "A") {
      sweep.add_cell({m.mechanism, m.install, m.fault}, cell);
      // Acceptance: with the loop closed, every fault cell must end within
      // 2 points of its same-workload no-fault baseline.
      if (m.baseline_cell >= 0) {
        bench::RecoveryCell baseline;
        for (int rep = 0; rep < reps; ++rep) {
          const auto& b = results[static_cast<std::size_t>(cell_first[m.baseline_cell]) +
                                  static_cast<std::size_t>(rep)];
          baseline.metric("delivered %").add(bench::percent(b.unique_acked, b.unique_offered));
        }
        const double fault_pct = cell.metric("delivered %").mean();
        const double base_pct = baseline.metric("delivered %").mean();
        if (fault_pct < base_pct - 2.0) {
          ok = false;
          std::cout << "FAILED recovery: " << m.mechanism << " / " << m.install << " / "
                    << m.fault << " delivered " << util::format_double(fault_pct, 2)
                    << "% vs baseline " << util::format_double(base_pct, 2) << "%\n";
        }
      }
    } else {
      crash_sweep.add_cell({m.mechanism}, cell);
    }
  }

  sweep.print(std::cout);
  sweep.write_csv(options.csv_dir + "/failover.csv");
  std::cout << "\nEvery fault cell recovers to its baseline delivery once the retransmit\n"
               "loop re-offers what the fabric dropped: the single outage reroutes over\n"
               "the surviving spine within one controller round-trip (rules inval counts\n"
               "the repair deletes), and the flap processes recover after their horizon.\n"
               "Degradation depth and reroute latency come from the per-bin delivery\n"
               "timeline paired against the same-seed no-fault run.\n\n";

  crash_sweep.print(std::cout);
  crash_sweep.write_csv(options.csv_dir + "/failover_crash.csv");

  // Acceptance: the crash destroys whatever is buffered on the shared leaf.
  // Flow granularity holds one unit per flow where packet granularity holds
  // one per packet, so it must lose strictly fewer units.
  std::uint64_t units_packet = 0;
  std::uint64_t units_flow = 0;
  for (int rep = 0; rep < reps; ++rep) {
    units_packet += results[static_cast<std::size_t>(cell_first[crash_packet_cell]) +
                            static_cast<std::size_t>(rep)]
                        .buffer_units_expired;
    units_flow += results[static_cast<std::size_t>(cell_first[crash_flow_cell]) +
                          static_cast<std::size_t>(rep)]
                      .buffer_units_expired;
  }
  if (units_flow >= units_packet) {
    ok = false;
    std::cout << "FAILED unit fate: flow-granularity lost " << units_flow
              << " units vs packet-granularity " << units_packet << " (expected strictly fewer)\n";
  }

  if (!options.quiet) {
    std::cout << "\nThe crash expires one buffered unit per packet under packet granularity\n"
                 "(" << units_packet << " across " << reps << " reps) but one per flow under "
                 "flow granularity (" << units_flow << ").\n";
    std::cout << "determinism self-check: OK (cell 0 re-run matches bit-for-bit)\n";
  }
  std::cout << (ok ? "failover acceptance: OK\n" : "failover acceptance: FAILED\n");
  return ok ? 0 : 3;
}

// Fig. 5 — flow setup delay under different sending rates (§IV.D).
//
// Paper shape: similar for all variants below ~70 Mbps; above that
// no-buffer becomes highly variable (max ~30 ms) as full-frame punts
// oversubscribe the ASIC<->CPU bus, while buffer-256 stays flat (~1.2 ms)
// and buffer-16 sits in between; ~78% average reduction with buffer-256.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e1_mechanisms()) {
    sweeps.push_back(bench::run_e1(options, mechanism));
  }
  bench::print_figure(options, "fig5", "flow setup delay", "ms", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.setup_ms;
                      });
  return 0;
}

// Shared harness code for the per-figure benchmark binaries.
//
// Each bench binary reproduces one table/figure of the paper:
//   Experiment E1 (§IV):  1000 single-packet UDP flows, 1000-byte frames,
//                         rates 5..100 Mbps, mechanisms no-buffer /
//                         buffer-16 / buffer-256, N repetitions per rate.
//   Experiment E2 (§V.B): 50 flows x 20 packets in cross-sequence batches
//                         of 5, buffer-256, packet- vs flow-granularity.
//
// Output: an aligned table on stdout (mean and std across repetitions per
// sending rate) and a CSV next to the binary's working directory under
// results/.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "util/cli.hpp"

namespace sdnbuf::bench {

struct Options {
  int repetitions = 20;
  std::vector<double> rates;  // empty -> paper default 5..100 step 5
  std::string csv_dir = "results";
  bool quiet = false;
  std::uint64_t seed = 1;
  // Sweep worker threads (core::SweepConfig::jobs). Defaults to
  // hardware_concurrency; results are bit-identical for any value, and
  // --jobs 1 runs the historical sequential path.
  int jobs = 0;  // 0 -> ThreadPool::default_parallelism(), set by parse_options

  // Analytical pre-screening (src/model): before sweeping, evaluate the
  // whole rate grid in closed form for every mechanism of the experiment
  // and simulate only the "interesting" rates (grid anchors, delay and
  // utilization knees, mechanism crossovers). Logs how many grid cells the
  // model skipped. All mechanisms of one figure share the screened rate
  // axis, so overlaid curves stay aligned.
  bool prescreen = false;

  // Observability (DESIGN.md §10). When any of these is requested, each
  // mechanism additionally gets ONE fully-instrumented single run at a
  // representative rate (the sweeps themselves stay obs-free, so the
  // figures and their parallel determinism contract are untouched).
  // Artifact paths are suffixed with the mechanism label: passing
  // --metrics-out m.json writes m-no-buffer.json, m-buffer-256.json, ...
  std::string metrics_out;        // "" = no metrics export
  std::string trace_out;          // "" = no trace export
  std::uint32_t trace_sample = 16;  // 1 = trace every flow
  bool profile = false;           // print per-component event-loop profile

  // Sharded event engine (DESIGN.md §14), honored by the fabric-scale
  // benches (the single-switch chain benches ignore it). 0 = the legacy
  // sequential engine; N >= 2 splits switches across N-1 shards plus a
  // controller shard. Results at a fixed shard count are bit-identical for
  // any --shard-threads value.
  unsigned shards = 0;
  unsigned shard_threads = 1;

  [[nodiscard]] bool observability_enabled() const {
    return !metrics_out.empty() || !trace_out.empty() || profile;
  }
};

// Parses --reps/--quick/--rates-coarse/--csv-dir/--seed/--jobs/--prescreen
// plus the observability flags --metrics-out/--trace-out/--trace-sample/
// --profile and --log-level; exits on bad flags.
[[nodiscard]] Options parse_options(int argc, char** argv);

// Inserts "-<label>" before the path's extension ("m.json" -> "m-x.json").
[[nodiscard]] std::string suffixed_path(const std::string& path, const std::string& label);

// The three E1 mechanism variants of §IV.
struct MechanismSpec {
  std::string label;
  sw::BufferMode mode;
  std::size_t buffer_capacity;
};

[[nodiscard]] std::vector<MechanismSpec> e1_mechanisms();
[[nodiscard]] std::vector<MechanismSpec> e2_mechanisms();

// Runs the E1 sweep for one mechanism.
[[nodiscard]] core::SweepResult run_e1(const Options& options, const MechanismSpec& mechanism);

// Runs the E2 sweep (50 flows x 20 packets, cross-sequence) for one
// mechanism.
[[nodiscard]] core::SweepResult run_e2(const Options& options, const MechanismSpec& mechanism);

// One fully-instrumented single run of `base` under `mechanism` at
// `rate_mbps`, writing whichever obs artifacts the options request. No-op
// when no obs flag was given; run_e1/run_e2 call it after their sweeps.
void run_observed(const Options& options, const MechanismSpec& mechanism,
                  core::ExperimentConfig base, double rate_mbps);

// Extracts one (mean, std) series per sweep and prints the figure table +
// CSV. `metric` pulls the per-rate Summary to report.
using MetricFn = std::function<const util::Summary&(const core::RatePoint&)>;

void print_figure(const Options& options, const std::string& figure_id, const std::string& title,
                  const std::string& unit, const std::vector<core::SweepResult>& sweeps,
                  const MetricFn& metric);

// Prints "<label>: paper=<paper> measured=<measured>" claim lines.
void print_claim(const std::string& label, const std::string& paper, double measured,
                 const std::string& unit);

}  // namespace sdnbuf::bench

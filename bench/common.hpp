// Shared harness code for the per-figure benchmark binaries.
//
// Each bench binary reproduces one table/figure of the paper:
//   Experiment E1 (§IV):  1000 single-packet UDP flows, 1000-byte frames,
//                         rates 5..100 Mbps, mechanisms no-buffer /
//                         buffer-16 / buffer-256, N repetitions per rate.
//   Experiment E2 (§V.B): 50 flows x 20 packets in cross-sequence batches
//                         of 5, buffer-256, packet- vs flow-granularity.
//
// Output: an aligned table on stdout (mean and std across repetitions per
// sending rate) and a CSV next to the binary's working directory under
// results/.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "util/cli.hpp"

namespace sdnbuf::bench {

struct Options {
  int repetitions = 20;
  std::vector<double> rates;  // empty -> paper default 5..100 step 5
  std::string csv_dir = "results";
  bool quiet = false;
  std::uint64_t seed = 1;
  // Sweep worker threads (core::SweepConfig::jobs). Defaults to
  // hardware_concurrency; results are bit-identical for any value, and
  // --jobs 1 runs the historical sequential path.
  int jobs = 0;  // 0 -> ThreadPool::default_parallelism(), set by parse_options
};

// Parses --reps/--quick/--rates-coarse/--csv-dir/--seed/--jobs; exits on bad
// flags.
[[nodiscard]] Options parse_options(int argc, char** argv);

// The three E1 mechanism variants of §IV.
struct MechanismSpec {
  std::string label;
  sw::BufferMode mode;
  std::size_t buffer_capacity;
};

[[nodiscard]] std::vector<MechanismSpec> e1_mechanisms();
[[nodiscard]] std::vector<MechanismSpec> e2_mechanisms();

// Runs the E1 sweep for one mechanism.
[[nodiscard]] core::SweepResult run_e1(const Options& options, const MechanismSpec& mechanism);

// Runs the E2 sweep (50 flows x 20 packets, cross-sequence) for one
// mechanism.
[[nodiscard]] core::SweepResult run_e2(const Options& options, const MechanismSpec& mechanism);

// Extracts one (mean, std) series per sweep and prints the figure table +
// CSV. `metric` pulls the per-rate Summary to report.
using MetricFn = std::function<const util::Summary&(const core::RatePoint&)>;

void print_figure(const Options& options, const std::string& figure_id, const std::string& title,
                  const std::string& unit, const std::vector<core::SweepResult>& sweeps,
                  const MetricFn& metric);

// Prints "<label>: paper=<paper> measured=<measured>" claim lines.
void print_claim(const std::string& label, const std::string& paper, double measured,
                 const std::string& unit);

}  // namespace sdnbuf::bench

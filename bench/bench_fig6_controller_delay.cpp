// Fig. 6 — controller delay under different sending rates (§IV.E).
//
// Controller delay: packet_in leaving the switch -> flow_mod/packet_out
// arriving back. Paper shape: no-buffer is always the highest and rises
// past ~60 Mbps (mean 1.65 ms, max 4.84 ms); buffer-16 follows the trend at
// a lower level; buffer-256 is flat (~0.70 ms); ~58% average reduction.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e1_mechanisms()) {
    sweeps.push_back(bench::run_e1(options, mechanism));
  }
  bench::print_figure(options, "fig6", "controller delay", "ms", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.controller_ms;
                      });
  return 0;
}

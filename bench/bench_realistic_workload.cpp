// Extension: the buffer mechanisms under an Internet-like workload —
// Poisson flow arrivals, heavy-tailed (bounded-Pareto) flow sizes — instead
// of the paper's regular fixed-size flows (motivated by the paper's own
// reference [27] on real TCP/UDP flow mixes).
//
// With many tiny flows and a few elephants arriving randomly, the
// flow-granularity buffer's advantage concentrates where it matters: the
// elephants' early packets arrive before their rule and would each cost a
// request under the default mechanism.
#include <iostream>

#include "common.hpp"
#include "core/testbed.hpp"
#include "host/synthetic_workload.hpp"
#include "util/csv.hpp"

namespace {

using namespace sdnbuf;

struct WorkloadResult {
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  std::uint64_t pkt_ins = 0;
  double up_mbps = 0.0;
  std::uint64_t delivered = 0;
  double p50_flow_size = 0.0;
  double p99_flow_size = 0.0;
};

WorkloadResult run_mechanism(sw::BufferMode mode, double arrivals_per_s, std::uint64_t seed) {
  core::TestbedConfig config;
  config.switch_config.buffer_mode = mode;
  config.seed = seed;
  core::Testbed bed{config};
  bed.warm_up();

  host::WorkloadConfig workload;
  workload.duration_s = 0.5;
  workload.flow_arrival_per_s = arrivals_per_s;
  workload.pareto_alpha = 1.3;
  workload.min_packets = 1;
  workload.max_packets = 100;
  workload.in_flow_rate_mbps = 30.0;
  workload.src_mac = bed.host1_mac();
  workload.dst_mac = bed.host2_mac();
  workload.src_ip_base = bed.host1_ip();
  workload.dst_ip = bed.host2_ip();
  host::SyntheticWorkload gen{bed.sim(), workload, seed * 5 + 3,
                              [&bed](const net::Packet& p) { bed.inject_from_host1(p); }};
  const sim::SimTime start = bed.sim().now();
  gen.start();
  // Run until everything injected has drained (arrivals stop at 0.5 s).
  while (bed.sim().now() < start + sim::SimTime::seconds(3) &&
         (bed.sink2().packets_received() < gen.packets_emitted() ||
          bed.sim().now() < start + sim::SimTime::from_seconds(workload.duration_s))) {
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(20));
  }
  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();

  WorkloadResult r;
  r.flows = gen.flows_started();
  r.packets = gen.packets_emitted();
  r.pkt_ins = bed.ovs().counters().pkt_ins_sent;
  r.delivered = bed.sink2().packets_received();
  const sim::SimTime end = bed.sink2().last_arrival();
  if (end > start) r.up_mbps = bed.to_controller_link().tap().load_mbps(start, end);
  r.p50_flow_size = gen.flow_sizes().median();
  r.p99_flow_size = gen.flow_sizes().percentile(99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);

  util::TableWriter table("realistic workload: Poisson arrivals, Pareto(1.3) flow sizes "
                          "(1-100 packets), 500 ms of arrivals");
  table.set_columns({"mechanism", "arrivals/s", "flows", "packets", "pkt_ins", "pkt_in/flow",
                     "up Mbps", "delivered %"});
  for (const double arrivals : {200.0, 600.0}) {
    for (const auto& mechanism :
         {bench::MechanismSpec{"no-buffer", sw::BufferMode::NoBuffer, 0},
          bench::MechanismSpec{"packet-granularity", sw::BufferMode::PacketGranularity, 256},
          bench::MechanismSpec{"flow-granularity", sw::BufferMode::FlowGranularity, 256}}) {
      util::Summary flows;
      util::Summary packets;
      util::Summary pkt_ins;
      util::Summary up;
      util::Summary delivered_pct;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        const auto r = run_mechanism(mechanism.mode, arrivals,
                                     options.seed * 41 + static_cast<std::uint64_t>(rep));
        flows.add(static_cast<double>(r.flows));
        packets.add(static_cast<double>(r.packets));
        pkt_ins.add(static_cast<double>(r.pkt_ins));
        up.add(r.up_mbps);
        delivered_pct.add(100.0 * static_cast<double>(r.delivered) /
                          static_cast<double>(r.packets));
      }
      table.add_row({mechanism.label, util::format_double(arrivals, 0),
                     util::format_double(flows.mean(), 0),
                     util::format_double(packets.mean(), 0),
                     util::format_double(pkt_ins.mean(), 0),
                     util::format_double(pkt_ins.mean() / flows.mean(), 2),
                     util::format_double(up.mean(), 3),
                     util::format_double(delivered_pct.mean(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nUnder heavy-tailed arrivals the default mechanism pays >1 request per\n"
               "flow (the elephants' early packets); the flow-granularity buffer pins it\n"
               "at exactly 1 while delivering everything.\n";
  return 0;
}

// Degradation/recovery sweep scaffolding, shared by the robustness benches
// (bench_robustness_loss: control-channel faults; bench_failover: data-plane
// faults).
//
// The common shape: sweep (mechanism × fault condition) cells, run N seeded
// repetitions per cell, accumulate named metric Summaries, then emit one
// aligned-table row per cell plus a long-format CSV (one line per cell ×
// metric with mean/std/count) under results/.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace sdnbuf::bench {

// One sweep cell: named metric Summaries in insertion order. Metrics are
// created on first use, so every repetition just writes
// `cell.metric("delivered %").add(...)`.
class RecoveryCell {
 public:
  util::Summary& metric(const std::string& name);
  [[nodiscard]] const util::Summary* find(const std::string& name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, util::Summary>>& metrics() const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, util::Summary>> metrics_;
};

// 100 * part / whole, 0 when whole is 0.
[[nodiscard]] double percent(std::uint64_t part, std::uint64_t whole);

// Collects finished cells keyed by their sweep coordinates and renders them
// as an aligned stdout table (one column per metric, mean over repetitions)
// and optionally as long-format CSV.
class RecoverySweep {
 public:
  // `metric_columns` pairs a metric name with the decimals its table cell
  // prints with. A cell missing a metric prints "-".
  RecoverySweep(std::string title, std::vector<std::string> key_columns,
                std::vector<std::pair<std::string, int>> metric_columns);

  void add_cell(std::vector<std::string> keys, const RecoveryCell& cell);

  void print(std::ostream& out) const;

  // Writes "key columns..., metric, mean, std, count" rows; creates the
  // parent directory. Returns false (with a warning on stderr) when the file
  // cannot be opened.
  bool write_csv(const std::string& path) const;

 private:
  struct Row {
    std::vector<std::string> keys;
    RecoveryCell cell;
  };

  std::string title_;
  std::vector<std::string> key_columns_;
  std::vector<std::pair<std::string, int>> metric_columns_;
  std::vector<Row> rows_;
};

}  // namespace sdnbuf::bench

// Extension: mixed TCP/UDP traffic (§VI).
//
// The paper argues from a pure-UDP evaluation that "if switch buffer
// benefits UDP flows, it also benefits the mix of TCP and UDP flows". This
// bench varies the TCP share of the E1 workload (TCP flows modelled as
// resumed data transfers whose rules were evicted — the §VI.B case where
// buffering matters for TCP) and verifies the reduction is insensitive to
// the mix.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  util::TableWriter table("mixed traffic: control-path reduction vs TCP share "
                          "(1000 single-packet flows at 50 Mbps)");
  table.set_columns({"TCP share %", "no-buffer up Mbps", "buffer-256 up Mbps", "reduction %",
                     "delivered %"});

  for (const double tcp_share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    util::Summary none_up;
    util::Summary buf_up;
    util::Summary delivered;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      for (const auto mode : {sw::BufferMode::NoBuffer, sw::BufferMode::PacketGranularity}) {
        core::ExperimentConfig config;
        config.mode = mode;
        config.rate_mbps = 50.0;
        config.n_flows = 1000;
        config.tcp_flow_fraction = tcp_share;
        config.seed = options.seed * 8699 + static_cast<std::uint64_t>(rep);
        const auto r = core::run_experiment(config);
        (mode == sw::BufferMode::NoBuffer ? none_up : buf_up).add(r.to_controller_mbps);
        if (mode == sw::BufferMode::PacketGranularity) {
          delivered.add(100.0 * static_cast<double>(r.packets_delivered) /
                        static_cast<double>(r.packets_sent));
        }
      }
    }
    const double reduction = (1.0 - buf_up.mean() / none_up.mean()) * 100.0;
    table.add_row({util::format_double(tcp_share * 100, 0),
                   util::format_double(none_up.mean(), 2),
                   util::format_double(buf_up.mean(), 2), util::format_double(reduction, 1),
                   util::format_double(delivered.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nThe reduction is flat across the mix: miss-match handling depends on the\n"
               "flow table, not the transport protocol — §VI's argument, quantified.\n";
  return 0;
}

// Fig. 7 — switch delay under different sending rates (§IV.F).
//
// Switch delay = flow setup delay - controller delay (packet_in generation
// plus packet_out execution). Paper shape: indistinguishable below
// ~75 Mbps, then no-buffer explodes (25 ms at 95 Mbps — the ASIC<->CPU bus
// is the contended resource); buffer-256 stays low and stable (~0.5 ms);
// ~87% average reduction with a large enough buffer.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;
  const auto options = bench::parse_options(argc, argv);

  std::vector<core::SweepResult> sweeps;
  for (const auto& mechanism : bench::e1_mechanisms()) {
    sweeps.push_back(bench::run_e1(options, mechanism));
  }
  bench::print_figure(options, "fig7", "switch delay", "ms", sweeps,
                      [](const core::RatePoint& p) -> const util::Summary& {
                        return p.switch_ms;
                      });
  return 0;
}

// Shared-memory MMU benchmark (DESIGN.md §16): what does buffer sharing buy?
//
// A leaf-spine incast — many senders converging on one host — is the
// canonical workload that separates buffer-sharing generations. The grid
// sweeps sharing policy (static partition, dynamic threshold, delay-driven)
// x buffer mechanism (packet- vs flow-granularity OpenFlow buffering, both
// contending with the egress queues for the same pool) x incast fan-in.
// Per-class egress slices are deliberately small (16 KiB) with the pool
// sized to their sum, so static partitioning tail-drops the burst at its
// fixed slice while the dynamic policies lend the hot queue the idle
// queues' unused share and absorb it.
//
// Every cell runs in a pre-assigned slot and the CSV is merged
// sequentially, so results/mmu.csv is bit-identical for any --jobs value;
// the benchmark replays the grid and fails if the two CSVs differ, and
// fails if dynamic sharing fails to beat the static partition at the
// largest fan-in.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fabric_experiment.hpp"
#include "switchd/mmu/mmu.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace core = sdnbuf::core;
namespace sw = sdnbuf::sw;
namespace util = sdnbuf::util;
namespace host = sdnbuf::host;
namespace topo = sdnbuf::topo;

struct Policy {
  std::string label;
  sw::mmu::PolicyKind kind;
};

struct Mechanism {
  std::string label;
  sw::BufferMode mode;
};

std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

struct GridParams {
  std::vector<Policy> policies;
  std::vector<Mechanism> mechanisms;
  std::vector<unsigned> fanins;
  int reps = 1;
  std::uint64_t base_seed = 1;
  bool quick = false;
};

core::FabricExperimentConfig cell_config(const GridParams& grid, const Policy& policy,
                                         const Mechanism& mech, unsigned fanin, int rep) {
  core::FabricExperimentConfig cfg;
  cfg.topology = topo::make_leaf_spine(2, 4, 4);  // 16 hosts: fan-in up to 15
  cfg.routing = core::FabricRouting::TopologyPerHop;
  cfg.mode = mech.mode;
  cfg.buffer_capacity = 64;
  cfg.pattern = host::TrafficPattern::Incast;
  cfg.incast_target = 0;
  cfg.incast_fanin = fanin;
  // ~1.4x transient overload of the 100 Mbps host link: bursty enough that
  // the hot queue overflows a static slice, light enough that lent buffer
  // actually drains (sustained overload would drown every policy equally).
  cfg.duration_s = grid.quick ? 0.10 : 0.30;
  cfg.flow_arrival_per_s = 2500.0;
  cfg.min_packets = 4;
  cfg.max_packets = 32;
  cfg.frame_size = 1000;
  // Senders burst well above the 100 Mbps host links, so fan-in 15 pushes a
  // multi-hundred-KiB wave at host 0's leaf port faster than it drains.
  cfg.in_flow_rate_mbps = 400.0;
  cfg.seed = grid.base_seed + static_cast<std::uint64_t>(rep);

  // Small fixed egress slices: 16 KiB per class queue is what the static
  // partition grants the incast's hot queue. The pool matches the slices'
  // sum on the busiest switch (6 ports x 4 classes x 16 KiB = 384 KiB =
  // 1536 cells), so every policy arbitrates the same total memory — the
  // comparison isolates the sharing rule, not the SRAM budget.
  cfg.fabric.switch_config.egress.queue_limit_bytes = 16 * 1024;
  sw::mmu::MmuConfig& m = cfg.fabric.switch_config.mmu;
  m.enabled = true;
  m.policy = policy.kind;
  m.pool_cells = 1536;
  m.cell_bytes = 256;
  m.headroom_cells = 32;
  m.reserved_cells = 2;
  m.alpha = 1.0;
  m.buffer_alpha = 0.5;
  m.delay_target_ms = 4.0;
  return cfg;
}

struct CsvAndStats {
  std::string csv;
  std::uint64_t static_delivered_at_max_fanin = 0;
  std::uint64_t dt_delivered_at_max_fanin = 0;
  std::uint64_t delay_delivered_at_max_fanin = 0;
  std::uint64_t static_rejected_at_max_fanin = 0;
};

CsvAndStats run_grid(const GridParams& grid, unsigned jobs) {
  const std::size_t n_cells = grid.policies.size() * grid.mechanisms.size() *
                              grid.fanins.size() * static_cast<std::size_t>(grid.reps);
  std::vector<core::FabricExperimentResult> cells(n_cells);
  {
    util::ThreadPool pool(jobs);
    std::size_t slot = 0;
    for (const Policy& policy : grid.policies) {
      for (const Mechanism& mech : grid.mechanisms) {
        for (const unsigned fanin : grid.fanins) {
          for (int rep = 0; rep < grid.reps; ++rep, ++slot) {
            pool.submit([&cells, slot, &grid, &policy, &mech, fanin, rep]() {
              cells[slot] = core::run_fabric_experiment(cell_config(grid, policy, mech, fanin, rep));
            });
          }
        }
      }
    }
    pool.wait_idle();
  }

  CsvAndStats out;
  std::ostringstream csv;
  csv << "policy,mechanism,fanin,reps,packets_sent,packets_delivered,lost,"
         "mmu_rejected,mmu_peak_pool_cells,buffer_max_units,first_packet_ms_mean,"
         "control_bytes\n";
  const unsigned max_fanin = grid.fanins.back();
  std::size_t slot = 0;
  for (const Policy& policy : grid.policies) {
    for (const Mechanism& mech : grid.mechanisms) {
      for (const unsigned fanin : grid.fanins) {
        std::uint64_t sent = 0, delivered = 0, rejected = 0, peak = 0, control_bytes = 0;
        double buffer_max = 0.0;
        util::Summary first_ms;
        for (int rep = 0; rep < grid.reps; ++rep, ++slot) {
          const core::FabricExperimentResult& r = cells[slot];
          sent += r.packets_sent;
          delivered += r.packets_delivered;
          rejected += r.mmu_rejected;
          peak += r.mmu_peak_pool_cells;
          control_bytes += r.control_bytes;
          buffer_max += r.buffer_max_units;
          first_ms.add(r.first_packet_ms.mean());
        }
        csv << policy.label << ',' << mech.label << ',' << fanin << ',' << grid.reps << ','
            << sent << ',' << delivered << ',' << (sent - delivered) << ',' << rejected << ','
            << peak << ',' << fixed3(buffer_max) << ',' << fixed3(first_ms.mean()) << ','
            << control_bytes << '\n';
        if (fanin == max_fanin) {
          if (policy.kind == sw::mmu::PolicyKind::StaticPartition) {
            out.static_delivered_at_max_fanin += delivered;
            out.static_rejected_at_max_fanin += rejected;
          } else if (policy.kind == sw::mmu::PolicyKind::DynamicThreshold) {
            out.dt_delivered_at_max_fanin += delivered;
          } else {
            out.delay_delivered_at_max_fanin += delivered;
          }
        }
      }
    }
  }
  out.csv = csv.str();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliFlags flags(argc, argv, {"quick", "jobs", "reps", "csv-dir", "seed"});
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n"
              << "usage: " << argv[0] << " [--quick] [--jobs N] [--reps N] [--csv-dir DIR]\n";
    return 1;
  }
  GridParams grid;
  grid.quick = flags.get_bool("quick", false);
  grid.reps = static_cast<int>(flags.get_int("reps", grid.quick ? 1 : 3));
  grid.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const unsigned jobs = static_cast<unsigned>(
      flags.get_int("jobs", static_cast<long long>(util::ThreadPool::default_parallelism())));
  const std::string csv_dir = flags.get_string("csv-dir", "results");

  grid.policies = {{"static", sw::mmu::PolicyKind::StaticPartition},
                   {"dynamic-threshold", sw::mmu::PolicyKind::DynamicThreshold},
                   {"delay-driven", sw::mmu::PolicyKind::DelayDriven}};
  grid.mechanisms = {{"packet", sw::BufferMode::PacketGranularity},
                     {"flow", sw::BufferMode::FlowGranularity}};
  grid.fanins = {4, 8, 15};

  std::printf("bench_mmu (%s, reps=%d, jobs=%u)\n", grid.quick ? "quick" : "full", grid.reps,
              jobs);

  const CsvAndStats first = run_grid(grid, jobs);

  // Determinism self-check: the identical grid replayed (even single-
  // threaded) must produce a bit-identical CSV — pre-assigned slots make the
  // --jobs value irrelevant to the merge order, and the simulation itself
  // has no nondeterminism left to hide.
  const CsvAndStats replay = run_grid(grid, grid.quick ? 1 : jobs);
  if (first.csv != replay.csv) {
    std::fprintf(stderr, "DETERMINISM FAILURE: replayed grid produced a different CSV\n");
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(csv_dir, ec);
  const std::string csv_path = csv_dir + "/mmu.csv";
  {
    std::ofstream f(csv_path);
    f << first.csv;
  }
  std::printf("%s", first.csv.c_str());
  std::printf("wrote %s\n", csv_path.c_str());

  // Headline self-check: at the largest fan-in the static partition must
  // actually be rejecting (the slices are sized to make the burst overflow
  // them), and both dynamic policies must land at least as many packets —
  // the absorption claim the sweep exists to demonstrate.
  if (first.static_rejected_at_max_fanin == 0) {
    std::fprintf(stderr, "SELF-CHECK FAILURE: static partition rejected nothing at fan-in %u\n",
                 grid.fanins.back());
    return 1;
  }
  if (first.dt_delivered_at_max_fanin < first.static_delivered_at_max_fanin ||
      first.delay_delivered_at_max_fanin < first.static_delivered_at_max_fanin) {
    std::fprintf(stderr,
                 "SELF-CHECK FAILURE: dynamic sharing delivered less than static partitioning "
                 "(static=%llu dt=%llu delay=%llu)\n",
                 static_cast<unsigned long long>(first.static_delivered_at_max_fanin),
                 static_cast<unsigned long long>(first.dt_delivered_at_max_fanin),
                 static_cast<unsigned long long>(first.delay_delivered_at_max_fanin));
    return 1;
  }
  std::printf("self-checks: deterministic replay ok, incast absorption ok "
              "(static=%llu dt=%llu delay=%llu delivered at fan-in %u)\n",
              static_cast<unsigned long long>(first.static_delivered_at_max_fanin),
              static_cast<unsigned long long>(first.dt_delivered_at_max_fanin),
              static_cast<unsigned long long>(first.delay_delivered_at_max_fanin),
              grid.fanins.back());
  return 0;
}

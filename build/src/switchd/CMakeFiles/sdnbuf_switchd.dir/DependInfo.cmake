
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchd/egress_scheduler.cpp" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/egress_scheduler.cpp.o" "gcc" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/egress_scheduler.cpp.o.d"
  "/root/repo/src/switchd/flow_buffer.cpp" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/flow_buffer.cpp.o" "gcc" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/flow_buffer.cpp.o.d"
  "/root/repo/src/switchd/flow_table.cpp" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/flow_table.cpp.o" "gcc" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/flow_table.cpp.o.d"
  "/root/repo/src/switchd/packet_buffer.cpp" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/packet_buffer.cpp.o" "gcc" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/packet_buffer.cpp.o.d"
  "/root/repo/src/switchd/switch.cpp" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/switch.cpp.o" "gcc" "src/switchd/CMakeFiles/sdnbuf_switchd.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/openflow/CMakeFiles/sdnbuf_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sdnbuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdnbuf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdnbuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdnbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sdnbuf_switchd.
# This may be replaced when dependencies are built.

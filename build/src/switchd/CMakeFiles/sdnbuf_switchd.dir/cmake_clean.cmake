file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_switchd.dir/egress_scheduler.cpp.o"
  "CMakeFiles/sdnbuf_switchd.dir/egress_scheduler.cpp.o.d"
  "CMakeFiles/sdnbuf_switchd.dir/flow_buffer.cpp.o"
  "CMakeFiles/sdnbuf_switchd.dir/flow_buffer.cpp.o.d"
  "CMakeFiles/sdnbuf_switchd.dir/flow_table.cpp.o"
  "CMakeFiles/sdnbuf_switchd.dir/flow_table.cpp.o.d"
  "CMakeFiles/sdnbuf_switchd.dir/packet_buffer.cpp.o"
  "CMakeFiles/sdnbuf_switchd.dir/packet_buffer.cpp.o.d"
  "CMakeFiles/sdnbuf_switchd.dir/switch.cpp.o"
  "CMakeFiles/sdnbuf_switchd.dir/switch.cpp.o.d"
  "libsdnbuf_switchd.a"
  "libsdnbuf_switchd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_switchd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

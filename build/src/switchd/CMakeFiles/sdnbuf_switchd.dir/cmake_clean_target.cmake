file(REMOVE_RECURSE
  "libsdnbuf_switchd.a"
)

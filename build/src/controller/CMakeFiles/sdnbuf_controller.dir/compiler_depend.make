# Empty compiler generated dependencies file for sdnbuf_controller.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_controller.dir/controller.cpp.o"
  "CMakeFiles/sdnbuf_controller.dir/controller.cpp.o.d"
  "libsdnbuf_controller.a"
  "libsdnbuf_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

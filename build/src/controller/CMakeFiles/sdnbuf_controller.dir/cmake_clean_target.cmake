file(REMOVE_RECURSE
  "libsdnbuf_controller.a"
)

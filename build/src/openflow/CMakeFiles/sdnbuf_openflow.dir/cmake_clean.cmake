file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_openflow.dir/actions.cpp.o"
  "CMakeFiles/sdnbuf_openflow.dir/actions.cpp.o.d"
  "CMakeFiles/sdnbuf_openflow.dir/capture.cpp.o"
  "CMakeFiles/sdnbuf_openflow.dir/capture.cpp.o.d"
  "CMakeFiles/sdnbuf_openflow.dir/channel.cpp.o"
  "CMakeFiles/sdnbuf_openflow.dir/channel.cpp.o.d"
  "CMakeFiles/sdnbuf_openflow.dir/match.cpp.o"
  "CMakeFiles/sdnbuf_openflow.dir/match.cpp.o.d"
  "CMakeFiles/sdnbuf_openflow.dir/messages.cpp.o"
  "CMakeFiles/sdnbuf_openflow.dir/messages.cpp.o.d"
  "libsdnbuf_openflow.a"
  "libsdnbuf_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sdnbuf_openflow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsdnbuf_openflow.a"
)

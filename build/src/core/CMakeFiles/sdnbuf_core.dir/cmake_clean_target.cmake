file(REMOVE_RECURSE
  "libsdnbuf_core.a"
)

# Empty dependencies file for sdnbuf_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_core.dir/chain_testbed.cpp.o"
  "CMakeFiles/sdnbuf_core.dir/chain_testbed.cpp.o.d"
  "CMakeFiles/sdnbuf_core.dir/experiment.cpp.o"
  "CMakeFiles/sdnbuf_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sdnbuf_core.dir/sweep.cpp.o"
  "CMakeFiles/sdnbuf_core.dir/sweep.cpp.o.d"
  "CMakeFiles/sdnbuf_core.dir/testbed.cpp.o"
  "CMakeFiles/sdnbuf_core.dir/testbed.cpp.o.d"
  "libsdnbuf_core.a"
  "libsdnbuf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

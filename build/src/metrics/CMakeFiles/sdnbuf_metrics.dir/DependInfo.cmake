
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/delay_recorder.cpp" "src/metrics/CMakeFiles/sdnbuf_metrics.dir/delay_recorder.cpp.o" "gcc" "src/metrics/CMakeFiles/sdnbuf_metrics.dir/delay_recorder.cpp.o.d"
  "/root/repo/src/metrics/occupancy.cpp" "src/metrics/CMakeFiles/sdnbuf_metrics.dir/occupancy.cpp.o" "gcc" "src/metrics/CMakeFiles/sdnbuf_metrics.dir/occupancy.cpp.o.d"
  "/root/repo/src/metrics/time_series.cpp" "src/metrics/CMakeFiles/sdnbuf_metrics.dir/time_series.cpp.o" "gcc" "src/metrics/CMakeFiles/sdnbuf_metrics.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sdnbuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdnbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

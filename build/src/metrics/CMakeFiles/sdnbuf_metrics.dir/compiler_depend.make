# Empty compiler generated dependencies file for sdnbuf_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsdnbuf_metrics.a"
)

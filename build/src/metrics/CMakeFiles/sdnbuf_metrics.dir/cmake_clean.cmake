file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_metrics.dir/delay_recorder.cpp.o"
  "CMakeFiles/sdnbuf_metrics.dir/delay_recorder.cpp.o.d"
  "CMakeFiles/sdnbuf_metrics.dir/occupancy.cpp.o"
  "CMakeFiles/sdnbuf_metrics.dir/occupancy.cpp.o.d"
  "CMakeFiles/sdnbuf_metrics.dir/time_series.cpp.o"
  "CMakeFiles/sdnbuf_metrics.dir/time_series.cpp.o.d"
  "libsdnbuf_metrics.a"
  "libsdnbuf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

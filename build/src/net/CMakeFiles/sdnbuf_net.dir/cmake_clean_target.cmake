file(REMOVE_RECURSE
  "libsdnbuf_net.a"
)

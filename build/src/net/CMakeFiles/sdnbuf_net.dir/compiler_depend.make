# Empty compiler generated dependencies file for sdnbuf_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_net.dir/address.cpp.o"
  "CMakeFiles/sdnbuf_net.dir/address.cpp.o.d"
  "CMakeFiles/sdnbuf_net.dir/flow_key.cpp.o"
  "CMakeFiles/sdnbuf_net.dir/flow_key.cpp.o.d"
  "CMakeFiles/sdnbuf_net.dir/headers.cpp.o"
  "CMakeFiles/sdnbuf_net.dir/headers.cpp.o.d"
  "CMakeFiles/sdnbuf_net.dir/link.cpp.o"
  "CMakeFiles/sdnbuf_net.dir/link.cpp.o.d"
  "CMakeFiles/sdnbuf_net.dir/packet.cpp.o"
  "CMakeFiles/sdnbuf_net.dir/packet.cpp.o.d"
  "libsdnbuf_net.a"
  "libsdnbuf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_util.dir/cli.cpp.o"
  "CMakeFiles/sdnbuf_util.dir/cli.cpp.o.d"
  "CMakeFiles/sdnbuf_util.dir/csv.cpp.o"
  "CMakeFiles/sdnbuf_util.dir/csv.cpp.o.d"
  "CMakeFiles/sdnbuf_util.dir/logging.cpp.o"
  "CMakeFiles/sdnbuf_util.dir/logging.cpp.o.d"
  "CMakeFiles/sdnbuf_util.dir/rng.cpp.o"
  "CMakeFiles/sdnbuf_util.dir/rng.cpp.o.d"
  "CMakeFiles/sdnbuf_util.dir/stats.cpp.o"
  "CMakeFiles/sdnbuf_util.dir/stats.cpp.o.d"
  "CMakeFiles/sdnbuf_util.dir/strings.cpp.o"
  "CMakeFiles/sdnbuf_util.dir/strings.cpp.o.d"
  "libsdnbuf_util.a"
  "libsdnbuf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsdnbuf_util.a"
)

# Empty dependencies file for sdnbuf_util.
# This may be replaced when dependencies are built.

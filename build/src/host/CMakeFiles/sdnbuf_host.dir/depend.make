# Empty dependencies file for sdnbuf_host.
# This may be replaced when dependencies are built.

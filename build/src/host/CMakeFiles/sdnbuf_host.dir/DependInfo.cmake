
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/sink.cpp" "src/host/CMakeFiles/sdnbuf_host.dir/sink.cpp.o" "gcc" "src/host/CMakeFiles/sdnbuf_host.dir/sink.cpp.o.d"
  "/root/repo/src/host/synthetic_workload.cpp" "src/host/CMakeFiles/sdnbuf_host.dir/synthetic_workload.cpp.o" "gcc" "src/host/CMakeFiles/sdnbuf_host.dir/synthetic_workload.cpp.o.d"
  "/root/repo/src/host/traffic_gen.cpp" "src/host/CMakeFiles/sdnbuf_host.dir/traffic_gen.cpp.o" "gcc" "src/host/CMakeFiles/sdnbuf_host.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/sdnbuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdnbuf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdnbuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdnbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

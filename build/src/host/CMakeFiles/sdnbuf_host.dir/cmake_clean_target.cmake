file(REMOVE_RECURSE
  "libsdnbuf_host.a"
)

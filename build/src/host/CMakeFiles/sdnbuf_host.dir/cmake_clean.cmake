file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_host.dir/sink.cpp.o"
  "CMakeFiles/sdnbuf_host.dir/sink.cpp.o.d"
  "CMakeFiles/sdnbuf_host.dir/synthetic_workload.cpp.o"
  "CMakeFiles/sdnbuf_host.dir/synthetic_workload.cpp.o.d"
  "CMakeFiles/sdnbuf_host.dir/traffic_gen.cpp.o"
  "CMakeFiles/sdnbuf_host.dir/traffic_gen.cpp.o.d"
  "libsdnbuf_host.a"
  "libsdnbuf_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsdnbuf_sim.a"
)

# Empty compiler generated dependencies file for sdnbuf_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_sim.dir/server.cpp.o"
  "CMakeFiles/sdnbuf_sim.dir/server.cpp.o.d"
  "CMakeFiles/sdnbuf_sim.dir/simulator.cpp.o"
  "CMakeFiles/sdnbuf_sim.dir/simulator.cpp.o.d"
  "libsdnbuf_sim.a"
  "libsdnbuf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

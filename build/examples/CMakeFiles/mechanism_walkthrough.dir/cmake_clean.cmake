file(REMOVE_RECURSE
  "CMakeFiles/mechanism_walkthrough.dir/mechanism_walkthrough.cpp.o"
  "CMakeFiles/mechanism_walkthrough.dir/mechanism_walkthrough.cpp.o.d"
  "mechanism_walkthrough"
  "mechanism_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanism_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

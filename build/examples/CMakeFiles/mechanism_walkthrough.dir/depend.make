# Empty dependencies file for mechanism_walkthrough.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/udp_burst.dir/udp_burst.cpp.o"
  "CMakeFiles/udp_burst.dir/udp_burst.cpp.o.d"
  "udp_burst"
  "udp_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

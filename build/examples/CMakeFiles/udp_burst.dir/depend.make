# Empty dependencies file for udp_burst.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for tcp_rule_eviction.
# This may be replaced when dependencies are built.

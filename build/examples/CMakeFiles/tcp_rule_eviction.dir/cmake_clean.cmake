file(REMOVE_RECURSE
  "CMakeFiles/tcp_rule_eviction.dir/tcp_rule_eviction.cpp.o"
  "CMakeFiles/tcp_rule_eviction.dir/tcp_rule_eviction.cpp.o.d"
  "tcp_rule_eviction"
  "tcp_rule_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_rule_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

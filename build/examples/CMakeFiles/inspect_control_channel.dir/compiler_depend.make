# Empty compiler generated dependencies file for inspect_control_channel.
# This may be replaced when dependencies are built.

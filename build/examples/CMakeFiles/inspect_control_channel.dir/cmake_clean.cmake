file(REMOVE_RECURSE
  "CMakeFiles/inspect_control_channel.dir/inspect_control_channel.cpp.o"
  "CMakeFiles/inspect_control_channel.dir/inspect_control_channel.cpp.o.d"
  "inspect_control_channel"
  "inspect_control_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_control_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_control_path_load.dir/bench_fig9_control_path_load.cpp.o"
  "CMakeFiles/bench_fig9_control_path_load.dir/bench_fig9_control_path_load.cpp.o.d"
  "bench_fig9_control_path_load"
  "bench_fig9_control_path_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_control_path_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

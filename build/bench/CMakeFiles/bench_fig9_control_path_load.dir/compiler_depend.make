# Empty compiler generated dependencies file for bench_fig9_control_path_load.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig3_controller_usage.
# This may be replaced when dependencies are built.

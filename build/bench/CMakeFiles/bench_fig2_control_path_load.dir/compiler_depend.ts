# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig2_control_path_load.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_control_path_load.dir/bench_fig2_control_path_load.cpp.o"
  "CMakeFiles/bench_fig2_control_path_load.dir/bench_fig2_control_path_load.cpp.o.d"
  "bench_fig2_control_path_load"
  "bench_fig2_control_path_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_control_path_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

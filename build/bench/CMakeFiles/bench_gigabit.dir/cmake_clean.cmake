file(REMOVE_RECURSE
  "CMakeFiles/bench_gigabit.dir/bench_gigabit.cpp.o"
  "CMakeFiles/bench_gigabit.dir/bench_gigabit.cpp.o.d"
  "bench_gigabit"
  "bench_gigabit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gigabit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

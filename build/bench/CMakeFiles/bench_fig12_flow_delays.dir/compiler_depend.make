# Empty compiler generated dependencies file for bench_fig12_flow_delays.
# This may be replaced when dependencies are built.

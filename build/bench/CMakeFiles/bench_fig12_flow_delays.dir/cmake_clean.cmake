file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_flow_delays.dir/bench_fig12_flow_delays.cpp.o"
  "CMakeFiles/bench_fig12_flow_delays.dir/bench_fig12_flow_delays.cpp.o.d"
  "bench_fig12_flow_delays"
  "bench_fig12_flow_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_flow_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig5_flow_setup_delay.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig4_switch_usage.
# This may be replaced when dependencies are built.

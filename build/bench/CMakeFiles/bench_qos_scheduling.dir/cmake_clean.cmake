file(REMOVE_RECURSE
  "CMakeFiles/bench_qos_scheduling.dir/bench_qos_scheduling.cpp.o"
  "CMakeFiles/bench_qos_scheduling.dir/bench_qos_scheduling.cpp.o.d"
  "bench_qos_scheduling"
  "bench_qos_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qos_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_summary_claims.
# This may be replaced when dependencies are built.

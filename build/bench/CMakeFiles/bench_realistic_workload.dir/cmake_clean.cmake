file(REMOVE_RECURSE
  "CMakeFiles/bench_realistic_workload.dir/bench_realistic_workload.cpp.o"
  "CMakeFiles/bench_realistic_workload.dir/bench_realistic_workload.cpp.o.d"
  "bench_realistic_workload"
  "bench_realistic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_realistic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_realistic_workload.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_robustness_loss.
# This may be replaced when dependencies are built.

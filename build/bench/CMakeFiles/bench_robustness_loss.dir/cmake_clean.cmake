file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_loss.dir/bench_robustness_loss.cpp.o"
  "CMakeFiles/bench_robustness_loss.dir/bench_robustness_loss.cpp.o.d"
  "bench_robustness_loss"
  "bench_robustness_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsdnbuf_bench_common.a"
)

# Empty dependencies file for sdnbuf_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdnbuf_bench_common.dir/common.cpp.o"
  "CMakeFiles/sdnbuf_bench_common.dir/common.cpp.o.d"
  "libsdnbuf_bench_common.a"
  "libsdnbuf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdnbuf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

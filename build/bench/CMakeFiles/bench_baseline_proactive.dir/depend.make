# Empty dependencies file for bench_baseline_proactive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_proactive.dir/bench_baseline_proactive.cpp.o"
  "CMakeFiles/bench_baseline_proactive.dir/bench_baseline_proactive.cpp.o.d"
  "bench_baseline_proactive"
  "bench_baseline_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

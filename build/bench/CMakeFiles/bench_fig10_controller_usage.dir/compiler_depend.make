# Empty compiler generated dependencies file for bench_fig10_controller_usage.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig6_controller_delay.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_switch_usage.cpp" "bench/CMakeFiles/bench_fig11_switch_usage.dir/bench_fig11_switch_usage.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_switch_usage.dir/bench_fig11_switch_usage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/sdnbuf_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdnbuf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/sdnbuf_host.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/sdnbuf_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/switchd/CMakeFiles/sdnbuf_switchd.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sdnbuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/sdnbuf_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdnbuf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdnbuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdnbuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

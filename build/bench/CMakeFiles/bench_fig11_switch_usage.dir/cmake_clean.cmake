file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_switch_usage.dir/bench_fig11_switch_usage.cpp.o"
  "CMakeFiles/bench_fig11_switch_usage.dir/bench_fig11_switch_usage.cpp.o.d"
  "bench_fig11_switch_usage"
  "bench_fig11_switch_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_switch_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_mixed_traffic.
# This may be replaced when dependencies are built.

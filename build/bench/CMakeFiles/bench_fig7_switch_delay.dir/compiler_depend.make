# Empty compiler generated dependencies file for bench_fig7_switch_delay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_openflow.dir/test_openflow.cpp.o"
  "CMakeFiles/test_openflow.dir/test_openflow.cpp.o.d"
  "test_openflow"
  "test_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

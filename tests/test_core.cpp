// Unit tests for the core harness glue: result summarization, sweep
// aggregation helpers, and experiment-config plumbing that the integration
// tests do not cover directly.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

namespace sdnbuf::core {
namespace {

TEST(Summarize, MentionsTheKeyNumbers) {
  ExperimentResult r;
  r.to_controller_mbps = 12.5;
  r.to_switch_mbps = 3.25;
  r.switch_cpu_pct = 150.0;
  r.controller_cpu_pct = 42.0;
  r.pkt_ins_sent = 321;
  r.full_frame_pkt_ins = 7;
  r.packets_sent = 400;
  r.packets_delivered = 400;
  r.buffer_max_units = 59;
  r.buffer_avg_units = 31.5;
  r.setup_ms.add(1.25);
  const std::string s = summarize(r);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("321"), std::string::npos);
  EXPECT_NE(s.find("400/400"), std::string::npos);
  EXPECT_NE(s.find("59"), std::string::npos);
}

TEST(Summarize, OmitsBufferWhenUnused) {
  ExperimentResult r;
  r.buffer_max_units = 0;
  const std::string s = summarize(r);
  EXPECT_EQ(s.find("buf("), std::string::npos);
}

TEST(SweepResult, OverallMeanAndMax) {
  SweepResult result;
  for (const double v : {1.0, 2.0, 6.0}) {
    RatePoint p;
    p.rate_mbps = v * 10;
    p.setup_ms.add(v);
    result.points.push_back(std::move(p));
  }
  const auto metric = [](const RatePoint& p) { return p.setup_ms.mean(); };
  EXPECT_DOUBLE_EQ(result.overall_mean(metric), 3.0);
  EXPECT_DOUBLE_EQ(result.overall_max(metric), 6.0);
}

TEST(ExperimentConfig, TcpFractionFlowsThroughToTraffic) {
  ExperimentConfig config;
  config.mode = sw::BufferMode::PacketGranularity;
  config.rate_mbps = 50.0;
  config.n_flows = 40;
  config.tcp_flow_fraction = 0.5;
  config.seed = 5;
  const auto r = run_experiment(config);
  // Mixed flows still conserve and complete.
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.flows_complete, 40u);
}

TEST(ExperimentConfig, CustomCostModelChangesResults) {
  ExperimentConfig slow;
  slow.mode = sw::BufferMode::PacketGranularity;
  slow.rate_mbps = 50.0;
  slow.n_flows = 50;
  slow.seed = 5;
  ExperimentConfig fast = slow;
  fast.testbed.switch_config.costs.flow_mod_install_us = 5.0;
  fast.testbed.switch_config.costs.miss_base_us = 5.0;
  const auto r_slow = run_experiment(slow);
  const auto r_fast = run_experiment(fast);
  EXPECT_LT(r_fast.setup_ms.mean(), r_slow.setup_ms.mean());
}

TEST(ExperimentConfig, SmallerMissSendLenShrinksRequests) {
  ExperimentConfig big;
  big.mode = sw::BufferMode::PacketGranularity;
  big.rate_mbps = 50.0;
  big.n_flows = 50;
  big.seed = 5;
  ExperimentConfig small = big;
  small.testbed.switch_config.miss_send_len = 64;
  const auto r_big = run_experiment(big);
  const auto r_small = run_experiment(small);
  EXPECT_LT(r_small.to_controller_bytes, r_big.to_controller_bytes);
  // 64 fewer data bytes per request, same request count.
  EXPECT_EQ(r_small.pkt_ins_sent, r_big.pkt_ins_sent);
  EXPECT_EQ(r_big.to_controller_bytes - r_small.to_controller_bytes,
            64u * r_big.pkt_ins_sent);
}

}  // namespace
}  // namespace sdnbuf::core

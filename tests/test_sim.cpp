// Unit tests for the discrete-event engine: time arithmetic, event ordering,
// cancellation, run_until semantics, and the multi-server queueing station.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace sdnbuf::sim {
namespace {

TEST(SimTime, ConstructorsAndAccessors) {
  EXPECT_EQ(SimTime::microseconds(3).ns(), 3000);
  EXPECT_EQ(SimTime::milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(1).ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(1500).sec(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(1500).ms(), 1.5);
}

TEST(SimTime, FromSecondsRounds) {
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.4e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.6e-9).ns(), 2);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::milliseconds(3);
  const SimTime b = SimTime::milliseconds(1);
  EXPECT_EQ((a + b).ns(), 4'000'000);
  EXPECT_EQ((a - b).ns(), 2'000'000);
  EXPECT_LT(b, a);
  EXPECT_EQ(a.scaled(0.5).ns(), 1'500'000);
}

TEST(SimTime, TransmissionTime) {
  // 1000 bytes at 100 Mbps = 80 microseconds.
  EXPECT_EQ(transmission_time(1000, 100e6).ns(), 80'000);
  // 1 byte at 1 Gbps = 8 ns.
  EXPECT_EQ(transmission_time(1, 1e9).ns(), 8);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::milliseconds(3), [&]() { order.push_back(3); });
  sim.schedule(SimTime::milliseconds(1), [&]() { order.push_back(1); });
  sim.schedule(SimTime::milliseconds(2), [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::milliseconds(3));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(SimTime::milliseconds(1), [&order, i]() { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 10) sim.schedule(SimTime::microseconds(1), chain);
  };
  sim.schedule(SimTime::zero(), chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), SimTime::microseconds(9));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule(SimTime::milliseconds(1), [&]() { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule(SimTime::zero(), []() {});
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.schedule(SimTime::milliseconds(1), [&]() { ++ran; });
  sim.schedule(SimTime::milliseconds(5), [&]() { ++ran; });
  const std::size_t executed = sim.run_until(SimTime::milliseconds(2));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), SimTime::milliseconds(2));  // clock advances to the boundary
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule(SimTime::milliseconds(2), [&]() { ran = true; });
  sim.run_until(SimTime::milliseconds(2));
  EXPECT_TRUE(ran);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule(SimTime::zero(), [&]() { ++ran; });
  sim.schedule(SimTime::zero(), [&]() { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(SimTime::zero(), []() {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

// Property: over many randomized schedules with heavy time collisions,
// execution order is exactly (time, scheduling order).
TEST(SimulatorProperty, EqualTimeEventsAlwaysExecuteInSchedulingOrder) {
  util::Rng rng(0xfeed);
  for (int trial = 0; trial < 50; ++trial) {
    Simulator sim;
    const int n = 20 + static_cast<int>(rng.next_below(60));
    std::vector<std::pair<std::int64_t, int>> expected;  // (time, insertion idx)
    std::vector<int> executed;
    for (int i = 0; i < n; ++i) {
      // Only 8 distinct timestamps, so most events collide.
      const auto t = SimTime::microseconds(static_cast<std::int64_t>(rng.next_below(8)));
      expected.emplace_back(t.ns(), i);
      sim.schedule(t, [&executed, i]() { executed.push_back(i); });
    }
    sim.run();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(executed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(executed[i], expected[i].second) << "trial " << trial << " position " << i;
    }
  }
}

// Property: cancelling a handle after its event fired never unschedules
// anything else and keeps the pending-event accounting exact.
TEST(SimulatorProperty, CancelAfterFireIsAlwaysNoop) {
  util::Rng rng(0xcafe);
  for (int trial = 0; trial < 50; ++trial) {
    Simulator sim;
    const int n = 10 + static_cast<int>(rng.next_below(30));
    int ran = 0;
    std::vector<EventHandle> handles;
    for (int i = 0; i < n; ++i) {
      handles.push_back(sim.schedule(
          SimTime::microseconds(static_cast<std::int64_t>(rng.next_below(5))), [&]() { ++ran; }));
    }
    sim.run();
    ASSERT_EQ(ran, n);
    for (auto& h : handles) {
      ASSERT_FALSE(h.pending());
      h.cancel();  // all no-ops
      h.cancel();  // idempotent
    }
    ASSERT_EQ(sim.pending_events(), 0u);
    // The simulator is still fully functional afterwards.
    bool late = false;
    sim.schedule(SimTime::microseconds(1), [&]() { late = true; });
    ASSERT_EQ(sim.pending_events(), 1u);
    sim.run();
    ASSERT_TRUE(late);
  }
}

// Property: run_until(t) executes exactly the events with time <= t, leaves
// the rest queued, and advances the clock to exactly t even when no event
// sits on the boundary.
TEST(SimulatorProperty, RunUntilAdvancesClockExactlyToBoundary) {
  util::Rng rng(0xbead);
  for (int trial = 0; trial < 50; ++trial) {
    Simulator sim;
    const int n = 10 + static_cast<int>(rng.next_below(40));
    std::vector<std::int64_t> times_ns;
    std::size_t executed = 0;
    for (int i = 0; i < n; ++i) {
      const auto t = SimTime::microseconds(static_cast<std::int64_t>(rng.next_below(100)));
      times_ns.push_back(t.ns());
      sim.schedule(t, [&executed]() { ++executed; });
    }
    // A nanosecond-granular boundary, so it usually falls strictly between
    // the microsecond-aligned event times.
    const SimTime boundary =
        SimTime::nanoseconds(static_cast<std::int64_t>(rng.next_below(100'000'000)));
    sim.run_until(boundary);
    const auto expected = static_cast<std::size_t>(
        std::count_if(times_ns.begin(), times_ns.end(),
                      [&boundary](std::int64_t t) { return t <= boundary.ns(); }));
    ASSERT_EQ(executed, expected) << "trial " << trial;
    ASSERT_EQ(sim.now(), boundary) << "trial " << trial;  // exact, not "last event time"
    ASSERT_EQ(sim.pending_events(), times_ns.size() - expected);
    sim.run();
    ASSERT_EQ(executed, times_ns.size());
  }
}

TEST(Simulator, MassCancellationCompactsHeap) {
  Simulator sim;
  std::vector<EventHandle> handles;
  handles.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.schedule(SimTime::seconds(100 + i), []() {}));
  }
  EXPECT_EQ(sim.queued_entries(), 1000u);
  // Cancel 900 of the 1000: tombstones now outnumber live entries, so the
  // heap must compact rather than hold 90% dead weight.
  for (int i = 0; i < 900; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(sim.pending_events(), 100u);
  EXPECT_LT(sim.queued_entries(), 250u);  // 100 live + bounded tombstone slack
  // The survivors are untouched and still run.
  for (int i = 900; i < 1000; ++i) {
    EXPECT_TRUE(handles[static_cast<std::size_t>(i)].pending());
  }
  sim.run();
  EXPECT_EQ(sim.executed_events(), 100u);
  EXPECT_EQ(sim.queued_entries(), 0u);
}

TEST(Simulator, SmallHeapsSkipCompaction) {
  // Below the compaction threshold tombstones are simply popped lazily.
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.schedule(SimTime::seconds(1 + i), []() {}));
  }
  for (int i = 0; i < 9; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(sim.queued_entries(), 10u);  // tombstones still queued
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, StaleHandleCannotCancelRecycledSlot) {
  // After h1 fires its slot returns to the free list; h2 likely reuses it.
  // The generation counter must keep the stale h1 from touching h2.
  Simulator sim;
  EventHandle h1 = sim.schedule(SimTime::milliseconds(1), []() {});
  sim.run();
  bool ran = false;
  EventHandle h2 = sim.schedule(SimTime::milliseconds(1), [&]() { ran = true; });
  h1.cancel();  // stale: must be a no-op even if h2 recycled h1's slot
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelledSlotRecycledForNewEvents) {
  // Cancelling releases the slot immediately; heavy schedule/cancel cycles
  // must not grow the slab without bound.
  Simulator sim;
  for (int i = 0; i < 10'000; ++i) {
    EventHandle h = sim.schedule(SimTime::seconds(1), []() {});
    h.cancel();
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 0u);
  // Still functional.
  bool ran = false;
  sim.schedule(SimTime::milliseconds(1), [&]() { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CallbackMayScheduleIntoItsOwnSlot) {
  // The running event's slot is released before the callback executes, so a
  // self-rescheduling chain can recycle one slot forever.
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 100) sim.schedule(SimTime::microseconds(1), chain);
  };
  sim.schedule(SimTime::zero(), chain);
  sim.run();
  EXPECT_EQ(count, 100);
}

TEST(CpuServer, SingleCoreSerializesJobs) {
  Simulator sim;
  CpuServer server{sim, "cpu", 1};
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    server.submit(SimTime::milliseconds(10),
                  [&completions, &sim]() { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], SimTime::milliseconds(10));
  EXPECT_EQ(completions[1], SimTime::milliseconds(20));
  EXPECT_EQ(completions[2], SimTime::milliseconds(30));
}

TEST(CpuServer, MultiCoreRunsInParallel) {
  Simulator sim;
  CpuServer server{sim, "cpu", 2};
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    server.submit(SimTime::milliseconds(10),
                  [&completions, &sim]() { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 4u);
  // Two at t=10 (parallel), two at t=20.
  EXPECT_EQ(completions[1], SimTime::milliseconds(10));
  EXPECT_EQ(completions[2], SimTime::milliseconds(20));
  EXPECT_EQ(completions[3], SimTime::milliseconds(20));
}

TEST(CpuServer, BusyTimeAccumulates) {
  Simulator sim;
  CpuServer server{sim, "cpu", 2};
  for (int i = 0; i < 4; ++i) server.submit(SimTime::milliseconds(5), nullptr);
  sim.run();
  EXPECT_EQ(server.busy_time(), SimTime::milliseconds(20));
  EXPECT_EQ(server.jobs_completed(), 4u);
}

TEST(CpuServer, UtilizationPercentCanExceed100) {
  Simulator sim;
  CpuServer server{sim, "cpu", 4};
  // 4 cores busy for the whole window: the OS-style reading is 400%.
  for (int i = 0; i < 4; ++i) server.submit(SimTime::milliseconds(10), nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(server.utilization_percent(SimTime::zero(), SimTime::milliseconds(10)),
                   400.0);
}

TEST(CpuServer, WaitTimesMeasured) {
  Simulator sim;
  CpuServer server{sim, "cpu", 1};
  server.submit(SimTime::milliseconds(10), nullptr);
  server.submit(SimTime::milliseconds(10), nullptr);  // waits 10 ms
  sim.run();
  EXPECT_EQ(server.wait_ms().count(), 2u);
  EXPECT_DOUBLE_EQ(server.wait_ms().max(), 10.0);
  EXPECT_DOUBLE_EQ(server.wait_ms().min(), 0.0);
}

TEST(CpuServer, FifoOrderWithinQueue) {
  Simulator sim;
  CpuServer server{sim, "cpu", 1};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    server.submit(SimTime::milliseconds(1), [&order, i]() { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CpuServer, ZeroServiceJobCompletes) {
  Simulator sim;
  CpuServer server{sim, "cpu", 1};
  bool done = false;
  server.submit(SimTime::zero(), [&]() { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(CpuServer, ResetStatsClearsAccounting) {
  Simulator sim;
  CpuServer server{sim, "cpu", 1};
  server.submit(SimTime::milliseconds(5), nullptr);
  sim.run();
  server.reset_stats();
  EXPECT_EQ(server.busy_time(), SimTime::zero());
  EXPECT_EQ(server.jobs_completed(), 0u);
  EXPECT_EQ(server.wait_ms().count(), 0u);
}

TEST(CpuServer, CompletionCallbackSubmissionQueuesFairly) {
  Simulator sim;
  CpuServer server{sim, "cpu", 1};
  std::vector<int> order;
  server.submit(SimTime::milliseconds(1), [&]() {
    order.push_back(0);
    // Submitted from a completion: must run after the already queued job.
    server.submit(SimTime::milliseconds(1), [&]() { order.push_back(2); });
  });
  server.submit(SimTime::milliseconds(1), [&]() { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace sdnbuf::sim

// Integration tests for the multi-switch chain: L2 learning across hops,
// per-hop rule installation, packet conservation, buffering at every hop,
// and the per-hop multiplication of the reactive overhead.
#include <gtest/gtest.h>

#include "core/chain_testbed.hpp"
#include "host/traffic_gen.hpp"

namespace sdnbuf::core {
namespace {

ChainConfig chain_config(unsigned n_switches, sw::BufferMode mode) {
  ChainConfig config;
  config.n_switches = n_switches;
  config.switch_config.buffer_mode = mode;
  config.switch_config.buffer_capacity = 256;
  return config;
}

// Sends `n_flows` single-packet flows from host1 at 50 Mbps and drains.
void run_flows(ChainTestbed& bed, std::uint64_t n_flows, std::uint32_t packets_per_flow = 1) {
  host::TrafficConfig traffic;
  traffic.rate_mbps = 50.0;
  traffic.n_flows = n_flows;
  traffic.packets_per_flow = packets_per_flow;
  traffic.src_mac = bed.host1_mac();
  traffic.dst_mac = bed.host2_mac();
  traffic.src_ip_base = bed.host1_ip();
  traffic.dst_ip = bed.host2_ip();
  host::TrafficGenerator gen{bed.sim(), traffic, 3,
                             [&bed](const net::Packet& p) { bed.inject_from_host1(p); }};
  gen.start();
  const sim::SimTime deadline = bed.sim().now() + sim::SimTime::seconds(10);
  while (bed.sim().now() < deadline &&
         bed.sink2().packets_received() < gen.total_packets()) {
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(20));
  }
  bed.stop();
  bed.sim().run();
}

TEST(ChainTestbed, WarmUpTeachesEverySwitch) {
  ChainTestbed bed{chain_config(3, sw::BufferMode::PacketGranularity)};
  bed.warm_up();
  for (unsigned dpid = 1; dpid <= 3; ++dpid) {
    ASSERT_TRUE(bed.controller().lookup_mac(bed.host1_mac(), dpid).has_value()) << dpid;
    ASSERT_TRUE(bed.controller().lookup_mac(bed.host2_mac(), dpid).has_value()) << dpid;
  }
  // Direction sanity: at switch 1 host1 is on the left port; at switch 3
  // host2 is on the right port.
  EXPECT_EQ(*bed.controller().lookup_mac(bed.host1_mac(), 1), ChainTestbed::kLeftPort);
  EXPECT_EQ(*bed.controller().lookup_mac(bed.host2_mac(), 3), ChainTestbed::kRightPort);
  // Mid-chain: host1 toward the left, host2 toward the right.
  EXPECT_EQ(*bed.controller().lookup_mac(bed.host1_mac(), 2), ChainTestbed::kLeftPort);
  EXPECT_EQ(*bed.controller().lookup_mac(bed.host2_mac(), 2), ChainTestbed::kRightPort);
}

class ChainMechanismTest : public ::testing::TestWithParam<sw::BufferMode> {};

TEST_P(ChainMechanismTest, EveryPacketTraversesTheChainExactlyOnce) {
  ChainTestbed bed{chain_config(3, GetParam())};
  bed.warm_up();
  run_flows(bed, 100, 2);
  EXPECT_EQ(bed.sink2().packets_received(), 200u);
  EXPECT_EQ(bed.sink2().duplicate_packets(), 0u);
  EXPECT_EQ(bed.sink1().packets_received(), 0u);  // nothing reflected back
}

TEST_P(ChainMechanismTest, EveryHopRequestsEveryFlow) {
  ChainTestbed bed{chain_config(3, GetParam())};
  bed.warm_up();
  run_flows(bed, 100);
  // Single-packet flows: exactly one miss per flow per switch.
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(bed.switch_at(i).counters().pkt_ins_sent, 100u) << "switch " << i;
    // 100 flow rules plus the rules warm-up installed (they idle out later).
    EXPECT_GE(bed.switch_at(i).flow_table().size(), 100u) << "switch " << i;
    EXPECT_LE(bed.switch_at(i).flow_table().size(), 103u) << "switch " << i;
  }
  EXPECT_EQ(bed.total_pkt_ins(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, ChainMechanismTest,
                         ::testing::Values(sw::BufferMode::NoBuffer,
                                           sw::BufferMode::PacketGranularity,
                                           sw::BufferMode::FlowGranularity),
                         [](const auto& info) {
                           return info.param == sw::BufferMode::NoBuffer ? "NoBuffer"
                                  : info.param == sw::BufferMode::PacketGranularity
                                      ? "PacketGranularity"
                                      : "FlowGranularity";
                         });

TEST(ChainTestbed, ControlBytesScaleWithHops) {
  std::uint64_t bytes_1 = 0;
  std::uint64_t bytes_3 = 0;
  for (const unsigned hops : {1u, 3u}) {
    ChainTestbed bed{chain_config(hops, sw::BufferMode::NoBuffer)};
    bed.warm_up();
    run_flows(bed, 50);
    (hops == 1 ? bytes_1 : bytes_3) = bed.total_control_bytes();
  }
  // Three switches generate ~3x the control traffic of one.
  EXPECT_NEAR(static_cast<double>(bytes_3) / static_cast<double>(bytes_1), 3.0, 0.3);
}

TEST(ChainTestbed, BufferSavingHoldsPerHop) {
  std::uint64_t none_bytes = 0;
  std::uint64_t buffered_bytes = 0;
  for (const auto mode : {sw::BufferMode::NoBuffer, sw::BufferMode::PacketGranularity}) {
    ChainTestbed bed{chain_config(3, mode)};
    bed.warm_up();
    run_flows(bed, 50);
    (mode == sw::BufferMode::NoBuffer ? none_bytes : buffered_bytes) =
        bed.total_control_bytes();
  }
  // The per-hop reduction compounds: total control bytes shrink by the same
  // large factor as in the single-switch testbed.
  EXPECT_LT(buffered_bytes, none_bytes / 3);
}

TEST(ChainTestbed, FlowGranularityBuffersAtEveryHop) {
  ChainTestbed bed{chain_config(2, sw::BufferMode::FlowGranularity)};
  bed.warm_up();
  run_flows(bed, 20, 5);
  EXPECT_EQ(bed.sink2().packets_received(), 100u);
  for (unsigned i = 0; i < 2; ++i) {
    const auto& counters = bed.switch_at(i).counters();
    // One request per flow per hop (a few re-opens are possible in the
    // release/install window).
    EXPECT_GE(counters.pkt_ins_sent, 20u) << "switch " << i;
    EXPECT_LE(counters.pkt_ins_sent, 25u) << "switch " << i;
    // Every hop buffered more packets than it requested.
    EXPECT_GT(bed.switch_at(i).flow_buffer()->total_stored(), counters.pkt_ins_sent);
  }
}

TEST(ChainTestbed, SingleSwitchChainMatchesTestbedShape) {
  ChainTestbed bed{chain_config(1, sw::BufferMode::PacketGranularity)};
  bed.warm_up();
  run_flows(bed, 100);
  EXPECT_EQ(bed.sink2().packets_received(), 100u);
  EXPECT_EQ(bed.total_pkt_ins(), 100u);
}

TEST(ChainTestbed, ReverseTrafficUsesLearnedPaths) {
  ChainTestbed bed{chain_config(2, sw::BufferMode::PacketGranularity)};
  bed.warm_up();
  // host2 -> host1: one flow; must arrive at sink1 without flooding back.
  net::Packet p = net::make_udp_packet(bed.host2_mac(), bed.host1_mac(), bed.host2_ip(),
                                       bed.host1_ip(), 7000, 7, 500);
  p.flow_id = 42;
  bed.inject_from_host2(p);
  bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(100));
  bed.stop();
  bed.sim().run();
  EXPECT_EQ(bed.sink1().packets_received(), 1u);
  EXPECT_EQ(bed.sink2().packets_received(), 0u);
}

}  // namespace
}  // namespace sdnbuf::core

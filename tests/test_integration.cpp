// Integration tests: the full Fig. 1 testbed end to end.
//
// These check the system-level invariants the figures rest on: packet
// conservation under every mechanism, message-count relations (one
// packet_in per miss vs one per flow), the direction of every headline
// comparison (control load, message sizes, buffer occupancy), determinism,
// and the §VI.B rule-eviction scenario.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "core/testbed.hpp"
#include "host/traffic_gen.hpp"

namespace sdnbuf::core {
namespace {

ExperimentConfig base_config(sw::BufferMode mode, double rate = 50.0) {
  ExperimentConfig c;
  c.mode = mode;
  c.rate_mbps = rate;
  c.n_flows = 200;
  c.packets_per_flow = 1;
  c.seed = 11;
  return c;
}

TEST(Testbed, WarmUpTeachesControllerBothHosts) {
  TestbedConfig config;
  Testbed bed{config};
  bed.warm_up();
  EXPECT_TRUE(bed.controller().lookup_mac(bed.host1_mac()).has_value());
  EXPECT_TRUE(bed.controller().lookup_mac(bed.host2_mac()).has_value());
  EXPECT_EQ(*bed.controller().lookup_mac(bed.host1_mac()), Testbed::kHost1Port);
  EXPECT_EQ(*bed.controller().lookup_mac(bed.host2_mac()), Testbed::kHost2Port);
  // Statistics were reset after warm-up.
  EXPECT_EQ(bed.to_controller_link().tap().bytes(), 0u);
  EXPECT_EQ(bed.sink2().packets_received(), 0u);
}

class MechanismTest : public ::testing::TestWithParam<sw::BufferMode> {};

TEST_P(MechanismTest, EveryPacketDeliveredExactlyOnce) {
  auto config = base_config(GetParam());
  config.packets_per_flow = 4;
  config.order = host::EmissionOrder::CrossSequence;
  const auto r = run_experiment(config);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.packets_delivered, config.n_flows * config.packets_per_flow);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.flows_complete, config.n_flows);
}

TEST_P(MechanismTest, EveryFlowGetsARule) {
  const auto r = run_experiment(base_config(GetParam()));
  EXPECT_EQ(r.flow_mods, 200u);
}

TEST_P(MechanismTest, DeterministicForSameSeed) {
  const auto a = run_experiment(base_config(GetParam()));
  const auto b = run_experiment(base_config(GetParam()));
  EXPECT_EQ(a.to_controller_bytes, b.to_controller_bytes);
  EXPECT_EQ(a.to_switch_bytes, b.to_switch_bytes);
  EXPECT_EQ(a.pkt_ins_sent, b.pkt_ins_sent);
  EXPECT_DOUBLE_EQ(a.setup_ms.mean(), b.setup_ms.mean());
  EXPECT_DOUBLE_EQ(a.switch_cpu_pct, b.switch_cpu_pct);
}

TEST_P(MechanismTest, DifferentSeedsJitter) {
  const auto a = run_experiment(base_config(GetParam()));
  auto config = base_config(GetParam());
  config.seed = 99;
  const auto b = run_experiment(config);
  EXPECT_NE(a.setup_ms.mean(), b.setup_ms.mean());
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, MechanismTest,
                         ::testing::Values(sw::BufferMode::NoBuffer,
                                           sw::BufferMode::PacketGranularity,
                                           sw::BufferMode::FlowGranularity),
                         [](const auto& info) {
                           return std::string(sw::buffer_mode_name(info.param)) == "no-buffer"
                                      ? "NoBuffer"
                                  : info.param == sw::BufferMode::PacketGranularity
                                      ? "PacketGranularity"
                                      : "FlowGranularity";
                         });

TEST(Integration, Singles_OnePacketInPerMissMatchPacket) {
  // Packet-granularity: single-packet flows -> one packet_in per flow.
  const auto r = run_experiment(base_config(sw::BufferMode::PacketGranularity));
  EXPECT_EQ(r.pkt_ins_sent, 200u);
  EXPECT_EQ(r.full_frame_pkt_ins, 0u);  // buffer-256 never exhausts here
}

TEST(Integration, MultiPacketFlows_PacketGranularitySendsManyRequests) {
  auto config = base_config(sw::BufferMode::PacketGranularity, 95.0);
  config.n_flows = 50;
  config.packets_per_flow = 20;
  config.order = host::EmissionOrder::CrossSequence;
  const auto r = run_experiment(config);
  // At 95 Mbps at least one more packet of each flow arrives before the rule
  // lands, and each triggers its own request: strictly more than one per
  // flow, unlike the flow-granularity mechanism.
  EXPECT_GE(r.pkt_ins_sent, 2 * config.n_flows);
  EXPECT_TRUE(r.drained);
}

TEST(Integration, MultiPacketFlows_FlowGranularitySendsOnePerFlow) {
  auto config = base_config(sw::BufferMode::FlowGranularity, 95.0);
  config.n_flows = 50;
  config.packets_per_flow = 20;
  config.order = host::EmissionOrder::CrossSequence;
  const auto r = run_experiment(config);
  // Algorithm 1: one request per flow — up to a handful more when a packet
  // lands in the small window between the whole-flow release and the rule
  // becoming effective (it opens a fresh per-flow buffer, like a new flow).
  EXPECT_GE(r.pkt_ins_sent, 50u);
  EXPECT_LE(r.pkt_ins_sent, 55u);
  EXPECT_EQ(r.resend_pkt_ins, 0u);
  EXPECT_TRUE(r.drained);
  // In-order delivery within each flow is preserved by the whole-flow
  // release; no duplicates are created.
  EXPECT_EQ(r.duplicates, 0u);
}

TEST(Integration, BufferShrinksControlPathLoad) {
  const auto none = run_experiment(base_config(sw::BufferMode::NoBuffer));
  const auto buffered = run_experiment(base_config(sw::BufferMode::PacketGranularity));
  // §IV.A: ~78.7% up-direction reduction with enough buffer.
  EXPECT_LT(buffered.to_controller_mbps, none.to_controller_mbps * 0.35);
  // §IV.A: ~96% down-direction reduction (piggybacked flow_mod only).
  EXPECT_LT(buffered.to_switch_mbps, none.to_switch_mbps * 0.20);
}

TEST(Integration, BufferReducesControllerLoad) {
  const auto none = run_experiment(base_config(sw::BufferMode::NoBuffer));
  const auto buffered = run_experiment(base_config(sw::BufferMode::PacketGranularity));
  EXPECT_LT(buffered.controller_cpu_pct, none.controller_cpu_pct);
}

TEST(Integration, MessageSizesMatchSpec) {
  const auto none = run_experiment(base_config(sw::BufferMode::NoBuffer));
  const auto buffered = run_experiment(base_config(sw::BufferMode::PacketGranularity));
  // Up direction: 200 packet_ins each; no-buffer carries 1000-byte frames,
  // buffered carries 128-byte captures.
  const double none_avg = static_cast<double>(none.to_controller_bytes) / none.to_controller_msgs;
  const double buf_avg =
      static_cast<double>(buffered.to_controller_bytes) / buffered.to_controller_msgs;
  EXPECT_NEAR(none_avg, 1000 + 18 + 66, 5.0);
  EXPECT_NEAR(buf_avg, 128 + 18 + 66, 5.0);
}

TEST(Integration, BufferExhaustionDegradesTowardNoBuffer) {
  auto small = base_config(sw::BufferMode::PacketGranularity, 95.0);
  small.buffer_capacity = 16;
  const auto r16 = run_experiment(small);
  auto large = base_config(sw::BufferMode::PacketGranularity, 95.0);
  const auto r256 = run_experiment(large);
  // buffer-16 exhausts at 95 Mbps: full-frame fallbacks appear and the
  // control load rises above buffer-256's.
  EXPECT_GT(r16.full_frame_pkt_ins, 0u);
  EXPECT_EQ(r256.full_frame_pkt_ins, 0u);
  EXPECT_GT(r16.to_controller_mbps, r256.to_controller_mbps * 1.5);
}

TEST(Integration, FlowGranularityUsesFewerBufferUnits) {
  auto pkt = base_config(sw::BufferMode::PacketGranularity, 95.0);
  pkt.n_flows = 50;
  pkt.packets_per_flow = 20;
  pkt.order = host::EmissionOrder::CrossSequence;
  auto flow = pkt;
  flow.mode = sw::BufferMode::FlowGranularity;
  const auto rp = run_experiment(pkt);
  const auto rf = run_experiment(flow);
  // Fig. 13: whole-flow release keeps occupancy much lower.
  EXPECT_LT(rf.buffer_max_units, rp.buffer_max_units);
  EXPECT_LT(rf.buffer_avg_units, rp.buffer_avg_units);
}

TEST(Integration, FlowGranularityCutsControlTrafficOnBursts) {
  auto pkt = base_config(sw::BufferMode::PacketGranularity, 95.0);
  pkt.n_flows = 50;
  pkt.packets_per_flow = 20;
  pkt.order = host::EmissionOrder::CrossSequence;
  auto flow = pkt;
  flow.mode = sw::BufferMode::FlowGranularity;
  const auto rp = run_experiment(pkt);
  const auto rf = run_experiment(flow);
  EXPECT_LT(rf.to_controller_bytes, rp.to_controller_bytes);
  EXPECT_LT(rf.pkt_ins_sent, rp.pkt_ins_sent);
}

TEST(Integration, NoBufferDelaysBlowUpAtHighRate) {
  const auto low = run_experiment(base_config(sw::BufferMode::NoBuffer, 30.0));
  const auto high = run_experiment(base_config(sw::BufferMode::NoBuffer, 95.0));
  EXPECT_GT(high.setup_ms.mean(), low.setup_ms.mean() * 3.0);
  const auto buffered_high = run_experiment(base_config(sw::BufferMode::PacketGranularity, 95.0));
  EXPECT_LT(buffered_high.setup_ms.mean(), high.setup_ms.mean() * 0.3);
}

TEST(Integration, RuleEvictionCausesNewRequests) {
  // §VI.B: a tiny flow table evicts rules; returning flows miss again.
  ExperimentConfig config = base_config(sw::BufferMode::PacketGranularity);
  config.testbed.switch_config.flow_table_capacity = 8;
  config.n_flows = 100;
  const auto r = run_experiment(config);
  EXPECT_TRUE(r.drained);
  // 100 rules through an 8-entry table: evictions must have happened (the
  // run still completes because each flow has one packet).
  EXPECT_EQ(r.pkt_ins_sent, 100u);
}

TEST(Integration, SweepAggregatesAcrossRates) {
  SweepConfig sweep;
  sweep.rates_mbps = {20.0, 80.0};
  sweep.repetitions = 3;
  sweep.base = base_config(sw::BufferMode::PacketGranularity);
  sweep.base.n_flows = 100;
  const auto result = run_sweep(sweep, "buffer-256");
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].rate_mbps, 20.0);
  EXPECT_EQ(result.points[0].to_controller_mbps.count(), 3u);
  // Load grows with the sending rate.
  EXPECT_GT(result.points[1].to_controller_mbps.mean(),
            result.points[0].to_controller_mbps.mean());
  EXPECT_EQ(result.points[0].undelivered_packets, 0u);
  // overall_mean averages the per-rate means.
  const double mean = result.overall_mean(
      [](const RatePoint& p) { return p.to_controller_mbps.mean(); });
  EXPECT_NEAR(mean,
              (result.points[0].to_controller_mbps.mean() +
               result.points[1].to_controller_mbps.mean()) /
                  2.0,
              1e-9);
}

TEST(Integration, ControllerDelayMeasuredOnlyWithResponses) {
  const auto r = run_experiment(base_config(sw::BufferMode::PacketGranularity));
  EXPECT_EQ(r.controller_ms.count(), 200u);
  EXPECT_EQ(r.switch_ms.count(), 200u);
  // Switch delay is the (positive) remainder of the setup delay.
  EXPECT_GT(r.switch_ms.mean(), 0.0);
  EXPECT_NEAR(r.setup_ms.mean(), r.controller_ms.mean() + r.switch_ms.mean(), 1e-6);
}

// Property sweep: system-level invariants must hold for every mechanism at
// every rate regime (uncongested, mid, saturated).
class InvariantSweepTest
    : public ::testing::TestWithParam<std::tuple<sw::BufferMode, double>> {};

TEST_P(InvariantSweepTest, SystemInvariantsHold) {
  const auto [mode, rate] = GetParam();
  auto config = base_config(mode, rate);
  config.n_flows = 150;
  config.packets_per_flow = 3;
  config.order = host::EmissionOrder::CrossSequence;
  const auto r = run_experiment(config);

  // Conservation: every packet delivered exactly once.
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.packets_delivered, r.packets_sent);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.flows_complete, config.n_flows);

  // Delay sanity: positive, and setup = controller + switch parts.
  EXPECT_GT(r.setup_ms.min(), 0.0);
  EXPECT_GT(r.controller_ms.min(), 0.0);
  EXPECT_GT(r.forwarding_ms.min(), 0.0);
  EXPECT_GE(r.forwarding_ms.mean(), r.setup_ms.mean());
  EXPECT_NEAR(r.setup_ms.mean(), r.controller_ms.mean() + r.switch_ms.mean(), 1e-6);

  // Resource readings stay within physical bounds.
  EXPECT_GE(r.switch_cpu_pct, 0.0);
  EXPECT_LE(r.switch_cpu_pct, 400.0 + 1e-6);   // 4 cores
  EXPECT_LE(r.controller_cpu_pct, 200.0 + 1e-6);  // 2 cores
  EXPECT_LE(r.bus_utilization_pct, 100.0 + 1e-6);
  EXPECT_LE(r.buffer_max_units, static_cast<double>(config.buffer_capacity));

  // Control accounting: at least one request per flow, one rule per flow,
  // and nonzero load in both directions.
  EXPECT_GE(r.pkt_ins_sent, config.n_flows);
  EXPECT_GE(r.flow_mods, config.n_flows);
  EXPECT_GT(r.to_controller_mbps, 0.0);
  EXPECT_GT(r.to_switch_mbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsAndRates, InvariantSweepTest,
    ::testing::Combine(::testing::Values(sw::BufferMode::NoBuffer,
                                         sw::BufferMode::PacketGranularity,
                                         sw::BufferMode::FlowGranularity),
                       ::testing::Values(15.0, 55.0, 95.0)),
    [](const auto& info) {
      const sw::BufferMode mode = std::get<0>(info.param);
      const double rate = std::get<1>(info.param);
      std::string name = mode == sw::BufferMode::NoBuffer            ? "NoBuffer"
                         : mode == sw::BufferMode::PacketGranularity ? "PacketGranularity"
                                                                     : "FlowGranularity";
      return name + "_" + std::to_string(static_cast<int>(rate)) + "Mbps";
    });

TEST(Integration, FlowGranularityRecoversFromDroppedRequests) {
  // Algorithm 1's timeout re-request in action: even when the controller
  // drops 20% of packet_ins, every packet is eventually delivered.
  auto config = base_config(sw::BufferMode::FlowGranularity);
  config.n_flows = 50;
  config.packets_per_flow = 4;
  config.order = host::EmissionOrder::CrossSequence;
  config.testbed.controller_config.drop_pkt_in_probability = 0.2;
  const auto r = run_experiment(config);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.resend_pkt_ins, 0u);
  EXPECT_GT(r.pkt_ins_dropped, 0u);
}

TEST(Integration, OtherMechanismsLosePacketsOnDroppedRequests) {
  // Without the re-request, a dropped packet_in strands the packet: the
  // no-buffer variant loses it outright, the packet-granularity buffer
  // expires it.
  for (const auto mode : {sw::BufferMode::NoBuffer, sw::BufferMode::PacketGranularity}) {
    auto config = base_config(mode);
    config.n_flows = 100;
    config.testbed.controller_config.drop_pkt_in_probability = 0.5;
    const auto r = run_experiment(config);
    EXPECT_FALSE(r.drained) << sw::buffer_mode_name(mode);
    EXPECT_LT(r.packets_delivered, r.packets_sent) << sw::buffer_mode_name(mode);
  }
}

TEST(Integration, StatsPollingCoexistsWithForwarding) {
  auto config = base_config(sw::BufferMode::PacketGranularity);
  config.testbed.controller_config.stats_poll_interval = sim::SimTime::milliseconds(20);
  const auto r = run_experiment(config);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.stats_requests, 0u);
  EXPECT_EQ(r.duplicates, 0u);
}

TEST(Integration, DefaultRatesMatchPaperAxis) {
  const auto rates = default_rates();
  ASSERT_EQ(rates.size(), 20u);
  EXPECT_EQ(rates.front(), 5.0);
  EXPECT_EQ(rates.back(), 100.0);
}

}  // namespace
}  // namespace sdnbuf::core

// Tests for the OpenFlow statistics subsystem: wire codec round trips,
// switch-side collection (flow / aggregate / port), controller polling and
// the interaction with the reactive forwarding path.
#include <gtest/gtest.h>

#include <memory>

#include "controller/controller.hpp"
#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "switchd/switch.hpp"

namespace sdnbuf {
namespace {

net::Packet flow_packet(std::uint32_t flow) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, 1000);
  p.flow_id = flow;
  return p;
}

// --- codec ---

TEST(StatsCodec, FlowStatsRequestRoundTrip) {
  of::FlowStatsRequest m;
  m.xid = 9;
  m.match = of::Match::exact_from(flow_packet(1), 2);
  m.out_port = 3;
  const auto wire = of::encode_message(m);
  EXPECT_EQ(wire.size(), of::kStatsHeaderSize + of::kFlowStatsRequestBodySize);
  const auto decoded = of::decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<of::FlowStatsRequest>(*decoded), m);
}

TEST(StatsCodec, FlowStatsReplyRoundTrip) {
  of::FlowStatsReply m;
  m.xid = 10;
  for (std::uint32_t f = 0; f < 3; ++f) {
    of::FlowStatsEntry e;
    e.match = of::Match::exact_from(flow_packet(f), 1);
    e.duration_sec = 12 + f;
    e.duration_nsec = 345;
    e.priority = 100;
    e.idle_timeout_s = 5;
    e.hard_timeout_s = 0;
    e.cookie = 0xc0ffee + f;
    e.packet_count = 7 * (f + 1);
    e.byte_count = 7000 * (f + 1);
    m.flows.push_back(std::move(e));
  }
  const auto wire = of::encode_message(m);
  EXPECT_EQ(wire.size(), of::kStatsHeaderSize + 3 * of::kFlowStatsEntrySize);
  const auto decoded = of::decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<of::FlowStatsReply>(*decoded), m);
}

TEST(StatsCodec, EmptyFlowStatsReply) {
  of::FlowStatsReply m;
  m.xid = 1;
  const auto decoded = of::decode_message(of::encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<of::FlowStatsReply>(*decoded).flows.empty());
}

TEST(StatsCodec, AggregateRoundTrip) {
  of::AggregateStatsRequest req;
  req.xid = 2;
  req.match = of::Match::wildcard_all();
  const auto dreq = of::decode_message(of::encode_message(req));
  ASSERT_TRUE(dreq.has_value());
  EXPECT_EQ(std::get<of::AggregateStatsRequest>(*dreq), req);

  of::AggregateStatsReply reply;
  reply.xid = 3;
  reply.packet_count = 123456;
  reply.byte_count = 99999999;
  reply.flow_count = 321;
  const auto dreply = of::decode_message(of::encode_message(reply));
  ASSERT_TRUE(dreply.has_value());
  EXPECT_EQ(std::get<of::AggregateStatsReply>(*dreply), reply);
}

TEST(StatsCodec, PortStatsRoundTrip) {
  of::PortStatsRequest req;
  req.xid = 4;
  req.port_no = of::kPortNone;
  const auto dreq = of::decode_message(of::encode_message(req));
  ASSERT_TRUE(dreq.has_value());
  EXPECT_EQ(std::get<of::PortStatsRequest>(*dreq), req);

  of::PortStatsReply reply;
  reply.xid = 5;
  reply.ports.push_back(of::PortStatsEntry{1, 10, 20, 10000, 20000, 1, 2});
  reply.ports.push_back(of::PortStatsEntry{2, 30, 40, 30000, 40000, 0, 0});
  const auto wire = of::encode_message(reply);
  EXPECT_EQ(wire.size(), of::kStatsHeaderSize + 2 * of::kPortStatsEntrySize);
  const auto dreply = of::decode_message(wire);
  ASSERT_TRUE(dreply.has_value());
  EXPECT_EQ(std::get<of::PortStatsReply>(*dreply), reply);
}

TEST(StatsCodec, RejectsMalformed) {
  auto wire = of::encode_message(of::PortStatsRequest{1, 2});
  wire.resize(wire.size() - 1);  // truncated body
  EXPECT_FALSE(of::decode_message(wire).has_value());
  wire = of::encode_message(of::AggregateStatsReply{});
  wire[8] = 99;  // unknown stats type
  wire[9] = 99;
  EXPECT_FALSE(of::decode_message(wire).has_value());
}

// --- switch-side collection ---

struct StatsSwitchTest : ::testing::Test {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link h1{sim, "h1", 100e6, sim::SimTime::microseconds(20)};
  net::Link h2{sim, "h2", 100e6, sim::SimTime::microseconds(20)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  std::vector<of::OfMessage> replies;
  std::unique_ptr<sw::Switch> ovs;

  void make() {
    sw::SwitchConfig config;
    config.buffer_mode = sw::BufferMode::PacketGranularity;
    ovs = std::make_unique<sw::Switch>(sim, config, 7);
    ovs->attach_port(1, h1, nullptr);
    ovs->attach_port(2, h2, nullptr);
    ovs->connect(channel);
    channel.set_controller_handler(
        [this](const of::OfMessage& m, std::size_t) { replies.push_back(m); });
  }

  void install_rule(std::uint32_t flow, std::uint16_t out_port) {
    of::FlowMod fm;
    fm.match = of::Match::exact_from(flow_packet(flow), 1);
    fm.priority = 100;
    fm.cookie = flow;
    fm.actions = of::output_to(out_port);
    channel.send_from_controller(fm);
  }
};

TEST_F(StatsSwitchTest, FlowStatsReportInstalledRules) {
  make();
  install_rule(0, 2);
  install_rule(1, 2);
  sim.run();
  // Exercise rule 0 with two packets.
  ovs->receive(1, flow_packet(0));
  ovs->receive(1, flow_packet(0));
  sim.run();
  channel.send_from_controller(of::FlowStatsRequest{7, of::Match::wildcard_all(), of::kPortNone});
  sim.run();
  ASSERT_FALSE(replies.empty());
  const auto& reply = std::get<of::FlowStatsReply>(replies.back());
  EXPECT_EQ(reply.xid, 7u);
  ASSERT_EQ(reply.flows.size(), 2u);
  std::uint64_t total_packets = 0;
  for (const auto& f : reply.flows) total_packets += f.packet_count;
  EXPECT_EQ(total_packets, 2u);
  EXPECT_EQ(ovs->counters().stats_requests_handled, 1u);
}

TEST_F(StatsSwitchTest, FlowStatsFilterBySubsumption) {
  make();
  install_rule(0, 2);
  install_rule(1, 2);
  sim.run();
  // Exact match for flow 0 only.
  channel.send_from_controller(
      of::FlowStatsRequest{8, of::Match::exact_from(flow_packet(0), 1), of::kPortNone});
  sim.run();
  const auto& reply = std::get<of::FlowStatsReply>(replies.back());
  ASSERT_EQ(reply.flows.size(), 1u);
  EXPECT_EQ(reply.flows[0].cookie, 0u);
}

TEST_F(StatsSwitchTest, AggregateStatsSumCounters) {
  make();
  install_rule(0, 2);
  install_rule(1, 2);
  sim.run();
  ovs->receive(1, flow_packet(0));
  ovs->receive(1, flow_packet(1));
  ovs->receive(1, flow_packet(1));
  sim.run();
  channel.send_from_controller(
      of::AggregateStatsRequest{9, of::Match::wildcard_all(), of::kPortNone});
  sim.run();
  const auto& reply = std::get<of::AggregateStatsReply>(replies.back());
  EXPECT_EQ(reply.flow_count, 2u);
  EXPECT_EQ(reply.packet_count, 3u);
  EXPECT_EQ(reply.byte_count, 3000u);
}

TEST_F(StatsSwitchTest, PortStatsCountRxAndTx) {
  make();
  install_rule(0, 2);
  sim.run();
  ovs->receive(1, flow_packet(0));
  ovs->receive(1, flow_packet(0));
  sim.run();
  channel.send_from_controller(of::PortStatsRequest{10, of::kPortNone});
  sim.run();
  const auto& reply = std::get<of::PortStatsReply>(replies.back());
  ASSERT_EQ(reply.ports.size(), 2u);
  const auto& p1 = reply.ports[0].port_no == 1 ? reply.ports[0] : reply.ports[1];
  const auto& p2 = reply.ports[0].port_no == 2 ? reply.ports[0] : reply.ports[1];
  EXPECT_EQ(p1.rx_packets, 2u);
  EXPECT_EQ(p1.rx_bytes, 2000u);
  EXPECT_EQ(p2.tx_packets, 2u);
  EXPECT_EQ(p2.tx_bytes, 2000u);
}

TEST_F(StatsSwitchTest, PortStatsSinglePortFilter) {
  make();
  sim.run();
  channel.send_from_controller(of::PortStatsRequest{11, 2});
  sim.run();
  const auto& reply = std::get<of::PortStatsReply>(replies.back());
  ASSERT_EQ(reply.ports.size(), 1u);
  EXPECT_EQ(reply.ports[0].port_no, 2);
}

// --- controller polling ---

TEST(StatsController, PeriodicPollingSendsRequests) {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  ctrl::ControllerConfig config;
  config.stats_poll_interval = sim::SimTime::milliseconds(100);
  ctrl::Controller controller{sim, config, 42};
  controller.connect(channel);
  int aggregate_requests = 0;
  int port_requests = 0;
  channel.set_switch_handler([&](const of::OfMessage& m, std::size_t) {
    if (std::holds_alternative<of::AggregateStatsRequest>(m)) ++aggregate_requests;
    if (std::holds_alternative<of::PortStatsRequest>(m)) ++port_requests;
  });
  controller.start();
  sim.run_until(sim::SimTime::milliseconds(550));
  controller.stop();
  sim.run();
  EXPECT_EQ(aggregate_requests, 5);  // t = 100..500 ms
  EXPECT_EQ(port_requests, 5);
  EXPECT_EQ(controller.counters().stats_requests_sent, 10u);
}

TEST(StatsController, PollingDisabledByDefault) {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  ctrl::Controller controller{sim, ctrl::ControllerConfig{}, 42};
  controller.connect(channel);
  controller.start();  // interval zero: no-op
  EXPECT_TRUE(sim.empty());
}

TEST(StatsController, RepliesStoredAndCounted) {
  // Unsolicited replies (no outstanding request xid) are stored but count as
  // unmatched — stats_replies_seen only moves for replies that answer a
  // request the controller actually sent.
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  ctrl::Controller controller{sim, ctrl::ControllerConfig{}, 42};
  controller.connect(channel);
  of::AggregateStatsReply agg;
  agg.flow_count = 42;
  channel.send_from_switch(agg);
  of::PortStatsReply ports;
  ports.ports.push_back(of::PortStatsEntry{1, 1, 2, 3, 4, 0, 0});
  channel.send_from_switch(ports);
  sim.run();
  EXPECT_EQ(controller.counters().stats_replies_seen, 0u);
  EXPECT_EQ(controller.counters().stats_replies_unmatched, 2u);
  ASSERT_TRUE(controller.last_aggregate_stats().has_value());
  EXPECT_EQ(controller.last_aggregate_stats()->flow_count, 42u);
  ASSERT_TRUE(controller.last_port_stats().has_value());
  EXPECT_EQ(controller.last_port_stats()->ports.size(), 1u);
}

TEST(StatsController, MatchedReplyThenChannelDuplicate) {
  // A reply echoing an outstanding request xid is seen exactly once; a
  // channel-duplicated copy of the same reply counts as unmatched instead of
  // inflating stats_replies_seen.
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  ctrl::Controller controller{sim, ctrl::ControllerConfig{}, 42};
  controller.connect(channel);
  std::uint32_t request_xid = 0;
  channel.set_switch_handler([&](const of::OfMessage& m, std::size_t) {
    if (const auto* req = std::get_if<of::PortStatsRequest>(&m)) request_xid = req->xid;
  });
  controller.request_port_stats();
  sim.run();
  ASSERT_NE(request_xid, 0u);

  of::PortStatsReply reply;
  reply.xid = request_xid;
  reply.ports.push_back(of::PortStatsEntry{1, 1, 2, 3, 4, 0, 0});
  channel.send_from_switch(reply);
  sim.run();
  EXPECT_EQ(controller.counters().stats_replies_seen, 1u);
  EXPECT_EQ(controller.counters().stats_replies_unmatched, 0u);

  channel.send_from_switch(reply);  // duplicated on the wire
  sim.run();
  EXPECT_EQ(controller.counters().stats_replies_seen, 1u);
  EXPECT_EQ(controller.counters().stats_replies_unmatched, 1u);
  ASSERT_TRUE(controller.last_port_stats().has_value());
}

TEST(StatsController, LostRepliesExpireInsteadOfWedging) {
  // Replies never arrive (the switch side swallows every request). Each poll
  // cycle writes off the previous cycle's outstanding xids, and stop()
  // flushes the rest — the request/reply accounting cannot wedge and the
  // outstanding set cannot leak.
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  ctrl::ControllerConfig config;
  config.stats_poll_interval = sim::SimTime::milliseconds(100);
  ctrl::Controller controller{sim, config, 42};
  controller.connect(channel);
  channel.set_switch_handler([](const of::OfMessage&, std::size_t) {});
  controller.start();
  sim.run_until(sim::SimTime::milliseconds(550));
  EXPECT_EQ(controller.counters().stats_requests_sent, 10u);  // 5 cycles x 2
  EXPECT_EQ(controller.counters().stats_replies_seen, 0u);
  // Cycles 2..5 each expired the previous cycle's two unanswered requests.
  EXPECT_EQ(controller.counters().stats_requests_expired, 8u);
  controller.stop();
  EXPECT_EQ(controller.counters().stats_requests_expired, 10u);
  sim.run();
}

// --- fault injection (exercises Algorithm 1's resend end to end) ---

TEST(FaultInjection, DroppedPacketInsAreCounted) {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  ctrl::ControllerConfig config;
  config.drop_pkt_in_probability = 1.0;  // drop everything
  ctrl::Controller controller{sim, config, 42};
  controller.connect(channel);
  int responses = 0;
  channel.set_switch_handler([&](const of::OfMessage&, std::size_t) { ++responses; });
  of::PacketIn pi;
  pi.data = flow_packet(0).serialize(128);
  channel.send_from_switch(pi);
  sim.run();
  EXPECT_EQ(controller.counters().pkt_ins_dropped, 1u);
  EXPECT_EQ(controller.counters().pkt_ins_handled, 0u);
  EXPECT_EQ(responses, 0);
}

}  // namespace
}  // namespace sdnbuf

// Unit tests for the two buffer managers: capacity accounting, buffer_id
// semantics, deferred reclamation, expiry, and the flow-granularity
// invariants of Algorithms 1-2 (shared id, first-of-flow detection,
// whole-flow release).
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "openflow/constants.hpp"
#include "sim/simulator.hpp"
#include "switchd/flow_buffer.hpp"
#include "switchd/packet_buffer.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace sdnbuf::sw {
namespace {

constexpr auto kReclaim = sim::SimTime::milliseconds(4);

net::Packet packet_for(std::uint32_t flow, std::uint32_t seq = 0) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, 1000);
  p.flow_id = flow;
  p.seq_in_flow = seq;
  return p;
}

struct PacketBufferTest : ::testing::Test {
  sim::Simulator sim;
  PacketBufferManager buf{sim, 4, kReclaim};
};

TEST_F(PacketBufferTest, StoreAssignsDistinctIds) {
  const auto a = buf.store(packet_for(0));
  const auto b = buf.store(packet_for(1));
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_NE(*a, of::kNoBuffer);
  EXPECT_EQ(buf.units_in_use(), 2u);
  EXPECT_EQ(buf.packets_stored(), 2u);
}

TEST_F(PacketBufferTest, ReleaseReturnsTheStoredPacket) {
  const auto id = buf.store(packet_for(7, 3));
  ASSERT_TRUE(id);
  const auto released = buf.release(*id);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->flow_id, 7u);
  EXPECT_EQ(released->seq_in_flow, 3u);
  // Double release fails.
  EXPECT_FALSE(buf.release(*id).has_value());
  EXPECT_EQ(buf.total_released(), 1u);
}

TEST_F(PacketBufferTest, UnknownIdReleaseFails) {
  EXPECT_FALSE(buf.release(12345).has_value());
}

TEST_F(PacketBufferTest, CapacityExhaustionRejects) {
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(buf.store(packet_for(i)).has_value());
  EXPECT_FALSE(buf.store(packet_for(4)).has_value());
  EXPECT_EQ(buf.rejected_full(), 1u);
}

TEST_F(PacketBufferTest, ReclaimDelayHoldsUnits) {
  const auto id = buf.store(packet_for(0));
  buf.release(*id);
  // Unit still charged until the reclaim delay elapses.
  EXPECT_EQ(buf.units_in_use(), 1u);
  EXPECT_EQ(buf.packets_stored(), 0u);
  sim.run();
  EXPECT_EQ(buf.units_in_use(), 0u);
}

TEST_F(PacketBufferTest, UnitsReusableAfterReclaim) {
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(*buf.store(packet_for(i)));
  // Release one; before reclaim the buffer is still full.
  ASSERT_TRUE(buf.release(ids[0]).has_value());
  EXPECT_FALSE(buf.store(packet_for(9)).has_value());
  sim.run();  // reclaim fires
  EXPECT_TRUE(buf.store(packet_for(9)).has_value());
}

TEST_F(PacketBufferTest, PeekDoesNotRemove) {
  const auto id = buf.store(packet_for(3));
  ASSERT_NE(buf.peek(*id), nullptr);
  EXPECT_EQ(buf.peek(*id)->flow_id, 3u);
  EXPECT_EQ(buf.packets_stored(), 1u);
  EXPECT_EQ(buf.peek(999), nullptr);
}

TEST_F(PacketBufferTest, ExpireDropsOldPackets) {
  buf.store(packet_for(0));
  sim.run_until(sim::SimTime::milliseconds(100));
  buf.store(packet_for(1));
  // Cutoff at t=50ms: only the first packet is stale.
  EXPECT_EQ(buf.expire_older_than(sim::SimTime::milliseconds(50)), 1u);
  EXPECT_EQ(buf.packets_stored(), 1u);
  EXPECT_EQ(buf.total_expired(), 1u);
}

TEST_F(PacketBufferTest, OccupancyTracksMax) {
  buf.store(packet_for(0));
  buf.store(packet_for(1));
  buf.store(packet_for(2));
  EXPECT_EQ(buf.occupancy().max(), 3u);
  EXPECT_EQ(buf.occupancy().current(), 3u);
}

struct FlowBufferTest : ::testing::Test {
  sim::Simulator sim;
  FlowBufferManager buf{sim, 16, kReclaim};
};

TEST_F(FlowBufferTest, FirstPacketOfFlowSignalsRequest) {
  const auto r = buf.store(packet_for(0, 0));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->first_of_flow);
  EXPECT_EQ(r->queued, 1u);
}

TEST_F(FlowBufferTest, SubsequentPacketsShareTheBufferId) {
  const auto first = buf.store(packet_for(0, 0));
  const auto second = buf.store(packet_for(0, 1));
  const auto third = buf.store(packet_for(0, 2));
  ASSERT_TRUE(first && second && third);
  EXPECT_FALSE(second->first_of_flow);
  EXPECT_FALSE(third->first_of_flow);
  EXPECT_EQ(first->buffer_id, second->buffer_id);
  EXPECT_EQ(first->buffer_id, third->buffer_id);
  EXPECT_EQ(third->queued, 3u);
  EXPECT_EQ(buf.flows_buffered(), 1u);
  EXPECT_EQ(buf.packets_buffered(), 3u);
  // One buffer unit: the three packets share a single buffer_id slot.
  EXPECT_EQ(buf.units_in_use(), 1u);
}

TEST_F(FlowBufferTest, DistinctFlowsGetDistinctIds) {
  const auto a = buf.store(packet_for(0));
  const auto b = buf.store(packet_for(1));
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(b->first_of_flow);
  EXPECT_NE(a->buffer_id, b->buffer_id);
  EXPECT_EQ(buf.flows_buffered(), 2u);
}

TEST_F(FlowBufferTest, BufferIdDerivedFromFiveTuple) {
  const auto r = buf.store(packet_for(5));
  ASSERT_TRUE(r.has_value());
  const auto key = packet_for(5).flow_key();
  EXPECT_EQ(r->buffer_id, static_cast<std::uint32_t>(key.hash()) & 0x7fffffff);
  EXPECT_EQ(buf.buffer_id_of(key), r->buffer_id);
}

TEST_F(FlowBufferTest, ReleaseAllReturnsInArrivalOrder) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  buf.store(packet_for(0, 2));
  const auto packets = buf.release_all(r->buffer_id);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].seq_in_flow, 0u);
  EXPECT_EQ(packets[1].seq_in_flow, 1u);
  EXPECT_EQ(packets[2].seq_in_flow, 2u);
  EXPECT_EQ(buf.flows_buffered(), 0u);
  // Releasing again yields nothing.
  EXPECT_TRUE(buf.release_all(r->buffer_id).empty());
}

TEST_F(FlowBufferTest, NewFlowAfterReleaseIsFirstAgain) {
  const auto r1 = buf.store(packet_for(0, 0));
  buf.release_all(r1->buffer_id);
  const auto r2 = buf.store(packet_for(0, 1));
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->first_of_flow);  // map entry was erased by the release
}

TEST_F(FlowBufferTest, UnitsReclaimAfterDelay) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  buf.release_all(r->buffer_id);
  EXPECT_EQ(buf.units_in_use(), 1u);  // the flow's slot pends reclamation
  EXPECT_EQ(buf.packets_buffered(), 0u);
  sim.run();
  EXPECT_EQ(buf.units_in_use(), 0u);
}

TEST_F(FlowBufferTest, CapacityCountsBufferIdSlots) {
  // Capacity 16 buffer_id slots: 16 distinct flows fill it; more packets of
  // buffered flows still fit (they share existing slots), a 17th flow fails.
  for (std::uint32_t f = 0; f < 16; ++f) EXPECT_TRUE(buf.store(packet_for(f)).has_value());
  EXPECT_TRUE(buf.store(packet_for(0, 1)).has_value());  // shares flow 0's slot
  EXPECT_FALSE(buf.store(packet_for(99)).has_value());   // needs a fresh slot
  EXPECT_EQ(buf.rejected_full(), 1u);
}

TEST_F(FlowBufferTest, RequestTimestampBookkeeping) {
  const auto r = buf.store(packet_for(0));
  EXPECT_FALSE(buf.last_request_at(r->buffer_id).has_value());
  buf.mark_request_sent(r->buffer_id, sim::SimTime::milliseconds(3));
  ASSERT_TRUE(buf.last_request_at(r->buffer_id).has_value());
  EXPECT_EQ(*buf.last_request_at(r->buffer_id), sim::SimTime::milliseconds(3));
  // Unknown id is inert.
  EXPECT_FALSE(buf.last_request_at(0xdead).has_value());
  buf.mark_request_sent(0xdead, sim::SimTime::zero());
}

TEST_F(FlowBufferTest, FrontPacketForResend) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  const auto* front = buf.front_packet(r->buffer_id);
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front->seq_in_flow, 0u);
  EXPECT_EQ(buf.front_packet(0xdead), nullptr);
}

TEST_F(FlowBufferTest, ExpireDropsWholeFlows) {
  buf.store(packet_for(0, 0));
  sim.run_until(sim::SimTime::milliseconds(100));
  buf.store(packet_for(0, 1));  // same flow, newer packet
  buf.store(packet_for(1, 0));  // fresh flow
  // Flow 0's FIRST packet is stale -> the whole flow (2 packets) is dropped.
  EXPECT_EQ(buf.expire_older_than(sim::SimTime::milliseconds(50)), 2u);
  EXPECT_EQ(buf.flows_buffered(), 1u);
  EXPECT_EQ(buf.total_expired(), 2u);
  EXPECT_FALSE(buf.buffer_id_of(packet_for(0).flow_key()).has_value());
}

TEST_F(FlowBufferTest, IdCollisionProbing) {
  // Force a collision: store flow A, then manufacture a key whose derived id
  // collides by storing many flows — verify all ids are unique.
  std::set<std::uint32_t> ids;
  for (std::uint32_t f = 0; f < 16; ++f) {
    const auto r = buf.store(packet_for(f));
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(ids.insert(r->buffer_id).second) << "duplicate buffer_id";
  }
}

// Two distinct 5-tuples whose 31-bit truncated hashes collide must get
// distinct (linearly probed) buffer_ids and release independently. The
// colliding pair is found by a deterministic birthday search over src_ip.
TEST_F(FlowBufferTest, FiveTupleHashCollisionProbesToDistinctIds) {
  const net::FlowKey tmpl = packet_for(0).flow_key();
  // FNV over near-sequential ips is collision-free in the low 31 bits (the
  // multiply only carries entropy upward), so scramble the index into a
  // (src_ip, src_port) pair first. splitmix64 keeps the search deterministic.
  auto scramble = [](std::uint32_t i) {
    std::uint64_t z = i + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  auto key_at = [&](std::uint32_t i) {
    const std::uint64_t z = scramble(i);
    net::FlowKey k = tmpl;
    k.src_ip = net::Ipv4Address{static_cast<std::uint32_t>(z)};
    k.src_port = static_cast<std::uint16_t>(z >> 32);
    return k;
  };
  // Birthday search: ~400k keys in a 2^31 id space yields dozens of expected
  // collisions; the result is fixed by the FNV hash, so this is deterministic.
  std::unordered_map<std::uint32_t, std::uint32_t> seen;
  std::uint32_t a = 0, b = 0;
  bool found = false;
  for (std::uint32_t i = 0; i < 400'000 && !found; ++i) {
    const auto id = static_cast<std::uint32_t>(key_at(i).hash()) & 0x7fffffff;
    const auto [it, inserted] = seen.emplace(id, i);
    if (!inserted) {
      a = it->second;
      b = i;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no 31-bit hash collision in the search range";
  ASSERT_NE(key_at(a), key_at(b));
  ASSERT_EQ(static_cast<std::uint32_t>(key_at(a).hash()) & 0x7fffffff,
            static_cast<std::uint32_t>(key_at(b).hash()) & 0x7fffffff);

  auto packet_at = [&](std::uint32_t i, std::uint32_t seq) {
    const net::FlowKey k = key_at(i);
    auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                  k.src_ip, k.dst_ip, k.src_port, k.dst_port, 1000);
    p.flow_id = i;
    p.seq_in_flow = seq;
    return p;
  };
  const auto ra = buf.store(packet_at(a, 0));
  const auto rb = buf.store(packet_at(b, 0));
  ASSERT_TRUE(ra && rb);
  EXPECT_EQ(ra->buffer_id, static_cast<std::uint32_t>(key_at(a).hash()) & 0x7fffffff);
  EXPECT_EQ(rb->buffer_id, (ra->buffer_id + 1) & 0x7fffffff) << "expected linear probe";
  EXPECT_EQ(buf.buffer_id_of(key_at(a)), ra->buffer_id);
  EXPECT_EQ(buf.buffer_id_of(key_at(b)), rb->buffer_id);

  // The probed id must stay stable for subsequent packets of that flow.
  const auto rb2 = buf.store(packet_at(b, 1));
  ASSERT_TRUE(rb2.has_value());
  EXPECT_FALSE(rb2->first_of_flow);
  EXPECT_EQ(rb2->buffer_id, rb->buffer_id);

  // Releasing one colliding flow must not disturb the other.
  const auto released_a = buf.release_all(ra->buffer_id);
  ASSERT_EQ(released_a.size(), 1u);
  EXPECT_EQ(released_a[0].flow_id, a);
  EXPECT_EQ(buf.packets_buffered(), 2u);
  ASSERT_TRUE(buf.buffer_id_of(key_at(b)).has_value());
  EXPECT_EQ(*buf.buffer_id_of(key_at(b)), rb->buffer_id);
  EXPECT_TRUE(buf.release_all(ra->buffer_id).empty());  // id is gone, not B's
  const auto released_b = buf.release_all(rb->buffer_id);
  ASSERT_EQ(released_b.size(), 2u);
  EXPECT_EQ(released_b[0].flow_id, b);
}

// The re-request race: the switch's resend timeout fires, the controller
// answers both the original and the resent packet_in. The second packet_out
// with the same buffer_id must release nothing and change no counters.
TEST_F(FlowBufferTest, DuplicateReleaseAfterResendIsInert) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  buf.mark_request_sent(r->buffer_id, sim::SimTime::milliseconds(1));
  buf.mark_request_sent(r->buffer_id, sim::SimTime::milliseconds(9));  // the resend

  const auto first = buf.release_all(r->buffer_id);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(buf.total_released(), 2u);
  // The duplicate response must be a no-op on packets, counters and requests.
  EXPECT_TRUE(buf.release_all(r->buffer_id).empty());
  EXPECT_EQ(buf.total_released(), 2u);
  EXPECT_EQ(buf.packets_buffered(), 0u);
  EXPECT_FALSE(buf.last_request_at(r->buffer_id).has_value());
  EXPECT_EQ(buf.front_packet(r->buffer_id), nullptr);
}

TEST_F(FlowBufferTest, ReleaseAfterExpiryIsInert) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  sim.run_until(sim::SimTime::milliseconds(100));
  EXPECT_EQ(buf.expire_older_than(sim::SimTime::milliseconds(50)), 2u);
  // A packet_out racing against expiry finds the id gone.
  EXPECT_TRUE(buf.release_all(r->buffer_id).empty());
  EXPECT_EQ(buf.total_expired(), 2u);
  EXPECT_EQ(buf.total_released(), 0u);
  sim.run();
  EXPECT_EQ(buf.units_in_use(), 0u);
}

TEST_F(PacketBufferTest, ReleaseAfterExpiryIsInert) {
  const auto id = buf.store(packet_for(0));
  sim.run_until(sim::SimTime::milliseconds(100));
  EXPECT_EQ(buf.expire_older_than(sim::SimTime::milliseconds(50)), 1u);
  EXPECT_FALSE(buf.release(*id).has_value());
  EXPECT_EQ(buf.total_expired(), 1u);
  EXPECT_EQ(buf.total_released(), 0u);
  sim.run();
  EXPECT_EQ(buf.units_in_use(), 0u);
}

// Both managers drive their invariant-observer hooks through a full
// store/release/expire lifecycle without tripping the registry.
TEST(BufferObserverIntegration, ManagersReportCleanLifecycle) {
  sim::Simulator sim;
  verify::InvariantRegistry reg;
  PacketBufferManager pbuf{sim, 4, kReclaim};
  FlowBufferManager fbuf{sim, 4, kReclaim};
  pbuf.set_observer(&reg);
  fbuf.set_observer(&reg);

  // Conservation needs the full path: inject, buffer, release, deliver (or
  // expire — an expired packet is accounted without a delivery).
  reg.on_packet_injected(packet_for(1, 0), sim.now());
  const auto pid = pbuf.store(packet_for(1, 0));
  ASSERT_TRUE(pid.has_value());
  const auto released = pbuf.release(*pid);
  ASSERT_TRUE(released.has_value());
  reg.on_packet_delivered(*released, sim.now());
  EXPECT_FALSE(pbuf.release(*pid).has_value());  // rejected, so no observer event

  reg.on_packet_injected(packet_for(2, 0), sim.now());
  reg.on_packet_injected(packet_for(2, 1), sim.now());
  const auto fr = fbuf.store(packet_for(2, 0));
  fbuf.store(packet_for(2, 1));
  ASSERT_TRUE(fr.has_value());
  const auto flow_released = fbuf.release_all(fr->buffer_id);
  EXPECT_EQ(flow_released.size(), 2u);
  for (const auto& p : flow_released) reg.on_packet_delivered(p, sim.now());
  EXPECT_TRUE(fbuf.release_all(fr->buffer_id).empty());

  reg.on_packet_injected(packet_for(3, 0), sim.now());
  fbuf.store(packet_for(3, 0));
  sim.run_until(sim::SimTime::milliseconds(100));
  EXPECT_EQ(fbuf.expire_older_than(sim::SimTime::milliseconds(50)), 1u);

  sim.run();
  reg.finalize(/*expect_all_delivered=*/false);
  EXPECT_GT(reg.events_observed(), 0u);
  EXPECT_TRUE(reg.ok()) << reg.report();
}

// Parameterized conservation property: stored == released + expired +
// still-buffered, for both managers across seeds.
class BufferConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferConservationTest, PacketGranularityConserves) {
  sim::Simulator sim;
  PacketBufferManager buf{sim, 32, kReclaim};
  util::Rng rng{GetParam()};
  std::vector<std::uint32_t> live;
  std::uint64_t stored = 0;
  for (int step = 0; step < 500; ++step) {
    if (rng.next_below(2) == 0u) {
      const auto id = buf.store(packet_for(static_cast<std::uint32_t>(rng.next_below(50)),
                                           static_cast<std::uint32_t>(step)));
      if (id) {
        live.push_back(*id);
        ++stored;
      }
    } else if (!live.empty()) {
      const std::size_t pick = rng.next_below(live.size());
      buf.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    sim.run_until(sim.now() + sim::SimTime::microseconds(100));
  }
  EXPECT_EQ(buf.total_stored(), stored);
  EXPECT_EQ(buf.total_stored(),
            buf.total_released() + buf.total_expired() + buf.packets_stored());
  sim.run();
  EXPECT_EQ(buf.units_in_use(), buf.packets_stored());
}

TEST_P(BufferConservationTest, FlowGranularityConserves) {
  sim::Simulator sim;
  FlowBufferManager buf{sim, 64, kReclaim};
  util::Rng rng{GetParam() * 31 + 7};
  std::vector<std::uint32_t> live_ids;
  for (int step = 0; step < 500; ++step) {
    if (rng.next_below(3) != 0u) {
      const auto r = buf.store(packet_for(static_cast<std::uint32_t>(rng.next_below(10)),
                                          static_cast<std::uint32_t>(step)));
      if (r && r->first_of_flow) live_ids.push_back(r->buffer_id);
    } else if (!live_ids.empty()) {
      const std::size_t pick = rng.next_below(live_ids.size());
      buf.release_all(live_ids[pick]);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    sim.run_until(sim.now() + sim::SimTime::microseconds(100));
  }
  sim.run();
  // Conservation via totals: stored == released + expired + in the manager.
  EXPECT_EQ(buf.packets_buffered(),
            buf.total_stored() - buf.total_released() - buf.total_expired());
  // After draining, live buffer_id slots equal live flows.
  EXPECT_EQ(buf.units_in_use(), buf.flows_buffered());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferConservationTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sdnbuf::sw

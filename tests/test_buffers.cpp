// Unit tests for the two buffer managers: capacity accounting, buffer_id
// semantics, deferred reclamation, expiry, and the flow-granularity
// invariants of Algorithms 1-2 (shared id, first-of-flow detection,
// whole-flow release).
#include <gtest/gtest.h>

#include "openflow/constants.hpp"
#include "sim/simulator.hpp"
#include "switchd/flow_buffer.hpp"
#include "switchd/packet_buffer.hpp"
#include "util/rng.hpp"

namespace sdnbuf::sw {
namespace {

constexpr auto kReclaim = sim::SimTime::milliseconds(4);

net::Packet packet_for(std::uint32_t flow, std::uint32_t seq = 0) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, 1000);
  p.flow_id = flow;
  p.seq_in_flow = seq;
  return p;
}

struct PacketBufferTest : ::testing::Test {
  sim::Simulator sim;
  PacketBufferManager buf{sim, 4, kReclaim};
};

TEST_F(PacketBufferTest, StoreAssignsDistinctIds) {
  const auto a = buf.store(packet_for(0));
  const auto b = buf.store(packet_for(1));
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_NE(*a, of::kNoBuffer);
  EXPECT_EQ(buf.units_in_use(), 2u);
  EXPECT_EQ(buf.packets_stored(), 2u);
}

TEST_F(PacketBufferTest, ReleaseReturnsTheStoredPacket) {
  const auto id = buf.store(packet_for(7, 3));
  ASSERT_TRUE(id);
  const auto released = buf.release(*id);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->flow_id, 7u);
  EXPECT_EQ(released->seq_in_flow, 3u);
  // Double release fails.
  EXPECT_FALSE(buf.release(*id).has_value());
  EXPECT_EQ(buf.total_released(), 1u);
}

TEST_F(PacketBufferTest, UnknownIdReleaseFails) {
  EXPECT_FALSE(buf.release(12345).has_value());
}

TEST_F(PacketBufferTest, CapacityExhaustionRejects) {
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(buf.store(packet_for(i)).has_value());
  EXPECT_FALSE(buf.store(packet_for(4)).has_value());
  EXPECT_EQ(buf.rejected_full(), 1u);
}

TEST_F(PacketBufferTest, ReclaimDelayHoldsUnits) {
  const auto id = buf.store(packet_for(0));
  buf.release(*id);
  // Unit still charged until the reclaim delay elapses.
  EXPECT_EQ(buf.units_in_use(), 1u);
  EXPECT_EQ(buf.packets_stored(), 0u);
  sim.run();
  EXPECT_EQ(buf.units_in_use(), 0u);
}

TEST_F(PacketBufferTest, UnitsReusableAfterReclaim) {
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(*buf.store(packet_for(i)));
  // Release one; before reclaim the buffer is still full.
  ASSERT_TRUE(buf.release(ids[0]).has_value());
  EXPECT_FALSE(buf.store(packet_for(9)).has_value());
  sim.run();  // reclaim fires
  EXPECT_TRUE(buf.store(packet_for(9)).has_value());
}

TEST_F(PacketBufferTest, PeekDoesNotRemove) {
  const auto id = buf.store(packet_for(3));
  ASSERT_NE(buf.peek(*id), nullptr);
  EXPECT_EQ(buf.peek(*id)->flow_id, 3u);
  EXPECT_EQ(buf.packets_stored(), 1u);
  EXPECT_EQ(buf.peek(999), nullptr);
}

TEST_F(PacketBufferTest, ExpireDropsOldPackets) {
  buf.store(packet_for(0));
  sim.run_until(sim::SimTime::milliseconds(100));
  buf.store(packet_for(1));
  // Cutoff at t=50ms: only the first packet is stale.
  EXPECT_EQ(buf.expire_older_than(sim::SimTime::milliseconds(50)), 1u);
  EXPECT_EQ(buf.packets_stored(), 1u);
  EXPECT_EQ(buf.total_expired(), 1u);
}

TEST_F(PacketBufferTest, OccupancyTracksMax) {
  buf.store(packet_for(0));
  buf.store(packet_for(1));
  buf.store(packet_for(2));
  EXPECT_EQ(buf.occupancy().max(), 3u);
  EXPECT_EQ(buf.occupancy().current(), 3u);
}

struct FlowBufferTest : ::testing::Test {
  sim::Simulator sim;
  FlowBufferManager buf{sim, 16, kReclaim};
};

TEST_F(FlowBufferTest, FirstPacketOfFlowSignalsRequest) {
  const auto r = buf.store(packet_for(0, 0));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->first_of_flow);
  EXPECT_EQ(r->queued, 1u);
}

TEST_F(FlowBufferTest, SubsequentPacketsShareTheBufferId) {
  const auto first = buf.store(packet_for(0, 0));
  const auto second = buf.store(packet_for(0, 1));
  const auto third = buf.store(packet_for(0, 2));
  ASSERT_TRUE(first && second && third);
  EXPECT_FALSE(second->first_of_flow);
  EXPECT_FALSE(third->first_of_flow);
  EXPECT_EQ(first->buffer_id, second->buffer_id);
  EXPECT_EQ(first->buffer_id, third->buffer_id);
  EXPECT_EQ(third->queued, 3u);
  EXPECT_EQ(buf.flows_buffered(), 1u);
  EXPECT_EQ(buf.packets_buffered(), 3u);
  // One buffer unit: the three packets share a single buffer_id slot.
  EXPECT_EQ(buf.units_in_use(), 1u);
}

TEST_F(FlowBufferTest, DistinctFlowsGetDistinctIds) {
  const auto a = buf.store(packet_for(0));
  const auto b = buf.store(packet_for(1));
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(b->first_of_flow);
  EXPECT_NE(a->buffer_id, b->buffer_id);
  EXPECT_EQ(buf.flows_buffered(), 2u);
}

TEST_F(FlowBufferTest, BufferIdDerivedFromFiveTuple) {
  const auto r = buf.store(packet_for(5));
  ASSERT_TRUE(r.has_value());
  const auto key = packet_for(5).flow_key();
  EXPECT_EQ(r->buffer_id, static_cast<std::uint32_t>(key.hash()) & 0x7fffffff);
  EXPECT_EQ(buf.buffer_id_of(key), r->buffer_id);
}

TEST_F(FlowBufferTest, ReleaseAllReturnsInArrivalOrder) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  buf.store(packet_for(0, 2));
  const auto packets = buf.release_all(r->buffer_id);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].seq_in_flow, 0u);
  EXPECT_EQ(packets[1].seq_in_flow, 1u);
  EXPECT_EQ(packets[2].seq_in_flow, 2u);
  EXPECT_EQ(buf.flows_buffered(), 0u);
  // Releasing again yields nothing.
  EXPECT_TRUE(buf.release_all(r->buffer_id).empty());
}

TEST_F(FlowBufferTest, NewFlowAfterReleaseIsFirstAgain) {
  const auto r1 = buf.store(packet_for(0, 0));
  buf.release_all(r1->buffer_id);
  const auto r2 = buf.store(packet_for(0, 1));
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->first_of_flow);  // map entry was erased by the release
}

TEST_F(FlowBufferTest, UnitsReclaimAfterDelay) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  buf.release_all(r->buffer_id);
  EXPECT_EQ(buf.units_in_use(), 1u);  // the flow's slot pends reclamation
  EXPECT_EQ(buf.packets_buffered(), 0u);
  sim.run();
  EXPECT_EQ(buf.units_in_use(), 0u);
}

TEST_F(FlowBufferTest, CapacityCountsBufferIdSlots) {
  // Capacity 16 buffer_id slots: 16 distinct flows fill it; more packets of
  // buffered flows still fit (they share existing slots), a 17th flow fails.
  for (std::uint32_t f = 0; f < 16; ++f) EXPECT_TRUE(buf.store(packet_for(f)).has_value());
  EXPECT_TRUE(buf.store(packet_for(0, 1)).has_value());  // shares flow 0's slot
  EXPECT_FALSE(buf.store(packet_for(99)).has_value());   // needs a fresh slot
  EXPECT_EQ(buf.rejected_full(), 1u);
}

TEST_F(FlowBufferTest, RequestTimestampBookkeeping) {
  const auto r = buf.store(packet_for(0));
  EXPECT_FALSE(buf.last_request_at(r->buffer_id).has_value());
  buf.mark_request_sent(r->buffer_id, sim::SimTime::milliseconds(3));
  ASSERT_TRUE(buf.last_request_at(r->buffer_id).has_value());
  EXPECT_EQ(*buf.last_request_at(r->buffer_id), sim::SimTime::milliseconds(3));
  // Unknown id is inert.
  EXPECT_FALSE(buf.last_request_at(0xdead).has_value());
  buf.mark_request_sent(0xdead, sim::SimTime::zero());
}

TEST_F(FlowBufferTest, FrontPacketForResend) {
  const auto r = buf.store(packet_for(0, 0));
  buf.store(packet_for(0, 1));
  const auto* front = buf.front_packet(r->buffer_id);
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front->seq_in_flow, 0u);
  EXPECT_EQ(buf.front_packet(0xdead), nullptr);
}

TEST_F(FlowBufferTest, ExpireDropsWholeFlows) {
  buf.store(packet_for(0, 0));
  sim.run_until(sim::SimTime::milliseconds(100));
  buf.store(packet_for(0, 1));  // same flow, newer packet
  buf.store(packet_for(1, 0));  // fresh flow
  // Flow 0's FIRST packet is stale -> the whole flow (2 packets) is dropped.
  EXPECT_EQ(buf.expire_older_than(sim::SimTime::milliseconds(50)), 2u);
  EXPECT_EQ(buf.flows_buffered(), 1u);
  EXPECT_EQ(buf.total_expired(), 2u);
  EXPECT_FALSE(buf.buffer_id_of(packet_for(0).flow_key()).has_value());
}

TEST_F(FlowBufferTest, IdCollisionProbing) {
  // Force a collision: store flow A, then manufacture a key whose derived id
  // collides by storing many flows — verify all ids are unique.
  std::set<std::uint32_t> ids;
  for (std::uint32_t f = 0; f < 16; ++f) {
    const auto r = buf.store(packet_for(f));
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(ids.insert(r->buffer_id).second) << "duplicate buffer_id";
  }
}

// Parameterized conservation property: stored == released + expired +
// still-buffered, for both managers across seeds.
class BufferConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferConservationTest, PacketGranularityConserves) {
  sim::Simulator sim;
  PacketBufferManager buf{sim, 32, kReclaim};
  util::Rng rng{GetParam()};
  std::vector<std::uint32_t> live;
  std::uint64_t stored = 0;
  for (int step = 0; step < 500; ++step) {
    if (rng.next_below(2) == 0u) {
      const auto id = buf.store(packet_for(static_cast<std::uint32_t>(rng.next_below(50)),
                                           static_cast<std::uint32_t>(step)));
      if (id) {
        live.push_back(*id);
        ++stored;
      }
    } else if (!live.empty()) {
      const std::size_t pick = rng.next_below(live.size());
      buf.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    sim.run_until(sim.now() + sim::SimTime::microseconds(100));
  }
  EXPECT_EQ(buf.total_stored(), stored);
  EXPECT_EQ(buf.total_stored(),
            buf.total_released() + buf.total_expired() + buf.packets_stored());
  sim.run();
  EXPECT_EQ(buf.units_in_use(), buf.packets_stored());
}

TEST_P(BufferConservationTest, FlowGranularityConserves) {
  sim::Simulator sim;
  FlowBufferManager buf{sim, 64, kReclaim};
  util::Rng rng{GetParam() * 31 + 7};
  std::vector<std::uint32_t> live_ids;
  for (int step = 0; step < 500; ++step) {
    if (rng.next_below(3) != 0u) {
      const auto r = buf.store(packet_for(static_cast<std::uint32_t>(rng.next_below(10)),
                                          static_cast<std::uint32_t>(step)));
      if (r && r->first_of_flow) live_ids.push_back(r->buffer_id);
    } else if (!live_ids.empty()) {
      const std::size_t pick = rng.next_below(live_ids.size());
      buf.release_all(live_ids[pick]);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    sim.run_until(sim.now() + sim::SimTime::microseconds(100));
  }
  sim.run();
  // Conservation via totals: stored == released + expired + in the manager.
  EXPECT_EQ(buf.packets_buffered(),
            buf.total_stored() - buf.total_released() - buf.total_expired());
  // After draining, live buffer_id slots equal live flows.
  EXPECT_EQ(buf.units_in_use(), buf.flows_buffered());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferConservationTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sdnbuf::sw

// Tests for the control-channel fault plane: seeded loss/duplication/
// jitter/outage injection in of::Channel, the switch's liveness and
// degradation lifecycle (echo probes, fail-secure vs fail-standalone,
// hello re-handshake, buffer reconciliation), the capped-backoff resend
// limit, and the registry's channel-loss accounting.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "verify/invariants.hpp"

using namespace sdnbuf;

namespace {

sim::SimTime ms(long long v) { return sim::SimTime::milliseconds(v); }

struct ChannelRig {
  sim::Simulator sim;
  net::DuplexLink link{sim, "ctl", 1000e6, sim::SimTime::microseconds(300)};
  of::Channel channel{sim, link.forward(), link.reverse()};
  std::vector<std::uint32_t> at_controller;  // echo_request xids, arrival order
  std::vector<std::uint32_t> at_switch;

  ChannelRig() {
    channel.set_controller_handler([this](const of::OfMessage& msg, std::size_t) {
      if (const auto* echo = std::get_if<of::EchoRequest>(&msg)) at_controller.push_back(echo->xid);
    });
    channel.set_switch_handler([this](const of::OfMessage& msg, std::size_t) {
      if (const auto* echo = std::get_if<of::EchoRequest>(&msg)) at_switch.push_back(echo->xid);
    });
  }
};

net::Packet fresh_packet(core::Testbed& bed, std::uint64_t flow_id) {
  net::Packet p = net::make_udp_packet(bed.host1_mac(), bed.host2_mac(), bed.host1_ip(),
                                       bed.host2_ip(),
                                       static_cast<std::uint16_t>(20000 + flow_id), 7, 400);
  p.flow_id = flow_id;
  p.seq_in_flow = 0;
  return p;
}

}  // namespace

TEST(ChannelFaults, CertainLossNeverDelivers) {
  ChannelRig rig;
  of::FaultProfile profile;
  profile.loss_to_controller = 1.0;
  rig.channel.set_fault_profile(profile, 7);
  const std::size_t wire = rig.channel.send_from_switch(of::EchoRequest{1});
  rig.sim.run();
  EXPECT_GT(wire, 0u);
  EXPECT_TRUE(rig.at_controller.empty());
  EXPECT_EQ(rig.channel.fault_counters().lost_to_controller, 1u);
  // The doomed copy still shows up in the sender-side capture counters.
  EXPECT_EQ(rig.channel.to_controller_counters().count(of::MsgType::EchoRequest), 1u);
  // The other direction is untouched.
  rig.channel.send_from_controller(of::EchoRequest{2});
  rig.sim.run();
  ASSERT_EQ(rig.at_switch.size(), 1u);
  EXPECT_EQ(rig.channel.fault_counters().lost_to_switch, 0u);
}

TEST(ChannelFaults, CertainDuplicationDeliversTwice) {
  ChannelRig rig;
  of::FaultProfile profile;
  profile.duplicate_to_controller = 1.0;
  rig.channel.set_fault_profile(profile, 7);
  rig.channel.send_from_switch(of::EchoRequest{9});
  rig.sim.run();
  ASSERT_EQ(rig.at_controller.size(), 2u);
  EXPECT_EQ(rig.at_controller[0], 9u);
  EXPECT_EQ(rig.at_controller[1], 9u);
  EXPECT_EQ(rig.channel.fault_counters().duplicated_to_controller, 1u);
  // Both copies hit the wire, so the capture counters see two.
  EXPECT_EQ(rig.channel.to_controller_counters().count(of::MsgType::EchoRequest), 2u);
}

TEST(ChannelFaults, OutageWindowSilencesBothDirections) {
  ChannelRig rig;
  of::FaultProfile profile;
  profile.outages.push_back({sim::SimTime::zero(), sim::SimTime::seconds(1)});
  rig.channel.set_fault_profile(profile, 7);
  EXPECT_FALSE(rig.channel.connection_up());
  rig.channel.send_from_switch(of::EchoRequest{1});
  rig.channel.send_from_controller(of::EchoRequest{2});
  rig.sim.run();
  EXPECT_TRUE(rig.at_controller.empty());
  EXPECT_TRUE(rig.at_switch.empty());
  EXPECT_EQ(rig.channel.fault_counters().outage_dropped_to_controller, 1u);
  EXPECT_EQ(rig.channel.fault_counters().outage_dropped_to_switch, 1u);
  // Outage drops never reach the wire: tcpdump would not see them.
  EXPECT_EQ(rig.channel.to_controller_counters().total_count(), 0u);
  EXPECT_EQ(rig.channel.to_switch_counters().total_count(), 0u);

  // After the window the channel is transparent again.
  rig.sim.run_until(sim::SimTime::seconds(2));
  EXPECT_TRUE(rig.channel.connection_up());
  rig.channel.send_from_switch(of::EchoRequest{3});
  rig.sim.run();
  ASSERT_EQ(rig.at_controller.size(), 1u);
  EXPECT_EQ(rig.at_controller[0], 3u);
}

TEST(ChannelFaults, ExtraDelayJitterPreservesPerDirectionOrder) {
  ChannelRig rig;
  of::FaultProfile profile;
  profile.max_extra_delay = ms(5);
  rig.channel.set_fault_profile(profile, 99);
  for (std::uint32_t xid = 1; xid <= 50; ++xid) {
    rig.channel.send_from_switch(of::EchoRequest{xid});
  }
  rig.sim.run();
  ASSERT_EQ(rig.at_controller.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_EQ(rig.at_controller[i], i + 1) << "jitter reordered delivery at index " << i;
  }
}

TEST(ChannelFaults, RejectsUnsortedOutageWindows) {
  ChannelRig rig;
  of::FaultProfile profile;
  profile.outages.push_back({ms(500), ms(900)});
  profile.outages.push_back({ms(100), ms(200)});
  EXPECT_DEATH(rig.channel.set_fault_profile(profile, 1), "outage");
}

// Stats polling under channel faults: lost requests and lost replies are
// written off at the next poll cycle (stats_requests_expired), duplicated
// replies land in stats_replies_unmatched, and the request/reply accounting
// never wedges — every request ends up exactly once in {seen, expired}, so
// the outstanding-xid set cannot leak.
TEST(ChannelFaults, StatsPollingSurvivesLossAndDuplication) {
  core::TestbedConfig tb;
  tb.controller_config.stats_poll_interval = ms(50);
  tb.fault_profile.loss_to_switch = 0.3;           // stats requests eaten
  tb.fault_profile.loss_to_controller = 0.3;       // stats replies eaten
  tb.fault_profile.duplicate_to_controller = 0.3;  // stats replies doubled
  core::Testbed bed{tb};
  bed.warm_up();
  bed.sim().run_until(bed.measurement_start() + sim::SimTime::seconds(2));
  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();

  const ctrl::ControllerCounters& cc = bed.controller().counters();
  EXPECT_GT(cc.stats_requests_sent, 0u);
  EXPECT_GT(cc.stats_replies_seen, 0u) << "some replies must get through at 30% loss";
  EXPECT_GT(cc.stats_requests_expired, 0u) << "lost requests/replies must be written off";
  EXPECT_GT(cc.stats_replies_unmatched, 0u) << "duplicated replies must land as unmatched";
  EXPECT_EQ(cc.stats_replies_seen + cc.stats_requests_expired, cc.stats_requests_sent)
      << "every request must resolve to exactly one of {matched, expired}";
}

// Registry accounting: a lost full-frame packet_in takes its payload with
// it, and the `lost` bucket closes conservation.
TEST(RegistryFaultAccounting, LostFrameCarrierClosesConservation) {
  verify::InvariantRegistry reg;
  net::Packet p = net::make_udp_packet(
      net::MacAddress::from_index(1), net::MacAddress::from_index(2),
      net::Ipv4Address::from_octets(10, 1, 0, 1), net::Ipv4Address::from_octets(10, 2, 0, 1),
      12345, 9, 500);
  p.flow_id = 1;
  p.seq_in_flow = 0;

  reg.on_packet_injected(p, ms(1));
  reg.on_packet_in_sent(5, p, of::kNoBuffer, ms(2));
  of::PacketIn pi;
  pi.xid = 5;
  pi.buffer_id = of::kNoBuffer;
  pi.total_len = static_cast<std::uint16_t>(p.frame_size);
  pi.in_port = 1;
  pi.data = p.serialize(p.frame_size);
  reg.on_control_message(true, pi, ms(2));
  reg.on_channel_fault(true, pi, of::FaultKind::Loss, ms(2));
  reg.finalize(/*expect_all_delivered=*/false);
  EXPECT_TRUE(reg.ok()) << reg.report();
}

// Registry accounting: duplication widens the allowances instead of firing
// duplicate-delivery / xid-reuse violations.
TEST(RegistryFaultAccounting, DuplicationWidensAllowances) {
  verify::InvariantRegistry reg;
  net::Packet p = net::make_udp_packet(
      net::MacAddress::from_index(1), net::MacAddress::from_index(2),
      net::Ipv4Address::from_octets(10, 1, 0, 1), net::Ipv4Address::from_octets(10, 2, 0, 1),
      12346, 9, 500);
  p.flow_id = 2;
  p.seq_in_flow = 0;

  reg.on_packet_injected(p, ms(1));
  reg.on_packet_in_sent(6, p, of::kNoBuffer, ms(2));
  of::PacketIn pi;
  pi.xid = 6;
  pi.buffer_id = of::kNoBuffer;
  pi.total_len = static_cast<std::uint16_t>(p.frame_size);
  pi.in_port = 1;
  pi.data = p.serialize(p.frame_size);
  // Duplicated upstream: the fault tap fires before the copy's capture tap.
  reg.on_control_message(true, pi, ms(2));
  reg.on_channel_fault(true, pi, of::FaultKind::Duplicate, ms(2));
  reg.on_control_message(true, pi, ms(2));

  // The controller answers each copy with a data-carrying packet_out; the
  // second one got there via channel duplication too.
  of::PacketOut po;
  po.xid = 6;
  po.buffer_id = of::kNoBuffer;
  po.in_port = 1;
  po.data = pi.data;
  reg.on_control_message(false, po, ms(3));
  reg.on_channel_fault(false, po, of::FaultKind::Duplicate, ms(3));
  reg.on_control_message(false, po, ms(3));

  reg.on_packet_delivered(p, ms(4));
  reg.on_packet_delivered(p, ms(5));
  reg.finalize(/*expect_all_delivered=*/false);
  EXPECT_TRUE(reg.ok()) << reg.report();
}

// Liveness end to end: an outage degrades the connection after the echo
// miss threshold, and the hello re-handshake restores it once the window
// closes.
TEST(ConnectionLifecycle, OutageDegradesThenReconnects) {
  core::TestbedConfig tb;
  tb.switch_config.echo_interval = ms(50);
  tb.switch_config.echo_miss_threshold = 3;
  tb.switch_config.fail_mode = sw::ConnectionFailMode::FailSecure;
  tb.fault_profile.outages.push_back({ms(100), ms(800)});
  core::Testbed bed{tb};
  bed.warm_up();
  const sim::SimTime t0 = bed.measurement_start();

  bed.sim().run_until(t0 + ms(500));
  EXPECT_EQ(bed.ovs().connection_state(), sw::ConnectionState::Degraded);
  EXPECT_EQ(bed.ovs().counters().connection_losses, 1u);

  bed.sim().run_until(t0 + sim::SimTime::seconds(2));
  EXPECT_EQ(bed.ovs().connection_state(), sw::ConnectionState::Connected);
  EXPECT_EQ(bed.ovs().counters().reconnects, 1u);
  EXPECT_GT(bed.ovs().last_restored_at(), t0 + ms(800));
  EXPECT_GT(bed.ovs().counters().echo_requests_sent, 0u);
  EXPECT_GT(bed.ovs().counters().echo_replies_received, 0u);
  // Liveness and handshake traffic is visible in the channel counters.
  EXPECT_GT(bed.channel().to_controller_counters().count(of::MsgType::EchoRequest), 0u);
  EXPECT_GT(bed.channel().to_switch_counters().count(of::MsgType::EchoReply), 0u);
  EXPECT_GE(bed.channel().to_controller_counters().count(of::MsgType::Hello), 1u);
  EXPECT_GE(bed.channel().to_switch_counters().count(of::MsgType::Hello), 1u);
  EXPECT_GT(bed.controller().counters().echo_requests_seen, 0u);
  EXPECT_GE(bed.controller().counters().hellos_seen, 1u);

  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();
}

// Degradation datapath contrast: while the controller is lost, a
// fail-standalone switch floods new misses onward, a fail-secure switch
// drops them.
TEST(ConnectionLifecycle, FailModesDisagreeOnDegradedMisses) {
  for (const auto mode :
       {sw::ConnectionFailMode::FailSecure, sw::ConnectionFailMode::FailStandalone}) {
    core::TestbedConfig tb;
    tb.switch_config.echo_interval = ms(50);
    tb.switch_config.echo_miss_threshold = 3;
    tb.switch_config.fail_mode = mode;
    tb.switch_config.buffer_mode = sw::BufferMode::PacketGranularity;
    tb.fault_profile.outages.push_back({sim::SimTime::zero(), sim::SimTime::seconds(10)});
    core::Testbed bed{tb};
    bed.warm_up();
    const sim::SimTime t0 = bed.measurement_start();

    bed.sim().run_until(t0 + ms(400));
    ASSERT_EQ(bed.ovs().connection_state(), sw::ConnectionState::Degraded)
        << sw::fail_mode_name(mode);

    bed.inject_from_host1(fresh_packet(bed, 1));
    bed.sim().run_until(t0 + ms(600));
    if (mode == sw::ConnectionFailMode::FailStandalone) {
      EXPECT_EQ(bed.sink2().packets_received(), 1u) << "standalone must keep forwarding";
      EXPECT_EQ(bed.ovs().counters().standalone_forwarded, 1u);
      EXPECT_EQ(bed.ovs().counters().failsecure_dropped, 0u);
    } else {
      EXPECT_EQ(bed.sink2().packets_received(), 0u) << "fail-secure must drop";
      EXPECT_EQ(bed.ovs().counters().failsecure_dropped, 1u);
      EXPECT_EQ(bed.ovs().counters().standalone_forwarded, 0u);
    }

    bed.ovs().stop();
    bed.controller().stop();
    bed.sim().run();
  }
}

// The resend cap: with every upstream message lost, Algorithm 1's
// re-request loop must terminate at max_flow_resends and expire the unit,
// with conservation still closed.
TEST(ConnectionLifecycle, ResendCapExpiresFlowUnits) {
  verify::InvariantRegistry reg;
  core::ExperimentConfig cfg;
  cfg.mode = sw::BufferMode::FlowGranularity;
  cfg.buffer_capacity = 64;
  cfg.rate_mbps = 20.0;
  cfg.frame_size = 600;
  cfg.n_flows = 2;
  cfg.packets_per_flow = 3;
  cfg.seed = 11;
  cfg.observer = &reg;
  cfg.testbed.fault_profile.loss_to_controller = 1.0;
  cfg.drain_timeout = sim::SimTime::seconds(2);
  const auto r = core::run_experiment(cfg);

  EXPECT_EQ(r.packets_delivered, 0u);
  EXPECT_EQ(r.resend_cap_expired, 2u);  // one capped unit per flow
  EXPECT_LE(r.resend_pkt_ins, 2u * 4u);  // bounded by max_flow_resends per unit
  EXPECT_GT(r.resend_pkt_ins, 0u);
  reg.finalize(/*expect_all_delivered=*/false);
  EXPECT_TRUE(reg.ok()) << reg.report();
}

// Reconciliation after reconnect: flow-granularity units buffered before
// the outage are re-requested and eventually delivered; packet-granularity
// orphans are expired.
TEST(ConnectionLifecycle, ReconnectReconcilesStrandedBuffers) {
  // Flow granularity: a flow buffered right before the outage survives it.
  {
    verify::InvariantRegistry reg;
    core::TestbedConfig tb;
    tb.switch_config.echo_interval = ms(20);
    tb.switch_config.echo_miss_threshold = 2;
    tb.switch_config.fail_mode = sw::ConnectionFailMode::FailStandalone;
    tb.switch_config.buffer_mode = sw::BufferMode::FlowGranularity;
    tb.switch_config.buffer_capacity = 64;
    // Outage opens just after the packet's pkt_in leaves (but before the
    // controller's response can cross back) and closes well inside the
    // 500 ms buffer expiry.
    tb.fault_profile.outages.push_back({sim::SimTime::microseconds(500), ms(200)});
    tb.observer = &reg;
    core::Testbed bed{tb};
    bed.warm_up();
    const sim::SimTime t0 = bed.measurement_start();

    bed.inject_from_host1(fresh_packet(bed, 1));
    bed.sim().run_until(t0 + ms(450));
    EXPECT_EQ(bed.ovs().connection_state(), sw::ConnectionState::Connected);
    EXPECT_GE(bed.ovs().counters().reconcile_rerequests, 1u);
    EXPECT_EQ(bed.sink2().packets_received(), 1u)
        << "reconciliation must recover the stranded flow unit";

    bed.ovs().stop();
    bed.controller().stop();
    bed.sim().run();
    reg.finalize(/*expect_all_delivered=*/false);
    EXPECT_TRUE(reg.ok()) << reg.report();
  }
  // Packet granularity: the stranded unit is an orphan and gets expired.
  {
    verify::InvariantRegistry reg;
    core::TestbedConfig tb;
    tb.switch_config.echo_interval = ms(20);
    tb.switch_config.echo_miss_threshold = 2;
    tb.switch_config.fail_mode = sw::ConnectionFailMode::FailStandalone;
    tb.switch_config.buffer_mode = sw::BufferMode::PacketGranularity;
    tb.switch_config.buffer_capacity = 64;
    tb.fault_profile.outages.push_back({sim::SimTime::microseconds(500), ms(200)});
    tb.observer = &reg;
    core::Testbed bed{tb};
    bed.warm_up();
    const sim::SimTime t0 = bed.measurement_start();

    bed.inject_from_host1(fresh_packet(bed, 1));
    bed.sim().run_until(t0 + ms(450));
    EXPECT_EQ(bed.ovs().connection_state(), sw::ConnectionState::Connected);
    EXPECT_GE(bed.ovs().counters().reconcile_expired, 1u);
    EXPECT_EQ(bed.sink2().packets_received(), 0u);

    bed.ovs().stop();
    bed.controller().stop();
    bed.sim().run();
    reg.finalize(/*expect_all_delivered=*/false);
    EXPECT_TRUE(reg.ok()) << reg.report();
  }
}

// Fabric integration tests: topology-routed delivery across leaf-spine and
// fat-tree fabrics, per-switch invariant registries, per-hop vs full-path
// installation, traffic-matrix patterns, and run-level determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fabric_experiment.hpp"
#include "core/fabric_testbed.hpp"
#include "host/traffic_matrix.hpp"

namespace sdnbuf::core {
namespace {

FabricConfig fabric_config(topo::Topology topology, FabricRouting routing, sw::BufferMode mode) {
  FabricConfig config;
  config.topology = std::move(topology);
  config.routing = routing;
  config.switch_config.buffer_mode = mode;
  config.switch_config.buffer_capacity = 256;
  return config;
}

net::Packet host_packet(unsigned src, unsigned dst, std::uint16_t src_port,
                        std::uint64_t flow_id, std::uint32_t seq = 0) {
  net::Packet p = net::make_udp_packet(
      topo::Topology::host_mac(src), topo::Topology::host_mac(dst),
      topo::Topology::host_ip(src), topo::Topology::host_ip(dst), src_port, 9, 1000);
  p.flow_id = flow_id;
  p.seq_in_flow = seq;
  return p;
}

void drain(FabricTestbed& bed, sim::SimTime grace = sim::SimTime::milliseconds(200)) {
  bed.sim().run_until(bed.sim().now() + grace);
  bed.stop();
  bed.sim().run();
}

TEST(FabricTestbed, LeafSpineDeliversAcrossTheFabric) {
  FabricTestbed bed{fabric_config(topo::make_leaf_spine(2, 2, 2), FabricRouting::TopologyPerHop,
                                  sw::BufferMode::PacketGranularity)};
  // Host 0 (leaf 1) -> host 3 (leaf 2): must cross a spine.
  bed.inject_from_host(0, host_packet(0, 3, 10000, 1));
  drain(bed);
  EXPECT_EQ(bed.sink_at(3).packets_received(), 1u);
  EXPECT_EQ(bed.total_delivered(), 1u);
  // Reactive per-hop: leaf, spine, leaf each raised one packet_in.
  EXPECT_EQ(bed.total_pkt_ins(), 3u);
}

TEST(FabricTestbed, SameLeafTrafficStaysLocal) {
  FabricTestbed bed{fabric_config(topo::make_leaf_spine(2, 2, 2), FabricRouting::TopologyPerHop,
                                  sw::BufferMode::PacketGranularity)};
  bed.inject_from_host(0, host_packet(0, 1, 10000, 1));
  drain(bed);
  EXPECT_EQ(bed.sink_at(1).packets_received(), 1u);
  EXPECT_EQ(bed.total_pkt_ins(), 1u);  // only the shared leaf missed
  // Spines never saw the packet.
  EXPECT_EQ(bed.switch_at(2).counters().pkt_ins_sent, 0u);
  EXPECT_EQ(bed.switch_at(3).counters().pkt_ins_sent, 0u);
}

TEST(FabricTestbed, FullPathInstallAnswersOnlyTheOrigin) {
  FabricTestbed bed{fabric_config(topo::make_leaf_spine(2, 2, 2),
                                  FabricRouting::TopologyFullPath,
                                  sw::BufferMode::PacketGranularity)};
  bed.inject_from_host(0, host_packet(0, 3, 10000, 1));
  drain(bed);
  EXPECT_EQ(bed.sink_at(3).packets_received(), 1u);
  // One miss at the ingress leaf; the spine and egress leaf got their rules
  // proactively.
  EXPECT_EQ(bed.total_pkt_ins(), 1u);
  EXPECT_EQ(bed.controller().counters().path_preinstalls, 2u);
  EXPECT_EQ(bed.controller().counters().flow_mods_sent, 3u);
}

TEST(FabricTestbed, UnroutableDestinationIsDroppedNotFlooded) {
  FabricTestbed bed{fabric_config(topo::make_leaf_spine(2, 2, 2), FabricRouting::TopologyPerHop,
                                  sw::BufferMode::NoBuffer)};
  net::Packet p = host_packet(0, 1, 10000, 1);
  p.eth.dst = net::MacAddress::from_index(999);  // no such host
  bed.inject_from_host(0, p);
  drain(bed);
  EXPECT_EQ(bed.total_delivered(), 0u);
  EXPECT_EQ(bed.controller().counters().unroutable_drops, 1u);
  EXPECT_EQ(bed.controller().counters().floods, 0u);
}

TEST(FabricTestbed, PerSwitchRegistriesStayCleanOnFatTree) {
  const topo::Topology topology = topo::make_fat_tree(4);
  std::vector<std::unique_ptr<verify::InvariantRegistry>> registries;
  std::vector<verify::InvariantObserver*> observers;
  for (unsigned i = 0; i < topology.n_switches(); ++i) {
    registries.push_back(std::make_unique<verify::InvariantRegistry>());
    observers.push_back(registries.back().get());
  }
  FabricConfig config = fabric_config(topology, FabricRouting::TopologyPerHop,
                                      sw::BufferMode::FlowGranularity);
  config.observers = observers;
  FabricTestbed bed{config};
  // A handful of cross-pod flows.
  for (unsigned f = 0; f < 8; ++f) {
    bed.inject_from_host(f % 4, host_packet(f % 4, 12 + f % 4,
                                            static_cast<std::uint16_t>(10000 + f), f));
  }
  drain(bed, sim::SimTime::milliseconds(500));
  EXPECT_EQ(bed.total_delivered(), 8u);
  std::uint64_t events = 0;
  for (unsigned i = 0; i < registries.size(); ++i) {
    registries[i]->finalize(/*expect_all_delivered=*/true);
    EXPECT_TRUE(registries[i]->ok())
        << topology.name(topology.switch_id(i)) << "\n" << registries[i]->report();
    events += registries[i]->events_observed();
  }
  EXPECT_GT(events, 0u);
}

TEST(FabricTestbed, FullPathNeedsProactiveAllowance) {
  const topo::Topology topology = topo::make_leaf_spine(2, 2, 2);
  std::vector<std::unique_ptr<verify::InvariantRegistry>> registries;
  std::vector<verify::InvariantObserver*> observers;
  for (unsigned i = 0; i < topology.n_switches(); ++i) {
    registries.push_back(std::make_unique<verify::InvariantRegistry>());
    registries.back()->set_allow_proactive_installs(true);
    observers.push_back(registries.back().get());
  }
  FabricConfig config = fabric_config(topology, FabricRouting::TopologyFullPath,
                                      sw::BufferMode::PacketGranularity);
  config.observers = observers;
  FabricTestbed bed{config};
  bed.inject_from_host(0, host_packet(0, 3, 10000, 1));
  drain(bed);
  EXPECT_EQ(bed.total_delivered(), 1u);
  for (auto& reg : registries) {
    reg->finalize(/*expect_all_delivered=*/true);
    EXPECT_TRUE(reg->ok()) << reg->report();
  }
}

TEST(TrafficMatrix, PatternsPickValidPairs) {
  sim::Simulator sim;
  host::TrafficMatrixConfig config;
  for (unsigned h = 0; h < 8; ++h) {
    config.host_macs.push_back(topo::Topology::host_mac(h));
    config.host_ips.push_back(topo::Topology::host_ip(h));
  }
  config.incast_target = 3;
  config.incast_fanin = 4;
  for (const auto pattern : {host::TrafficPattern::AllToAll, host::TrafficPattern::Permutation,
                             host::TrafficPattern::Incast}) {
    config.pattern = pattern;
    host::TrafficMatrixWorkload wl{sim, config, 11, [](unsigned, const net::Packet&) {}};
    for (std::uint64_t f = 0; f < 100; ++f) {
      const auto [src, dst] = wl.pick_pair(f);
      EXPECT_LT(src, 8u);
      EXPECT_LT(dst, 8u);
      EXPECT_NE(src, dst) << host::traffic_pattern_name(pattern);
      if (pattern == host::TrafficPattern::Incast) {
        EXPECT_EQ(dst, 3u);
        EXPECT_NE(src, 3u);
      }
    }
  }
}

TEST(TrafficMatrix, PermutationIsAFixedRotation) {
  sim::Simulator sim;
  host::TrafficMatrixConfig config;
  config.pattern = host::TrafficPattern::Permutation;
  for (unsigned h = 0; h < 6; ++h) {
    config.host_macs.push_back(topo::Topology::host_mac(h));
    config.host_ips.push_back(topo::Topology::host_ip(h));
  }
  host::TrafficMatrixWorkload wl{sim, config, 3, [](unsigned, const net::Packet&) {}};
  const unsigned shift = (wl.pick_pair(0).second + 6 - wl.pick_pair(0).first) % 6;
  EXPECT_GE(shift, 1u);
  for (std::uint64_t f = 0; f < 24; ++f) {
    const auto [src, dst] = wl.pick_pair(f);
    EXPECT_EQ(dst, (src + shift) % 6) << f;
  }
}

TEST(FabricExperiment, RunsAllThreeMechanismsAndAgreesOnDeliveries) {
  FabricExperimentConfig config;
  config.topology = topo::make_leaf_spine(2, 2, 2);
  config.pattern = host::TrafficPattern::Permutation;
  config.duration_s = 0.2;
  config.flow_arrival_per_s = 150.0;
  config.max_packets = 10;
  config.seed = 5;

  std::vector<FabricExperimentResult> results;
  for (const auto mode : {sw::BufferMode::NoBuffer, sw::BufferMode::PacketGranularity,
                          sw::BufferMode::FlowGranularity}) {
    config.mode = mode;
    results.push_back(run_fabric_experiment(config));
  }
  for (const auto& r : results) {
    EXPECT_TRUE(r.drained) << r.packets_delivered << "/" << r.packets_sent;
    EXPECT_GT(r.flows, 0u);
  }
  // All mechanisms deliver exactly the same payload multiset.
  EXPECT_EQ(results[0].delivered, results[1].delivered);
  EXPECT_EQ(results[1].delivered, results[2].delivered);
  // Buffered modes shrink the control path (full frames vs headers).
  EXPECT_LT(results[1].control_bytes, results[0].control_bytes);
  EXPECT_LT(results[2].control_bytes, results[0].control_bytes);
}

TEST(FabricExperiment, SameSeedIsBitIdentical) {
  FabricExperimentConfig config;
  config.topology = topo::make_fat_tree(4);
  config.pattern = host::TrafficPattern::AllToAll;
  config.mode = sw::BufferMode::FlowGranularity;
  config.duration_s = 0.1;
  config.flow_arrival_per_s = 200.0;
  config.max_packets = 8;
  config.seed = 21;

  const FabricExperimentResult a = run_fabric_experiment(config);
  const FabricExperimentResult b = run_fabric_experiment(config);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.pkt_ins, b.pkt_ins);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.duration_s, b.duration_s);

  // A different seed draws a different workload.
  config.seed = 22;
  const FabricExperimentResult c = run_fabric_experiment(config);
  EXPECT_NE(a.delivered, c.delivered);
}

TEST(FabricExperiment, FullPathCutsPacketInsUnderIncast) {
  FabricExperimentConfig config;
  config.topology = topo::make_leaf_spine(2, 4, 2);
  config.pattern = host::TrafficPattern::Incast;
  config.incast_target = 0;
  config.incast_fanin = 6;
  config.mode = sw::BufferMode::FlowGranularity;
  config.duration_s = 0.2;
  config.flow_arrival_per_s = 150.0;
  config.max_packets = 10;
  config.seed = 9;

  config.routing = FabricRouting::TopologyPerHop;
  const FabricExperimentResult per_hop = run_fabric_experiment(config);
  config.routing = FabricRouting::TopologyFullPath;
  const FabricExperimentResult full_path = run_fabric_experiment(config);

  EXPECT_TRUE(per_hop.drained);
  EXPECT_TRUE(full_path.drained);
  EXPECT_EQ(per_hop.delivered, full_path.delivered);
  // Full-path answers one miss per flow instead of one per hop.
  EXPECT_LT(full_path.pkt_ins, per_hop.pkt_ins);
  EXPECT_GT(full_path.path_preinstalls, 0u);
}

}  // namespace
}  // namespace sdnbuf::core

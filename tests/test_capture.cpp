// Tests for the control-channel capture (tcpdump stand-in), the message
// dissector, and the OFPT_ERROR message path.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/link.hpp"
#include "openflow/capture.hpp"
#include "openflow/channel.hpp"
#include "controller/controller.hpp"
#include "switchd/switch.hpp"

namespace sdnbuf::of {
namespace {

net::Packet sample_packet(std::uint32_t flow = 0) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, 1000);
  p.flow_id = flow;
  return p;
}

struct CaptureTest : ::testing::Test {
  sim::Simulator sim;
  net::DuplexLink link{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  Channel channel{sim, link.forward(), link.reverse()};
  ChannelCapture capture;

  void SetUp() override {
    capture.attach(channel);
    channel.set_controller_handler([](const OfMessage&, std::size_t) {});
    channel.set_switch_handler([](const OfMessage&, std::size_t) {});
  }
};

TEST_F(CaptureTest, RecordsBothDirections) {
  PacketIn pi;
  pi.xid = 7;
  pi.data = sample_packet().serialize(128);
  channel.send_from_switch(pi);
  channel.send_from_controller(FlowMod{});
  sim.run();
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].direction, Direction::ToController);
  EXPECT_EQ(capture.records()[0].type, MsgType::PacketIn);
  EXPECT_EQ(capture.records()[0].xid, 7u);
  EXPECT_EQ(capture.records()[1].direction, Direction::ToSwitch);
  EXPECT_EQ(capture.total_messages(Direction::ToController), 1u);
  EXPECT_EQ(capture.total_messages(Direction::ToSwitch), 1u);
}

TEST_F(CaptureTest, WireBytesMatchChannelAccounting) {
  PacketIn pi;
  pi.data = sample_packet().serialize(128);
  const std::size_t sent = channel.send_from_switch(pi);
  sim.run();
  EXPECT_EQ(capture.records().front().wire_bytes, sent);
  EXPECT_EQ(capture.total_bytes(Direction::ToController),
            channel.to_controller_counters().total_bytes());
}

TEST_F(CaptureTest, TimestampsAreSendTimes) {
  sim.schedule(sim::SimTime::milliseconds(3),
               [this]() { channel.send_from_switch(Hello{1}); });
  sim.run();
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].timestamp, sim::SimTime::milliseconds(3));
}

TEST_F(CaptureTest, RingBufferRollsOver) {
  ChannelCapture small{3};
  small.attach(channel);
  for (std::uint32_t i = 0; i < 5; ++i) channel.send_from_switch(EchoRequest{i});
  sim.run();
  EXPECT_EQ(small.records().size(), 3u);
  EXPECT_EQ(small.dropped_records(), 2u);
  EXPECT_EQ(small.records().front().xid, 2u);  // oldest kept
  EXPECT_EQ(small.total_messages(Direction::ToController), 5u);  // counters keep running
}

TEST_F(CaptureTest, DumpRendersAndFilters) {
  PacketIn pi;
  pi.buffer_id = 42;
  pi.total_len = 1000;
  pi.in_port = 1;
  pi.data = sample_packet().serialize(128);
  channel.send_from_switch(pi);
  channel.send_from_controller(FlowMod{});
  sim.run();
  std::ostringstream all;
  capture.dump(all);
  EXPECT_NE(all.str().find("packet_in buffer_id=42"), std::string::npos);
  EXPECT_NE(all.str().find("flow_mod"), std::string::npos);
  std::ostringstream filtered;
  capture.dump(filtered, "packet_in");
  EXPECT_NE(filtered.str().find("packet_in"), std::string::npos);
  EXPECT_EQ(filtered.str().find("flow_mod"), std::string::npos);
}

TEST_F(CaptureTest, ClearResetsEverything) {
  channel.send_from_switch(Hello{1});
  sim.run();
  capture.clear();
  EXPECT_TRUE(capture.records().empty());
  EXPECT_EQ(capture.total_messages(Direction::ToController), 0u);
}

TEST(Dissect, SummarizesKeyFields) {
  PacketIn pi;
  pi.buffer_id = kNoBuffer;
  pi.total_len = 1000;
  pi.in_port = 3;
  pi.reason = PacketInReason::FlowResend;
  pi.data.resize(1000);
  const std::string s = dissect(pi);
  EXPECT_NE(s.find("NO_BUFFER"), std::string::npos);
  EXPECT_NE(s.find("in_port=3"), std::string::npos);
  EXPECT_NE(s.find("flow_resend"), std::string::npos);

  FlowMod fm;
  fm.buffer_id = 9;
  fm.actions = output_to(2);
  const std::string f = dissect(fm);
  EXPECT_NE(f.find("buffer_id=9"), std::string::npos);
  EXPECT_NE(f.find("output:2"), std::string::npos);
}

// --- OFPT_ERROR ---

TEST(ErrorMessage, CodecRoundTrip) {
  Error m;
  m.xid = 5;
  m.type = ErrorType::BadRequest;
  m.code = ErrorCode::BufferUnknown;
  m.data = {1, 2, 3, 4};
  const auto wire = encode_message(m);
  EXPECT_EQ(wire.size(), kErrorFixedSize + 4);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Error>(*decoded), m);
}

TEST(ErrorMessage, SwitchReportsUnknownBufferRelease) {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link h1{sim, "h1", 100e6, sim::SimTime::zero()};
  Channel channel{sim, control.forward(), control.reverse()};
  sw::SwitchConfig config;
  config.buffer_mode = sw::BufferMode::PacketGranularity;
  sw::Switch ovs{sim, config, 7};
  ovs.attach_port(1, h1, nullptr);
  ovs.connect(channel);
  std::optional<Error> error;
  channel.set_controller_handler([&](const OfMessage& m, std::size_t) {
    if (const auto* e = std::get_if<Error>(&m)) error = *e;
  });
  PacketOut po;
  po.xid = 77;
  po.buffer_id = 0xdead;  // never allocated
  po.actions = output_to(1);
  channel.send_from_controller(po);
  sim.run();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->xid, 77u);
  EXPECT_EQ(error->type, ErrorType::BadRequest);
  EXPECT_EQ(error->code, ErrorCode::BufferUnknown);
  EXPECT_FALSE(error->data.empty());  // carries the offending message prefix
  EXPECT_LE(error->data.size(), 64u);
  EXPECT_EQ(ovs.counters().unknown_buffer_releases, 1u);
}

TEST(ErrorMessage, ControllerCountsErrors) {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  Channel channel{sim, control.forward(), control.reverse()};
  ctrl::Controller controller{sim, ctrl::ControllerConfig{}, 42};
  controller.connect(channel);
  channel.send_from_switch(Error{});
  sim.run();
  EXPECT_EQ(controller.counters().errors_seen, 1u);
}

}  // namespace
}  // namespace sdnbuf::of

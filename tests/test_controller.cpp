// Unit tests for the controller: MAC learning, flood vs forward decisions,
// flow_mod parameters, buffer_id piggybacking, response ordering, echo
// handling, and per-message-size processing costs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "controller/controller.hpp"
#include "net/link.hpp"
#include "openflow/channel.hpp"

namespace sdnbuf::ctrl {
namespace {

net::Packet flow_packet(std::uint32_t flow, std::uint16_t src_mac_idx = 1,
                        std::uint16_t dst_mac_idx = 2) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(src_mac_idx),
                                net::MacAddress::from_index(dst_mac_idx),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, 1000);
  p.flow_id = flow;
  return p;
}

of::PacketIn make_packet_in(const net::Packet& p, std::uint16_t in_port, std::uint32_t buffer_id,
                            std::size_t data_bytes, std::uint32_t xid) {
  of::PacketIn pi;
  pi.xid = xid;
  pi.buffer_id = buffer_id;
  pi.total_len = static_cast<std::uint16_t>(p.frame_size);
  pi.in_port = in_port;
  pi.data = p.serialize(data_bytes);
  return pi;
}

struct ControllerTest : ::testing::Test {
  sim::Simulator sim;
  net::DuplexLink link{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  of::Channel channel{sim, link.forward(), link.reverse()};
  std::vector<of::OfMessage> to_switch;

  std::unique_ptr<Controller> made;

  Controller& make(ControllerConfig config = {}) {
    made = std::make_unique<Controller>(sim, std::move(config), 42);
    made->connect(channel);
    channel.set_switch_handler(
        [this](const of::OfMessage& m, std::size_t) { to_switch.push_back(m); });
    return *made;
  }
};

TEST_F(ControllerTest, UnknownDestinationFloods) {
  Controller& c = make();
  channel.send_from_switch(make_packet_in(flow_packet(0), 1, of::kNoBuffer, 1000, 5));
  sim.run();
  ASSERT_EQ(to_switch.size(), 1u);
  const auto& po = std::get<of::PacketOut>(to_switch[0]);
  ASSERT_EQ(po.actions.size(), 1u);
  EXPECT_EQ(std::get<of::OutputAction>(po.actions[0]).port, of::kPortFlood);
  EXPECT_EQ(po.xid, 5u);
  EXPECT_FALSE(po.data.empty());  // no-buffer: the frame travels back
  EXPECT_EQ(c.counters().floods, 1u);
  EXPECT_EQ(c.counters().flow_mods_sent, 0u);  // no rule for unknown dst
}

TEST_F(ControllerTest, LearnsSourceMacFromPacketIn) {
  Controller& c = make();
  channel.send_from_switch(make_packet_in(flow_packet(0, 1, 2), 3, of::kNoBuffer, 1000, 1));
  sim.run();
  const auto port = c.lookup_mac(net::MacAddress::from_index(1));
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, 3);
  EXPECT_EQ(c.mac_table_size(), 1u);
}

TEST_F(ControllerTest, KnownDestinationInstallsRuleAndForwards) {
  Controller& c = make();
  c.learn(net::MacAddress::from_index(2), 2);
  channel.send_from_switch(make_packet_in(flow_packet(7), 1, of::kNoBuffer, 1000, 9));
  sim.run();
  ASSERT_EQ(to_switch.size(), 2u);
  const auto& fm = std::get<of::FlowMod>(to_switch[0]);  // flow_mod first
  EXPECT_EQ(fm.command, of::FlowModCommand::Add);
  EXPECT_EQ(fm.idle_timeout_s, 5);
  EXPECT_EQ(fm.priority, 100);
  EXPECT_EQ(fm.xid, 9u);
  EXPECT_EQ(fm.buffer_id, of::kNoBuffer);
  EXPECT_TRUE(fm.flags & of::kFlowModSendFlowRem);
  // The rule matches exactly the miss-match packet.
  EXPECT_TRUE(fm.match.matches(flow_packet(7), 1));
  EXPECT_FALSE(fm.match.matches(flow_packet(8), 1));
  const auto& po = std::get<of::PacketOut>(to_switch[1]);
  EXPECT_EQ(std::get<of::OutputAction>(po.actions[0]).port, 2);
  EXPECT_EQ(po.data.size(), 1000u);
}

TEST_F(ControllerTest, PiggybackPutsBufferIdInFlowMod) {
  ControllerConfig piggy_config;
  piggy_config.piggyback_buffer_id = true;
  Controller& c = make(std::move(piggy_config));
  c.learn(net::MacAddress::from_index(2), 2);
  channel.send_from_switch(make_packet_in(flow_packet(7), 1, 1234, 128, 9));
  sim.run();
  ASSERT_EQ(to_switch.size(), 1u);  // single message: flow_mod carries the id
  const auto& fm = std::get<of::FlowMod>(to_switch[0]);
  EXPECT_EQ(fm.buffer_id, 1234u);
  EXPECT_EQ(c.counters().pkt_outs_sent, 0u);
}

TEST_F(ControllerTest, NoPiggybackSendsFlowModThenPacketOut) {
  Controller& c = make();  // piggyback defaults off (Algorithm 2 shape)
  c.learn(net::MacAddress::from_index(2), 2);
  channel.send_from_switch(make_packet_in(flow_packet(7), 1, 1234, 128, 9));
  sim.run();
  ASSERT_EQ(to_switch.size(), 2u);
  const auto& fm = std::get<of::FlowMod>(to_switch[0]);
  EXPECT_EQ(fm.buffer_id, of::kNoBuffer);
  const auto& po = std::get<of::PacketOut>(to_switch[1]);
  EXPECT_EQ(po.buffer_id, 1234u);
  EXPECT_TRUE(po.data.empty());  // buffered: only the reference travels
}

TEST_F(ControllerTest, InstallRulesDisabledSendsOnlyPacketOut) {
  ControllerConfig config;
  config.install_rules = false;
  Controller& c = make(std::move(config));
  c.learn(net::MacAddress::from_index(2), 2);
  channel.send_from_switch(make_packet_in(flow_packet(1), 1, of::kNoBuffer, 1000, 2));
  sim.run();
  ASSERT_EQ(to_switch.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<of::PacketOut>(to_switch[0]));
}

TEST_F(ControllerTest, EchoRequestAnswered) {
  make();
  channel.send_from_switch(of::EchoRequest{77});
  sim.run();
  ASSERT_EQ(to_switch.size(), 1u);
  EXPECT_EQ(std::get<of::EchoReply>(to_switch[0]).xid, 77u);
}

TEST_F(ControllerTest, FlowRemovedCounted) {
  Controller& c = make();
  channel.send_from_switch(of::FlowRemoved{});
  sim.run();
  EXPECT_EQ(c.counters().flow_removed_seen, 1u);
}

TEST_F(ControllerTest, MulticastSourceNotLearned) {
  Controller& c = make();
  auto p = flow_packet(0);
  p.eth.src = net::MacAddress::broadcast();
  channel.send_from_switch(make_packet_in(p, 1, of::kNoBuffer, 1000, 1));
  sim.run();
  EXPECT_EQ(c.mac_table_size(), 0u);
}

TEST_F(ControllerTest, GarbagePacketInCountsParseFailure) {
  Controller& c = make();
  of::PacketIn pi;
  pi.data.assign(64, 0);
  pi.data[12] = 0x08;  // claims IPv4 but the header is garbage
  channel.send_from_switch(pi);
  sim.run();
  EXPECT_EQ(c.counters().parse_failures, 1u);
  EXPECT_TRUE(to_switch.empty());
}

TEST_F(ControllerTest, FullFramePacketInCostsMoreCpu) {
  Controller& c = make();
  c.learn(net::MacAddress::from_index(2), 2);
  channel.send_from_switch(make_packet_in(flow_packet(0), 1, of::kNoBuffer, 1000, 1));
  sim.run();
  const auto busy_full = c.cpu().busy_time();
  c.cpu().reset_stats();
  channel.send_from_switch(make_packet_in(flow_packet(1), 1, 42, 128, 2));
  sim.run();
  const auto busy_buffered = c.cpu().busy_time();
  // The per-byte parse/encode costs make the full-frame request much dearer.
  EXPECT_GT(busy_full.ns(), busy_buffered.ns() * 2);
}

TEST_F(ControllerTest, CountersTrackRequestKinds) {
  Controller& c = make();
  c.learn(net::MacAddress::from_index(2), 2);
  channel.send_from_switch(make_packet_in(flow_packet(0), 1, of::kNoBuffer, 1000, 1));
  auto resend = make_packet_in(flow_packet(1), 1, 42, 128, 2);
  resend.reason = of::PacketInReason::FlowResend;
  channel.send_from_switch(resend);
  sim.run();
  EXPECT_EQ(c.counters().pkt_ins_handled, 2u);
  EXPECT_EQ(c.counters().full_frame_pkt_ins, 1u);
  EXPECT_EQ(c.counters().resend_pkt_ins, 1u);
}

TEST_F(ControllerTest, SecondFlowSameHostsReusesLearning) {
  Controller& c = make();
  c.learn(net::MacAddress::from_index(2), 2);
  channel.send_from_switch(make_packet_in(flow_packet(0), 1, of::kNoBuffer, 1000, 1));
  channel.send_from_switch(make_packet_in(flow_packet(1), 1, of::kNoBuffer, 1000, 2));
  sim.run();
  // Each flow gets its own rule + packet_out: micro-flow granularity.
  EXPECT_EQ(c.counters().flow_mods_sent, 2u);
  EXPECT_EQ(c.counters().pkt_outs_sent, 2u);
  EXPECT_EQ(c.mac_table_size(), 2u);
}

}  // namespace
}  // namespace sdnbuf::ctrl

// Tests for the TimeSeries gauge recorder and its integration with the
// occupancy tracker, plus the controller's rule-aggregation option.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "metrics/occupancy.hpp"
#include "metrics/time_series.hpp"

namespace sdnbuf::metrics {
namespace {

using sim::SimTime;

TEST(TimeSeries, RecordsInOrder) {
  TimeSeries ts;
  ts.record(SimTime::milliseconds(1), 1.0);
  ts.record(SimTime::milliseconds(2), 3.0);
  ts.record(SimTime::milliseconds(2), 2.0);  // same timestamp allowed
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.front().value, 1.0);
  EXPECT_EQ(ts.back().value, 2.0);
}

TEST(TimeSeries, ValueAtIsStepFunction) {
  TimeSeries ts;
  ts.record(SimTime::milliseconds(10), 5.0);
  ts.record(SimTime::milliseconds(20), 9.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::milliseconds(5), -1.0), -1.0);  // before first
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::milliseconds(10)), 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::milliseconds(15)), 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::milliseconds(20)), 9.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(1)), 9.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  ts.record(SimTime::zero(), 0.0);
  ts.record(SimTime::seconds(1), 10.0);
  // [0,1): 0; [1,2): 10 -> mean 5 over [0,2).
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(SimTime::zero(), SimTime::seconds(2)), 5.0);
  // Over [1,2) only: constant 10.
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(SimTime::seconds(1), SimTime::seconds(2)), 10.0);
}

TEST(TimeSeries, ResampleMaxPreservesPeaks) {
  TimeSeries ts;
  ts.record(SimTime::milliseconds(1), 1.0);
  ts.record(SimTime::milliseconds(2), 100.0);  // short spike
  ts.record(SimTime::milliseconds(3), 2.0);
  const auto buckets = ts.resample_max(SimTime::zero(), SimTime::milliseconds(10), 2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].value, 100.0);  // the spike survives resampling
  EXPECT_DOUBLE_EQ(buckets[1].value, 2.0);
}

TEST(TimeSeries, CsvOutput) {
  TimeSeries ts;
  ts.record(SimTime::milliseconds(1), 4.0);
  std::ostringstream os;
  ts.write_csv(os, "units");
  EXPECT_NE(os.str().find("t_ms,units"), std::string::npos);
  EXPECT_NE(os.str().find("1,4"), std::string::npos);
}

TEST(TimeSeries, SummaryOverValues) {
  TimeSeries ts;
  for (int i = 1; i <= 4; ++i) ts.record(SimTime::milliseconds(i), i);
  EXPECT_DOUBLE_EQ(ts.value_summary().mean(), 2.5);
  EXPECT_DOUBLE_EQ(ts.value_summary().max(), 4.0);
}

TEST(OccupancyTracker, MirrorsIntoSeries) {
  OccupancyTracker occ{SimTime::zero()};
  TimeSeries series;
  occ.set_series(&series);
  occ.increment(SimTime::milliseconds(1));
  occ.increment(SimTime::milliseconds(2));
  occ.decrement(SimTime::milliseconds(3));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.points()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(series.points()[1].value, 2.0);
  EXPECT_DOUBLE_EQ(series.points()[2].value, 1.0);
}

// --- controller rule aggregation ([16]-style) ---

TEST(RuleAggregation, OneRuleCoversManyFlows) {
  // Exact-match rules: one miss per flow. With /24 source aggregation, the
  // first miss installs a rule covering the whole forged-source block.
  core::ExperimentConfig exact;
  exact.mode = sw::BufferMode::PacketGranularity;
  exact.rate_mbps = 20.0;
  exact.n_flows = 200;  // forged sources 10.1.0.1 .. 10.1.0.200
  exact.seed = 3;
  core::ExperimentConfig aggregated = exact;
  aggregated.testbed.controller_config.aggregate_src_bits = 16;  // /16 source block

  const auto r_exact = core::run_experiment(exact);
  const auto r_aggregated = core::run_experiment(aggregated);
  EXPECT_EQ(r_exact.pkt_ins_sent, 200u);
  // A handful of flows miss before the aggregate rule lands; afterwards
  // everything hits it.
  EXPECT_LT(r_aggregated.pkt_ins_sent, 20u);
  EXPECT_TRUE(r_aggregated.drained);
  EXPECT_EQ(r_aggregated.duplicates, 0u);
  EXPECT_LT(r_aggregated.to_controller_bytes, r_exact.to_controller_bytes / 10);
}

}  // namespace
}  // namespace sdnbuf::metrics

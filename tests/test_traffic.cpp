// Unit tests for the traffic generator (pktgen stand-in) and the host sink:
// rates, forged source addresses, emission orders (sequential and the
// paper's cross-sequence batches), metadata stamping, duplicate detection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "host/sink.hpp"
#include "host/synthetic_workload.hpp"
#include "host/traffic_gen.hpp"
#include "util/rng.hpp"

namespace sdnbuf::host {
namespace {

TrafficConfig base_config() {
  TrafficConfig c;
  c.rate_mbps = 100.0;
  c.frame_size = 1000;
  c.src_mac = net::MacAddress::from_index(1);
  c.dst_mac = net::MacAddress::from_index(2);
  c.spacing_jitter = 0.0;  // deterministic spacing for assertions
  return c;
}

TEST(TrafficGen, EmitsExactPacketCount) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 10;
  c.packets_per_flow = 3;
  std::vector<net::Packet> out;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet& p) { out.push_back(p); }};
  gen.start();
  sim.run();
  EXPECT_EQ(out.size(), 30u);
  EXPECT_EQ(gen.packets_emitted(), 30u);
}

TEST(TrafficGen, NominalGapMatchesRate) {
  sim::Simulator sim;
  TrafficConfig c = base_config();  // 1000 B at 100 Mbps = 80 us
  TrafficGenerator gen{sim, c, 1, [](const net::Packet&) {}};
  EXPECT_EQ(gen.nominal_gap(), sim::SimTime::microseconds(80));
  c.rate_mbps = 5.0;  // 1.6 ms
  TrafficGenerator slow{sim, c, 1, [](const net::Packet&) {}};
  EXPECT_EQ(slow.nominal_gap(), sim::SimTime::microseconds(1600));
}

TEST(TrafficGen, DeterministicSpacingWithoutJitter) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 5;
  std::vector<sim::SimTime> times;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet&) { times.push_back(sim.now()); }};
  gen.start();
  sim.run();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], sim::SimTime::microseconds(80));
  }
}

TEST(TrafficGen, JitterVariesSpacingWithinBounds) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 200;
  c.spacing_jitter = 0.1;
  std::vector<sim::SimTime> times;
  TrafficGenerator gen{sim, c, 42, [&](const net::Packet&) { times.push_back(sim.now()); }};
  gen.start();
  sim.run();
  bool varied = false;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap_us = (times[i] - times[i - 1]).us();
    EXPECT_GE(gap_us, 80.0 * 0.9 - 1e-6);
    EXPECT_LE(gap_us, 80.0 * 1.1 + 1e-6);
    if (std::abs(gap_us - 80.0) > 0.5) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(TrafficGen, ForgedSourceAddressesPerFlow) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 50;
  std::set<std::uint32_t> src_ips;
  std::set<net::FlowKey> keys;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet& p) {
                         src_ips.insert(p.ip.src.value());
                         keys.insert(p.flow_key());
                       }};
  gen.start();
  sim.run();
  EXPECT_EQ(src_ips.size(), 50u);  // every flow forges a distinct source IP
  EXPECT_EQ(keys.size(), 50u);
}

TEST(TrafficGen, SequentialOrderGroupsFlows) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 3;
  c.packets_per_flow = 2;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  TrafficGenerator gen{sim, c, 1,
                       [&](const net::Packet& p) { order.emplace_back(p.flow_id, p.seq_in_flow); }};
  gen.start();
  sim.run();
  const std::vector<std::pair<std::uint64_t, std::uint32_t>> expected{
      {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}};
  EXPECT_EQ(order, expected);
}

TEST(TrafficGen, CrossSequenceInterleavesBatch) {
  // The paper's §V.B pattern: batches of 5 flows, packets round-robin.
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.order = EmissionOrder::CrossSequence;
  c.n_flows = 10;
  c.packets_per_flow = 2;
  c.batch_size = 5;
  std::vector<std::uint64_t> flow_order;
  TrafficGenerator gen{sim, c, 1,
                       [&](const net::Packet& p) { flow_order.push_back(p.flow_id); }};
  gen.start();
  sim.run();
  const std::vector<std::uint64_t> expected{
      0, 1, 2, 3, 4, 0, 1, 2, 3, 4,   // batch 1: two rounds of 5 flows
      5, 6, 7, 8, 9, 5, 6, 7, 8, 9};  // batch 2
  EXPECT_EQ(flow_order, expected);
}

TEST(TrafficGen, CrossSequenceSeqNumbersPerFlow) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.order = EmissionOrder::CrossSequence;
  c.n_flows = 5;
  c.packets_per_flow = 4;
  std::map<std::uint64_t, std::vector<std::uint32_t>> seqs;
  TrafficGenerator gen{sim, c, 1,
                       [&](const net::Packet& p) { seqs[p.flow_id].push_back(p.seq_in_flow); }};
  gen.start();
  sim.run();
  ASSERT_EQ(seqs.size(), 5u);
  for (const auto& [flow, seq] : seqs) {
    EXPECT_EQ(seq, (std::vector<std::uint32_t>{0, 1, 2, 3})) << "flow " << flow;
  }
}

TEST(TrafficGen, FlowIdBaseOffsetsMetadata) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 3;
  c.flow_id_base = 1000;
  std::vector<std::uint64_t> ids;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet& p) { ids.push_back(p.flow_id); }};
  gen.start();
  sim.run();
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1000, 1001, 1002}));
}

TEST(TrafficGen, StartDelayAndCompletionCallback) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 2;
  sim::SimTime first_emit;
  sim::SimTime done_at;
  bool first = true;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet&) {
                         if (first) {
                           first_emit = sim.now();
                           first = false;
                         }
                       }};
  gen.start(sim::SimTime::milliseconds(5), [&]() { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(first_emit, sim::SimTime::milliseconds(5));
  EXPECT_EQ(done_at, sim::SimTime::milliseconds(5) + sim::SimTime::microseconds(80));
}

TEST(TrafficGen, CreatedAtStamped) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 2;
  std::vector<sim::SimTime> stamps;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet& p) { stamps.push_back(p.created_at); }};
  gen.start();
  sim.run();
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], sim::SimTime::zero());
  EXPECT_EQ(stamps[1], sim::SimTime::microseconds(80));
}

TEST(TrafficGen, TcpFlowFractionMixesProtocols) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 100;
  c.tcp_flow_fraction = 0.25;
  std::uint64_t tcp = 0;
  std::uint64_t udp = 0;
  std::set<net::FlowKey> keys;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet& p) {
                         (p.ip.protocol == net::kIpProtoTcp ? tcp : udp) += 1;
                         keys.insert(p.flow_key());
                         if (p.ip.protocol == net::kIpProtoTcp) {
                           EXPECT_EQ(p.tcp.flags, net::kTcpAck | net::kTcpPsh);
                         }
                       }};
  gen.start();
  sim.run();
  EXPECT_EQ(tcp, 25u);  // deterministic assignment: 25% of 100 flows
  EXPECT_EQ(udp, 75u);
  EXPECT_EQ(keys.size(), 100u);  // TCP and UDP flows remain distinct 5-tuples
}

TEST(TrafficGen, PureTcpWorkload) {
  sim::Simulator sim;
  TrafficConfig c = base_config();
  c.n_flows = 10;
  c.tcp_flow_fraction = 1.0;
  std::uint64_t tcp = 0;
  TrafficGenerator gen{sim, c, 1, [&](const net::Packet& p) {
                         if (p.ip.protocol == net::kIpProtoTcp) ++tcp;
                       }};
  gen.start();
  sim.run();
  EXPECT_EQ(tcp, 10u);
}

// --- synthetic heavy-tailed workload ---

WorkloadConfig workload_config() {
  WorkloadConfig c;
  c.duration_s = 0.5;
  c.flow_arrival_per_s = 400;
  c.src_mac = net::MacAddress::from_index(1);
  c.dst_mac = net::MacAddress::from_index(2);
  return c;
}

TEST(SyntheticWorkload, ArrivalCountNearPoissonMean) {
  sim::Simulator sim;
  SyntheticWorkload gen{sim, workload_config(), 42, [](const net::Packet&) {}};
  gen.start();
  sim.run();
  // 400/s for 0.5 s -> ~200 flows; allow 4 sigma (sigma = sqrt(200) ~ 14).
  EXPECT_GT(gen.flows_started(), 140u);
  EXPECT_LT(gen.flows_started(), 260u);
  EXPECT_GE(gen.packets_emitted(), gen.flows_started());
}

TEST(SyntheticWorkload, FlowSizesAreBoundedAndHeavyTailed) {
  sim::Simulator sim;
  WorkloadConfig c = workload_config();
  c.duration_s = 5.0;  // plenty of flows for distribution checks
  c.min_packets = 1;
  c.max_packets = 100;
  SyntheticWorkload gen{sim, c, 42, [](const net::Packet&) {}};
  gen.start();
  sim.run();
  const auto& sizes = gen.flow_sizes();
  ASSERT_GT(sizes.count(), 500u);
  EXPECT_GE(sizes.min(), 1.0);
  EXPECT_LE(sizes.max(), 100.0);
  // Heavy tail: the median is tiny but the 99th percentile is large.
  EXPECT_LE(sizes.median(), 3.0);
  EXPECT_GE(sizes.percentile(99), 20.0);
  EXPECT_GT(sizes.mean(), sizes.median());  // right-skewed
}

TEST(SyntheticWorkload, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> emissions;
    SyntheticWorkload gen{sim, workload_config(), seed, [&](const net::Packet& p) {
                            emissions.emplace_back(p.flow_id, p.seq_in_flow);
                          }};
    gen.start();
    sim.run();
    return emissions;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SyntheticWorkload, PerFlowSequenceNumbersAreDense) {
  sim::Simulator sim;
  std::map<std::uint64_t, std::uint32_t> max_seq;
  std::map<std::uint64_t, std::uint32_t> count;
  SyntheticWorkload gen{sim, workload_config(), 13, [&](const net::Packet& p) {
                          max_seq[p.flow_id] = std::max(max_seq[p.flow_id], p.seq_in_flow);
                          ++count[p.flow_id];
                        }};
  gen.start();
  sim.run();
  for (const auto& [flow, n] : count) {
    EXPECT_EQ(n, max_seq[flow] + 1) << "flow " << flow << " has gaps";
  }
}

TEST(SyntheticWorkload, DistinctSourceAddressesPerFlow) {
  sim::Simulator sim;
  std::map<std::uint64_t, std::uint32_t> flow_src;
  SyntheticWorkload gen{sim, workload_config(), 21, [&](const net::Packet& p) {
                          const auto [it, inserted] =
                              flow_src.try_emplace(p.flow_id, p.ip.src.value());
                          if (!inserted) {
                            EXPECT_EQ(it->second, p.ip.src.value());
                          }
                        }};
  gen.start();
  sim.run();
  std::set<std::uint32_t> ips;
  for (const auto& [flow, ip] : flow_src) ips.insert(ip);
  EXPECT_EQ(ips.size(), flow_src.size());
}

// --- bounded-Pareto flow-size distribution ---
//
// draw_bounded_pareto feeds every heavy-tailed workload in the repo
// (SyntheticWorkload and the fabric TrafficMatrixWorkload), so its first
// moment is pinned against the closed form here.

// Mean of the continuous bounded Pareto on [lo, hi] with shape alpha != 1:
//   E[X] = lo^a / (1 - (lo/hi)^a) * a/(a-1) * (lo^(1-a) - hi^(1-a))
double bounded_pareto_mean(double alpha, double lo, double hi) {
  return std::pow(lo, alpha) / (1.0 - std::pow(lo / hi, alpha)) * alpha / (alpha - 1.0) *
         (std::pow(lo, 1.0 - alpha) - std::pow(hi, 1.0 - alpha));
}

TEST(BoundedPareto, EmpiricalMeanMatchesClosedFormAcrossSeeds) {
  struct Case {
    double alpha;
    std::uint32_t lo;
    std::uint32_t hi;
  };
  // The workload defaults (alpha 1.3) at two truncation points, plus a
  // lighter tail away from lo = 1 to exercise the round-to-int path.
  const Case cases[] = {{1.3, 1, 200}, {1.3, 1, 1000}, {2.5, 4, 400}};
  constexpr std::size_t kDraws = 100000;
  for (const auto& c : cases) {
    const double expected = bounded_pareto_mean(c.alpha, c.lo, c.hi);
    for (const std::uint64_t seed : {1ULL, 42ULL, 12345ULL}) {
      util::Rng rng(seed);
      double sum = 0.0;
      for (std::size_t i = 0; i < kDraws; ++i) {
        const std::uint32_t x = draw_bounded_pareto(rng, c.alpha, c.lo, c.hi);
        ASSERT_GE(x, c.lo);
        ASSERT_LE(x, c.hi);
        sum += static_cast<double>(x);
      }
      // 5% band: sampling error (sigma/sqrt(N) is well under 1% of the mean
      // for every case here) plus the bias from rounding draws to integer
      // packet counts (~1-2% when lo = 1, where the density is steepest).
      const double mean = sum / static_cast<double>(kDraws);
      EXPECT_NEAR(mean, expected, 0.05 * expected)
          << "alpha=" << c.alpha << " [" << c.lo << ", " << c.hi << "] seed=" << seed;
    }
  }
}

TEST(BoundedPareto, DegenerateRangeAlwaysReturnsBound) {
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(draw_bounded_pareto(rng, 1.3, 7, 7), 7u);
  }
}

TEST(Sink, CountsAndLatency) {
  sim::Simulator sim;
  HostSink sink{sim};
  net::Packet p = net::make_udp_packet(net::MacAddress::from_index(1),
                                       net::MacAddress::from_index(2),
                                       net::Ipv4Address::from_octets(10, 1, 0, 1),
                                       net::Ipv4Address::from_octets(10, 2, 0, 1), 1, 2, 500);
  p.flow_id = 3;
  p.created_at = sim::SimTime::zero();
  sim.schedule(sim::SimTime::milliseconds(2), [&]() { sink.receive(p); });
  sim.run();
  EXPECT_EQ(sink.packets_received(), 1u);
  EXPECT_EQ(sink.bytes_received(), 500u);
  EXPECT_EQ(sink.last_arrival(), sim::SimTime::milliseconds(2));
  ASSERT_EQ(sink.latency_ms().count(), 1u);
  EXPECT_DOUBLE_EQ(sink.latency_ms().mean(), 2.0);
  EXPECT_EQ(sink.flow_packets(3), 1u);
}

TEST(Sink, DetectsDuplicates) {
  sim::Simulator sim;
  HostSink sink{sim};
  net::Packet p = net::make_udp_packet(net::MacAddress::from_index(1),
                                       net::MacAddress::from_index(2),
                                       net::Ipv4Address::from_octets(10, 1, 0, 1),
                                       net::Ipv4Address::from_octets(10, 2, 0, 1), 1, 2, 500);
  p.flow_id = 1;
  p.seq_in_flow = 0;
  sink.receive(p);
  sink.receive(p);  // duplicate delivery (e.g. flood + rule forward)
  p.seq_in_flow = 1;
  sink.receive(p);  // different packet of the same flow: not a duplicate
  EXPECT_EQ(sink.duplicate_packets(), 1u);
  EXPECT_EQ(sink.flow_packets(1), 3u);
}

TEST(Sink, ResetClearsEverything) {
  sim::Simulator sim;
  HostSink sink{sim};
  net::Packet p = net::make_udp_packet(net::MacAddress::from_index(1),
                                       net::MacAddress::from_index(2),
                                       net::Ipv4Address::from_octets(10, 1, 0, 1),
                                       net::Ipv4Address::from_octets(10, 2, 0, 1), 1, 2, 500);
  sink.receive(p);
  sink.reset();
  EXPECT_EQ(sink.packets_received(), 0u);
  EXPECT_EQ(sink.bytes_received(), 0u);
  EXPECT_EQ(sink.latency_ms().count(), 0u);
}

}  // namespace
}  // namespace sdnbuf::host

// Unit tests for the net library: addresses, header codecs (byte-accurate
// round trips, checksum verification), flow keys, packets, links and taps.
#include <gtest/gtest.h>

#include "net/address.hpp"
#include "net/flow_key.hpp"
#include "net/headers.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sdnbuf::net {
namespace {

TEST(MacAddress, ParseAndFormatRoundTrip) {
  const auto mac = MacAddress::parse("02:00:5e:10:ab:cd");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:5e:10:ab:cd");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ab").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ab:cd:ef").has_value());
  EXPECT_FALSE(MacAddress::parse("not a mac").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ab:1cd").has_value());
}

TEST(MacAddress, BroadcastAndMulticast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  const MacAddress unicast = MacAddress::from_index(3);
  EXPECT_FALSE(unicast.is_broadcast());
  EXPECT_FALSE(unicast.is_multicast());
}

TEST(MacAddress, FromIndexDistinct) {
  EXPECT_NE(MacAddress::from_index(1), MacAddress::from_index(2));
  EXPECT_EQ(MacAddress::from_index(600).to_u64() & 0xffff, 600u);
}

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  const auto ip = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "10.1.2.3");
  EXPECT_EQ(ip->value(), 0x0a010203u);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.300").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").has_value());
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example-style check: the checksum of a buffer with its checksum
  // field filled verifies to zero.
  std::vector<std::uint8_t> buf;
  Ipv4Header h;
  h.total_length = 100;
  h.src = Ipv4Address::from_octets(192, 168, 0, 1);
  h.dst = Ipv4Address::from_octets(192, 168, 0, 2);
  h.encode(buf);
  EXPECT_EQ(internet_checksum(buf), 0);
}

TEST(EthernetHeader, RoundTrip) {
  EthernetHeader h;
  h.src = MacAddress::from_index(1);
  h.dst = MacAddress::from_index(2);
  h.ethertype = kEtherTypeIpv4;
  std::vector<std::uint8_t> buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), EthernetHeader::kSize);
  const auto decoded = EthernetHeader::decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(EthernetHeader, DecodeRejectsTruncated) {
  const std::vector<std::uint8_t> buf(EthernetHeader::kSize - 1, 0);
  EXPECT_FALSE(EthernetHeader::decode(buf).has_value());
}

TEST(Ipv4Header, RoundTrip) {
  Ipv4Header h;
  h.dscp = 0x12;
  h.total_length = 986;
  h.identification = 777;
  h.ttl = 61;
  h.protocol = kIpProtoUdp;
  h.src = Ipv4Address::from_octets(10, 1, 0, 5);
  h.dst = Ipv4Address::from_octets(10, 2, 0, 1);
  std::vector<std::uint8_t> buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), Ipv4Header::kSize);
  const auto decoded = Ipv4Header::decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(Ipv4Header, DecodeRejectsCorruptChecksum) {
  Ipv4Header h;
  h.total_length = 40;
  std::vector<std::uint8_t> buf;
  h.encode(buf);
  buf[14] ^= 0x01;  // flip a source-address bit
  EXPECT_FALSE(Ipv4Header::decode(buf).has_value());
}

TEST(UdpHeader, RoundTrip) {
  UdpHeader h;
  h.src_port = 10001;
  h.dst_port = 9;
  h.length = 966;
  std::vector<std::uint8_t> buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), UdpHeader::kSize);
  const auto decoded = UdpHeader::decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(TcpHeader, RoundTrip) {
  TcpHeader h;
  h.src_port = 43210;
  h.dst_port = 80;
  h.seq = 0x11223344;
  h.ack = 0x55667788;
  h.flags = kTcpSyn | kTcpAck;
  h.window = 8192;
  std::vector<std::uint8_t> buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), TcpHeader::kSize);
  const auto decoded = TcpHeader::decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(FlowKey, EqualityAndHash) {
  FlowKey a{Ipv4Address::from_octets(10, 0, 0, 1), Ipv4Address::from_octets(10, 0, 0, 2), 1000,
            2000, kIpProtoUdp};
  FlowKey b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.src_port = 1001;
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(FlowKey, HashSpreads) {
  // Different flows (the forged-source-IP workload) must hash apart.
  std::set<std::uint64_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const FlowKey k{Ipv4Address{0x0a010001u + i}, Ipv4Address::from_octets(10, 2, 0, 1), 10000,
                    9, kIpProtoUdp};
    hashes.insert(k.hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Packet, MakeUdpConsistentLengths) {
  const auto p = make_udp_packet(MacAddress::from_index(1), MacAddress::from_index(2),
                                 Ipv4Address::from_octets(10, 1, 0, 1),
                                 Ipv4Address::from_octets(10, 2, 0, 1), 10000, 9, 1000);
  EXPECT_EQ(p.frame_size, 1000u);
  EXPECT_EQ(p.ip.total_length, 1000 - EthernetHeader::kSize);
  EXPECT_EQ(p.udp.length, 1000 - EthernetHeader::kSize - Ipv4Header::kSize);
  EXPECT_EQ(p.header_size(), EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize);
}

TEST(Packet, FlowKeyFromHeaders) {
  const auto p = make_udp_packet(MacAddress::from_index(1), MacAddress::from_index(2),
                                 Ipv4Address::from_octets(10, 1, 0, 1),
                                 Ipv4Address::from_octets(10, 2, 0, 1), 10000, 9, 1000);
  const FlowKey k = p.flow_key();
  EXPECT_EQ(k.src_ip, p.ip.src);
  EXPECT_EQ(k.dst_ip, p.ip.dst);
  EXPECT_EQ(k.src_port, 10000);
  EXPECT_EQ(k.dst_port, 9);
  EXPECT_EQ(k.protocol, kIpProtoUdp);
}

TEST(Packet, SerializeParseRoundTripUdp) {
  const auto p = make_udp_packet(MacAddress::from_index(1), MacAddress::from_index(2),
                                 Ipv4Address::from_octets(10, 1, 0, 7),
                                 Ipv4Address::from_octets(10, 2, 0, 1), 12345, 9, 1000);
  const auto wire = p.serialize(p.frame_size);
  EXPECT_EQ(wire.size(), 1000u);
  const auto parsed = Packet::parse(wire, 1000);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth, p.eth);
  EXPECT_EQ(parsed->ip, p.ip);
  EXPECT_EQ(parsed->udp, p.udp);
  EXPECT_EQ(parsed->frame_size, 1000u);
}

TEST(Packet, SerializeParseRoundTripTcp) {
  const auto p = make_tcp_packet(MacAddress::from_index(1), MacAddress::from_index(2),
                                 Ipv4Address::from_octets(10, 1, 0, 7),
                                 Ipv4Address::from_octets(10, 2, 0, 1), 50000, 80, kTcpSyn, 74);
  const auto wire = p.serialize(p.frame_size);
  const auto parsed = Packet::parse(wire, 74);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tcp, p.tcp);
  EXPECT_EQ(parsed->tcp.flags, kTcpSyn);
}

TEST(Packet, TruncatedCaptureStillParses) {
  // miss_send_len-style truncation: 128 bytes still cover all headers.
  const auto p = make_udp_packet(MacAddress::from_index(1), MacAddress::from_index(2),
                                 Ipv4Address::from_octets(10, 1, 0, 7),
                                 Ipv4Address::from_octets(10, 2, 0, 1), 12345, 9, 1000);
  const auto wire = p.serialize(128);
  EXPECT_EQ(wire.size(), 128u);
  const auto parsed = Packet::parse(wire, 1000);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame_size, 1000u);  // total frame size survives truncation
  EXPECT_EQ(parsed->udp.src_port, 12345);
}

TEST(Packet, ParseRejectsGarbage) {
  std::vector<std::uint8_t> garbage(64, 0xaa);
  // Ethertype will be 0xaaaa (non-IP): parses as an L2-only packet.
  const auto l2only = Packet::parse(garbage, 64);
  ASSERT_TRUE(l2only.has_value());
  EXPECT_NE(l2only->eth.ethertype, kEtherTypeIpv4);
  // Claiming IPv4 but with a corrupt header must fail.
  garbage[12] = 0x08;
  garbage[13] = 0x00;
  EXPECT_FALSE(Packet::parse(garbage, 64).has_value());
}

TEST(Link, DeliversAfterSerializationAndPropagation) {
  sim::Simulator sim;
  Link link{sim, "l", 100e6, sim::SimTime::microseconds(20)};
  sim::SimTime delivered_at;
  link.send(1000, [&]() { delivered_at = sim.now(); });
  sim.run();
  // 1000 B at 100 Mbps = 80 us; +20 us propagation.
  EXPECT_EQ(delivered_at, sim::SimTime::microseconds(100));
}

TEST(Link, BackToBackFramesSerialize) {
  sim::Simulator sim;
  Link link{sim, "l", 100e6, sim::SimTime::zero()};
  std::vector<sim::SimTime> arrivals;
  for (int i = 0; i < 3; ++i) link.send(1000, [&]() { arrivals.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::SimTime::microseconds(80));
  EXPECT_EQ(arrivals[1], sim::SimTime::microseconds(160));
  EXPECT_EQ(arrivals[2], sim::SimTime::microseconds(240));
}

TEST(Link, TapCountsBytesAndFrames) {
  sim::Simulator sim;
  Link link{sim, "l", 100e6, sim::SimTime::zero()};
  link.send(600, nullptr);
  link.send(400, nullptr);
  sim.run();
  EXPECT_EQ(link.tap().bytes(), 1000u);
  EXPECT_EQ(link.tap().frames(), 2u);
  // 1000 B over 1 ms = 8 Mbps.
  EXPECT_DOUBLE_EQ(link.tap().load_mbps(sim::SimTime::zero(), sim::SimTime::milliseconds(1)),
                   8.0);
}

TEST(Link, QueueLimitDrops) {
  sim::Simulator sim;
  Link link{sim, "l", 1e6, sim::SimTime::zero()};  // slow: 1 Mbps
  link.set_queue_limit_bytes(1500);
  EXPECT_TRUE(link.send(1000, nullptr));
  EXPECT_TRUE(link.send(500, nullptr));
  EXPECT_FALSE(link.send(1, nullptr));  // over the 1500-byte backlog cap
  EXPECT_EQ(link.drops(), 1u);
  sim.run();
  // After draining, sends succeed again.
  EXPECT_TRUE(link.send(1000, nullptr));
}

TEST(Link, TapResets) {
  sim::Simulator sim;
  Link link{sim, "l", 100e6, sim::SimTime::zero()};
  link.send(100, nullptr);
  sim.run();
  link.tap().reset();
  EXPECT_EQ(link.tap().bytes(), 0u);
  EXPECT_EQ(link.tap().frames(), 0u);
}

TEST(DuplexLink, DirectionsAreIndependent) {
  sim::Simulator sim;
  DuplexLink link{sim, "d", 100e6, sim::SimTime::zero()};
  link.forward().send(100, nullptr);
  sim.run();
  EXPECT_EQ(link.forward().tap().bytes(), 100u);
  EXPECT_EQ(link.reverse().tap().bytes(), 0u);
}

}  // namespace
}  // namespace sdnbuf::net

// Sharded-engine tests: window mechanics of the ShardedSimulator itself,
// the determinism hard contract (bit-identical results at a fixed shard
// count across repeats and thread counts; --shards 1 indistinguishable from
// the legacy sequential engine), cross-shard-count delivered-multiset
// equality on leaf-spine and fat-tree fabrics, per-switch invariant
// registries under sharding, and the per-shard profiler merge.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/fabric_experiment.hpp"
#include "obs/profiler.hpp"
#include "sim/sharded.hpp"
#include "topo/topology.hpp"
#include "verify/invariants.hpp"

namespace sdnbuf {
namespace {

using sim::SimTime;

TEST(ShardedSimulator, CrossShardPostDeliversInOrder) {
  sim::ShardedSimulator eng(2);
  eng.set_lookahead(SimTime::milliseconds(1));
  std::vector<int> order;
  eng.shard(0).schedule_at(SimTime::microseconds(10), [&]() {
    order.push_back(0);
    eng.post(0, 1, eng.shard(0).now() + SimTime::milliseconds(1),
             [&]() { order.push_back(1); });
  });
  eng.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(eng.executed_events(), 2u);
  EXPECT_EQ(eng.messages_posted(), 1u);
  EXPECT_EQ(eng.messages_pending(), 0u);
}

TEST(ShardedSimulator, RunUntilIsStrictlyBefore) {
  sim::ShardedSimulator eng(2);
  eng.set_lookahead(SimTime::milliseconds(1));
  bool ran = false;
  eng.shard(1).schedule_at(SimTime::milliseconds(5), [&]() { ran = true; });
  eng.run_until(SimTime::milliseconds(5));
  EXPECT_FALSE(ran);  // events at the bound belong to the next window
  EXPECT_EQ(eng.now(), SimTime::milliseconds(5));
  EXPECT_EQ(eng.shard(1).now(), SimTime::milliseconds(5));
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(ShardedSimulator, IdleJumpSkipsEmptyWindows) {
  // Two events 10 s apart with a 1 ms lookahead: idle-jumping windows visit
  // each event cluster once instead of burning ~10000 empty windows.
  sim::ShardedSimulator eng(2);
  eng.set_lookahead(SimTime::milliseconds(1));
  int fired = 0;
  eng.shard(0).schedule_at(SimTime::milliseconds(1), [&]() { ++fired; });
  eng.shard(1).schedule_at(SimTime::seconds(10), [&]() { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_LE(eng.windows_run(), 4u);
}

TEST(ShardedSimulator, EqualTimestampDrainOrderIsByShardPair) {
  // Two shards post to shard 2 at the same timestamp: drain order must be
  // fixed by (when, from, to, seq) regardless of posting order.
  for (const bool reverse_posting : {false, true}) {
    sim::ShardedSimulator eng(3);
    eng.set_lookahead(SimTime::milliseconds(1));
    std::vector<int> order;
    const SimTime when = SimTime::milliseconds(2);
    eng.shard(reverse_posting ? 1 : 0)
        .schedule_at(SimTime::milliseconds(1), [&eng, &order, when, reverse_posting]() {
          eng.post(reverse_posting ? 1 : 0, 2, when,
                   [&order, reverse_posting]() { order.push_back(reverse_posting ? 1 : 0); });
        });
    eng.shard(reverse_posting ? 0 : 1)
        .schedule_at(SimTime::milliseconds(1), [&eng, &order, when, reverse_posting]() {
          eng.post(reverse_posting ? 0 : 1, 2, when,
                   [&order, reverse_posting]() { order.push_back(reverse_posting ? 0 : 1); });
        });
    eng.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);  // lower from-shard first, both posting orders
    EXPECT_EQ(order[1], 1);
  }
}

// ---------------------------------------------------------------------------
// Fabric-level determinism contract.

core::FabricExperimentConfig small_experiment(topo::Topology topology, unsigned shards,
                                              unsigned threads) {
  core::FabricExperimentConfig config;
  config.topology = std::move(topology);
  config.routing = core::FabricRouting::TopologyPerHop;
  config.mode = sw::BufferMode::PacketGranularity;
  config.buffer_capacity = 256;
  config.pattern = host::TrafficPattern::Permutation;
  config.duration_s = 0.05;
  config.flow_arrival_per_s = 400.0;
  config.max_packets = 10;
  config.seed = 7;
  config.fabric.shards = shards;
  config.fabric.shard_threads = threads;
  return config;
}

// Every field that must be bit-identical at a fixed shard count, serialized
// with full precision; inequality anywhere shows up as a string diff.
std::string fingerprint(const core::FabricExperimentResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.flows << ' ' << r.packets_sent << ' ' << r.packets_delivered << ' ' << r.duplicates
     << ' ' << r.pkt_ins << ' ' << r.full_frame_pkt_ins << ' ' << r.flow_mods << ' '
     << r.pkt_outs << ' ' << r.path_preinstalls << ' ' << r.control_msgs << ' '
     << r.control_bytes << ' ' << r.buffer_avg_units << ' ' << r.buffer_max_units << ' '
     << r.duration_s << ' ' << r.drained << '\n';
  for (const double v : r.first_packet_ms.values()) os << v << ' ';
  os << '\n';
  for (const auto& [flow, seq] : r.delivered) os << flow << ':' << seq << ' ';
  return os.str();
}

TEST(ShardedFabric, FixedShardCountIsBitIdenticalAcrossRepeats) {
  const auto run = [&]() {
    return core::run_fabric_experiment(
        small_experiment(topo::make_leaf_spine(2, 2, 2), /*shards=*/3, /*threads=*/1));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_TRUE(a.drained);
  EXPECT_GT(a.packets_delivered, 0u);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ShardedFabric, ThreadCountDoesNotChangeResults) {
  std::vector<std::string> prints;
  for (const unsigned threads : {1u, 2u, 4u}) {
    const auto r = core::run_fabric_experiment(
        small_experiment(topo::make_fat_tree(4), /*shards=*/4, threads));
    EXPECT_TRUE(r.drained) << "threads=" << threads;
    prints.push_back(fingerprint(r));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(ShardedFabric, OneShardMatchesLegacySequentialEngine) {
  // shards = 0 is the legacy construction (plain sequential Simulator path);
  // shards = 1 must be indistinguishable from it, field for field.
  const auto legacy = core::run_fabric_experiment(
      small_experiment(topo::make_leaf_spine(2, 2, 2), /*shards=*/0, /*threads=*/1));
  const auto one = core::run_fabric_experiment(
      small_experiment(topo::make_leaf_spine(2, 2, 2), /*shards=*/1, /*threads=*/4));
  EXPECT_TRUE(legacy.drained);
  EXPECT_EQ(fingerprint(legacy), fingerprint(one));
}

// Shard counts change how equal-timestamp events interleave, so byte
// identity is out of scope across counts — but the physics must agree:
// same flows, same emissions, same delivered payload multiset.
void expect_cross_shard_count_agreement(const topo::Topology& topology) {
  std::vector<core::FabricExperimentResult> results;
  for (const unsigned shards : {0u, 2u, 3u}) {
    results.push_back(
        core::run_fabric_experiment(small_experiment(topology, shards, /*threads=*/2)));
    EXPECT_TRUE(results.back().drained) << "shards=" << shards;
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].flows, results[i].flows);
    EXPECT_EQ(results[0].packets_sent, results[i].packets_sent);
    EXPECT_EQ(results[0].delivered, results[i].delivered);
  }
}

TEST(ShardedFabric, ShardCountsAgreeOnLeafSpine) {
  expect_cross_shard_count_agreement(topo::make_leaf_spine(2, 2, 2));
}

TEST(ShardedFabric, ShardCountsAgreeOnFatTree) {
  expect_cross_shard_count_agreement(topo::make_fat_tree(4));
}

TEST(ShardedFabric, InvariantRegistriesStayCleanUnderSharding) {
  const topo::Topology topology = topo::make_fat_tree(4);
  std::vector<std::unique_ptr<verify::InvariantRegistry>> registries;
  core::FabricExperimentConfig config = small_experiment(topology, /*shards=*/3, /*threads=*/4);
  for (unsigned i = 0; i < topology.n_switches(); ++i) {
    registries.push_back(std::make_unique<verify::InvariantRegistry>());
    config.observers.push_back(registries.back().get());
  }
  const auto r = core::run_fabric_experiment(config);
  EXPECT_TRUE(r.drained);
  for (unsigned i = 0; i < registries.size(); ++i) {
    registries[i]->finalize(/*expect_all_delivered=*/true);
    EXPECT_TRUE(registries[i]->ok()) << "switch " << i << "\n" << registries[i]->report();
  }
}

TEST(Profiler, MergeFoldsPerShardRows) {
  obs::EventLoopProfiler a;
  obs::EventLoopProfiler b;
  a.on_event("switch", 0.010);
  a.on_event("switch", 0.002);
  a.on_event("link", 0.001);
  b.on_event("switch", 0.004);
  b.on_event("channel", 0.003);
  a.merge_from(b);
  EXPECT_EQ(a.total_events(), 5u);
  EXPECT_NEAR(a.total_seconds(), 0.020, 1e-12);
  const auto rows = a.table();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].tag, "switch");
  EXPECT_EQ(rows[0].events, 3u);
  EXPECT_NEAR(rows[0].total_s, 0.016, 1e-12);
  EXPECT_NEAR(rows[0].max_s, 0.010, 1e-12);
}

}  // namespace
}  // namespace sdnbuf

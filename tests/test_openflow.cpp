// Unit and property tests for the OpenFlow layer: match semantics, action
// codecs, full message round trips (parameterized sweeps), wire sizes
// against the OF 1.0 structure sizes, and the control channel.
#include <gtest/gtest.h>

#include <set>

#include "net/link.hpp"
#include "openflow/actions.hpp"
#include "openflow/channel.hpp"
#include "openflow/constants.hpp"
#include "openflow/match.hpp"
#include "openflow/messages.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sdnbuf::of {
namespace {

net::Packet sample_packet(std::uint32_t flow = 0) {
  return net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                              net::Ipv4Address{0x0a010001u + flow},
                              net::Ipv4Address::from_octets(10, 2, 0, 1),
                              static_cast<std::uint16_t>(10000 + flow), 9, 1000);
}

TEST(Match, WildcardAllMatchesAnything) {
  const Match m = Match::wildcard_all();
  EXPECT_TRUE(m.matches(sample_packet(0), 1));
  EXPECT_TRUE(m.matches(sample_packet(77), 9));
}

TEST(Match, ExactFromMatchesOnlyThatPacket) {
  const auto p = sample_packet(5);
  const Match m = Match::exact_from(p, 1);
  EXPECT_TRUE(m.matches(p, 1));
  EXPECT_FALSE(m.matches(p, 2));             // different in_port
  EXPECT_FALSE(m.matches(sample_packet(6), 1));  // different flow
}

TEST(Match, SingleFieldWildcards) {
  const auto p = sample_packet(5);
  Match m = Match::exact_from(p, 1);
  m.wildcards |= kWildcardTpSrc;
  auto q = sample_packet(5);
  q.udp.src_port = 999;  // only tp_src differs
  EXPECT_TRUE(m.matches(q, 1));
  q.udp.dst_port = 999;  // now tp_dst differs too
  EXPECT_FALSE(m.matches(q, 1));
}

TEST(Match, Ipv4PrefixWildcards) {
  const auto p = sample_packet(5);
  Match m = Match::exact_from(p, 1);
  m.set_nw_src_ignored_bits(8);  // /24 source match
  auto q = sample_packet(5);
  q.ip.src = net::Ipv4Address{(p.ip.src.value() & 0xffffff00u) | 0x99};
  EXPECT_TRUE(m.matches(q, 1));
  q.ip.src = net::Ipv4Address{p.ip.src.value() ^ 0x00000100u};  // outside the /24
  EXPECT_FALSE(m.matches(q, 1));
}

TEST(Match, IgnoredBits32MeansAnyAddress) {
  const auto p = sample_packet(5);
  Match m = Match::exact_from(p, 1);
  m.set_nw_src_ignored_bits(32);
  auto q = sample_packet(5);
  q.ip.src = net::Ipv4Address::from_octets(1, 2, 3, 4);
  EXPECT_TRUE(m.matches(q, 1));
}

TEST(Match, SubsumesReflexiveAndHierarchy) {
  const auto p = sample_packet(5);
  const Match exact = Match::exact_from(p, 1);
  EXPECT_TRUE(exact.subsumes(exact));
  const Match all = Match::wildcard_all();
  EXPECT_TRUE(all.subsumes(exact));
  EXPECT_FALSE(exact.subsumes(all));
  Match prefix = exact;
  prefix.set_nw_src_ignored_bits(8);
  EXPECT_TRUE(prefix.subsumes(exact));
  EXPECT_FALSE(exact.subsumes(prefix));
}

TEST(Match, EncodedSizeIs40Bytes) {
  std::vector<std::uint8_t> buf;
  Match::exact_from(sample_packet(0), 1).encode(buf);
  EXPECT_EQ(buf.size(), kMatchSize);
}

TEST(Match, RoundTrip) {
  const Match m = Match::exact_from(sample_packet(3), 2);
  std::vector<std::uint8_t> buf;
  m.encode(buf);
  const auto decoded = Match::decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(Actions, EncodedSizes) {
  EXPECT_EQ(encoded_size(Action{OutputAction{1, 0}}), 8u);
  EXPECT_EQ(encoded_size(Action{SetDlDstAction{net::MacAddress::from_index(1)}}), 16u);
  const ActionList list{OutputAction{1, 0}, SetDlSrcAction{net::MacAddress::from_index(2)}};
  EXPECT_EQ(encoded_size(list), 24u);
}

TEST(Actions, RoundTrip) {
  const ActionList list{OutputAction{2, 128}, SetDlSrcAction{net::MacAddress::from_index(7)},
                        SetDlDstAction{net::MacAddress::from_index(8)}};
  std::vector<std::uint8_t> buf;
  encode_actions(list, buf);
  const auto decoded = decode_actions(buf, buf.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, list);
}

TEST(Actions, EmptyListIsDrop) {
  std::vector<std::uint8_t> buf;
  encode_actions({}, buf);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(to_string(ActionList{}), "drop");
}

TEST(Actions, DecodeRejectsMalformed) {
  // Truncated action header.
  const std::vector<std::uint8_t> short_buf{0, 0};
  EXPECT_FALSE(decode_actions(short_buf, 2).has_value());
  // Bad declared length.
  const std::vector<std::uint8_t> bad_len{0, 0, 0, 3};
  EXPECT_FALSE(decode_actions(bad_len, 4).has_value());
  // Unknown action type.
  const std::vector<std::uint8_t> unknown{0xff, 0xff, 0, 8, 0, 0, 0, 0};
  EXPECT_FALSE(decode_actions(unknown, 8).has_value());
}

// --- message round trips ---

void expect_round_trip(const OfMessage& msg) {
  const auto wire = encode_message(msg);
  EXPECT_EQ(wire.size(), encoded_size(msg));
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg) << "type " << msg_type_name(message_type(msg));
}

TEST(Messages, TrivialMessagesRoundTrip) {
  expect_round_trip(Hello{7});
  expect_round_trip(EchoRequest{8});
  expect_round_trip(EchoReply{9});
  expect_round_trip(FeaturesRequest{10});
  expect_round_trip(BarrierRequest{11});
  expect_round_trip(BarrierReply{12});
}

TEST(Messages, HeaderEncodesTypeLengthXid) {
  const auto wire = encode_message(Hello{0xdeadbeef});
  ASSERT_EQ(wire.size(), kHeaderSize);
  EXPECT_EQ(wire[0], kVersion);
  EXPECT_EQ(wire[1], static_cast<std::uint8_t>(MsgType::Hello));
  EXPECT_EQ(wire[2], 0);
  EXPECT_EQ(wire[3], 8);
  EXPECT_EQ(wire[4], 0xde);
  EXPECT_EQ(wire[7], 0xef);
}

TEST(Messages, FeaturesReplyRoundTripWithPorts) {
  FeaturesReply m;
  m.xid = 3;
  m.datapath_id = 0x0102030405060708ULL;
  m.n_buffers = 256;
  m.n_tables = 2;
  m.ports.push_back(PortDesc{1, net::MacAddress::from_index(1), "eth1", 100});
  m.ports.push_back(PortDesc{2, net::MacAddress::from_index(2), "eth2", 100});
  expect_round_trip(m);
  EXPECT_EQ(encoded_size(OfMessage{m}), kFeaturesReplyFixedSize + 2 * kPhyPortSize);
}

TEST(Messages, PacketInFullFrameSize) {
  PacketIn m;
  m.xid = 1;
  m.buffer_id = kNoBuffer;
  m.total_len = 1000;
  m.in_port = 1;
  m.data = sample_packet(0).serialize(1000);
  expect_round_trip(m);
  // 18-byte fixed part + the whole frame: the no-buffer request size.
  EXPECT_EQ(encoded_size(OfMessage{m}), kPacketInFixedSize + 1000);
}

TEST(Messages, PacketInBufferedSize) {
  PacketIn m;
  m.buffer_id = 42;
  m.total_len = 1000;
  m.in_port = 1;
  m.data = sample_packet(0).serialize(kDefaultMissSendLen);
  expect_round_trip(m);
  // The buffered request carries only miss_send_len bytes: 18 + 128.
  EXPECT_EQ(encoded_size(OfMessage{m}), kPacketInFixedSize + kDefaultMissSendLen);
}

TEST(Messages, PacketInReasonPreserved) {
  PacketIn m;
  m.reason = PacketInReason::FlowResend;
  m.data = {1, 2, 3};
  const auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<PacketIn>(*decoded).reason, PacketInReason::FlowResend);
}

TEST(Messages, PacketOutBufferedVsFull) {
  PacketOut buffered;
  buffered.buffer_id = 99;
  buffered.in_port = 1;
  buffered.actions = output_to(2);
  expect_round_trip(buffered);
  EXPECT_EQ(encoded_size(OfMessage{buffered}), kPacketOutFixedSize + 8);

  PacketOut full;
  full.buffer_id = kNoBuffer;
  full.in_port = 1;
  full.actions = output_to(2);
  full.data = sample_packet(0).serialize(1000);
  expect_round_trip(full);
  EXPECT_EQ(encoded_size(OfMessage{full}), kPacketOutFixedSize + 8 + 1000);
}

TEST(Messages, FlowModRoundTrip) {
  FlowMod m;
  m.xid = 5;
  m.match = Match::exact_from(sample_packet(9), 1);
  m.cookie = 0xfeedULL;
  m.command = FlowModCommand::Add;
  m.idle_timeout_s = 5;
  m.hard_timeout_s = 30;
  m.priority = 100;
  m.buffer_id = 1234;
  m.flags = kFlowModSendFlowRem;
  m.actions = output_to(2);
  expect_round_trip(m);
  EXPECT_EQ(encoded_size(OfMessage{m}), kFlowModFixedSize + 8);
}

TEST(Messages, FlowModDeleteRoundTrip) {
  FlowMod m;
  m.command = FlowModCommand::DeleteStrict;
  m.match = Match::wildcard_all();
  m.out_port = kPortNone;
  expect_round_trip(m);
}

TEST(Messages, FlowRemovedRoundTrip) {
  FlowRemoved m;
  m.xid = 6;
  m.match = Match::exact_from(sample_packet(2), 1);
  m.cookie = 42;
  m.priority = 100;
  m.reason = FlowRemovedReason::IdleTimeout;
  m.duration_sec = 12;
  m.duration_nsec = 345;
  m.idle_timeout_s = 5;
  m.packet_count = 99;
  m.byte_count = 99000;
  expect_round_trip(m);
  EXPECT_EQ(encoded_size(OfMessage{m}), kFlowRemovedSize);
}

TEST(Messages, PortStatusRoundTrip) {
  PortStatus m;
  m.xid = 77;
  m.reason = PortStatusReason::Delete;
  m.desc.port_no = 3;
  m.desc.hw_addr = net::MacAddress::from_index(3);
  m.desc.name = "eth3";
  m.desc.curr_speed_mbps = 100;
  m.desc.link_down = true;
  expect_round_trip(m);
  EXPECT_EQ(encoded_size(OfMessage{m}), kPortStatusSize);

  // A recovered port reports with the link-down bit cleared.
  m.reason = PortStatusReason::Add;
  m.desc.link_down = false;
  expect_round_trip(m);
}

TEST(Messages, DecodeRejectsBadInput) {
  EXPECT_FALSE(decode_message(std::vector<std::uint8_t>{}).has_value());
  auto wire = encode_message(Hello{1});
  wire[0] = 0x04;  // wrong version
  EXPECT_FALSE(decode_message(wire).has_value());
  wire = encode_message(Hello{1});
  wire[1] = 200;  // unknown type
  EXPECT_FALSE(decode_message(wire).has_value());
  wire = encode_message(FlowMod{});
  wire.resize(wire.size() - 1);  // truncated
  EXPECT_FALSE(decode_message(wire).has_value());
}

// Property sweep: randomized packet_in/packet_out/flow_mod messages must
// round-trip exactly for a range of sizes and field values.
class CodecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecPropertyTest, RandomizedMessagesRoundTrip) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 50; ++i) {
    PacketIn pi;
    pi.xid = static_cast<std::uint32_t>(rng.next_u64());
    pi.buffer_id = rng.next_below(2) != 0u ? static_cast<std::uint32_t>(rng.next_below(1 << 30))
                                           : kNoBuffer;
    pi.total_len = static_cast<std::uint16_t>(64 + rng.next_below(1436));
    pi.in_port = static_cast<std::uint16_t>(1 + rng.next_below(48));
    pi.reason = rng.next_below(2) != 0u ? PacketInReason::NoMatch : PacketInReason::Action;
    pi.data.resize(rng.next_below(512));
    for (auto& b : pi.data) b = static_cast<std::uint8_t>(rng.next_below(256));
    expect_round_trip(pi);

    PacketOut po;
    po.xid = static_cast<std::uint32_t>(rng.next_u64());
    po.buffer_id = static_cast<std::uint32_t>(rng.next_below(1 << 30));
    po.in_port = static_cast<std::uint16_t>(rng.next_below(48));
    if (rng.next_below(2) != 0u) {
      po.actions = output_to(static_cast<std::uint16_t>(rng.next_below(48)));
    }
    if (rng.next_below(2) != 0u) {
      po.actions.push_back(
          SetDlDstAction{net::MacAddress::from_index(static_cast<std::uint16_t>(
              rng.next_below(100)))});
    }
    expect_round_trip(po);

    FlowMod fm;
    fm.xid = static_cast<std::uint32_t>(rng.next_u64());
    fm.match = Match::exact_from(sample_packet(static_cast<std::uint32_t>(rng.next_below(1000))),
                                 static_cast<std::uint16_t>(1 + rng.next_below(4)));
    fm.cookie = rng.next_u64();
    fm.priority = static_cast<std::uint16_t>(rng.next_below(65536));
    fm.idle_timeout_s = static_cast<std::uint16_t>(rng.next_below(600));
    fm.buffer_id = static_cast<std::uint32_t>(rng.next_below(1 << 30));
    fm.actions = output_to(static_cast<std::uint16_t>(1 + rng.next_below(4)));
    expect_round_trip(fm);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

// Property: subsumption is consistent with matching — if A subsumes B, then
// every packet matching B also matches A.
class SubsumptionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubsumptionPropertyTest, SubsumesImpliesMatchSuperset) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    // Generate B as an exact match on a random packet, then derive A by
    // randomly wildcarding some of B's fields: A must subsume B.
    const auto flow = static_cast<std::uint32_t>(rng.next_below(50));
    const auto port = static_cast<std::uint16_t>(1 + rng.next_below(4));
    const auto p = sample_packet(flow);
    const Match b = Match::exact_from(p, port);
    Match a = b;
    if (rng.next_below(2) != 0u) a.wildcards |= kWildcardInPort;
    if (rng.next_below(2) != 0u) a.wildcards |= kWildcardDlSrc;
    if (rng.next_below(2) != 0u) a.wildcards |= kWildcardTpSrc;
    if (rng.next_below(2) != 0u) a.set_nw_src_ignored_bits(static_cast<int>(rng.next_below(33)));
    if (rng.next_below(2) != 0u) a.set_nw_dst_ignored_bits(static_cast<int>(rng.next_below(33)));
    ASSERT_TRUE(a.subsumes(b)) << a.to_string() << " vs " << b.to_string();
    // The original packet matches B exactly, so it must match A too.
    ASSERT_TRUE(b.matches(p, port));
    ASSERT_TRUE(a.matches(p, port));
    // Random perturbations that still match B must match A.
    auto q = p;
    if (rng.next_below(2) != 0u) {
      // Perturb a field that A wildcards but B does not: now q may stop
      // matching B; whenever it still matches B it must match A.
      q.udp.src_port = static_cast<std::uint16_t>(rng.next_below(65536));
    }
    if (b.matches(q, port)) {
      ASSERT_TRUE(a.matches(q, port));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsumptionPropertyTest, ::testing::Values(11, 22, 33));

// Fuzz: feeding random bytes to the decoder must never crash and only ever
// return nullopt or a message that re-encodes.
class DecodeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzzTest, RandomBytesAreHandledSafely) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> bytes(rng.next_below(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto decoded = decode_message(bytes);
    if (decoded) {
      // Whatever decoded must be re-encodable without crashing.
      const auto wire = encode_message(*decoded);
      EXPECT_GE(wire.size(), kHeaderSize);
    }
  }
}

TEST_P(DecodeFuzzTest, BitFlippedValidMessagesAreHandledSafely) {
  util::Rng rng{GetParam() * 7 + 1};
  PacketIn pi;
  pi.buffer_id = 42;
  pi.total_len = 1000;
  pi.data = sample_packet(1).serialize(128);
  const auto original = encode_message(pi);
  for (int i = 0; i < 500; ++i) {
    auto wire = original;
    // Flip 1-4 random bits.
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      wire[rng.next_below(wire.size())] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    const auto decoded = decode_message(wire);  // must not crash
    (void)decoded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest, ::testing::Values(101, 202, 303));

// --- channel ---

struct ChannelFixture : ::testing::Test {
  sim::Simulator sim;
  net::DuplexLink link{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  Channel channel{sim, link.forward(), link.reverse()};
};

TEST_F(ChannelFixture, DeliversDecodedMessageToController) {
  std::optional<OfMessage> received;
  std::size_t wire_bytes = 0;
  channel.set_controller_handler([&](const OfMessage& m, std::size_t bytes) {
    received = m;
    wire_bytes = bytes;
  });
  PacketIn pi;
  pi.xid = 77;
  pi.data = {1, 2, 3};
  const std::size_t sent_bytes = channel.send_from_switch(pi);
  sim.run();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(std::get<PacketIn>(*received).xid, 77u);
  EXPECT_EQ(wire_bytes, sent_bytes);
  EXPECT_EQ(sent_bytes, encoded_size(OfMessage{pi}) + kTransportOverhead);
}

TEST_F(ChannelFixture, DirectionsAreSeparate) {
  int to_controller = 0;
  int to_switch = 0;
  channel.set_controller_handler([&](const OfMessage&, std::size_t) { ++to_controller; });
  channel.set_switch_handler([&](const OfMessage&, std::size_t) { ++to_switch; });
  channel.send_from_switch(Hello{1});
  channel.send_from_controller(Hello{2});
  channel.send_from_controller(EchoRequest{3});
  sim.run();
  EXPECT_EQ(to_controller, 1);
  EXPECT_EQ(to_switch, 2);
}

TEST_F(ChannelFixture, FifoOrderPreserved) {
  std::vector<MsgType> order;
  channel.set_switch_handler(
      [&](const OfMessage& m, std::size_t) { order.push_back(message_type(m)); });
  channel.send_from_controller(FlowMod{});
  channel.send_from_controller(PacketOut{});
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], MsgType::FlowMod);
  EXPECT_EQ(order[1], MsgType::PacketOut);
}

TEST_F(ChannelFixture, CountersTrackTypeAndBytes) {
  channel.set_controller_handler([](const OfMessage&, std::size_t) {});
  channel.send_from_switch(PacketIn{});
  channel.send_from_switch(PacketIn{});
  channel.send_from_switch(Hello{});
  sim.run();
  const auto& c = channel.to_controller_counters();
  EXPECT_EQ(c.count(MsgType::PacketIn), 2u);
  EXPECT_EQ(c.count(MsgType::Hello), 1u);
  EXPECT_EQ(c.total_count(), 3u);
  EXPECT_EQ(c.bytes(MsgType::Hello), kHeaderSize + kTransportOverhead);
  EXPECT_EQ(c.total_bytes(),
            2 * (kPacketInFixedSize + kTransportOverhead) + kHeaderSize + kTransportOverhead);
}

TEST_F(ChannelFixture, XidsAreUnique) {
  std::set<std::uint32_t> xids;
  for (int i = 0; i < 1000; ++i) xids.insert(channel.next_xid());
  EXPECT_EQ(xids.size(), 1000u);
}

}  // namespace
}  // namespace sdnbuf::of

// Tests for the observability layer (src/obs): histogram correctness
// against exact percentiles, registry snapshots and polls, the event-loop
// profiler, flow tracing span balance with the DelayRecorder cross-check,
// deterministic sampling, and the no-perturbation contract (obs-on runs are
// bit-identical to obs-off runs of the same seed).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "metrics/delay_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace sdnbuf;

namespace {

sim::SimTime ms(long long v) { return sim::SimTime::milliseconds(v); }

core::ExperimentConfig small_experiment(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.mode = sw::BufferMode::PacketGranularity;
  config.buffer_capacity = 64;
  config.rate_mbps = 50.0;
  config.frame_size = 1000;
  config.n_flows = 200;
  config.packets_per_flow = 1;
  config.seed = seed;
  return config;
}

}  // namespace

// --- Histogram -------------------------------------------------------------

TEST(Histogram, BucketBoundsFollowLog2Layout) {
  const double unit = 2.0;
  EXPECT_EQ(obs::Histogram::lower_bound(0, unit), 0.0);
  EXPECT_EQ(obs::Histogram::upper_bound(0, unit), 2.0);
  EXPECT_EQ(obs::Histogram::lower_bound(1, unit), 2.0);
  EXPECT_EQ(obs::Histogram::upper_bound(1, unit), 4.0);
  EXPECT_EQ(obs::Histogram::lower_bound(5, unit), 32.0);
  EXPECT_EQ(obs::Histogram::upper_bound(5, unit), 64.0);
}

// The headline correctness check: log2-bucket quantile estimates stay within
// a factor of 2 (the bucket width) of the exact util::Samples percentiles,
// on a skewed distribution like the ones the instruments see.
TEST(Histogram, QuantilesWithinFactorTwoOfExactPercentiles) {
  // Unit well below the smallest tested percentile: the factor-2 error bound
  // only holds above the first bucket (values in [0, unit) have unbounded
  // relative error by construction).
  obs::Histogram hist{0.05};
  util::Samples exact;
  util::Rng rng{42};
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.lognormal(2.0, 1.0);
    hist.record(v);
    exact.add(v);
  }
  ASSERT_EQ(hist.count(), exact.count());
  EXPECT_NEAR(hist.mean(), exact.mean(), 1e-9);
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double estimate = hist.quantile(p);
    const double truth = exact.percentile(p);
    ASSERT_GT(truth, 0.0);
    EXPECT_GE(estimate, truth / 2.0) << "p" << p;
    EXPECT_LE(estimate, truth * 2.0) << "p" << p;
  }
  // Quantiles clamp into the observed range.
  EXPECT_GE(hist.quantile(0.0), hist.min());
  EXPECT_LE(hist.quantile(100.0), hist.max());
}

TEST(Histogram, OverflowBucketAbsorbsHugeValues) {
  obs::Histogram hist{1.0};
  hist.record(10.0);
  hist.record(1e300);  // far beyond the last bucket's lower bound
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.overflow_count(), 1u);
  // Overflow never fabricates values beyond the observed max.
  EXPECT_LE(hist.quantile(99.0), hist.max());
  EXPECT_EQ(hist.max(), 1e300);
}

TEST(Histogram, MergeAndResetBehave) {
  obs::Histogram a{1.0};
  obs::Histogram b{1.0};
  for (int i = 1; i <= 100; ++i) a.record(double(i));
  for (int i = 101; i <= 200; ++i) b.record(double(i));
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 200.0);
  EXPECT_NEAR(a.sum(), 201.0 * 100.0, 1e-9);
  const double median = a.quantile(50.0);
  EXPECT_GE(median, 50.0);
  EXPECT_LE(median, 200.0);

  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.quantile(50.0), 0.0);
  EXPECT_EQ(a.sum(), 0.0);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateSharesInstrumentsByName) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("x");
  obs::Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
  obs::Histogram& h1 = reg.histogram("h", 2.0);
  obs::Histogram& h2 = reg.histogram("h");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.unit(), 2.0);
}

TEST(MetricsRegistry, SnapshotsRecordCountersGaugesAndPolls) {
  obs::MetricsRegistry reg;
  obs::Counter& events = reg.counter("events");
  obs::Gauge& depth = reg.gauge("depth");
  double polled = 7.0;
  reg.register_poll("polled", [&polled]() { return polled; });

  events.add(5);
  depth.set(2.5);
  reg.take_snapshot(ms(10));
  events.add(5);
  depth.set(4.0);
  polled = 9.0;
  reg.take_snapshot(ms(20));

  ASSERT_EQ(reg.snapshot_count(), 2u);
  EXPECT_EQ(reg.snapshot_time(0), ms(10));
  EXPECT_EQ(reg.snapshot_time(1), ms(20));
  EXPECT_EQ(reg.snapshot_value(0, "events"), 5.0);
  EXPECT_EQ(reg.snapshot_value(1, "events"), 10.0);  // cumulative
  EXPECT_EQ(reg.snapshot_value(0, "depth"), 2.5);
  EXPECT_EQ(reg.snapshot_value(1, "depth"), 4.0);
  EXPECT_EQ(reg.snapshot_value(0, "polled"), 7.0);
  EXPECT_EQ(reg.snapshot_value(1, "polled"), 9.0);
  EXPECT_FALSE(reg.snapshot_value(0, "nope").has_value());

  reg.set_meta("label", "test");
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"polled\""), std::string::npos);
  EXPECT_NE(json.find("\"label\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

TEST(MetricsSnapshotter, TicksAtTheConfiguredInterval) {
  sim::Simulator sim;
  obs::MetricsRegistry reg;
  reg.counter("c");
  obs::MetricsSnapshotter snap{sim, reg, ms(10)};
  snap.start();  // immediate snapshot at t=0
  sim.run_until(ms(35));
  snap.stop();
  sim.run();  // must terminate: the recurring tick was cancelled
  EXPECT_EQ(reg.snapshot_count(), 4u);  // t = 0, 10, 20, 30
}

// --- EventLoopProfiler -----------------------------------------------------

TEST(EventLoopProfiler, AttributesEventsToOutermostTag) {
  sim::Simulator sim;
  obs::EventLoopProfiler prof;
  sim.set_profile_sink(&prof);
  sim.schedule(ms(1), []() { sim::ScopedProfileTag tag{"alpha"}; });
  sim.schedule(ms(2), []() {
    sim::ScopedProfileTag outer{"outer"};
    { sim::ScopedProfileTag inner{"inner"}; }  // nested tags do not re-attribute
  });
  sim.schedule(ms(3), []() {});  // untagged
  sim.run();

  EXPECT_EQ(prof.total_events(), 3u);
  const auto rows = prof.table();
  bool saw_alpha = false;
  bool saw_outer = false;
  bool saw_inner = false;
  bool saw_untagged = false;
  for (const auto& row : rows) {
    if (row.tag == "alpha") saw_alpha = true;
    if (row.tag == "outer") saw_outer = true;
    if (row.tag == "inner") saw_inner = true;
    if (row.tag == "(untagged)") saw_untagged = true;
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_outer);
  EXPECT_FALSE(saw_inner);
  EXPECT_TRUE(saw_untagged);

  std::ostringstream report;
  prof.write_report(report);
  EXPECT_NE(report.str().find("alpha"), std::string::npos);

  prof.reset();
  EXPECT_EQ(prof.total_events(), 0u);
}

// --- FlowTracer ------------------------------------------------------------

TEST(FlowTracer, SamplingIsDeterministicAndSeeded) {
  obs::TraceWriter w1;
  obs::TraceWriter w2;
  obs::TraceWriter w3;
  obs::FlowTracer t1{w1, 7, 4};
  obs::FlowTracer t2{w2, 7, 4};
  obs::FlowTracer t3{w3, 8, 4};
  std::size_t sampled = 0;
  bool seeds_differ = false;
  for (std::uint64_t flow = 0; flow < 1000; ++flow) {
    EXPECT_EQ(t1.sampled(flow), t2.sampled(flow));
    if (t1.sampled(flow) != t3.sampled(flow)) seeds_differ = true;
    if (t1.sampled(flow)) ++sampled;
  }
  // Roughly 1-in-4; generous bounds keep this hash-stable, not flaky.
  EXPECT_GT(sampled, 100u);
  EXPECT_LT(sampled, 500u);
  EXPECT_TRUE(seeds_differ);
  EXPECT_FALSE(t1.sampled(metrics::kUntrackedFlow));  // warm-up never traced
}

// End-to-end: trace every flow of a real run; spans must balance, and every
// DelayRecorder-completed flow must have a matched packet_in/response span.
TEST(FlowTracer, SpansBalanceAndCoverCompletedFlows) {
  obs::TraceWriter writer;
  obs::FlowTracer tracer{writer, 1, 1};
  core::ExperimentConfig config = small_experiment(5);
  config.tracer = &tracer;
  const core::ExperimentResult result = core::run_experiment(config);

  ASSERT_TRUE(result.drained);
  ASSERT_GT(result.flows_complete, 0u);
  EXPECT_EQ(writer.begin_count(), writer.end_count());
  EXPECT_GE(tracer.control_spans_opened(), tracer.control_spans_answered());
  EXPECT_GE(tracer.control_spans_answered(), result.flows_complete);

  std::ostringstream out;
  writer.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pktin_rtt\""), std::string::npos);
  EXPECT_NE(json.find("\"transit\""), std::string::npos);
  EXPECT_NE(json.find("\"unit_resident\""), std::string::npos);
}

// --- The no-perturbation contract ------------------------------------------

// Attaching every obs layer must not change a single simulated outcome:
// obs-on and obs-off runs of the same seed agree bit-for-bit.
TEST(Observability, ObsOnRunIsBitIdenticalToObsOff) {
  const core::ExperimentResult plain = core::run_experiment(small_experiment(3));

  obs::MetricsRegistry registry;
  obs::TraceWriter trace_writer;
  obs::FlowTracer tracer{trace_writer, 3, 2};
  obs::EventLoopProfiler profiler;
  core::ExperimentConfig config = small_experiment(3);
  config.metrics = &registry;
  config.tracer = &tracer;
  config.profiler = &profiler;
  const core::ExperimentResult observed = core::run_experiment(config);

  EXPECT_EQ(plain.packets_sent, observed.packets_sent);
  EXPECT_EQ(plain.packets_delivered, observed.packets_delivered);
  EXPECT_EQ(plain.pkt_ins_sent, observed.pkt_ins_sent);
  EXPECT_EQ(plain.flow_mods, observed.flow_mods);
  EXPECT_EQ(plain.pkt_outs, observed.pkt_outs);
  EXPECT_EQ(plain.to_controller_msgs, observed.to_controller_msgs);
  EXPECT_EQ(plain.to_switch_msgs, observed.to_switch_msgs);
  EXPECT_EQ(plain.to_controller_bytes, observed.to_controller_bytes);
  EXPECT_EQ(plain.to_switch_bytes, observed.to_switch_bytes);
  EXPECT_EQ(plain.flows_complete, observed.flows_complete);
  EXPECT_EQ(plain.duration_s, observed.duration_s);            // exact doubles
  EXPECT_EQ(plain.to_controller_mbps, observed.to_controller_mbps);
  EXPECT_EQ(plain.buffer_avg_units, observed.buffer_avg_units);
  EXPECT_EQ(plain.buffer_max_units, observed.buffer_max_units);
  EXPECT_EQ(plain.setup_ms.count(), observed.setup_ms.count());
  EXPECT_EQ(plain.setup_ms.mean(), observed.setup_ms.mean());
  EXPECT_EQ(plain.controller_ms.mean(), observed.controller_ms.mean());
  EXPECT_EQ(plain.switch_ms.mean(), observed.switch_ms.mean());
  EXPECT_EQ(plain.forwarding_ms.mean(), observed.forwarding_ms.mean());

  // And the obs side actually observed things.
  EXPECT_GT(registry.snapshot_count(), 0u);
  EXPECT_GT(trace_writer.event_count(), 0u);
  EXPECT_GT(profiler.total_events(), 0u);
  const obs::Histogram* pkt_in = registry.find_histogram("switch.pkt_in_bytes");
  ASSERT_NE(pkt_in, nullptr);
  EXPECT_EQ(pkt_in->count(), plain.pkt_ins_sent);
}

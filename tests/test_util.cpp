// Unit tests for the util library: byte order, RNG determinism and
// distribution sanity, statistics, CSV/table output, CLI parsing, strings.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "util/byte_order.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/small_function.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace sdnbuf::util {
namespace {

TEST(ByteOrder, RoundTrip16) {
  std::vector<std::uint8_t> buf;
  put_be16(buf, 0xabcd);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xab);
  EXPECT_EQ(buf[1], 0xcd);
  EXPECT_EQ(get_be16(buf, 0), 0xabcd);
}

TEST(ByteOrder, RoundTrip32) {
  std::vector<std::uint8_t> buf;
  put_be32(buf, 0xdeadbeef);
  EXPECT_EQ(get_be32(buf, 0), 0xdeadbeefu);
  EXPECT_EQ(buf[0], 0xde);  // big-endian: most significant byte first
}

TEST(ByteOrder, RoundTrip64) {
  std::vector<std::uint8_t> buf;
  put_be64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(get_be64(buf, 0), 0x0123456789abcdefULL);
}

TEST(ByteOrder, OffsetReads) {
  std::vector<std::uint8_t> buf;
  put_be16(buf, 1);
  put_be32(buf, 2);
  put_be16(buf, 3);
  EXPECT_EQ(get_be16(buf, 0), 1);
  EXPECT_EQ(get_be32(buf, 2), 2u);
  EXPECT_EQ(get_be16(buf, 6), 3);
}

TEST(ByteOrder, PadAppendsZeros) {
  std::vector<std::uint8_t> buf{0xff};
  put_pad(buf, 3);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[1], 0);
  EXPECT_EQ(buf[3], 0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng{11};
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng{13};
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng{17};
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedianIsScale) {
  Rng rng{19};
  Samples s;
  for (int i = 0; i < 20000; ++i) s.add(rng.lognormal(3.0, 0.5));
  EXPECT_NEAR(s.median(), 3.0, 0.1);
  EXPECT_GT(s.min(), 0.0);  // lognormal is strictly positive
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{42};
  Rng b = a.split();
  // The split stream must not replay the parent's output.
  Rng a2{42};
  a2.next_u64();  // advance past the split draw
  EXPECT_NE(b.next_u64(), a2.next_u64());
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeMatchesPooled) {
  Rng rng{23};
  Summary all;
  Summary a;
  Summary b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w{os};
  w.row_strings({"a,b", "plain", "say \"hi\""});
  EXPECT_EQ(os.str(), "\"a,b\",plain,\"say \"\"hi\"\"\"\n");
}

TEST(Csv, NumericRows) {
  std::ostringstream os;
  CsvWriter w{os};
  w.header({"x", "y"});
  w.row("label", {1.5});
  const std::string out = os.str();
  EXPECT_NE(out.find("x,y"), std::string::npos);
  EXPECT_NE(out.find("label,1.5"), std::string::npos);
}

TEST(Table, AlignsAndPrints) {
  TableWriter t{"demo"};
  t.set_columns({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(Cli, ParsesAllForms) {
  // Note: `--verbose` is last — a following non-flag token would be consumed
  // as its value (the `--key value` form).
  const char* argv[] = {"prog", "--rate=50", "--flows", "100", "pos", "--verbose"};
  CliFlags flags{6, argv, {"rate", "flows", "verbose"}};
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0), 50.0);
  EXPECT_EQ(flags.get_int("flows", 0), 100);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  const CliFlags flags{2, argv, {"rate"}};
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("bogus"), std::string::npos);
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliFlags flags{1, argv, {"rate"}};
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 7.5), 7.5);
  EXPECT_FALSE(flags.has("rate"));
}

TEST(Strings, RateFormatting) {
  EXPECT_EQ(format_rate_bps(5e6), "5 Mbps");
  EXPECT_EQ(format_rate_bps(1.5e9), "1.5 Gbps");
  EXPECT_EQ(format_rate_bps(800.0), "800 bps");
}

TEST(Strings, DurationFormatting) {
  EXPECT_EQ(format_duration_ns(1'500'000), "1.5 ms");
  EXPECT_EQ(format_duration_ns(2'000), "2 us");
}

TEST(Strings, HexDumpTruncates) {
  const std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(hex_dump(data, 4), "de ad be ef");
  EXPECT_EQ(hex_dump(data, 4, 2), "de ad ...");
}

TEST(SmallFunction, InvokesAndReturnsValue) {
  SmallFunction<int(int)> f([](int x) { return x * 2; });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(21), 42);
}

TEST(SmallFunction, DefaultConstructedIsEmpty) {
  SmallFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SmallFunction, SmallCapturesStayInline) {
  int a = 1, b = 2, c = 3;
  SmallFunction<int(), 64> f([a, b, c]() { return a + b + c; });
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 6);
}

TEST(SmallFunction, OversizedCapturesFallBackToHeap) {
  std::array<char, 128> big{};
  big[0] = 'x';
  SmallFunction<char(), 64> f([big]() { return big[0]; });
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 'x');
}

TEST(SmallFunction, MoveTransfersOwnership) {
  int hits = 0;
  SmallFunction<void()> f([&hits]() { ++hits; });
  SmallFunction<void()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move): asserting moved-from state
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);

  SmallFunction<void()> h;
  h = std::move(g);
  h();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, HoldsMoveOnlyCallable) {
  auto p = std::make_unique<int>(7);
  SmallFunction<int()> f([p = std::move(p)]() { return *p; });
  EXPECT_EQ(f(), 7);
  SmallFunction<int()> g(std::move(f));
  EXPECT_EQ(g(), 7);
}

TEST(SmallFunction, ResetReleasesTheCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  SmallFunction<void()> f([token = std::move(token)]() {});
  EXPECT_FALSE(alive.expired());
  f = nullptr;
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SmallFunction, AssignmentDestroysPreviousCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  SmallFunction<int()> f([token = std::move(token)]() { return 1; });
  f = SmallFunction<int()>([]() { return 2; });
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(f(), 2);
}

TEST(Logging, LogLevelFromNameParsesAllLevels) {
  EXPECT_EQ(log_level_from_name("trace"), LogLevel::Trace);
  EXPECT_EQ(log_level_from_name("debug"), LogLevel::Debug);
  EXPECT_EQ(log_level_from_name("info"), LogLevel::Info);
  EXPECT_EQ(log_level_from_name("warn"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_name("error"), LogLevel::Error);
  EXPECT_EQ(log_level_from_name("off"), LogLevel::Off);
  EXPECT_EQ(log_level_from_name("INFO"), LogLevel::Info);  // case-insensitive
  EXPECT_FALSE(log_level_from_name("verbose").has_value());
  EXPECT_FALSE(log_level_from_name("").has_value());
}

}  // namespace
}  // namespace sdnbuf::util

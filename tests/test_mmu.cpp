// Tests for the shared-memory MMU (DESIGN.md §16): the sharing-policy
// algebra (DT threshold monotonicity and fixed point, delay-driven alpha
// steering), pool/queue accounting in SharedMemoryMmu, pool conservation
// under data-plane faults, the StaticPartition byte-identity contract
// against the MMU-off build, incast absorption by the dynamic policies, and
// the egress high-water reset between experiment repetitions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/fabric_experiment.hpp"
#include "core/fabric_testbed.hpp"
#include "net/link.hpp"
#include "obs/fabric_observatory.hpp"
#include "switchd/egress_scheduler.hpp"
#include "switchd/mmu/mmu.hpp"
#include "switchd/mmu/policy.hpp"
#include "topo/topology.hpp"
#include "verify/invariants.hpp"

using namespace sdnbuf;
using sw::mmu::PoolState;
using sw::mmu::QueueState;

namespace {

// A pool with `used` cells in flight, no reserved minima, no headroom.
PoolState pool_of(std::uint64_t total, std::uint64_t shared_used) {
  PoolState pool;
  pool.pool_cells = total;
  pool.used_cells = shared_used;
  pool.shared_used_cells = shared_used;
  return pool;
}

QueueState queue_of(std::uint64_t cells, double alpha) {
  QueueState q;
  q.cells = cells;
  q.alpha = alpha;
  return q;
}

net::Packet fabric_packet(unsigned src, unsigned dst, std::uint16_t src_port,
                          std::uint64_t flow_id, std::uint32_t frame = 1000) {
  net::Packet p = net::make_udp_packet(
      topo::Topology::host_mac(src), topo::Topology::host_mac(dst),
      topo::Topology::host_ip(src), topo::Topology::host_ip(dst), src_port, 9, frame);
  p.flow_id = flow_id;
  return p;
}

}  // namespace

// --- sharing-policy algebra ---

TEST(PolicyAlgebra, DtThresholdIsMonotoneInAlpha) {
  const auto dt = sw::mmu::make_dynamic_threshold();
  const PoolState pool = pool_of(1024, 256);
  std::uint64_t prev = 0;
  for (const double alpha : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const std::uint64_t t = dt->threshold(queue_of(0, alpha), pool);
    EXPECT_GE(t, prev) << "threshold must not shrink as alpha grows";
    prev = t;
  }
  // And monotone (non-increasing) in shared occupancy at fixed alpha.
  prev = dt->threshold(queue_of(0, 1.0), pool_of(1024, 0));
  for (const std::uint64_t used : {128u, 256u, 512u, 1000u}) {
    const std::uint64_t t = dt->threshold(queue_of(0, 1.0), pool_of(1024, used));
    EXPECT_LE(t, prev) << "threshold must collapse as the pool fills";
    prev = t;
  }
}

TEST(PolicyAlgebra, DtFixedPointIsAlphaShareOfThePool) {
  // Single hot queue, no reserve/headroom: its occupancy q is all of the
  // shared usage, so the DT ceiling is alpha * (B - q). The equilibrium
  // where the queue stalls is q* = alpha * B / (1 + alpha): at q < q* the
  // queue is under threshold (admits), at q >= q* it is at/over (rejects).
  const auto dt = sw::mmu::make_dynamic_threshold();
  const std::uint64_t pool_cells = 1200;
  for (const double alpha : {0.5, 1.0, 2.0}) {
    const auto q_star =
        static_cast<std::uint64_t>(std::floor(alpha * pool_cells / (1.0 + alpha)));
    // Strictly below the fixed point a one-cell charge is admitted.
    EXPECT_TRUE(dt->admit(queue_of(q_star - 1, alpha), pool_of(pool_cells, q_star - 1), 0, 1))
        << "alpha=" << alpha;
    // At/above it the queue has consumed its share and the charge bounces.
    EXPECT_FALSE(dt->admit(queue_of(q_star + 1, alpha), pool_of(pool_cells, q_star + 1), 0, 1))
        << "alpha=" << alpha;
  }
}

TEST(PolicyAlgebra, StaticPartitionIgnoresThePoolAndEnforcesTheNativeCap) {
  const auto st = sw::mmu::make_static_partition();
  QueueState q;
  q.native_cap = 8;
  q.native_occ = 7;
  // Pool completely exhausted: static admission only looks at the native cap.
  PoolState full = pool_of(16, 16);
  EXPECT_TRUE(st->admit(q, full, 1, 100));
  q.native_occ = 8;
  EXPECT_FALSE(st->admit(q, full, 1, 0));
  // Zero native charge (subsequent packet of a buffered flow) always admits.
  EXPECT_TRUE(st->admit(q, full, 0, 100));
  EXPECT_EQ(st->threshold(q, full), 8u);
}

TEST(PolicyAlgebra, DelayDrivenCutsTheAppetiteOfAgingQueues) {
  sw::mmu::DelayDrivenParams params;
  params.delay_target_ms = 1.0;
  const auto dd = sw::mmu::make_delay_driven(params);
  const auto dt = sw::mmu::make_dynamic_threshold();
  const PoolState pool = pool_of(1024, 200);

  // At/below the delay target the policy is exactly DT.
  QueueState fresh = queue_of(100, 1.0);
  fresh.delay_ewma_ms = 0.5;
  EXPECT_EQ(dd->threshold(fresh, pool), dt->threshold(fresh, pool));

  // An aging queue (EWMA over target) gets a strictly smaller ceiling, and
  // more delay means less appetite.
  QueueState aging = fresh;
  aging.delay_ewma_ms = 4.0;
  const std::uint64_t t4 = dd->threshold(aging, pool);
  EXPECT_LT(t4, dt->threshold(aging, pool));
  aging.delay_ewma_ms = 16.0;
  EXPECT_LT(dd->threshold(aging, pool), t4);
}

// --- SharedMemoryMmu accounting ---

TEST(SharedMemoryMmu, ChargesAndReleasesBalanceThePool) {
  sim::Simulator sim;
  sw::mmu::MmuConfig config;
  config.enabled = true;
  config.policy = sw::mmu::PolicyKind::DynamicThreshold;
  config.pool_cells = 64;
  config.cell_bytes = 256;
  sw::mmu::SharedMemoryMmu mmu{sim, config, "s1"};
  const auto q = mmu.register_queue(sw::mmu::QueueKind::OfBuffer, 0, 0, 16);

  EXPECT_EQ(mmu.cells_for(1), 1u);
  EXPECT_EQ(mmu.cells_for(256), 1u);
  EXPECT_EQ(mmu.cells_for(257), 2u);

  ASSERT_TRUE(mmu.try_admit(q, 1, 1000));  // 4 cells
  ASSERT_TRUE(mmu.try_admit(q, 1, 100));   // 1 cell
  EXPECT_EQ(mmu.pool_cells_used(), 5u);
  EXPECT_EQ(mmu.queue_cells(q), 5u);
  EXPECT_EQ(mmu.queue_native(q), 2u);
  EXPECT_EQ(mmu.peak_pool_cells(), 5u);
  EXPECT_EQ(mmu.total_admitted(), 2u);

  // Split release: cells at departure, the native unit at deferred reclaim.
  mmu.release(q, 0, 1000);
  EXPECT_EQ(mmu.pool_cells_used(), 1u);
  EXPECT_EQ(mmu.queue_native(q), 2u);
  mmu.release(q, 1, 0);
  mmu.release(q, 1, 100);
  EXPECT_EQ(mmu.pool_cells_used(), 0u);
  EXPECT_EQ(mmu.queue_native(q), 0u);
  EXPECT_EQ(mmu.peak_pool_cells(), 5u) << "draining must not lower the peak";

  mmu.reset_counters();
  EXPECT_EQ(mmu.total_admitted(), 0u);
  EXPECT_EQ(mmu.peak_pool_cells(), 0u) << "peak re-bases at current (empty) occupancy";
}

TEST(SharedMemoryMmu, PoolExhaustionRejectsUnderTheDynamicPolicies) {
  sim::Simulator sim;
  sw::mmu::MmuConfig config;
  config.enabled = true;
  config.policy = sw::mmu::PolicyKind::DynamicThreshold;
  config.pool_cells = 8;
  config.cell_bytes = 256;
  config.alpha = 8.0;  // threshold permissive: exhaustion is what rejects
  sw::mmu::SharedMemoryMmu mmu{sim, config, "s1"};
  const auto q = mmu.register_queue(sw::mmu::QueueKind::Egress, 1, 0, 1 << 20);
  ASSERT_TRUE(mmu.try_admit(q, 1500, 1500));  // 6 cells
  EXPECT_FALSE(mmu.try_admit(q, 1500, 1500)) << "6 + 6 cells cannot fit an 8-cell pool";
  EXPECT_EQ(mmu.rejected(q), 1u);
  EXPECT_EQ(mmu.total_rejected(), 1u);
  ASSERT_TRUE(mmu.try_admit(q, 256, 256)) << "a 1-cell charge still fits";
  EXPECT_EQ(mmu.pool_cells_used(), 7u);
}

TEST(SharedMemoryMmu, ObserverLedgerClosesOverAdmitReleaseStream) {
  sim::Simulator sim;
  sw::mmu::MmuConfig config;
  config.enabled = true;
  config.policy = sw::mmu::PolicyKind::DelayDriven;
  config.pool_cells = 128;
  config.reserved_cells = 4;
  sw::mmu::SharedMemoryMmu mmu{sim, config, "s1"};
  verify::InvariantRegistry registry;
  mmu.set_observer(&registry);
  const auto a = mmu.register_queue(sw::mmu::QueueKind::OfBuffer, 0, 0, 32);
  const auto b = mmu.register_queue(sw::mmu::QueueKind::Egress, 1, 0, 1 << 20);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mmu.try_admit(a, 1, 700));
    ASSERT_TRUE(mmu.try_admit(b, 500, 500));
    mmu.record_queue_delay(b, sim::SimTime::microseconds(300));
  }
  for (int i = 0; i < 10; ++i) {
    mmu.release(a, 0, 700);
    mmu.release(a, 1, 0);
    mmu.release(b, 500, 500);
  }
  EXPECT_EQ(mmu.pool_cells_used(), 0u);
  EXPECT_TRUE(registry.ok()) << registry.report();
  EXPECT_EQ(registry.events_observed(), 50u);  // 20 admits + 30 releases
}

// --- incast absorption: dynamic sharing vs static partitioning ---

TEST(IncastAbsorption, DynamicThresholdLendsIdleQueuesShareToTheHotOne) {
  // Four egress queues over one pool. Static partitioning caps the hot queue
  // at its fixed quarter; DT lets it borrow the idle queues' unused share up
  // to the alpha=1 fixed point (half the pool) — the mechanism behind
  // absorbing an incast fan-in that static splits drop.
  const std::uint64_t pool_cells = 1024;
  const std::uint32_t cell = 256;
  const std::uint64_t static_share_bytes = pool_cells / 4 * cell;
  auto fill_hot_queue = [&](sw::mmu::PolicyKind policy) {
    sim::Simulator sim;
    sw::mmu::MmuConfig config;
    config.enabled = true;
    config.policy = policy;
    config.pool_cells = pool_cells;
    config.cell_bytes = cell;
    sw::mmu::SharedMemoryMmu mmu{sim, config, "s1"};
    std::vector<sw::mmu::SharedMemoryMmu::QueueHandle> queues;
    for (std::uint16_t port = 1; port <= 4; ++port) {
      queues.push_back(
          mmu.register_queue(sw::mmu::QueueKind::Egress, port, 0, static_share_bytes));
    }
    std::uint64_t admitted = 0;
    while (mmu.try_admit(queues[0], cell, cell)) ++admitted;  // 1-cell frames
    return admitted;
  };
  const std::uint64_t static_cells = fill_hot_queue(sw::mmu::PolicyKind::StaticPartition);
  const std::uint64_t dt_cells = fill_hot_queue(sw::mmu::PolicyKind::DynamicThreshold);
  EXPECT_EQ(static_cells, pool_cells / 4) << "static partitioning stops at the fixed slice";
  EXPECT_EQ(dt_cells, pool_cells / 2) << "DT alpha=1 fixed point is half the pool";
  EXPECT_GT(dt_cells, static_cells);
}

// --- StaticPartition byte-identity against the MMU-off build ---

// The MMU-off path executes the untouched legacy admission code (the same
// instruction stream as the pre-MMU build); StaticPartition must reproduce
// its decisions exactly, so every observable of the run matches.
TEST(StaticIdentity, SingleSwitchRunsAreIdenticalWithStaticMmu) {
  for (const sw::BufferMode mode :
       {sw::BufferMode::PacketGranularity, sw::BufferMode::FlowGranularity}) {
    core::ExperimentConfig base;
    base.mode = mode;
    base.n_flows = 60;
    base.packets_per_flow = 3;
    base.rate_mbps = 60.0;
    base.buffer_capacity = 16;  // small: the legacy cap must actually reject
    base.seed = 11;
    const core::ExperimentResult off = core::run_experiment(base);

    core::ExperimentConfig with = base;
    with.testbed.switch_config.mmu.enabled = true;
    with.testbed.switch_config.mmu.policy = sw::mmu::PolicyKind::StaticPartition;
    const core::ExperimentResult st = core::run_experiment(with);

    EXPECT_EQ(off.packets_sent, st.packets_sent);
    EXPECT_EQ(off.packets_delivered, st.packets_delivered);
    EXPECT_EQ(off.pkt_ins_sent, st.pkt_ins_sent);
    EXPECT_EQ(off.full_frame_pkt_ins, st.full_frame_pkt_ins)
        << "static admission must reject exactly when the flat cap did";
    EXPECT_EQ(off.to_controller_bytes, st.to_controller_bytes);
    EXPECT_EQ(off.to_switch_bytes, st.to_switch_bytes);
    EXPECT_EQ(off.setup_ms.values(), st.setup_ms.values());
    EXPECT_EQ(off.buffer_avg_units, st.buffer_avg_units);
    EXPECT_EQ(off.buffer_max_units, st.buffer_max_units);
    EXPECT_EQ(off.mmu_rejected, 0u);
    EXPECT_EQ(st.mmu_rejected, off.full_frame_pkt_ins)
        << "every legacy rejection shows up as an MMU rejection and vice versa";
  }
}

TEST(StaticIdentity, FabricMultihopRunsAreIdenticalWithStaticMmu) {
  core::FabricExperimentConfig base;
  base.topology = topo::make_leaf_spine(2, 2, 2);
  base.mode = sw::BufferMode::PacketGranularity;
  base.buffer_capacity = 8;
  base.pattern = host::TrafficPattern::Incast;
  base.incast_target = 0;
  base.incast_fanin = 3;
  base.duration_s = 0.2;
  base.flow_arrival_per_s = 400.0;
  base.seed = 23;
  const core::FabricExperimentResult off = core::run_fabric_experiment(base);

  core::FabricExperimentConfig with = base;
  with.fabric.switch_config.mmu.enabled = true;
  with.fabric.switch_config.mmu.policy = sw::mmu::PolicyKind::StaticPartition;
  const core::FabricExperimentResult st = core::run_fabric_experiment(with);

  EXPECT_EQ(off.packets_sent, st.packets_sent);
  EXPECT_EQ(off.packets_delivered, st.packets_delivered);
  EXPECT_EQ(off.pkt_ins, st.pkt_ins);
  EXPECT_EQ(off.control_bytes, st.control_bytes);
  EXPECT_EQ(off.delivered, st.delivered) << "identical payload multiset, payload for payload";
  EXPECT_EQ(off.buffer_max_units, st.buffer_max_units);
  EXPECT_EQ(off.mmu_rejected, 0u);
}

// --- INT stamps carry the sharing dynamics ---

TEST(IntHarvest, HeatmapAggregatesPoolOccupancyAndQueueThresholds) {
  obs::FabricObservatory obsy;
  core::FabricExperimentConfig cfg;
  cfg.topology = topo::make_leaf_spine(2, 2, 2);
  cfg.mode = sw::BufferMode::PacketGranularity;
  cfg.buffer_capacity = 16;
  cfg.pattern = host::TrafficPattern::Incast;
  cfg.incast_target = 0;
  cfg.incast_fanin = 3;
  cfg.duration_s = 0.15;
  cfg.flow_arrival_per_s = 500.0;
  cfg.seed = 47;
  cfg.observatory = &obsy;
  cfg.fabric.switch_config.telemetry_int_depth = 8;
  cfg.fabric.switch_config.mmu.enabled = true;
  cfg.fabric.switch_config.mmu.policy = sw::mmu::PolicyKind::DynamicThreshold;
  cfg.fabric.switch_config.mmu.pool_cells = 1024;
  const core::FabricExperimentResult r = core::run_fabric_experiment(cfg);
  ASSERT_GT(r.packets_delivered, 0u);
  ASSERT_GT(obsy.stamps_harvested(), 0u);

  // Every harvested stamp from an MMU switch carries a live DT threshold, and
  // at least one egress saw the shared pool occupied at enqueue time.
  std::uint32_t pool_max = 0, threshold_max = 0;
  for (const auto& [key, cell] : obsy.heatmap()) {
    EXPECT_GT(cell.queue_threshold_min, 0u)
        << "switch " << key.first << " port " << key.second << " stamped no threshold";
    EXPECT_GE(cell.queue_threshold_max, cell.queue_threshold_min);
    pool_max = std::max(pool_max, cell.pool_cells_max);
    threshold_max = std::max(threshold_max, cell.queue_threshold_max);
  }
  EXPECT_GT(pool_max, 0u);
  EXPECT_GT(threshold_max, 0u);
}

// --- pool conservation under data-plane faults ---

TEST(PoolConservation, HoldsUnderLinkFlapsAndSwitchCrash) {
  const topo::Topology topology = topo::make_leaf_spine(2, 2, 2);
  core::FabricExperimentConfig cfg;
  cfg.topology = topology;
  cfg.mode = sw::BufferMode::FlowGranularity;
  cfg.buffer_capacity = 16;
  cfg.duration_s = 0.2;
  cfg.flow_arrival_per_s = 300.0;
  cfg.seed = 31;
  cfg.fabric.switch_config.mmu.enabled = true;
  cfg.fabric.switch_config.mmu.policy = sw::mmu::PolicyKind::DynamicThreshold;
  cfg.fabric.switch_config.mmu.pool_cells = 512;

  // Flap every inter-switch link and crash+restart one spine mid-run.
  for (std::size_t li = 0; li < topology.links().size(); ++li) {
    if (topology.links()[li].host_edge) continue;
    core::LinkFaultSpec spec;
    spec.link_index = li;
    spec.schedule = net::LinkFaultSchedule::flap(1000003 * li + 7, sim::SimTime::milliseconds(20),
                                                 sim::SimTime::milliseconds(150), 0.05, 0.01);
    if (!spec.schedule.empty()) cfg.link_faults.push_back(spec);
  }
  core::SwitchCrashSpec crash;
  crash.switch_index = 2;  // a spine
  crash.crash_at = sim::SimTime::milliseconds(60);
  crash.restart_at = sim::SimTime::milliseconds(90);
  cfg.switch_crashes.push_back(crash);

  std::vector<std::unique_ptr<verify::InvariantRegistry>> registries;
  for (unsigned i = 0; i < topology.n_switches(); ++i) {
    registries.push_back(std::make_unique<verify::InvariantRegistry>());
    registries.back()->set_allow_revisits(true);
    cfg.observers.push_back(registries.back().get());
  }
  const core::FabricExperimentResult r = core::run_fabric_experiment(cfg);
  EXPECT_GT(r.packets_sent, 0u);
  std::uint64_t events = 0;
  for (unsigned i = 0; i < registries.size(); ++i) {
    registries[i]->finalize(/*expect_all_delivered=*/false);
    events += registries[i]->events_observed();
    EXPECT_TRUE(registries[i]->ok()) << "switch " << i << ": " << registries[i]->report();
  }
  EXPECT_GT(events, 0u) << "observers saw no events (hooks unwired?)";
}

// --- egress high-water marks reset between repetitions ---

TEST(HighWaterReset, ResetStatisticsClearsThePerPortMarks) {
  core::FabricConfig config;
  config.topology = topo::make_leaf_spine(1, 2, 2);
  config.routing = core::FabricRouting::TopologyPerHop;
  config.switch_config.buffer_mode = sw::BufferMode::PacketGranularity;
  core::FabricTestbed bed{config};

  // A same-instant burst from every host piles packets into egress queues.
  for (std::uint32_t i = 0; i < 8; ++i) {
    bed.inject_from_host(i % 4, fabric_packet(i % 4, (i + 1) % 4, 10000 + i, 1 + i));
  }
  bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(300));

  auto max_highwater = [&]() {
    std::uint64_t hw = 0;
    for (unsigned i = 0; i < bed.n_switches(); ++i) {
      for (const topo::Topology::Adjacency& adj :
           bed.topology().adjacency(bed.topology().switch_id(i))) {
        hw = std::max(hw, bed.switch_at(i).port_scheduler(adj.port).highwater_packets());
      }
    }
    return hw;
  };
  EXPECT_GT(max_highwater(), 0u) << "the warm-up burst must have queued somewhere";

  // The repetition boundary: marks re-base at the (drained) current backlog
  // instead of carrying the warm-up peak into the measured run.
  bed.reset_statistics();
  EXPECT_EQ(max_highwater(), 0u);

  bed.stop();
  bed.sim().run();
}

// Topology engine unit tests: builder shapes and port maps, validation
// rejections, ECMP determinism and spread, path consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace sdnbuf::topo {
namespace {

net::FlowKey flow(std::uint32_t src_ip, std::uint16_t src_port) {
  net::FlowKey k;
  k.src_ip = net::Ipv4Address{src_ip};
  k.dst_ip = net::Ipv4Address::from_octets(10, 0, 0, 2);
  k.src_port = src_port;
  k.dst_port = 9;
  k.protocol = 17;
  return k;
}

TEST(Topology, ChainShapeAndPortMap) {
  const Topology t = make_chain(3);
  EXPECT_EQ(t.n_hosts(), 2u);
  EXPECT_EQ(t.n_switches(), 3u);
  EXPECT_EQ(t.n_links(), 4u);
  // Every switch: port 1 toward Host1, port 2 toward Host2.
  for (unsigned i = 0; i < 3; ++i) {
    const NodeId sw = t.switch_id(i);
    const NodeId left = i == 0 ? t.host_id(0) : t.switch_id(i - 1);
    const NodeId right = i == 2 ? t.host_id(1) : t.switch_id(i + 1);
    EXPECT_EQ(t.port_to(sw, left), std::uint16_t{1}) << "switch " << i;
    EXPECT_EQ(t.port_to(sw, right), std::uint16_t{2}) << "switch " << i;
  }
  EXPECT_EQ(t.attachment(t.host_id(0)).peer, t.switch_id(0));
  EXPECT_EQ(t.attachment(t.host_id(1)).peer, t.switch_id(2));
}

TEST(Topology, LeafSpineShapeAndPortMap) {
  const unsigned spines = 2, leaves = 3, hosts_per_leaf = 4;
  const Topology t = make_leaf_spine(spines, leaves, hosts_per_leaf);
  EXPECT_EQ(t.n_hosts(), leaves * hosts_per_leaf);
  EXPECT_EQ(t.n_switches(), spines + leaves);
  EXPECT_EQ(t.n_links(), leaves * hosts_per_leaf + leaves * spines);
  for (unsigned l = 0; l < leaves; ++l) {
    const NodeId leaf = t.switch_id(l);
    // Hosts on ports 1..H in index order.
    for (unsigned h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = t.host_id(l * hosts_per_leaf + h);
      EXPECT_EQ(t.attachment(host).peer, leaf);
      EXPECT_EQ(t.port_to(leaf, host), static_cast<std::uint16_t>(h + 1));
    }
    // Spines on ports H+1..H+S.
    for (unsigned s = 0; s < spines; ++s) {
      const NodeId spine = t.switch_id(leaves + s);
      EXPECT_EQ(t.port_to(leaf, spine), static_cast<std::uint16_t>(hosts_per_leaf + 1 + s));
      EXPECT_EQ(t.port_to(spine, leaf), static_cast<std::uint16_t>(l + 1));
    }
  }
}

TEST(Topology, FatTreeShape) {
  const unsigned k = 4;
  const Topology t = make_fat_tree(k);
  EXPECT_EQ(t.n_hosts(), k * k * k / 4);           // 16
  EXPECT_EQ(t.n_switches(), k * k / 4 + k * k);    // 4 cores + 16 pod switches
  // Every switch has exactly k ports in a k-ary fat-tree.
  for (unsigned i = 0; i < t.n_switches(); ++i) {
    EXPECT_EQ(t.adjacency(t.switch_id(i)).size(), k) << t.name(t.switch_id(i));
  }
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);  // odd arity
  EXPECT_THROW(make_fat_tree(0), std::invalid_argument);
}

TEST(Topology, HostAddressingRoundTrips) {
  const Topology t = make_leaf_spine(2, 2, 3);
  for (unsigned h = 0; h < t.n_hosts(); ++h) {
    const auto node = t.host_by_mac(Topology::host_mac(h));
    ASSERT_TRUE(node.has_value()) << h;
    EXPECT_EQ(*node, t.host_id(h));
  }
  // Foreign and multicast MACs resolve to nothing.
  EXPECT_FALSE(t.host_by_mac(net::MacAddress::broadcast()).has_value());
  EXPECT_FALSE(t.host_by_mac(Topology::host_mac(t.n_hosts())).has_value());
}

TEST(Topology, BuilderRejectsMalformedGraphs) {
  Topology t;
  const NodeId h1 = t.add_host();
  const NodeId h2 = t.add_host();
  const NodeId s1 = t.add_switch();
  const NodeId s2 = t.add_switch();
  EXPECT_THROW(t.add_link(s1, s1), std::invalid_argument);  // self-loop
  EXPECT_THROW(t.add_link(h1, h2), std::invalid_argument);  // host-host
  t.add_link(h1, s1);
  EXPECT_THROW(t.add_link(h1, s1), std::invalid_argument);  // duplicate
  EXPECT_THROW(t.add_link(s1, h1), std::invalid_argument);  // duplicate, flipped
  EXPECT_THROW(t.add_link(h1, s2), std::invalid_argument);  // multi-homed host
  EXPECT_THROW(t.add_link(s1, NodeId{99}), std::invalid_argument);  // dangling id
}

TEST(Topology, ValidateRejectsDisconnectedAndUnattached) {
  // Unattached host.
  {
    Topology t;
    t.add_host();
    const NodeId s = t.add_switch();
    t.add_link(t.add_host(), s);
    EXPECT_THROW(t.validate(), std::runtime_error);
  }
  // Two disconnected islands.
  {
    Topology t;
    t.add_link(t.add_host(), t.add_switch());
    t.add_link(t.add_host(), t.add_switch());
    EXPECT_THROW(t.validate(), std::runtime_error);
  }
  // from_edge_list runs the same validation.
  EXPECT_THROW(from_edge_list(2, 2, {{0, 2}, {1, 3}}), std::runtime_error);
}

TEST(Router, UnreachablePairRejectedAtConstruction) {
  // Router validates, so a disconnected topology never reaches BFS.
  Topology t;
  t.add_link(t.add_host(), t.add_switch());
  t.add_link(t.add_host(), t.add_switch());
  EXPECT_THROW(Router(t, 1), std::runtime_error);
}

TEST(Router, ChainRoutesFollowTheLine) {
  const Topology t = make_chain(3);
  const Router r{t, 7};
  const net::FlowKey f = flow(0x0a000001, 1234);
  // From sw1 toward host2: 2 -> 2 -> 2, then the host port.
  const auto path = r.path(t.switch_id(0), t.host_id(1), f);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), t.switch_id(0));
  EXPECT_EQ(path.back(), t.host_id(1));
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(r.next_hop_port(t.switch_id(i), t.host_id(1), f), std::uint16_t{2});
    EXPECT_EQ(r.next_hop_port(t.switch_id(i), t.host_id(0), f), std::uint16_t{1});
  }
  EXPECT_EQ(r.distance(t.switch_id(0), t.host_id(0)), 1u);
  EXPECT_EQ(r.distance(t.switch_id(2), t.host_id(0)), 3u);
}

TEST(Router, EcmpIsDeterministicPerSeedAndFlow) {
  const Topology t = make_leaf_spine(4, 4, 2);
  const Router a{t, 42};
  const Router b{t, 42};
  const Router c{t, 43};
  const NodeId src_leaf = t.switch_id(0);
  const NodeId dst_host = t.host_id(7);  // on leaf 3: crosses a spine
  bool seed_changed_some_pick = false;
  for (std::uint16_t p = 0; p < 64; ++p) {
    const net::FlowKey f = flow(0x0a000101 + p, static_cast<std::uint16_t>(10000 + p));
    // Same seed: identical pick, call after call and router after router.
    const auto pick_a = a.next_hop(src_leaf, dst_host, f);
    EXPECT_EQ(pick_a, a.next_hop(src_leaf, dst_host, f));
    EXPECT_EQ(pick_a, b.next_hop(src_leaf, dst_host, f));
    if (pick_a != c.next_hop(src_leaf, dst_host, f)) seed_changed_some_pick = true;
  }
  // A different seed re-rolls at least one flow's path.
  EXPECT_TRUE(seed_changed_some_pick);
}

TEST(Router, EcmpSpreadsFlowsAcrossSpines) {
  const Topology t = make_leaf_spine(4, 2, 2);
  const Router r{t, 1};
  const NodeId leaf = t.switch_id(0);
  const NodeId dst = t.host_id(3);  // on the other leaf
  ASSERT_EQ(r.next_hops(leaf, dst).size(), 4u);
  std::set<NodeId> used;
  for (std::uint16_t p = 0; p < 200; ++p) {
    const auto hop = r.next_hop(leaf, dst, flow(0x0a000001 + p, p));
    ASSERT_TRUE(hop.has_value());
    used.insert(hop->peer);
  }
  // 200 distinct flows should touch every one of the 4 spines.
  EXPECT_EQ(used.size(), 4u);
}

TEST(Router, EcmpPicksAreUniformChiSquared) {
  // Leaf-spine 4x4: every cross-leaf flow sees 4 equal-cost spines. The
  // mix64-based pick should be statistically indistinguishable from
  // uniform: Pearson chi-squared over the spine counts, df = 3, with the
  // 99.9th-percentile critical value 16.27. The test is deterministic (the
  // seeds are fixed), so a pass today is a pass forever; a biased pick
  // function fails it by orders of magnitude.
  const Topology t = make_leaf_spine(4, 4, 4);
  const NodeId leaf = t.switch_id(0);
  const NodeId dst = t.host_id(15);  // on leaf 3: every path crosses a spine
  constexpr int kFlows = 4000;
  for (const std::uint64_t seed : {1ULL, 42ULL, 1000003ULL}) {
    const Router r{t, seed};
    ASSERT_EQ(r.next_hops(leaf, dst).size(), 4u);
    std::map<NodeId, int> counts;
    for (int p = 0; p < kFlows; ++p) {
      const net::FlowKey f =
          flow(0x0a000001 + static_cast<std::uint32_t>(p), static_cast<std::uint16_t>(p));
      const auto hop = r.next_hop(leaf, dst, f);
      ASSERT_TRUE(hop.has_value());
      ++counts[hop->peer];
    }
    ASSERT_EQ(counts.size(), 4u);
    const double expected = kFlows / 4.0;
    double chi2 = 0.0;
    for (const auto& [peer, n] : counts) {
      const double d = static_cast<double>(n) - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 16.27) << "seed " << seed << ": chi2 " << chi2;
  }
}

TEST(Router, EcmpPathPinsAcrossRuns) {
  // Cross-run regression: the exact spine each flow hashes to is part of
  // the reproducibility contract (sweep results depend on it), so pin a
  // handful of (seed 42, flow) picks to golden values. If mix64, the hash
  // input layout, or the candidate ordering ever changes, this fails —
  // bump the goldens only on a deliberate routing change.
  const Topology t = make_leaf_spine(4, 4, 4);
  const Router r{t, 42};
  const NodeId leaf = t.switch_id(0);
  const NodeId dst = t.host_id(15);
  const struct {
    std::uint16_t src_port;
    unsigned spine_index;  // 0..3, switch_id(4 + spine_index)
  } golden[] = {
      {100, 2}, {101, 2}, {102, 2}, {103, 3}, {104, 3}, {105, 3},
  };
  for (const auto& g : golden) {
    const net::FlowKey f = flow(0x0a000001, g.src_port);
    const auto hop = r.next_hop(leaf, dst, f);
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(hop->peer, t.switch_id(4 + g.spine_index)) << "src_port " << g.src_port;
    // The full path is leaf0 -> spine -> leaf3 -> host, every hop the
    // router's own pick.
    const auto path = r.path(leaf, dst, f);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0], leaf);
    EXPECT_EQ(path[1], t.switch_id(4 + g.spine_index));
    EXPECT_EQ(path[2], t.switch_id(3));
    EXPECT_EQ(path[3], dst);
  }
}

TEST(Router, NextHopSetsIndependentOfLinkInsertionOrder) {
  // Same leaf-spine graph wired in two different link orders; the sorted
  // next-hop sets (and thus the hash picks by peer) must agree on peers.
  Topology t1, t2;
  {
    const NodeId l0 = t1.add_switch("leaf1"), l1 = t1.add_switch("leaf2");
    const NodeId s0 = t1.add_switch("spine1"), s1 = t1.add_switch("spine2");
    t1.add_link(t1.add_host(), l0);
    t1.add_link(t1.add_host(), l1);
    t1.add_link(l0, s0);
    t1.add_link(l0, s1);
    t1.add_link(l1, s0);
    t1.add_link(l1, s1);
  }
  {
    const NodeId l0 = t2.add_switch("leaf1"), l1 = t2.add_switch("leaf2");
    const NodeId s0 = t2.add_switch("spine1"), s1 = t2.add_switch("spine2");
    t2.add_link(t2.add_host(), l0);
    t2.add_link(t2.add_host(), l1);
    // Spine links in the opposite order: ports differ, peers must not.
    t2.add_link(l0, s1);
    t2.add_link(l0, s0);
    t2.add_link(l1, s1);
    t2.add_link(l1, s0);
  }
  const Router r1{t1, 5}, r2{t2, 5};
  for (std::uint16_t p = 0; p < 32; ++p) {
    const net::FlowKey f = flow(0x0a000001 + p, p);
    const auto h1 = r1.next_hop(t1.switch_id(0), t1.host_id(1), f);
    const auto h2 = r2.next_hop(t2.switch_id(0), t2.host_id(1), f);
    ASSERT_TRUE(h1.has_value() && h2.has_value());
    // NodeIds coincide across the two wirings (same creation order).
    EXPECT_EQ(h1->peer, h2->peer) << "flow " << p;
  }
}

TEST(Router, PathAgreesWithPerHopPicks) {
  const Topology t = make_fat_tree(4);
  const Router r{t, 9};
  for (std::uint16_t p = 0; p < 32; ++p) {
    const net::FlowKey f = flow(0x0a000001 + p, p);
    const NodeId src_edge = t.attachment(t.host_id(0)).peer;
    const NodeId dst = t.host_id(15);  // other pod: full up-down path
    const auto path = r.path(src_edge, dst, f);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.back(), dst);
    // Walking hop by hop reproduces the same node sequence.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto hop = r.next_hop(path[i], dst, f);
      ASSERT_TRUE(hop.has_value());
      EXPECT_EQ(hop->peer, path[i + 1]);
    }
    // Shortest: 5 switches (edge-agg-core-agg-edge) + the host.
    EXPECT_EQ(path.size(), 6u);
  }
}

}  // namespace
}  // namespace sdnbuf::topo

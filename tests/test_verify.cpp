// Tests for the invariant-checking layer (src/verify): registry unit tests
// that deliberately break each invariant, a clean-run end-to-end check, the
// same-seed determinism regression test, and a fuzzer smoke test.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "net/packet.hpp"
#include "openflow/capture.hpp"
#include "openflow/constants.hpp"
#include "verify/invariants.hpp"
#include "verify/scenario_gen.hpp"

using namespace sdnbuf;

namespace {

net::Packet test_packet(std::uint64_t flow_id, std::uint32_t seq) {
  net::Packet p = net::make_udp_packet(
      net::MacAddress::from_index(1), net::MacAddress::from_index(2),
      net::Ipv4Address::from_octets(10, 1, 0, 1), net::Ipv4Address::from_octets(10, 2, 0, 1),
      static_cast<std::uint16_t>(10000 + flow_id % 1000), 9, 500);
  p.flow_id = flow_id;
  p.seq_in_flow = seq;
  return p;
}

bool has_violation(const verify::InvariantRegistry& reg, const std::string& name) {
  for (const auto& v : reg.violations()) {
    if (v.invariant == name) return true;
  }
  return false;
}

sim::SimTime ms(long long v) { return sim::SimTime::milliseconds(v); }

}  // namespace

// The acceptance check for the whole layer: a deliberately broken buffer
// lifecycle (double-release of a buffer_id) must be detected and named.
TEST(InvariantRegistry, DetectsBufferIdDoubleRelease) {
  verify::InvariantRegistry reg;
  const net::Packet p = test_packet(1, 0);
  reg.on_packet_injected(p, ms(1));
  reg.on_buffer_store(42, p, /*new_unit=*/true, /*flow_granularity=*/false, ms(2));
  reg.on_buffer_release(42, p, ms(3));
  reg.on_buffer_unit_retired(42, ms(3));
  // A buggy manager hands the same buffer_id out again.
  reg.on_buffer_release(42, p, ms(4));
  EXPECT_FALSE(reg.ok());
  EXPECT_TRUE(has_violation(reg, "buffer-double-release")) << reg.report();
}

TEST(InvariantRegistry, DetectsUnitDoubleRetireAndLeak) {
  verify::InvariantRegistry reg;
  const net::Packet p = test_packet(2, 0);
  reg.on_buffer_store(7, p, true, true, ms(1));
  // Retiring a unit that still holds a packet is a leak.
  reg.on_buffer_unit_retired(7, ms(2));
  EXPECT_TRUE(has_violation(reg, "buffer-unit-leak")) << reg.report();
  // Retiring it again is a double retire.
  reg.on_buffer_unit_retired(7, ms(3));
  EXPECT_TRUE(has_violation(reg, "buffer-unit-double-retire")) << reg.report();
}

TEST(InvariantRegistry, DetectsFlowIdInstability) {
  verify::InvariantRegistry reg;
  const net::Packet a = test_packet(3, 0);
  const net::Packet b = test_packet(4, 0);  // different 5-tuple (src port differs)
  reg.on_buffer_store(9, a, /*new_unit=*/true, /*flow_granularity=*/true, ms(1));
  reg.on_buffer_store(9, b, /*new_unit=*/false, /*flow_granularity=*/true, ms(2));
  EXPECT_TRUE(has_violation(reg, "flow-buffer-id-unstable")) << reg.report();
}

TEST(InvariantRegistry, DetectsDuplicateAndSpuriousDelivery) {
  verify::InvariantRegistry reg;
  const net::Packet p = test_packet(5, 0);
  reg.on_packet_delivered(p, ms(1));
  EXPECT_TRUE(has_violation(reg, "spurious-delivery"));
  reg.on_packet_injected(p, ms(2));
  reg.on_packet_delivered(p, ms(3));
  EXPECT_TRUE(has_violation(reg, "duplicate-delivery")) << reg.report();
}

TEST(InvariantRegistry, FinalizeFlagsUnaccountedAndUndeliveredPayloads) {
  verify::InvariantRegistry vanished;
  vanished.on_packet_injected(test_packet(6, 0), ms(1));
  vanished.finalize(/*expect_all_delivered=*/false);
  EXPECT_TRUE(has_violation(vanished, "conservation")) << vanished.report();

  verify::InvariantRegistry dropped;
  const net::Packet p = test_packet(7, 0);
  dropped.on_packet_injected(p, ms(1));
  dropped.on_packet_dropped(p, "egress-queue", ms(2));
  dropped.finalize(/*expect_all_delivered=*/false);
  EXPECT_TRUE(dropped.ok()) << dropped.report();  // accounted, lenient mode

  verify::InvariantRegistry strict;
  strict.on_packet_injected(p, ms(1));
  strict.on_packet_dropped(p, "egress-queue", ms(2));
  strict.finalize(/*expect_all_delivered=*/true);
  EXPECT_TRUE(has_violation(strict, "undelivered")) << strict.report();
}

TEST(InvariantRegistry, DetectsUnpairedResponsesAndRulesWithoutPackets) {
  verify::InvariantRegistry reg;
  const net::Packet p = test_packet(8, 0);

  of::FlowMod fm;
  fm.xid = 99;  // no packet_in ever used this xid
  fm.command = of::FlowModCommand::Add;
  fm.match = of::Match::exact_from(p, 1);
  reg.on_control_message(/*to_controller=*/false, fm, ms(1));
  EXPECT_TRUE(has_violation(reg, "unpaired-flow-mod"));
  EXPECT_TRUE(has_violation(reg, "rule-without-packet")) << reg.report();

  of::PacketOut po;
  po.xid = 100;
  reg.on_control_message(false, po, ms(2));
  EXPECT_TRUE(has_violation(reg, "unpaired-packet-out"));
}

TEST(InvariantRegistry, AcceptsPairedExchange) {
  verify::InvariantRegistry reg;
  const net::Packet p = test_packet(9, 0);
  reg.on_packet_injected(p, ms(1));
  reg.on_packet_in_sent(5, p, of::kNoBuffer, ms(2));

  of::PacketIn pi;
  pi.xid = 5;
  pi.buffer_id = of::kNoBuffer;
  pi.total_len = static_cast<std::uint16_t>(p.frame_size);
  pi.in_port = 1;
  pi.data = p.serialize(p.frame_size);
  reg.on_control_message(true, pi, ms(3));

  of::FlowMod fm;
  fm.xid = 5;
  fm.command = of::FlowModCommand::Add;
  fm.match = of::Match::exact_from(p, 1);
  reg.on_control_message(false, fm, ms(4));

  of::PacketOut po;
  po.xid = 5;
  reg.on_control_message(false, po, ms(5));

  reg.on_packet_delivered(p, ms(6));
  reg.finalize(true);
  EXPECT_TRUE(reg.ok()) << reg.report();
}

TEST(InvariantRegistry, DetectsPacketInXidReuse) {
  verify::InvariantRegistry reg;
  reg.on_packet_in_sent(11, test_packet(10, 0), of::kNoBuffer, ms(1));
  reg.on_packet_in_sent(11, test_packet(10, 1), of::kNoBuffer, ms(2));
  EXPECT_TRUE(has_violation(reg, "packet-in-xid-reuse")) << reg.report();
}

TEST(InvariantRegistry, DetectsCaptureTimeRegression) {
  verify::InvariantRegistry reg;
  reg.on_control_message(true, of::Hello{1}, ms(2));
  reg.on_control_message(true, of::Hello{2}, ms(1));
  EXPECT_TRUE(has_violation(reg, "capture-time-regression")) << reg.report();
}

// End-to-end: a healthy experiment run under every mechanism produces a
// non-trivial event stream and zero violations.
TEST(InvariantRegistryEndToEnd, CleanRunSatisfiesEveryInvariant) {
  for (const auto mode : {sw::BufferMode::NoBuffer, sw::BufferMode::PacketGranularity,
                          sw::BufferMode::FlowGranularity}) {
    verify::InvariantRegistry reg;
    core::ExperimentConfig cfg;
    cfg.mode = mode;
    cfg.buffer_capacity = 64;
    cfg.rate_mbps = 30.0;
    cfg.frame_size = 600;
    cfg.n_flows = 40;
    cfg.packets_per_flow = 3;
    cfg.seed = 42;
    cfg.observer = &reg;
    const auto r = core::run_experiment(cfg);
    reg.finalize(r.drained);
    EXPECT_TRUE(r.drained) << sw::buffer_mode_name(mode);
    EXPECT_GT(reg.events_observed(), 0u) << sw::buffer_mode_name(mode);
    EXPECT_TRUE(reg.ok()) << sw::buffer_mode_name(mode) << ": " << reg.report();
  }
}

// Determinism regression: two runs with the same seed must produce
// byte-identical control-channel traces (timestamps, direction, types, xids,
// wire sizes) for every buffer mode.
class DeterminismTest : public ::testing::TestWithParam<sw::BufferMode> {};

TEST_P(DeterminismTest, SameSeedSameCaptureTrace) {
  auto run = [this](of::ChannelCapture& capture) {
    core::ExperimentConfig cfg;
    cfg.mode = GetParam();
    cfg.buffer_capacity = 32;
    cfg.rate_mbps = 40.0;
    cfg.frame_size = 400;
    cfg.n_flows = 30;
    cfg.packets_per_flow = 2;
    cfg.seed = 1234;
    cfg.capture = &capture;
    return core::run_experiment(cfg);
  };
  of::ChannelCapture first;
  of::ChannelCapture second;
  const auto r1 = run(first);
  const auto r2 = run(second);

  EXPECT_EQ(r1.packets_delivered, r2.packets_delivered);
  EXPECT_EQ(r1.pkt_ins_sent, r2.pkt_ins_sent);
  const auto& a = first.records();
  const auto& b = second.records();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].timestamp.ns(), b[i].timestamp.ns()) << "record " << i;
    ASSERT_EQ(a[i].direction, b[i].direction) << "record " << i;
    ASSERT_EQ(a[i].type, b[i].type) << "record " << i;
    ASSERT_EQ(a[i].xid, b[i].xid) << "record " << i;
    ASSERT_EQ(a[i].wire_bytes, b[i].wire_bytes) << "record " << i;
    ASSERT_EQ(a[i].summary, b[i].summary) << "record " << i;
  }
}

// Satellite of the fault plane: fault injection must be just as
// deterministic as the fault-free path — same seed and same FaultProfile
// produce byte-identical captures and identical fault decisions.
TEST_P(DeterminismTest, SameSeedSameFaultDecisions) {
  auto run = [this](of::ChannelCapture& capture) {
    core::ExperimentConfig cfg;
    cfg.mode = GetParam();
    cfg.buffer_capacity = 32;
    cfg.rate_mbps = 40.0;
    cfg.frame_size = 400;
    cfg.n_flows = 30;
    cfg.packets_per_flow = 2;
    cfg.seed = 1234;
    cfg.capture = &capture;
    cfg.testbed.fault_profile.loss_to_controller = 0.08;
    cfg.testbed.fault_profile.loss_to_switch = 0.08;
    cfg.testbed.fault_profile.duplicate_to_controller = 0.04;
    cfg.testbed.fault_profile.duplicate_to_switch = 0.04;
    cfg.testbed.fault_profile.max_extra_delay = sim::SimTime::microseconds(500);
    return core::run_experiment(cfg);
  };
  of::ChannelCapture first;
  of::ChannelCapture second;
  const auto r1 = run(first);
  const auto r2 = run(second);

  // Identical fault decisions...
  EXPECT_EQ(r1.channel_lost_msgs, r2.channel_lost_msgs);
  EXPECT_EQ(r1.channel_duplicated_msgs, r2.channel_duplicated_msgs);
  EXPECT_GT(r1.channel_lost_msgs + r1.channel_duplicated_msgs, 0u)
      << "fault profile injected nothing; the regression is vacuous";
  EXPECT_EQ(r1.packets_delivered, r2.packets_delivered);
  EXPECT_EQ(r1.resend_pkt_ins, r2.resend_pkt_ins);
  // ...and byte-identical captures.
  const auto& a = first.records();
  const auto& b = second.records();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].timestamp.ns(), b[i].timestamp.ns()) << "record " << i;
    ASSERT_EQ(a[i].direction, b[i].direction) << "record " << i;
    ASSERT_EQ(a[i].type, b[i].type) << "record " << i;
    ASSERT_EQ(a[i].xid, b[i].xid) << "record " << i;
    ASSERT_EQ(a[i].wire_bytes, b[i].wire_bytes) << "record " << i;
    ASSERT_EQ(a[i].summary, b[i].summary) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeterminismTest,
                         ::testing::Values(sw::BufferMode::NoBuffer,
                                           sw::BufferMode::PacketGranularity,
                                           sw::BufferMode::FlowGranularity),
                         [](const auto& info) {
                           return std::string(sw::buffer_mode_name(info.param)) == "no-buffer"
                                      ? "NoBuffer"
                                      : (info.param == sw::BufferMode::PacketGranularity
                                             ? "PacketGranularity"
                                             : "FlowGranularity");
                         });

TEST(ScenarioGen, SamplingIsDeterministic) {
  const auto a = verify::sample_scenario(5);
  const auto b = verify::sample_scenario(5);
  EXPECT_EQ(a.describe(), b.describe());
  const auto c = verify::sample_scenario(6);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(ScenarioFuzz, SmokeSeedsPassAllInvariants) {
  for (const std::uint64_t seed : {1ULL, 7ULL}) {
    const auto outcome = verify::run_scenario(verify::sample_scenario(seed));
    std::string detail = outcome.scenario.describe();
    for (const auto& f : outcome.failures) detail += "\n  " + f;
    EXPECT_TRUE(outcome.ok()) << detail;
  }
}

// Determinism contract of the parallel sweep engine: run_sweep with any job
// count must produce bit-identical SweepResults — and byte-identical CSV —
// to the sequential jobs=1 path. This test is also the ThreadSanitizer
// target in scripts/sanitize_check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "core/sweep.hpp"
#include "verify/invariants.hpp"

namespace sdnbuf::core {
namespace {

SweepConfig small_sweep() {
  SweepConfig sweep;
  sweep.base.mode = sw::BufferMode::PacketGranularity;
  sweep.base.buffer_capacity = 64;
  sweep.base.n_flows = 40;
  sweep.base.packets_per_flow = 2;
  sweep.base.frame_size = 1000;
  sweep.rates_mbps = {10.0, 50.0};
  sweep.repetitions = 6;
  return sweep;
}

TEST(ParallelSweep, EightJobsBitIdenticalToSequential) {
  SweepConfig sweep = small_sweep();

  sweep.jobs = 1;
  const SweepResult sequential = run_sweep(sweep, "contract");
  sweep.jobs = 8;
  const SweepResult parallel = run_sweep(sweep, "contract");

  EXPECT_TRUE(bitwise_equal(sequential, parallel));

  std::ostringstream seq_csv;
  std::ostringstream par_csv;
  write_csv(sequential, seq_csv);
  write_csv(parallel, par_csv);
  EXPECT_EQ(seq_csv.str(), par_csv.str());
  EXPECT_FALSE(seq_csv.str().empty());
}

TEST(ParallelSweep, RepeatedParallelRunsAreStable) {
  SweepConfig sweep = small_sweep();
  sweep.jobs = 4;
  const SweepResult first = run_sweep(sweep, "stable");
  const SweepResult second = run_sweep(sweep, "stable");
  EXPECT_TRUE(bitwise_equal(first, second));
}

TEST(ParallelSweep, JobsAboveCellCountClamped) {
  SweepConfig sweep = small_sweep();
  sweep.rates_mbps = {10.0};
  sweep.repetitions = 2;  // 2 cells
  sweep.jobs = 64;        // far more workers than cells
  const SweepResult many = run_sweep(sweep, "clamp");
  sweep.jobs = 1;
  const SweepResult one = run_sweep(sweep, "clamp");
  EXPECT_TRUE(bitwise_equal(many, one));
}

TEST(ParallelSweep, ProgressFiresOncePerCell) {
  SweepConfig sweep = small_sweep();
  sweep.jobs = 8;
  std::atomic<int> calls{0};
  (void)run_sweep(sweep, "progress", [&calls](double, int) { calls.fetch_add(1); });
  const int cells = static_cast<int>(sweep.rates_mbps.size()) * sweep.repetitions;
  EXPECT_EQ(calls.load(), cells);
}

TEST(ParallelSweep, ObserverForcesSequentialPathAndStillMatches) {
  // An invariant observer is a single shared sink, so run_sweep must ignore
  // jobs > 1 — and the result must still match the plain sequential sweep
  // (the observer itself does not perturb the simulation). One registry is
  // valid for one run, hence the single-cell sweep.
  SweepConfig sweep = small_sweep();
  sweep.rates_mbps = {10.0};
  sweep.repetitions = 1;

  sweep.jobs = 1;
  const SweepResult plain = run_sweep(sweep, "observed");

  verify::InvariantRegistry registry;
  sweep.base.observer = &registry;
  sweep.jobs = 8;
  const SweepResult observed = run_sweep(sweep, "observed");

  EXPECT_TRUE(bitwise_equal(plain, observed));
  EXPECT_GT(registry.events_observed(), 0u);
  registry.finalize(/*expect_all_delivered=*/true);
  EXPECT_TRUE(registry.ok()) << registry.report();
}

}  // namespace
}  // namespace sdnbuf::core

// Unit tests for the switch: datapath fast path, miss handling under all
// three buffer modes (packet_in sizes, buffer_id semantics, exhaustion
// fallback), packet_out/flow_mod execution, flooding, flow-granularity
// re-request, expiry sweeps, and flow_removed emission.
//
// The controller side is scripted by hand so every switch behaviour is
// observable in isolation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "switchd/switch.hpp"

namespace sdnbuf::sw {
namespace {

net::Packet flow_packet(std::uint32_t flow, std::uint32_t seq = 0,
                        std::uint32_t frame_size = 1000) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, frame_size);
  p.flow_id = flow;
  p.seq_in_flow = seq;
  return p;
}

struct SwitchTest : ::testing::Test {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link host1_egress{sim, "h1", 100e6, sim::SimTime::microseconds(20)};
  net::Link host2_egress{sim, "h2", 100e6, sim::SimTime::microseconds(20)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  std::vector<of::PacketIn> pkt_ins;
  std::vector<net::Packet> at_host1;
  std::vector<net::Packet> at_host2;
  std::unique_ptr<Switch> ovs;

  Switch& make(BufferMode mode, std::size_t buffer_capacity = 256,
               SwitchConfig base = SwitchConfig{}) {
    base.buffer_mode = mode;
    base.buffer_capacity = buffer_capacity;
    ovs = std::make_unique<Switch>(sim, base, 7);
    ovs->attach_port(1, host1_egress, [this](const net::Packet& p) { at_host1.push_back(p); });
    ovs->attach_port(2, host2_egress, [this](const net::Packet& p) { at_host2.push_back(p); });
    ovs->connect(channel);
    channel.set_controller_handler([this](const of::OfMessage& m, std::size_t) {
      if (const auto* pi = std::get_if<of::PacketIn>(&m)) pkt_ins.push_back(*pi);
    });
    return *ovs;
  }

  // Scripted controller action: install an exact rule for `p` and release.
  void respond(const of::PacketIn& pi, std::uint16_t out_port) {
    const auto parsed = net::Packet::parse(pi.data, pi.total_len);
    ASSERT_TRUE(parsed.has_value());
    of::FlowMod fm;
    fm.xid = pi.xid;
    fm.match = of::Match::exact_from(*parsed, pi.in_port);
    fm.priority = 100;
    fm.actions = of::output_to(out_port);
    channel.send_from_controller(fm);
    of::PacketOut po;
    po.xid = pi.xid;
    po.buffer_id = pi.buffer_id;
    po.in_port = pi.in_port;
    po.actions = of::output_to(out_port);
    if (pi.buffer_id == of::kNoBuffer) po.data = pi.data;
    channel.send_from_controller(po);
  }
};

TEST_F(SwitchTest, MissTriggersPacketIn) {
  Switch& sw = make(BufferMode::NoBuffer);
  sw.receive(1, flow_packet(0));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 1u);
  EXPECT_EQ(pkt_ins[0].in_port, 1);
  EXPECT_EQ(pkt_ins[0].reason, of::PacketInReason::NoMatch);
  EXPECT_EQ(sw.counters().table_misses, 1u);
  EXPECT_EQ(sw.counters().pkt_ins_sent, 1u);
}

TEST_F(SwitchTest, NoBufferPacketInCarriesWholeFrame) {
  make(BufferMode::NoBuffer);
  ovs->receive(1, flow_packet(0, 0, 1000));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 1u);
  EXPECT_EQ(pkt_ins[0].buffer_id, of::kNoBuffer);
  EXPECT_EQ(pkt_ins[0].data.size(), 1000u);
  EXPECT_EQ(pkt_ins[0].total_len, 1000);
}

TEST_F(SwitchTest, PacketGranularityPacketInCarriesMissSendLen) {
  Switch& sw = make(BufferMode::PacketGranularity);
  sw.receive(1, flow_packet(0, 0, 1000));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 1u);
  EXPECT_NE(pkt_ins[0].buffer_id, of::kNoBuffer);
  EXPECT_EQ(pkt_ins[0].data.size(), std::size_t{of::kDefaultMissSendLen});
  EXPECT_EQ(pkt_ins[0].total_len, 1000);  // total_len still reports the full frame
  EXPECT_EQ(sw.packet_buffer()->packets_stored(), 1u);
}

TEST_F(SwitchTest, PacketOutReleasesBufferedPacket) {
  Switch& sw = make(BufferMode::PacketGranularity);
  sw.receive(1, flow_packet(0));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 1u);
  respond(pkt_ins[0], 2);
  sim.run();
  ASSERT_EQ(at_host2.size(), 1u);
  EXPECT_EQ(at_host2[0].flow_id, 0u);
  EXPECT_EQ(sw.packet_buffer()->packets_stored(), 0u);
  EXPECT_EQ(sw.counters().packets_forwarded, 1u);
}

TEST_F(SwitchTest, RuleInstalledByFlowModForwardsSubsequentPackets) {
  Switch& sw = make(BufferMode::PacketGranularity);
  sw.receive(1, flow_packet(0, 0));
  sim.run();
  respond(pkt_ins[0], 2);
  sim.run();
  // Next packet of the same flow now hits the table: no new packet_in.
  sw.receive(1, flow_packet(0, 1));
  sim.run();
  EXPECT_EQ(pkt_ins.size(), 1u);
  EXPECT_EQ(at_host2.size(), 2u);
  EXPECT_EQ(sw.counters().table_hits, 1u);
  EXPECT_EQ(sw.flow_table().size(), 1u);
}

TEST_F(SwitchTest, BufferExhaustionFallsBackToFullFrame) {
  Switch& sw = make(BufferMode::PacketGranularity, /*buffer_capacity=*/2);
  for (std::uint32_t f = 0; f < 4; ++f) sw.receive(1, flow_packet(f));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 4u);
  int full = 0;
  for (const auto& pi : pkt_ins) {
    if (pi.buffer_id == of::kNoBuffer) {
      ++full;
      EXPECT_EQ(pi.data.size(), 1000u);  // spec: entire frame when not buffered
    }
  }
  EXPECT_EQ(full, 2);
  EXPECT_EQ(sw.counters().full_frame_pkt_ins, 2u);
}

TEST_F(SwitchTest, FlowGranularityOnePacketInPerFlow) {
  Switch& sw = make(BufferMode::FlowGranularity);
  // Algorithm 1: 5 packets of one flow arriving before any response.
  for (std::uint32_t seq = 0; seq < 5; ++seq) sw.receive(1, flow_packet(0, seq));
  sim.run_until(sim::SimTime::milliseconds(5));
  EXPECT_EQ(pkt_ins.size(), 1u);
  EXPECT_EQ(sw.flow_buffer()->packets_buffered(), 5u);
  EXPECT_EQ(sw.flow_buffer()->units_in_use(), 1u);  // one shared buffer_id slot
  EXPECT_EQ(sw.flow_buffer()->flows_buffered(), 1u);
  ovs->stop();
  sim.run();
}

TEST_F(SwitchTest, FlowGranularityPacketOutReleasesWholeFlowInOrder) {
  Switch& sw = make(BufferMode::FlowGranularity);
  for (std::uint32_t seq = 0; seq < 5; ++seq) sw.receive(1, flow_packet(0, seq));
  sim.run_until(sim::SimTime::milliseconds(2));
  ASSERT_EQ(pkt_ins.size(), 1u);
  respond(pkt_ins[0], 2);
  sim.run_until(sim::SimTime::milliseconds(10));
  ASSERT_EQ(at_host2.size(), 5u);
  for (std::uint32_t seq = 0; seq < 5; ++seq) EXPECT_EQ(at_host2[seq].seq_in_flow, seq);
  EXPECT_EQ(sw.flow_buffer()->flows_buffered(), 0u);
  ovs->stop();
  sim.run();
}

TEST_F(SwitchTest, FlowGranularityDistinctFlowsDistinctRequests) {
  Switch& sw = make(BufferMode::FlowGranularity);
  sw.receive(1, flow_packet(0, 0));
  sw.receive(1, flow_packet(1, 0));
  sw.receive(1, flow_packet(0, 1));
  sim.run_until(sim::SimTime::milliseconds(2));
  EXPECT_EQ(pkt_ins.size(), 2u);  // one per flow
  EXPECT_NE(pkt_ins[0].buffer_id, pkt_ins[1].buffer_id);
  ovs->stop();
  sim.run();
}

TEST_F(SwitchTest, FlowGranularityResendAfterTimeout) {
  SwitchConfig config;
  config.costs.flow_resend_timeout = sim::SimTime::milliseconds(5);
  Switch& sw = make(BufferMode::FlowGranularity, 256, config);
  sw.receive(1, flow_packet(0));
  // No response from the controller: after the timeout the switch must ask
  // again (Algorithm 1, lines 12-13) with the resend reason.
  sim.run_until(sim::SimTime::milliseconds(14));
  ASSERT_GE(pkt_ins.size(), 2u);
  EXPECT_EQ(pkt_ins[0].reason, of::PacketInReason::NoMatch);
  EXPECT_EQ(pkt_ins[1].reason, of::PacketInReason::FlowResend);
  EXPECT_EQ(pkt_ins[1].buffer_id, pkt_ins[0].buffer_id);
  EXPECT_GE(sw.counters().resend_pkt_ins, 1u);
  ovs->stop();
  sim.run();
}

TEST_F(SwitchTest, FlowGranularityNoResendAfterRelease) {
  SwitchConfig config;
  config.costs.flow_resend_timeout = sim::SimTime::milliseconds(5);
  Switch& sw = make(BufferMode::FlowGranularity, 256, config);
  sw.receive(1, flow_packet(0));
  sim.run_until(sim::SimTime::milliseconds(2));
  ASSERT_EQ(pkt_ins.size(), 1u);
  respond(pkt_ins[0], 2);
  sim.run_until(sim::SimTime::milliseconds(30));
  EXPECT_EQ(pkt_ins.size(), 1u);  // released: the timeout check goes quiet
  EXPECT_EQ(sw.counters().resend_pkt_ins, 0u);
  ovs->stop();
  sim.run();
}

TEST_F(SwitchTest, FlowModWithBufferIdInstallsAndReleases) {
  // The piggybacked one-message variant: flow_mod names the buffer.
  Switch& sw = make(BufferMode::PacketGranularity);
  sw.receive(1, flow_packet(0));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 1u);
  const auto parsed = net::Packet::parse(pkt_ins[0].data, pkt_ins[0].total_len);
  of::FlowMod fm;
  fm.xid = pkt_ins[0].xid;
  fm.match = of::Match::exact_from(*parsed, 1);
  fm.buffer_id = pkt_ins[0].buffer_id;
  fm.actions = of::output_to(2);
  channel.send_from_controller(fm);
  sim.run();
  EXPECT_EQ(at_host2.size(), 1u);
  EXPECT_EQ(sw.flow_table().size(), 1u);
  EXPECT_EQ(sw.packet_buffer()->packets_stored(), 0u);
}

TEST_F(SwitchTest, PacketOutUnknownBufferIdCounted) {
  Switch& sw = make(BufferMode::PacketGranularity);
  of::PacketOut po;
  po.buffer_id = 0xbeef;
  po.actions = of::output_to(2);
  channel.send_from_controller(po);
  sim.run();
  EXPECT_EQ(sw.counters().unknown_buffer_releases, 1u);
  EXPECT_TRUE(at_host2.empty());
}

TEST_F(SwitchTest, PacketOutWithDataForwardsParsedFrame) {
  Switch& sw = make(BufferMode::NoBuffer);
  of::PacketOut po;
  po.buffer_id = of::kNoBuffer;
  po.in_port = 1;
  po.actions = of::output_to(2);
  po.data = flow_packet(3).serialize(1000);
  channel.send_from_controller(po);
  sim.run();
  ASSERT_EQ(at_host2.size(), 1u);
  EXPECT_EQ(at_host2[0].frame_size, 1000u);
  EXPECT_EQ(sw.counters().pkt_outs_handled, 1u);
}

TEST_F(SwitchTest, FloodGoesEverywhereButInPort) {
  make(BufferMode::NoBuffer);
  of::PacketOut po;
  po.in_port = 1;
  po.actions = of::output_to(of::kPortFlood);
  po.data = flow_packet(0).serialize(1000);
  channel.send_from_controller(po);
  sim.run();
  EXPECT_TRUE(at_host1.empty());  // not back out of the ingress port
  EXPECT_EQ(at_host2.size(), 1u);
}

TEST_F(SwitchTest, DropActionDropsBufferedPacket) {
  Switch& sw = make(BufferMode::PacketGranularity);
  sw.receive(1, flow_packet(0));
  sim.run();
  of::PacketOut po;
  po.xid = pkt_ins[0].xid;
  po.buffer_id = pkt_ins[0].buffer_id;
  po.actions = of::drop();
  channel.send_from_controller(po);
  sim.run();
  EXPECT_TRUE(at_host2.empty());
  EXPECT_EQ(sw.counters().packets_dropped, 1u);
}

TEST_F(SwitchTest, SetDlActionsRewriteHeaders) {
  Switch& sw = make(BufferMode::NoBuffer);
  of::FlowMod fm;
  fm.match = of::Match::wildcard_all();
  fm.priority = 1;
  fm.actions = {of::SetDlDstAction{net::MacAddress::from_index(9)}, of::OutputAction{2, 0}};
  channel.send_from_controller(fm);
  sim.run();
  sw.receive(1, flow_packet(0));
  sim.run();
  ASSERT_EQ(at_host2.size(), 1u);
  EXPECT_EQ(at_host2[0].eth.dst, net::MacAddress::from_index(9));
}

TEST_F(SwitchTest, EchoAndBarrierAndFeaturesAnswered) {
  make(BufferMode::PacketGranularity, 64);
  std::vector<of::OfMessage> replies;
  channel.set_controller_handler(
      [&](const of::OfMessage& m, std::size_t) { replies.push_back(m); });
  channel.send_from_controller(of::EchoRequest{1});
  channel.send_from_controller(of::BarrierRequest{2});
  channel.send_from_controller(of::FeaturesRequest{3});
  sim.run();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(std::get<of::EchoReply>(replies[0]).xid, 1u);
  EXPECT_EQ(std::get<of::BarrierReply>(replies[1]).xid, 2u);
  const auto& features = std::get<of::FeaturesReply>(replies[2]);
  EXPECT_EQ(features.xid, 3u);
  EXPECT_EQ(features.n_buffers, 64u);
  EXPECT_EQ(features.ports.size(), 2u);
}

TEST_F(SwitchTest, NoBufferAdvertisesZeroBuffers) {
  make(BufferMode::NoBuffer);
  std::optional<of::FeaturesReply> features;
  channel.set_controller_handler([&](const of::OfMessage& m, std::size_t) {
    if (const auto* f = std::get_if<of::FeaturesReply>(&m)) features = *f;
  });
  channel.send_from_controller(of::FeaturesRequest{1});
  sim.run();
  ASSERT_TRUE(features.has_value());
  EXPECT_EQ(features->n_buffers, 0u);
}

TEST_F(SwitchTest, SweepExpiresIdleRulesAndEmitsFlowRemoved) {
  SwitchConfig config;
  config.send_flow_removed = true;
  Switch& sw = make(BufferMode::NoBuffer, 256, config);
  sw.start();
  std::vector<of::FlowRemoved> removed;
  channel.set_controller_handler([&](const of::OfMessage& m, std::size_t) {
    if (const auto* fr = std::get_if<of::FlowRemoved>(&m)) removed.push_back(*fr);
  });
  of::FlowMod fm;
  fm.match = of::Match::exact_from(flow_packet(0), 1);
  fm.idle_timeout_s = 1;
  fm.flags = of::kFlowModSendFlowRem;
  fm.actions = of::output_to(2);
  channel.send_from_controller(fm);
  sim.run_until(sim::SimTime::milliseconds(1500));
  EXPECT_EQ(sw.flow_table().size(), 0u);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].reason, of::FlowRemovedReason::IdleTimeout);
  EXPECT_EQ(sw.counters().flow_removed_sent, 1u);
  sw.stop();
  sim.run();
}

TEST_F(SwitchTest, SweepExpiresStaleBufferedPackets) {
  SwitchConfig config;
  config.costs.buffer_expiry = sim::SimTime::milliseconds(50);
  config.costs.flow_resend_timeout = sim::SimTime::seconds(10);  // keep resends out
  Switch& sw = make(BufferMode::PacketGranularity, 256, config);
  sw.start();
  sw.receive(1, flow_packet(0));
  // Never respond: the buffered packet must be expired by the sweep.
  sim.run_until(sim::SimTime::milliseconds(400));
  EXPECT_EQ(sw.packet_buffer()->packets_stored(), 0u);
  EXPECT_GE(sw.counters().buffered_packets_expired, 1u);
  sw.stop();
  sim.run();
}

TEST_F(SwitchTest, CpuAndBusAccumulateWork) {
  Switch& sw = make(BufferMode::NoBuffer);
  sw.receive(1, flow_packet(0));
  sim.run();
  EXPECT_GT(sw.cpu().busy_time().ns(), 0);
  EXPECT_GT(sw.bus().busy_time().ns(), 0);
  // The full 1000-byte frame crossed the 140 Mbps bus: ~57 us.
  EXPECT_NEAR(sw.bus().busy_time().us(), 1000.0 * 8 / 140.0, 1.0);
}

TEST_F(SwitchTest, BufferedMissMovesOnlyHeadersOverBus) {
  Switch& sw = make(BufferMode::PacketGranularity);
  sw.receive(1, flow_packet(0));
  sim.run();
  // Only miss_send_len = 128 bytes crossed: ~7.3 us at 140 Mbps.
  EXPECT_NEAR(sw.bus().busy_time().us(), 128.0 * 8 / 140.0, 0.5);
}

TEST_F(SwitchTest, OutputToInPortSendsBack) {
  Switch& sw = make(BufferMode::NoBuffer);
  of::FlowMod fm;
  fm.match = of::Match::wildcard_all();
  fm.priority = 1;
  fm.actions = of::output_to(of::kPortInPort);
  channel.send_from_controller(fm);
  sim.run();
  sw.receive(1, flow_packet(0));
  sim.run();
  EXPECT_EQ(at_host1.size(), 1u);  // hairpinned out of the ingress port
  EXPECT_TRUE(at_host2.empty());
}

TEST_F(SwitchTest, OutputToControllerSendsPacketInWithActionReason) {
  Switch& sw = make(BufferMode::NoBuffer);
  of::FlowMod fm;
  fm.match = of::Match::wildcard_all();
  fm.priority = 1;
  fm.actions = of::output_to(of::kPortController, 64);
  channel.send_from_controller(fm);
  sim.run();
  sw.receive(1, flow_packet(0));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 1u);
  EXPECT_EQ(pkt_ins[0].reason, of::PacketInReason::Action);
  EXPECT_EQ(pkt_ins[0].data.size(), 64u);  // the action's max_len cap
}

TEST_F(SwitchTest, FlowModDeleteRemovesRules) {
  Switch& sw = make(BufferMode::NoBuffer);
  // Install two exact rules, then delete everything with a wildcard match.
  for (std::uint32_t f = 0; f < 2; ++f) {
    of::FlowMod fm;
    fm.match = of::Match::exact_from(flow_packet(f), 1);
    fm.priority = 100;
    fm.actions = of::output_to(2);
    channel.send_from_controller(fm);
  }
  sim.run();
  EXPECT_EQ(sw.flow_table().size(), 2u);
  of::FlowMod del;
  del.command = of::FlowModCommand::Delete;
  del.match = of::Match::wildcard_all();
  channel.send_from_controller(del);
  sim.run();
  EXPECT_EQ(sw.flow_table().size(), 0u);
}

TEST_F(SwitchTest, ChainedActionsRewriteThenOutput) {
  Switch& sw = make(BufferMode::PacketGranularity);
  sw.receive(1, flow_packet(0));
  sim.run();
  ASSERT_EQ(pkt_ins.size(), 1u);
  of::PacketOut po;
  po.xid = pkt_ins[0].xid;
  po.buffer_id = pkt_ins[0].buffer_id;
  po.actions = {of::SetDlSrcAction{net::MacAddress::from_index(7)},
                of::SetDlDstAction{net::MacAddress::from_index(8)}, of::OutputAction{2, 0}};
  channel.send_from_controller(po);
  sim.run();
  ASSERT_EQ(at_host2.size(), 1u);
  EXPECT_EQ(at_host2[0].eth.src, net::MacAddress::from_index(7));
  EXPECT_EQ(at_host2[0].eth.dst, net::MacAddress::from_index(8));
}

TEST_F(SwitchTest, EgressToUnknownPortDrops) {
  Switch& sw = make(BufferMode::NoBuffer);
  of::FlowMod fm;
  fm.match = of::Match::wildcard_all();
  fm.priority = 1;
  fm.actions = of::output_to(42);  // nonexistent port
  channel.send_from_controller(fm);
  sim.run();
  sw.receive(1, flow_packet(0));
  sim.run();
  EXPECT_EQ(sw.counters().packets_dropped, 1u);
  EXPECT_TRUE(at_host2.empty());
}

}  // namespace
}  // namespace sdnbuf::sw

// Unit tests for util::ThreadPool: completion, FIFO dequeue order, exception
// propagation through wait_idle, drain-on-destruct, and reusability.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace sdnbuf::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count]() { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  bool ran = false;
  pool.submit([&ran]() { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, SingleWorkerDequeuesInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.submit([&order, i]() { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([]() { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool remains usable and a clean wait_idle
  // does not re-report it.
  std::atomic<bool> ran{false};
  pool.submit([&ran]() { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, LaterTasksStillRunAfterAnExceptionalOne) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit([]() { throw std::runtime_error("boom"); });
  for (int i = 0; i < 5; ++i) {
    pool.submit([&count]() { count.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    // The first task holds the lone worker busy so the rest sit queued when
    // the destructor starts.
    pool.submit([]() { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count]() { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, TasksRunOffTheSubmittingThread) {
  ThreadPool pool(2);
  const auto submitter = std::this_thread::get_id();
  std::mutex mu;
  std::vector<std::thread::id> ids;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&mu, &ids]() {
      const std::lock_guard<std::mutex> lock(mu);
      ids.push_back(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  ASSERT_EQ(ids.size(), 8u);
  for (const auto& id : ids) EXPECT_NE(id, submitter);
}

TEST(ThreadPool, DefaultParallelismIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_parallelism(), 1u);
}

}  // namespace
}  // namespace sdnbuf::util

// Unit tests for the flow table: exact/wildcard lookup, priorities,
// counters, idle/hard timeouts, capacity eviction (LRU), delete semantics.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/packet.hpp"
#include "switchd/flow_table.hpp"

namespace sdnbuf::sw {
namespace {

net::Packet packet_for_flow(std::uint32_t flow) {
  return net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                              net::Ipv4Address{0x0a010001u + flow},
                              net::Ipv4Address::from_octets(10, 2, 0, 1),
                              static_cast<std::uint16_t>(10000 + flow), 9, 1000);
}

FlowEntry exact_entry(std::uint32_t flow, std::uint16_t in_port = 1,
                      std::uint16_t priority = 100) {
  FlowEntry e;
  e.match = of::Match::exact_from(packet_for_flow(flow), in_port);
  e.priority = priority;
  e.actions = of::output_to(2);
  return e;
}

TEST(FlowTable, EmptyTableMisses) {
  FlowTable table{16};
  EXPECT_EQ(table.lookup(packet_for_flow(0), 1, sim::SimTime::zero()), nullptr);
  EXPECT_EQ(table.lookups(), 1u);
  EXPECT_EQ(table.hits(), 0u);
}

TEST(FlowTable, ExactMatchHit) {
  FlowTable table{16};
  table.add(exact_entry(0), sim::SimTime::zero());
  auto* e = table.lookup(packet_for_flow(0), 1, sim::SimTime::milliseconds(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packet_count, 1u);
  EXPECT_EQ(e->byte_count, 1000u);
  EXPECT_EQ(e->last_used, sim::SimTime::milliseconds(1));
  // Wrong in_port misses.
  EXPECT_EQ(table.lookup(packet_for_flow(0), 2, sim::SimTime::zero()), nullptr);
  // Other flow misses.
  EXPECT_EQ(table.lookup(packet_for_flow(1), 1, sim::SimTime::zero()), nullptr);
}

TEST(FlowTable, WildcardMatch) {
  FlowTable table{16};
  FlowEntry wild;
  wild.match = of::Match::wildcard_all();
  wild.priority = 1;
  wild.actions = of::drop();
  table.add(wild, sim::SimTime::zero());
  EXPECT_NE(table.lookup(packet_for_flow(42), 3, sim::SimTime::zero()), nullptr);
}

TEST(FlowTable, HigherPriorityWildcardBeatsExact) {
  FlowTable table{16};
  table.add(exact_entry(0, 1, 10), sim::SimTime::zero());
  FlowEntry wild;
  wild.match = of::Match::wildcard_all();
  wild.priority = 200;
  wild.actions = of::drop();
  table.add(wild, sim::SimTime::zero());
  auto* e = table.lookup(packet_for_flow(0), 1, sim::SimTime::zero());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->priority, 200);
  EXPECT_TRUE(e->actions.empty());
}

TEST(FlowTable, ExactBeatsLowerPriorityWildcard) {
  FlowTable table{16};
  table.add(exact_entry(0, 1, 100), sim::SimTime::zero());
  FlowEntry wild;
  wild.match = of::Match::wildcard_all();
  wild.priority = 1;
  table.add(wild, sim::SimTime::zero());
  auto* e = table.lookup(packet_for_flow(0), 1, sim::SimTime::zero());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->priority, 100);
}

TEST(FlowTable, AddOverwritesSameMatchAndPriority) {
  FlowTable table{16};
  table.add(exact_entry(0), sim::SimTime::zero());
  FlowEntry replacement = exact_entry(0);
  replacement.actions = of::output_to(7);
  const auto result = table.add(replacement, sim::SimTime::zero());
  EXPECT_TRUE(result.replaced);
  EXPECT_EQ(table.size(), 1u);
  auto* e = table.lookup(packet_for_flow(0), 1, sim::SimTime::zero());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(std::get<of::OutputAction>(e->actions[0]).port, 7);
}

TEST(FlowTable, PeekDoesNotUpdateCounters) {
  FlowTable table{16};
  table.add(exact_entry(0), sim::SimTime::zero());
  const auto* e = table.peek(packet_for_flow(0), 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packet_count, 0u);
}

TEST(FlowTable, IdleTimeoutExpires) {
  FlowTable table{16};
  FlowEntry e = exact_entry(0);
  e.idle_timeout_s = 5;
  table.add(e, sim::SimTime::zero());
  // Used at t=2s: still alive at t=6s (idle 4s), gone at t=8s (idle 6s).
  (void)table.lookup(packet_for_flow(0), 1, sim::SimTime::seconds(2));
  EXPECT_TRUE(table.expire(sim::SimTime::seconds(6)).empty());
  const auto removed = table.expire(sim::SimTime::seconds(8));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].reason, of::FlowRemovedReason::IdleTimeout);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, HardTimeoutExpiresEvenIfUsed) {
  FlowTable table{16};
  FlowEntry e = exact_entry(0);
  e.hard_timeout_s = 3;
  table.add(e, sim::SimTime::zero());
  (void)table.lookup(packet_for_flow(0), 1, sim::SimTime::seconds(2));  // recent use doesn't matter
  const auto removed = table.expire(sim::SimTime::seconds(3));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].reason, of::FlowRemovedReason::HardTimeout);
}

TEST(FlowTable, ZeroTimeoutsNeverExpire) {
  FlowTable table{16};
  table.add(exact_entry(0), sim::SimTime::zero());
  EXPECT_TRUE(table.expire(sim::SimTime::seconds(3600)).empty());
}

TEST(FlowTable, CapacityEvictsLru) {
  FlowTable table{3};
  for (std::uint32_t f = 0; f < 3; ++f) {
    FlowEntry e = exact_entry(f);
    table.add(e, sim::SimTime::milliseconds(f));
  }
  // Touch flows 0 and 2 so flow 1 is the LRU.
  (void)table.lookup(packet_for_flow(0), 1, sim::SimTime::seconds(1));
  (void)table.lookup(packet_for_flow(2), 1, sim::SimTime::seconds(2));
  const auto result = table.add(exact_entry(9), sim::SimTime::seconds(3));
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].reason, of::FlowRemovedReason::Eviction);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.evictions(), 1u);
  // Flow 1 is gone; the others remain.
  EXPECT_EQ(table.lookup(packet_for_flow(1), 1, sim::SimTime::seconds(4)), nullptr);
  EXPECT_NE(table.lookup(packet_for_flow(0), 1, sim::SimTime::seconds(4)), nullptr);
  EXPECT_NE(table.lookup(packet_for_flow(9), 1, sim::SimTime::seconds(4)), nullptr);
}

TEST(FlowTable, StrictDeleteRemovesExactEntry) {
  FlowTable table{16};
  table.add(exact_entry(0, 1, 100), sim::SimTime::zero());
  table.add(exact_entry(1, 1, 100), sim::SimTime::zero());
  // Strict delete with wrong priority removes nothing.
  auto removed = table.remove(of::Match::exact_from(packet_for_flow(0), 1), 50, true);
  EXPECT_TRUE(removed.empty());
  removed = table.remove(of::Match::exact_from(packet_for_flow(0), 1), 100, true);
  EXPECT_EQ(removed.size(), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, NonStrictDeleteUsesSubsumption) {
  FlowTable table{16};
  for (std::uint32_t f = 0; f < 4; ++f) table.add(exact_entry(f), sim::SimTime::zero());
  // A wildcard-all match deletes everything.
  const auto removed = table.remove(of::Match::wildcard_all(), std::nullopt, false);
  EXPECT_EQ(removed.size(), 4u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, NonStrictDeleteRemovesOnlySubsumedEntries) {
  FlowTable table{16};
  // Four flows toward 10.2.0.1 plus one toward a different destination.
  for (std::uint32_t f = 0; f < 4; ++f) table.add(exact_entry(f), sim::SimTime::zero());
  FlowEntry other = exact_entry(0);
  other.match.nw_dst = net::Ipv4Address::from_octets(10, 3, 0, 1);
  table.add(other, sim::SimTime::zero());

  // Delete everything toward 10.2.0.1: wildcard all fields except dl_type
  // and an exact nw_dst. The entry toward 10.3.0.1 is not subsumed.
  of::Match by_dst = of::Match::wildcard_all();
  by_dst.wildcards &= ~of::kWildcardDlType;
  by_dst.dl_type = 0x0800;
  by_dst.set_nw_dst_ignored_bits(0);
  by_dst.nw_dst = net::Ipv4Address::from_octets(10, 2, 0, 1);
  const auto removed = table.remove(by_dst, std::nullopt, false);
  EXPECT_EQ(removed.size(), 4u);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.entries()[0]->match.nw_dst, net::Ipv4Address::from_octets(10, 3, 0, 1));
}

TEST(FlowTable, NonStrictDeleteHonoursCidrPrefixes) {
  FlowTable table{16};
  // Sources 10.1.0.1 .. 10.1.0.4 plus one in a different /24 (10.1.1.45).
  for (std::uint32_t f = 0; f < 4; ++f) table.add(exact_entry(f), sim::SimTime::zero());
  table.add(exact_entry(300), sim::SimTime::zero());

  of::Match by_src_net = of::Match::wildcard_all();
  by_src_net.wildcards &= ~of::kWildcardDlType;
  by_src_net.dl_type = 0x0800;
  by_src_net.set_nw_src_ignored_bits(8);  // 10.1.0.0/24
  by_src_net.nw_src = net::Ipv4Address::from_octets(10, 1, 0, 0);
  const auto removed = table.remove(by_src_net, std::nullopt, false);
  EXPECT_EQ(removed.size(), 4u);
  EXPECT_EQ(table.size(), 1u);  // 10.1.1.45 survives
}

TEST(FlowTable, NonStrictDeleteIgnoresPriorityAndSparesBroaderEntries) {
  FlowTable table{16};
  table.add(exact_entry(0, 1, 10), sim::SimTime::zero());
  table.add(exact_entry(1, 1, 200), sim::SimTime::zero());
  FlowEntry broad;
  broad.match = of::Match::wildcard_all();
  broad.priority = 1;
  table.add(broad, sim::SimTime::zero());

  // An exact delete match subsumes only the identical exact entry — never
  // the wildcard-all entry, which matches strictly more packets — and
  // non-strict delete pays no attention to priorities.
  auto removed = table.remove(of::Match::exact_from(packet_for_flow(0), 1), std::nullopt, false);
  EXPECT_EQ(removed.size(), 1u);
  removed = table.remove(of::Match::exact_from(packet_for_flow(1), 1), std::nullopt, false);
  EXPECT_EQ(removed.size(), 1u);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.entries()[0]->match, of::Match::wildcard_all());
}

TEST(FlowTable, ManyExactEntriesFastPath) {
  FlowTable table{5000};
  for (std::uint32_t f = 0; f < 2000; ++f) table.add(exact_entry(f), sim::SimTime::zero());
  EXPECT_EQ(table.size(), 2000u);
  for (std::uint32_t f = 0; f < 2000; ++f) {
    ASSERT_NE(table.lookup(packet_for_flow(f), 1, sim::SimTime::zero()), nullptr) << f;
  }
  EXPECT_EQ(table.hits(), 2000u);
}

TEST(FlowTable, FifoEvictsOldestInstalled) {
  FlowTable table{2, EvictionPolicy::Fifo};
  table.add(exact_entry(0), sim::SimTime::milliseconds(1));
  table.add(exact_entry(1), sim::SimTime::milliseconds(2));
  // Touch flow 0 so LRU would evict flow 1 — FIFO must still evict flow 0
  // (oldest installed).
  (void)table.lookup(packet_for_flow(0), 1, sim::SimTime::seconds(1));
  table.add(exact_entry(2), sim::SimTime::seconds(2));
  EXPECT_EQ(table.lookup(packet_for_flow(0), 1, sim::SimTime::seconds(3)), nullptr);
  EXPECT_NE(table.lookup(packet_for_flow(1), 1, sim::SimTime::seconds(3)), nullptr);
}

TEST(FlowTable, RandomEvictionIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    FlowTable table{4, EvictionPolicy::Random, seed};
    std::vector<std::uint64_t> victims;
    for (std::uint32_t f = 0; f < 20; ++f) {
      FlowEntry e = exact_entry(f);
      e.cookie = f;
      for (const auto& removed : table.add(e, sim::SimTime::milliseconds(f)).evicted) {
        victims.push_back(removed.entry.cookie);
      }
    }
    return victims;
  };
  EXPECT_EQ(run(7), run(7));   // reproducible
  EXPECT_NE(run(7), run(8));   // seed-dependent

  // The same holds across a seed sweep: every seed replays exactly, and the
  // victim sequences genuinely vary between seeds.
  std::set<std::vector<std::uint64_t>> distinct;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto victims = run(seed);
    EXPECT_EQ(victims, run(seed)) << "seed " << seed;
    distinct.insert(victims);
  }
  EXPECT_GT(distinct.size(), 8u);
}

TEST(FlowTable, RandomEvictionCoversTheTable) {
  // Over many evictions a uniform victim picker must hit many distinct
  // positions, unlike FIFO/LRU which always pick the extremum.
  FlowTable table{8, EvictionPolicy::Random, 99};
  std::set<std::uint64_t> victims;
  for (std::uint32_t f = 0; f < 108; ++f) {
    FlowEntry e = exact_entry(f);
    e.cookie = f;
    for (const auto& removed : table.add(e, sim::SimTime::milliseconds(f)).evicted) {
      victims.insert(removed.entry.cookie);
    }
  }
  EXPECT_EQ(table.size(), 8u);
  EXPECT_GT(victims.size(), 50u);  // 100 evictions over a churning table
}

// Parameterized: eviction keeps the table within capacity for a range of
// capacities and insert counts.
class FlowTableCapacityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlowTableCapacityTest, NeverExceedsCapacity) {
  const std::size_t capacity = GetParam();
  FlowTable table{capacity};
  std::size_t evicted_total = 0;
  for (std::uint32_t f = 0; f < 100; ++f) {
    const auto result = table.add(exact_entry(f), sim::SimTime::milliseconds(f));
    evicted_total += result.evicted.size();
    EXPECT_LE(table.size(), capacity);
  }
  EXPECT_EQ(table.size(), std::min<std::size_t>(capacity, 100));
  EXPECT_EQ(evicted_total, 100 - std::min<std::size_t>(capacity, 100));
}

INSTANTIATE_TEST_SUITE_P(Capacities, FlowTableCapacityTest,
                         ::testing::Values(1, 2, 10, 64, 99, 100, 1000));

}  // namespace
}  // namespace sdnbuf::sw

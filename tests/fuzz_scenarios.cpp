// Seeded scenario fuzzer for the invariant-checking layer.
//
// Samples randomized experiment configurations, runs each under all three
// buffer mechanisms with an InvariantRegistry attached, and fails loudly
// (exit 1) with the offending seed and full parameter dump when any
// invariant is violated or the mechanisms disagree on what was delivered.
//
// Reproduce a reported failure with:
//   fuzz_scenarios --seed <base_seed> --runs 1 --offset <failing_index>
// (or simply --seed <base_seed + failing_index> --runs 1: scenario i of a
// run with base seed S is sample_scenario(S + i)).
#include <cstdio>
#include <string>

#include "util/cli.hpp"
#include "verify/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace sdnbuf;

  util::CliFlags flags(argc, argv, {"runs", "seed", "offset", "verbose", "force-faults",
                                    "force-fabric", "force-link-faults", "force-shards",
                                    "force-telemetry", "force-mmu"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\nusage: fuzz_scenarios [--runs N] [--seed S] [--offset K] "
                         "[--verbose] [--force-faults] [--force-fabric] [--force-link-faults] "
                         "[--force-shards] [--force-telemetry] [--force-mmu]\n",
                 flags.error().c_str());
    return 2;
  }
  const long long runs = flags.get_int("runs", 50);
  const long long base_seed = flags.get_int("seed", 1);
  const long long offset = flags.get_int("offset", 0);
  const bool verbose = flags.get_bool("verbose", false);
  const bool force_faults = flags.get_bool("force-faults", false);
  const bool force_fabric = flags.get_bool("force-fabric", false);
  const bool force_link_faults = flags.get_bool("force-link-faults", false);
  const bool force_shards = flags.get_bool("force-shards", false);
  const bool force_telemetry = flags.get_bool("force-telemetry", false);
  const bool force_mmu = flags.get_bool("force-mmu", false);
  if (force_faults && (force_fabric || force_link_faults || force_shards)) {
    std::fprintf(stderr,
                 "fuzz_scenarios: --force-faults excludes the fabric-forcing flags\n");
    return 2;
  }
  if (runs < 1) {
    std::fprintf(stderr, "fuzz_scenarios: --runs must be a positive integer\n");
    return 2;
  }

  int failed = 0;
  for (long long i = offset; i < offset + runs; ++i) {
    const verify::Scenario scenario =
        verify::sample_scenario(static_cast<std::uint64_t>(base_seed + i), force_faults,
                                force_fabric, force_link_faults, force_shards, force_telemetry,
                                force_mmu);
    const verify::ScenarioOutcome outcome = verify::run_scenario(scenario);
    if (outcome.ok()) {
      if (verbose) {
        std::printf("[%lld] ok   %s\n", i, scenario.describe().c_str());
        for (const auto& mode : outcome.modes) {
          std::printf("      %-18s events=%llu delivered=%llu/%llu drained=%d\n",
                      sw::buffer_mode_name(mode.mode),
                      static_cast<unsigned long long>(mode.events),
                      static_cast<unsigned long long>(mode.result.packets_delivered),
                      static_cast<unsigned long long>(mode.result.packets_sent),
                      mode.result.drained ? 1 : 0);
        }
        if (scenario.has_fabric()) {
          std::printf("      fabric             events=%llu delivered=%llu (3 modes)\n",
                      static_cast<unsigned long long>(outcome.fabric_events),
                      static_cast<unsigned long long>(outcome.fabric_delivered));
        }
      }
      continue;
    }
    ++failed;
    std::printf("[%lld] FAIL %s\n", i, scenario.describe().c_str());
    for (const auto& failure : outcome.failures) {
      std::printf("      %s\n", failure.c_str());
    }
    std::printf("      reproduce: fuzz_scenarios --seed %lld --runs 1%s%s%s%s%s%s\n",
                base_seed + i, force_faults ? " --force-faults" : "",
                force_fabric ? " --force-fabric" : "",
                force_link_faults ? " --force-link-faults" : "",
                force_shards ? " --force-shards" : "",
                force_telemetry ? " --force-telemetry" : "",
                force_mmu ? " --force-mmu" : "");
  }

  std::printf("fuzz_scenarios: %lld scenario(s) x 3 modes, %d failure(s)\n", runs, failed);
  return failed == 0 ? 0 : 1;
}

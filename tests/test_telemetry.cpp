// Tests for the in-fabric telemetry plane (DESIGN.md §15): INT per-hop
// stamping and harvest, the drop-attribution fate ledger, deterministic
// NetFlow-style sampling with the controller's FlowMonitor, the FlowSample
// vendor codec, egress high-water marks, and the telemetry-off bit-identity
// contract.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fabric_experiment.hpp"
#include "core/fabric_testbed.hpp"
#include "core/testbed.hpp"
#include "controller/flow_monitor.hpp"
#include "net/link.hpp"
#include "obs/fabric_observatory.hpp"
#include "openflow/constants.hpp"
#include "openflow/messages.hpp"
#include "switchd/egress_scheduler.hpp"
#include "topo/topology.hpp"

using namespace sdnbuf;

namespace {

net::Packet host_packet(unsigned src, unsigned dst, std::uint16_t src_port,
                        std::uint64_t flow_id, std::uint32_t seq = 0) {
  net::Packet p = net::make_udp_packet(
      topo::Topology::host_mac(src), topo::Topology::host_mac(dst),
      topo::Topology::host_ip(src), topo::Topology::host_ip(dst), src_port, 9, 1000);
  p.flow_id = flow_id;
  p.seq_in_flow = seq;
  return p;
}

void drain(core::FabricTestbed& bed, sim::SimTime grace = sim::SimTime::milliseconds(200)) {
  bed.sim().run_until(bed.sim().now() + grace);
  bed.stop();
  bed.sim().run();
}

core::FabricConfig leaf_spine_config(obs::FabricObservatory* obsy, unsigned int_depth,
                                     std::uint32_t sample_period = 0) {
  core::FabricConfig config;
  config.topology = topo::make_leaf_spine(2, 2, 2);
  config.routing = core::FabricRouting::TopologyPerHop;
  config.switch_config.buffer_mode = sw::BufferMode::PacketGranularity;
  config.switch_config.buffer_capacity = 256;
  config.switch_config.telemetry_int_depth = int_depth;
  config.switch_config.telemetry_sample_period = sample_period;
  config.observatory = obsy;
  return config;
}

of::FlowSample sample_record(std::uint32_t seq, std::uint32_t src_ip = 0x0a010001,
                             std::uint16_t src_port = 20000) {
  of::FlowSample s;
  s.sample_seq = seq;
  s.src_ip = src_ip;
  s.dst_ip = 0x0a020001;
  s.src_port = src_port;
  s.dst_port = 9;
  s.in_port = 1;
  s.frame_bytes = 1000;
  s.protocol = 17;
  return s;
}

}  // namespace

// --- FlowSample vendor codec ---

TEST(FlowSampleCodec, RoundTripsThroughTheWire) {
  of::FlowSample s = sample_record(7);
  s.xid = 99;
  const std::vector<std::uint8_t> wire = of::encode_message(s);
  EXPECT_EQ(wire.size(), of::kVendorFlowSampleSize);
  const auto back = of::decode_message(wire);
  ASSERT_TRUE(back.has_value());
  const auto* decoded = std::get_if<of::FlowSample>(&*back);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(*decoded, s);
}

// --- fate taxonomy ---

TEST(FateTaxonomy, DropSitesClassify) {
  using obs::PacketFate;
  EXPECT_EQ(obs::classify_drop_site("egress-queue"), PacketFate::QueueFull);
  EXPECT_EQ(obs::classify_drop_site("flood-queue"), PacketFate::QueueFull);
  EXPECT_EQ(obs::classify_drop_site("link-queue"), PacketFate::QueueFull);
  EXPECT_EQ(obs::classify_drop_site("link-down"), PacketFate::LinkFault);
  EXPECT_EQ(obs::classify_drop_site("port-down"), PacketFate::LinkFault);
  EXPECT_EQ(obs::classify_drop_site("switch-crashed"), PacketFate::LinkFault);
  EXPECT_EQ(obs::classify_drop_site("no-actions"), PacketFate::TableMissStorm);
  EXPECT_EQ(obs::classify_drop_site("hop-limit"), PacketFate::HopLimit);
  EXPECT_EQ(obs::classify_drop_site("fail-secure"), PacketFate::FailSecure);
  EXPECT_EQ(obs::classify_drop_site("unknown-port"), PacketFate::Other);
  EXPECT_EQ(obs::classify_drop_site(nullptr), PacketFate::Other);
}

// --- ledger state machine ---

TEST(FateLedger, FirstFateWinsAndDeliveryRetracts) {
  obs::FabricObservatory obsy;
  net::Packet p = host_packet(0, 1, 10000, 1);
  const auto t = sim::SimTime::milliseconds(1);

  obsy.on_injected(p, t);
  obsy.on_injected(p, t);  // retransmit of the same payload: idempotent
  EXPECT_EQ(obsy.injected(), 1u);

  obsy.on_fate(p, obs::PacketFate::QueueFull, "s1", "egress-queue", t);
  obsy.on_fate(p, obs::PacketFate::LinkFault, "s2", "link-down", t);  // later fate ignored
  EXPECT_EQ(obsy.discarded_fate_reports(), 1u);
  EXPECT_EQ(obsy.fated(), 1u);
  EXPECT_EQ(obsy.fate_count(obs::PacketFate::QueueFull), 1u);
  EXPECT_EQ(obsy.fate_count(obs::PacketFate::LinkFault), 0u);
  EXPECT_EQ(obsy.stranded(), 0u);

  // A duplicate copy makes it through: delivery wins, the fate is retracted.
  obsy.on_delivered(p, t);
  EXPECT_EQ(obsy.delivered(), 1u);
  EXPECT_EQ(obsy.fated(), 0u);
  EXPECT_EQ(obsy.retracted_fates(), 1u);
  EXPECT_EQ(obsy.injected(), obsy.delivered() + obsy.fated() + obsy.stranded());

  // A fate for a payload never injected is observed but not ledgered.
  net::Packet foreign = host_packet(0, 1, 10001, 2);
  obsy.on_fate(foreign, obs::PacketFate::Other, "s1", "unknown-port", t);
  EXPECT_EQ(obsy.discarded_fate_reports(), 2u);
  EXPECT_EQ(obsy.injected(), 1u);
  EXPECT_EQ(obsy.fate_count(obs::PacketFate::Other), 0u);
}

// --- INT stamping on a real fabric ---

TEST(IntHarvest, StampsRecordTheCrossFabricPath) {
  obs::FabricObservatory obsy;
  core::FabricTestbed bed{leaf_spine_config(&obsy, /*int_depth=*/8)};
  // Host 0 (leaf dpid 1) -> host 3 (leaf dpid 2) must cross a spine (dpid 3/4).
  bed.inject_from_host(0, host_packet(0, 3, 10000, /*flow_id=*/1));
  drain(bed);
  ASSERT_EQ(bed.total_delivered(), 1u);

  EXPECT_EQ(obsy.stamped_deliveries(), 1u);
  EXPECT_EQ(obsy.stamps_harvested(), 3u);  // leaf, spine, leaf
  ASSERT_EQ(obsy.flow_paths().count(1), 1u);
  const obs::FabricObservatory::FlowPath& fp = obsy.flow_paths().at(1);
  ASSERT_EQ(fp.hop_count, 3u);
  EXPECT_EQ(fp.hops()[0].switch_id, 1u);
  EXPECT_EQ(fp.hops()[2].switch_id, 2u);
  EXPECT_TRUE(fp.hops()[1].switch_id == 3u || fp.hops()[1].switch_id == 4u)
      << "middle hop must be a spine";
  EXPECT_FALSE(fp.multipath);
  EXPECT_EQ(fp.packets, 1u);
  EXPECT_GT(fp.e2e_ns_max, 0);

  // One heatmap cell per traversed (switch, egress port); residence is
  // non-negative everywhere.
  EXPECT_EQ(obsy.heatmap().size(), 3u);
  for (const auto& [key, cell] : obsy.heatmap()) {
    EXPECT_EQ(cell.samples, 1u);
    EXPECT_GE(cell.residence_ns_max, 0);
  }

  // Ledger closes: the one tracked payload was injected and delivered.
  EXPECT_EQ(obsy.injected(), 1u);
  EXPECT_EQ(obsy.delivered(), 1u);
  EXPECT_EQ(obsy.fated(), 0u);
  EXPECT_EQ(obsy.stranded(), 0u);
}

TEST(IntHarvest, DepthBoundTruncatesTheStack) {
  obs::FabricObservatory obsy;
  core::FabricTestbed bed{leaf_spine_config(&obsy, /*int_depth=*/2)};
  bed.inject_from_host(0, host_packet(0, 3, 10000, 1));
  drain(bed);
  ASSERT_EQ(bed.total_delivered(), 1u);
  // Only the first two hops fit in the stack.
  EXPECT_EQ(obsy.stamps_harvested(), 2u);
  const obs::FabricObservatory::FlowPath& fp = obsy.flow_paths().at(1);
  ASSERT_EQ(fp.hop_count, 2u);
  EXPECT_EQ(fp.hops()[0].switch_id, 1u);
}

TEST(IntHarvest, CsvExportsAreWellFormed) {
  obs::FabricObservatory obsy;
  core::FabricTestbed bed{leaf_spine_config(&obsy, /*int_depth=*/8)};
  bed.inject_from_host(0, host_packet(0, 3, 10000, 1));
  bed.inject_from_host(1, host_packet(1, 2, 10001, 2));
  drain(bed);

  std::ostringstream heat;
  obsy.write_heatmap_csv(heat);
  EXPECT_EQ(heat.str().substr(0, heat.str().find('\n')),
            "switch_id,port,samples,qdepth_max,qdepth_mean,residence_us_max,"
            "residence_us_mean,buffer_units_max,pool_cells_max,pool_cells_mean,"
            "threshold_min,threshold_max");

  std::ostringstream fates;
  obsy.write_fates_csv(fates);
  EXPECT_NE(fates.str().find("queue-full"), std::string::npos);
  EXPECT_NE(fates.str().find("delivered"), std::string::npos);

  std::ostringstream paths;
  obsy.write_paths_csv(paths);
  EXPECT_NE(paths.str().find("flow_id"), std::string::npos);

  std::ostringstream summary;
  obsy.write_summary_json(summary);
  EXPECT_NE(summary.str().find("\"injected\""), std::string::npos);
}

// --- deterministic sampling + FlowMonitor end to end (single switch) ---

TEST(Sampling, PeriodOneSamplesEveryPacketIntoTheMonitor) {
  core::TestbedConfig tb;
  tb.switch_config.telemetry_sample_period = 1;
  tb.switch_config.telemetry_int_depth = 4;
  tb.controller_config.flow_monitor_enabled = true;
  core::Testbed bed{tb};
  bed.warm_up();
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    for (std::uint64_t flow = 1; flow <= 2; ++flow) {
      net::Packet p = net::make_udp_packet(
          bed.host1_mac(), bed.host2_mac(), bed.host1_ip(), bed.host2_ip(),
          static_cast<std::uint16_t>(20000 + flow), 7, 400);
      p.flow_id = flow;
      p.seq_in_flow = seq;
      bed.inject_from_host1(p);
    }
  }
  bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(500));
  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();

  const sw::SwitchCounters& sc = bed.ovs().counters();
  EXPECT_EQ(sc.flow_samples_sent, 10u);   // 1-in-1: every ingress frame
  EXPECT_EQ(sc.int_stamps_applied, 10u);  // single hop, depth 4
  EXPECT_EQ(bed.controller().counters().flow_samples_seen, 10u);

  ctrl::FlowMonitor* monitor = bed.controller().flow_monitor();
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(monitor->counters().samples_seen, 10u);
  EXPECT_EQ(monitor->counters().samples_lost, 0u);
  EXPECT_EQ(monitor->counters().cache_inserts, 2u);  // two distinct 5-tuples
  EXPECT_EQ(monitor->counters().cache_updates, 8u);

  monitor->flush(bed.sim().now());
  std::uint64_t exported_packets = 0;
  for (const ctrl::FlowRecord& rec : monitor->exported()) {
    exported_packets += rec.sampled_packets;
    EXPECT_EQ(rec.datapath_id, 1u);
  }
  EXPECT_EQ(exported_packets, 10u);
}

TEST(Sampling, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t salt) {
    core::TestbedConfig tb;
    tb.switch_config.telemetry_sample_period = 4;
    tb.switch_config.telemetry_sample_salt = salt;
    core::Testbed bed{tb};
    bed.warm_up();
    for (std::uint32_t seq = 0; seq < 32; ++seq) {
      net::Packet p = net::make_udp_packet(
          bed.host1_mac(), bed.host2_mac(), bed.host1_ip(), bed.host2_ip(),
          static_cast<std::uint16_t>(21000 + (seq % 8)), 7, 400);
      p.flow_id = 1 + (seq % 8);
      p.seq_in_flow = seq / 8;
      bed.inject_from_host1(p);
    }
    bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(500));
    bed.ovs().stop();
    bed.controller().stop();
    bed.sim().run();
    return bed.ovs().counters().flow_samples_sent;
  };
  const std::uint64_t a = run_once(0);
  const std::uint64_t b = run_once(0);
  EXPECT_EQ(a, b) << "sampling must be deterministic for a fixed salt";
  EXPECT_GT(a, 0u);
  EXPECT_LT(a, 32u) << "1-in-4 sampling should not take everything";
}

// --- FlowMonitor cache machinery (unit level) ---

TEST(FlowMonitor, SeqGapsCountAsChannelLoss) {
  sim::Simulator sim;
  ctrl::FlowMonitor monitor{sim, ctrl::FlowMonitorConfig{}};
  monitor.on_sample(1, sample_record(0), sim.now());
  monitor.on_sample(1, sample_record(5), sim.now());  // 1..4 lost on the channel
  monitor.on_sample(2, sample_record(0), sim.now());  // separate dpid namespace
  EXPECT_EQ(monitor.counters().samples_seen, 3u);
  EXPECT_EQ(monitor.counters().samples_lost, 4u);
}

TEST(FlowMonitor, IdleTimeoutExportsAndEvicts) {
  sim::Simulator sim;
  ctrl::FlowMonitorConfig config;
  config.idle_timeout = sim::SimTime::milliseconds(100);
  config.active_timeout = sim::SimTime::seconds(60);
  config.sweep_interval = sim::SimTime::milliseconds(50);
  ctrl::FlowMonitor monitor{sim, config};
  monitor.start();
  monitor.on_sample(1, sample_record(0), sim.now());
  sim.run_until(sim::SimTime::milliseconds(400));
  monitor.stop();
  sim.run();
  EXPECT_EQ(monitor.counters().exports_idle, 1u);
  EXPECT_EQ(monitor.cache_size(), 0u);
  ASSERT_EQ(monitor.exported().size(), 1u);
  EXPECT_STREQ(monitor.exported()[0].reason, "idle-timeout");
}

TEST(FlowMonitor, ActiveTimeoutKeepsTheFlowCached) {
  sim::Simulator sim;
  ctrl::FlowMonitorConfig config;
  config.idle_timeout = sim::SimTime::seconds(60);
  config.active_timeout = sim::SimTime::milliseconds(100);
  config.sweep_interval = sim::SimTime::milliseconds(50);
  ctrl::FlowMonitor monitor{sim, config};
  monitor.start();
  // Keep the flow hot past several active timeouts.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(sim::SimTime::milliseconds(40 * i), [&monitor, i, &sim]() {
      monitor.on_sample(1, sample_record(static_cast<std::uint32_t>(i)), sim.now());
    });
  }
  sim.run_until(sim::SimTime::milliseconds(450));
  monitor.stop();
  sim.run();
  EXPECT_GE(monitor.counters().exports_active, 2u);
  EXPECT_EQ(monitor.cache_size(), 1u) << "active export must not evict";
}

TEST(FlowMonitor, CachePressureEvictsLeastRecentlyUpdated) {
  sim::Simulator sim;
  ctrl::FlowMonitorConfig config;
  config.cache_capacity = 2;
  ctrl::FlowMonitor monitor{sim, config};
  monitor.on_sample(1, sample_record(0, 0x0a010001, 20000), sim.now());
  monitor.on_sample(1, sample_record(1, 0x0a010002, 20001), sim.now());
  monitor.on_sample(1, sample_record(2, 0x0a010003, 20002), sim.now());
  EXPECT_EQ(monitor.cache_size(), 2u);
  EXPECT_EQ(monitor.counters().exports_evicted, 1u);
  ASSERT_EQ(monitor.exported().size(), 1u);
  EXPECT_STREQ(monitor.exported()[0].reason, "evicted");

  monitor.flush(sim.now());
  EXPECT_EQ(monitor.cache_size(), 0u);
  EXPECT_EQ(monitor.counters().exports_final, 2u);

  std::ostringstream csv;
  monitor.write_exports_csv(csv);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "datapath_id,src_ip,dst_ip,src_port,dst_port,protocol,packets,bytes,"
            "first_us,last_us,reason");
}

// --- egress high-water marks ---

TEST(HighWater, EnqueueBurstRaisesTheMark) {
  sim::Simulator sim;
  net::Link link{sim, "egress", 100e6, sim::SimTime::zero()};
  sw::EgressSchedulerConfig config;
  std::vector<net::Packet> delivered;
  sw::EgressScheduler sched{sim, config, link,
                            [&delivered](const net::Packet& p) { delivered.push_back(p); }};
  EXPECT_EQ(sched.highwater_packets(), 0u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    net::Packet p = host_packet(0, 1, static_cast<std::uint16_t>(10000 + i), 1, i);
    ASSERT_TRUE(sched.enqueue(p));
  }
  // All five enqueued at the same instant: one is immediately in flight, the
  // rest queue behind it — the high-water mark saw the peak.
  EXPECT_EQ(sched.highwater_packets(), 4u);
  EXPECT_GT(sched.highwater_bytes(), 0u);
  sim.run();
  EXPECT_EQ(delivered.size(), 5u);
  // Draining does not lower the mark.
  EXPECT_EQ(sched.highwater_packets(), 4u);
}

// --- fabric-scale ledger totality + bit-identity contract ---

TEST(TelemetryContract, FabricLedgerClosesOnADrainedRun) {
  obs::FabricObservatory obsy;
  core::FabricExperimentConfig cfg;
  cfg.topology = topo::make_leaf_spine(2, 2, 2);
  cfg.mode = sw::BufferMode::PacketGranularity;
  cfg.duration_s = 0.2;
  cfg.flow_arrival_per_s = 200.0;
  cfg.seed = 7;
  cfg.observatory = &obsy;
  cfg.fabric.switch_config.telemetry_int_depth = 8;
  cfg.fabric.switch_config.telemetry_sample_period = 4;
  cfg.fabric.controller_config.flow_monitor_enabled = true;
  const core::FabricExperimentResult r = core::run_fabric_experiment(cfg);

  ASSERT_TRUE(r.drained);
  EXPECT_EQ(obsy.injected(), r.packets_sent);
  EXPECT_EQ(obsy.delivered(), r.packets_delivered);
  EXPECT_EQ(obsy.fated(), 0u);
  EXPECT_EQ(obsy.stranded(), 0u);
  EXPECT_EQ(obsy.injected(), obsy.delivered() + obsy.fated() + obsy.stranded());

  EXPECT_GT(r.int_stamps, 0u);
  EXPECT_GT(r.flow_samples, 0u);
  EXPECT_EQ(r.flow_samples_seen, r.flow_samples) << "fault-free channel: no sample loss";
  EXPECT_EQ(obsy.stamped_deliveries(), r.packets_delivered);
  EXPECT_FALSE(obsy.heatmap().empty());
  EXPECT_LE(obsy.hotspots(3).size(), 3u);
}

TEST(TelemetryContract, PassiveObservatoryPreservesBitIdentity) {
  core::ExperimentConfig base;
  base.mode = sw::BufferMode::PacketGranularity;
  base.n_flows = 40;
  base.packets_per_flow = 2;
  base.rate_mbps = 20.0;
  base.seed = 5;
  const core::ExperimentResult a = core::run_experiment(base);

  obs::FabricObservatory obsy;
  core::ExperimentConfig with = base;
  with.observatory = &obsy;  // ledger on, INT/sampling knobs still off
  const core::ExperimentResult b = core::run_experiment(with);

  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.pkt_ins_sent, b.pkt_ins_sent);
  EXPECT_EQ(a.to_controller_bytes, b.to_controller_bytes);
  EXPECT_EQ(a.to_switch_bytes, b.to_switch_bytes);
  EXPECT_EQ(a.setup_ms.values(), b.setup_ms.values());
  EXPECT_EQ(a.buffer_max_units, b.buffer_max_units);

  // Knobs off: nothing on the wire, nothing stamped.
  EXPECT_EQ(a.flow_samples, 0u);
  EXPECT_EQ(b.flow_samples, 0u);
  EXPECT_EQ(b.int_stamps, 0u);
  EXPECT_EQ(obsy.stamps_harvested(), 0u);

  // The passive ledger still closes exactly.
  EXPECT_EQ(obsy.injected(), b.packets_sent);
  EXPECT_EQ(obsy.delivered(), b.packets_delivered);
  EXPECT_EQ(obsy.injected(), obsy.delivered() + obsy.fated() + obsy.stranded());
}

// Cross-validation of the analytical queueing oracle (src/model) against
// the discrete-event simulator — the numerical half of the correctness
// story (src/verify holds the invariant half). The headline assertions
// mirror the acceptance bar: simulator means within 10% of theory on
// pkt_in rate and all three delay families across (rate x mechanism)
// operating points, and the prescreen's predicted mechanism crossover
// within one grid cell of the simulated one.
//
// All tolerances here are relative-error bands, not statistical intervals:
// one run averages over 1000 flows, so the standard error of each mean is
// far below the modeling error the band absorbs (DESIGN.md §12 lists the
// known divergence sources).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/experiment.hpp"
#include "model/node_model.hpp"
#include "model/prescreen.hpp"
#include "model/queueing.hpp"

namespace sdnbuf {
namespace {

// Acceptance bar: simulator-vs-theory relative error on means.
constexpr double kRelTol = 0.10;

core::ExperimentConfig e1_config(sw::BufferMode mode, std::size_t capacity, double rate_mbps) {
  core::ExperimentConfig config;
  config.mode = mode;
  config.buffer_capacity = capacity;
  config.rate_mbps = rate_mbps;
  config.n_flows = 1000;
  config.packets_per_flow = 1;
  config.seed = 7;
  return config;
}

double rel_error(double predicted, double measured) {
  return std::abs(predicted - measured) / measured;
}

// ---------------------------------------------------------------------------
// Closed-form building blocks against textbook values.

TEST(Queueing, ErlangBKnownValues) {
  // B(1, 1) = 1/2, B(2, 1) = 1/5 (hand-evaluated recurrence).
  EXPECT_NEAR(model::erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(model::erlang_b(2, 1.0), 0.2, 1e-12);
  // No servers: every arrival blocked.
  EXPECT_DOUBLE_EQ(model::erlang_b(0, 3.0), 1.0);
  // Zero offered load: never blocked.
  EXPECT_DOUBLE_EQ(model::erlang_b(8, 0.0), 0.0);
  // Monotone in offered load.
  EXPECT_LT(model::erlang_b(16, 8.0), model::erlang_b(16, 24.0));
}

TEST(Queueing, ErlangCAndWaits) {
  // Single server: C(1, rho) = rho, and the M/M/1 wait rho / (mu - lambda).
  EXPECT_NEAR(model::erlang_c(1, 0.5), 0.5, 1e-12);
  const double w = model::mmc_wait_s(5.0, 0.1, 1);  // rho = 0.5, mu = 10
  EXPECT_NEAR(w, 0.5 / (10.0 - 5.0), 1e-12);
  // Saturated: no steady state.
  EXPECT_EQ(model::erlang_c(2, 2.5), 1.0);
  EXPECT_TRUE(std::isinf(model::mmc_wait_s(30.0, 0.1, 2)));
  // The two-moment correction is exact for M/M/c (ca2 = cs2 = 1)...
  EXPECT_NEAR(model::gg_c_wait_s(5.0, 0.1, 1, 1.0, 1.0), w, 1e-12);
  // ...and vanishes for D/D/c.
  EXPECT_NEAR(model::gg_c_wait_s(5.0, 0.1, 1, 0.0, 0.0), 0.0, 1e-12);
}

TEST(Queueing, LognormalJitterMoments) {
  const auto j = model::lognormal_jitter(0.15);
  EXPECT_NEAR(j.mean_factor, std::exp(0.15 * 0.15 / 2.0), 1e-12);
  EXPECT_NEAR(j.second_moment_factor, std::exp(2.0 * 0.15 * 0.15), 1e-12);
  EXPECT_NEAR(j.cs2, std::exp(0.15 * 0.15) - 1.0, 1e-12);
}

TEST(Queueing, ServiceMixtureMoments) {
  model::ServiceMixture m;
  m.add(2.0, 1.0, 1.0);  // deterministic 1 s jobs
  m.add(2.0, 3.0, 9.0);  // deterministic 3 s jobs
  EXPECT_DOUBLE_EQ(m.rate(), 4.0);
  EXPECT_DOUBLE_EQ(m.mean_s(), 2.0);
  EXPECT_DOUBLE_EQ(m.second_moment_s2(), 5.0);
  // Var = 5 - 4 = 1, cs2 = 1/4.
  EXPECT_DOUBLE_EQ(m.cs2(), 0.25);
  EXPECT_DOUBLE_EQ(m.offered_erlangs(), 8.0);
}

// ---------------------------------------------------------------------------
// The headline oracle: simulator means inside the 10% band of theory at
// nine (mechanism x rate) operating points spanning all three mechanisms.

struct OperatingPoint {
  const char* label;
  sw::BufferMode mode;
  std::size_t capacity;
  double rate_mbps;
};

TEST(ModelValidation, SimulatorWithinTenPercentOfTheory) {
  const OperatingPoint points[] = {
      {"no-buffer", sw::BufferMode::NoBuffer, 256, 10.0},
      {"no-buffer", sw::BufferMode::NoBuffer, 256, 30.0},
      {"no-buffer", sw::BufferMode::NoBuffer, 256, 50.0},
      {"pkt-256", sw::BufferMode::PacketGranularity, 256, 10.0},
      {"pkt-256", sw::BufferMode::PacketGranularity, 256, 30.0},
      {"pkt-256", sw::BufferMode::PacketGranularity, 256, 50.0},
      {"flow-256", sw::BufferMode::FlowGranularity, 256, 10.0},
      {"flow-256", sw::BufferMode::FlowGranularity, 256, 30.0},
      {"flow-256", sw::BufferMode::FlowGranularity, 256, 50.0},
  };
  for (const auto& pt : points) {
    SCOPED_TRACE(testing::Message() << pt.label << " @ " << pt.rate_mbps << " Mbps");
    const auto config = e1_config(pt.mode, pt.capacity, pt.rate_mbps);
    const auto sim = core::run_experiment(config);
    const auto prediction = model::predict(model::Params::from(config));

    ASSERT_GT(sim.duration_s, 0.0);
    const double sim_pktin_rate = static_cast<double>(sim.pkt_ins_sent) / sim.duration_s;
    EXPECT_LE(rel_error(prediction.pkt_in_rate_per_s, sim_pktin_rate), kRelTol);
    EXPECT_LE(rel_error(prediction.setup_ms, sim.setup_ms.mean()), kRelTol);
    EXPECT_LE(rel_error(prediction.controller_ms, sim.controller_ms.mean()), kRelTol);
    EXPECT_LE(rel_error(prediction.switch_ms, sim.switch_ms.mean()), kRelTol);
    // Control-path byte load rides on the same message accounting.
    EXPECT_LE(rel_error(prediction.to_controller_mbps, sim.to_controller_mbps), kRelTol);
    EXPECT_LE(rel_error(prediction.to_switch_mbps, sim.to_switch_mbps), kRelTol);
    EXPECT_FALSE(prediction.saturated);
  }
}

// The Erlang-B feedback: a 16-unit pool at 50 Mbps runs out of units for
// roughly half the misses; the model must see both the fallback fraction
// and the resulting delay mixture.
TEST(ModelValidation, BufferExhaustionMixture) {
  const auto config = e1_config(sw::BufferMode::PacketGranularity, 16, 50.0);
  const auto sim = core::run_experiment(config);
  const auto prediction = model::predict(model::Params::from(config));

  ASSERT_GT(sim.pkt_ins_sent, 0u);
  const double sim_ff =
      static_cast<double>(sim.full_frame_pkt_ins) / static_cast<double>(sim.pkt_ins_sent);
  EXPECT_GT(sim_ff, 0.2);  // the point genuinely exercises exhaustion
  EXPECT_NEAR(prediction.full_frame_fraction, sim_ff, 0.10);
  EXPECT_GT(prediction.buffer_exhaustion_probability, 0.2);
  EXPECT_LE(rel_error(prediction.setup_ms, sim.setup_ms.mean()), kRelTol);
  EXPECT_LE(rel_error(prediction.controller_ms, sim.controller_ms.mean()), kRelTol);
  // The pool itself hovers near its capacity.
  EXPECT_NEAR(prediction.buffer_avg_units, sim.buffer_avg_units, 3.0);
}

// Past saturation the model must stay finite, flag the regime, and point at
// the right bottleneck (the ASIC<->CPU bus for no-buffer full-frame punts).
TEST(ModelValidation, SaturationIsFlaggedNotInfinite) {
  const auto config = e1_config(sw::BufferMode::NoBuffer, 256, 120.0);
  const auto prediction = model::predict(model::Params::from(config));
  EXPECT_TRUE(prediction.saturated);
  EXPECT_GT(prediction.max_utilization, 1.0);
  EXPECT_TRUE(std::isfinite(prediction.setup_ms));
  EXPECT_GT(prediction.setup_ms, 5.0);  // far above the flat-region ~1.1 ms
}

// ---------------------------------------------------------------------------
// Prescreen: the model-found mechanism crossover matches full simulation to
// within one grid cell (acceptance criterion), and flat regions are skipped.

TEST(ModelPrescreen, CrossoverWithinOneGridCell) {
  const std::vector<double> grid = {30.0, 40.0, 50.0, 60.0, 70.0};
  const double cell = grid[1] - grid[0];

  model::Sweep sweep;
  sweep.rates_mbps = grid;
  sweep.scenarios = {
      {"pkt-16", model::Params::from(e1_config(sw::BufferMode::PacketGranularity, 16, grid[0]))},
      {"flow-256",
       model::Params::from(e1_config(sw::BufferMode::FlowGranularity, 256, grid[0]))},
  };
  const auto screen = sweep.run();

  ASSERT_EQ(screen.crossovers.size(), 1u)
      << "exactly one pkt-16 / flow-256 ordering flip expected on this grid";
  const auto& crossover = screen.crossovers.front();

  // Full simulation of the same grid: locate the sign flip of the setup
  // delay difference and interpolate its zero.
  std::vector<double> diff_ms;
  for (double rate : grid) {
    const auto pkt = core::run_experiment(e1_config(sw::BufferMode::PacketGranularity, 16, rate));
    const auto flow = core::run_experiment(e1_config(sw::BufferMode::FlowGranularity, 256, rate));
    diff_ms.push_back(pkt.setup_ms.mean() - flow.setup_ms.mean());
  }
  double sim_crossover = -1.0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if ((diff_ms[i - 1] < 0.0) != (diff_ms[i] < 0.0)) {
      sim_crossover = grid[i - 1] + cell * (diff_ms[i - 1] / (diff_ms[i - 1] - diff_ms[i]));
      break;
    }
  }
  ASSERT_GT(sim_crossover, 0.0) << "simulation found no crossover on the grid";

  EXPECT_NEAR(crossover.rate_estimate_mbps, sim_crossover, cell);
  // The bracket cells survive the screen, so a prescreened sweep still
  // simulates the crossover region.
  for (double rate : {crossover.rate_low_mbps, crossover.rate_high_mbps}) {
    EXPECT_TRUE(std::find(screen.kept_rates_mbps.begin(), screen.kept_rates_mbps.end(), rate) !=
                screen.kept_rates_mbps.end())
        << "crossover bracket rate " << rate << " was screened out";
  }
}

TEST(ModelPrescreen, FlatRegionIsSkipped) {
  // pkt-256 alone: delay stays on its plateau across the whole grid, so
  // everything but the anchors (+ margin) is skippable.
  model::Sweep sweep;
  sweep.rates_mbps = {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0};
  sweep.scenarios = {
      {"pkt-256",
       model::Params::from(e1_config(sw::BufferMode::PacketGranularity, 256, 10.0))},
  };
  const auto screen = sweep.run();

  EXPECT_EQ(screen.total_cells, sweep.rates_mbps.size());
  EXPECT_GT(screen.skipped_cells(), 0u);
  EXPECT_LT(screen.kept_rates_mbps.size(), sweep.rates_mbps.size());
  // Anchors always survive.
  EXPECT_EQ(screen.kept_rates_mbps.front(), 10.0);
  EXPECT_EQ(screen.kept_rates_mbps.back(), 90.0);
  // Kept rates are a subset of the grid, ascending.
  EXPECT_TRUE(std::is_sorted(screen.kept_rates_mbps.begin(), screen.kept_rates_mbps.end()));
  for (double rate : screen.kept_rates_mbps) {
    EXPECT_TRUE(std::find(sweep.rates_mbps.begin(), sweep.rates_mbps.end(), rate) !=
                sweep.rates_mbps.end());
  }
}

TEST(ModelPrescreen, KneeIsKeptForNoBuffer) {
  // no-buffer bends hard past ~70 Mbps (bus saturation): the screen must
  // keep the bent region and report a knee rate.
  model::Sweep sweep;
  sweep.rates_mbps = {10.0, 30.0, 50.0, 70.0, 90.0, 110.0};
  sweep.scenarios = {
      {"no-buffer", model::Params::from(e1_config(sw::BufferMode::NoBuffer, 256, 10.0))},
  };
  const auto screen = sweep.run();

  ASSERT_EQ(screen.knee_rate_mbps.size(), 1u);
  EXPECT_FALSE(std::isnan(screen.knee_rate_mbps[0]));
  EXPECT_GE(screen.knee_rate_mbps[0], 70.0);
  // The saturated tail is interesting by definition.
  EXPECT_TRUE(std::find(screen.kept_rates_mbps.begin(), screen.kept_rates_mbps.end(), 110.0) !=
              screen.kept_rates_mbps.end());
}

}  // namespace
}  // namespace sdnbuf

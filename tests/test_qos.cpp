// Tests for the egress scheduler (§VII future work): classification,
// FIFO pass-through equivalence, strict-priority ordering, deficit-round-
// robin fairness, tail drop, and integration with the switch datapath.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "switchd/egress_scheduler.hpp"
#include "switchd/switch.hpp"

namespace sdnbuf::sw {
namespace {

net::Packet class_packet(unsigned precedence, std::uint32_t seq, std::uint32_t frame = 1000) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address::from_octets(10, 1, 0, 1),
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + precedence), 9, frame);
  p.ip.dscp = static_cast<std::uint8_t>(precedence << 5);  // IP precedence bits
  p.flow_id = precedence;
  p.seq_in_flow = seq;
  return p;
}

struct SchedulerTest : ::testing::Test {
  sim::Simulator sim;
  net::Link link{sim, "egress", 100e6, sim::SimTime::zero()};
  std::vector<net::Packet> delivered;

  std::unique_ptr<EgressScheduler> make(SchedulerPolicy policy, unsigned classes = 4,
                                        std::uint64_t limit = 1 << 20,
                                        std::vector<std::uint32_t> quanta = {}) {
    EgressSchedulerConfig config;
    config.policy = policy;
    config.num_classes = classes;
    config.queue_limit_bytes = limit;
    config.drr_quanta = std::move(quanta);
    return std::make_unique<EgressScheduler>(
        sim, config, link, [this](const net::Packet& p) { delivered.push_back(p); });
  }
};

TEST_F(SchedulerTest, ClassificationByIpPrecedence) {
  auto sched = make(SchedulerPolicy::StrictPriority, 4);
  EXPECT_EQ(sched->classify(class_packet(0, 0)), 0u);
  EXPECT_EQ(sched->classify(class_packet(2, 0)), 2u);
  EXPECT_EQ(sched->classify(class_packet(3, 0)), 3u);
  EXPECT_EQ(sched->classify(class_packet(7, 0)), 3u);  // clamps to top class
}

TEST_F(SchedulerTest, FifoPreservesArrivalOrderAndLinkTiming) {
  auto sched = make(SchedulerPolicy::Fifo);
  for (std::uint32_t i = 0; i < 3; ++i) sched->enqueue(class_packet(i, i));
  std::vector<sim::SimTime> arrivals;
  // Compare against direct link sends: 80 us serialization per 1000 B frame.
  sim.run();
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0].seq_in_flow, 0u);
  EXPECT_EQ(delivered[1].seq_in_flow, 1u);
  EXPECT_EQ(delivered[2].seq_in_flow, 2u);
  EXPECT_EQ(sim.now(), sim::SimTime::microseconds(240));  // 3 x 80 us back to back
}

TEST_F(SchedulerTest, StrictPriorityServesHighClassFirst) {
  auto sched = make(SchedulerPolicy::StrictPriority);
  // Fill while the first packet transmits: low-class backlog, then one
  // high-class arrival; the high one must jump the queue.
  sched->enqueue(class_packet(0, 0));  // starts transmitting immediately
  sched->enqueue(class_packet(0, 1));
  sched->enqueue(class_packet(0, 2));
  sched->enqueue(class_packet(3, 99));
  sim.run();
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered[0].flow_id, 0u);   // already on the wire
  EXPECT_EQ(delivered[1].flow_id, 3u);   // priority overtakes the backlog
  EXPECT_EQ(delivered[2].seq_in_flow, 1u);
  EXPECT_EQ(delivered[3].seq_in_flow, 2u);
}

TEST_F(SchedulerTest, StrictPriorityDelaysMeasuredPerClass) {
  auto sched = make(SchedulerPolicy::StrictPriority);
  for (std::uint32_t i = 0; i < 10; ++i) sched->enqueue(class_packet(0, i));
  for (std::uint32_t i = 0; i < 10; ++i) sched->enqueue(class_packet(3, i));
  sim.run();
  const auto& low = sched->class_stats(0);
  const auto& high = sched->class_stats(3);
  EXPECT_EQ(low.dequeued, 10u);
  EXPECT_EQ(high.dequeued, 10u);
  // The high class waits only behind the in-flight frame; the low class
  // waits behind the whole high backlog.
  EXPECT_LT(high.queue_delay_ms.mean(), low.queue_delay_ms.mean());
}

TEST_F(SchedulerTest, DrrSharesBytesByQuanta) {
  // Quanta 3:1 -> class 1 should get ~75% of the bytes while both backlogs
  // last.
  auto sched = make(SchedulerPolicy::DeficitRoundRobin, 2, 1 << 20, {500, 1500});
  for (std::uint32_t i = 0; i < 40; ++i) {
    sched->enqueue(class_packet(0, i, 500));
    sched->enqueue(class_packet(1, i, 500));
  }
  // Observe the first 24 deliveries (both classes still backlogged).
  sim.run_until(sim::SimTime::microseconds(40 * 24 + 1));
  std::uint64_t class1 = 0;
  for (const auto& p : delivered) {
    if (p.flow_id == 1) ++class1;
  }
  const double share = static_cast<double>(class1) / static_cast<double>(delivered.size());
  EXPECT_NEAR(share, 0.75, 0.10);
  sim.run();
  EXPECT_EQ(delivered.size(), 80u);  // nothing lost
}

TEST_F(SchedulerTest, DrrDegeneratesToRoundRobinWithEqualQuanta) {
  auto sched = make(SchedulerPolicy::DeficitRoundRobin, 2, 1 << 20, {1000, 1000});
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched->enqueue(class_packet(0, i));
    sched->enqueue(class_packet(1, i));
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 20u);
  // Alternating service after the first in-flight frame.
  std::uint64_t class0 = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (delivered[i].flow_id == 0) ++class0;
  }
  EXPECT_NEAR(static_cast<double>(class0), 5.0, 1.0);
}

TEST_F(SchedulerTest, DrrAccumulatesCreditForJumboHead) {
  // A head packet larger than its quantum must wait several cursor rounds,
  // not starve forever.
  auto sched = make(SchedulerPolicy::DeficitRoundRobin, 2, 1 << 20, {400, 400});
  sched->enqueue(class_packet(0, 0, 1000));  // needs 3 top-ups of 400
  sched->enqueue(class_packet(1, 0, 400));
  sched->enqueue(class_packet(1, 1, 400));
  sim.run();
  EXPECT_EQ(delivered.size(), 3u);
  EXPECT_EQ(sched->class_stats(0).dequeued, 1u);
  EXPECT_EQ(sched->class_stats(1).dequeued, 2u);
}

TEST_F(SchedulerTest, TailDropWhenQueueFull) {
  auto sched = make(SchedulerPolicy::StrictPriority, 4, 2500);  // fits 2 x 1000 B + slack
  EXPECT_TRUE(sched->enqueue(class_packet(0, 0)));  // goes to the wire
  EXPECT_TRUE(sched->enqueue(class_packet(0, 1)));
  EXPECT_TRUE(sched->enqueue(class_packet(0, 2)));
  // In-flight packet freed its backlog share; two queued = 2000 bytes; the
  // next 1000-byte frame exceeds the 2500-byte cap.
  EXPECT_FALSE(sched->enqueue(class_packet(0, 3)));
  EXPECT_EQ(sched->class_stats(0).dropped, 1u);
  sim.run();
  EXPECT_EQ(delivered.size(), 3u);
}

TEST_F(SchedulerTest, BacklogAccounting) {
  auto sched = make(SchedulerPolicy::StrictPriority);
  sched->enqueue(class_packet(2, 0));  // in flight
  sched->enqueue(class_packet(2, 1));
  sched->enqueue(class_packet(2, 2));
  EXPECT_EQ(sched->backlog_bytes(2), 2000u);
  EXPECT_EQ(sched->total_backlog_packets(), 2u);
  sim.run();
  EXPECT_EQ(sched->backlog_bytes(2), 0u);
  EXPECT_EQ(sched->total_backlog_packets(), 0u);
}

// --- integration with the switch datapath ---

TEST(QosSwitch, PriorityTrafficProtectedUnderCongestion) {
  // Two ingress ports feed one 100 Mbps egress port at ~2x line rate; the
  // strict-priority scheduler must keep the high class's queueing delay low
  // while the best-effort class absorbs the congestion.
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link in1{sim, "in1", 100e6, sim::SimTime::zero()};
  net::Link in2{sim, "in2", 100e6, sim::SimTime::zero()};
  net::Link out{sim, "out", 100e6, sim::SimTime::zero()};
  of::Channel channel{sim, control.forward(), control.reverse()};

  sw::SwitchConfig config;
  config.egress.policy = SchedulerPolicy::StrictPriority;
  config.egress.num_classes = 4;
  sw::Switch ovs{sim, config, 7};
  std::uint64_t delivered = 0;
  ovs.attach_port(1, in1, nullptr);
  ovs.attach_port(2, in2, nullptr);
  ovs.attach_port(3, out, [&](const net::Packet&) { ++delivered; });
  ovs.connect(channel);

  // Pre-install a wildcard rule: everything goes out of port 3.
  of::FlowMod fm;
  fm.match = of::Match::wildcard_all();
  fm.priority = 1;
  fm.actions = of::output_to(3);
  channel.send_from_controller(fm);
  sim.run();

  // Offer 2x line rate for 20 ms: port 1 sends best effort, port 2 sends
  // priority traffic.
  const sim::SimTime start = sim.now();
  for (std::uint32_t i = 0; i < 250; ++i) {
    const auto when = start + sim::SimTime::microseconds(80 * i);
    sim.schedule_at(when, [&ovs, i]() { ovs.receive(1, class_packet(0, i)); });
    sim.schedule_at(when, [&ovs, i]() { ovs.receive(2, class_packet(3, i)); });
  }
  sim.run_until(start + sim::SimTime::milliseconds(100));
  ovs.stop();
  sim.run();

  auto& sched = ovs.port_scheduler(3);
  const auto& low = sched.class_stats(0);
  const auto& high = sched.class_stats(3);
  EXPECT_EQ(high.dequeued, 250u);
  // High class sees at most one frame of head-of-line blocking (~80 us).
  EXPECT_LT(high.queue_delay_ms.mean(), 0.2);
  // Best effort absorbs the overload: it queues for milliseconds.
  EXPECT_GT(low.queue_delay_ms.mean(), 1.0);
  EXPECT_EQ(delivered, low.dequeued + high.dequeued);
}

TEST(QosSwitch, FifoDefaultKeepsPaperBehaviour) {
  // With the default Fifo policy the scheduler is a transparent pass-through
  // (single class, no reordering) — the paper experiments stay valid.
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link in1{sim, "in1", 100e6, sim::SimTime::zero()};
  net::Link out{sim, "out", 100e6, sim::SimTime::zero()};
  of::Channel channel{sim, control.forward(), control.reverse()};
  sw::Switch ovs{sim, sw::SwitchConfig{}, 7};
  std::vector<std::uint32_t> order;
  ovs.attach_port(1, in1, nullptr);
  ovs.attach_port(2, out, [&](const net::Packet& p) { order.push_back(p.seq_in_flow); });
  ovs.connect(channel);
  of::FlowMod fm;
  fm.match = of::Match::wildcard_all();
  fm.priority = 1;
  fm.actions = of::output_to(2);
  channel.send_from_controller(fm);
  sim.run();
  for (std::uint32_t i = 0; i < 5; ++i) {
    // Mixed precedences: FIFO must ignore them.
    ovs.receive(1, class_packet(i % 4, i));
  }
  ovs.stop();
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace sdnbuf::sw

// Unit tests for the metrics library: time-weighted occupancy and the
// per-flow delay recorder (the §III.B metric definitions).
#include <gtest/gtest.h>

#include "metrics/delay_recorder.hpp"
#include "metrics/occupancy.hpp"

namespace sdnbuf::metrics {
namespace {

using sim::SimTime;

TEST(Occupancy, TracksCurrentAndMax) {
  OccupancyTracker occ{SimTime::zero()};
  occ.increment(SimTime::milliseconds(1));
  occ.increment(SimTime::milliseconds(2));
  occ.increment(SimTime::milliseconds(3));
  occ.decrement(SimTime::milliseconds(4));
  EXPECT_EQ(occ.current(), 2u);
  EXPECT_EQ(occ.max(), 3u);
}

TEST(Occupancy, TimeWeightedMean) {
  OccupancyTracker occ{SimTime::zero()};
  // 0 units for 1 s, then 10 units for 1 s -> mean 5 over 2 s.
  occ.set(10, SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(occ.time_weighted_mean(SimTime::seconds(2)), 5.0);
}

TEST(Occupancy, MeanIncludesOpenInterval) {
  OccupancyTracker occ{SimTime::zero()};
  occ.set(4, SimTime::zero());
  // Constant 4 units: mean is 4 at any observation time.
  EXPECT_DOUBLE_EQ(occ.time_weighted_mean(SimTime::seconds(3)), 4.0);
}

TEST(Occupancy, ResetKeepsGaugeClearsStats) {
  OccupancyTracker occ{SimTime::zero()};
  occ.set(8, SimTime::seconds(1));
  occ.reset(SimTime::seconds(2));
  EXPECT_EQ(occ.current(), 8u);
  EXPECT_EQ(occ.max(), 8u);
  // After reset the mean integrates only from the reset point.
  EXPECT_DOUBLE_EQ(occ.time_weighted_mean(SimTime::seconds(3)), 8.0);
}

TEST(Occupancy, ZeroWindowMeanIsCurrent) {
  OccupancyTracker occ{SimTime::zero()};
  occ.set(3, SimTime::zero());
  EXPECT_DOUBLE_EQ(occ.time_weighted_mean(SimTime::zero()), 3.0);
}

TEST(DelayRecorder, SetupDelayDefinition) {
  DelayRecorder rec;
  // Flow setup delay: first packet in -> that (first) packet out.
  rec.on_first_packet_arrival(1, SimTime::milliseconds(10));
  rec.on_packet_departure(1, SimTime::milliseconds(13));
  rec.on_packet_departure(1, SimTime::milliseconds(20));
  const auto result = rec.finalize();
  ASSERT_EQ(result.setup_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(result.setup_ms.mean(), 3.0);
  // Forwarding delay: first in -> LAST packet out.
  ASSERT_EQ(result.forwarding_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(result.forwarding_ms.mean(), 10.0);
}

TEST(DelayRecorder, ControllerAndSwitchDelaySplit) {
  DelayRecorder rec;
  rec.on_first_packet_arrival(1, SimTime::milliseconds(0));
  rec.on_packet_in_sent(1, SimTime::milliseconds(1));
  rec.on_response_arrival(1, SimTime::milliseconds(2));
  rec.on_packet_departure(1, SimTime::milliseconds(5));
  const auto result = rec.finalize();
  ASSERT_EQ(result.controller_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(result.controller_ms.mean(), 1.0);   // pkt_in out -> response in
  EXPECT_DOUBLE_EQ(result.setup_ms.mean(), 5.0);
  EXPECT_DOUBLE_EQ(result.switch_ms.mean(), 4.0);       // setup - controller
}

TEST(DelayRecorder, OnlyFirstEventsCount) {
  DelayRecorder rec;
  rec.on_first_packet_arrival(1, SimTime::milliseconds(0));
  rec.on_first_packet_arrival(1, SimTime::milliseconds(100));  // ignored
  rec.on_packet_in_sent(1, SimTime::milliseconds(1));
  rec.on_packet_in_sent(1, SimTime::milliseconds(50));  // retransmission: ignored
  rec.on_response_arrival(1, SimTime::milliseconds(2));
  rec.on_response_arrival(1, SimTime::milliseconds(60));  // second response: ignored
  rec.on_packet_departure(1, SimTime::milliseconds(3));
  const auto result = rec.finalize();
  EXPECT_DOUBLE_EQ(result.setup_ms.mean(), 3.0);
  EXPECT_DOUBLE_EQ(result.controller_ms.mean(), 1.0);
}

TEST(DelayRecorder, UntrackedFlowIgnored) {
  DelayRecorder rec;
  rec.on_first_packet_arrival(kUntrackedFlow, SimTime::zero());
  rec.on_packet_departure(kUntrackedFlow, SimTime::milliseconds(1));
  rec.on_packet_delivered(kUntrackedFlow, SimTime::milliseconds(1));
  const auto result = rec.finalize();
  EXPECT_EQ(result.flows_seen, 0u);
  EXPECT_EQ(result.packets_departed, 0u);
}

TEST(DelayRecorder, IncompleteFlowsProduceNoSamples) {
  DelayRecorder rec;
  rec.on_first_packet_arrival(1, SimTime::zero());  // never departs
  rec.on_packet_departure(2, SimTime::zero());       // never arrived (shouldn't happen)
  const auto result = rec.finalize();
  EXPECT_EQ(result.flows_seen, 2u);
  EXPECT_EQ(result.flows_complete, 0u);
  EXPECT_EQ(result.setup_ms.count(), 0u);
}

TEST(DelayRecorder, MultipleFlowsAggregate) {
  DelayRecorder rec;
  for (std::uint64_t f = 0; f < 10; ++f) {
    rec.on_first_packet_arrival(f, SimTime::milliseconds(static_cast<int>(f)));
    rec.on_packet_departure(f, SimTime::milliseconds(static_cast<int>(f + 1 + f % 3)));
  }
  const auto result = rec.finalize();
  EXPECT_EQ(result.flows_seen, 10u);
  EXPECT_EQ(result.flows_complete, 10u);
  EXPECT_EQ(result.setup_ms.count(), 10u);
  // setup delays are 1 + f%3 ms: mean = (4*1 + 3*2 + 3*3) / 10.
  EXPECT_NEAR(result.setup_ms.mean(), (4 * 1 + 3 * 2 + 3 * 3) / 10.0, 1e-9);
}

TEST(DelayRecorder, PacketCountersAccumulate) {
  DelayRecorder rec;
  rec.on_first_packet_arrival(1, SimTime::zero());
  for (int i = 0; i < 5; ++i) rec.on_packet_departure(1, SimTime::milliseconds(i + 1));
  for (int i = 0; i < 5; ++i) rec.on_packet_delivered(1, SimTime::milliseconds(i + 2));
  const auto result = rec.finalize();
  EXPECT_EQ(result.packets_departed, 5u);
  EXPECT_EQ(result.packets_delivered, 5u);
}

TEST(DelayRecorder, RecordAccessor) {
  DelayRecorder rec;
  EXPECT_EQ(rec.record(1), nullptr);
  rec.on_first_packet_arrival(1, SimTime::milliseconds(3));
  const auto* r = rec.record(1);
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->first_arrival.has_value());
  EXPECT_EQ(*r->first_arrival, SimTime::milliseconds(3));
  EXPECT_FALSE(r->first_departure.has_value());
}

}  // namespace
}  // namespace sdnbuf::metrics

// Tests for the data-plane fault plane: LinkFaultSchedule window algebra,
// link-level frame loss, the switch's port-down fate policies and
// crash/restart lifecycle, the controller's route repair, and fabric-level
// guarantees (zero-fault byte-identity, fault-run determinism, conservation
// under loss, closed-loop recovery).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fabric_experiment.hpp"
#include "core/fabric_testbed.hpp"
#include "net/link.hpp"
#include "net/link_fault.hpp"
#include "openflow/channel.hpp"
#include "switchd/switch.hpp"
#include "verify/invariants.hpp"

using namespace sdnbuf;

namespace {

sim::SimTime ms(long long v) { return sim::SimTime::milliseconds(v); }

net::Packet flow_packet(std::uint32_t flow, std::uint32_t seq = 0) {
  auto p = net::make_udp_packet(net::MacAddress::from_index(1), net::MacAddress::from_index(2),
                                net::Ipv4Address{0x0a010001u + flow},
                                net::Ipv4Address::from_octets(10, 2, 0, 1),
                                static_cast<std::uint16_t>(10000 + flow), 9, 1000);
  p.flow_id = flow;
  p.seq_in_flow = seq;
  return p;
}

}  // namespace

// ---------------------------------------------------------------- schedule

TEST(LinkFaultSchedule, MergesOverlappingAndTouchingWindows) {
  net::LinkFaultSchedule s;
  s.add_outage(ms(30), ms(40));
  s.add_outage(ms(10), ms(20));
  s.add_outage(ms(15), ms(30));  // bridges the two into one window
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_EQ(s.windows()[0].start, ms(10));
  EXPECT_EQ(s.windows()[0].end, ms(40));
  EXPECT_EQ(s.last_recovery(), ms(40));

  s.add_outage(ms(50), ms(60));  // disjoint: second window
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.last_recovery(), ms(60));
}

TEST(LinkFaultSchedule, HalfOpenWindowSemantics) {
  net::LinkFaultSchedule s;
  s.add_outage(ms(10), ms(20));
  EXPECT_FALSE(s.down_at(ms(9)));
  EXPECT_TRUE(s.down_at(ms(10)));   // start is inclusive
  EXPECT_TRUE(s.down_at(ms(19)));
  EXPECT_FALSE(s.down_at(ms(20)));  // end is exclusive

  EXPECT_FALSE(s.down_during(ms(0), ms(5)));
  EXPECT_TRUE(s.down_during(ms(0), ms(10)));   // touches the start instant
  EXPECT_TRUE(s.down_during(ms(12), ms(14)));  // fully inside
  EXPECT_TRUE(s.down_during(ms(5), ms(25)));   // spans the window
  EXPECT_FALSE(s.down_during(ms(20), ms(30)));  // starts exactly at recovery
}

TEST(LinkFaultSchedule, FlapIsSeededDeterministicAndClipped) {
  const auto a = net::LinkFaultSchedule::flap(42, ms(50), ms(240), 0.05, 0.02);
  const auto b = net::LinkFaultSchedule::flap(42, ms(50), ms(240), 0.05, 0.02);
  EXPECT_EQ(a.windows(), b.windows());
  ASSERT_FALSE(a.empty());
  sim::SimTime prev_end = sim::SimTime::zero();
  for (const auto& w : a.windows()) {
    EXPECT_LT(w.start, w.end);
    EXPECT_GE(w.start, ms(50));
    EXPECT_LE(w.end, ms(240));  // clipped: the link is guaranteed up after
    EXPECT_GE(w.start, prev_end);  // sorted and disjoint
    prev_end = w.end;
  }
  EXPECT_LE(a.last_recovery(), ms(240));

  const auto c = net::LinkFaultSchedule::flap(43, ms(50), ms(240), 0.05, 0.02);
  EXPECT_NE(a.windows(), c.windows());
}

// -------------------------------------------------------------------- link

TEST(LinkFaults, FramesOverlappingAnOutageAreEaten) {
  sim::Simulator sim;
  net::Link link{sim, "l", 100e6, sim::SimTime::microseconds(20)};
  net::LinkFaultSchedule s;
  s.add_outage(ms(10), ms(20));
  link.set_fault_schedule(&s);

  int delivered = 0;
  const auto deliver = [&delivered]() { ++delivered; };

  // Well before the window: flight interval never touches it.
  EXPECT_EQ(link.send_frame(1000, deliver), net::Link::SendResult::Sent);

  // In flight when the link dies: a 1000-byte frame takes 80 us + 20 us
  // propagation, so a send at 9.95 ms is still in the air at 10 ms.
  sim.run_until(ms(10) - sim::SimTime::microseconds(50));
  EXPECT_EQ(link.send_frame(1000, deliver), net::Link::SendResult::FaultDrop);

  // Sent into the dead link.
  sim.run_until(ms(15));
  EXPECT_EQ(link.send_frame(1000, deliver), net::Link::SendResult::FaultDrop);

  // After recovery.
  sim.run_until(ms(25));
  EXPECT_EQ(link.send_frame(1000, deliver), net::Link::SendResult::Sent);

  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.fault_drops(), 2u);
}

// ------------------------------------------------------------------ switch

namespace {

// Scripted single-switch rig (same shape as test_switch.cpp): the
// controller side is driven by hand so port-down fates are observable in
// isolation.
struct DataFaultSwitchRig {
  sim::Simulator sim;
  net::DuplexLink control{sim, "ctl", 1000e6, sim::SimTime::microseconds(250)};
  net::Link host1_egress{sim, "h1", 100e6, sim::SimTime::microseconds(20)};
  net::Link host2_egress{sim, "h2", 100e6, sim::SimTime::microseconds(20)};
  of::Channel channel{sim, control.forward(), control.reverse()};
  std::vector<of::PacketIn> pkt_ins;
  std::vector<of::PortStatus> port_statuses;
  std::vector<net::Packet> at_host2;
  bool echo_hellos = false;
  std::unique_ptr<sw::Switch> ovs;

  // PacketGranularity keeps the scripted-controller loop simple: flow
  // granularity's resend timer would re-raise packet_ins while sim.run()
  // drains with the controller silent.
  sw::Switch& make(sw::PortDownPolicy policy,
                   sw::BufferMode mode = sw::BufferMode::PacketGranularity) {
    sw::SwitchConfig config;
    config.buffer_mode = mode;
    config.buffer_capacity = 256;
    config.port_down_policy = policy;
    ovs = std::make_unique<sw::Switch>(sim, config, 7);
    ovs->attach_port(1, host1_egress, [](const net::Packet&) {});
    ovs->attach_port(2, host2_egress, [this](const net::Packet& p) { at_host2.push_back(p); });
    ovs->connect(channel);
    channel.set_controller_handler([this](const of::OfMessage& m, std::size_t) {
      if (const auto* pi = std::get_if<of::PacketIn>(&m)) pkt_ins.push_back(*pi);
      if (const auto* ps = std::get_if<of::PortStatus>(&m)) port_statuses.push_back(*ps);
      if (const auto* hello = std::get_if<of::Hello>(&m); hello != nullptr && echo_hellos) {
        channel.send_from_controller(of::Hello{hello->xid});
      }
    });
    return *ovs;
  }

  // Installs an exact rule answering `pi` out of `out_port` and releases.
  void respond(const of::PacketIn& pi, std::uint16_t out_port) {
    const auto parsed = net::Packet::parse(pi.data, pi.total_len);
    ASSERT_TRUE(parsed.has_value());
    of::FlowMod fm;
    fm.xid = pi.xid;
    fm.match = of::Match::exact_from(*parsed, pi.in_port);
    fm.priority = 100;
    fm.actions = of::output_to(out_port);
    channel.send_from_controller(fm);
    of::PacketOut po;
    po.xid = pi.xid;
    po.buffer_id = pi.buffer_id;
    po.in_port = pi.in_port;
    po.actions = of::output_to(out_port);
    if (pi.buffer_id == of::kNoBuffer) po.data = pi.data;
    channel.send_from_controller(po);
  }

  // Drives one packet through the miss -> install -> deliver path.
  void install_flow(std::uint32_t flow) {
    ovs->receive(1, flow_packet(flow, 0));
    sim.run();
    ASSERT_EQ(pkt_ins.size(), 1u);
    respond(pkt_ins[0], 2);
    sim.run();
    ASSERT_EQ(at_host2.size(), 1u);
  }
};

}  // namespace

TEST(SwitchPortDown, EmitsPortStatusOnBothTransitions) {
  DataFaultSwitchRig rig;
  sw::Switch& sw = rig.make(sw::PortDownPolicy::RePktIn);
  sw.set_port_state(2, false);
  sw.set_port_state(2, false);  // no-op: state unchanged, no duplicate status
  rig.sim.run();
  ASSERT_EQ(rig.port_statuses.size(), 1u);
  EXPECT_EQ(rig.port_statuses[0].desc.port_no, 2);
  EXPECT_TRUE(rig.port_statuses[0].desc.link_down);
  EXPECT_EQ(rig.port_statuses[0].reason, of::PortStatusReason::Delete);

  sw.set_port_state(2, true);
  rig.sim.run();
  ASSERT_EQ(rig.port_statuses.size(), 2u);
  EXPECT_FALSE(rig.port_statuses[1].desc.link_down);
  EXPECT_EQ(rig.port_statuses[1].reason, of::PortStatusReason::Add);
  EXPECT_EQ(sw.counters().port_status_sent, 2u);
}

TEST(SwitchPortDown, RePktInTurnsStaleForwardingIntoAFreshMiss) {
  DataFaultSwitchRig rig;
  sw::Switch& sw = rig.make(sw::PortDownPolicy::RePktIn);
  rig.install_flow(0);

  sw.set_port_state(2, false);
  sw.receive(1, flow_packet(0, 1));  // hits the stale rule, egress is dead
  rig.sim.run();
  EXPECT_EQ(sw.counters().port_down_repktin, 1u);
  // The re-miss raised a second packet_in for the controller to re-route.
  ASSERT_EQ(rig.pkt_ins.size(), 2u);
  EXPECT_EQ(rig.at_host2.size(), 1u);  // only the pre-fault packet arrived
}

TEST(SwitchPortDown, DropPolicyRetiresThePacket) {
  DataFaultSwitchRig rig;
  sw::Switch& sw = rig.make(sw::PortDownPolicy::Drop);
  rig.install_flow(0);

  sw.set_port_state(2, false);
  sw.receive(1, flow_packet(0, 1));
  rig.sim.run();
  EXPECT_EQ(sw.counters().port_down_dropped, 1u);
  EXPECT_EQ(rig.pkt_ins.size(), 1u);  // no re-miss under Drop
  EXPECT_EQ(rig.at_host2.size(), 1u);
}

TEST(SwitchPortDown, HoldPolicyParksAndReplaysOnRecovery) {
  DataFaultSwitchRig rig;
  sw::Switch& sw = rig.make(sw::PortDownPolicy::HoldUntilRecovery);
  rig.install_flow(0);

  sw.set_port_state(2, false);
  sw.receive(1, flow_packet(0, 1));
  sw.receive(1, flow_packet(0, 2));
  rig.sim.run();
  EXPECT_EQ(sw.counters().port_down_held, 2u);
  EXPECT_EQ(rig.at_host2.size(), 1u);  // parked, not lost

  sw.set_port_state(2, true);
  rig.sim.run();
  EXPECT_EQ(sw.counters().port_held_flushed, 2u);
  ASSERT_EQ(rig.at_host2.size(), 3u);  // replayed in arrival order
  EXPECT_EQ(rig.at_host2[1].seq_in_flow, 1u);
  EXPECT_EQ(rig.at_host2[2].seq_in_flow, 2u);
}

TEST(SwitchCrash, LosesTableAndBuffersAndRejoinsOnRestart) {
  DataFaultSwitchRig rig;
  rig.echo_hellos = true;
  sw::Switch& sw = rig.make(sw::PortDownPolicy::RePktIn);
  rig.install_flow(0);

  // A second flow's unit is sitting in the buffer when the switch dies.
  sw.receive(1, flow_packet(1, 0));
  rig.sim.run();  // let the miss reach the buffer (its packet_in goes unanswered)
  sw.crash();
  EXPECT_EQ(sw.counters().crashes, 1u);
  EXPECT_GE(sw.counters().buffer_units_expired, 1u);

  // Dead datapath: ingress frames die at the pipeline.
  sw.receive(1, flow_packet(0, 1));
  rig.sim.run();
  EXPECT_EQ(sw.counters().crash_dropped, 1u);
  EXPECT_EQ(rig.at_host2.size(), 1u);

  // Restart rejoins through the hello re-handshake; the flow table was
  // volatile, so the previously-installed flow misses again.
  sw.restart();
  rig.sim.run();
  const std::size_t before = rig.pkt_ins.size();
  sw.receive(1, flow_packet(0, 2));
  rig.sim.run();
  EXPECT_EQ(rig.pkt_ins.size(), before + 1);
}

// ---------------------------------------------------------- fabric repairs

namespace {

core::FabricExperimentConfig failover_config() {
  core::FabricExperimentConfig c;
  c.topology = topo::make_leaf_spine(2, 2, 2);
  c.routing = core::FabricRouting::TopologyPerHop;
  c.mode = sw::BufferMode::FlowGranularity;
  c.buffer_capacity = 256;
  c.pattern = host::TrafficPattern::Permutation;
  c.duration_s = 0.3;
  c.flow_arrival_per_s = 300.0;
  c.min_packets = 2;
  c.max_packets = 12;
  c.in_flow_rate_mbps = 20.0;
  c.seed = 99;
  c.drain_timeout = sim::SimTime::seconds(4);
  return c;
}

std::size_t first_fabric_link(const topo::Topology& topology) {
  for (std::size_t i = 0; i < topology.links().size(); ++i) {
    if (!topology.links()[i].host_edge) return i;
  }
  ADD_FAILURE() << "no inter-switch link";
  return 0;
}

core::LinkFaultSpec outage_spec(std::size_t link, sim::SimTime from, sim::SimTime to) {
  core::LinkFaultSpec spec;
  spec.link_index = link;
  spec.schedule.add_outage(from, to);
  return spec;
}

}  // namespace

TEST(FabricFaults, ZeroFaultConfigMatchesInertFaultPlane) {
  const auto plain = run_fabric_experiment(failover_config());

  // An armed-but-empty fault plane must not perturb the event sequence.
  core::FabricExperimentConfig inert = failover_config();
  core::LinkFaultSpec empty;
  empty.link_index = first_fabric_link(inert.topology);
  inert.link_faults.push_back(empty);  // empty schedule: skipped at arming
  const auto armed = run_fabric_experiment(inert);

  EXPECT_EQ(plain.packets_sent, armed.packets_sent);
  EXPECT_EQ(plain.packets_delivered, armed.packets_delivered);
  EXPECT_EQ(plain.pkt_ins, armed.pkt_ins);
  EXPECT_EQ(plain.flow_mods, armed.flow_mods);
  EXPECT_EQ(plain.control_bytes, armed.control_bytes);
  EXPECT_EQ(plain.delivered, armed.delivered);
  EXPECT_EQ(plain.link_fault_drops, 0u);
  EXPECT_EQ(plain.port_status_seen, 0u);
  EXPECT_EQ(plain.last_fault_clear, sim::SimTime::zero());
}

TEST(FabricFaults, RouteRepairSurvivesASpineOutage) {
  core::FabricExperimentConfig config = failover_config();
  config.closed_loop = true;
  config.reliable.rto = sim::SimTime::milliseconds(20);
  config.reliable.backoff = 1.5;
  config.reliable.max_retransmits = 10;
  config.link_faults.push_back(
      outage_spec(first_fabric_link(config.topology), ms(60), ms(160)));
  const auto r = run_fabric_experiment(config);

  // Both endpoint switches reported the transition (down and up).
  EXPECT_GE(r.port_status_seen, 4u);
  EXPECT_EQ(r.link_down_events, 1u);
  // Rules riding the dead link were deleted so flows could reroute.
  EXPECT_GT(r.rules_invalidated, 0u);
  EXPECT_EQ(r.last_fault_clear, ms(160));
  // Closed loop: everything offered was eventually delivered.
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.unique_acked, r.unique_offered);
  EXPECT_EQ(r.abandoned, 0u);
}

TEST(FabricFaults, FaultRunsAreDeterministic) {
  core::FabricExperimentConfig config = failover_config();
  config.closed_loop = true;
  config.delivery_bin = ms(10);
  const auto fabric_link = first_fabric_link(config.topology);
  for (std::size_t li = fabric_link; li < config.topology.links().size(); ++li) {
    if (config.topology.links()[li].host_edge) continue;
    core::LinkFaultSpec spec;
    spec.link_index = li;
    spec.schedule = net::LinkFaultSchedule::flap(config.seed * 1000003 + li, ms(50), ms(200),
                                                 0.06, 0.02);
    config.link_faults.push_back(spec);
  }
  const auto a = run_fabric_experiment(config);
  const auto b = run_fabric_experiment(config);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.unique_acked, b.unique_acked);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.link_fault_drops, b.link_fault_drops);
  EXPECT_EQ(a.rules_invalidated, b.rules_invalidated);
  EXPECT_EQ(a.pkt_ins, b.pkt_ins);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivered_per_bin, b.delivered_per_bin);
  EXPECT_GT(a.link_fault_drops + a.rules_invalidated, 0u);  // faults actually hit
}

TEST(FabricFaults, ConservationHoldsUnderLinkFaults) {
  core::FabricExperimentConfig config = failover_config();
  std::vector<std::unique_ptr<verify::InvariantRegistry>> registries;
  for (unsigned i = 0; i < config.topology.n_switches(); ++i) {
    registries.push_back(std::make_unique<verify::InvariantRegistry>());
    // Reroutes after a flap may revisit a switch; the ledger must still balance.
    registries.back()->set_allow_revisits(true);
    config.observers.push_back(registries.back().get());
  }
  const auto fabric_link = first_fabric_link(config.topology);
  config.link_faults.push_back(outage_spec(fabric_link, ms(60), ms(140)));
  config.link_faults.push_back(outage_spec(fabric_link + 1, ms(90), ms(170)));
  const auto r = run_fabric_experiment(config);
  EXPECT_GT(r.packets_delivered, 0u);
  for (unsigned i = 0; i < registries.size(); ++i) {
    registries[i]->finalize(/*expect_all_delivered=*/false);
    EXPECT_TRUE(registries[i]->ok()) << "switch " << i << "\n" << registries[i]->report();
  }
}

TEST(FabricFaults, LeafCrashExpiresBufferedUnitsAndClosedLoopRecovers) {
  core::FabricExperimentConfig config = failover_config();
  config.pattern = host::TrafficPattern::Incast;
  config.incast_target = 0;
  config.incast_fanin = 3;
  config.flow_arrival_per_s = 800.0;
  config.duration_s = 0.2;
  config.closed_loop = true;
  config.reliable.rto = sim::SimTime::milliseconds(20);
  config.reliable.backoff = 1.5;
  config.reliable.max_retransmits = 10;
  core::SwitchCrashSpec crash;
  crash.switch_index =
      config.topology.index_of(config.topology.attachment(config.topology.host_id(0)).peer);
  crash.crash_at = ms(20);
  crash.restart_at = ms(70);
  config.switch_crashes.push_back(crash);

  const auto r = run_fabric_experiment(config);
  EXPECT_EQ(r.switch_crashes, 1u);
  EXPECT_GT(r.buffer_units_expired, 0u);  // misses were queued when it died
  EXPECT_EQ(r.last_fault_clear, ms(70));
  // The retransmit loop re-offers everything the crash destroyed.
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.unique_acked, r.unique_offered);
}

// Flow-lifecycle tracing: Chrome trace-event JSON for Perfetto.
//
// `TraceWriter` accumulates trace events (async spans + instants) keyed to
// simulation time and writes the Chrome trace-event JSON format, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. `FlowTracer` is a
// `verify::InvariantObserver` that turns the datapath's existing observation
// points into spans:
//
//   cat "packet"   transit        injection -> delivery/drop, per packet
//   cat "control"  pktin_rtt      packet_in sent -> first flow_mod/packet_out
//                                 response carrying the same xid
//   cat "buffer"   unit_resident  buffer unit allocated -> retired
//
// plus instant events for drops, expiries, controller-side packet_in drops
// and channel faults. Sampling is deterministic and seeded: a flow is traced
// iff hash(flow_id, seed) % period == 0, so two runs of the same seed trace
// identical flows regardless of host or thread count.
//
// Like every obs layer, tracing rides the nullable-observer pattern: with no
// tracer wired, the datapath executes exactly the code it executes today.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::obs {

// One key/value argument on a trace event. Values are either numbers or
// strings with static storage (string literals / interned component names).
struct TraceArg {
  const char* key;
  const char* str = nullptr;  // wins when non-null
  double num = 0.0;

  TraceArg(const char* k, const char* v) : key(k), str(v) {}
  TraceArg(const char* k, double v) : key(k), num(v) {}
};

class TraceWriter {
 public:
  TraceWriter() = default;
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Async-span begin/end ("b"/"e" phases). Spans match on (cat, id, name);
  // `id` must be unique among concurrently open spans of the same cat+name.
  void begin_span(const char* cat, const char* name, std::uint64_t id, sim::SimTime ts,
                  std::initializer_list<TraceArg> args = {});
  void end_span(const char* cat, const char* name, std::uint64_t id, sim::SimTime ts,
                std::initializer_list<TraceArg> args = {});

  // Instant event ("i" phase, global scope).
  void instant(const char* cat, const char* name, sim::SimTime ts,
               std::initializer_list<TraceArg> args = {});

  // Freeform metadata emitted next to traceEvents.
  void set_meta(const std::string& key, const std::string& value);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::size_t begin_count() const { return begins_; }
  [[nodiscard]] std::size_t end_count() const { return ends_; }

  // {"displayTimeUnit": "ms", "meta": {...}, "traceEvents": [...]}
  void write_json(std::ostream& out) const;

  void reset();

 private:
  void push(char phase, const char* cat, const char* name, std::uint64_t id, bool has_id,
            sim::SimTime ts, std::initializer_list<TraceArg> args);

  std::vector<std::string> events_;  // pre-rendered JSON objects
  std::vector<std::pair<std::string, std::string>> meta_;
  std::size_t begins_ = 0;
  std::size_t ends_ = 0;
};

// Observer that renders datapath events into trace spans. Wire it into a
// testbed either directly (ExperimentConfig::tracer) or via TeeObserver when
// an invariant registry is also attached.
class FlowTracer final : public verify::InvariantObserver {
 public:
  // `sample_period`: trace every flow whose hash lands on 0 mod period
  // (1 = trace everything). Warm-up traffic (kUntrackedFlow) is never traced.
  FlowTracer(TraceWriter& writer, std::uint64_t seed, std::uint32_t sample_period);

  void on_packet_injected(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_delivered(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_dropped(const net::Packet& packet, const char* where, sim::SimTime now) override;
  void on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet, bool new_unit,
                       bool flow_granularity, sim::SimTime now) override;
  void on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                         sim::SimTime now) override;
  void on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                        sim::SimTime now) override;
  void on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) override;
  void on_packet_in_sent(std::uint32_t xid, const net::Packet& packet, std::uint32_t buffer_id,
                         sim::SimTime now) override;
  void on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id, sim::SimTime now) override;
  void on_control_message(bool to_controller, const of::OfMessage& msg, sim::SimTime now) override;
  void on_channel_fault(bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                        sim::SimTime now) override;

  // Whether `flow_id` falls in the deterministic sample.
  [[nodiscard]] bool sampled(std::uint64_t flow_id) const;

  // Force-closes every span still open (faulted / unanswered flows), so the
  // emitted trace always balances. Call once, after the simulation drains.
  void finalize(sim::SimTime now);

  // Control spans that opened (packet_in sent) and that closed with a
  // genuine response — the cross-check against DelayRecorder completions.
  [[nodiscard]] std::uint64_t control_spans_opened() const { return control_opened_; }
  [[nodiscard]] std::uint64_t control_spans_answered() const { return control_answered_; }

 private:
  [[nodiscard]] static std::uint64_t packet_span_id(const net::Packet& packet);
  void end_control_span(std::uint32_t xid, sim::SimTime now, const char* outcome);

  TraceWriter& writer_;
  std::uint64_t seed_;
  std::uint32_t period_;

  // Open-span bookkeeping, keyed the way the close-side events identify them.
  std::unordered_map<std::uint64_t, std::uint64_t> open_packets_;   // span id -> flow_id
  std::unordered_map<std::uint32_t, std::uint64_t> open_control_;   // xid -> flow_id
  std::unordered_map<std::uint32_t, std::uint64_t> open_buffers_;   // buffer_id -> span id
  std::uint64_t next_buffer_span_ = 1;
  std::uint64_t control_opened_ = 0;
  std::uint64_t control_answered_ = 0;
};

// Fans observer callbacks out to two observers (e.g. an InvariantRegistry
// and a FlowTracer). Either side may be null.
class TeeObserver final : public verify::InvariantObserver {
 public:
  TeeObserver(verify::InvariantObserver* a, verify::InvariantObserver* b) : a_(a), b_(b) {}

  void on_packet_injected(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_delivered(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_dropped(const net::Packet& packet, const char* where, sim::SimTime now) override;
  void on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet, bool new_unit,
                       bool flow_granularity, sim::SimTime now) override;
  void on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                         sim::SimTime now) override;
  void on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                        sim::SimTime now) override;
  void on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) override;
  void on_packet_in_sent(std::uint32_t xid, const net::Packet& packet, std::uint32_t buffer_id,
                         sim::SimTime now) override;
  void on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id, sim::SimTime now) override;
  void on_control_message(bool to_controller, const of::OfMessage& msg, sim::SimTime now) override;
  void on_channel_fault(bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                        sim::SimTime now) override;

 private:
  verify::InvariantObserver* a_;
  verify::InvariantObserver* b_;
};

}  // namespace sdnbuf::obs

// In-fabric telemetry plane (DESIGN.md §15).
//
// `FabricObservatory` is the collection point for the two passive telemetry
// streams this layer adds on top of the nullable-observer contract:
//
//   INT harvest     delivered packets carry a bounded per-hop stamp stack
//                   (net::HopStamp, appended by switches whose
//                   telemetry_int_depth is non-zero); the observatory folds
//                   the stacks into a per-(switch, egress port) queue-depth /
//                   residence heatmap and per-flow path latency breakdowns
//   fate ledger     every tracked payload that is not delivered receives one
//                   terminal fate record {where, why, fate class}; the
//                   ledger's totals close exactly against injections
//                   (injected == delivered + fated + stranded) and are
//                   cross-validated against verify::InvariantRegistry's
//                   per-payload accounting by the fuzzer
//
// The ledger is a per-payload state machine, not a bag of counters:
//   - injections are counted once per distinct payload (flow_id, seq);
//   - the first fate wins — later drop reports for the same payload (e.g. a
//     duplicated copy dropped twice) do not double-count;
//   - delivery wins over any fate: when a duplicate copy makes it through
//     after another copy was lost, the recorded fate is retracted, so
//     "fated" always means "terminally undelivered".
//
// Feed the observatory through `FateObserver` (an InvariantObserver adapter
// one per switch) plus a host-sink delivery tap; it never hooks channels
// itself (the single verify/fault tap slots belong to the invariant
// registries).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics/delay_recorder.hpp"
#include "util/flat_map.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::obs {

class MetricsRegistry;

// Terminal fate taxonomy. Every drop-site label the datapath emits maps into
// one of these classes; `Other` is the explicit catch-all (never a silent
// default — the raw `why` string is preserved alongside).
enum class PacketFate : std::uint8_t {
  QueueFull,       // egress/flood/link transmit queue tail drop
  LinkFault,       // data-plane outage, downed port, control-channel loss
  TableMissStorm,  // packet_in discarded controller-side, or dropped by rule
  HopLimit,        // forwarding-loop guard
  BufferExpiry,    // switch buffer unit expired before a rule answered
  FailSecure,      // disconnected switch in fail-secure mode
  Other,
};
inline constexpr std::size_t kFateCount = static_cast<std::size_t>(PacketFate::Other) + 1;

[[nodiscard]] const char* fate_name(PacketFate fate);

// Maps a datapath drop-site label ("egress-queue", "link-down", ...) to its
// fate class.
[[nodiscard]] PacketFate classify_drop_site(const char* where);

class FabricObservatory {
 public:
  FabricObservatory() = default;
  FabricObservatory(const FabricObservatory&) = delete;
  FabricObservatory& operator=(const FabricObservatory&) = delete;

  // --- event feed ---
  // Hot-path contract: each feed call appends one fixed-size record to an
  // event log (amortized array write, no map touches) — the collector work
  // of folding events into the ledger/heatmap/path aggregates happens in
  // flush(), batched, exactly like a real INT collector sitting off the
  // forwarding path. The log preserves global event order, so first-fate-
  // wins / delivery-retraction semantics are identical to eager folding.
  //
  // Endpoint injection of a tracked payload (idempotent per payload identity:
  // retransmissions of the same (flow_id, seq) do not inflate the ledger).
  void on_injected(const net::Packet& packet, sim::SimTime now);
  // First-copy delivery at a host sink. Harvests the INT stamp stack and
  // retracts any previously recorded fate for the payload.
  void on_delivered(const net::Packet& packet, sim::SimTime now);
  // Terminal fate report. `site` names the component ("s3"), `why` the raw
  // drop-site label; first fate per payload wins, deliveries override.
  void on_fate(const net::Packet& packet, PacketFate fate, const std::string& site,
               const char* why, sim::SimTime now);
  // Fate report for a payload known only by identity (controller-side
  // packet_in drops and channel faults, where no net::Packet is in hand).
  void on_fate_id(std::uint64_t flow_id, std::uint32_t seq_in_flow, PacketFate fate,
                  const std::string& site, const char* why, sim::SimTime now);

  // Folds all pending events into the aggregates and empties the log. Every
  // accessor below flushes first, so callers never observe a stale view;
  // run_experiment()/run_fabric_experiment() also flush before returning so
  // the collector cost stays inside the measured run.
  void flush() const;

  // --- ledger totals (exact: injected() == delivered() + fated() + stranded()) ---
  [[nodiscard]] std::uint64_t injected() const {
    flush();
    return injected_;
  }
  [[nodiscard]] std::uint64_t delivered() const {
    flush();
    return delivered_;
  }
  [[nodiscard]] std::uint64_t fate_count(PacketFate fate) const {
    flush();
    return fate_counts_[static_cast<std::size_t>(fate)];
  }
  [[nodiscard]] std::uint64_t fated() const;
  // Injected payloads with neither a delivery nor a fate (still buffered or
  // in flight when the run ended).
  [[nodiscard]] std::uint64_t stranded() const { return injected() - delivered() - fated(); }
  // Fates that were later overridden by a duplicate copy arriving.
  [[nodiscard]] std::uint64_t retracted_fates() const {
    flush();
    return retracted_;
  }
  // Fate reports that arrived for a payload never injected (untracked or
  // foreign) or already resolved — observed but not ledgered.
  [[nodiscard]] std::uint64_t discarded_fate_reports() const {
    flush();
    return discarded_reports_;
  }

  // --- INT harvest ---
  [[nodiscard]] std::uint64_t stamps_harvested() const {
    flush();
    return stamps_;
  }
  [[nodiscard]] std::uint64_t stamped_deliveries() const {
    flush();
    return stamped_deliveries_;
  }

  // One heatmap cell per (switch datapath id, egress port).
  struct HeatCell {
    std::uint64_t samples = 0;
    std::uint32_t queue_depth_max = 0;
    std::uint64_t queue_depth_sum = 0;
    std::int64_t residence_ns_max = 0;
    std::int64_t residence_ns_sum = 0;
    std::uint32_t buffer_units_max = 0;
    // MMU sharing dynamics (zero on stamps from MMU-less switches): shared-
    // pool occupancy and the stamped queue's admission ceiling, which under
    // a dynamic policy shrinks as the pool fills.
    std::uint32_t pool_cells_max = 0;
    std::uint64_t pool_cells_sum = 0;
    std::uint32_t queue_threshold_max = 0;
    std::uint32_t queue_threshold_min = 0;  // over samples with a threshold
  };
  using HeatKey = std::pair<std::uint64_t, std::uint16_t>;  // (switch_id, out_port)
  [[nodiscard]] const std::map<HeatKey, HeatCell>& heatmap() const {
    flush();
    return heat_;
  }

  // Hottest cells by maximum observed queue depth (ties: larger residence
  // sum, then key order). At most `n` entries.
  struct Hotspot {
    std::uint64_t switch_id = 0;
    std::uint16_t port = 0;
    std::uint32_t queue_depth_max = 0;
    double residence_us_mean = 0.0;
  };
  [[nodiscard]] std::vector<Hotspot> hotspots(std::size_t n) const;

  // Per-flow path aggregation from harvested stamp stacks.
  struct FlowPath {
    // One aggregate per hop position: the switch id seen by the first stamped
    // copy (extended in place if a later copy recorded more hops) plus the
    // summed residence time at that position. Paths up to kInlineHops hops
    // live inline — no allocation per flow on the fold path; longer paths
    // (deep fat-trees) spill to the vector.
    struct HopAgg {
      std::uint64_t switch_id = 0;
      std::int64_t residence_ns_sum = 0;
    };
    static constexpr std::size_t kInlineHops = 4;

    bool multipath = false;        // a later copy took a different path
    std::uint32_t hop_count = 0;   // valid entries in hops()
    std::uint64_t packets = 0;     // stamped deliveries aggregated
    std::int64_t e2e_ns_sum = 0;   // created_at -> sink arrival
    std::int64_t e2e_ns_max = 0;

    [[nodiscard]] const HopAgg* hops() const {
      return hop_count <= kInlineHops ? inline_hops : spill.data();
    }
    [[nodiscard]] HopAgg* hops() {
      return hop_count <= kInlineHops ? inline_hops : spill.data();
    }
    void append_hop(std::uint64_t switch_id) {
      if (hop_count < kInlineHops) {
        inline_hops[hop_count] = HopAgg{switch_id, 0};
      } else {
        if (hop_count == kInlineHops) spill.assign(inline_hops, inline_hops + kInlineHops);
        spill.push_back(HopAgg{switch_id, 0});
      }
      ++hop_count;
    }

   private:
    HopAgg inline_hops[kInlineHops] = {};
    std::vector<HopAgg> spill;
  };
  // Unordered on the harvest path; write_paths_csv sorts rows by flow id.
  struct FlowIdHash {
    std::size_t operator()(std::uint64_t k) const {
      return static_cast<std::size_t>(util::mix64(k));
    }
  };
  [[nodiscard]] const util::FlatMap<std::uint64_t, FlowPath, FlowIdHash>& flow_paths() const {
    flush();
    return paths_;
  }

  // --- exports ---
  // switch_id,port,samples,qdepth_max,qdepth_mean,residence_us_max,
  // residence_us_mean,buffer_units_max
  void write_heatmap_csv(std::ostream& out) const;
  // fate,count — one row per fate class, plus delivered/stranded/injected
  // summary rows so the file is self-checking (sum == injected).
  void write_fates_csv(std::ostream& out) const;
  // flow_id,packets,hops,multipath,path,e2e_us_mean,e2e_us_max,hop_us_mean
  void write_paths_csv(std::ostream& out) const;
  // Ledger + harvest summary, machine-checkable by scripts/validate_trace.py.
  void write_summary_json(std::ostream& out) const;

  // Registers ledger/harvest poll gauges ("observatory.*") on the registry.
  void install_metrics(MetricsRegistry& metrics);

  void reset();

 private:
  struct LedgerEntry {
    bool delivered = false;
    bool fated = false;
    PacketFate fate = PacketFate::Other;
    std::uint16_t site = 0;  // interned site index
    const char* why = "";
  };
  using PayloadId = std::pair<std::uint64_t, std::uint32_t>;

  // Flat (flow_id, seq) key: one probe and no per-insert node allocation —
  // the ledger inserts once per simulated packet, so this is the hot path.
  struct PayloadIdHash {
    std::size_t operator()(const PayloadId& id) const {
      return static_cast<std::size_t>(util::mix64(id.first * 0x100000001B3ull + id.second));
    }
  };

  // One hot-path record. `kind` discriminates; delivery events reference a
  // contiguous stamp range in stamp_log_ instead of owning a vector.
  enum class EventKind : std::uint8_t { Inject, Deliver, Fate };
  struct Event {
    std::uint64_t flow_id = 0;
    std::uint32_t seq_in_flow = 0;
    EventKind kind = EventKind::Inject;
    PacketFate fate = PacketFate::Other;
    std::uint16_t site = 0;        // fate: interned site index
    const char* why = "";          // fate: raw drop-site label (static storage)
    std::int64_t e2e_ns = 0;       // deliver: created_at -> sink arrival
    std::uint32_t stamp_off = 0;   // deliver: range into stamp_log_
    std::uint32_t stamp_len = 0;
  };

  void record_fate(PayloadId id, PacketFate fate, std::uint16_t site, const char* why) const;
  void fold_delivered(const Event& e) const;
  [[nodiscard]] std::uint16_t intern_site(const std::string& site);

  // Aggregates are a fold over events_, materialized lazily — mutable so
  // const accessors can flush.
  mutable std::uint64_t injected_ = 0;
  mutable std::uint64_t delivered_ = 0;
  mutable std::uint64_t retracted_ = 0;
  mutable std::uint64_t discarded_reports_ = 0;
  mutable std::uint64_t fate_counts_[kFateCount] = {};
  mutable std::uint64_t stamps_ = 0;
  mutable std::uint64_t stamped_deliveries_ = 0;

  mutable util::FlatMap<PayloadId, LedgerEntry, PayloadIdHash> ledger_;
  std::vector<std::string> sites_;  // interned site labels
  mutable std::map<HeatKey, HeatCell> heat_;
  mutable util::FlatMap<std::uint64_t, FlowPath, FlowIdHash> paths_;

  mutable std::vector<Event> events_;          // pending, in arrival order
  mutable std::vector<net::HopStamp> stamp_log_;  // arena for pending stamps
};

// InvariantObserver adapter: forwards one component's drop/expiry/loss events
// into the observatory with a site label. Deliveries and mid-fabric handoffs
// are deliberately NOT forwarded — deliveries reach the observatory through
// the host-sink tap exactly once per payload, and per-switch handoff
// injections would inflate the endpoint ledger (set `endpoint_injections`
// only on the chain testbed, where the observer sees true endpoint events).
class FateObserver final : public verify::InvariantObserver {
 public:
  FateObserver(FabricObservatory& observatory, std::string site, bool endpoint_injections)
      : obs_(observatory), site_(std::move(site)), endpoint_injections_(endpoint_injections) {}

  void on_packet_injected(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_delivered(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_dropped(const net::Packet& packet, const char* where, sim::SimTime now) override;
  void on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet, bool new_unit,
                       bool flow_granularity, sim::SimTime now) override;
  void on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                         sim::SimTime now) override;
  void on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                        sim::SimTime now) override;
  void on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) override;
  void on_packet_in_sent(std::uint32_t xid, const net::Packet& packet, std::uint32_t buffer_id,
                         sim::SimTime now) override;
  void on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id, sim::SimTime now) override;
  void on_control_message(bool to_controller, const of::OfMessage& msg, sim::SimTime now) override;
  void on_channel_fault(bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                        sim::SimTime now) override;

 private:
  // packet_in metadata, for attributing controller drops and channel losses
  // of frame-carrying messages to their payload (mirrors the registry's map).
  struct PacketInMeta {
    std::uint64_t flow_id = metrics::kUntrackedFlow;  // sentinel: slot unused
    std::uint32_t seq_in_flow = 0;
    std::uint32_t buffer_id = 0;
  };

  // xids are a per-switch sequential counter, so a dense vector indexed from
  // the first-seen xid avoids a hash-map node allocation per packet_in.
  [[nodiscard]] const PacketInMeta* find_packet_in(std::uint32_t xid) const;

  FabricObservatory& obs_;
  std::string site_;
  bool endpoint_injections_;
  std::uint32_t packet_ins_base_ = 0;
  std::vector<PacketInMeta> packet_ins_;
};

}  // namespace sdnbuf::obs

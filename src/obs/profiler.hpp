// Event-loop profiler: per-component attribution of callback wall time.
//
// Implements `sim::ProfileSink`. Components open a `sim::ScopedProfileTag`
// at the top of their scheduled callbacks (the tag costs two thread-local
// writes whether or not profiling is on); when a profiler is installed via
// `Simulator::set_profile_sink`, each event is timed with steady_clock and
// accumulated under its outermost tag. Wall time never feeds back into sim
// time, so profiled runs stay bit-identical to unprofiled ones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"

namespace sdnbuf::obs {

class EventLoopProfiler final : public sim::ProfileSink {
 public:
  struct Row {
    std::string tag;
    std::uint64_t events = 0;
    double total_s = 0.0;
    double max_s = 0.0;
    double mean_us() const { return events == 0 ? 0.0 : total_s / double(events) * 1e6; }
  };

  void on_event(const char* tag, double wall_seconds) override;

  [[nodiscard]] std::uint64_t total_events() const { return total_events_; }
  [[nodiscard]] double total_seconds() const { return total_s_; }

  // Rows sorted by total wall time, descending. `top_n == 0` means all.
  [[nodiscard]] std::vector<Row> table(std::size_t top_n = 0) const;

  // Human-readable top-N table (share%, events, total, mean, max per tag).
  void write_report(std::ostream& out, std::size_t top_n = 10) const;

  // Folds another profiler's rows into this one (tags merge by content).
  // Sharded runs keep one profiler per shard — a sink shared across shards
  // would race under worker threads — and merge them after the run.
  void merge_from(const EventLoopProfiler& other);

  void reset();

 private:
  // Tags are raw pointers with stable storage (string literals / component
  // names); identical text from different components merges by content.
  // `by_ptr_` short-circuits the per-event string hash to one pointer-keyed
  // lookup; it relies on tag pointers staying valid for the profiler's
  // lifetime, so reset() between simulations if components are rebuilt.
  // (unordered_map is node-based: Row* stays valid across rehashes.)
  std::unordered_map<std::string, Row> rows_;
  std::unordered_map<const char*, Row*> by_ptr_;
  std::uint64_t total_events_ = 0;
  double total_s_ = 0.0;
};

}  // namespace sdnbuf::obs

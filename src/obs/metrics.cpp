#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

namespace sdnbuf::obs {

namespace {

// Bucket index for a value: 0 for [0, unit), otherwise 1 + floor(log2(v/unit))
// clamped to the overflow bucket. Uses integer bit-width on the quotient so
// the hot path avoids libm.
std::size_t bucket_for(double value, double unit) {
  if (!(value >= 0.0)) return 0;  // negative / NaN guard: park in bucket 0
  const double q = value / unit;
  if (q < 1.0) return 0;
  // 2^62 is the lower bound of the overflow bucket; checking before the
  // cast also keeps huge quotients (> 2^64) off the UB float->int path.
  constexpr double kOverflowAt = 4611686018427387904.0;
  if (q >= kOverflowAt) return Histogram::kBuckets - 1;
  const auto scaled = static_cast<std::uint64_t>(q);
  std::size_t idx = 1;
  std::uint64_t v = scaled;
  while (v >>= 1) ++idx;
  return std::min(idx, Histogram::kBuckets - 1);
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c; break;
    }
  }
  out << '"';
}

void write_json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  // Round-trippable doubles without ostream state games.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

}  // namespace

Histogram::Histogram(double unit) : unit_(unit > 0.0 ? unit : 1.0) {}

void Histogram::record(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_for(value, unit_)];
}

double Histogram::lower_bound(std::size_t bucket, double unit) {
  if (bucket == 0) return 0.0;
  return unit * std::ldexp(1.0, static_cast<int>(bucket) - 1);
}

double Histogram::upper_bound(std::size_t bucket, double unit) {
  if (bucket >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return unit * std::ldexp(1.0, static_cast<int>(bucket));
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Same rank convention as util::Samples::percentile: rank in [0, n-1].
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      // Interpolate within the bucket by rank position.
      const double frac =
          in_bucket == 1 ? 0.5
                         : (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket - 1);
      double lo = lower_bound(i, unit_);
      double hi = upper_bound(i, unit_);
      if (!std::isfinite(hi)) hi = max_;  // overflow bucket: clamp to observed max
      double est = lo + frac * (hi - lo);
      return std::clamp(est, min_, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  assert(unit_ == other.unit_ && "histogram merge requires matching units");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  buckets_.fill(0);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return counters_[it->second];
  counter_index_.emplace(name, counters_.size());
  counter_names_.push_back(name);
  return counters_.emplace_back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return gauges_[it->second];
  gauge_index_.emplace(name, gauges_.size());
  gauge_names_.push_back(name);
  return gauges_.emplace_back();
}

Histogram& MetricsRegistry::histogram(const std::string& name, double unit) {
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return histograms_[it->second];
  histogram_index_.emplace(name, histograms_.size());
  histogram_names_.push_back(name);
  return histograms_.emplace_back(Histogram(unit));
}

void MetricsRegistry::register_poll(const std::string& name, std::function<double()> poll) {
  // Get-or-replace by name, so re-installing over a reused registry (one
  // registry across a sweep's points) rebinds the callback instead of
  // growing a duplicate column per run.
  for (std::size_t i = 0; i < poll_names_.size(); ++i) {
    if (poll_names_[i] == name) {
      polls_[i] = std::move(poll);
      return;
    }
  }
  poll_names_.push_back(name);
  polls_.push_back(std::move(poll));
}

void MetricsRegistry::clear_polls() {
  // Only the callbacks die (they capture references into a testbed that is
  // about to be destroyed). The names stay: recorded rows keep their columns,
  // and any later snapshot records 0 for the dead polls.
  for (auto& poll : polls_) poll = nullptr;
}

void MetricsRegistry::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void MetricsRegistry::take_snapshot(sim::SimTime now) {
  SnapshotRow row;
  row.t = now;
  row.values.reserve(counters_.size() + gauges_.size() + polls_.size());
  for (const Counter& c : counters_) row.values.push_back(static_cast<double>(c.value()));
  for (const Gauge& g : gauges_) row.values.push_back(g.value());
  for (const auto& poll : polls_) row.values.push_back(poll ? poll() : 0.0);
  snapshots_.push_back(std::move(row));
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counter_index_.find(name);
  return it == counter_index_.end() ? nullptr : &counters_[it->second];
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? nullptr : &gauges_[it->second];
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr : &histograms_[it->second];
}

std::optional<double> MetricsRegistry::snapshot_value(std::size_t row,
                                                      const std::string& name) const {
  if (row >= snapshots_.size()) return std::nullopt;
  const SnapshotRow& r = snapshots_[row];
  std::size_t col = 0;
  for (const std::string& n : counter_names_) {
    if (n == name && col < r.values.size()) return r.values[col];
    ++col;
  }
  for (const std::string& n : gauge_names_) {
    if (n == name && col < r.values.size()) return r.values[col];
    ++col;
  }
  for (const std::string& n : poll_names_) {
    if (n == name && col < r.values.size()) return r.values[col];
    ++col;
  }
  return std::nullopt;
}

sim::SimTime MetricsRegistry::snapshot_time(std::size_t row) const {
  return row < snapshots_.size() ? snapshots_[row].t : sim::SimTime::zero();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta_) {
    out << (first ? "\n    " : ",\n    ");
    write_json_string(out, k);
    out << ": ";
    write_json_string(out, v);
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"columns\": [\"t_ms\"";
  for (const std::string& n : counter_names_) {
    out << ", ";
    write_json_string(out, n);
  }
  for (const std::string& n : gauge_names_) {
    out << ", ";
    write_json_string(out, n);
  }
  for (const std::string& n : poll_names_) {
    out << ", ";
    write_json_string(out, n);
  }
  out << "],\n";

  out << "  \"snapshots\": [";
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    const SnapshotRow& row = snapshots_[i];
    out << (i == 0 ? "\n    [" : ",\n    [");
    write_json_number(out, row.t.ms());
    for (double v : row.values) {
      out << ", ";
      write_json_number(out, v);
    }
    out << "]";
  }
  out << (snapshots_.empty() ? "],\n" : "\n  ],\n");

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i];
    out << (i == 0 ? "\n    " : ",\n    ");
    write_json_string(out, histogram_names_[i]);
    out << ": {\"unit\": ";
    write_json_number(out, h.unit());
    out << ", \"count\": " << h.count() << ", \"sum\": ";
    write_json_number(out, h.sum());
    out << ", \"min\": ";
    write_json_number(out, h.min());
    out << ", \"max\": ";
    write_json_number(out, h.max());
    out << ", \"p50\": ";
    write_json_number(out, h.quantile(50));
    out << ", \"p99\": ";
    write_json_number(out, h.quantile(99));
    out << ", \"overflow\": " << h.overflow_count() << ", \"buckets\": [";
    // Trailing zero buckets are elided; validate_trace.py treats absent
    // buckets as zero.
    std::size_t last = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets()[b] != 0) last = b + 1;
    }
    for (std::size_t b = 0; b < last; ++b) {
      if (b) out << ", ";
      out << h.buckets()[b];
    }
    out << "]}";
  }
  out << (histograms_.empty() ? "}\n" : "\n  }\n");
  out << "}\n";
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  polls_.clear();
  histograms_.clear();
  counter_names_.clear();
  gauge_names_.clear();
  poll_names_.clear();
  histogram_names_.clear();
  counter_index_.clear();
  gauge_index_.clear();
  histogram_index_.clear();
  meta_.clear();
  snapshots_.clear();
}

MetricsSnapshotter::MetricsSnapshotter(sim::Simulator& sim, MetricsRegistry& registry,
                                       sim::SimTime interval)
    : sim_(sim), registry_(registry), interval_(interval) {}

void MetricsSnapshotter::start() {
  if (running_) return;
  running_ = true;
  registry_.take_snapshot(sim_.now());
  event_ = sim_.schedule(interval_, [this] { tick(); });
}

void MetricsSnapshotter::stop() {
  if (!running_) return;
  running_ = false;
  if (event_.pending()) event_.cancel();
}

void MetricsSnapshotter::tick() {
  if (!running_) return;
  registry_.take_snapshot(sim_.now());
  event_ = sim_.schedule(interval_, [this] { tick(); });
}

}  // namespace sdnbuf::obs

#include "obs/fabric_observatory.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "metrics/delay_recorder.hpp"
#include "obs/metrics.hpp"

namespace sdnbuf::obs {

namespace {

bool tracked(std::uint64_t flow_id) { return flow_id != metrics::kUntrackedFlow; }

// Fixed-point CSV/JSON number: deterministic across platforms, no
// locale/scientific-notation surprises.
std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

const char* fate_name(PacketFate fate) {
  switch (fate) {
    case PacketFate::QueueFull: return "queue-full";
    case PacketFate::LinkFault: return "link-fault";
    case PacketFate::TableMissStorm: return "table-miss-storm";
    case PacketFate::HopLimit: return "hop-limit";
    case PacketFate::BufferExpiry: return "buffer-expiry";
    case PacketFate::FailSecure: return "fail-secure";
    case PacketFate::Other: return "other";
  }
  return "?";
}

PacketFate classify_drop_site(const char* where) {
  if (where == nullptr) return PacketFate::Other;
  // Tail drops at a transmit queue (per-class egress, flood fan-out, or the
  // link's own queue).
  if (std::strcmp(where, "egress-queue") == 0 || std::strcmp(where, "flood-queue") == 0 ||
      std::strcmp(where, "link-queue") == 0) {
    return PacketFate::QueueFull;
  }
  // Data-plane fault plane: dead links, downed ports, crashed switches, and
  // the hold timer giving up on a port that never came back.
  if (std::strcmp(where, "link-down") == 0 || std::strcmp(where, "port-down") == 0 ||
      std::strcmp(where, "port-hold-expired") == 0 || std::strcmp(where, "switch-crashed") == 0) {
    return PacketFate::LinkFault;
  }
  // The controller answered with an explicit drop (empty action list).
  if (std::strcmp(where, "no-actions") == 0) return PacketFate::TableMissStorm;
  if (std::strcmp(where, "hop-limit") == 0) return PacketFate::HopLimit;
  if (std::strcmp(where, "fail-secure") == 0) return PacketFate::FailSecure;
  return PacketFate::Other;  // "unknown-port", "flood-no-ports", future sites
}

void FabricObservatory::on_injected(const net::Packet& packet, sim::SimTime now) {
  (void)now;
  if (!tracked(packet.flow_id)) return;
  Event e;
  e.flow_id = packet.flow_id;
  e.seq_in_flow = packet.seq_in_flow;
  e.kind = EventKind::Inject;
  events_.push_back(e);
}

void FabricObservatory::on_delivered(const net::Packet& packet, sim::SimTime now) {
  // Untracked AND unstamped: nothing to fold later, skip the log entirely.
  if (!tracked(packet.flow_id) && packet.tstack.empty()) return;
  Event e;
  e.flow_id = packet.flow_id;
  e.seq_in_flow = packet.seq_in_flow;
  e.kind = EventKind::Deliver;
  e.e2e_ns = (now - packet.created_at).ns();
  if (!packet.tstack.empty()) {
    e.stamp_off = static_cast<std::uint32_t>(stamp_log_.size());
    e.stamp_len = static_cast<std::uint32_t>(packet.tstack.size());
    stamp_log_.insert(stamp_log_.end(), packet.tstack.begin(), packet.tstack.end());
  }
  events_.push_back(e);
}

void FabricObservatory::on_fate(const net::Packet& packet, PacketFate fate, const std::string& site,
                                const char* why, sim::SimTime now) {
  on_fate_id(packet.flow_id, packet.seq_in_flow, fate, site, why, now);
}

void FabricObservatory::on_fate_id(std::uint64_t flow_id, std::uint32_t seq_in_flow,
                                   PacketFate fate, const std::string& site, const char* why,
                                   sim::SimTime now) {
  (void)now;
  if (!tracked(flow_id)) return;
  Event e;
  e.flow_id = flow_id;
  e.seq_in_flow = seq_in_flow;
  e.kind = EventKind::Fate;
  e.fate = fate;
  e.site = intern_site(site);
  e.why = why;
  events_.push_back(e);
}

void FabricObservatory::flush() const {
  if (events_.empty()) return;
  // Size the tables for the whole batch up front: growth rehashes during the
  // fold would otherwise rewrite the tables log(n) times. Injections bound
  // new ledger entries (deliveries of never-injected payloads are the rare
  // exception and can still grow the table); deliveries bound new flows.
  std::size_t injects = 0;
  std::size_t deliveries = 0;
  for (const Event& e : events_) {
    injects += e.kind == EventKind::Inject ? 1 : 0;
    deliveries += e.kind == EventKind::Deliver ? 1 : 0;
  }
  ledger_.reserve(ledger_.size() + injects);
  paths_.reserve(paths_.size() + deliveries);
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::Inject:
        // try_emplace is a no-op for a retransmit of a known payload.
        if (ledger_.try_emplace(PayloadId{e.flow_id, e.seq_in_flow}).second) ++injected_;
        break;
      case EventKind::Deliver:
        fold_delivered(e);
        break;
      case EventKind::Fate:
        record_fate(PayloadId{e.flow_id, e.seq_in_flow}, e.fate, e.site, e.why);
        break;
    }
  }
  events_.clear();
  stamp_log_.clear();
}

void FabricObservatory::fold_delivered(const Event& e) const {
  if (tracked(e.flow_id)) {
    // Keep the ledger identity exact even if an injection hook was missed:
    // a delivery of an unknown payload counts as injected + delivered.
    auto [entry_ptr, inserted] = ledger_.try_emplace(PayloadId{e.flow_id, e.seq_in_flow});
    if (inserted) ++injected_;
    LedgerEntry& entry = *entry_ptr;
    if (!entry.delivered) {
      entry.delivered = true;
      ++delivered_;
      if (entry.fated) {
        // A duplicate copy made it through after another copy met a fate:
        // delivery wins, the fate is retracted.
        entry.fated = false;
        --fate_counts_[static_cast<std::size_t>(entry.fate)];
        ++retracted_;
      }
    }
  }
  // INT harvest — independent of ledger tracking (stamps are data-driven).
  if (e.stamp_len == 0) return;
  const net::HopStamp* stamps = stamp_log_.data() + e.stamp_off;
  const std::size_t n = e.stamp_len;
  ++stamped_deliveries_;
  stamps_ += n;
  for (std::size_t i = 0; i < n; ++i) {
    const net::HopStamp& s = stamps[i];
    HeatCell& cell = heat_[HeatKey{s.switch_id, s.out_port}];
    ++cell.samples;
    cell.queue_depth_sum += s.queue_depth;
    cell.queue_depth_max = std::max(cell.queue_depth_max, s.queue_depth);
    const std::int64_t res = s.residence().ns();
    cell.residence_ns_sum += res;
    cell.residence_ns_max = std::max(cell.residence_ns_max, res);
    cell.buffer_units_max = std::max(cell.buffer_units_max, s.buffer_units);
    cell.pool_cells_sum += s.pool_cells;
    cell.pool_cells_max = std::max(cell.pool_cells_max, s.pool_cells);
    if (s.queue_threshold != 0) {
      cell.queue_threshold_max = std::max(cell.queue_threshold_max, s.queue_threshold);
      cell.queue_threshold_min = cell.queue_threshold_min == 0
                                     ? s.queue_threshold
                                     : std::min(cell.queue_threshold_min, s.queue_threshold);
    }
  }
  if (tracked(e.flow_id)) {
    FlowPath& fp = paths_[e.flow_id];
    if (fp.packets != 0 && !fp.multipath) {
      bool same = fp.hop_count == n;
      const FlowPath::HopAgg* hops = fp.hops();
      for (std::size_t i = 0; same && i < n; ++i) {
        same = hops[i].switch_id == stamps[i].switch_id;
      }
      if (!same) fp.multipath = true;
    }
    while (fp.hop_count < n) fp.append_hop(stamps[fp.hop_count].switch_id);
    ++fp.packets;
    fp.e2e_ns_sum += e.e2e_ns;
    fp.e2e_ns_max = std::max(fp.e2e_ns_max, e.e2e_ns);
    FlowPath::HopAgg* hops = fp.hops();
    for (std::size_t i = 0; i < n; ++i) {
      hops[i].residence_ns_sum += stamps[i].residence().ns();
    }
  }
}

void FabricObservatory::record_fate(PayloadId id, PacketFate fate, std::uint16_t site,
                                    const char* why) const {
  LedgerEntry* entry_ptr = ledger_.find(id);
  if (entry_ptr == nullptr) {
    ++discarded_reports_;  // payload never injected (warm-up / untracked)
    return;
  }
  LedgerEntry& entry = *entry_ptr;
  if (entry.delivered || entry.fated) {
    // Delivery already won, or an earlier copy's fate stands (first wins).
    ++discarded_reports_;
    return;
  }
  entry.fated = true;
  entry.fate = fate;
  entry.site = site;
  entry.why = why;
  ++fate_counts_[static_cast<std::size_t>(fate)];
}

std::uint64_t FabricObservatory::fated() const {
  flush();
  std::uint64_t n = 0;
  for (const std::uint64_t c : fate_counts_) n += c;
  return n;
}

std::uint16_t FabricObservatory::intern_site(const std::string& site) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == site) return static_cast<std::uint16_t>(i);
  }
  sites_.push_back(site);
  return static_cast<std::uint16_t>(sites_.size() - 1);
}

std::vector<FabricObservatory::Hotspot> FabricObservatory::hotspots(std::size_t n) const {
  flush();
  struct Ranked {
    HeatKey key;
    const HeatCell* cell;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(heat_.size());
  for (const auto& [key, cell] : heat_) ranked.push_back(Ranked{key, &cell});
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.cell->queue_depth_max != b.cell->queue_depth_max) {
      return a.cell->queue_depth_max > b.cell->queue_depth_max;
    }
    if (a.cell->residence_ns_sum != b.cell->residence_ns_sum) {
      return a.cell->residence_ns_sum > b.cell->residence_ns_sum;
    }
    return a.key < b.key;
  });
  if (ranked.size() > n) ranked.resize(n);
  std::vector<Hotspot> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) {
    Hotspot h;
    h.switch_id = r.key.first;
    h.port = r.key.second;
    h.queue_depth_max = r.cell->queue_depth_max;
    h.residence_us_mean = r.cell->samples == 0 ? 0.0
                                               : static_cast<double>(r.cell->residence_ns_sum) /
                                                     (1e3 * static_cast<double>(r.cell->samples));
    out.push_back(h);
  }
  return out;
}

void FabricObservatory::write_heatmap_csv(std::ostream& out) const {
  flush();
  out << "switch_id,port,samples,qdepth_max,qdepth_mean,residence_us_max,residence_us_mean,"
         "buffer_units_max,pool_cells_max,pool_cells_mean,threshold_min,threshold_max\n";
  for (const auto& [key, cell] : heat_) {
    const double samples = static_cast<double>(cell.samples);
    out << key.first << ',' << key.second << ',' << cell.samples << ',' << cell.queue_depth_max
        << ',' << fixed3(samples == 0 ? 0.0 : static_cast<double>(cell.queue_depth_sum) / samples)
        << ',' << fixed3(static_cast<double>(cell.residence_ns_max) / 1e3) << ','
        << fixed3(samples == 0 ? 0.0
                               : static_cast<double>(cell.residence_ns_sum) / (1e3 * samples))
        << ',' << cell.buffer_units_max << ',' << cell.pool_cells_max << ','
        << fixed3(samples == 0 ? 0.0 : static_cast<double>(cell.pool_cells_sum) / samples) << ','
        << cell.queue_threshold_min << ',' << cell.queue_threshold_max << '\n';
  }
}

void FabricObservatory::write_fates_csv(std::ostream& out) const {
  flush();
  out << "fate,count\n";
  for (std::size_t i = 0; i < kFateCount; ++i) {
    out << fate_name(static_cast<PacketFate>(i)) << ',' << fate_counts_[i] << '\n';
  }
  out << "delivered," << delivered_ << '\n';
  out << "stranded," << stranded() << '\n';
  out << "injected," << injected_ << '\n';
}

void FabricObservatory::write_paths_csv(std::ostream& out) const {
  flush();
  out << "flow_id,packets,hops,multipath,path,e2e_us_mean,e2e_us_max,hop_us_mean\n";
  // paths_ is unordered for harvest speed; sort rows so the CSV is
  // deterministic regardless of insertion/hash order.
  struct Row {
    std::uint64_t flow_id;
    const FlowPath* fp;
  };
  std::vector<Row> rows;
  rows.reserve(paths_.size());
  paths_.for_each(
      [&rows](std::uint64_t flow_id, const FlowPath& fp) { rows.push_back(Row{flow_id, &fp}); });
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.flow_id < b.flow_id; });
  for (const Row& row : rows) {
    const FlowPath& fp = *row.fp;
    const FlowPath::HopAgg* h = fp.hops();
    out << row.flow_id << ',' << fp.packets << ',' << fp.hop_count << ','
        << (fp.multipath ? 1 : 0) << ',';
    for (std::uint32_t i = 0; i < fp.hop_count; ++i) {
      if (i != 0) out << '>';
      out << h[i].switch_id;
    }
    std::int64_t hop_sum = 0;
    for (std::uint32_t i = 0; i < fp.hop_count; ++i) hop_sum += h[i].residence_ns_sum;
    const double pkts = static_cast<double>(fp.packets);
    const double hops = static_cast<double>(fp.hop_count);
    out << ',' << fixed3(fp.packets == 0 ? 0.0 : static_cast<double>(fp.e2e_ns_sum) / (1e3 * pkts))
        << ',' << fixed3(static_cast<double>(fp.e2e_ns_max) / 1e3) << ','
        << fixed3(fp.packets == 0 || fp.hop_count == 0
                      ? 0.0
                      : static_cast<double>(hop_sum) / (1e3 * pkts * hops))
        << '\n';
  }
}

void FabricObservatory::write_summary_json(std::ostream& out) const {
  flush();
  out << "{\n  \"ledger\": {\n";
  out << "    \"injected\": " << injected_ << ",\n";
  out << "    \"delivered\": " << delivered_ << ",\n";
  out << "    \"fated\": " << fated() << ",\n";
  out << "    \"stranded\": " << stranded() << ",\n";
  out << "    \"retracted_fates\": " << retracted_ << ",\n";
  out << "    \"discarded_reports\": " << discarded_reports_ << ",\n";
  out << "    \"fates\": {";
  for (std::size_t i = 0; i < kFateCount; ++i) {
    if (i != 0) out << ", ";
    out << '"' << fate_name(static_cast<PacketFate>(i)) << "\": " << fate_counts_[i];
  }
  out << "}\n  },\n  \"int\": {\n";
  out << "    \"stamps\": " << stamps_ << ",\n";
  out << "    \"stamped_deliveries\": " << stamped_deliveries_ << ",\n";
  out << "    \"heat_cells\": " << heat_.size() << ",\n";
  out << "    \"flows\": " << paths_.size() << "\n  }\n}\n";
}

void FabricObservatory::install_metrics(MetricsRegistry& metrics) {
  metrics.register_poll("observatory.injected",
                        [this] { return static_cast<double>(injected_); });
  metrics.register_poll("observatory.delivered",
                        [this] { return static_cast<double>(delivered_); });
  metrics.register_poll("observatory.fated", [this] { return static_cast<double>(fated()); });
  metrics.register_poll("observatory.stranded",
                        [this] { return static_cast<double>(stranded()); });
  metrics.register_poll("observatory.stamps", [this] { return static_cast<double>(stamps_); });
}

void FabricObservatory::reset() {
  injected_ = 0;
  delivered_ = 0;
  retracted_ = 0;
  discarded_reports_ = 0;
  for (std::uint64_t& c : fate_counts_) c = 0;
  stamps_ = 0;
  stamped_deliveries_ = 0;
  ledger_.clear();
  sites_.clear();
  heat_.clear();
  paths_.clear();
  events_.clear();
  stamp_log_.clear();
}

// --- FateObserver ---

void FateObserver::on_packet_injected(const net::Packet& packet, sim::SimTime now) {
  if (endpoint_injections_) obs_.on_injected(packet, now);
}

void FateObserver::on_packet_delivered(const net::Packet& packet, sim::SimTime now) {
  // Deliveries reach the observatory through the host-sink tap; per-switch
  // observers also see mid-fabric handoffs, which must not count.
  (void)packet;
  (void)now;
}

void FateObserver::on_packet_dropped(const net::Packet& packet, const char* where,
                                     sim::SimTime now) {
  obs_.on_fate(packet, classify_drop_site(where), site_, where, now);
}

void FateObserver::on_buffer_store(std::uint32_t, const net::Packet&, bool, bool, sim::SimTime) {}
void FateObserver::on_buffer_release(std::uint32_t, const net::Packet&, sim::SimTime) {}

void FateObserver::on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                                    sim::SimTime now) {
  (void)buffer_id;
  obs_.on_fate(packet, PacketFate::BufferExpiry, site_, "buffer-expiry", now);
}

void FateObserver::on_buffer_unit_retired(std::uint32_t, sim::SimTime) {}

const FateObserver::PacketInMeta* FateObserver::find_packet_in(std::uint32_t xid) const {
  if (xid < packet_ins_base_) return nullptr;
  const std::size_t idx = xid - packet_ins_base_;
  if (idx >= packet_ins_.size()) return nullptr;
  const PacketInMeta& meta = packet_ins_[idx];
  return meta.flow_id == metrics::kUntrackedFlow ? nullptr : &meta;
}

void FateObserver::on_packet_in_sent(std::uint32_t xid, const net::Packet& packet,
                                     std::uint32_t buffer_id, sim::SimTime now) {
  (void)now;
  if (packet.flow_id == metrics::kUntrackedFlow) return;  // sentinel marks empty slots
  if (packet_ins_.empty()) packet_ins_base_ = xid;
  if (xid < packet_ins_base_) return;  // defensive; switch xids are monotonic
  const std::size_t idx = xid - packet_ins_base_;
  if (idx >= packet_ins_.size()) packet_ins_.resize(idx + 1);
  packet_ins_[idx] = PacketInMeta{packet.flow_id, packet.seq_in_flow, buffer_id};
}

void FateObserver::on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id,
                                     sim::SimTime now) {
  if (buffer_id != of::kNoBuffer) return;  // payload still buffered at the switch
  const PacketInMeta* meta = find_packet_in(xid);
  if (meta == nullptr) return;
  obs_.on_fate_id(meta->flow_id, meta->seq_in_flow, PacketFate::TableMissStorm, site_,
                  "pkt-in-dropped", now);
}

void FateObserver::on_control_message(bool, const of::OfMessage&, sim::SimTime) {}

void FateObserver::on_channel_fault(bool to_controller, const of::OfMessage& msg,
                                    of::FaultKind kind, sim::SimTime now) {
  if (kind == of::FaultKind::Duplicate) return;  // nothing terminal happened
  // Same rule as the invariant registry: only frame-carrying messages take a
  // payload with them. Header-only messages leave it at the switch, where
  // the resend/expiry machinery stays accountable.
  std::uint32_t xid = 0;
  bool carries_frame = false;
  if (to_controller) {
    if (const auto* pi = std::get_if<of::PacketIn>(&msg)) {
      xid = pi->xid;
      carries_frame = pi->buffer_id == of::kNoBuffer;
    }
  } else if (const auto* po = std::get_if<of::PacketOut>(&msg)) {
    xid = po->xid;
    carries_frame = po->buffer_id == of::kNoBuffer && !po->data.empty();
  }
  if (!carries_frame) return;
  const PacketInMeta* meta = find_packet_in(xid);
  if (meta == nullptr) return;
  obs_.on_fate_id(meta->flow_id, meta->seq_in_flow, PacketFate::LinkFault, site_,
                  kind == of::FaultKind::Outage ? "channel-outage" : "channel-loss", now);
}

}  // namespace sdnbuf::obs

#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace sdnbuf::obs {

void EventLoopProfiler::on_event(const char* tag, double wall_seconds) {
  Row* row;
  const auto cached = by_ptr_.find(tag);
  if (cached != by_ptr_.end()) {
    row = cached->second;
  } else {
    const char* text = tag != nullptr ? tag : "(untagged)";
    row = &rows_[std::string(text)];
    if (row->tag.empty()) row->tag = text;
    by_ptr_.emplace(tag, row);
  }
  ++row->events;
  row->total_s += wall_seconds;
  if (wall_seconds > row->max_s) row->max_s = wall_seconds;
  ++total_events_;
  total_s_ += wall_seconds;
}

std::vector<EventLoopProfiler::Row> EventLoopProfiler::table(std::size_t top_n) const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const auto& [_, row] : rows_) out.push_back(row);
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.total_s != b.total_s) return a.total_s > b.total_s;
    return a.tag < b.tag;  // deterministic order for ties
  });
  if (top_n != 0 && out.size() > top_n) out.resize(top_n);
  return out;
}

void EventLoopProfiler::write_report(std::ostream& out, std::size_t top_n) const {
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %10s %7s %12s %10s %10s\n", "tag", "events", "share",
                "total_ms", "mean_us", "max_us");
  out << "event-loop profile: " << total_events_ << " events, "
      << static_cast<long long>(total_s_ * 1e3) << " ms total\n"
      << line;
  for (const Row& row : table(top_n)) {
    const double share = total_s_ > 0.0 ? row.total_s / total_s_ * 100.0 : 0.0;
    std::snprintf(line, sizeof line, "%-28s %10llu %6.1f%% %12.3f %10.3f %10.3f\n",
                  row.tag.c_str(), static_cast<unsigned long long>(row.events), share,
                  row.total_s * 1e3, row.mean_us(), row.max_s * 1e6);
    out << line;
  }
}

void EventLoopProfiler::merge_from(const EventLoopProfiler& other) {
  for (const auto& [tag, src] : other.rows_) {
    Row& row = rows_[tag];
    if (row.tag.empty()) row.tag = tag;
    row.events += src.events;
    row.total_s += src.total_s;
    if (src.max_s > row.max_s) row.max_s = src.max_s;
  }
  total_events_ += other.total_events_;
  total_s_ += other.total_s_;
}

void EventLoopProfiler::reset() {
  by_ptr_.clear();
  rows_.clear();
  total_events_ = 0;
  total_s_ = 0.0;
}

}  // namespace sdnbuf::obs

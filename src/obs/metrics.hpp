// Runtime metrics: named counters, gauges and log2-bucketed histograms,
// owned by a `MetricsRegistry` and snapshot-exportable as a JSON time
// series.
//
// Design contract (DESIGN.md §10): components never pay for observability
// they did not ask for. Hot paths hold nullable pointers to instruments —
// a disabled run performs exactly one pointer comparison per potential
// observation, the same pattern as `verify::Observer`. Instruments are
// registered once per component at wiring time (string hashing happens
// there, never per event); an increment is then a couple of integer adds.
//
// The registry additionally supports *poll gauges*: callbacks sampled only
// when a snapshot is taken, which turn the repo's existing per-component
// counters (SwitchCounters, MessageCounters, OccupancyTracker, ...) into
// time series at literally zero hot-path cost.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sdnbuf::obs {

// Monotonic event count. Cumulative in snapshots (Prometheus-style), so
// rates are recoverable by differencing adjacent rows.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written value; snapshots record whatever was set most recently.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Log2-bucketed histogram over non-negative values.
//
// Bucket 0 covers [0, unit); bucket i >= 1 covers [unit*2^(i-1), unit*2^i).
// The last bucket is the overflow bucket: it additionally absorbs every
// value beyond its lower bound, and quantile estimation clamps into the
// observed [min, max] so overflow never fabricates impossible values.
// Recording costs an exponent extraction and two adds — cheap enough for
// per-packet paths. Quantiles interpolate linearly within a bucket, so the
// estimate's relative error is bounded by the bucket width (a factor of 2).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  // `unit` is the width of the first bucket (the measurement resolution).
  explicit Histogram(double unit = 1.0);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double unit() const { return unit_; }

  // Estimated percentile, p in [0, 100] (same convention as
  // util::Samples::percentile). 0 when empty.
  [[nodiscard]] double quantile(double p) const;

  // Observations recorded into the overflow (last) bucket.
  [[nodiscard]] std::uint64_t overflow_count() const { return buckets_[kBuckets - 1]; }

  // Inclusive lower / exclusive upper bound of a bucket (upper bound of the
  // overflow bucket is +infinity).
  [[nodiscard]] static double lower_bound(std::size_t bucket, double unit);
  [[nodiscard]] static double upper_bound(std::size_t bucket, double unit);

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  // Adds another histogram's observations; both must share the same unit.
  void merge(const Histogram& other);
  void reset();

 private:
  double unit_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

// Name -> instrument registry with periodic snapshots.
//
// Instruments live in deques so registration never invalidates the raw
// pointers components hold. Snapshot rows record every counter (cumulative
// value), gauge, and poll callback at one sim-time instant; histograms are
// exported once, in full, at write_json time.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name: re-registering an existing name returns the same
  // instrument (so two components may share one by agreement).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double unit = 1.0);

  // Registers a callback sampled at snapshot time. Polls typically capture
  // references into a live testbed; the experiment runner clears them before
  // the testbed dies (clear_polls), after which the recorded rows remain.
  void register_poll(const std::string& name, std::function<double()> poll);
  void clear_polls();

  // Freeform metadata emitted under "meta" in the JSON (mechanism label,
  // rate, seed, snapshot interval, ...).
  void set_meta(const std::string& key, const std::string& value);

  // Appends one snapshot row at sim time `now`.
  void take_snapshot(sim::SimTime now);

  [[nodiscard]] std::size_t snapshot_count() const { return snapshots_.size(); }
  [[nodiscard]] std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size() + polls_.size();
  }

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  // Value of a named column in snapshot row `row` (counters, gauges and
  // polls share one namespace here); nullopt for unknown names.
  [[nodiscard]] std::optional<double> snapshot_value(std::size_t row,
                                                     const std::string& name) const;
  [[nodiscard]] sim::SimTime snapshot_time(std::size_t row) const;

  // Full JSON document: meta, column names, snapshot rows, histograms.
  void write_json(std::ostream& out) const;

  // Drops every instrument, poll, snapshot and meta entry.
  void reset();

 private:
  struct SnapshotRow {
    sim::SimTime t;
    std::vector<double> values;  // counters, then gauges, then polls
  };

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<std::function<double()>> polls_;
  std::deque<Histogram> histograms_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> poll_names_;
  std::vector<std::string> histogram_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<SnapshotRow> snapshots_;
};

// Periodic snapshot driver: takes a registry snapshot every `interval` of
// simulation time. `stop()` cancels the pending tick so a drained simulator
// can terminate (same obligation as Switch::stop for housekeeping).
class MetricsSnapshotter {
 public:
  MetricsSnapshotter(sim::Simulator& sim, MetricsRegistry& registry, sim::SimTime interval);

  // Takes an immediate snapshot and schedules the recurring tick.
  void start();
  void stop();

 private:
  void tick();

  sim::Simulator& sim_;
  MetricsRegistry& registry_;
  sim::SimTime interval_;
  sim::EventHandle event_;
  bool running_ = false;
};

}  // namespace sdnbuf::obs

// Per-component instrument bundles.
//
// Each struct is a handful of nullable instrument pointers a component holds
// by value. Registration happens once, at experiment wiring time (the core
// layer resolves names against a MetricsRegistry and installs the bundle);
// the hot path then pays one pointer check per potential observation — the
// same cost profile as the verify::Observer hooks. A default-constructed
// bundle (all null) is the disabled state and is what every component starts
// with, so unobserved runs execute exactly the pre-obs instruction stream.
//
// This header only speaks obs/sim vocabulary, so any layer (openflow,
// switchd, controller) can include it without dependency cycles.
#pragma once

#include "obs/metrics.hpp"

namespace sdnbuf::obs {

struct SwitchInstruments {
  // Data-field bytes of every packet_in emitted (full frames in no-buffer
  // mode vs header-only punts with buffering — the Fig. 5-7 contrast).
  Histogram* pkt_in_bytes = nullptr;
};

struct ChannelInstruments {
  // Wire bytes (OpenFlow + framing) per message, by direction.
  Histogram* wire_bytes_to_controller = nullptr;
  Histogram* wire_bytes_to_switch = nullptr;
};

struct ControllerInstruments {
  // Data-field bytes of every packet_in processed.
  Histogram* pkt_in_bytes = nullptr;
};

struct BufferInstruments {
  // Milliseconds a unit's content waited between store and release/expiry
  // (packet granularity: per packet; flow granularity: first-store to
  // release_all/expiry of the whole unit).
  Histogram* residency_ms = nullptr;
};

struct EgressInstruments {
  // Queue depth (packets across classes) observed at each enqueue.
  Histogram* queue_depth = nullptr;
};

}  // namespace sdnbuf::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "metrics/delay_recorder.hpp"
#include "openflow/constants.hpp"
#include "util/rng.hpp"

namespace sdnbuf::obs {

namespace {

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += *s; break;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integral fast path: trace args are almost always flow ids, sequence
  // numbers, byte counts — snprintf("%.17g") per number would dominate the
  // per-event render cost.
  const long long i = static_cast<long long>(v);
  if (v == static_cast<double>(i)) {
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, i);
    out.append(buf, res.ptr);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

// Timestamps are integer nanoseconds rendered as microseconds (the trace
// format's unit) in fixed point — exact, and much cheaper than double
// formatting.
void append_timestamp_us(std::string& out, sim::SimTime ts) {
  const long long ns = ts.ns();
  char buf[32];
  const auto whole = std::to_chars(buf, buf + sizeof buf, ns / 1000);
  char* p = whole.ptr;
  const long long frac = ns % 1000;
  *p++ = '.';
  *p++ = static_cast<char>('0' + frac / 100);
  *p++ = static_cast<char>('0' + frac / 10 % 10);
  *p++ = static_cast<char>('0' + frac % 10);
  out.append(buf, p);
}

using util::mix64;  // the repo-wide deterministic sampling mixer

}  // namespace

void TraceWriter::push(char phase, const char* cat, const char* name, std::uint64_t id,
                       bool has_id, sim::SimTime ts, std::initializer_list<TraceArg> args) {
  std::string e;
  e.reserve(96);
  e += "{\"ph\":\"";
  e += phase;
  e += "\",\"cat\":";
  append_json_string(e, cat);
  e += ",\"name\":";
  append_json_string(e, name);
  e += ",\"pid\":1,\"tid\":1,\"ts\":";
  append_timestamp_us(e, ts);
  if (has_id) {
    // Chrome trace ids are strings; hex keeps them compact.
    char buf[24];
    std::snprintf(buf, sizeof buf, "\"0x%llx\"", static_cast<unsigned long long>(id));
    e += ",\"id\":";
    e += buf;
  }
  if (phase == 'i') e += ",\"s\":\"g\"";
  if (args.size() != 0) {
    e += ",\"args\":{";
    bool first = true;
    for (const TraceArg& a : args) {
      if (!first) e += ',';
      first = false;
      append_json_string(e, a.key);
      e += ':';
      if (a.str != nullptr) {
        append_json_string(e, a.str);
      } else {
        append_number(e, a.num);
      }
    }
    e += '}';
  }
  e += '}';
  events_.push_back(std::move(e));
}

void TraceWriter::begin_span(const char* cat, const char* name, std::uint64_t id, sim::SimTime ts,
                             std::initializer_list<TraceArg> args) {
  push('b', cat, name, id, true, ts, args);
  ++begins_;
}

void TraceWriter::end_span(const char* cat, const char* name, std::uint64_t id, sim::SimTime ts,
                           std::initializer_list<TraceArg> args) {
  push('e', cat, name, id, true, ts, args);
  ++ends_;
}

void TraceWriter::instant(const char* cat, const char* name, sim::SimTime ts,
                          std::initializer_list<TraceArg> args) {
  push('i', cat, name, 0, false, ts, args);
}

void TraceWriter::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void TraceWriter::write_json(std::ostream& out) const {
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta_) {
    out << (first ? "\n  " : ",\n  ");
    std::string e;
    append_json_string(e, k.c_str());
    e += ": ";
    append_json_string(e, v.c_str());
    out << e;
    first = false;
  }
  out << (first ? "},\n" : "\n},\n");
  out << "\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << events_[i];
  }
  out << (events_.empty() ? "]\n}\n" : "\n]\n}\n");
}

void TraceWriter::reset() {
  events_.clear();
  meta_.clear();
  begins_ = 0;
  ends_ = 0;
}

FlowTracer::FlowTracer(TraceWriter& writer, std::uint64_t seed, std::uint32_t sample_period)
    : writer_(writer), seed_(seed), period_(sample_period == 0 ? 1 : sample_period) {}

bool FlowTracer::sampled(std::uint64_t flow_id) const {
  if (flow_id == metrics::kUntrackedFlow) return false;
  if (period_ == 1) return true;
  return mix64(flow_id ^ seed_) % period_ == 0;
}

std::uint64_t FlowTracer::packet_span_id(const net::Packet& packet) {
  // Unique per (flow, seq): flows are dense small indices, seqs are per-flow.
  return (packet.flow_id << 20) | (packet.seq_in_flow & 0xfffffu);
}

void FlowTracer::on_packet_injected(const net::Packet& packet, sim::SimTime now) {
  if (!sampled(packet.flow_id)) return;
  const std::uint64_t id = packet_span_id(packet);
  if (!open_packets_.emplace(id, packet.flow_id).second) return;  // retransmit guard
  writer_.begin_span("packet", "transit", id, now,
                     {TraceArg{"flow", double(packet.flow_id)},
                      TraceArg{"seq", double(packet.seq_in_flow)},
                      TraceArg{"bytes", double(packet.frame_size)}});
}

void FlowTracer::on_packet_delivered(const net::Packet& packet, sim::SimTime now) {
  if (!sampled(packet.flow_id)) return;
  const std::uint64_t id = packet_span_id(packet);
  if (open_packets_.erase(id) == 0) return;
  writer_.end_span("packet", "transit", id, now, {TraceArg{"outcome", "delivered"}});
}

void FlowTracer::on_packet_dropped(const net::Packet& packet, const char* where, sim::SimTime now) {
  if (!sampled(packet.flow_id)) return;
  writer_.instant("packet", "drop", now,
                  {TraceArg{"flow", double(packet.flow_id)}, TraceArg{"where", where}});
  const std::uint64_t id = packet_span_id(packet);
  if (open_packets_.erase(id) == 0) return;
  writer_.end_span("packet", "transit", id, now,
                   {TraceArg{"outcome", "dropped"}, TraceArg{"where", where}});
}

void FlowTracer::on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet, bool new_unit,
                                 bool flow_granularity, sim::SimTime now) {
  if (!sampled(packet.flow_id)) return;
  if (new_unit) {
    const std::uint64_t span = next_buffer_span_++;
    open_buffers_[buffer_id] = span;
    writer_.begin_span("buffer", "unit_resident", span, now,
                       {TraceArg{"buffer_id", double(buffer_id)},
                        TraceArg{"flow", double(packet.flow_id)},
                        TraceArg{"granularity", flow_granularity ? "flow" : "packet"}});
  } else if (open_buffers_.count(buffer_id) != 0) {
    // Another packet of the flow joined an existing unit (flow granularity).
    writer_.instant("buffer", "store", now,
                    {TraceArg{"buffer_id", double(buffer_id)},
                     TraceArg{"seq", double(packet.seq_in_flow)}});
  }
}

void FlowTracer::on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                                   sim::SimTime now) {
  if (open_buffers_.count(buffer_id) == 0) return;
  writer_.instant("buffer", "release", now,
                  {TraceArg{"buffer_id", double(buffer_id)},
                   TraceArg{"seq", double(packet.seq_in_flow)}});
}

void FlowTracer::on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                                  sim::SimTime now) {
  if (open_buffers_.count(buffer_id) == 0) return;
  writer_.instant("buffer", "expire", now,
                  {TraceArg{"buffer_id", double(buffer_id)},
                   TraceArg{"flow", double(packet.flow_id)}});
}

void FlowTracer::on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) {
  auto it = open_buffers_.find(buffer_id);
  if (it == open_buffers_.end()) return;
  writer_.end_span("buffer", "unit_resident", it->second, now);
  open_buffers_.erase(it);
}

void FlowTracer::on_packet_in_sent(std::uint32_t xid, const net::Packet& packet,
                                   std::uint32_t buffer_id, sim::SimTime now) {
  if (!sampled(packet.flow_id)) return;
  if (!open_control_.emplace(xid, packet.flow_id).second) return;
  ++control_opened_;
  writer_.begin_span("control", "pktin_rtt", xid, now,
                     {TraceArg{"flow", double(packet.flow_id)},
                      TraceArg{"buffer_id", buffer_id == of::kNoBuffer ? -1.0 : double(buffer_id)}});
}

void FlowTracer::end_control_span(std::uint32_t xid, sim::SimTime now, const char* outcome) {
  auto it = open_control_.find(xid);
  if (it == open_control_.end()) return;
  writer_.end_span("control", "pktin_rtt", xid, now, {TraceArg{"outcome", outcome}});
  open_control_.erase(it);
}

void FlowTracer::on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id, sim::SimTime now) {
  if (open_control_.count(xid) == 0) return;
  writer_.instant("control", "pktin_dropped", now,
                  {TraceArg{"buffer_id", buffer_id == of::kNoBuffer ? -1.0 : double(buffer_id)}});
  end_control_span(xid, now, "ctl_dropped");
}

void FlowTracer::on_control_message(bool to_controller, const of::OfMessage& msg,
                                    sim::SimTime now) {
  if (to_controller || open_control_.empty()) return;
  // A flow_mod / packet_out answering a traced packet_in closes its span;
  // the pair shares one xid and the first responder wins.
  const of::MsgType type = of::message_type(msg);
  if (type != of::MsgType::FlowMod && type != of::MsgType::PacketOut) return;
  const std::uint32_t xid = of::message_xid(msg);
  if (open_control_.count(xid) == 0) return;
  ++control_answered_;
  end_control_span(xid, now, "answered");
}

void FlowTracer::on_channel_fault(bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                                  sim::SimTime now) {
  if (open_control_.empty()) return;
  const of::MsgType type = of::message_type(msg);
  const std::uint32_t xid = of::message_xid(msg);
  const bool tracked = (to_controller && type == of::MsgType::PacketIn &&
                        open_control_.count(xid) != 0) ||
                       (!to_controller &&
                        (type == of::MsgType::FlowMod || type == of::MsgType::PacketOut) &&
                        open_control_.count(xid) != 0);
  if (!tracked) return;
  writer_.instant("fault", of::fault_kind_name(kind), now,
                  {TraceArg{"dir", to_controller ? "to_controller" : "to_switch"},
                   TraceArg{"msg", of::msg_type_name(type)}});
  // A lost/outage-swallowed carrier means this request will never be
  // answered under this xid (resends draw a fresh xid) — close the span at
  // the fault instead of leaving it for finalize. Duplicates still deliver.
  if (kind != of::FaultKind::Duplicate) {
    end_control_span(xid, now, to_controller ? "pktin_lost" : "response_lost");
  }
}

void FlowTracer::finalize(sim::SimTime now) {
  // Deterministic close order: maps iterate in unspecified order, so drain
  // through sorted copies to keep traces byte-stable across runs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> packets(open_packets_.begin(),
                                                               open_packets_.end());
  std::sort(packets.begin(), packets.end());
  for (const auto& [id, flow] : packets) {
    writer_.end_span("packet", "transit", id, now, {TraceArg{"outcome", "unfinished"}});
  }
  open_packets_.clear();

  std::vector<std::uint32_t> xids;
  xids.reserve(open_control_.size());
  for (const auto& [xid, _] : open_control_) xids.push_back(xid);
  std::sort(xids.begin(), xids.end());
  for (std::uint32_t xid : xids) {
    writer_.end_span("control", "pktin_rtt", xid, now, {TraceArg{"outcome", "unanswered"}});
  }
  open_control_.clear();

  std::vector<std::pair<std::uint32_t, std::uint64_t>> buffers(open_buffers_.begin(),
                                                               open_buffers_.end());
  std::sort(buffers.begin(), buffers.end());
  for (const auto& [buffer_id, span] : buffers) {
    writer_.end_span("buffer", "unit_resident", span, now, {TraceArg{"outcome", "unretired"}});
  }
  open_buffers_.clear();
}

void TeeObserver::on_packet_injected(const net::Packet& packet, sim::SimTime now) {
  if (a_ != nullptr) a_->on_packet_injected(packet, now);
  if (b_ != nullptr) b_->on_packet_injected(packet, now);
}
void TeeObserver::on_packet_delivered(const net::Packet& packet, sim::SimTime now) {
  if (a_ != nullptr) a_->on_packet_delivered(packet, now);
  if (b_ != nullptr) b_->on_packet_delivered(packet, now);
}
void TeeObserver::on_packet_dropped(const net::Packet& packet, const char* where,
                                    sim::SimTime now) {
  if (a_ != nullptr) a_->on_packet_dropped(packet, where, now);
  if (b_ != nullptr) b_->on_packet_dropped(packet, where, now);
}
void TeeObserver::on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet, bool new_unit,
                                  bool flow_granularity, sim::SimTime now) {
  if (a_ != nullptr) a_->on_buffer_store(buffer_id, packet, new_unit, flow_granularity, now);
  if (b_ != nullptr) b_->on_buffer_store(buffer_id, packet, new_unit, flow_granularity, now);
}
void TeeObserver::on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                                    sim::SimTime now) {
  if (a_ != nullptr) a_->on_buffer_release(buffer_id, packet, now);
  if (b_ != nullptr) b_->on_buffer_release(buffer_id, packet, now);
}
void TeeObserver::on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                                   sim::SimTime now) {
  if (a_ != nullptr) a_->on_buffer_expire(buffer_id, packet, now);
  if (b_ != nullptr) b_->on_buffer_expire(buffer_id, packet, now);
}
void TeeObserver::on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) {
  if (a_ != nullptr) a_->on_buffer_unit_retired(buffer_id, now);
  if (b_ != nullptr) b_->on_buffer_unit_retired(buffer_id, now);
}
void TeeObserver::on_packet_in_sent(std::uint32_t xid, const net::Packet& packet,
                                    std::uint32_t buffer_id, sim::SimTime now) {
  if (a_ != nullptr) a_->on_packet_in_sent(xid, packet, buffer_id, now);
  if (b_ != nullptr) b_->on_packet_in_sent(xid, packet, buffer_id, now);
}
void TeeObserver::on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id, sim::SimTime now) {
  if (a_ != nullptr) a_->on_pkt_in_dropped(xid, buffer_id, now);
  if (b_ != nullptr) b_->on_pkt_in_dropped(xid, buffer_id, now);
}
void TeeObserver::on_control_message(bool to_controller, const of::OfMessage& msg,
                                     sim::SimTime now) {
  if (a_ != nullptr) a_->on_control_message(to_controller, msg, now);
  if (b_ != nullptr) b_->on_control_message(to_controller, msg, now);
}
void TeeObserver::on_channel_fault(bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                                   sim::SimTime now) {
  if (a_ != nullptr) a_->on_channel_fault(to_controller, msg, kind, now);
  if (b_ != nullptr) b_->on_channel_fault(to_controller, msg, kind, now);
}

}  // namespace sdnbuf::obs

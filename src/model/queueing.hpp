// Closed-form queueing building blocks for the analytical node model.
//
// Everything here is textbook material ("On the Modeling of OpenFlow-based
// SDNs: The Single Node Case", arXiv:1411.4733, builds its single-node model
// from the same pieces): Erlang's loss and delay formulas, multi-server
// waiting times, and the two-moment (Allen-Cunneen / Kingman) correction
// that adapts the Markovian waiting time to the near-deterministic service
// and arrival processes our simulator actually produces. The simulator paces
// packets at a jittered nominal rate and draws service times from a
// low-sigma lognormal, so squared coefficients of variation are far below 1
// and Poisson-formula waits would badly overestimate queueing — the
// correction factor (ca2 + cs2) / 2 is what makes the oracle land within a
// few percent of the simulator (see tests/test_model_validation.cpp).
#pragma once

#include <cstddef>

namespace sdnbuf::model {

// Erlang-B: blocking probability of an M/G/c/c loss system offered `a`
// Erlangs (insensitive to the service distribution). Computed with the
// numerically stable recurrence B(0) = 1, B(k) = a B(k-1) / (k + a B(k-1)).
[[nodiscard]] double erlang_b(std::size_t servers, double offered_load);

// Erlang-C: probability an arrival waits in an M/M/c queue offered `a`
// Erlangs. Returns 1.0 when a >= c (the queue has no steady state).
[[nodiscard]] double erlang_c(std::size_t servers, double offered_load);

// Mean waiting time (time in queue, excluding service) of an M/M/c queue:
// W = C(c, a) / (c/E[S] - lambda). `lambda` in jobs/sec, `mean_service_s`
// in seconds. Returns +inf when the queue is unstable.
[[nodiscard]] double mmc_wait_s(double lambda, double mean_service_s, std::size_t servers);

// Two-moment GI/G/c waiting-time approximation (Allen-Cunneen): the M/M/c
// wait scaled by (ca2 + cs2) / 2, where ca2/cs2 are the squared coefficients
// of variation of inter-arrival and service times. Exact for M/M/c, exact
// in heavy traffic (Kingman), and correctly collapses to ~zero waits for
// the paced, low-jitter traffic the testbed generates. Returns +inf when
// unstable.
[[nodiscard]] double gg_c_wait_s(double lambda, double mean_service_s, std::size_t servers,
                                 double ca2, double cs2);

// Finite-run overload wait: when lambda * E[S] / c = rho > 1 there is no
// steady state and the queue grows linearly for the whole run. A job
// arriving at time t waits ~ t (rho - 1) / rho of backlog, so the mean wait
// over a run of `run_duration_s` is run_duration_s * (rho - 1) / 2 (the
// average arrival sits mid-run). Used by the oracle to keep delay
// predictions finite — and comparable to the simulator's finite-workload
// measurements — past saturation.
[[nodiscard]] double overload_ramp_wait_s(double rho, double run_duration_s);

// Moments of the multiplicative lognormal service jitter the simulator
// applies to every drawn cost: X = exp(sigma Z) with median 1, so
// E[X] = exp(sigma^2 / 2) and E[X^2] = exp(2 sigma^2). `mean_factor`
// converts a nominal cost into its expected value; `cs2` is the squared
// coefficient of variation exp(sigma^2) - 1.
struct LognormalJitter {
  double mean_factor = 1.0;
  double second_moment_factor = 1.0;
  double cs2 = 0.0;
};

[[nodiscard]] LognormalJitter lognormal_jitter(double sigma);

// Aggregates a mixture of job classes at one station into the first two
// moments an M/G/c formula needs. Add each class with its rate (jobs/sec)
// and per-class service moments; read the totals back.
class ServiceMixture {
 public:
  // `rate` jobs/sec whose service time has the given mean and second moment
  // (seconds, seconds^2). Zero-rate classes are ignored.
  void add(double rate, double mean_s, double second_moment_s2);

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double mean_s() const;
  [[nodiscard]] double second_moment_s2() const;
  // Squared coefficient of variation of the mixture (0 when empty).
  [[nodiscard]] double cs2() const;
  // Offered load in Erlangs: lambda * E[S].
  [[nodiscard]] double offered_erlangs() const;

 private:
  double rate_ = 0.0;
  double weighted_mean_ = 0.0;    // sum rate_i * E[S_i]
  double weighted_second_ = 0.0;  // sum rate_i * E[S_i^2]
};

}  // namespace sdnbuf::model

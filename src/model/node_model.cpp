#include "model/node_model.hpp"

#include <algorithm>
#include <cmath>

#include "model/queueing.hpp"
#include "openflow/actions.hpp"
#include "openflow/constants.hpp"

namespace sdnbuf::model {
namespace {

// Squared coefficient of variation of inter-arrival times at the control
// stations. The generator paces packets near-deterministically (uniform
// +-10% spacing jitter alone gives cv^2 ~ 0.003), but phase interference
// with the fed-back control responses adds variability; 0.05 is calibrated
// against the simulator at moderate load. Off saturation the waits this
// scales are microseconds, so the prediction is insensitive to it within a
// factor of a few.
constexpr double kArrivalCv2 = 0.05;

// The Erlang-B blocking <-> buffered-path delay feedback converges
// geometrically under damping; 32 damped steps puts the residual far below
// the model's own accuracy.
constexpr int kFixedPointIterations = 32;

constexpr double sec(double microseconds) { return microseconds * 1e-6; }

// First two moments of one service class (seconds, seconds^2).
struct Cost {
  double mean_s = 0.0;
  double second_s2 = 0.0;
};

// A deterministic service time (wire serialization, bus crossing).
Cost fixed_cost(double seconds) { return Cost{seconds, seconds * seconds}; }

// A CPU job: nominal cost scaled by the lognormal jitter moments.
Cost jittered_cost(double nominal_us, const LognormalJitter& j) {
  const double s = sec(nominal_us);
  return Cost{s * j.mean_factor, s * s * j.second_moment_factor};
}

void add(ServiceMixture& m, double rate, const Cost& c) { m.add(rate, c.mean_s, c.second_s2); }

}  // namespace

Params Params::from(const core::ExperimentConfig& config) {
  Params p;
  p.rate_mbps = config.rate_mbps;
  p.frame_size = config.frame_size;
  p.n_flows = config.n_flows;
  p.packets_per_flow = config.packets_per_flow;
  p.batch_size = config.order == host::EmissionOrder::CrossSequence ? config.batch_size : 1;
  p.mode = config.mode;
  p.buffer_capacity = config.buffer_capacity;
  p.miss_send_len = config.testbed.switch_config.miss_send_len;
  p.switch_cores = config.testbed.switch_config.cpu_cores;
  p.controller_cores = config.testbed.controller_config.cpu_cores;
  p.control_link_mbps = config.testbed.control_link_mbps;
  p.control_link_delay_s = config.testbed.control_link_delay.sec();
  p.switch_costs = config.testbed.switch_config.costs;
  p.controller_costs = config.testbed.controller_config.costs;
  return p;
}

Params Params::at_rate(double mbps) const {
  Params p = *this;
  p.rate_mbps = mbps;
  return p;
}

Prediction predict(const Params& pp) {
  const sw::CostModel& sc = pp.switch_costs;
  const ctrl::CostModel& cc = pp.controller_costs;
  const LognormalJitter sj = lognormal_jitter(sc.jitter_sigma);
  const LognormalJitter cj = lognormal_jitter(cc.jitter_sigma);

  const double frame = pp.frame_size;
  // Bytes the buffered-path packet_in copies out of the frame.
  const double data_b = std::min<double>(pp.miss_send_len, frame);
  const double action_bytes = static_cast<double>(of::encoded_size(of::output_to(1)));

  // Wire sizes (OpenFlow encoding + the control channel's TCP/IP/Ethernet
  // overhead, exactly as net::Link charges them).
  const auto pktin_wire = [&](double data) {
    return static_cast<double>(of::kPacketInFixedSize) + data + of::kTransportOverhead;
  };
  const double fm_wire =
      static_cast<double>(of::kFlowModFixedSize) + action_bytes + of::kTransportOverhead;
  const auto po_wire = [&](double data) {
    return static_cast<double>(of::kPacketOutFixedSize) + action_bytes + data +
           of::kTransportOverhead;
  };
  const double link_bps = pp.control_link_mbps * 1e6;
  const auto ser = [&](double bytes) { return bytes * 8.0 / link_bps; };
  const auto bus = [&](double bytes) { return bytes * 8.0 / sc.bus_bandwidth_bps; };

  // Workload shape.
  const double lambda_pkt = pp.rate_mbps * 1e6 / (8.0 * frame);
  const double n_pkts = static_cast<double>(pp.n_flows) * pp.packets_per_flow;
  const double send_span_s = n_pkts / lambda_pkt;
  const double l_flow = lambda_pkt / pp.packets_per_flow;
  // Gap between consecutive packets of the *same* flow: back-to-back when
  // emitted sequentially, stretched by the interleave factor otherwise.
  const double gap_flow_s =
      static_cast<double>(std::max<std::uint32_t>(pp.batch_size, 1)) / lambda_pkt;

  // Service classes.
  const Cost asic = jittered_cost(sc.asic_match_us, sj);
  const Cost miss_nb =
      jittered_cost(sc.miss_base_us + sc.pkt_in_base_us + sc.pkt_in_per_byte_us * frame, sj);
  const Cost miss_pkt = jittered_cost(
      sc.miss_base_us + sc.buffer_store_us + sc.pkt_in_base_us + sc.pkt_in_per_byte_us * data_b,
      sj);
  const Cost miss_flow_first = jittered_cost(
      sc.miss_base_us + sc.flow_map_lookup_us + sc.flow_map_store_us +
          sc.flow_first_packet_extra_us + sc.buffer_store_us + sc.pkt_in_base_us +
          sc.pkt_in_per_byte_us * data_b,
      sj);
  const Cost miss_flow_sub = jittered_cost(sc.flow_map_lookup_us + sc.buffer_store_us, sj);
  const Cost miss_flow_nb = jittered_cost(
      sc.flow_map_lookup_us + sc.miss_base_us + sc.pkt_in_base_us + sc.pkt_in_per_byte_us * frame,
      sj);
  const Cost install = jittered_cost(sc.flow_mod_install_us, sj);
  const Cost exec_b = jittered_cost(sc.pkt_out_base_us, sj);
  const Cost exec_ff = jittered_cost(sc.pkt_out_base_us + sc.pkt_out_per_byte_us * frame, sj);
  const double release_s = sec(sc.buffer_release_us) * sj.mean_factor;

  const Cost parse_b =
      jittered_cost(cc.parse_base_us + cc.parse_per_byte_us * data_b + cc.decision_us, cj);
  const Cost parse_ff =
      jittered_cost(cc.parse_base_us + cc.parse_per_byte_us * frame + cc.decision_us, cj);
  const Cost enc_fm = jittered_cost(cc.encode_flow_mod_us, cj);
  const Cost enc_po_b = jittered_cost(cc.encode_pkt_out_base_us, cj);
  const Cost enc_po_ff =
      jittered_cost(cc.encode_pkt_out_base_us + cc.encode_pkt_out_per_byte_us * frame, cj);

  const bool buffered_mode = pp.mode != sw::BufferMode::NoBuffer;

  // Fixed-point state: buffer exhaustion probability and misses per flow.
  double p = 0.0;
  double k = 1.0;

  // Results of the last iteration, kept for the output stage.
  double setup_b_s = 0.0, setup_ff_s = 0.0;
  double ctrl_b_s = 0.0, ctrl_ff_s = 0.0;
  double sw_b_s = 0.0, sw_ff_s = 0.0;
  double setup_mean_s = 0.0, ctrl_mean_s = 0.0, sw_mean_s = 0.0;
  double residency_s = 0.0;
  ServiceMixture m_scpu, m_ccpu, m_bus, m_up, m_down;
  double l_pktin_b = 0.0, l_pktin_ff = 0.0;
  double l_miss = l_flow;

  for (int it = 0; it < kFixedPointIterations; ++it) {
    l_miss = l_flow * k;
    const double l_sub = std::max(0.0, l_miss - l_flow);

    // packet_in volume, split into header-sized (buffered) and full-frame.
    switch (pp.mode) {
      case sw::BufferMode::NoBuffer:
        l_pktin_b = 0.0;
        l_pktin_ff = l_miss;
        break;
      case sw::BufferMode::PacketGranularity:
        l_pktin_b = (1.0 - p) * l_miss;
        l_pktin_ff = p * l_miss;
        break;
      case sw::BufferMode::FlowGranularity:
        // One header pkt_in per flow; exhausted misses (first or not) fall
        // back to the per-packet full-frame punt.
        l_pktin_b = (1.0 - p) * l_flow;
        l_pktin_ff = p * l_miss;
        break;
    }
    const double l_pktin = l_pktin_b + l_pktin_ff;

    // Station mixtures.
    m_scpu = ServiceMixture{};
    m_ccpu = ServiceMixture{};
    m_bus = ServiceMixture{};
    m_up = ServiceMixture{};
    m_down = ServiceMixture{};

    switch (pp.mode) {
      case sw::BufferMode::NoBuffer:
        add(m_scpu, l_miss, miss_nb);
        break;
      case sw::BufferMode::PacketGranularity:
        add(m_scpu, (1.0 - p) * l_miss, miss_pkt);
        add(m_scpu, p * l_miss, miss_nb);
        break;
      case sw::BufferMode::FlowGranularity:
        add(m_scpu, (1.0 - p) * l_flow, miss_flow_first);
        add(m_scpu, (1.0 - p) * l_sub, miss_flow_sub);
        add(m_scpu, p * l_miss, miss_flow_nb);
        break;
    }
    add(m_scpu, l_pktin, install);
    add(m_scpu, l_pktin_b, exec_b);
    add(m_scpu, l_pktin_ff, exec_ff);

    // ASIC<->CPU bus: one upstream crossing per pkt_in-generating miss
    // (flow-granularity's silently-buffered packets stay on the CPU side),
    // one downstream crossing per full-frame packet_out re-injection.
    add(m_bus, l_pktin_b, fixed_cost(bus(data_b)));
    add(m_bus, l_pktin_ff, fixed_cost(bus(frame)));
    add(m_bus, l_pktin_ff, fixed_cost(bus(frame)));

    add(m_ccpu, l_pktin_b, parse_b);
    add(m_ccpu, l_pktin_ff, parse_ff);
    add(m_ccpu, l_pktin, enc_fm);
    add(m_ccpu, l_pktin_b, enc_po_b);
    add(m_ccpu, l_pktin_ff, enc_po_ff);

    add(m_up, l_pktin_b, fixed_cost(ser(pktin_wire(data_b))));
    add(m_up, l_pktin_ff, fixed_cost(ser(pktin_wire(frame))));
    add(m_down, l_pktin, fixed_cost(ser(fm_wire)));
    add(m_down, l_pktin_b, fixed_cost(ser(po_wire(0.0))));
    add(m_down, l_pktin_ff, fixed_cost(ser(po_wire(frame))));

    // Waiting times. Past saturation the Allen-Cunneen wait is infinite;
    // the finite-run ramp keeps the prediction comparable to what a finite
    // workload actually measures.
    const auto wait = [&](const ServiceMixture& m, std::size_t servers) {
      if (m.rate() <= 0.0) return 0.0;
      const double w = gg_c_wait_s(m.rate(), m.mean_s(), servers, kArrivalCv2, m.cs2());
      if (std::isfinite(w)) return w;
      return overload_ramp_wait_s(m.offered_erlangs() / static_cast<double>(servers),
                                  send_span_s);
    };
    const double w_scpu = wait(m_scpu, pp.switch_cores);
    const double w_ccpu = wait(m_ccpu, pp.controller_cores);
    const double w_bus = wait(m_bus, 1);
    const double w_up = wait(m_up, 1);
    const double w_down = wait(m_down, 1);

    // Controller delay (pkt_in sent -> first response arrival): uplink
    // serialization + propagation, parse+decide and flow_mod-encode CPU
    // jobs, flow_mod serialization + propagation back.
    const auto controller_delay = [&](double data, const Cost& parse) {
      return ser(pktin_wire(data)) + w_up + pp.control_link_delay_s + w_ccpu + parse.mean_s +
             w_ccpu + enc_fm.mean_s + ser(fm_wire) + w_down + pp.control_link_delay_s;
    };
    // Gap between the flow_mod arriving and the packet_out arriving: the
    // pkt_out encode job runs while the flow_mod serializes (the max), then
    // the pkt_out's own (larger) serialization replaces the flow_mod's.
    const auto po_gap = [&](const Cost& enc_po, double po_data) {
      return std::max(w_ccpu + enc_po.mean_s, ser(fm_wire)) + ser(po_wire(po_data)) -
             ser(fm_wire);
    };
    // Switch-side residence (setup - controller): ASIC match, bus punt,
    // miss-handling CPU job, then after the controller round trip the
    // packet_out gap, its execution job, and either the buffer release or
    // the full frame's return bus crossing.
    const auto switch_delay = [&](const Cost& miss, const Cost& enc_po, const Cost& exec,
                                  bool fullframe) {
      double d = asic.mean_s + w_bus + bus(fullframe ? frame : data_b) + w_scpu + miss.mean_s +
                 po_gap(enc_po, fullframe ? frame : 0.0) + w_scpu + exec.mean_s;
      d += fullframe ? w_bus + bus(frame) : release_s;
      return d;
    };

    ctrl_b_s = controller_delay(data_b, parse_b);
    ctrl_ff_s = controller_delay(frame, parse_ff);
    switch (pp.mode) {
      case sw::BufferMode::NoBuffer:
        sw_ff_s = switch_delay(miss_nb, enc_po_ff, exec_ff, true);
        sw_b_s = sw_ff_s;
        ctrl_b_s = ctrl_ff_s;
        break;
      case sw::BufferMode::PacketGranularity:
        sw_b_s = switch_delay(miss_pkt, enc_po_b, exec_b, false);
        sw_ff_s = switch_delay(miss_nb, enc_po_ff, exec_ff, true);
        break;
      case sw::BufferMode::FlowGranularity:
        sw_b_s = switch_delay(miss_flow_first, enc_po_b, exec_b, false);
        sw_ff_s = switch_delay(miss_flow_nb, enc_po_ff, exec_ff, true);
        break;
    }
    setup_b_s = ctrl_b_s + sw_b_s;
    setup_ff_s = ctrl_ff_s + sw_ff_s;

    const double ff = buffered_mode ? p : 1.0;
    setup_mean_s = (1.0 - ff) * setup_b_s + ff * setup_ff_s;
    ctrl_mean_s = (1.0 - ff) * ctrl_b_s + ff * ctrl_ff_s;
    sw_mean_s = (1.0 - ff) * sw_b_s + ff * sw_ff_s;

    // Misses per flow: packets of a flow sent before its rule lands all
    // miss (the rule is usable roughly one flow-setup after the first one).
    k = pp.packets_per_flow <= 1
            ? 1.0
            : std::min<double>(pp.packets_per_flow,
                               1.0 + std::floor(setup_mean_s / gap_flow_s));

    // Buffer exhaustion feedback: every miss offers one unit for one
    // buffered control round trip plus the lazy reclaim delay. Erlang-B of
    // that offered load is the Poisson-arrival blocking probability, but
    // the generator's paced arrivals keep the occupancy far tighter than
    // Poisson: the simulator shows a hard fluid threshold (zero overflow
    // until the offered load crosses the capacity, then the deterministic
    // excess max(0, 1 - capacity/offered) is lost). Blend the two with the
    // same arrival-variability weight the wait formulas use, so the small
    // residual randomness (feedback-phase interference) keeps a thin
    // Erlang tail around the knee.
    if (buffered_mode) {
      residency_s = setup_b_s - asic.mean_s + sc.buffer_reclaim_delay.sec();
      const double offered = l_miss * residency_s;
      const double cap = static_cast<double>(pp.buffer_capacity);
      const double p_fluid = offered > cap ? (offered - cap) / offered : 0.0;
      const double p_new = kArrivalCv2 * erlang_b(pp.buffer_capacity, offered) +
                           (1.0 - kArrivalCv2) * p_fluid;
      p = 0.5 * p + 0.5 * p_new;
    }
  }

  // Counts over the whole run (send span worth of arrivals).
  const double n_miss = static_cast<double>(pp.n_flows) * k;
  double n_pktin_b = 0.0, n_pktin_ff = 0.0;
  switch (pp.mode) {
    case sw::BufferMode::NoBuffer:
      n_pktin_ff = n_miss;
      break;
    case sw::BufferMode::PacketGranularity:
      n_pktin_b = (1.0 - p) * n_miss;
      n_pktin_ff = p * n_miss;
      break;
    case sw::BufferMode::FlowGranularity:
      n_pktin_b = (1.0 - p) * static_cast<double>(pp.n_flows);
      n_pktin_ff = p * n_miss;
      break;
  }
  const double n_pktin = n_pktin_b + n_pktin_ff;

  // Run duration: the send span, stretched if some station needs longer
  // than that to clear the offered work, plus the last flow's setup tail.
  const struct {
    const ServiceMixture* m;
    std::size_t servers;
  } stations[] = {{&m_scpu, pp.switch_cores},
                  {&m_ccpu, pp.controller_cores},
                  {&m_bus, 1},
                  {&m_up, 1},
                  {&m_down, 1}};
  double max_rho = 0.0;
  for (const auto& s : stations) {
    max_rho = std::max(max_rho, s.m->offered_erlangs() / static_cast<double>(s.servers));
  }
  const double duration_s = std::max(send_span_s, max_rho * send_span_s) + setup_mean_s;

  Prediction out;
  out.pkt_ins_total = n_pktin;
  out.pkt_in_rate_per_s = n_pktin / duration_s;
  out.full_frame_fraction = n_pktin > 0.0 ? n_pktin_ff / n_pktin : 0.0;
  out.buffer_exhaustion_probability = buffered_mode ? p : 0.0;

  out.setup_ms = setup_mean_s * 1e3;
  out.controller_ms = ctrl_mean_s * 1e3;
  out.switch_ms = sw_mean_s * 1e3;

  const double up_bytes = n_pktin_b * pktin_wire(data_b) + n_pktin_ff * pktin_wire(frame);
  const double down_bytes =
      n_pktin * fm_wire + n_pktin_b * po_wire(0.0) + n_pktin_ff * po_wire(frame);
  out.to_controller_mbps = up_bytes * 8.0 / 1e6 / duration_s;
  out.to_switch_mbps = down_bytes * 8.0 / 1e6 / duration_s;

  // offered_erlangs is busy-seconds per second during the send span; CPU
  // percentages are measured over the (possibly longer) full window.
  const double span_over_duration = send_span_s / duration_s;
  out.switch_cpu_pct = 100.0 * m_scpu.offered_erlangs() * span_over_duration;
  out.controller_cpu_pct = 100.0 * m_ccpu.offered_erlangs() * span_over_duration;
  out.bus_utilization_pct = 100.0 * m_bus.offered_erlangs() * span_over_duration;

  if (buffered_mode) {
    const double stored_rate = l_miss * (1.0 - p);
    out.buffer_avg_units =
        std::min<double>(stored_rate * residency_s, static_cast<double>(pp.buffer_capacity)) *
        span_over_duration;
  }

  out.duration_s = duration_s;
  out.max_utilization = max_rho;
  out.saturated = max_rho >= 1.0;
  return out;
}

}  // namespace sdnbuf::model

#include "model/queueing.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace sdnbuf::model {

double erlang_b(std::size_t servers, double offered_load) {
  SDNBUF_CHECK_MSG(offered_load >= 0.0, "offered load must be non-negative");
  double b = 1.0;
  for (std::size_t k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  return b;
}

double erlang_c(std::size_t servers, double offered_load) {
  SDNBUF_CHECK_MSG(servers >= 1, "need at least one server");
  const double c = static_cast<double>(servers);
  if (offered_load >= c) return 1.0;
  const double b = erlang_b(servers, offered_load);
  // C = c B / (c - a (1 - B)), derived from the B<->C relationship.
  return c * b / (c - offered_load * (1.0 - b));
}

double mmc_wait_s(double lambda, double mean_service_s, std::size_t servers) {
  if (lambda <= 0.0 || mean_service_s <= 0.0) return 0.0;
  const double a = lambda * mean_service_s;
  const double c = static_cast<double>(servers);
  if (a >= c) return std::numeric_limits<double>::infinity();
  return erlang_c(servers, a) / (c / mean_service_s - lambda);
}

double gg_c_wait_s(double lambda, double mean_service_s, std::size_t servers, double ca2,
                   double cs2) {
  return mmc_wait_s(lambda, mean_service_s, servers) * 0.5 * (ca2 + cs2);
}

double overload_ramp_wait_s(double rho, double run_duration_s) {
  if (rho <= 1.0 || run_duration_s <= 0.0) return 0.0;
  return run_duration_s * (rho - 1.0) / 2.0;
}

LognormalJitter lognormal_jitter(double sigma) {
  LognormalJitter j;
  j.mean_factor = std::exp(sigma * sigma / 2.0);
  j.second_moment_factor = std::exp(2.0 * sigma * sigma);
  j.cs2 = std::exp(sigma * sigma) - 1.0;
  return j;
}

void ServiceMixture::add(double rate, double mean_s, double second_moment_s2) {
  if (rate <= 0.0) return;
  rate_ += rate;
  weighted_mean_ += rate * mean_s;
  weighted_second_ += rate * second_moment_s2;
}

double ServiceMixture::mean_s() const { return rate_ > 0.0 ? weighted_mean_ / rate_ : 0.0; }

double ServiceMixture::second_moment_s2() const {
  return rate_ > 0.0 ? weighted_second_ / rate_ : 0.0;
}

double ServiceMixture::cs2() const {
  const double m = mean_s();
  if (m <= 0.0) return 0.0;
  const double v = second_moment_s2() - m * m;
  return v > 0.0 ? v / (m * m) : 0.0;
}

double ServiceMixture::offered_erlangs() const { return weighted_mean_; }

}  // namespace sdnbuf::model

// Closed-form sweep pre-screening.
//
// A full simulated sweep costs (rates x mechanisms x repetitions) event-loop
// runs; the analytical oracle evaluates the same grid in microseconds. The
// pre-screener uses that to find the "interesting region" — the cells where
// the figures actually change shape — so core::run_sweep only simulates
// those:
//
//   * knees: the first rate where a mechanism's setup delay leaves its flat
//     low-load plateau (delay >= knee_ratio x the plateau value), and the
//     first rate where any station utilization crosses the saturation
//     threshold;
//   * crossovers: rate intervals where the predicted setup-delay ordering
//     of two mechanisms flips (e.g. flow-granularity's first-packet tax vs
//     a small packet-granularity pool running out of units);
//   * anchors: the endpoints of the grid, so curves stay plotted end to end.
//
// Everything else is skippable: the model predicts those cells sit on a
// flat or smoothly-varying stretch that interpolation recovers. The bench
// layer exposes this as --prescreen (see bench/common.hpp) and logs how
// many cells were skipped; tests/test_model_validation.cpp checks the
// detected crossover against full simulation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/node_model.hpp"

namespace sdnbuf::model {

// One mechanism column of the grid.
struct Scenario {
  std::string label;
  Params params;  // rate_mbps is overridden per grid cell
};

// A detected flip of the predicted setup-delay ordering between two
// scenarios, bracketed by adjacent grid rates.
struct Crossover {
  std::size_t scenario_a = 0;  // indices into Sweep::scenarios
  std::size_t scenario_b = 0;
  double rate_low_mbps = 0.0;   // last rate with the old ordering
  double rate_high_mbps = 0.0;  // first rate with the new ordering
  // Linear interpolation of the delay difference's zero inside the bracket.
  double rate_estimate_mbps = 0.0;
};

struct ScreenResult {
  // predictions[s][r]: scenario s evaluated at rates_mbps[r].
  std::vector<std::vector<Prediction>> predictions;

  // Rates worth simulating (union over scenarios, ascending). A cell is
  // interesting when it is an endpoint, sits at a knee (delay or
  // utilization), or brackets a crossover; margin_cells neighbors on each
  // side are kept too.
  std::vector<double> kept_rates_mbps;

  std::vector<Crossover> crossovers;
  // Per scenario: the first rate whose predicted setup delay exceeds
  // knee_ratio x the scenario's minimum over the grid (NaN if none).
  std::vector<double> knee_rate_mbps;

  // Cell accounting (cells = rates x scenarios; a skipped rate skips the
  // whole row of scenarios since sweeps share one rate axis).
  std::size_t total_cells = 0;
  std::size_t kept_cells = 0;
  [[nodiscard]] std::size_t skipped_cells() const { return total_cells - kept_cells; }
};

// The pre-screener. Fill in the grid and call run().
struct Sweep {
  std::vector<double> rates_mbps;
  std::vector<Scenario> scenarios;

  // A cell is a knee once predicted setup delay reaches knee_ratio x the
  // scenario's grid minimum...
  double knee_ratio = 1.5;
  // ...or the binding station's utilization reaches this.
  double utilization_knee = 0.9;
  // Neighbors kept around every interesting cell (>= 1 keeps the cell
  // before a knee, which anchors the interpolation on the flat side).
  int margin_cells = 1;

  [[nodiscard]] ScreenResult run() const;
};

}  // namespace sdnbuf::model

#include "model/prescreen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace sdnbuf::model {

ScreenResult Sweep::run() const {
  SDNBUF_CHECK_MSG(std::is_sorted(rates_mbps.begin(), rates_mbps.end()),
                   "prescreen grid rates must be ascending");

  ScreenResult result;
  const std::size_t n_rates = rates_mbps.size();
  const std::size_t n_scen = scenarios.size();
  result.total_cells = n_rates * n_scen;
  if (n_rates == 0 || n_scen == 0) return result;

  result.predictions.resize(n_scen);
  for (std::size_t s = 0; s < n_scen; ++s) {
    result.predictions[s].reserve(n_rates);
    for (double rate : rates_mbps) {
      result.predictions[s].push_back(predict(scenarios[s].params.at_rate(rate)));
    }
  }

  std::vector<bool> keep(n_rates, false);
  keep.front() = keep.back() = true;  // anchors

  // Knees: delay leaving the low-load plateau, or a station nearing
  // saturation. Mark the first offending cell; the margin pass below keeps
  // the flat neighbor that anchors interpolation.
  result.knee_rate_mbps.assign(n_scen, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t s = 0; s < n_scen; ++s) {
    const auto& row = result.predictions[s];
    double floor_ms = std::numeric_limits<double>::infinity();
    for (const auto& cell : row) floor_ms = std::min(floor_ms, cell.setup_ms);
    bool past_delay_knee = false;
    bool past_util_knee = false;
    for (std::size_t r = 0; r < n_rates; ++r) {
      if (!past_delay_knee && row[r].setup_ms >= knee_ratio * floor_ms) {
        past_delay_knee = true;
        result.knee_rate_mbps[s] = rates_mbps[r];
        keep[r] = true;
      }
      if (!past_util_knee && row[r].max_utilization >= utilization_knee) {
        past_util_knee = true;
        keep[r] = true;
      }
      // Inside the bent region the curve is no longer flat: keep every cell
      // past the delay knee so its shape is simulated, not interpolated.
      if (past_delay_knee || past_util_knee) keep[r] = true;
    }
  }

  // Crossovers: sign flips of the pairwise setup-delay difference between
  // adjacent rates.
  for (std::size_t a = 0; a < n_scen; ++a) {
    for (std::size_t b = a + 1; b < n_scen; ++b) {
      for (std::size_t r = 1; r < n_rates; ++r) {
        const double prev =
            result.predictions[a][r - 1].setup_ms - result.predictions[b][r - 1].setup_ms;
        const double cur = result.predictions[a][r].setup_ms - result.predictions[b][r].setup_ms;
        if (prev == 0.0 || cur == 0.0 || (prev < 0.0) == (cur < 0.0)) continue;
        Crossover x;
        x.scenario_a = a;
        x.scenario_b = b;
        x.rate_low_mbps = rates_mbps[r - 1];
        x.rate_high_mbps = rates_mbps[r];
        x.rate_estimate_mbps =
            rates_mbps[r - 1] +
            (rates_mbps[r] - rates_mbps[r - 1]) * (prev / (prev - cur));
        result.crossovers.push_back(x);
        keep[r - 1] = keep[r] = true;
      }
    }
  }

  // Margin: widen every kept cell by margin_cells neighbors.
  if (margin_cells > 0) {
    std::vector<bool> widened = keep;
    for (std::size_t r = 0; r < n_rates; ++r) {
      if (!keep[r]) continue;
      const std::size_t lo = r >= static_cast<std::size_t>(margin_cells)
                                 ? r - static_cast<std::size_t>(margin_cells)
                                 : 0;
      const std::size_t hi =
          std::min(n_rates - 1, r + static_cast<std::size_t>(margin_cells));
      for (std::size_t i = lo; i <= hi; ++i) widened[i] = true;
    }
    keep.swap(widened);
  }

  for (std::size_t r = 0; r < n_rates; ++r) {
    if (keep[r]) result.kept_rates_mbps.push_back(rates_mbps[r]);
  }
  result.kept_cells = result.kept_rates_mbps.size() * n_scen;
  return result;
}

}  // namespace sdnbuf::model

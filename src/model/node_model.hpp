// Analytical model of the single-switch OpenFlow node — the second,
// independent correctness oracle next to the src/verify invariant layer.
//
// Following "On the Modeling of OpenFlow-based SDNs: The Single Node Case"
// (arXiv:1411.4733), the reactive-forwarding control loop is modeled as a
// network of queueing stations with a feedback path:
//
//           miss                    packet_in
//   ingress ----> [bus] -> [switch CPU] --------> [uplink] ---+
//                                                             [controller CPU]
//   egress <---- [bus*] <- [switch CPU] <-------- [downlink]--+
//                            flow_mod + packet_out
//
//   (*) the return bus crossing exists only when the packet_out carries the
//       full frame, i.e. in no-buffer mode or on buffer exhaustion.
//
// Each station is solved in closed form (Erlang/Allen-Cunneen two-moment
// waits, see model/queueing.hpp); the buffer is an M/G/c/c loss system
// whose Erlang-B blocking probability feeds back into the service demands
// (a blocked miss takes the full-frame path), iterated to a fixed point.
// The paper's three buffer mechanisms map onto the model as different
// pkt_in volumes, copied-byte counts and re-injection terms:
//
//   NoBuffer          every miss punts the whole frame over the bus, the
//                     packet_in carries it, and the packet_out re-injects
//                     it over the bus again
//   PacketGranularity every miss occupies one buffer unit for one control
//                     RTT (+ lazy reclaim); the packet_in carries only
//                     miss_send_len bytes; exhaustion falls back to the
//                     no-buffer path per packet (Erlang-B mixture)
//   FlowGranularity   one packet_in per flow; later packets of a pending
//                     flow are buffered silently (CPU-only map+store job),
//                     at the price of the first-packet setup tax
//
// The predictions target exactly what the simulator measures (§III.B /
// metrics::DelayRecorder definitions), so tests can assert relative error
// directly: tests/test_model_validation.cpp holds the oracle to <= 10% on
// pkt_in rate and mean delays; DESIGN.md §12 documents where and why the
// two are *expected* to diverge (saturated stations, bursty arrivals).
#pragma once

#include <cstdint>

#include "controller/controller.hpp"
#include "core/experiment.hpp"
#include "switchd/switch.hpp"

namespace sdnbuf::model {

// Everything the closed-form evaluation needs, flattened out of the
// simulator's config structs so a Params value is self-contained and cheap
// to perturb in sweeps.
struct Params {
  // Workload (the E1/E2 pktgen shape).
  double rate_mbps = 10.0;
  std::uint32_t frame_size = 1000;
  std::uint64_t n_flows = 1000;
  std::uint32_t packets_per_flow = 1;
  std::uint32_t batch_size = 1;  // packet interleave factor (CrossSequence)
  double spacing_jitter = 0.1;

  // Mechanism.
  sw::BufferMode mode = sw::BufferMode::NoBuffer;
  std::size_t buffer_capacity = 256;
  std::uint16_t miss_send_len = 128;

  // Platform.
  unsigned switch_cores = 4;
  unsigned controller_cores = 2;
  double control_link_mbps = 1000.0;
  double control_link_delay_s = 300e-6;
  sw::CostModel switch_costs;
  ctrl::CostModel controller_costs;

  // Builds Params from an experiment config (the mechanism/buffer overrides
  // applied exactly as core::run_experiment applies them).
  [[nodiscard]] static Params from(const core::ExperimentConfig& config);

  // The same operating point at a different sending rate (sweep helper).
  [[nodiscard]] Params at_rate(double mbps) const;
};

// Closed-form predictions, named after the ExperimentResult fields they
// forecast. Delays are means over flows, matching Samples::mean() of the
// corresponding recorder output.
struct Prediction {
  // Message volume.
  double pkt_ins_total = 0.0;       // expected pkt_ins_sent over the run
  double pkt_in_rate_per_s = 0.0;   // pkt_ins_total / duration_s
  double full_frame_fraction = 0.0;  // share of pkt_ins carrying the frame

  // Probability a miss finds the buffer exhausted (Erlang-B blocking of the
  // unit pool). This is the model's packet-loss probability in the sense of
  // arXiv:1411.4733 §IV — our switch falls back to a full-frame punt
  // instead of dropping, so it surfaces as full_frame_pkt_ins, not loss.
  double buffer_exhaustion_probability = 0.0;

  // Per-flow delay means (§III.B definitions).
  double setup_ms = 0.0;       // Fig. 5
  double controller_ms = 0.0;  // Fig. 6
  double switch_ms = 0.0;      // Fig. 7

  // Control-path byte load over the measurement window (Fig. 2 / Fig. 9).
  double to_controller_mbps = 0.0;
  double to_switch_mbps = 0.0;

  // Station utilizations (100% = one core / one server fully busy).
  double switch_cpu_pct = 0.0;
  double controller_cpu_pct = 0.0;
  double bus_utilization_pct = 0.0;

  // Buffer pool (Fig. 8): time-average occupied units.
  double buffer_avg_units = 0.0;

  // Run envelope.
  double duration_s = 0.0;
  // Highest station utilization (rho of the binding resource, in [0, inf));
  // > 1 means the run operates past saturation and `saturated` is set. Past
  // this point delay predictions switch to the finite-run overload ramp and
  // are order-of-magnitude only (DESIGN.md §12).
  double max_utilization = 0.0;
  bool saturated = false;
};

// Evaluates the model at one operating point. Pure function of Params;
// costs microseconds, so grids of thousands of cells are free compared to
// one simulation.
[[nodiscard]] Prediction predict(const Params& params);

}  // namespace sdnbuf::model

#include "core/sweep.hpp"

#include <atomic>
#include <mutex>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace sdnbuf::core {

std::vector<double> default_rates() {
  std::vector<double> rates;
  for (int r = 5; r <= 100; r += 5) rates.push_back(static_cast<double>(r));
  return rates;
}

double SweepResult::overall_mean(
    const std::function<double(const RatePoint&)>& metric) const {
  util::Summary s;
  for (const auto& p : points) s.add(metric(p));
  return s.mean();
}

double SweepResult::overall_max(const std::function<double(const RatePoint&)>& metric) const {
  util::Summary s;
  for (const auto& p : points) s.add(metric(p));
  return s.max();
}

namespace {

ExperimentConfig cell_config(const SweepConfig& config, double rate, int rep) {
  ExperimentConfig ec = config.base;
  ec.rate_mbps = rate;
  // Seed derivation: distinct per (rate, repetition), stable across runs.
  ec.seed = config.base.seed * 1000003u + static_cast<std::uint64_t>(rate) * 101u +
            static_cast<std::uint64_t>(rep);
  return ec;
}

// The one merge path both the sequential loop and the parallel merge use:
// identical code, identical order => identical floating-point results.
void accumulate(RatePoint& point, const ExperimentResult& r) {
  point.to_controller_mbps.add(r.to_controller_mbps);
  point.to_switch_mbps.add(r.to_switch_mbps);
  point.controller_cpu_pct.add(r.controller_cpu_pct);
  point.switch_cpu_pct.add(r.switch_cpu_pct);
  point.bus_utilization_pct.add(r.bus_utilization_pct);
  if (r.setup_ms.count() > 0) point.setup_ms.add(r.setup_ms.mean());
  if (r.controller_ms.count() > 0) point.controller_ms.add(r.controller_ms.mean());
  if (r.switch_ms.count() > 0) point.switch_ms.add(r.switch_ms.mean());
  if (r.forwarding_ms.count() > 0) point.forwarding_ms.add(r.forwarding_ms.mean());
  point.buffer_avg_units.add(r.buffer_avg_units);
  point.buffer_max_units.add(r.buffer_max_units);
  point.pkt_ins_sent.add(static_cast<double>(r.pkt_ins_sent));
  point.full_frame_pkt_ins.add(static_cast<double>(r.full_frame_pkt_ins));
  point.pooled_setup_ms.merge(r.setup_ms.summary());
  point.pooled_controller_ms.merge(r.controller_ms.summary());
  point.pooled_switch_ms.merge(r.switch_ms.summary());
  point.pooled_forwarding_ms.merge(r.forwarding_ms.summary());
  point.undelivered_packets += r.packets_sent - r.packets_delivered;
}

}  // namespace

SweepResult run_sweep(const SweepConfig& config, std::string label, const ProgressFn& progress) {
  SDNBUF_CHECK(config.repetitions >= 1);
  SweepResult result;
  result.label = std::move(label);
  const std::vector<double> rates =
      config.rates_mbps.empty() ? default_rates() : config.rates_mbps;

  const std::size_t cells = rates.size() * static_cast<std::size_t>(config.repetitions);
  // Observer / capture / obs sinks are single shared objects; concurrent
  // cells would race on them, so those configs stay on the sequential path.
  const bool shared_sinks = config.base.observer != nullptr || config.base.capture != nullptr ||
                            config.base.metrics != nullptr || config.base.tracer != nullptr ||
                            config.base.profiler != nullptr;
  const std::size_t jobs =
      shared_sinks ? 1
                   : std::min<std::size_t>(std::max(config.jobs, 1), std::max<std::size_t>(cells, 1));

  if (jobs <= 1) {
    for (const double rate : rates) {
      RatePoint point;
      point.rate_mbps = rate;
      for (int rep = 0; rep < config.repetitions; ++rep) {
        if (progress) progress(rate, rep);
        accumulate(point, run_experiment(cell_config(config, rate, rep)));
      }
      result.points.push_back(std::move(point));
    }
    return result;
  }

  // Parallel fan-out: each (rate, repetition) cell writes its result into a
  // pre-assigned slot; the merge below runs on this thread in sweep order.
  //
  // Work distribution is pull-based at worker granularity: one long-lived
  // task per worker draining a shared atomic cell counter, instead of one
  // queued closure per cell. That turns 2 mutex acquisitions + a condition
  // wakeup + a heap-allocated std::function per cell into a single relaxed
  // fetch_add, which is what the BENCH_simcore sweep stage was losing to at
  // fine cell granularity (speedup < 1 at jobs=4). Slot pre-assignment and
  // the sequential merge are untouched, so results stay bit-identical to
  // the jobs=1 path for any job count.
  std::vector<ExperimentResult> cell_results(cells);
  const std::size_t reps = static_cast<std::size_t>(config.repetitions);
  {
    util::ThreadPool pool(static_cast<unsigned>(jobs));
    std::mutex progress_mu;
    std::atomic<std::size_t> next_cell{0};
    for (std::size_t worker = 0; worker < jobs; ++worker) {
      pool.submit([&config, &cell_results, &progress, &progress_mu, &next_cell, &rates, reps,
                   cells]() {
        for (std::size_t index = next_cell.fetch_add(1, std::memory_order_relaxed);
             index < cells; index = next_cell.fetch_add(1, std::memory_order_relaxed)) {
          const double rate = rates[index / reps];
          const int rep = static_cast<int>(index % reps);
          if (progress) {
            const std::lock_guard<std::mutex> lock(progress_mu);
            progress(rate, rep);
          }
          cell_results[index] = run_experiment(cell_config(config, rate, rep));
        }
      });
    }
    pool.wait_idle();
  }

  std::size_t index = 0;
  for (const double rate : rates) {
    RatePoint point;
    point.rate_mbps = rate;
    for (int rep = 0; rep < config.repetitions; ++rep, ++index) {
      accumulate(point, cell_results[index]);
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

namespace {

bool summary_equal(const util::Summary& a, const util::Summary& b) {
  // Exact comparison on purpose: the determinism contract is bitwise, not
  // approximate. mean/variance derive from the Welford state, so checking
  // count, mean, variance, min, max and sum pins every stored double.
  return a.count() == b.count() && a.mean() == b.mean() && a.variance() == b.variance() &&
         a.min() == b.min() && a.max() == b.max() && a.sum() == b.sum();
}

bool point_equal(const RatePoint& a, const RatePoint& b) {
  return a.rate_mbps == b.rate_mbps && summary_equal(a.to_controller_mbps, b.to_controller_mbps) &&
         summary_equal(a.to_switch_mbps, b.to_switch_mbps) &&
         summary_equal(a.controller_cpu_pct, b.controller_cpu_pct) &&
         summary_equal(a.switch_cpu_pct, b.switch_cpu_pct) &&
         summary_equal(a.bus_utilization_pct, b.bus_utilization_pct) &&
         summary_equal(a.setup_ms, b.setup_ms) && summary_equal(a.controller_ms, b.controller_ms) &&
         summary_equal(a.switch_ms, b.switch_ms) &&
         summary_equal(a.forwarding_ms, b.forwarding_ms) &&
         summary_equal(a.buffer_avg_units, b.buffer_avg_units) &&
         summary_equal(a.buffer_max_units, b.buffer_max_units) &&
         summary_equal(a.pkt_ins_sent, b.pkt_ins_sent) &&
         summary_equal(a.full_frame_pkt_ins, b.full_frame_pkt_ins) &&
         summary_equal(a.pooled_setup_ms, b.pooled_setup_ms) &&
         summary_equal(a.pooled_controller_ms, b.pooled_controller_ms) &&
         summary_equal(a.pooled_switch_ms, b.pooled_switch_ms) &&
         summary_equal(a.pooled_forwarding_ms, b.pooled_forwarding_ms) &&
         a.undelivered_packets == b.undelivered_packets;
}

void csv_summary(std::ostream& out, const util::Summary& s) {
  out << ',' << s.count() << ',' << util::format_double(s.mean(), 17) << ','
      << util::format_double(s.stddev(), 17) << ',' << util::format_double(s.min(), 17) << ','
      << util::format_double(s.max(), 17);
}

}  // namespace

bool bitwise_equal(const SweepResult& a, const SweepResult& b) {
  if (a.label != b.label || a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (!point_equal(a.points[i], b.points[i])) return false;
  }
  return true;
}

void write_csv(const SweepResult& result, std::ostream& out) {
  out << "rate_mbps";
  for (const char* metric :
       {"to_controller_mbps", "to_switch_mbps", "controller_cpu_pct", "switch_cpu_pct",
        "bus_utilization_pct", "setup_ms", "controller_ms", "switch_ms", "forwarding_ms",
        "buffer_avg_units", "buffer_max_units", "pkt_ins_sent", "full_frame_pkt_ins",
        "pooled_setup_ms", "pooled_controller_ms", "pooled_switch_ms", "pooled_forwarding_ms"}) {
    out << ',' << metric << "_count," << metric << "_mean," << metric << "_std," << metric
        << "_min," << metric << "_max";
  }
  out << ",undelivered_packets\n";
  for (const auto& p : result.points) {
    out << util::format_double(p.rate_mbps, 17);
    csv_summary(out, p.to_controller_mbps);
    csv_summary(out, p.to_switch_mbps);
    csv_summary(out, p.controller_cpu_pct);
    csv_summary(out, p.switch_cpu_pct);
    csv_summary(out, p.bus_utilization_pct);
    csv_summary(out, p.setup_ms);
    csv_summary(out, p.controller_ms);
    csv_summary(out, p.switch_ms);
    csv_summary(out, p.forwarding_ms);
    csv_summary(out, p.buffer_avg_units);
    csv_summary(out, p.buffer_max_units);
    csv_summary(out, p.pkt_ins_sent);
    csv_summary(out, p.full_frame_pkt_ins);
    csv_summary(out, p.pooled_setup_ms);
    csv_summary(out, p.pooled_controller_ms);
    csv_summary(out, p.pooled_switch_ms);
    csv_summary(out, p.pooled_forwarding_ms);
    out << ',' << p.undelivered_packets << '\n';
  }
}

}  // namespace sdnbuf::core

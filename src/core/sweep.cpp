#include "core/sweep.hpp"

#include "util/check.hpp"

namespace sdnbuf::core {

std::vector<double> default_rates() {
  std::vector<double> rates;
  for (int r = 5; r <= 100; r += 5) rates.push_back(static_cast<double>(r));
  return rates;
}

double SweepResult::overall_mean(
    const std::function<double(const RatePoint&)>& metric) const {
  util::Summary s;
  for (const auto& p : points) s.add(metric(p));
  return s.mean();
}

double SweepResult::overall_max(const std::function<double(const RatePoint&)>& metric) const {
  util::Summary s;
  for (const auto& p : points) s.add(metric(p));
  return s.max();
}

SweepResult run_sweep(const SweepConfig& config, std::string label, const ProgressFn& progress) {
  SDNBUF_CHECK(config.repetitions >= 1);
  SweepResult result;
  result.label = std::move(label);
  const std::vector<double> rates =
      config.rates_mbps.empty() ? default_rates() : config.rates_mbps;

  for (const double rate : rates) {
    RatePoint point;
    point.rate_mbps = rate;
    for (int rep = 0; rep < config.repetitions; ++rep) {
      if (progress) progress(rate, rep);
      ExperimentConfig ec = config.base;
      ec.rate_mbps = rate;
      // Seed derivation: distinct per (rate, repetition), stable across runs.
      ec.seed = config.base.seed * 1000003u + static_cast<std::uint64_t>(rate) * 101u +
                static_cast<std::uint64_t>(rep);
      const ExperimentResult r = run_experiment(ec);

      point.to_controller_mbps.add(r.to_controller_mbps);
      point.to_switch_mbps.add(r.to_switch_mbps);
      point.controller_cpu_pct.add(r.controller_cpu_pct);
      point.switch_cpu_pct.add(r.switch_cpu_pct);
      point.bus_utilization_pct.add(r.bus_utilization_pct);
      if (r.setup_ms.count() > 0) point.setup_ms.add(r.setup_ms.mean());
      if (r.controller_ms.count() > 0) point.controller_ms.add(r.controller_ms.mean());
      if (r.switch_ms.count() > 0) point.switch_ms.add(r.switch_ms.mean());
      if (r.forwarding_ms.count() > 0) point.forwarding_ms.add(r.forwarding_ms.mean());
      point.buffer_avg_units.add(r.buffer_avg_units);
      point.buffer_max_units.add(r.buffer_max_units);
      point.pkt_ins_sent.add(static_cast<double>(r.pkt_ins_sent));
      point.full_frame_pkt_ins.add(static_cast<double>(r.full_frame_pkt_ins));
      point.pooled_setup_ms.merge(r.setup_ms.summary());
      point.pooled_controller_ms.merge(r.controller_ms.summary());
      point.pooled_switch_ms.merge(r.switch_ms.summary());
      point.pooled_forwarding_ms.merge(r.forwarding_ms.summary());
      point.undelivered_packets += r.packets_sent - r.packets_delivered;
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace sdnbuf::core

// One experiment run: a workload pushed through the testbed under one
// buffer mechanism, producing every metric of §III.B.
#pragma once

#include <cstdint>
#include <string>

#include "core/testbed.hpp"
#include "host/traffic_gen.hpp"
#include "obs/fabric_observatory.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "openflow/capture.hpp"
#include "util/stats.hpp"

namespace sdnbuf::core {

struct ExperimentConfig {
  // Mechanism under test.
  sw::BufferMode mode = sw::BufferMode::NoBuffer;
  std::size_t buffer_capacity = 256;

  // Workload (pktgen parameters).
  double rate_mbps = 10.0;
  std::uint32_t frame_size = 1000;
  std::uint64_t n_flows = 1000;
  std::uint32_t packets_per_flow = 1;
  host::EmissionOrder order = host::EmissionOrder::Sequential;
  std::uint32_t batch_size = 5;
  // Fraction of flows carried over TCP instead of UDP (§VI mixed traffic).
  double tcp_flow_fraction = 0.0;

  std::uint64_t seed = 1;

  // Platform (cost models, link speeds); mode/buffer_capacity/seed above
  // override the corresponding switch_config fields.
  TestbedConfig testbed;

  // Extra simulated time allowed for the tail of the run to drain.
  sim::SimTime drain_timeout = sim::SimTime::seconds(5);

  // Optional invariant-checking observer, wired through the testbed (see
  // TestbedConfig::observer). Observes the warm-up too; call finalize() on
  // the registry after run_experiment returns.
  verify::InvariantObserver* observer = nullptr;
  // Optional control-channel capture, attached before warm-up so two
  // same-seed runs produce byte-identical traces end to end.
  of::ChannelCapture* capture = nullptr;

  // Optional observability sinks (DESIGN.md §10). All null by default; a
  // null sink costs the datapath exactly one pointer comparison per
  // potential observation and perturbs no simulated state, so obs-off and
  // obs-on runs of the same seed produce bit-identical results.
  //
  // Metrics: instruments are registered into `metrics` at wiring time and
  // snapshotted every `metrics_interval` of sim time during the measurement
  // window (plus one final row after the drain). Polls registered here are
  // cleared before run_experiment returns (they reference the testbed).
  obs::MetricsRegistry* metrics = nullptr;
  sim::SimTime metrics_interval = sim::SimTime::milliseconds(10);
  // Flow-lifecycle tracer, teed with `observer` when both are present.
  // run_experiment calls finalize() on it after the drain.
  obs::FlowTracer* tracer = nullptr;
  // Event-loop profiler (wall-clock callback attribution).
  obs::EventLoopProfiler* profiler = nullptr;
  // In-fabric telemetry plane (DESIGN.md §15): drop-attribution ledger and
  // INT stamp harvesting. Null = off; the per-switch INT/sampling knobs live
  // in testbed.switch_config (telemetry_int_depth / telemetry_sample_period)
  // and the NetFlow app in testbed.controller_config.flow_monitor_enabled.
  obs::FabricObservatory* observatory = nullptr;
};

struct ExperimentResult {
  // Control path load, both directions (Fig. 2 / Fig. 9), in Mbps over the
  // measurement window.
  double to_controller_mbps = 0.0;
  double to_switch_mbps = 0.0;

  // CPU usages as the OS reports them (100% = one core; Fig. 3-4 / 10-11).
  double controller_cpu_pct = 0.0;
  double switch_cpu_pct = 0.0;
  double bus_utilization_pct = 0.0;

  // Per-flow delay samples (Fig. 5-7 / Fig. 12).
  util::Samples setup_ms;
  util::Samples controller_ms;
  util::Samples switch_ms;
  util::Samples forwarding_ms;

  // Buffer units (Fig. 8 / Fig. 13).
  double buffer_avg_units = 0.0;
  double buffer_max_units = 0.0;

  // Message accounting.
  std::uint64_t pkt_ins_sent = 0;
  std::uint64_t full_frame_pkt_ins = 0;
  std::uint64_t resend_pkt_ins = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t pkt_outs = 0;
  std::uint64_t to_controller_msgs = 0;
  std::uint64_t to_switch_msgs = 0;
  std::uint64_t to_controller_bytes = 0;
  std::uint64_t to_switch_bytes = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t pkt_ins_dropped = 0;  // controller fault injection

  // Telemetry plane (DESIGN.md §15).
  std::uint64_t flow_samples = 0;  // vendor flow-sample records on the wire
  std::uint64_t int_stamps = 0;    // INT hop stamps applied by the switch

  // Shared-memory MMU (DESIGN.md §16; zero with MMU off).
  std::uint64_t mmu_rejected = 0;        // admissions refused by the policy
  std::uint64_t mmu_peak_pool_cells = 0; // peak shared-pool occupancy

  // Liveness / handshake traffic (both directions summed).
  std::uint64_t echo_msgs = 0;   // echo_request + echo_reply
  std::uint64_t hello_msgs = 0;
  std::uint64_t error_msgs = 0;

  // Channel fault injection (see of::ChannelFaultCounters).
  std::uint64_t channel_lost_msgs = 0;
  std::uint64_t channel_duplicated_msgs = 0;
  std::uint64_t channel_outage_dropped_msgs = 0;

  // Degradation and recovery accounting.
  std::uint64_t connection_losses = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t failsecure_dropped = 0;
  std::uint64_t standalone_forwarded = 0;
  std::uint64_t resend_cap_expired = 0;
  std::uint64_t reconcile_rerequests = 0;
  std::uint64_t reconcile_expired = 0;
  // When the last hello re-handshake completed, in seconds relative to the
  // measurement start; negative if the connection never degraded.
  double last_reconnect_s = -1.0;

  // Conservation / sanity.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t flows_complete = 0;
  double duration_s = 0.0;
  bool drained = false;  // every injected packet was delivered
};

// Builds the testbed, warms it up, runs the workload to completion (or the
// deadline) and harvests every metric.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

// Human-readable one-line summary (examples use it).
[[nodiscard]] std::string summarize(const ExperimentResult& r);

}  // namespace sdnbuf::core

// Multi-switch extension: a linear chain of OpenFlow switches between two
// hosts, all managed by one controller.
//
//   Host1 -- [sw1] -- [sw2] -- ... -- [swN] -- Host2
//               \       |              /
//                ----- control channels (one per switch)
//
// In the data-center networks the paper targets, a new flow's first packets
// miss at *every* switch on the path — the reactive overhead multiplies per
// hop, and so does the buffer's saving (`bench_multihop`). Port numbering
// per switch: 1 = toward Host1, 2 = toward Host2.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "controller/controller.hpp"
#include "host/sink.hpp"
#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "sim/simulator.hpp"
#include "switchd/switch.hpp"

namespace sdnbuf::core {

struct ChainConfig {
  unsigned n_switches = 2;
  sw::SwitchConfig switch_config;  // template; datapath_id is set per switch
  ctrl::ControllerConfig controller_config;
  double host_link_mbps = 100.0;
  double inter_switch_mbps = 100.0;
  sim::SimTime link_delay = sim::SimTime::microseconds(20);
  double control_link_mbps = 1000.0;
  sim::SimTime control_link_delay = sim::SimTime::microseconds(300);
  std::uint64_t seed = 1;
};

class ChainTestbed {
 public:
  static constexpr std::uint16_t kLeftPort = 1;
  static constexpr std::uint16_t kRightPort = 2;

  explicit ChainTestbed(const ChainConfig& config);

  // L2 learning warm-up across the whole chain, then statistics reset.
  void warm_up();

  void inject_from_host1(const net::Packet& packet);
  void inject_from_host2(const net::Packet& packet);

  [[nodiscard]] net::MacAddress host1_mac() const { return net::MacAddress::from_index(1); }
  [[nodiscard]] net::MacAddress host2_mac() const { return net::MacAddress::from_index(2); }
  [[nodiscard]] net::Ipv4Address host1_ip() const {
    return net::Ipv4Address::from_octets(10, 1, 0, 1);
  }
  [[nodiscard]] net::Ipv4Address host2_ip() const {
    return net::Ipv4Address::from_octets(10, 2, 0, 1);
  }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] unsigned n_switches() const { return static_cast<unsigned>(switches_.size()); }
  [[nodiscard]] sw::Switch& switch_at(unsigned index) { return *switches_.at(index); }
  [[nodiscard]] ctrl::Controller& controller() { return *controller_; }
  [[nodiscard]] host::HostSink& sink1() { return sink1_; }
  [[nodiscard]] host::HostSink& sink2() { return sink2_; }

  // Sums across every switch / control channel.
  [[nodiscard]] std::uint64_t total_pkt_ins() const;
  [[nodiscard]] std::uint64_t total_control_bytes() const;

  // Stops all housekeeping so Simulator::run() can drain.
  void stop();

  void reset_statistics();

 private:
  sim::Simulator sim_;
  std::unique_ptr<ctrl::Controller> controller_;
  std::vector<std::unique_ptr<sw::Switch>> switches_;
  std::vector<std::unique_ptr<net::DuplexLink>> control_links_;  // per switch
  std::vector<std::unique_ptr<of::Channel>> channels_;           // per switch
  // data_links_[0] = host1<->sw0, [i] = sw(i-1)<->sw(i), [n] = sw(n-1)<->host2;
  // forward() always points toward Host2.
  std::vector<std::unique_ptr<net::DuplexLink>> data_links_;
  host::HostSink sink1_;
  host::HostSink sink2_;
  sim::SimTime measurement_start_;
};

}  // namespace sdnbuf::core

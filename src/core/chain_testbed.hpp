// Multi-switch extension: a linear chain of OpenFlow switches between two
// hosts, all managed by one controller.
//
//   Host1 -- [sw1] -- [sw2] -- ... -- [swN] -- Host2
//               \       |              /
//                ----- control channels (one per switch)
//
// In the data-center networks the paper targets, a new flow's first packets
// miss at *every* switch on the path — the reactive overhead multiplies per
// hop, and so does the buffer's saving (`bench_multihop`). Port numbering
// per switch: 1 = toward Host1, 2 = toward Host2.
//
// The chain is now a thin wrapper over the topology engine: the wiring
// comes from `topo::make_chain` via `FabricTestbed` (L2-learning routing —
// safe here because a chain is loop-free), and only the two-host warm-up
// conversation and the legacy accessors live at this layer.
#pragma once

#include <cstdint>

#include "core/fabric_testbed.hpp"

namespace sdnbuf::core {

struct ChainConfig {
  unsigned n_switches = 2;
  sw::SwitchConfig switch_config;  // template; datapath_id is set per switch
  ctrl::ControllerConfig controller_config;
  double host_link_mbps = 100.0;
  double inter_switch_mbps = 100.0;
  sim::SimTime link_delay = sim::SimTime::microseconds(20);
  double control_link_mbps = 1000.0;
  sim::SimTime control_link_delay = sim::SimTime::microseconds(300);
  std::uint64_t seed = 1;
};

class ChainTestbed {
 public:
  static constexpr std::uint16_t kLeftPort = 1;
  static constexpr std::uint16_t kRightPort = 2;

  explicit ChainTestbed(const ChainConfig& config);

  // L2 learning warm-up across the whole chain, then statistics reset.
  void warm_up();

  void inject_from_host1(const net::Packet& packet) { fabric_.inject_from_host(0, packet); }
  void inject_from_host2(const net::Packet& packet) { fabric_.inject_from_host(1, packet); }

  [[nodiscard]] net::MacAddress host1_mac() const { return net::MacAddress::from_index(1); }
  [[nodiscard]] net::MacAddress host2_mac() const { return net::MacAddress::from_index(2); }
  [[nodiscard]] net::Ipv4Address host1_ip() const {
    return net::Ipv4Address::from_octets(10, 1, 0, 1);
  }
  [[nodiscard]] net::Ipv4Address host2_ip() const {
    return net::Ipv4Address::from_octets(10, 2, 0, 1);
  }

  [[nodiscard]] sim::Simulator& sim() { return fabric_.sim(); }
  [[nodiscard]] unsigned n_switches() const { return fabric_.n_switches(); }
  [[nodiscard]] sw::Switch& switch_at(unsigned index) { return fabric_.switch_at(index); }
  [[nodiscard]] ctrl::Controller& controller() { return fabric_.controller(); }
  [[nodiscard]] host::HostSink& sink1() { return fabric_.sink_at(0); }
  [[nodiscard]] host::HostSink& sink2() { return fabric_.sink_at(1); }

  // The underlying fabric (topology, router, channels, ...).
  [[nodiscard]] FabricTestbed& fabric() { return fabric_; }

  // Sums across every switch / control channel.
  [[nodiscard]] std::uint64_t total_pkt_ins() const { return fabric_.total_pkt_ins(); }
  [[nodiscard]] std::uint64_t total_control_bytes() const {
    return fabric_.total_control_bytes();
  }

  // Stops all housekeeping so Simulator::run() can drain.
  void stop() { fabric_.stop(); }

  void reset_statistics() { fabric_.reset_statistics(); }

 private:
  [[nodiscard]] static FabricConfig to_fabric_config(const ChainConfig& config);

  FabricTestbed fabric_;
};

}  // namespace sdnbuf::core

// The Fig. 1 experimental platform, assembled:
//
//   Host1 --100Mbps-- [OVS switch] --100Mbps-- Host2
//                          |
//                     control path
//                          |
//                    [Floodlight controller]
//
// The testbed owns the simulator, both hosts, the switch, the controller,
// all links and the metric recorders, and provides the warm-up that teaches
// the controller where the hosts are (in the real testbed this happens via
// ARP/initial flooding before measurements start).
#pragma once

#include <cstdint>
#include <memory>

#include "controller/controller.hpp"
#include "host/sink.hpp"
#include "metrics/delay_recorder.hpp"
#include "net/link.hpp"
#include "openflow/channel.hpp"
#include "sim/simulator.hpp"
#include "switchd/switch.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::core {

struct TestbedConfig {
  sw::SwitchConfig switch_config;
  ctrl::ControllerConfig controller_config;
  // Host access links (Table I: 100 Mbps interfaces).
  double host_link_mbps = 100.0;
  sim::SimTime host_link_delay = sim::SimTime::microseconds(20);
  // Control path: a dedicated GbE segment between the two PCs; the delay
  // lumps NIC, kernel and TCP-stack latency of both commodity machines.
  double control_link_mbps = 1000.0;
  sim::SimTime control_link_delay = sim::SimTime::microseconds(300);
  std::uint64_t seed = 1;
  // Control-channel fault injection. Armed when warm-up finishes so the
  // handshake/learning phase always runs over a clean channel; outage
  // windows are relative to the measurement start (t=0 = end of warm-up).
  of::FaultProfile fault_profile;
  // Invariant-checking observer (owned by the caller; may be null). Wired
  // into the switch, controller, channel, buffers, injection points and host
  // sinks so a registry sees the complete packet/control event stream.
  verify::InvariantObserver* observer = nullptr;
};

class Testbed {
 public:
  static constexpr std::uint16_t kHost1Port = 1;
  static constexpr std::uint16_t kHost2Port = 2;

  explicit Testbed(const TestbedConfig& config);

  // Lets the controller learn both host locations (gratuitous traffic),
  // drains, and resets every statistic — measurements start clean.
  void warm_up();

  // Injects a packet as if Host1/Host2 put it on its access link.
  void inject_from_host1(const net::Packet& packet);
  void inject_from_host2(const net::Packet& packet);

  // Addresses the hosts use.
  [[nodiscard]] net::MacAddress host1_mac() const;
  [[nodiscard]] net::MacAddress host2_mac() const;
  [[nodiscard]] net::Ipv4Address host1_ip() const;
  [[nodiscard]] net::Ipv4Address host2_ip() const;

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sw::Switch& ovs() { return *switch_; }
  [[nodiscard]] ctrl::Controller& controller() { return *controller_; }
  [[nodiscard]] of::Channel& channel() { return *channel_; }
  [[nodiscard]] host::HostSink& sink1() { return sink1_; }
  [[nodiscard]] host::HostSink& sink2() { return sink2_; }
  [[nodiscard]] metrics::DelayRecorder& recorder() { return recorder_; }

  // Control-path links (for load taps).
  [[nodiscard]] net::Link& to_controller_link() { return control_link_->forward(); }
  [[nodiscard]] net::Link& to_switch_link() { return control_link_->reverse(); }

  [[nodiscard]] sim::SimTime measurement_start() const { return measurement_start_; }

  // Resets taps, CPU meters, counters and occupancy statistics; marks the
  // start of the measurement window.
  void reset_statistics();

 private:
  sim::Simulator sim_;
  std::unique_ptr<net::DuplexLink> host1_link_;   // forward: host1 -> switch
  std::unique_ptr<net::DuplexLink> host2_link_;   // forward: host2 -> switch
  std::unique_ptr<net::DuplexLink> control_link_;  // forward: switch -> controller
  std::unique_ptr<of::Channel> channel_;
  std::unique_ptr<sw::Switch> switch_;
  std::unique_ptr<ctrl::Controller> controller_;
  host::HostSink sink1_;
  host::HostSink sink2_;
  metrics::DelayRecorder recorder_;
  verify::InvariantObserver* observer_ = nullptr;
  of::FaultProfile fault_profile_;
  std::uint64_t seed_ = 1;
  sim::SimTime measurement_start_;
};

}  // namespace sdnbuf::core

// Sending-rate sweeps with repetitions — the outer loop of every figure.
//
// The paper repeats each experiment 20 times per sending rate and reports
// means (and spreads) per rate. `run_sweep` does the same: per rate, run
// `repetitions` seeds, collect each run's scalar metrics into Summaries,
// and pool the per-flow delay samples.
//
// The sweep is embarrassingly parallel — every (rate, repetition) cell owns
// an independent Simulator/Testbed and a seed derived only from the cell's
// coordinates — so `jobs > 1` fans the cells out across a util::ThreadPool.
// Determinism contract: workers store each cell's ExperimentResult into a
// pre-assigned slot and the merge into RatePoints happens sequentially on
// the calling thread, in exactly the order the jobs=1 loop uses. Results
// are therefore bit-identical (including Summary merge order, which matters
// in floating point) for any job count.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/stats.hpp"

namespace sdnbuf::core {

struct SweepConfig {
  std::vector<double> rates_mbps;  // empty -> default_rates()
  int repetitions = 20;
  // Worker threads for the (rate, repetition) fan-out. 1 = run inline on the
  // calling thread (the historical sequential path). Forced to 1 when the
  // base config carries an observer or capture, since those are single
  // shared sinks. Values above the cell count are clamped.
  int jobs = 1;
  ExperimentConfig base;
};

// 5, 10, ..., 100 Mbps — the paper's x-axis.
[[nodiscard]] std::vector<double> default_rates();

struct RatePoint {
  double rate_mbps = 0.0;
  // Each Summary aggregates one scalar across the repetitions at this rate.
  util::Summary to_controller_mbps;
  util::Summary to_switch_mbps;
  util::Summary controller_cpu_pct;
  util::Summary switch_cpu_pct;
  util::Summary bus_utilization_pct;
  util::Summary setup_ms;        // of per-run means
  util::Summary controller_ms;
  util::Summary switch_ms;
  util::Summary forwarding_ms;
  util::Summary buffer_avg_units;
  util::Summary buffer_max_units;
  util::Summary pkt_ins_sent;
  util::Summary full_frame_pkt_ins;
  // Pooled per-flow samples across repetitions (for max / spread claims).
  util::Summary pooled_setup_ms;
  util::Summary pooled_controller_ms;
  util::Summary pooled_switch_ms;
  util::Summary pooled_forwarding_ms;
  std::uint64_t undelivered_packets = 0;
};

struct SweepResult {
  std::string label;  // e.g. "no-buffer", "buffer-16", "flow-granularity"
  std::vector<RatePoint> points;

  // Mean across rates of a per-rate metric (the paper's "on average").
  [[nodiscard]] double overall_mean(
      const std::function<double(const RatePoint&)>& metric) const;
  [[nodiscard]] double overall_max(
      const std::function<double(const RatePoint&)>& metric) const;
};

using ProgressFn = std::function<void(double rate_mbps, int repetition)>;

// With jobs > 1 the progress callback fires from worker threads (serialized
// by an internal mutex) in completion-start order, not sweep order.
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config, std::string label,
                                    const ProgressFn& progress = nullptr);

// Exact (bitwise) equality across every Summary field of every point — the
// parallel determinism contract checked by tests and bench_simcore.
[[nodiscard]] bool bitwise_equal(const SweepResult& a, const SweepResult& b);

// Canonical CSV serialization of a sweep (full precision, one row per
// rate). Used to assert that parallel and sequential sweeps produce
// byte-identical CSV output.
void write_csv(const SweepResult& result, std::ostream& out);

}  // namespace sdnbuf::core

// Many-switch fabric testbed: N switches wired per a `topo::Topology`, one
// controller managing all of them over per-switch control channels.
//
//   hosts -- [edge/leaf/...] -- fabric links --            (data plane)
//                \    |    /
//                 controller (one channel per switch)      (control plane)
//
// This generalizes the hand-wired ChainTestbed (now a thin wrapper over
// `topo::make_chain`) to arbitrary validated fabrics: per-switch port maps
// come straight from the topology, forwarding decisions from the seeded ECMP
// `topo::Router`, and the controller can answer misses per hop (the paper's
// reactive model multiplied across the path) or pre-install the whole path
// on the first packet_in of a flow.
//
// Per-switch observability: every switch, channel and the controller accept
// their own `verify::InvariantObserver`, so fabric runs can keep one
// invariant registry per switch (xids and buffer_ids are per-switch
// namespaces and would collide in a shared registry). Packets crossing a
// switch-to-switch link count as delivered by the sender's registry and
// injected into the receiver's, which keeps each registry's conservation
// closed locally.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "controller/controller.hpp"
#include "host/sink.hpp"
#include "net/link.hpp"
#include "obs/fabric_observatory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "openflow/channel.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "switchd/switch.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"
#include "util/stats.hpp"
#include "verify/invariants.hpp"

namespace sdnbuf::core {

// The forwarding application driving the fabric's controller.
enum class FabricRouting {
  // Classic MAC learning with flooding — only safe on loop-free topologies
  // (the chain); kept for ChainTestbed compatibility.
  L2Learning,
  // topo::Router consulted per packet_in; every switch on the path misses
  // once per flow (reactive per-hop setup).
  TopologyPerHop,
  // topo::Router walked once per flow; downstream rules pre-installed before
  // the first packet is released (controller full-path installation).
  TopologyFullPath,
};

[[nodiscard]] const char* fabric_routing_name(FabricRouting routing);

// One data-plane link with a fault schedule: the duplex link at
// `link_index` (index into topology.links()) drops in-flight frames during
// the schedule's outage windows, and both endpoint switches flip the
// matching port down/up at the window boundaries (host endpoints have no
// switch-side port to flip and are skipped).
struct LinkFaultSpec {
  std::size_t link_index = 0;
  net::LinkFaultSchedule schedule;
};

// One switch crash window: at `crash_at` the switch loses its flow table,
// buffers and control-channel state; at `restart_at` it comes back empty and
// re-handshakes with the controller over PR 2's hello machinery.
struct SwitchCrashSpec {
  unsigned switch_index = 0;
  sim::SimTime crash_at;
  sim::SimTime restart_at;
};

struct FabricConfig {
  topo::Topology topology;  // must pass validate()
  FabricRouting routing = FabricRouting::TopologyPerHop;
  sw::SwitchConfig switch_config;  // template; name/datapath_id set per switch
  ctrl::ControllerConfig controller_config;
  double host_link_mbps = 100.0;
  double inter_switch_mbps = 100.0;
  sim::SimTime link_delay = sim::SimTime::microseconds(20);
  double control_link_mbps = 1000.0;
  sim::SimTime control_link_delay = sim::SimTime::microseconds(300);
  std::uint64_t seed = 1;
  // Shard count for the parallel engine. 0 or 1 builds the fabric on a single
  // event queue (the legacy sequential Simulator — byte-identical to builds
  // that predate sharding). With n >= 2 shards, shard 0 holds the controller
  // and every switch lands on shard 1 + (i % (n-1)); hosts live with their
  // edge switch so access links never cross shards. Determinism contract:
  // results at a fixed shard count are bit-identical across repeats and
  // thread counts; different shard counts agree on the delivered multiset.
  unsigned shards = 0;
  // Worker threads for the sharded engine (ignored when shards <= 1). Any
  // value yields bit-identical results; > 1 adds wall-clock parallelism.
  unsigned shard_threads = 1;
  // Per-switch invariant observers: empty (no checking) or exactly one entry
  // per switch, indexed by switch index. Owned by the caller.
  std::vector<verify::InvariantObserver*> observers;
  // Data-plane fault plane — both empty by default, and a fault-free
  // configuration is byte-identical to one built before the fault plane
  // existed (schedules attach after construction, arming no events).
  std::vector<LinkFaultSpec> link_faults;
  std::vector<SwitchCrashSpec> switch_crashes;
  // In-fabric telemetry plane (DESIGN.md §15): drop-attribution ledger + INT
  // harvest. Owned by the caller; null = off. The observatory is a single
  // shared aggregate, so sharded runs with an observatory must execute on
  // one thread (run_fabric_experiment enforces this). Per-switch INT and
  // sampling knobs live in switch_config.
  obs::FabricObservatory* observatory = nullptr;
};

class FabricTestbed {
 public:
  explicit FabricTestbed(const FabricConfig& config);

  FabricTestbed(const FabricTestbed&) = delete;
  FabricTestbed& operator=(const FabricTestbed&) = delete;

  // Sends `packet` from host `host_index` up its access link into the fabric.
  void inject_from_host(unsigned host_index, const net::Packet& packet);

  // Shard 0's simulator: the only event queue when shards <= 1, and the
  // controller's shard otherwise. Sequential-era call sites keep working;
  // sharded drivers advance time through engine() instead.
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::ShardedSimulator& engine() { return engine_; }
  [[nodiscard]] unsigned n_shards() const { return engine_.n_shards(); }
  [[nodiscard]] unsigned shard_of_switch(unsigned index) const { return switch_shard_.at(index); }
  [[nodiscard]] unsigned shard_of_host(unsigned index) const { return host_shard_.at(index); }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] const topo::Router& router() const { return *router_; }
  [[nodiscard]] FabricRouting routing() const { return routing_; }

  // Frames lost to link outages, summed over both halves of every data link.
  [[nodiscard]] std::uint64_t total_link_fault_drops() const;
  // When the last armed fault (outage window or restart) clears; zero when
  // the configuration is fault-free. Recovery measurements start here.
  [[nodiscard]] sim::SimTime last_fault_clear() const { return last_fault_clear_; }

  [[nodiscard]] unsigned n_switches() const { return static_cast<unsigned>(switches_.size()); }
  [[nodiscard]] unsigned n_hosts() const { return static_cast<unsigned>(sinks_.size()); }
  [[nodiscard]] sw::Switch& switch_at(unsigned index) { return *switches_.at(index); }
  [[nodiscard]] of::Channel& channel_at(unsigned index) { return *channels_.at(index); }
  [[nodiscard]] net::DuplexLink& data_link_at(std::size_t index) { return *data_links_.at(index); }
  [[nodiscard]] ctrl::Controller& controller() { return *controller_; }
  [[nodiscard]] host::HostSink& sink_at(unsigned host_index) { return *sinks_.at(host_index); }

  // Sums across every switch / control channel.
  [[nodiscard]] std::uint64_t total_pkt_ins() const;
  [[nodiscard]] std::uint64_t total_control_bytes() const;
  [[nodiscard]] std::uint64_t total_control_msgs() const;
  [[nodiscard]] std::uint64_t total_delivered() const;
  [[nodiscard]] std::uint64_t total_duplicates() const;
  // Buffer occupancy summed over switches: time-weighted mean at `now` and
  // the sum of per-switch maxima.
  [[nodiscard]] double buffer_occupancy_mean_sum() const;
  [[nodiscard]] std::uint64_t buffer_occupancy_max_sum() const;
  // Shared-memory MMU accounting summed over switches (zero with MMU off):
  // admissions refused by the sharing policy, and per-switch peak pool
  // occupancies (cells).
  [[nodiscard]] std::uint64_t total_mmu_rejected() const;
  [[nodiscard]] std::uint64_t mmu_peak_pool_cells_sum() const;

  // Sorted multiset of (flow_id, seq_in_flow) payloads delivered to hosts
  // (untracked warm-up flows excluded) — the cross-mode equality check's
  // input.
  [[nodiscard]] std::vector<verify::PayloadId> delivered_payloads() const;
  // Injection-to-delivery latency of each flow's first packet (ms): the
  // fabric-scale flow setup delay measure. Per-shard sample sets merged in
  // shard order (deterministic at a fixed shard count).
  [[nodiscard]] util::Samples first_packet_ms() const;

  [[nodiscard]] sim::SimTime measurement_start() const { return measurement_start_; }

  // Attaches per-switch instrument bundles plus fabric-wide poll gauges to
  // `registry`. Histograms aggregate across switches; per-switch gauges are
  // prefixed with the switch name.
  void install_metrics(obs::MetricsRegistry& registry);

  // Stops all housekeeping so Simulator::run() can drain.
  void stop();

  void reset_statistics();

 private:
  void wire_ports();
  void arm_link_faults(const std::vector<LinkFaultSpec>& faults);
  void arm_switch_crashes(const std::vector<SwitchCrashSpec>& crashes);
  [[nodiscard]] sim::Simulator& shard_sim(unsigned shard) { return engine_.shard(shard); }

  // Delivery records are written by host-delivery closures, which run on the
  // delivering edge switch's shard — so each shard writes only its own slot
  // and the merge order is fixed by shard index, not thread interleaving.
  struct ShardDeliveries {
    std::vector<verify::PayloadId> delivered;
    util::Samples first_packet_ms;
  };

  sim::ShardedSimulator engine_;
  sim::Simulator& sim_;  // shard 0
  topo::Topology topo_;
  std::vector<unsigned> switch_shard_;  // shard index per switch
  std::vector<unsigned> host_shard_;    // shard index per host (= edge switch's)
  FabricRouting routing_;
  std::vector<std::unique_ptr<host::HostSink>> sinks_;
  std::unique_ptr<ctrl::Controller> controller_;
  std::unique_ptr<topo::Router> router_;
  std::vector<std::unique_ptr<net::DuplexLink>> data_links_;     // topology link order
  std::vector<std::unique_ptr<sw::Switch>> switches_;            // switch index order
  std::vector<std::unique_ptr<net::DuplexLink>> control_links_;  // per switch
  std::vector<std::unique_ptr<of::Channel>> channels_;           // per switch
  std::vector<verify::InvariantObserver*> observers_;            // empty or per switch
  // Telemetry plane: per-switch fate adapters into the shared observatory,
  // teed with the per-switch registries when both are present. chain_[i] is
  // the observer every wiring point for switch i actually talks to (null
  // when neither a registry nor an observatory is attached).
  obs::FabricObservatory* observatory_ = nullptr;
  std::vector<std::unique_ptr<obs::FateObserver>> fate_adapters_;
  std::vector<std::unique_ptr<obs::TeeObserver>> fate_tees_;
  std::vector<verify::InvariantObserver*> chain_;
  // Fault schedules live here because the links hold raw pointers into them.
  std::vector<std::unique_ptr<net::LinkFaultSchedule>> fault_schedules_;
  sim::SimTime last_fault_clear_;
  std::vector<ShardDeliveries> shard_deliveries_;  // one slot per shard
  sim::SimTime measurement_start_;
};

}  // namespace sdnbuf::core

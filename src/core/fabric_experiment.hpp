// One fabric-scale experiment: a traffic-matrix workload pushed through a
// FabricTestbed under one buffer mechanism and one route-install mode,
// producing the fabric analogues of the paper's control-load / setup-delay /
// occupancy metrics.
#pragma once

#include <cstdint>

#include "core/fabric_testbed.hpp"
#include "host/reliable_sender.hpp"
#include "host/traffic_matrix.hpp"
#include "util/stats.hpp"

namespace sdnbuf::core {

struct FabricExperimentConfig {
  topo::Topology topology;
  FabricRouting routing = FabricRouting::TopologyPerHop;

  // Mechanism under test.
  sw::BufferMode mode = sw::BufferMode::NoBuffer;
  std::size_t buffer_capacity = 256;

  // Traffic matrix (see TrafficMatrixConfig; host addressing is filled in
  // from the topology).
  host::TrafficPattern pattern = host::TrafficPattern::Permutation;
  unsigned incast_target = 0;
  unsigned incast_fanin = 0;
  double duration_s = 0.5;
  double flow_arrival_per_s = 400.0;
  double pareto_alpha = 1.3;
  std::uint32_t min_packets = 2;
  std::uint32_t max_packets = 50;
  double in_flow_rate_mbps = 20.0;
  std::uint32_t frame_size = 1000;

  std::uint64_t seed = 1;

  // Platform template (cost models, link speeds); mode/buffer_capacity/seed
  // above override the corresponding fields.
  FabricConfig fabric;

  // Extra simulated time allowed for the tail of the run to drain.
  sim::SimTime drain_timeout = sim::SimTime::seconds(5);

  // Per-switch invariant observers (forwarded into FabricConfig::observers;
  // empty = no checking). Call finalize() on the registries afterwards.
  std::vector<verify::InvariantObserver*> observers;

  // Optional metrics registry: per-switch instruments + fabric gauges are
  // installed before the run and polls cleared before return.
  obs::MetricsRegistry* metrics = nullptr;
  sim::SimTime metrics_interval = sim::SimTime::milliseconds(10);

  // Optional telemetry observatory (forwarded into FabricConfig). Sharded
  // runs with an observatory fall back to one worker thread — the ledger and
  // heatmap are shared aggregates.
  obs::FabricObservatory* observatory = nullptr;

  // --- data-plane fault plane (all inert by default) ---
  // Forwarded into FabricConfig; empty = fault-free, byte-identical runs.
  std::vector<LinkFaultSpec> link_faults;
  std::vector<SwitchCrashSpec> switch_crashes;
  // Closed-loop mode: every emitted packet goes through a ReliableSender
  // that retransmits on timeout until the destination sink acks the first
  // copy — loss becomes re-offered load instead of a silent gap.
  bool closed_loop = false;
  host::ReliableSenderConfig reliable;
  // Delivery timeline: first-copy deliveries per `delivery_bin` of simulated
  // time since the measurement start (zero = disabled). The failover bench
  // compares fault-run bins against a no-fault baseline to measure
  // degradation depth and time-to-recovery.
  sim::SimTime delivery_bin = sim::SimTime::zero();
};

struct FabricExperimentResult {
  // Workload accounting.
  std::uint64_t flows = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t duplicates = 0;

  // Control-path load, fabric-wide (all channels, both directions).
  std::uint64_t pkt_ins = 0;
  std::uint64_t full_frame_pkt_ins = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t pkt_outs = 0;
  std::uint64_t path_preinstalls = 0;
  std::uint64_t unroutable_drops = 0;
  std::uint64_t control_msgs = 0;
  std::uint64_t control_bytes = 0;
  double control_mbps = 0.0;  // control_bytes over the measurement window

  // Telemetry plane (DESIGN.md §15).
  std::uint64_t flow_samples = 0;      // sampled records sent by switches
  std::uint64_t flow_samples_seen = 0; // records received at the controller
  std::uint64_t int_stamps = 0;        // INT hop stamps applied fabric-wide

  // Flow setup delay at fabric scale: first-packet injection-to-delivery.
  util::Samples first_packet_ms;

  // Buffer units summed across switches (Fig. 8 analogue at fabric scale).
  double buffer_avg_units = 0.0;
  double buffer_max_units = 0.0;

  // Sorted delivered payload multiset for cross-mode equality checks.
  std::vector<verify::PayloadId> delivered;

  double duration_s = 0.0;
  bool drained = false;  // every emitted packet was delivered

  // --- fault-plane accounting (zero in fault-free runs) ---
  std::uint64_t link_fault_drops = 0;   // frames eaten by downed links
  std::uint64_t port_status_seen = 0;   // fault notifications at the controller
  std::uint64_t rules_invalidated = 0;  // flow_mod deletes from route repair
  std::uint64_t link_down_events = 0;
  std::uint64_t switch_crashes = 0;
  std::uint64_t buffer_units_expired = 0;  // summed over switches
  // Shared-memory MMU accounting summed over switches (zero with MMU off).
  std::uint64_t mmu_rejected = 0;
  std::uint64_t mmu_peak_pool_cells = 0;
  // Closed-loop accounting (zero when closed_loop is off).
  std::uint64_t unique_offered = 0;
  std::uint64_t unique_acked = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned = 0;
  // First-copy deliveries per delivery_bin since measurement start (empty
  // when delivery_bin is zero).
  std::vector<std::uint64_t> delivered_per_bin;
  sim::SimTime last_fault_clear;  // zero in fault-free runs
};

// Builds the fabric, runs the traffic matrix to completion (or the deadline)
// and harvests the metrics. Requires topology routing (the L2-learning mode
// floods, which is unsafe on looped fabrics).
[[nodiscard]] FabricExperimentResult run_fabric_experiment(const FabricExperimentConfig& config);

}  // namespace sdnbuf::core

#include "core/fabric_experiment.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "util/check.hpp"

namespace sdnbuf::core {

FabricExperimentResult run_fabric_experiment(const FabricExperimentConfig& config) {
  SDNBUF_CHECK_MSG(config.routing != FabricRouting::L2Learning,
                   "fabric experiments need topology routing (L2 flooding loops)");

  FabricConfig fc = config.fabric;
  fc.topology = config.topology;
  fc.routing = config.routing;
  fc.seed = config.seed;
  fc.switch_config.buffer_mode = config.mode;
  fc.switch_config.buffer_capacity = config.buffer_capacity;
  fc.observers = config.observers;
  fc.link_faults = config.link_faults;
  fc.switch_crashes = config.switch_crashes;
  fc.observatory = config.observatory;

  FabricTestbed bed(fc);
  const bool sharded = bed.n_shards() > 1;
  // Closed-loop retransmission state is shared mutable state on every host;
  // it has no shard-safe formulation yet, so it stays on the sequential
  // engine.
  SDNBUF_CHECK_MSG(!(sharded && config.closed_loop),
                   "closed-loop mode requires the sequential engine (shards <= 1)");
  if (sharded && (!config.observers.empty() || config.metrics != nullptr ||
                  config.observatory != nullptr ||
                  config.delivery_bin > sim::SimTime::zero())) {
    // Observers span shard boundaries (cross-switch handoffs touch two
    // registries) and metrics/delivery bins/the observatory write shared
    // aggregates. Keep the sharded schedule — windows and results are
    // bit-identical either way — but execute its windows on one thread.
    bed.engine().set_threads(1);
  }
  // Topology routing needs no learning warm-up; the measurement window opens
  // immediately.
  bed.reset_statistics();

  // Closed-loop plumbing: emitted packets go through the reliable sender,
  // and every sink's first-copy delivery acks (and, when a timeline is
  // requested, bins) the packet. Fault-free open-loop runs leave all of this
  // untouched — the sink callback is only installed when needed.
  std::optional<host::ReliableSender> sender;
  if (config.closed_loop) {
    sender.emplace(bed.sim(), config.reliable,
                   [&bed](unsigned src, const net::Packet& p) { bed.inject_from_host(src, p); });
  }
  std::vector<std::uint64_t> delivered_per_bin;
  const sim::SimTime bin = config.delivery_bin;
  const sim::SimTime bins_t0 = bed.sim().now();
  if (config.closed_loop || bin > sim::SimTime::zero()) {
    for (unsigned h = 0; h < bed.n_hosts(); ++h) {
      // The callback fires on the host's shard; bin by that shard's clock
      // (shard 0's clock can lag mid-window under the sharded engine).
      sim::Simulator* hsim = &bed.engine().shard(bed.shard_of_host(h));
      bed.sink_at(h).set_on_receive([&, hsim, bin, bins_t0](const net::Packet& p) {
        if (bin > sim::SimTime::zero()) {
          const auto idx = static_cast<std::size_t>((hsim->now() - bins_t0).ns() / bin.ns());
          if (idx >= delivered_per_bin.size()) delivered_per_bin.resize(idx + 1, 0);
          ++delivered_per_bin[idx];
        }
        if (sender) sender->acknowledge(p);
      });
    }
  }

  std::optional<obs::MetricsSnapshotter> snapshotter;
  if (config.metrics != nullptr) {
    config.metrics->set_meta("mechanism", sw::buffer_mode_name(config.mode));
    config.metrics->set_meta("pattern", host::traffic_pattern_name(config.pattern));
    config.metrics->set_meta("seed", std::to_string(config.seed));
    bed.install_metrics(*config.metrics);
    snapshotter.emplace(bed.sim(), *config.metrics, config.metrics_interval);
    snapshotter->start();
  }

  host::TrafficMatrixConfig tm;
  tm.pattern = config.pattern;
  for (unsigned h = 0; h < bed.n_hosts(); ++h) {
    tm.host_macs.push_back(topo::Topology::host_mac(h));
    tm.host_ips.push_back(topo::Topology::host_ip(h));
  }
  tm.incast_target = config.incast_target;
  tm.incast_fanin = config.incast_fanin;
  tm.duration_s = config.duration_s;
  tm.flow_arrival_per_s = config.flow_arrival_per_s;
  tm.pareto_alpha = config.pareto_alpha;
  tm.min_packets = config.min_packets;
  tm.max_packets = config.max_packets;
  tm.in_flow_rate_mbps = config.in_flow_rate_mbps;
  tm.frame_size = config.frame_size;

  std::optional<host::TrafficMatrixWorkload> gen;
  std::uint64_t flows_started = 0;
  std::uint64_t packets_pregenerated = 0;
  if (sharded) {
    // The workload chain never reads network state, so unroll it on a
    // scratch simulator (identical draws, identical packets and timestamps)
    // and schedule every emission directly on its source host's shard.
    host::PregeneratedTraffic pre =
        host::pregenerate_traffic_matrix(tm, config.seed * 7919u + 3);
    flows_started = pre.flows_started;
    packets_pregenerated = pre.emissions.size();
    const sim::SimTime start = bed.engine().now();
    for (host::PregeneratedEmission& e : pre.emissions) {
      const unsigned src = e.src_host;
      bed.engine()
          .shard(bed.shard_of_host(src))
          .schedule_at(start + e.when,
                       [&bed, src, p = e.packet]() { bed.inject_from_host(src, p); });
    }
  } else {
    gen.emplace(bed.sim(), tm, config.seed * 7919u + 3,
                [&bed, &sender](unsigned src, const net::Packet& p) {
                  if (sender) {
                    sender->offer(src, p);
                  } else {
                    bed.inject_from_host(src, p);
                  }
                });
    gen->start();
  }

  // Arrivals end at the horizon; the longest flow can keep pacing packets for
  // max_packets gaps after that. Only once emission is provably over does
  // "delivered == emitted" mean the run is done.
  const sim::SimTime per_packet_gap =
      sim::transmission_time(config.frame_size, config.in_flow_rate_mbps * 1e6);
  const sim::SimTime horizon = bed.sim().now() + sim::SimTime::from_seconds(config.duration_s);
  const sim::SimTime emission_done =
      horizon + per_packet_gap.scaled(1.5 * static_cast<double>(config.max_packets) + 1.0);
  const sim::SimTime deadline = emission_done + config.drain_timeout;

  const sim::SimTime slice = sim::SimTime::milliseconds(20);
  const auto emitted = [&]() { return gen ? gen->packets_emitted() : packets_pregenerated; };
  const auto now = [&]() { return sharded ? bed.engine().now() : bed.sim().now(); };
  const auto advance = [&](sim::SimTime t) {
    if (sharded) {
      bed.engine().run_until(t);
    } else {
      bed.sim().run_until(t);
    }
  };
  const auto work_remains = [&]() {
    if (sender) return sender->outstanding() > 0;
    return bed.total_delivered() < emitted();
  };
  while (now() < deadline && (now() < emission_done || work_remains())) {
    advance(std::min(now() + slice, deadline));
  }
  // Let in-flight control traffic settle, then stop housekeeping and drain.
  advance(now() + sim::SimTime::milliseconds(50));
  if (snapshotter) snapshotter->stop();
  if (sender) sender->stop();
  bed.stop();
  if (sharded) {
    bed.engine().run();
  } else {
    bed.sim().run();
  }
  if (config.metrics != nullptr) {
    config.metrics->take_snapshot(bed.sim().now());  // final row, post-drain
    config.metrics->clear_polls();                   // testbed dies with this frame
  }

  const sim::SimTime t0 = bed.measurement_start();
  const sim::SimTime t1 = bed.sim().now();

  if (gen) {
    flows_started = gen->flows_started();
  }

  FabricExperimentResult r;
  r.flows = flows_started;
  r.packets_sent = emitted();
  r.packets_delivered = bed.total_delivered();
  r.duplicates = bed.total_duplicates();
  r.pkt_ins = bed.total_pkt_ins();
  const ctrl::ControllerCounters& cc = bed.controller().counters();
  r.full_frame_pkt_ins = cc.full_frame_pkt_ins;
  r.flow_mods = cc.flow_mods_sent;
  r.pkt_outs = cc.pkt_outs_sent;
  r.path_preinstalls = cc.path_preinstalls;
  r.unroutable_drops = cc.unroutable_drops;
  r.control_msgs = bed.total_control_msgs();
  r.control_bytes = bed.total_control_bytes();
  r.duration_s = (t1 - t0).sec();
  if (r.duration_s > 0) {
    r.control_mbps = static_cast<double>(r.control_bytes) * 8.0 / r.duration_s / 1e6;
  }
  r.first_packet_ms = bed.first_packet_ms();
  r.buffer_avg_units = bed.buffer_occupancy_mean_sum();
  r.buffer_max_units = static_cast<double>(bed.buffer_occupancy_max_sum());
  r.delivered = bed.delivered_payloads();

  r.link_fault_drops = bed.total_link_fault_drops();
  r.port_status_seen = cc.port_status_seen;
  r.rules_invalidated = cc.rules_invalidated;
  r.link_down_events = cc.link_down_events;
  for (unsigned i = 0; i < bed.n_switches(); ++i) {
    r.switch_crashes += bed.switch_at(i).counters().crashes;
    r.buffer_units_expired += bed.switch_at(i).counters().buffer_units_expired;
    r.flow_samples += bed.switch_at(i).counters().flow_samples_sent;
    r.int_stamps += bed.switch_at(i).counters().int_stamps_applied;
  }
  r.mmu_rejected = bed.total_mmu_rejected();
  r.mmu_peak_pool_cells = bed.mmu_peak_pool_cells_sum();
  r.flow_samples_seen = cc.flow_samples_seen;
  // Fold the telemetry event log inside the measured run — the collector
  // cost is part of what the overhead benchmark charges telemetry for.
  if (config.observatory != nullptr) config.observatory->flush();
  r.delivered_per_bin = std::move(delivered_per_bin);
  r.last_fault_clear = bed.last_fault_clear();
  if (sender) {
    const host::ReliableSenderCounters& sc = sender->counters();
    r.unique_offered = sc.offered;
    r.unique_acked = sc.acked;
    r.retransmits = sc.retransmits;
    r.abandoned = sc.abandoned;
    // Closed loop: drained means every offered packet was finally delivered
    // (spurious-retransmit duplicates at the sinks are expected and benign).
    r.drained = sc.acked == sc.offered && sender->outstanding() == 0;
  } else {
    r.drained = r.packets_delivered == r.packets_sent && r.duplicates == 0;
  }
  return r;
}

}  // namespace sdnbuf::core

#include "core/experiment.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace sdnbuf::core {

namespace {

// Registers the per-component instruments and poll gauges into `registry`
// and installs the instrument bundles. Called after warm-up so histograms
// record only the measurement window. Poll callbacks reference the testbed;
// the caller clears them (clear_polls) before the testbed dies.
void install_metrics(obs::MetricsRegistry& registry, Testbed& bed,
                     const ExperimentConfig& config) {
  registry.set_meta("mechanism", sw::buffer_mode_name(config.mode));
  registry.set_meta("rate_mbps", util::format_double(config.rate_mbps, 6));
  registry.set_meta("seed", std::to_string(config.seed));
  registry.set_meta("snapshot_interval_ms",
                    util::format_double(config.metrics_interval.ms(), 6));

  obs::SwitchInstruments si;
  si.pkt_in_bytes = &registry.histogram("switch.pkt_in_bytes", 16.0);
  bed.ovs().set_instruments(si);

  obs::BufferInstruments bi;
  bi.residency_ms = &registry.histogram("buffer.residency_ms", 0.125);
  bed.ovs().set_buffer_instruments(bi);

  obs::ChannelInstruments chi;
  chi.wire_bytes_to_controller = &registry.histogram("channel.wire_bytes_to_controller", 16.0);
  chi.wire_bytes_to_switch = &registry.histogram("channel.wire_bytes_to_switch", 16.0);
  bed.channel().set_instruments(chi);

  obs::ControllerInstruments ci;
  ci.pkt_in_bytes = &registry.histogram("controller.pkt_in_bytes", 16.0);
  bed.controller().set_instruments(ci);

  obs::EgressInstruments ei;
  ei.queue_depth = &registry.histogram("egress.queue_depth", 1.0);
  bed.ovs().port_scheduler(Testbed::kHost1Port).set_instruments(ei);
  bed.ovs().port_scheduler(Testbed::kHost2Port).set_instruments(ei);

  // Poll gauges: sampled only at snapshot instants, so the repo's existing
  // statistics become time series at zero hot-path cost. The occupancy
  // columns are Fig. 8 / Fig. 13 over time instead of end-of-run scalars.
  registry.register_poll("buffer.units_in_use", [&bed]() {
    const auto* occ = bed.ovs().buffer_occupancy();
    return occ == nullptr ? 0.0 : static_cast<double>(occ->current());
  });
  registry.register_poll("buffer.occupancy_twa", [&bed]() {
    const auto* occ = bed.ovs().buffer_occupancy();
    return occ == nullptr ? 0.0 : occ->time_weighted_mean(bed.sim().now());
  });
  registry.register_poll("buffer.occupancy_max", [&bed]() {
    const auto* occ = bed.ovs().buffer_occupancy();
    return occ == nullptr ? 0.0 : static_cast<double>(occ->max());
  });
  registry.register_poll("switch.pkt_ins_sent", [&bed]() {
    return static_cast<double>(bed.ovs().counters().pkt_ins_sent);
  });
  registry.register_poll("channel.to_controller_msgs", [&bed]() {
    return static_cast<double>(bed.channel().to_controller_counters().total_count());
  });
  registry.register_poll("sink.packets_delivered", [&bed]() {
    return static_cast<double>(bed.sink2().packets_received());
  });
  // True per-port high-water marks (updated at every enqueue), alongside the
  // polled egress.queue_depth gauge which can alias past transient bursts.
  registry.register_poll("egress.highwater_packets.port1", [&bed]() {
    return static_cast<double>(bed.ovs().port_scheduler(Testbed::kHost1Port).highwater_packets());
  });
  registry.register_poll("egress.highwater_packets.port2", [&bed]() {
    return static_cast<double>(bed.ovs().port_scheduler(Testbed::kHost2Port).highwater_packets());
  });
  if (config.observatory != nullptr) config.observatory->install_metrics(registry);
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  TestbedConfig tb = config.testbed;
  tb.seed = config.seed;
  tb.switch_config.buffer_mode = config.mode;
  tb.switch_config.buffer_capacity = config.buffer_capacity;
  tb.observer = config.observer;

  // The tracer rides the same observation points as the invariant checker;
  // tee only when both are wanted (the tee lives on this frame, outliving
  // the bed) — a lone tracer is wired directly, skipping a dispatch hop.
  obs::TeeObserver tee{config.observer, config.tracer};
  if (config.tracer != nullptr) {
    tb.observer = config.observer != nullptr ? static_cast<verify::InvariantObserver*>(&tee)
                                             : config.tracer;
  }

  // Drop-attribution ledger: a FateObserver adapter joins the observer chain
  // (injections + terminal fates); deliveries arrive via the sink taps below
  // so duplicates collapse to one first-copy delivery per payload.
  std::optional<obs::FateObserver> fate;
  std::optional<obs::TeeObserver> fate_tee;
  if (config.observatory != nullptr) {
    fate.emplace(*config.observatory, "s1", /*endpoint_injections=*/true);
    if (tb.observer != nullptr) {
      fate_tee.emplace(tb.observer, &*fate);
      tb.observer = &*fate_tee;
    } else {
      tb.observer = &*fate;
    }
  }

  Testbed bed{tb};
  if (config.observatory != nullptr) {
    auto tap = [obsy = config.observatory](const net::Packet& p, sim::SimTime now) {
      obsy->on_delivered(p, now);
    };
    bed.sink1().set_telemetry_tap(tap);
    bed.sink2().set_telemetry_tap(tap);
  }
  if (config.capture != nullptr) config.capture->attach(bed.channel());
  if (config.profiler != nullptr) bed.sim().set_profile_sink(config.profiler);
  bed.warm_up();

  std::optional<obs::MetricsSnapshotter> snapshotter;
  if (config.metrics != nullptr) {
    install_metrics(*config.metrics, bed, config);
    snapshotter.emplace(bed.sim(), *config.metrics, config.metrics_interval);
    snapshotter->start();
  }

  host::TrafficConfig traffic;
  traffic.rate_mbps = config.rate_mbps;
  traffic.frame_size = config.frame_size;
  traffic.n_flows = config.n_flows;
  traffic.packets_per_flow = config.packets_per_flow;
  traffic.order = config.order;
  traffic.batch_size = config.batch_size;
  traffic.tcp_flow_fraction = config.tcp_flow_fraction;
  traffic.src_mac = bed.host1_mac();
  traffic.dst_mac = bed.host2_mac();
  traffic.src_ip_base = bed.host1_ip();
  traffic.dst_ip = bed.host2_ip();

  host::TrafficGenerator gen{bed.sim(), traffic, config.seed * 7919u + 3,
                             [&bed](const net::Packet& p) { bed.inject_from_host1(p); }};
  gen.start();

  const std::uint64_t expected = gen.total_packets();
  const sim::SimTime send_duration = gen.nominal_gap().scaled(static_cast<double>(expected));
  const sim::SimTime deadline =
      bed.sim().now() + send_duration.scaled(1.5) + config.drain_timeout;

  // Run in slices so we can stop as soon as everything is delivered.
  const sim::SimTime slice = sim::SimTime::milliseconds(20);
  while (bed.sim().now() < deadline && bed.sink2().packets_received() < expected) {
    bed.sim().run_until(std::min(bed.sim().now() + slice, deadline));
  }
  // Let in-flight control traffic settle, then stop housekeeping and drain.
  // The snapshotter's recurring tick must stop too, or the drain never runs
  // out of events.
  bed.sim().run_until(bed.sim().now() + sim::SimTime::milliseconds(50));
  if (snapshotter) snapshotter->stop();
  bed.ovs().stop();
  bed.controller().stop();
  bed.sim().run();
  if (config.tracer != nullptr) config.tracer->finalize(bed.sim().now());
  if (config.metrics != nullptr) {
    config.metrics->take_snapshot(bed.sim().now());  // final row, post-drain
    config.metrics->clear_polls();                   // testbed dies with this frame
  }

  const sim::SimTime t0 = bed.measurement_start();
  const sim::SimTime t1 =
      bed.sink2().last_arrival() > t0 ? bed.sink2().last_arrival() : bed.sim().now();

  ExperimentResult r;
  r.duration_s = (t1 - t0).sec();
  r.to_controller_mbps = bed.to_controller_link().tap().load_mbps(t0, t1);
  r.to_switch_mbps = bed.to_switch_link().tap().load_mbps(t0, t1);
  r.controller_cpu_pct = bed.controller().cpu().utilization_percent(t0, t1);
  r.switch_cpu_pct = bed.ovs().cpu().utilization_percent(t0, t1);
  r.bus_utilization_pct = bed.ovs().bus().utilization_percent(t0, t1);

  const auto delays = bed.recorder().finalize();
  r.setup_ms = delays.setup_ms;
  r.controller_ms = delays.controller_ms;
  r.switch_ms = delays.switch_ms;
  r.forwarding_ms = delays.forwarding_ms;
  r.flows_complete = delays.flows_complete;

  if (const auto* occ = bed.ovs().buffer_occupancy(); occ != nullptr) {
    r.buffer_avg_units = occ->time_weighted_mean(t1);
    r.buffer_max_units = static_cast<double>(occ->max());
  }

  const auto& sc = bed.ovs().counters();
  r.pkt_ins_sent = sc.pkt_ins_sent;
  r.full_frame_pkt_ins = sc.full_frame_pkt_ins;
  r.resend_pkt_ins = sc.resend_pkt_ins;
  const auto& cc = bed.controller().counters();
  r.flow_mods = cc.flow_mods_sent;
  r.pkt_outs = cc.pkt_outs_sent;
  r.stats_requests = cc.stats_requests_sent;
  r.pkt_ins_dropped = cc.pkt_ins_dropped;
  r.int_stamps = sc.int_stamps_applied;
  if (const auto* mmu = bed.ovs().mmu(); mmu != nullptr) {
    r.mmu_rejected = mmu->total_rejected();
    r.mmu_peak_pool_cells = mmu->peak_pool_cells();
  }
  // Fold the telemetry event log inside the measured run — the collector
  // cost is part of what the overhead benchmark charges telemetry for.
  if (config.observatory != nullptr) config.observatory->flush();

  const auto& up = bed.channel().to_controller_counters();
  const auto& down = bed.channel().to_switch_counters();
  r.to_controller_msgs = up.total_count();
  r.to_switch_msgs = down.total_count();
  r.to_controller_bytes = up.total_bytes();
  r.to_switch_bytes = down.total_bytes();
  r.echo_msgs = up.count(of::MsgType::EchoRequest) + up.count(of::MsgType::EchoReply) +
                down.count(of::MsgType::EchoRequest) + down.count(of::MsgType::EchoReply);
  r.hello_msgs = up.count(of::MsgType::Hello) + down.count(of::MsgType::Hello);
  r.error_msgs = up.count(of::MsgType::Error) + down.count(of::MsgType::Error);
  r.flow_samples = up.count(of::MsgType::Vendor);

  const auto& fc = bed.channel().fault_counters();
  r.channel_lost_msgs = fc.total_lost();
  r.channel_duplicated_msgs = fc.total_duplicated();
  r.channel_outage_dropped_msgs = fc.total_outage_dropped();
  r.connection_losses = sc.connection_losses;
  r.reconnects = sc.reconnects;
  r.failsecure_dropped = sc.failsecure_dropped;
  r.standalone_forwarded = sc.standalone_forwarded;
  r.resend_cap_expired = sc.resend_cap_expired;
  r.reconcile_rerequests = sc.reconcile_rerequests;
  r.reconcile_expired = sc.reconcile_expired;
  if (bed.ovs().last_restored_at() > t0) {
    r.last_reconnect_s = (bed.ovs().last_restored_at() - t0).sec();
  }

  r.packets_sent = gen.packets_emitted();
  r.packets_delivered = bed.sink2().packets_received();
  r.duplicates = bed.sink2().duplicate_packets();
  r.drained = r.packets_delivered >= expected;
  return r;
}

std::string summarize(const ExperimentResult& r) {
  std::ostringstream os;
  os << "load(up/down)=" << util::format_double(r.to_controller_mbps, 3) << '/'
     << util::format_double(r.to_switch_mbps, 3) << " Mbps"
     << "  cpu(sw/ctrl)=" << util::format_double(r.switch_cpu_pct, 1) << "%/"
     << util::format_double(r.controller_cpu_pct, 1) << '%'
     << "  setup=" << util::format_double(r.setup_ms.mean(), 3) << " ms"
     << "  pkt_in=" << r.pkt_ins_sent << " (full " << r.full_frame_pkt_ins << ")"
     << "  delivered=" << r.packets_delivered << '/' << r.packets_sent;
  if (r.buffer_max_units > 0) {
    os << "  buf(avg/max)=" << util::format_double(r.buffer_avg_units, 1) << '/'
       << util::format_double(r.buffer_max_units, 0);
  }
  if (r.channel_lost_msgs + r.channel_duplicated_msgs + r.channel_outage_dropped_msgs > 0) {
    os << "  chan(lost/dup/outage)=" << r.channel_lost_msgs << '/' << r.channel_duplicated_msgs
       << '/' << r.channel_outage_dropped_msgs;
  }
  if (r.connection_losses > 0) {
    os << "  conn(losses/reconnects)=" << r.connection_losses << '/' << r.reconnects;
  }
  if (r.echo_msgs > 0) os << "  echo=" << r.echo_msgs;
  return os.str();
}

}  // namespace sdnbuf::core

#include "core/chain_testbed.hpp"

#include "metrics/delay_recorder.hpp"
#include "util/check.hpp"

namespace sdnbuf::core {

FabricConfig ChainTestbed::to_fabric_config(const ChainConfig& config) {
  SDNBUF_CHECK_MSG(config.n_switches >= 1, "a chain needs at least one switch");
  FabricConfig fc;
  fc.topology = topo::make_chain(config.n_switches);
  fc.routing = FabricRouting::L2Learning;
  fc.switch_config = config.switch_config;
  fc.controller_config = config.controller_config;
  fc.host_link_mbps = config.host_link_mbps;
  fc.inter_switch_mbps = config.inter_switch_mbps;
  fc.link_delay = config.link_delay;
  fc.control_link_mbps = config.control_link_mbps;
  fc.control_link_delay = config.control_link_delay;
  fc.seed = config.seed;
  return fc;
}

ChainTestbed::ChainTestbed(const ChainConfig& config) : fabric_(to_fabric_config(config)) {}

void ChainTestbed::warm_up() {
  // Standard L2 learning chatter end to end, with retries (fault injection
  // may drop requests). Host2 first so every switch learns its location,
  // then Host1.
  sim::Simulator& sim = fabric_.sim();
  ctrl::Controller& controller = fabric_.controller();
  std::uint16_t seq = 0;
  auto learned_everywhere = [this, &controller](const net::MacAddress& mac) {
    for (unsigned i = 0; i < n_switches(); ++i) {
      if (!controller.lookup_mac(mac, i + 1)) return false;
    }
    return true;
  };
  for (int attempt = 0; attempt < 50 && !learned_everywhere(host2_mac()); ++attempt) {
    net::Packet p = net::make_udp_packet(host2_mac(), host1_mac(), host2_ip(), host1_ip(),
                                         static_cast<std::uint16_t>(99 + seq++), 99, 100);
    p.flow_id = metrics::kUntrackedFlow;
    inject_from_host2(p);
    sim.run_until(sim.now() + sim::SimTime::milliseconds(60));
  }
  for (int attempt = 0; attempt < 50 && !learned_everywhere(host1_mac()); ++attempt) {
    net::Packet p = net::make_udp_packet(host1_mac(), host2_mac(), host1_ip(), host2_ip(),
                                         static_cast<std::uint16_t>(99 + seq++), 99, 100);
    p.flow_id = metrics::kUntrackedFlow;
    inject_from_host1(p);
    sim.run_until(sim.now() + sim::SimTime::milliseconds(60));
  }
  sim.run_until(sim.now() + sim::SimTime::milliseconds(100));
  SDNBUF_CHECK_MSG(learned_everywhere(host1_mac()) && learned_everywhere(host2_mac()),
                   "chain warm-up failed to teach every switch both host locations");
  reset_statistics();
}

}  // namespace sdnbuf::core

#include "core/chain_testbed.hpp"

#include "util/check.hpp"

namespace sdnbuf::core {

ChainTestbed::ChainTestbed(const ChainConfig& config) : sink1_(sim_), sink2_(sim_) {
  SDNBUF_CHECK_MSG(config.n_switches >= 1, "a chain needs at least one switch");

  controller_ = std::make_unique<ctrl::Controller>(sim_, config.controller_config,
                                                   config.seed * 40503u + 1);

  // Data links: host1 <-> sw0, sw(i-1) <-> sw(i), sw(n-1) <-> host2.
  for (unsigned i = 0; i <= config.n_switches; ++i) {
    const bool edge = i == 0 || i == config.n_switches;
    const double mbps = edge ? config.host_link_mbps : config.inter_switch_mbps;
    data_links_.push_back(std::make_unique<net::DuplexLink>(
        sim_, "data" + std::to_string(i), mbps * 1e6, config.link_delay));
  }

  for (unsigned i = 0; i < config.n_switches; ++i) {
    sw::SwitchConfig sw_config = config.switch_config;
    sw_config.name = "sw" + std::to_string(i + 1);
    sw_config.datapath_id = i + 1;
    switches_.push_back(
        std::make_unique<sw::Switch>(sim_, sw_config, config.seed * 2654435761u + i));
    control_links_.push_back(std::make_unique<net::DuplexLink>(
        sim_, "ctl" + std::to_string(i + 1), config.control_link_mbps * 1e6,
        config.control_link_delay));
    channels_.push_back(std::make_unique<of::Channel>(sim_, control_links_[i]->forward(),
                                                      control_links_[i]->reverse()));
    switches_[i]->connect(*channels_[i]);
    controller_->connect(*channels_[i], i + 1);
  }

  // Egress wiring. Leftward out of switch i: data_links_[i].reverse()
  // delivers to switch i-1 (right port) or to Host1's sink. Rightward out of
  // switch i: data_links_[i+1].forward() delivers to switch i+1 (left port)
  // or to Host2's sink.
  for (unsigned i = 0; i < config.n_switches; ++i) {
    sw::Switch* left_neighbour = i > 0 ? switches_[i - 1].get() : nullptr;
    switches_[i]->attach_port(kLeftPort, data_links_[i]->reverse(),
                              [this, left_neighbour](const net::Packet& p) {
                                if (left_neighbour != nullptr) {
                                  left_neighbour->receive(kRightPort, p);
                                } else {
                                  sink1_.receive(p);
                                }
                              });
  }
  for (unsigned i = 0; i < config.n_switches; ++i) {
    sw::Switch* right_neighbour =
        i + 1 < config.n_switches ? switches_[i + 1].get() : nullptr;
    switches_[i]->attach_port(kRightPort, data_links_[i + 1]->forward(),
                              [this, right_neighbour](const net::Packet& p) {
                                if (right_neighbour != nullptr) {
                                  right_neighbour->receive(kLeftPort, p);
                                } else {
                                  sink2_.receive(p);
                                }
                              });
  }

  for (auto& s : switches_) s->start();
  controller_->start();
}

void ChainTestbed::inject_from_host1(const net::Packet& packet) {
  data_links_.front()->forward().send(
      packet.frame_size,
      [this, packet]() { switches_.front()->receive(kLeftPort, packet); });
}

void ChainTestbed::inject_from_host2(const net::Packet& packet) {
  data_links_.back()->reverse().send(
      packet.frame_size,
      [this, packet]() { switches_.back()->receive(kRightPort, packet); });
}

void ChainTestbed::warm_up() {
  // Standard L2 learning chatter end to end, with retries (fault injection
  // may drop requests). Host2 first so every switch learns its location,
  // then Host1.
  std::uint16_t seq = 0;
  auto learned_everywhere = [this](const net::MacAddress& mac) {
    for (unsigned i = 0; i < n_switches(); ++i) {
      if (!controller_->lookup_mac(mac, i + 1)) return false;
    }
    return true;
  };
  for (int attempt = 0; attempt < 50 && !learned_everywhere(host2_mac()); ++attempt) {
    net::Packet p = net::make_udp_packet(host2_mac(), host1_mac(), host2_ip(), host1_ip(),
                                         static_cast<std::uint16_t>(99 + seq++), 99, 100);
    p.flow_id = metrics::kUntrackedFlow;
    inject_from_host2(p);
    sim_.run_until(sim_.now() + sim::SimTime::milliseconds(60));
  }
  for (int attempt = 0; attempt < 50 && !learned_everywhere(host1_mac()); ++attempt) {
    net::Packet p = net::make_udp_packet(host1_mac(), host2_mac(), host1_ip(), host2_ip(),
                                         static_cast<std::uint16_t>(99 + seq++), 99, 100);
    p.flow_id = metrics::kUntrackedFlow;
    inject_from_host1(p);
    sim_.run_until(sim_.now() + sim::SimTime::milliseconds(60));
  }
  sim_.run_until(sim_.now() + sim::SimTime::milliseconds(100));
  SDNBUF_CHECK_MSG(learned_everywhere(host1_mac()) && learned_everywhere(host2_mac()),
                   "chain warm-up failed to teach every switch both host locations");
  reset_statistics();
}

std::uint64_t ChainTestbed::total_pkt_ins() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) n += s->counters().pkt_ins_sent;
  return n;
}

std::uint64_t ChainTestbed::total_control_bytes() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) {
    n += c->to_controller_counters().total_bytes() + c->to_switch_counters().total_bytes();
  }
  return n;
}

void ChainTestbed::stop() {
  for (auto& s : switches_) s->stop();
  controller_->stop();
}

void ChainTestbed::reset_statistics() {
  for (auto& link : data_links_) {
    link->forward().tap().reset();
    link->reverse().tap().reset();
  }
  for (auto& link : control_links_) {
    link->forward().tap().reset();
    link->reverse().tap().reset();
  }
  for (auto& channel : channels_) channel->reset_counters();
  for (auto& s : switches_) {
    s->cpu().reset_stats();
    s->bus().reset_stats();
    s->reset_counters();
    if (s->packet_buffer() != nullptr) s->packet_buffer()->occupancy().reset(sim_.now());
    if (s->flow_buffer() != nullptr) s->flow_buffer()->occupancy().reset(sim_.now());
  }
  controller_->cpu().reset_stats();
  controller_->reset_counters();
  sink1_.reset();
  sink2_.reset();
  measurement_start_ = sim_.now();
}

}  // namespace sdnbuf::core

#include "core/testbed.hpp"

#include "util/check.hpp"

namespace sdnbuf::core {

namespace {

constexpr std::uint16_t kWarmupPort = 99;

}  // namespace

Testbed::Testbed(const TestbedConfig& config) : sink1_(sim_), sink2_(sim_) {
  host1_link_ = std::make_unique<net::DuplexLink>(sim_, "host1", config.host_link_mbps * 1e6,
                                                  config.host_link_delay);
  host2_link_ = std::make_unique<net::DuplexLink>(sim_, "host2", config.host_link_mbps * 1e6,
                                                  config.host_link_delay);
  control_link_ = std::make_unique<net::DuplexLink>(
      sim_, "control", config.control_link_mbps * 1e6, config.control_link_delay);

  channel_ = std::make_unique<of::Channel>(sim_, control_link_->forward(),
                                           control_link_->reverse());

  switch_ = std::make_unique<sw::Switch>(sim_, config.switch_config, config.seed * 2654435761u);
  controller_ =
      std::make_unique<ctrl::Controller>(sim_, config.controller_config, config.seed * 40503u + 1);
  observer_ = config.observer;
  fault_profile_ = config.fault_profile;
  seed_ = config.seed;

  // Egress wiring: the switch's port N link delivers to host N's sink.
  switch_->attach_port(kHost1Port, host1_link_->reverse(), [this](const net::Packet& p) {
    if (observer_ != nullptr) observer_->on_packet_delivered(p, sim_.now());
    sink1_.receive(p);
  });
  switch_->attach_port(kHost2Port, host2_link_->reverse(), [this](const net::Packet& p) {
    if (observer_ != nullptr) observer_->on_packet_delivered(p, sim_.now());
    sink2_.receive(p);
  });

  switch_->connect(*channel_);
  controller_->connect(*channel_);
  if (observer_ != nullptr) {
    switch_->set_invariant_observer(observer_);
    controller_->set_invariant_observer(observer_);
    channel_->set_verify_tap([obs = observer_](bool to_controller, const of::OfMessage& msg,
                                               std::size_t, sim::SimTime when) {
      obs->on_control_message(to_controller, msg, when);
    });
    channel_->set_fault_tap([obs = observer_](bool to_controller, const of::OfMessage& msg,
                                              of::FaultKind kind, sim::SimTime when) {
      obs->on_channel_fault(to_controller, msg, kind, when);
    });
  }
  switch_->set_delay_recorder(&recorder_);
  sink1_.set_delay_recorder(&recorder_);
  sink2_.set_delay_recorder(&recorder_);
  switch_->start();
  controller_->start();
}

net::MacAddress Testbed::host1_mac() const { return net::MacAddress::from_index(1); }
net::MacAddress Testbed::host2_mac() const { return net::MacAddress::from_index(2); }
net::Ipv4Address Testbed::host1_ip() const { return net::Ipv4Address::from_octets(10, 1, 0, 1); }
net::Ipv4Address Testbed::host2_ip() const { return net::Ipv4Address::from_octets(10, 2, 0, 1); }

void Testbed::inject_from_host1(const net::Packet& packet) {
  if (observer_ != nullptr) observer_->on_packet_injected(packet, sim_.now());
  host1_link_->forward().send(packet.frame_size,
                              [this, packet]() { switch_->receive(kHost1Port, packet); });
}

void Testbed::inject_from_host2(const net::Packet& packet) {
  if (observer_ != nullptr) observer_->on_packet_injected(packet, sim_.now());
  host2_link_->forward().send(packet.frame_size,
                              [this, packet]() { switch_->receive(kHost2Port, packet); });
}

void Testbed::warm_up() {
  // Host2 speaks first: its packet floods (host1 still unknown) and teaches
  // the controller host2@port2; then host1's packet teaches host1@port1 and
  // is forwarded directly. Mirrors ARP-style startup chatter — including
  // retries, so warm-up also succeeds under controller fault injection.
  std::uint16_t seq = 0;
  for (int attempt = 0; attempt < 50 && !controller_->lookup_mac(host2_mac()); ++attempt) {
    net::Packet p2 = net::make_udp_packet(host2_mac(), host1_mac(), host2_ip(), host1_ip(),
                                          static_cast<std::uint16_t>(kWarmupPort + seq++),
                                          kWarmupPort, 100);
    p2.flow_id = metrics::kUntrackedFlow;
    inject_from_host2(p2);
    sim_.run_until(sim_.now() + sim::SimTime::milliseconds(50));
  }
  for (int attempt = 0; attempt < 50 && !controller_->lookup_mac(host1_mac()); ++attempt) {
    net::Packet p1 = net::make_udp_packet(host1_mac(), host2_mac(), host1_ip(), host2_ip(),
                                          static_cast<std::uint16_t>(kWarmupPort + seq++),
                                          kWarmupPort, 100);
    p1.flow_id = metrics::kUntrackedFlow;
    inject_from_host1(p1);
    sim_.run_until(sim_.now() + sim::SimTime::milliseconds(50));
  }
  sim_.run_until(sim_.now() + sim::SimTime::milliseconds(100));

  SDNBUF_CHECK_MSG(controller_->lookup_mac(host1_mac()).has_value() &&
                       controller_->lookup_mac(host2_mac()).has_value(),
                   "warm-up failed to teach the controller both host locations");
  reset_statistics();

  // Arm channel faults only now: warm-up always runs over a clean channel.
  // Configured outage windows are relative to the measurement start.
  if (fault_profile_.any()) {
    of::FaultProfile armed = fault_profile_;
    for (auto& w : armed.outages) {
      w.start = w.start + measurement_start_;
      w.end = w.end + measurement_start_;
    }
    channel_->set_fault_profile(armed, seed_ * 0x9e3779b97f4a7c15ULL + 0xfa017ULL);
  }
}

void Testbed::reset_statistics() {
  control_link_->forward().tap().reset();
  control_link_->reverse().tap().reset();
  host1_link_->forward().tap().reset();
  host1_link_->reverse().tap().reset();
  host2_link_->forward().tap().reset();
  host2_link_->reverse().tap().reset();
  switch_->cpu().reset_stats();
  switch_->bus().reset_stats();
  controller_->cpu().reset_stats();
  switch_->reset_counters();
  controller_->reset_counters();
  channel_->reset_counters();
  if (switch_->packet_buffer() != nullptr) {
    switch_->packet_buffer()->occupancy().reset(sim_.now());
  }
  if (switch_->flow_buffer() != nullptr) {
    switch_->flow_buffer()->occupancy().reset(sim_.now());
  }
  sink1_.reset();
  sink2_.reset();
  if (controller_->flow_monitor() != nullptr) controller_->flow_monitor()->reset();
  measurement_start_ = sim_.now();
}

}  // namespace sdnbuf::core

#include "core/fabric_testbed.hpp"

#include <algorithm>
#include <string>

#include "metrics/delay_recorder.hpp"
#include "util/check.hpp"

namespace sdnbuf::core {

const char* fabric_routing_name(FabricRouting routing) {
  switch (routing) {
    case FabricRouting::L2Learning: return "l2-learning";
    case FabricRouting::TopologyPerHop: return "per-hop";
    case FabricRouting::TopologyFullPath: return "full-path";
  }
  return "unknown";
}

FabricTestbed::FabricTestbed(const FabricConfig& config)
    : engine_(std::max(1u, config.shards)),
      sim_(engine_.shard(0)),
      topo_(config.topology),
      routing_(config.routing),
      observers_(config.observers) {
  topo_.validate();
  SDNBUF_CHECK_MSG(observers_.empty() || observers_.size() == topo_.n_switches(),
                   "observers must be empty or one per switch");

  // Shard assignment: the controller (plus its channel endpoints) owns shard
  // 0; switches round-robin over the remaining shards; each host lives with
  // its edge switch so access links never cross a shard boundary. With one
  // shard everything lands on shard 0 and the engine delegates straight to
  // the sequential Simulator.
  const unsigned n_shards = engine_.n_shards();
  switch_shard_.resize(topo_.n_switches(), 0);
  if (n_shards > 1) {
    for (unsigned i = 0; i < topo_.n_switches(); ++i) {
      switch_shard_[i] = 1 + (i % (n_shards - 1));
    }
  }
  host_shard_.resize(topo_.n_hosts(), 0);
  for (unsigned h = 0; h < topo_.n_hosts(); ++h) {
    const topo::NodeId host = topo_.host_id(h);
    host_shard_[h] = switch_shard_[topo_.index_of(topo_.attachment(host).peer)];
  }
  shard_deliveries_.resize(n_shards);

  for (unsigned h = 0; h < topo_.n_hosts(); ++h) {
    sinks_.push_back(std::make_unique<host::HostSink>(shard_sim(host_shard_[h])));
  }

  // Construction order mirrors the original hand-wired chain exactly —
  // controller, all data links, then per switch [switch, control link,
  // channel, connects] — so a chain-shaped fabric replays the chain
  // testbed's event sequence bit for bit.
  controller_ = std::make_unique<ctrl::Controller>(sim_, config.controller_config,
                                                   config.seed * 40503u + 1);
  router_ = std::make_unique<topo::Router>(topo_, config.seed * 0xda942042e4dd58b5ULL + 7);

  // The engine's lookahead is the minimum propagation delay over links that
  // actually cross shards: any frame posted to another shard arrives at
  // least that far in the future, which is exactly the slack the
  // conservative window synchronization needs.
  sim::SimTime min_crossing_delay = sim::SimTime::max();
  const auto node_shard = [this](topo::NodeId node) {
    return topo_.is_host(node) ? host_shard_[topo_.index_of(node)]
                               : switch_shard_[topo_.index_of(node)];
  };

  for (std::size_t i = 0; i < topo_.n_links(); ++i) {
    const topo::Topology::Link& link = topo_.links()[i];
    const double mbps = link.host_edge ? config.host_link_mbps : config.inter_switch_mbps;
    const unsigned a_shard = node_shard(link.a);
    const unsigned b_shard = node_shard(link.b);
    if (a_shard == b_shard) {
      data_links_.push_back(std::make_unique<net::DuplexLink>(
          shard_sim(a_shard), "data" + std::to_string(i), mbps * 1e6, config.link_delay));
    } else {
      data_links_.push_back(std::make_unique<net::DuplexLink>(
          shard_sim(a_shard), shard_sim(b_shard), "data" + std::to_string(i), mbps * 1e6,
          config.link_delay));
      data_links_.back()->set_shard_crossing(&engine_, a_shard, b_shard);
      min_crossing_delay = std::min(min_crossing_delay, config.link_delay);
    }
  }

  for (unsigned i = 0; i < topo_.n_switches(); ++i) {
    const unsigned shard = switch_shard_[i];
    sim::Simulator& ssim = shard_sim(shard);
    sw::SwitchConfig sw_config = config.switch_config;
    sw_config.name = topo_.name(topo_.switch_id(i));
    sw_config.datapath_id = i + 1;
    switches_.push_back(
        std::make_unique<sw::Switch>(ssim, sw_config, config.seed * 2654435761u + i));
    if (shard == 0) {
      control_links_.push_back(std::make_unique<net::DuplexLink>(
          sim_, "ctl" + std::to_string(i + 1), config.control_link_mbps * 1e6,
          config.control_link_delay));
    } else {
      // forward() carries switch -> controller traffic, so its transmitter
      // is the switch's shard; reverse() transmits from the controller.
      control_links_.push_back(std::make_unique<net::DuplexLink>(
          ssim, sim_, "ctl" + std::to_string(i + 1), config.control_link_mbps * 1e6,
          config.control_link_delay));
      control_links_.back()->set_shard_crossing(&engine_, shard, 0);
      min_crossing_delay = std::min(min_crossing_delay, config.control_link_delay);
    }
    channels_.push_back(std::make_unique<of::Channel>(ssim, control_links_[i]->forward(),
                                                      control_links_[i]->reverse()));
    if (shard != 0) channels_[i]->set_shard_sims(ssim, sim_);
    switches_[i]->connect(*channels_[i]);
    controller_->connect(*channels_[i], i + 1);
  }

  if (min_crossing_delay != sim::SimTime::max()) {
    engine_.set_lookahead(min_crossing_delay);
  }
  engine_.set_threads(config.shard_threads);

  // Observer chains: per switch, the invariant registry (if any) teed with a
  // FateObserver adapter into the shared observatory (if any). Injections
  // into the observatory's global ledger are endpoint events only — the
  // adapters pass endpoint_injections=false so cross-switch handoffs (which
  // re-inject per-switch) do not double count; inject_from_host and the sink
  // telemetry taps feed the global ledger directly.
  observatory_ = config.observatory;
  chain_.resize(topo_.n_switches(), nullptr);
  for (unsigned i = 0; i < topo_.n_switches(); ++i) {
    chain_[i] = observers_.empty() ? nullptr : observers_[i];
    if (observatory_ == nullptr) continue;
    fate_adapters_.push_back(std::make_unique<obs::FateObserver>(
        *observatory_, topo_.name(topo_.switch_id(i)), /*endpoint_injections=*/false));
    if (chain_[i] != nullptr) {
      fate_tees_.push_back(
          std::make_unique<obs::TeeObserver>(chain_[i], fate_adapters_.back().get()));
      chain_[i] = fate_tees_.back().get();
    } else {
      chain_[i] = fate_adapters_.back().get();
    }
  }

  wire_ports();

  if (observatory_ != nullptr) {
    for (unsigned h = 0; h < topo_.n_hosts(); ++h) {
      sinks_[h]->set_telemetry_tap([obsy = observatory_](const net::Packet& p, sim::SimTime now) {
        obsy->on_delivered(p, now);
      });
    }
  }

  for (unsigned i = 0; i < n_switches(); ++i) {
    verify::InvariantObserver* obs = chain_[i];
    if (obs == nullptr) continue;
    switches_[i]->set_invariant_observer(obs);
    controller_->set_invariant_observer_for(i + 1, obs);
    channels_[i]->set_verify_tap(
        [obs](bool to_controller, const of::OfMessage& msg, std::size_t, sim::SimTime when) {
          obs->on_control_message(to_controller, msg, when);
        });
  }

  if (routing_ != FabricRouting::L2Learning) {
    controller_->enable_topology_routing(*router_, routing_ == FabricRouting::TopologyFullPath
                                                       ? ctrl::RouteInstallMode::FullPathInstall
                                                       : ctrl::RouteInstallMode::PerHopReactive);
  }

  for (auto& s : switches_) s->start();
  controller_->start();

  // Fault arming comes after everything above so a fault-free configuration
  // leaves the construction-time event sequence untouched (byte-identity
  // with pre-fault-plane builds).
  arm_link_faults(config.link_faults);
  arm_switch_crashes(config.switch_crashes);
}

void FabricTestbed::arm_link_faults(const std::vector<LinkFaultSpec>& faults) {
  for (const LinkFaultSpec& spec : faults) {
    if (spec.schedule.empty()) continue;
    SDNBUF_CHECK_MSG(spec.link_index < topo_.n_links(), "link fault index out of range");
    auto schedule = std::make_unique<net::LinkFaultSchedule>(spec.schedule);
    data_links_[spec.link_index]->set_fault_schedule(schedule.get());
    if (schedule->last_recovery() > last_fault_clear_) {
      last_fault_clear_ = schedule->last_recovery();
    }

    // Port-state events at every outage boundary, for each endpoint that is
    // a switch (host endpoints have no port state to flip).
    const topo::Topology::Link& link = topo_.links()[spec.link_index];
    for (const topo::NodeId end : {link.a, link.b}) {
      if (topo_.is_host(end)) continue;
      const unsigned si = topo_.index_of(end);
      const std::uint16_t port = end == link.a ? link.a_port : link.b_port;
      // Port flips execute on the owning switch's shard: each endpoint of a
      // crossing link reacts on its own event queue.
      sim::Simulator& ssim = shard_sim(switch_shard_[si]);
      for (const net::OutageWindow& w : schedule->windows()) {
        ssim.schedule_at(w.start,
                         [this, si, port]() { switches_[si]->set_port_state(port, false); });
        ssim.schedule_at(w.end, [this, si, port]() { switches_[si]->set_port_state(port, true); });
      }
    }
    fault_schedules_.push_back(std::move(schedule));
  }
}

void FabricTestbed::arm_switch_crashes(const std::vector<SwitchCrashSpec>& crashes) {
  for (const SwitchCrashSpec& spec : crashes) {
    SDNBUF_CHECK_MSG(spec.switch_index < n_switches(), "crash switch index out of range");
    SDNBUF_CHECK_MSG(spec.restart_at > spec.crash_at, "restart must follow the crash");
    const unsigned si = spec.switch_index;
    sim::Simulator& ssim = shard_sim(switch_shard_[si]);
    ssim.schedule_at(spec.crash_at, [this, si]() { switches_[si]->crash(); });
    ssim.schedule_at(spec.restart_at, [this, si]() { switches_[si]->restart(); });
    if (spec.restart_at > last_fault_clear_) last_fault_clear_ = spec.restart_at;
  }
}

std::uint64_t FabricTestbed::total_link_fault_drops() const {
  std::uint64_t n = 0;
  for (const auto& link : data_links_) {
    n += link->forward().fault_drops() + link->reverse().fault_drops();
  }
  return n;
}

void FabricTestbed::wire_ports() {
  // Per switch, in adjacency (= ascending port) order; the port map's
  // insertion order matters because flooding iterates it.
  for (unsigned si = 0; si < topo_.n_switches(); ++si) {
    const topo::NodeId sw_node = topo_.switch_id(si);
    for (const topo::Topology::Adjacency& adj : topo_.adjacency(sw_node)) {
      net::DuplexLink& link = *data_links_[adj.link];
      // forward() transmits a -> b; pick the half leaving this switch.
      net::Link& egress =
          topo_.links()[adj.link].a == sw_node ? link.forward() : link.reverse();
      if (topo_.is_host(adj.peer)) {
        // Host delivery runs on this switch's shard (hosts share their edge
        // switch's shard), so the shard-local delivery slot and the shard
        // clock are the right ones to touch.
        const unsigned hi = topo_.index_of(adj.peer);
        const unsigned shard = switch_shard_[si];
        sim::Simulator* ssim = &shard_sim(shard);
        ShardDeliveries* slot = &shard_deliveries_[shard];
        switches_[si]->attach_port(adj.port, egress,
                                   [this, si, hi, ssim, slot](const net::Packet& p) {
          if (chain_[si] != nullptr) {
            chain_[si]->on_packet_delivered(p, ssim->now());
          }
          if (p.flow_id != metrics::kUntrackedFlow) {
            slot->delivered.emplace_back(p.flow_id, p.seq_in_flow);
            if (p.seq_in_flow == 0) slot->first_packet_ms.add((ssim->now() - p.created_at).ms());
          }
          sinks_[hi]->receive(p);
        });
      } else {
        const unsigned pi = topo_.index_of(adj.peer);
        const std::uint16_t peer_port = adj.peer_port;
        // The handoff closure executes on the *receiving* switch's shard.
        sim::Simulator* psim = &shard_sim(switch_shard_[pi]);
        switches_[si]->attach_port(adj.port, egress,
                                   [this, si, pi, peer_port, psim](const net::Packet& p) {
          // Cross-switch handoff: the sender's registry closes its account,
          // the receiver's opens one (the observatory's fate adapters ignore
          // both — its ledger is endpoint-to-endpoint).
          if (chain_[si] != nullptr) chain_[si]->on_packet_delivered(p, psim->now());
          if (chain_[pi] != nullptr) chain_[pi]->on_packet_injected(p, psim->now());
          switches_[pi]->receive(peer_port, p);
        });
      }
    }
  }
}

void FabricTestbed::inject_from_host(unsigned host_index, const net::Packet& packet) {
  const topo::NodeId host = topo_.host_id(host_index);
  const topo::Topology::Adjacency& att = topo_.attachment(host);
  net::DuplexLink& link = *data_links_[att.link];
  net::Link& uplink = topo_.links()[att.link].a == host ? link.forward() : link.reverse();
  const unsigned si = topo_.index_of(att.peer);
  // Injection happens on the host's shard clock (== its edge switch's); a
  // sharded driver must call this from an event on that shard.
  sim::Simulator& hsim = shard_sim(host_shard_[host_index]);
  if (observatory_ != nullptr) observatory_->on_injected(packet, hsim.now());
  if (chain_[si] != nullptr) {
    chain_[si]->on_packet_injected(packet, hsim.now());
  }
  const std::uint16_t in_port = att.peer_port;
  const auto sent = uplink.send_frame(
      packet.frame_size, [this, si, in_port, packet]() { switches_[si]->receive(in_port, packet); });
  if (sent != net::Link::SendResult::Sent) {
    // The injection was already opened in the switch's registry above; close
    // it so conservation still balances when the access link eats the frame.
    if (chain_[si] != nullptr) {
      chain_[si]->on_packet_dropped(
          packet, sent == net::Link::SendResult::FaultDrop ? "link-down" : "link-queue",
          hsim.now());
    }
  }
}

std::uint64_t FabricTestbed::total_pkt_ins() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) n += s->counters().pkt_ins_sent;
  return n;
}

std::uint64_t FabricTestbed::total_control_bytes() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) {
    n += c->to_controller_counters().total_bytes() + c->to_switch_counters().total_bytes();
  }
  return n;
}

std::uint64_t FabricTestbed::total_control_msgs() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) {
    n += c->to_controller_counters().total_count() + c->to_switch_counters().total_count();
  }
  return n;
}

std::uint64_t FabricTestbed::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& s : sinks_) n += s->packets_received();
  return n;
}

std::uint64_t FabricTestbed::total_duplicates() const {
  std::uint64_t n = 0;
  for (const auto& s : sinks_) n += s->duplicate_packets();
  return n;
}

double FabricTestbed::buffer_occupancy_mean_sum() const {
  double sum = 0.0;
  for (const auto& s : switches_) {
    if (const auto* occ = s->buffer_occupancy(); occ != nullptr) {
      sum += occ->time_weighted_mean(sim_.now());
    }
  }
  return sum;
}

std::uint64_t FabricTestbed::buffer_occupancy_max_sum() const {
  std::uint64_t sum = 0;
  for (const auto& s : switches_) {
    if (const auto* occ = s->buffer_occupancy(); occ != nullptr) sum += occ->max();
  }
  return sum;
}

std::uint64_t FabricTestbed::total_mmu_rejected() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) {
    if (const auto* mmu = s->mmu(); mmu != nullptr) n += mmu->total_rejected();
  }
  return n;
}

std::uint64_t FabricTestbed::mmu_peak_pool_cells_sum() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) {
    if (const auto* mmu = s->mmu(); mmu != nullptr) n += mmu->peak_pool_cells();
  }
  return n;
}

std::vector<verify::PayloadId> FabricTestbed::delivered_payloads() const {
  std::vector<verify::PayloadId> sorted;
  for (const ShardDeliveries& slot : shard_deliveries_) {
    sorted.insert(sorted.end(), slot.delivered.begin(), slot.delivered.end());
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

util::Samples FabricTestbed::first_packet_ms() const {
  util::Samples merged;
  for (const ShardDeliveries& slot : shard_deliveries_) {
    for (const double v : slot.first_packet_ms.values()) merged.add(v);
  }
  return merged;
}

void FabricTestbed::install_metrics(obs::MetricsRegistry& registry) {
  registry.set_meta("topology", "hosts=" + std::to_string(n_hosts()) +
                                    ",switches=" + std::to_string(n_switches()) +
                                    ",links=" + std::to_string(topo_.n_links()));
  registry.set_meta("routing", fabric_routing_name(routing_));

  // Shared histograms aggregate the distribution across the fabric; each
  // switch still gets its own bundle instance.
  obs::SwitchInstruments si;
  si.pkt_in_bytes = &registry.histogram("switch.pkt_in_bytes", 16.0);
  obs::BufferInstruments bi;
  bi.residency_ms = &registry.histogram("buffer.residency_ms", 0.125);
  obs::ChannelInstruments chi;
  chi.wire_bytes_to_controller = &registry.histogram("channel.wire_bytes_to_controller", 16.0);
  chi.wire_bytes_to_switch = &registry.histogram("channel.wire_bytes_to_switch", 16.0);
  for (unsigned i = 0; i < n_switches(); ++i) {
    switches_[i]->set_instruments(si);
    switches_[i]->set_buffer_instruments(bi);
    channels_[i]->set_instruments(chi);
  }

  obs::ControllerInstruments ci;
  ci.pkt_in_bytes = &registry.histogram("controller.pkt_in_bytes", 16.0);
  controller_->set_instruments(ci);

  // Per-switch poll gauges, prefixed with the switch name.
  for (unsigned i = 0; i < n_switches(); ++i) {
    const std::string prefix = topo_.name(topo_.switch_id(i));
    sw::Switch* s = switches_[i].get();
    registry.register_poll(prefix + ".buffer.units_in_use", [s]() {
      const auto* occ = s->buffer_occupancy();
      return occ == nullptr ? 0.0 : static_cast<double>(occ->current());
    });
    registry.register_poll(prefix + ".pkt_ins_sent",
                           [s]() { return static_cast<double>(s->counters().pkt_ins_sent); });
    // True per-port high-water mark, reported as the max across the switch's
    // ports (the full per-port breakdown lives in the observatory heatmap).
    registry.register_poll(prefix + ".egress.highwater_packets", [this, i]() {
      std::uint64_t hw = 0;
      for (const topo::Topology::Adjacency& adj : topo_.adjacency(topo_.switch_id(i))) {
        hw = std::max(hw, switches_[i]->port_scheduler(adj.port).highwater_packets());
      }
      return static_cast<double>(hw);
    });
    // Shared-memory MMU gauges (only when the switch runs one, so metric
    // snapshots stay byte-identical with the MMU off).
    if (const sw::mmu::SharedMemoryMmu* mmu = s->mmu(); mmu != nullptr) {
      registry.register_poll(prefix + ".mmu.pool_cells",
                             [mmu]() { return static_cast<double>(mmu->pool_cells_used()); });
      registry.register_poll(prefix + ".mmu.peak_pool_cells",
                             [mmu]() { return static_cast<double>(mmu->peak_pool_cells()); });
      registry.register_poll(prefix + ".mmu.rejected",
                             [mmu]() { return static_cast<double>(mmu->total_rejected()); });
    }
  }
  registry.register_poll("fabric.pkt_ins_sent",
                         [this]() { return static_cast<double>(total_pkt_ins()); });
  registry.register_poll("fabric.control_bytes",
                         [this]() { return static_cast<double>(total_control_bytes()); });
  registry.register_poll("fabric.packets_delivered",
                         [this]() { return static_cast<double>(total_delivered()); });
  registry.register_poll("fabric.link_fault_drops",
                         [this]() { return static_cast<double>(total_link_fault_drops()); });
  registry.register_poll("fabric.rules_invalidated", [this]() {
    return static_cast<double>(controller_->counters().rules_invalidated);
  });
  registry.register_poll("fabric.links_down",
                         [this]() { return static_cast<double>(router_->links_down()); });
  const bool any_mmu = std::any_of(switches_.begin(), switches_.end(),
                                   [](const auto& s) { return s->mmu() != nullptr; });
  if (any_mmu) {
    registry.register_poll("fabric.mmu_rejected",
                           [this]() { return static_cast<double>(total_mmu_rejected()); });
    registry.register_poll("fabric.mmu_peak_pool_cells", [this]() {
      return static_cast<double>(mmu_peak_pool_cells_sum());
    });
  }
  if (observatory_ != nullptr) observatory_->install_metrics(registry);
}

void FabricTestbed::stop() {
  for (auto& s : switches_) s->stop();
  controller_->stop();
}

void FabricTestbed::reset_statistics() {
  for (auto& link : data_links_) {
    link->forward().tap().reset();
    link->reverse().tap().reset();
  }
  for (auto& link : control_links_) {
    link->forward().tap().reset();
    link->reverse().tap().reset();
  }
  for (auto& channel : channels_) channel->reset_counters();
  for (auto& s : switches_) {
    s->cpu().reset_stats();
    s->bus().reset_stats();
    s->reset_counters();
    if (s->packet_buffer() != nullptr) s->packet_buffer()->occupancy().reset(sim_.now());
    if (s->flow_buffer() != nullptr) s->flow_buffer()->occupancy().reset(sim_.now());
  }
  controller_->cpu().reset_stats();
  controller_->reset_counters();
  if (controller_->flow_monitor() != nullptr) controller_->flow_monitor()->reset();
  if (observatory_ != nullptr) observatory_->reset();
  for (auto& s : sinks_) s->reset();
  for (auto& slot : shard_deliveries_) slot = ShardDeliveries{};
  measurement_start_ = sim_.now();
}

}  // namespace sdnbuf::core

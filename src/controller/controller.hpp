// The SDN controller (the testbed's Floodlight stand-in).
//
// Runs a reactive forwarding application: learn the source MAC of every
// packet_in, and when the destination MAC is known answer with a flow_mod
// installing an exact-match micro-flow rule followed by a packet_out that
// forwards (or releases) the miss-match packet; flood when the destination
// is unknown.
//
// Processing happens on a multi-core CPU server with costs proportional to
// message sizes: parsing a full-frame packet_in and re-encapsulating the
// frame into the packet_out is what makes the no-buffer controller load
// high (Fig. 3) — with buffering, both directions shrink to header-sized
// messages.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "obs/instruments.hpp"
#include "openflow/channel.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::ctrl {

struct CostModel {
  // packet_in parsing: fixed + per byte of the data field.
  double parse_base_us = 10.0;
  double parse_per_byte_us = 0.10;
  // Forwarding decision (MAC table operations, route choice).
  double decision_us = 20.0;
  // Response construction.
  double encode_flow_mod_us = 15.0;
  double encode_pkt_out_base_us = 10.0;
  double encode_pkt_out_per_byte_us = 0.06;  // frame re-encapsulation (no-buffer)
  double jitter_sigma = 0.15;
};

struct ControllerConfig {
  std::string name = "floodlight";
  unsigned cpu_cores = 2;
  // Parameters of the rules the forwarding app installs.
  std::uint16_t rule_idle_timeout_s = 5;
  std::uint16_t rule_hard_timeout_s = 0;
  std::uint16_t rule_priority = 100;
  bool install_rules = true;
  bool request_flow_removed = true;  // set OFPFF_SEND_FLOW_REM on rules
  // Optional Floodlight-style optimization: put the buffer_id into the
  // flow_mod and send no separate packet_out (one header-sized message
  // down). Off by default — the paper describes "a pair of control
  // operation messages (flow_mod and pkt_out)" per request for both
  // mechanisms, and Algorithm 2 is specified as flow_mod followed by a
  // packet_out; the piggyback remains available as an ablation
  // (bench_ablation_protocol).
  bool piggyback_buffer_id = false;
  // Periodic statistics polling (a Floodlight monitoring-module stand-in):
  // every interval the controller sends an aggregate-flow and a port stats
  // request. zero = disabled (the default, so the buffer experiments see
  // only reactive traffic).
  sim::SimTime stats_poll_interval = sim::SimTime::zero();
  // Rule aggregation (related work [16]: flow table aggregation): install
  // rules that wildcard the low `aggregate_src_bits` bits of the source IP
  // and the transport ports, so one rule covers a whole block of micro
  // flows. 0 = exact-match micro-flow rules (the paper's reactive model).
  int aggregate_src_bits = 0;
  // Fault injection for tests/robustness experiments: probability that a
  // received packet_in is silently dropped before processing (models an
  // overloaded or lossy controller; exercises Algorithm 1's re-request).
  double drop_pkt_in_probability = 0.0;
  CostModel costs;
};

struct ControllerCounters {
  std::uint64_t pkt_ins_handled = 0;
  std::uint64_t full_frame_pkt_ins = 0;   // buffer_id == OFP_NO_BUFFER
  std::uint64_t resend_pkt_ins = 0;       // flow-granularity re-requests
  std::uint64_t flow_mods_sent = 0;
  std::uint64_t pkt_outs_sent = 0;
  std::uint64_t floods = 0;
  std::uint64_t parse_failures = 0;
  std::uint64_t flow_removed_seen = 0;
  std::uint64_t pkt_ins_dropped = 0;      // fault injection
  std::uint64_t stats_requests_sent = 0;
  std::uint64_t stats_replies_seen = 0;
  std::uint64_t errors_seen = 0;
  std::uint64_t hellos_seen = 0;          // handshakes + re-handshakes answered
  std::uint64_t echo_requests_seen = 0;   // liveness probes answered
};

class Controller {
 public:
  Controller(sim::Simulator& sim, ControllerConfig config, std::uint64_t rng_seed);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // Binds the controller side of a switch's control channel. A controller
  // can manage several switches (one channel each); `datapath_id`
  // identifies the switch (like the connection-scoped dpid of a real
  // deployment). The single-argument form uses dpid 1.
  void connect(of::Channel& channel, std::uint64_t datapath_id);
  void connect(of::Channel& channel) { connect(channel, 1); }

  // Starts / stops periodic statistics polling (no-ops when the interval is
  // zero). `stop` also silences pending poll timers so a drained simulator
  // can terminate.
  void start();
  void stop();

  // One-shot statistics requests (also usable without periodic polling).
  void request_flow_stats(const of::Match& match);
  void request_aggregate_stats(const of::Match& match);
  void request_port_stats(std::uint16_t port_no = of::kPortNone);

  // Most recent replies, for monitoring consumers and tests.
  [[nodiscard]] const std::optional<of::AggregateStatsReply>& last_aggregate_stats() const {
    return last_aggregate_stats_;
  }
  [[nodiscard]] const std::optional<of::PortStatsReply>& last_port_stats() const {
    return last_port_stats_;
  }
  [[nodiscard]] const std::optional<of::FlowStatsReply>& last_flow_stats() const {
    return last_flow_stats_;
  }

  [[nodiscard]] sim::CpuServer& cpu() { return cpu_; }
  [[nodiscard]] const ControllerCounters& counters() const { return counters_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  // The learning tables: per switch, MAC -> port (standard L2 learning on a
  // multi-switch fabric). The dpid-less overloads address switch 1.
  [[nodiscard]] std::size_t mac_table_size(std::uint64_t datapath_id = 1) const;
  [[nodiscard]] std::optional<std::uint16_t> lookup_mac(const net::MacAddress& mac,
                                                        std::uint64_t datapath_id = 1) const;

  // Pre-seeds a MAC location (used by tests; the testbed learns via warm-up
  // traffic instead).
  void learn(const net::MacAddress& mac, std::uint16_t port, std::uint64_t datapath_id = 1);

  void reset_counters() { counters_ = ControllerCounters{}; }

  // Invariant-checking observer (owned by the caller; may be null). Reports
  // fault-injected packet_in drops so conservation accounting stays closed.
  void set_invariant_observer(verify::InvariantObserver* observer) { observer_ = observer; }

  // Metrics instruments (default-null bundle = disabled).
  void set_instruments(const obs::ControllerInstruments& instruments) { instr_ = instruments; }

 private:
  [[nodiscard]] sim::SimTime cost_us(double nominal_us);

  struct SwitchBinding {
    of::Channel* channel = nullptr;
    std::map<net::MacAddress, std::uint16_t> mac_table;
  };

  void on_message(std::uint64_t datapath_id, const of::OfMessage& msg);
  void handle_packet_in(std::uint64_t datapath_id, const of::PacketIn& msg);
  void decide_and_respond(SwitchBinding& binding, const of::PacketIn& msg,
                          const net::Packet& packet);
  void poll_stats();
  [[nodiscard]] SwitchBinding& binding(std::uint64_t datapath_id);
  [[nodiscard]] const SwitchBinding* find_binding(std::uint64_t datapath_id) const;

  sim::Simulator& sim_;
  ControllerConfig config_;
  util::Rng rng_;
  sim::CpuServer cpu_;
  std::map<std::uint64_t, SwitchBinding> switches_;
  ControllerCounters counters_;
  verify::InvariantObserver* observer_ = nullptr;
  obs::ControllerInstruments instr_;
  bool polling_ = false;
  sim::EventHandle poll_event_;
  std::optional<of::AggregateStatsReply> last_aggregate_stats_;
  std::optional<of::PortStatsReply> last_port_stats_;
  std::optional<of::FlowStatsReply> last_flow_stats_;
};

}  // namespace sdnbuf::ctrl

// The SDN controller (the testbed's Floodlight stand-in).
//
// Runs a reactive forwarding application: learn the source MAC of every
// packet_in, and when the destination MAC is known answer with a flow_mod
// installing an exact-match micro-flow rule followed by a packet_out that
// forwards (or releases) the miss-match packet; flood when the destination
// is unknown.
//
// Processing happens on a multi-core CPU server with costs proportional to
// message sizes: parsing a full-frame packet_in and re-encapsulating the
// frame into the packet_out is what makes the no-buffer controller load
// high (Fig. 3) — with buffering, both directions shrink to header-sized
// messages.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "controller/flow_monitor.hpp"
#include "net/packet.hpp"
#include "obs/instruments.hpp"
#include "openflow/channel.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "topo/routing.hpp"
#include "util/rng.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::ctrl {

// How the controller turns a routing decision into installed state on a
// multi-switch fabric.
enum class RouteInstallMode {
  // Answer only the requesting switch: every switch on the path raises its
  // own packet_in (the paper's reactive model, multiplied per hop).
  PerHopReactive,
  // On the first packet_in of a flow, proactively install the rule on every
  // downstream switch of the ECMP path before releasing the packet — one
  // packet_in per flow per path instead of per hop.
  FullPathInstall,
};

[[nodiscard]] const char* route_install_mode_name(RouteInstallMode mode);

struct CostModel {
  // packet_in parsing: fixed + per byte of the data field.
  double parse_base_us = 10.0;
  double parse_per_byte_us = 0.10;
  // Forwarding decision (MAC table operations, route choice).
  double decision_us = 20.0;
  // Response construction.
  double encode_flow_mod_us = 15.0;
  double encode_pkt_out_base_us = 10.0;
  double encode_pkt_out_per_byte_us = 0.06;  // frame re-encapsulation (no-buffer)
  // Telemetry flow-sample ingestion (vendor message): parse plus flow-cache
  // update. Paid on the same cores as reactive forwarding, so aggressive
  // sampling competes with flow setup (bench_telemetry).
  double sample_parse_us = 6.0;
  double flow_cache_update_us = 4.0;
  double jitter_sigma = 0.15;
};

struct ControllerConfig {
  std::string name = "floodlight";
  unsigned cpu_cores = 2;
  // Parameters of the rules the forwarding app installs.
  std::uint16_t rule_idle_timeout_s = 5;
  std::uint16_t rule_hard_timeout_s = 0;
  std::uint16_t rule_priority = 100;
  bool install_rules = true;
  bool request_flow_removed = true;  // set OFPFF_SEND_FLOW_REM on rules
  // Optional Floodlight-style optimization: put the buffer_id into the
  // flow_mod and send no separate packet_out (one header-sized message
  // down). Off by default — the paper describes "a pair of control
  // operation messages (flow_mod and pkt_out)" per request for both
  // mechanisms, and Algorithm 2 is specified as flow_mod followed by a
  // packet_out; the piggyback remains available as an ablation
  // (bench_ablation_protocol).
  bool piggyback_buffer_id = false;
  // Periodic statistics polling (a Floodlight monitoring-module stand-in):
  // every interval the controller sends an aggregate-flow and a port stats
  // request. zero = disabled (the default, so the buffer experiments see
  // only reactive traffic).
  sim::SimTime stats_poll_interval = sim::SimTime::zero();
  // Rule aggregation (related work [16]: flow table aggregation): install
  // rules that wildcard the low `aggregate_src_bits` bits of the source IP
  // and the transport ports, so one rule covers a whole block of micro
  // flows. 0 = exact-match micro-flow rules (the paper's reactive model).
  int aggregate_src_bits = 0;
  // Fault injection for tests/robustness experiments: probability that a
  // received packet_in is silently dropped before processing (models an
  // overloaded or lossy controller; exercises Algorithm 1's re-request).
  double drop_pkt_in_probability = 0.0;
  // NetFlow-style measurement application (DESIGN.md §15): when enabled the
  // controller owns a FlowMonitor fed by the switches' telemetry flow
  // samples. Off by default — the buffer experiments see only reactive
  // traffic, and a disabled monitor costs nothing.
  bool flow_monitor_enabled = false;
  FlowMonitorConfig flow_monitor;
  CostModel costs;
};

struct ControllerCounters {
  std::uint64_t pkt_ins_handled = 0;
  std::uint64_t full_frame_pkt_ins = 0;   // buffer_id == OFP_NO_BUFFER
  std::uint64_t resend_pkt_ins = 0;       // flow-granularity re-requests
  std::uint64_t flow_mods_sent = 0;
  std::uint64_t pkt_outs_sent = 0;
  std::uint64_t floods = 0;
  std::uint64_t parse_failures = 0;
  std::uint64_t flow_removed_seen = 0;
  std::uint64_t pkt_ins_dropped = 0;      // fault injection
  std::uint64_t path_preinstalls = 0;     // proactive downstream flow_mods
  std::uint64_t unroutable_drops = 0;     // topology mode: no route / foreign MAC
  std::uint64_t stats_requests_sent = 0;
  std::uint64_t stats_replies_seen = 0;       // replies matching an outstanding request xid
  std::uint64_t stats_replies_unmatched = 0;  // duplicated / already-answered xids
  std::uint64_t stats_requests_expired = 0;   // requests unanswered by the next poll cycle
  std::uint64_t flow_samples_seen = 0;        // telemetry vendor records received
  std::uint64_t errors_seen = 0;
  std::uint64_t hellos_seen = 0;          // handshakes + re-handshakes answered
  std::uint64_t echo_requests_seen = 0;   // liveness probes answered
  std::uint64_t port_status_seen = 0;     // data-plane fault notifications
  std::uint64_t link_down_events = 0;     // distinct links marked down
  std::uint64_t link_up_events = 0;       // distinct links restored
  std::uint64_t rules_invalidated = 0;    // flow_mod deletes sent for dead links
};

class Controller {
 public:
  Controller(sim::Simulator& sim, ControllerConfig config, std::uint64_t rng_seed);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // Binds the controller side of a switch's control channel. A controller
  // can manage several switches (one channel each); `datapath_id`
  // identifies the switch (like the connection-scoped dpid of a real
  // deployment). The single-argument form uses dpid 1.
  void connect(of::Channel& channel, std::uint64_t datapath_id);
  void connect(of::Channel& channel) { connect(channel, 1); }

  // Starts / stops periodic statistics polling (no-ops when the interval is
  // zero). `stop` also silences pending poll timers so a drained simulator
  // can terminate.
  void start();
  void stop();

  // One-shot statistics requests (also usable without periodic polling).
  void request_flow_stats(const of::Match& match);
  void request_aggregate_stats(const of::Match& match);
  void request_port_stats(std::uint16_t port_no = of::kPortNone);

  // Most recent replies, for monitoring consumers and tests.
  [[nodiscard]] const std::optional<of::AggregateStatsReply>& last_aggregate_stats() const {
    return last_aggregate_stats_;
  }
  [[nodiscard]] const std::optional<of::PortStatsReply>& last_port_stats() const {
    return last_port_stats_;
  }
  [[nodiscard]] const std::optional<of::FlowStatsReply>& last_flow_stats() const {
    return last_flow_stats_;
  }

  [[nodiscard]] sim::CpuServer& cpu() { return cpu_; }
  [[nodiscard]] const ControllerCounters& counters() const { return counters_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  // The learning tables: per switch, MAC -> port (standard L2 learning on a
  // multi-switch fabric). The dpid-less overloads address switch 1.
  [[nodiscard]] std::size_t mac_table_size(std::uint64_t datapath_id = 1) const;
  [[nodiscard]] std::optional<std::uint16_t> lookup_mac(const net::MacAddress& mac,
                                                        std::uint64_t datapath_id = 1) const;

  // Pre-seeds a MAC location (used by tests; the testbed learns via warm-up
  // traffic instead).
  void learn(const net::MacAddress& mac, std::uint16_t port, std::uint64_t datapath_id = 1);

  // Switches the forwarding application from L2 learning to topology-aware
  // routing: packet_in destinations resolve through the router's host
  // addressing scheme and the seeded ECMP tables instead of learned MAC
  // locations (no flooding — fabrics have loops). `router` is owned by the
  // caller (the FabricTestbed) and must outlive the controller; it is
  // non-const because route repair marks failed links down in it (the
  // controller is the only writer). Requires the fabric dpid convention:
  // switch index i <-> datapath_id i + 1.
  void enable_topology_routing(topo::Router& router, RouteInstallMode mode);
  [[nodiscard]] bool topology_routing() const { return router_ != nullptr; }

  // Installed-rule bookkeeping (topology mode): number of rules the
  // controller believes are live, and how many ride a given topology link.
  [[nodiscard]] std::size_t installed_rule_count() const { return installed_rules_.size(); }
  [[nodiscard]] std::size_t installed_rules_on_link(std::size_t link_index) const;

  void reset_counters() {
    counters_ = ControllerCounters{};
    // Requests from before the reset no longer have a `sent` on the books;
    // forgetting their xids keeps seen + expired == sent within the
    // measurement window (late replies count as unmatched instead).
    outstanding_stats_.clear();
  }

  // Invariant-checking observer (owned by the caller; may be null). Reports
  // fault-injected packet_in drops so conservation accounting stays closed.
  void set_invariant_observer(verify::InvariantObserver* observer) { observer_ = observer; }

  // Per-switch observer override for fabrics running one registry per
  // switch: events for `datapath_id` route here, others fall back to the
  // global observer.
  void set_invariant_observer_for(std::uint64_t datapath_id, verify::InvariantObserver* observer);

  // Metrics instruments (default-null bundle = disabled).
  void set_instruments(const obs::ControllerInstruments& instruments) { instr_ = instruments; }

  // Attaches the NetFlow-style measurement application (DESIGN.md §15).
  // Sampled records arriving on the OpenFlow channels are parsed on the
  // controller CPU and fed into the monitor's flow cache; start()/stop()
  // also start/stop its timeout sweep. Without this call, telemetry vendor
  // messages are counted and discarded.
  void enable_flow_monitor(const FlowMonitorConfig& config);
  [[nodiscard]] FlowMonitor* flow_monitor() { return monitor_.get(); }

 private:
  [[nodiscard]] sim::SimTime cost_us(double nominal_us);

  struct SwitchBinding {
    of::Channel* channel = nullptr;
    std::map<net::MacAddress, std::uint16_t> mac_table;
    verify::InvariantObserver* observer = nullptr;  // per-switch override
  };

  // One step of a full-path install: which switch gets the rule, and the
  // (in_port, out_port) pair its exact-match should carry.
  struct PathHop {
    std::uint64_t datapath_id = 0;
    std::uint16_t in_port = 0;
    std::uint16_t out_port = 0;
  };

  // One rule the controller installed somewhere on the fabric, remembered so
  // route repair can find everything that traverses a failed link. `link` is
  // the topology link the rule's output port crosses.
  struct InstalledRule {
    std::uint64_t datapath_id = 0;
    of::Match match;
    std::uint16_t priority = 0;
    std::size_t link = 0;
  };

  void on_message(std::uint64_t datapath_id, const of::OfMessage& msg);
  void handle_packet_in(std::uint64_t datapath_id, const of::PacketIn& msg);
  // Data-plane fault repair: resolves the reported port to a topology link,
  // flips it in the router (rebuilding the ECMP tables), and on link-down
  // deletes every recorded rule that rides the link.
  void handle_port_status(std::uint64_t datapath_id, const of::PortStatus& msg);
  void decide_and_respond(std::uint64_t datapath_id, SwitchBinding& binding,
                          const of::PacketIn& msg, const net::Packet& packet);
  // Topology-routing counterpart of decide_and_respond.
  void route_and_respond(std::uint64_t datapath_id, SwitchBinding& binding,
                         const of::PacketIn& msg, const net::Packet& packet);
  // The flow_mod + packet_out answer toward the switch that raised the
  // packet_in (shared by the learning and routing applications).
  void respond_with_actions(std::uint64_t datapath_id, SwitchBinding& binding,
                            const of::PacketIn& msg, const net::Packet& packet,
                            const of::ActionList& actions);
  // Bookkeeping helpers (all no-ops outside topology mode).
  void record_installed_rule(std::uint64_t datapath_id, const of::Match& match,
                             std::uint16_t priority, const of::ActionList& actions);
  void forget_rule(std::uint64_t datapath_id, const of::Match& match, std::uint16_t priority);
  void forget_switch_rules(std::uint64_t datapath_id);
  // Encodes one DeleteStrict per doomed rule (one CPU job for the batch) and
  // sends them to their switches, counting counters_.rules_invalidated.
  void send_rule_deletes(std::vector<InstalledRule> doomed);
  // Installs rules on hops[idx..] one CPU job at a time, then answers the
  // originating switch (hops[0]) with respond_with_actions.
  void install_remaining_hops(std::shared_ptr<const std::vector<PathHop>> hops, std::size_t idx,
                              std::uint64_t origin_dpid, of::PacketIn msg, net::Packet packet);
  [[nodiscard]] verify::InvariantObserver* observer_for(std::uint64_t datapath_id);
  // Matches a stats reply against outstanding_stats_ (seen vs unmatched).
  void account_stats_reply(std::uint64_t datapath_id, std::uint32_t xid);
  void poll_stats();
  [[nodiscard]] SwitchBinding& binding(std::uint64_t datapath_id);
  [[nodiscard]] const SwitchBinding* find_binding(std::uint64_t datapath_id) const;

  sim::Simulator& sim_;
  ControllerConfig config_;
  util::Rng rng_;
  sim::CpuServer cpu_;
  std::map<std::uint64_t, SwitchBinding> switches_;
  topo::Router* router_ = nullptr;
  RouteInstallMode route_mode_ = RouteInstallMode::PerHopReactive;
  std::vector<InstalledRule> installed_rules_;
  ControllerCounters counters_;
  verify::InvariantObserver* observer_ = nullptr;
  obs::ControllerInstruments instr_;
  std::unique_ptr<FlowMonitor> monitor_;
  // Stats requests awaiting a reply, keyed (datapath_id, xid). Replies erase
  // their entry (matched) or count as unmatched; each poll cycle expires
  // whatever the previous cycle left behind, so channel faults can never
  // wedge the request/reply accounting.
  std::set<std::pair<std::uint64_t, std::uint32_t>> outstanding_stats_;
  bool polling_ = false;
  sim::EventHandle poll_event_;
  std::optional<of::AggregateStatsReply> last_aggregate_stats_;
  std::optional<of::PortStatsReply> last_port_stats_;
  std::optional<of::FlowStatsReply> last_flow_stats_;
};

}  // namespace sdnbuf::ctrl

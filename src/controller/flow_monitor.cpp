#include "controller/flow_monitor.hpp"

#include <ostream>

#include "net/address.hpp"

namespace sdnbuf::ctrl {

FlowMonitor::FlowMonitor(sim::Simulator& sim, FlowMonitorConfig config)
    : sim_(sim), config_(config) {}

void FlowMonitor::start() {
  if (config_.sweep_interval <= sim::SimTime::zero()) return;
  running_ = true;
  sweep_event_ = sim_.schedule(config_.sweep_interval, [this]() {
    sim::ScopedProfileTag tag{"flow_monitor"};
    sweep();
  });
}

void FlowMonitor::stop() {
  running_ = false;
  sweep_event_.cancel();
}

void FlowMonitor::on_sample(std::uint64_t datapath_id, const of::FlowSample& sample,
                            sim::SimTime now) {
  ++counters_.samples_seen;
  // Sequence accounting: the switch numbers its samples densely, so a jump
  // past the expected value measures records the channel ate. Reordering
  // does not occur on the FIFO channel; a duplicate (seq < expected) counts
  // as neither progress nor loss.
  auto [seq_it, first_sample] = next_seq_.try_emplace(datapath_id, 0);
  if (sample.sample_seq >= seq_it->second) {
    counters_.samples_lost += sample.sample_seq - seq_it->second;
    seq_it->second = sample.sample_seq + 1;
  }
  (void)first_sample;

  net::FlowKey key;
  key.src_ip = net::Ipv4Address{sample.src_ip};
  key.dst_ip = net::Ipv4Address{sample.dst_ip};
  key.src_port = sample.src_port;
  key.dst_port = sample.dst_port;
  key.protocol = sample.protocol;
  const CacheKey cache_key{datapath_id, key};
  auto it = cache_.find(cache_key);
  if (it == cache_.end()) {
    if (cache_.size() >= config_.cache_capacity) evict_lru();
    CacheEntry entry;
    entry.first_seen = now;
    ++counters_.cache_inserts;
    it = cache_.emplace(cache_key, entry).first;
  } else {
    ++counters_.cache_updates;
  }
  ++it->second.sampled_packets;
  it->second.sampled_bytes += sample.frame_bytes;
  it->second.last_seen = now;
}

void FlowMonitor::export_entry(const CacheKey& key, const CacheEntry& entry, const char* reason,
                               std::uint64_t& counter) {
  FlowRecord record;
  record.datapath_id = key.first;
  record.key = key.second;
  record.sampled_packets = entry.sampled_packets;
  record.sampled_bytes = entry.sampled_bytes;
  record.first_seen = entry.first_seen;
  record.last_seen = entry.last_seen;
  record.reason = reason;
  exported_.push_back(record);
  ++counter;
}

void FlowMonitor::evict_lru() {
  if (cache_.empty()) return;
  // Oldest last_seen loses; the ordered map breaks ties by key, so the
  // choice is deterministic.
  auto lru = cache_.begin();
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->second.last_seen < lru->second.last_seen) lru = it;
  }
  export_entry(lru->first, lru->second, "evicted", counters_.exports_evicted);
  cache_.erase(lru);
}

void FlowMonitor::sweep() {
  const sim::SimTime now = sim_.now();
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (config_.idle_timeout > sim::SimTime::zero() &&
        now - it->second.last_seen >= config_.idle_timeout) {
      export_entry(it->first, it->second, "idle-timeout", counters_.exports_idle);
      it = cache_.erase(it);
      continue;
    }
    if (config_.active_timeout > sim::SimTime::zero() &&
        now - it->second.first_seen >= config_.active_timeout) {
      // Active export keeps the entry but restarts its reporting interval
      // with the counters it has not yet reported.
      export_entry(it->first, it->second, "active-timeout", counters_.exports_active);
      it->second.sampled_packets = 0;
      it->second.sampled_bytes = 0;
      it->second.first_seen = now;
    }
    ++it;
  }
  if (running_) {
    sweep_event_ = sim_.schedule(config_.sweep_interval, [this]() {
      sim::ScopedProfileTag tag{"flow_monitor"};
      sweep();
    });
  }
}

void FlowMonitor::flush(sim::SimTime now) {
  (void)now;
  for (const auto& [key, entry] : cache_) {
    export_entry(key, entry, "final", counters_.exports_final);
  }
  cache_.clear();
}

void FlowMonitor::write_exports_csv(std::ostream& out) const {
  out << "datapath_id,src_ip,dst_ip,src_port,dst_port,protocol,packets,bytes,first_us,last_us,"
         "reason\n";
  for (const FlowRecord& r : exported_) {
    out << r.datapath_id << ',' << r.key.src_ip.to_string() << ',' << r.key.dst_ip.to_string()
        << ',' << r.key.src_port << ',' << r.key.dst_port << ','
        << static_cast<unsigned>(r.key.protocol) << ',' << r.sampled_packets << ','
        << r.sampled_bytes << ',' << r.first_seen.ns() / 1000 << ',' << r.last_seen.ns() / 1000
        << ',' << r.reason << '\n';
  }
}

void FlowMonitor::reset() {
  counters_ = FlowMonitorCounters{};
  cache_.clear();
  next_seq_.clear();
  exported_.clear();
}

}  // namespace sdnbuf::ctrl

#include "controller/controller.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace sdnbuf::ctrl {

const char* route_install_mode_name(RouteInstallMode mode) {
  switch (mode) {
    case RouteInstallMode::PerHopReactive: return "per-hop";
    case RouteInstallMode::FullPathInstall: return "full-path";
  }
  return "unknown";
}

Controller::Controller(sim::Simulator& sim, ControllerConfig config, std::uint64_t rng_seed)
    : sim_(sim),
      config_(std::move(config)),
      rng_(rng_seed),
      cpu_(sim, config_.name + ":cpu", config_.cpu_cores) {
  if (config_.flow_monitor_enabled) enable_flow_monitor(config_.flow_monitor);
}

void Controller::connect(of::Channel& channel, std::uint64_t datapath_id) {
  SDNBUF_CHECK_MSG(switches_.count(datapath_id) == 0, "datapath already connected");
  switches_[datapath_id].channel = &channel;
  channel.set_controller_handler(
      [this, datapath_id](const of::OfMessage& msg, std::size_t) {
        on_message(datapath_id, msg);
      });
}

Controller::SwitchBinding& Controller::binding(std::uint64_t datapath_id) {
  const auto it = switches_.find(datapath_id);
  SDNBUF_CHECK_MSG(it != switches_.end(), "unknown datapath");
  return it->second;
}

const Controller::SwitchBinding* Controller::find_binding(std::uint64_t datapath_id) const {
  const auto it = switches_.find(datapath_id);
  return it == switches_.end() ? nullptr : &it->second;
}

sim::SimTime Controller::cost_us(double nominal_us) {
  return sim::SimTime::from_microseconds(nominal_us *
                                         rng_.lognormal(1.0, config_.costs.jitter_sigma));
}

std::size_t Controller::mac_table_size(std::uint64_t datapath_id) const {
  const auto* b = find_binding(datapath_id);
  return b == nullptr ? 0 : b->mac_table.size();
}

std::optional<std::uint16_t> Controller::lookup_mac(const net::MacAddress& mac,
                                                    std::uint64_t datapath_id) const {
  const auto* b = find_binding(datapath_id);
  if (b == nullptr) return std::nullopt;
  const auto it = b->mac_table.find(mac);
  if (it == b->mac_table.end()) return std::nullopt;
  return it->second;
}

void Controller::learn(const net::MacAddress& mac, std::uint16_t port,
                       std::uint64_t datapath_id) {
  binding(datapath_id).mac_table[mac] = port;
}

void Controller::enable_topology_routing(topo::Router& router, RouteInstallMode mode) {
  router_ = &router;
  route_mode_ = mode;
}

std::size_t Controller::installed_rules_on_link(std::size_t link_index) const {
  return static_cast<std::size_t>(
      std::count_if(installed_rules_.begin(), installed_rules_.end(),
                    [link_index](const InstalledRule& r) { return r.link == link_index; }));
}

void Controller::record_installed_rule(std::uint64_t datapath_id, const of::Match& match,
                                       std::uint16_t priority, const of::ActionList& actions) {
  if (router_ == nullptr) return;  // the learning app keeps no path state
  const of::OutputAction* out = nullptr;
  for (const of::Action& a : actions) {
    if (const auto* o = std::get_if<of::OutputAction>(&a)) {
      out = o;
      break;
    }
  }
  if (out == nullptr) return;  // drop rule: no link to track
  const topo::Topology& topology = router_->topology();
  if (datapath_id < 1 || datapath_id > topology.n_switches()) return;
  const topo::NodeId sw = topology.switch_id(static_cast<unsigned>(datapath_id - 1));
  for (const topo::Topology::Adjacency& adj : topology.adjacency(sw)) {
    if (adj.port != out->port) continue;  // flood/controller ports match nothing
    // flow_mod ADD overwrites an identical match+priority entry on the
    // switch, so refresh in place instead of double-counting.
    for (InstalledRule& r : installed_rules_) {
      if (r.datapath_id == datapath_id && r.priority == priority && r.match == match) {
        r.link = adj.link;
        return;
      }
    }
    installed_rules_.push_back(InstalledRule{datapath_id, match, priority, adj.link});
    return;
  }
}

void Controller::forget_rule(std::uint64_t datapath_id, const of::Match& match,
                             std::uint16_t priority) {
  const auto it = std::find_if(installed_rules_.begin(), installed_rules_.end(),
                               [&](const InstalledRule& r) {
                                 return r.datapath_id == datapath_id && r.priority == priority &&
                                        r.match == match;
                               });
  if (it != installed_rules_.end()) installed_rules_.erase(it);
}

void Controller::forget_switch_rules(std::uint64_t datapath_id) {
  installed_rules_.erase(std::remove_if(installed_rules_.begin(), installed_rules_.end(),
                                        [datapath_id](const InstalledRule& r) {
                                          return r.datapath_id == datapath_id;
                                        }),
                         installed_rules_.end());
}

void Controller::set_invariant_observer_for(std::uint64_t datapath_id,
                                            verify::InvariantObserver* observer) {
  binding(datapath_id).observer = observer;
}

verify::InvariantObserver* Controller::observer_for(std::uint64_t datapath_id) {
  const auto it = switches_.find(datapath_id);
  if (it != switches_.end() && it->second.observer != nullptr) return it->second.observer;
  return observer_;
}

void Controller::enable_flow_monitor(const FlowMonitorConfig& config) {
  monitor_ = std::make_unique<FlowMonitor>(sim_, config);
}

void Controller::start() {
  if (monitor_ != nullptr) monitor_->start();
  if (config_.stats_poll_interval <= sim::SimTime::zero()) return;
  polling_ = true;
  poll_event_ = sim_.schedule(config_.stats_poll_interval, [this]() {
    sim::ScopedProfileTag tag{config_.name.c_str()};
    poll_stats();
  });
}

void Controller::stop() {
  polling_ = false;
  poll_event_.cancel();
  if (monitor_ != nullptr) monitor_->stop();
  // Requests still outstanding at shutdown will never be answered.
  counters_.stats_requests_expired += outstanding_stats_.size();
  outstanding_stats_.clear();
}

void Controller::poll_stats() {
  if (!polling_) return;
  // A reply that has not arrived by the time the next cycle starts is
  // written off: the xid leaves the outstanding set so a lost reply cannot
  // accumulate state forever.
  counters_.stats_requests_expired += outstanding_stats_.size();
  outstanding_stats_.clear();
  request_aggregate_stats(of::Match::wildcard_all());
  request_port_stats();
  poll_event_ = sim_.schedule(config_.stats_poll_interval, [this]() {
    sim::ScopedProfileTag tag{config_.name.c_str()};
    poll_stats();
  });
}

void Controller::request_flow_stats(const of::Match& match) {
  for (auto& [dpid, b] : switches_) {
    of::FlowStatsRequest req;
    req.xid = b.channel->next_controller_xid();
    req.match = match;
    ++counters_.stats_requests_sent;
    outstanding_stats_.emplace(dpid, req.xid);
    b.channel->send_from_controller(req);
  }
}

void Controller::request_aggregate_stats(const of::Match& match) {
  for (auto& [dpid, b] : switches_) {
    of::AggregateStatsRequest req;
    req.xid = b.channel->next_controller_xid();
    req.match = match;
    ++counters_.stats_requests_sent;
    outstanding_stats_.emplace(dpid, req.xid);
    b.channel->send_from_controller(req);
  }
}

void Controller::request_port_stats(std::uint16_t port_no) {
  for (auto& [dpid, b] : switches_) {
    of::PortStatsRequest req;
    req.xid = b.channel->next_controller_xid();
    req.port_no = port_no;
    ++counters_.stats_requests_sent;
    outstanding_stats_.emplace(dpid, req.xid);
    b.channel->send_from_controller(req);
  }
}

void Controller::on_message(std::uint64_t datapath_id, const of::OfMessage& msg) {
  if (const auto* pi = std::get_if<of::PacketIn>(&msg)) {
    if (config_.drop_pkt_in_probability > 0.0 &&
        rng_.next_double() < config_.drop_pkt_in_probability) {
      ++counters_.pkt_ins_dropped;
      if (auto* obs = observer_for(datapath_id)) {
        obs->on_pkt_in_dropped(pi->xid, pi->buffer_id, sim_.now());
      }
      return;
    }
    handle_packet_in(datapath_id, *pi);
  } else if (std::holds_alternative<of::Error>(msg)) {
    ++counters_.errors_seen;
  } else if (const auto* flow_stats = std::get_if<of::FlowStatsReply>(&msg)) {
    account_stats_reply(datapath_id, flow_stats->xid);
    last_flow_stats_ = *flow_stats;
  } else if (const auto* agg = std::get_if<of::AggregateStatsReply>(&msg)) {
    account_stats_reply(datapath_id, agg->xid);
    last_aggregate_stats_ = *agg;
  } else if (const auto* port_stats = std::get_if<of::PortStatsReply>(&msg)) {
    account_stats_reply(datapath_id, port_stats->xid);
    last_port_stats_ = *port_stats;
  } else if (const auto* sample = std::get_if<of::FlowSample>(&msg)) {
    ++counters_.flow_samples_seen;
    if (monitor_ != nullptr) {
      // Ingestion is paid on the shared cores before the cache is touched,
      // so telemetry volume competes with reactive forwarding for CPU.
      const double ingest_us = config_.costs.sample_parse_us + config_.costs.flow_cache_update_us;
      cpu_.submit(cost_us(ingest_us), [this, datapath_id, record = *sample]() {
        monitor_->on_sample(datapath_id, record, sim_.now());
      });
    }
  } else if (const auto* removed = std::get_if<of::FlowRemoved>(&msg)) {
    ++counters_.flow_removed_seen;
    // Timed-out (or deleted) rules leave the bookkeeping so route repair
    // never re-deletes state the switch already dropped.
    forget_rule(datapath_id, removed->match, removed->priority);
  } else if (const auto* status = std::get_if<of::PortStatus>(&msg)) {
    handle_port_status(datapath_id, *status);
  } else if (const auto* hello = std::get_if<of::Hello>(&msg)) {
    // Echo the switch's hello xid back: that completes both the initial
    // handshake and a post-outage re-handshake on the switch side. A hello
    // also means the datapath (re)started empty — a crashed switch lost its
    // table, so any rules recorded for it are gone.
    ++counters_.hellos_seen;
    forget_switch_rules(datapath_id);
    binding(datapath_id).channel->send_from_controller(of::Hello{hello->xid});
  } else if (const auto* echo = std::get_if<of::EchoRequest>(&msg)) {
    ++counters_.echo_requests_seen;
    binding(datapath_id).channel->send_from_controller(of::EchoReply{echo->xid});
  }
  // EchoReply / FeaturesReply / BarrierReply need no reaction here.
}

void Controller::account_stats_reply(std::uint64_t datapath_id, std::uint32_t xid) {
  // A reply is "seen" only if it answers a request still outstanding; a
  // channel-duplicated (or expired-then-arriving) reply is unmatched. Both
  // still refresh last_*_stats_ — stale data beats no data for monitoring.
  if (outstanding_stats_.erase({datapath_id, xid}) > 0) {
    ++counters_.stats_replies_seen;
  } else {
    ++counters_.stats_replies_unmatched;
  }
}

void Controller::handle_port_status(std::uint64_t datapath_id, const of::PortStatus& msg) {
  ++counters_.port_status_seen;
  if (router_ == nullptr) return;  // the learning app keeps no path state to repair
  const topo::Topology& topology = router_->topology();
  if (datapath_id < 1 || datapath_id > topology.n_switches()) return;
  const topo::NodeId sw = topology.switch_id(static_cast<unsigned>(datapath_id - 1));
  const topo::Topology::Adjacency* adj = nullptr;
  for (const topo::Topology::Adjacency& a : topology.adjacency(sw)) {
    if (a.port == msg.desc.port_no) {
      adj = &a;
      break;
    }
  }
  if (adj == nullptr) return;  // port unknown to the topology: nothing to repair
  const std::size_t link = adj->link;
  const bool up = !msg.desc.link_down;

  cpu_.submit(cost_us(config_.costs.decision_us), [this, link, up]() {
    // Both endpoint switches report the same link transition; whichever
    // report is processed first performs the repair, the other sees the
    // router already agreeing and stops.
    if (router_ == nullptr || router_->link_up(link) == up) return;
    router_->set_link_state(link, up);
    if (up) {
      ++counters_.link_up_events;
      // A restored link makes every detour routed around it stale, and a
      // stale detour can pair with a later repair into a forwarding loop
      // (A's detour leans on B just as B's repair leans on A). Flushing the
      // whole table on link-up keeps the installed rules loop-free: between
      // two up-events the down-set only grows, so all surviving rules were
      // computed against nested failure snapshots and compose acyclically.
      std::vector<InstalledRule> doomed = std::move(installed_rules_);
      installed_rules_.clear();
      send_rule_deletes(std::move(doomed));
      return;
    }
    ++counters_.link_down_events;
    // Every recorded rule riding the dead link is now forwarding into a
    // black hole: delete it on its switch so the next packet of the flow
    // misses and reroutes over the repaired tables. stable_partition keeps
    // install order, so the delete sequence is deterministic.
    const auto it = std::stable_partition(installed_rules_.begin(), installed_rules_.end(),
                                          [link](const InstalledRule& r) { return r.link != link; });
    std::vector<InstalledRule> doomed(it, installed_rules_.end());
    installed_rules_.erase(it, installed_rules_.end());
    send_rule_deletes(std::move(doomed));
  });
}

void Controller::send_rule_deletes(std::vector<InstalledRule> doomed) {
  if (doomed.empty()) return;
  cpu_.submit(cost_us(config_.costs.encode_flow_mod_us * static_cast<double>(doomed.size())),
              [this, doomed = std::move(doomed)]() {
    for (const InstalledRule& rule : doomed) {
      SwitchBinding& b = binding(rule.datapath_id);
      of::FlowMod fm;
      fm.xid = b.channel->next_controller_xid();
      fm.match = rule.match;
      fm.command = of::FlowModCommand::DeleteStrict;
      fm.priority = rule.priority;
      ++counters_.rules_invalidated;
      b.channel->send_from_controller(fm);
    }
  });
}

void Controller::handle_packet_in(std::uint64_t datapath_id, const of::PacketIn& msg) {
  ++counters_.pkt_ins_handled;
  if (instr_.pkt_in_bytes != nullptr) {
    instr_.pkt_in_bytes->record(static_cast<double>(msg.data.size()));
  }
  if (msg.buffer_id == of::kNoBuffer) ++counters_.full_frame_pkt_ins;
  if (msg.reason == of::PacketInReason::FlowResend) ++counters_.resend_pkt_ins;

  // Parse cost scales with the data field: a full 1000-byte frame costs
  // measurably more than a 128-byte header capture.
  const double parse_us = config_.costs.parse_base_us +
                          config_.costs.parse_per_byte_us * static_cast<double>(msg.data.size()) +
                          config_.costs.decision_us;
  cpu_.submit(cost_us(parse_us), [this, datapath_id, msg]() {
    auto packet = net::Packet::parse(msg.data, msg.total_len);
    if (!packet) {
      ++counters_.parse_failures;
      if (auto* obs = observer_for(datapath_id)) {
        obs->on_pkt_in_dropped(msg.xid, msg.buffer_id, sim_.now());
      }
      SDNBUF_WARN("controller", "undecodable packet_in data");
      return;
    }
    decide_and_respond(datapath_id, binding(datapath_id), msg, *packet);
  });
}

void Controller::decide_and_respond(std::uint64_t datapath_id, SwitchBinding& binding,
                                    const of::PacketIn& msg, const net::Packet& packet) {
  of::Channel* channel = binding.channel;
  SDNBUF_CHECK(channel != nullptr);

  // Learn the sender's location at this switch (kept in topology mode too:
  // tests and warm-up probes read the tables).
  if (!packet.eth.src.is_multicast()) binding.mac_table[packet.eth.src] = msg.in_port;

  if (router_ != nullptr) {
    route_and_respond(datapath_id, binding, msg, packet);
    return;
  }

  const auto it = binding.mac_table.find(packet.eth.dst);
  const bool known = it != binding.mac_table.end();
  if (!known) {
    // Unknown destination: flood, and install nothing (the next packet_in
    // for this flow gets another chance once the destination is learned).
    ++counters_.floods;
    const double encode_us = config_.costs.encode_pkt_out_base_us +
                             config_.costs.encode_pkt_out_per_byte_us *
                                 static_cast<double>(msg.data.size());
    cpu_.submit(cost_us(encode_us), [this, channel, msg]() {
      of::PacketOut out;
      out.xid = msg.xid;
      out.buffer_id = msg.buffer_id;
      out.in_port = msg.in_port;
      out.actions = of::output_to(of::kPortFlood);
      if (msg.buffer_id == of::kNoBuffer) out.data = msg.data;
      ++counters_.pkt_outs_sent;
      channel->send_from_controller(out);
    });
    return;
  }

  respond_with_actions(datapath_id, binding, msg, packet, of::output_to(it->second));
}

void Controller::respond_with_actions(std::uint64_t datapath_id, SwitchBinding& binding,
                                      const of::PacketIn& msg, const net::Packet& packet,
                                      const of::ActionList& actions) {
  of::Channel* channel = binding.channel;
  SDNBUF_CHECK(channel != nullptr);

  // Floodlight sends the flow_mod first and the packet_out second; chaining
  // the encode jobs preserves that order on the FIFO channel.
  auto send_pkt_out = [this, channel, msg, actions]() {
    // The packet_out re-encapsulates the full frame only in no-buffer mode;
    // with a valid buffer_id it carries just the reference.
    const std::size_t data_bytes = msg.buffer_id == of::kNoBuffer ? msg.data.size() : 0;
    const double encode_us =
        config_.costs.encode_pkt_out_base_us +
        config_.costs.encode_pkt_out_per_byte_us * static_cast<double>(data_bytes);
    cpu_.submit(cost_us(encode_us), [this, channel, msg, actions]() {
      of::PacketOut out;
      out.xid = msg.xid;
      out.buffer_id = msg.buffer_id;
      out.in_port = msg.in_port;
      out.actions = actions;
      if (msg.buffer_id == of::kNoBuffer) out.data = msg.data;
      ++counters_.pkt_outs_sent;
      channel->send_from_controller(out);
    });
  };

  if (!config_.install_rules) {
    send_pkt_out();
    return;
  }
  const bool piggyback = config_.piggyback_buffer_id && msg.buffer_id != of::kNoBuffer;
  cpu_.submit(cost_us(config_.costs.encode_flow_mod_us),
              [this, datapath_id, channel, msg, packet, actions, send_pkt_out, piggyback]() {
    of::FlowMod fm;
    fm.xid = msg.xid;  // responses echo the request xid (delay attribution)
    fm.match = of::Match::exact_from(packet, msg.in_port);
    if (config_.aggregate_src_bits > 0) {
      // Aggregated rule: one entry covers a source-IP block instead of a
      // single micro flow (trades per-flow counters for fewer misses).
      fm.match.set_nw_src_ignored_bits(config_.aggregate_src_bits);
      fm.match.wildcards |= of::kWildcardTpSrc | of::kWildcardTpDst | of::kWildcardDlSrc;
    }
    fm.command = of::FlowModCommand::Add;
    fm.idle_timeout_s = config_.rule_idle_timeout_s;
    fm.hard_timeout_s = config_.rule_hard_timeout_s;
    fm.priority = config_.rule_priority;
    // Piggyback: the flow_mod itself names the buffered packet, so the
    // switch installs the rule and releases the packet in one message.
    fm.buffer_id = piggyback ? msg.buffer_id : of::kNoBuffer;
    if (config_.request_flow_removed) fm.flags |= of::kFlowModSendFlowRem;
    fm.actions = actions;
    ++counters_.flow_mods_sent;
    record_installed_rule(datapath_id, fm.match, fm.priority, fm.actions);
    channel->send_from_controller(fm);
    if (!piggyback) send_pkt_out();
  });
}

void Controller::route_and_respond(std::uint64_t datapath_id, SwitchBinding& binding,
                                   const of::PacketIn& msg, const net::Packet& packet) {
  const topo::Topology& topology = router_->topology();

  // A drop packet_out (empty action list): releases any buffered copy and
  // keeps the switch-side accounting closed.
  auto drop_packet = [this, channel = binding.channel, msg]() {
    ++counters_.unroutable_drops;
    const std::size_t data_bytes = msg.buffer_id == of::kNoBuffer ? msg.data.size() : 0;
    const double encode_us =
        config_.costs.encode_pkt_out_base_us +
        config_.costs.encode_pkt_out_per_byte_us * static_cast<double>(data_bytes);
    cpu_.submit(cost_us(encode_us), [this, channel, msg]() {
      of::PacketOut out;
      out.xid = msg.xid;
      out.buffer_id = msg.buffer_id;
      out.in_port = msg.in_port;
      if (msg.buffer_id == of::kNoBuffer) out.data = msg.data;
      ++counters_.pkt_outs_sent;
      channel->send_from_controller(out);
    });
  };

  const auto dst = topology.host_by_mac(packet.eth.dst);
  if (!dst) {
    // Foreign or multicast destination: fabrics have loops, so flooding is
    // never safe — drop instead of installing anything.
    drop_packet();
    return;
  }
  SDNBUF_CHECK_MSG(datapath_id >= 1 && datapath_id <= topology.n_switches(),
                   "fabric dpids are 1-based switch indices");
  const topo::NodeId sw = topology.switch_id(static_cast<unsigned>(datapath_id - 1));
  const net::FlowKey flow = packet.flow_key();

  if (route_mode_ == RouteInstallMode::PerHopReactive) {
    const auto port = router_->next_hop_port(sw, *dst, flow);
    if (!port) {
      drop_packet();
      return;
    }
    respond_with_actions(datapath_id, binding, msg, packet, of::output_to(*port));
    return;
  }

  // Full-path install: walk the ECMP path once, pre-install the rule on
  // every downstream switch, then answer the originating switch last so the
  // released packet finds the downstream rules already present.
  const std::vector<topo::NodeId> path = router_->path(sw, *dst, flow);
  if (path.size() < 2) {
    drop_packet();
    return;
  }
  auto hops = std::make_shared<std::vector<PathHop>>();
  hops->reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    PathHop hop;
    hop.datapath_id = static_cast<std::uint64_t>(topology.index_of(path[i])) + 1;
    if (i == 0) {
      hop.in_port = msg.in_port;
    } else {
      const auto in = topology.port_to(path[i], path[i - 1]);
      SDNBUF_CHECK(in.has_value());
      hop.in_port = *in;
    }
    const auto out = topology.port_to(path[i], path[i + 1]);
    SDNBUF_CHECK(out.has_value());
    hop.out_port = *out;
    hops->push_back(hop);
  }
  install_remaining_hops(std::move(hops), 1, datapath_id, msg, packet);
}

void Controller::install_remaining_hops(std::shared_ptr<const std::vector<PathHop>> hops,
                                        std::size_t idx, std::uint64_t origin_dpid,
                                        of::PacketIn msg, net::Packet packet) {
  if (idx >= hops->size()) {
    respond_with_actions(origin_dpid, binding(origin_dpid), msg, packet,
                         of::output_to(hops->front().out_port));
    return;
  }
  const PathHop hop = (*hops)[idx];
  cpu_.submit(cost_us(config_.costs.encode_flow_mod_us),
              [this, hops = std::move(hops), idx, origin_dpid, msg = std::move(msg),
               packet = std::move(packet), hop]() mutable {
    SwitchBinding& b = binding(hop.datapath_id);
    of::FlowMod fm;
    // Proactive installs are not answering any packet_in on this channel, so
    // they carry a fresh xid (the per-switch invariant registries are told
    // to expect unpaired flow_mods in this mode).
    fm.xid = b.channel->next_controller_xid();
    fm.match = of::Match::exact_from(packet, hop.in_port);
    fm.command = of::FlowModCommand::Add;
    fm.idle_timeout_s = config_.rule_idle_timeout_s;
    fm.hard_timeout_s = config_.rule_hard_timeout_s;
    fm.priority = config_.rule_priority;
    if (config_.request_flow_removed) fm.flags |= of::kFlowModSendFlowRem;
    fm.actions = of::output_to(hop.out_port);
    ++counters_.flow_mods_sent;
    ++counters_.path_preinstalls;
    record_installed_rule(hop.datapath_id, fm.match, fm.priority, fm.actions);
    b.channel->send_from_controller(fm);
    install_remaining_hops(std::move(hops), idx + 1, origin_dpid, std::move(msg),
                           std::move(packet));
  });
}

}  // namespace sdnbuf::ctrl

// NetFlow-style measurement application (DESIGN.md §15).
//
// `FlowMonitor` is the controller-side consumer of the switches' sampled
// of::FlowSample records. It keeps a bounded flow cache keyed by
// (datapath_id, 5-tuple) with the classic NetFlow export triggers:
//
//   active timeout   a long-lived flow is exported periodically so its
//                    byte/packet counts stay fresh downstream
//   idle timeout     a flow that stopped sampling is exported and evicted
//   cache pressure   at capacity, the least-recently-updated entry is
//                    exported ("evicted") to make room
//   final flush      flush() exports everything at end of run
//
// Per-datapath sample sequence numbers detect control-channel loss of sample
// records (`samples_lost`), so measurement completeness is quantifiable
// under the channel fault plane. The monitor itself is passive bookkeeping:
// the controller pays the CPU cost of parsing/updating on its shared cores
// before calling in here, which is what makes aggressive sampling compete
// with reactive forwarding (bench_telemetry).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/flow_key.hpp"
#include "openflow/messages.hpp"
#include "sim/simulator.hpp"

namespace sdnbuf::ctrl {

struct FlowMonitorConfig {
  // Export a still-active flow after this long (0 disables the trigger).
  sim::SimTime active_timeout = sim::SimTime::seconds(30);
  // Export and evict after this long without a new sample.
  sim::SimTime idle_timeout = sim::SimTime::seconds(5);
  // Timeout sweep cadence.
  sim::SimTime sweep_interval = sim::SimTime::milliseconds(500);
  // Flow-cache entry bound; beyond it the LRU entry is exported + evicted.
  std::size_t cache_capacity = 4096;
};

// One exported flow record (what a NetFlow collector would receive).
struct FlowRecord {
  std::uint64_t datapath_id = 0;
  net::FlowKey key;
  std::uint64_t sampled_packets = 0;
  std::uint64_t sampled_bytes = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  const char* reason = "";  // "active-timeout" / "idle-timeout" / "evicted" / "final"
};

struct FlowMonitorCounters {
  std::uint64_t samples_seen = 0;
  std::uint64_t samples_lost = 0;  // per-dpid sample_seq gaps (channel loss)
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_updates = 0;
  std::uint64_t exports_active = 0;
  std::uint64_t exports_idle = 0;
  std::uint64_t exports_evicted = 0;
  std::uint64_t exports_final = 0;
};

class FlowMonitor {
 public:
  FlowMonitor(sim::Simulator& sim, FlowMonitorConfig config);
  FlowMonitor(const FlowMonitor&) = delete;
  FlowMonitor& operator=(const FlowMonitor&) = delete;

  // Starts / stops the timeout sweep (stop also cancels the pending tick so
  // a drained simulator can terminate).
  void start();
  void stop();

  // One sampled record from switch `datapath_id` (the controller already
  // paid the parse/update CPU cost).
  void on_sample(std::uint64_t datapath_id, const of::FlowSample& sample, sim::SimTime now);

  // Exports every cached entry ("final"); the cache ends empty.
  void flush(sim::SimTime now);

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] const FlowMonitorCounters& counters() const { return counters_; }
  // Exported records in export order (deterministic: sweeps and flushes walk
  // the cache in key order).
  [[nodiscard]] const std::vector<FlowRecord>& exported() const { return exported_; }

  // datapath_id,src_ip,dst_ip,src_port,dst_port,protocol,packets,bytes,
  // first_us,last_us,reason — one row per exported record.
  void write_exports_csv(std::ostream& out) const;

  void reset();

 private:
  struct CacheEntry {
    std::uint64_t sampled_packets = 0;
    std::uint64_t sampled_bytes = 0;
    sim::SimTime first_seen;
    sim::SimTime last_seen;
  };
  using CacheKey = std::pair<std::uint64_t, net::FlowKey>;

  void sweep();
  void export_entry(const CacheKey& key, const CacheEntry& entry, const char* reason,
                    std::uint64_t& counter);
  void evict_lru();

  sim::Simulator& sim_;
  FlowMonitorConfig config_;
  FlowMonitorCounters counters_;
  // Ordered map: sweeps, evictions and flushes iterate deterministically.
  std::map<CacheKey, CacheEntry> cache_;
  // Next expected sample_seq per datapath (loss detection).
  std::map<std::uint64_t, std::uint32_t> next_seq_;
  std::vector<FlowRecord> exported_;
  sim::EventHandle sweep_event_;
  bool running_ = false;
};

}  // namespace sdnbuf::ctrl

// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--key=value`, `--key value` and boolean `--flag` forms; unknown
// flags are an error so typos don't silently fall back to defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdnbuf::util {

class CliFlags {
 public:
  // Parses argv. `known` lists accepted flag names (without "--"); passing an
  // unknown flag prints usage and returns std::nullopt via ok().
  CliFlags(int argc, const char* const* argv, const std::vector<std::string>& known);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& name, long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  // Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  bool ok_ = true;
  std::string error_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sdnbuf::util

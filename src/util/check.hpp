// Always-on invariant checks.
//
// The simulator is deterministic; an invariant violation is a programming
// error, so we fail fast with a message instead of limping on. Unlike
// `assert`, these stay enabled in release builds (the simulations are cheap
// enough that the cost is irrelevant, and silent corruption of experiment
// results is not acceptable).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sdnbuf::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line, msg ? " — " : "",
               msg ? msg : "");
  std::abort();
}

}  // namespace sdnbuf::util

#define SDNBUF_CHECK(expr)                                                      \
  do {                                                                          \
    if (!(expr)) ::sdnbuf::util::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SDNBUF_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) ::sdnbuf::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Fixed-size worker pool with one FIFO task queue.
//
// Built for embarrassingly parallel sweep fan-out: tasks are dequeued in
// strict submission order (single queue, single mutex), `wait_idle()` blocks
// until every submitted task has finished and rethrows the first exception a
// task raised, and the destructor drains the queue before joining. Determinism
// of results is the *caller's* job — workers may finish in any order, so
// callers write into pre-assigned slots and merge sequentially afterwards
// (see core::run_sweep).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdnbuf::util {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads);
  // Drains remaining queued tasks, then joins every worker.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; workers pick tasks up in submission (FIFO) order.
  void submit(std::function<void()> task);

  // Blocks until all submitted tasks have completed, then rethrows the
  // first exception any task threw (if one did). The pool stays usable.
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // hardware_concurrency(), with the zero-means-unknown case mapped to 1.
  [[nodiscard]] static unsigned default_parallelism();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / shutdown
  std::condition_variable idle_cv_;   // wait_idle waits for in_flight_ == 0
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace sdnbuf::util

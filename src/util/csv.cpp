#include "util/csv.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace sdnbuf::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double c : cells) s.push_back(format_double(c, 6));
  row_strings(s);
}

void CsvWriter::row(const std::string& label, const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size() + 1);
  s.push_back(label);
  for (double c : cells) s.push_back(format_double(c, 6));
  row_strings(s);
}

void TableWriter::set_columns(std::vector<std::string> names) { columns_ = std::move(names); }

void TableWriter::add_row(std::vector<std::string> cells) {
  SDNBUF_CHECK_MSG(columns_.empty() || cells.size() == columns_.size(),
                   "row width must match the header");
  rows_.push_back(std::move(cells));
}

void TableWriter::add_row(const std::string& label, const std::vector<double>& cells,
                          int precision) {
  std::vector<std::string> s;
  s.reserve(cells.size() + 1);
  s.push_back(label);
  for (double c : cells) s.push_back(format_double(c, precision));
  add_row(std::move(s));
}

void TableWriter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << "  ";
      out << std::setw(static_cast<int>(widths[i])) << (i == 0 ? std::left : std::right)
          << cells[i] << (i == 0 ? std::internal : std::internal);
    }
    out << '\n';
  };
  if (!columns_.empty()) {
    emit(columns_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

}  // namespace sdnbuf::util

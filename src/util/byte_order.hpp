// Big-endian (network byte order) serialization helpers.
//
// OpenFlow and all classic network headers are big-endian on the wire; these
// helpers read/write integers into byte buffers independent of host
// endianness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sdnbuf::util {

inline void put_be8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

inline void put_be16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_be64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_be32(out, static_cast<std::uint32_t>(v >> 32));
  put_be32(out, static_cast<std::uint32_t>(v));
}

[[nodiscard]] inline std::uint8_t get_be8(std::span<const std::uint8_t> in, std::size_t off) {
  return in[off];
}

[[nodiscard]] inline std::uint16_t get_be16(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint16_t>((std::uint16_t{in[off]} << 8) | in[off + 1]);
}

[[nodiscard]] inline std::uint32_t get_be32(std::span<const std::uint8_t> in, std::size_t off) {
  return (std::uint32_t{in[off]} << 24) | (std::uint32_t{in[off + 1]} << 16) |
         (std::uint32_t{in[off + 2]} << 8) | std::uint32_t{in[off + 3]};
}

[[nodiscard]] inline std::uint64_t get_be64(std::span<const std::uint8_t> in, std::size_t off) {
  return (std::uint64_t{get_be32(in, off)} << 32) | get_be32(in, off + 4);
}

// Appends `n` zero bytes (OpenFlow structures use explicit padding).
inline void put_pad(std::vector<std::uint8_t>& out, std::size_t n) {
  out.insert(out.end(), n, 0);
}

}  // namespace sdnbuf::util

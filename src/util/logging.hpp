// Minimal leveled logging.
//
// Thread-safe: parallel sweep workers log concurrently, so the level is an
// atomic and `log_line` serializes line emission under a mutex (whole lines
// never interleave). The level is a global knob set once by examples/benches
// (default: Warn, so tests and benches stay quiet).
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace sdnbuf::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();
[[nodiscard]] const char* log_level_name(LogLevel level);
// Inverse of log_level_name, case-insensitive ("trace".."error", "off");
// nullopt for anything else (the CLI layer reports the bad value).
[[nodiscard]] std::optional<LogLevel> log_level_from_name(const std::string& name);

// Emits one line to stderr: "[LEVEL] component: message".
void log_line(LogLevel level, const std::string& component, const std::string& message);

}  // namespace sdnbuf::util

// Streams `expr` only when the level is enabled (arguments are not evaluated
// otherwise).
#define SDNBUF_LOG(level, component, expr)                                \
  do {                                                                    \
    if (static_cast<int>(level) >= static_cast<int>(::sdnbuf::util::log_level())) { \
      std::ostringstream sdnbuf_log_os;                                   \
      sdnbuf_log_os << expr;                                              \
      ::sdnbuf::util::log_line(level, component, sdnbuf_log_os.str());    \
    }                                                                     \
  } while (0)

#define SDNBUF_TRACE(component, expr) SDNBUF_LOG(::sdnbuf::util::LogLevel::Trace, component, expr)
#define SDNBUF_DEBUG(component, expr) SDNBUF_LOG(::sdnbuf::util::LogLevel::Debug, component, expr)
#define SDNBUF_INFO(component, expr) SDNBUF_LOG(::sdnbuf::util::LogLevel::Info, component, expr)
#define SDNBUF_WARN(component, expr) SDNBUF_LOG(::sdnbuf::util::LogLevel::Warn, component, expr)
#define SDNBUF_ERROR(component, expr) SDNBUF_LOG(::sdnbuf::util::LogLevel::Error, component, expr)

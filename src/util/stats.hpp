// Streaming and batch summary statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace sdnbuf::util {

// Streaming accumulator (Welford's algorithm): mean/variance/min/max without
// storing samples. Suitable for per-run meters.
class Summary {
 public:
  void add(double x);

  // Merges another summary into this one (parallel Welford combination).
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  // Sample variance / standard deviation (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch statistics over stored samples; supports percentiles.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] Summary summary() const;
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace sdnbuf::util

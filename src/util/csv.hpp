// CSV and aligned-table writers used by the benchmark harness to emit the
// paper's figure series both machine-readably (CSV) and human-readably.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sdnbuf::util {

// Writes rows of string/number cells as RFC-4180-ish CSV.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& names) { row_strings(names); }
  void row_strings(const std::vector<std::string>& cells);
  void row(const std::vector<double>& cells);
  // Mixed row: first cell a label, rest numeric.
  void row(const std::string& label, const std::vector<double>& cells);

 private:
  static std::string escape(const std::string& s);
  std::ostream* out_;
};

// Collects rows, then renders an aligned, padded text table (what the bench
// binaries print to stdout).
class TableWriter {
 public:
  explicit TableWriter(std::string title) : title_(std::move(title)) {}

  void set_columns(std::vector<std::string> names);
  void add_row(std::vector<std::string> cells);
  void add_row(const std::string& label, const std::vector<double>& cells, int precision = 3);

  // Renders with column alignment and a rule under the header.
  void print(std::ostream& out) const;

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision.
[[nodiscard]] std::string format_double(double v, int precision);

}  // namespace sdnbuf::util

#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace sdnbuf::util {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
}

unsigned ThreadPool::default_parallelism() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sdnbuf::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sdnbuf::util {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return n_ == 0 ? 0.0 : min_; }

double Summary::max() const { return n_ == 0 ? 0.0 : max_; }

double Summary::sum() const { return sum_; }

double Samples::mean() const { return summary().mean(); }

double Samples::stddev() const { return summary().stddev(); }

double Samples::min() const { return summary().min(); }

double Samples::max() const { return summary().max(); }

double Samples::percentile(double p) const {
  SDNBUF_CHECK(p >= 0.0 && p <= 100.0);
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Samples::summary() const {
  Summary s;
  for (double x : xs_) s.add(x);
  return s;
}

}  // namespace sdnbuf::util

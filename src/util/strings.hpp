// Small string formatting helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>

namespace sdnbuf::util {

// "12.5 Mbps", "980.0 Kbps", ...
[[nodiscard]] std::string format_rate_bps(double bits_per_second);

// "1.5 KB", "2.0 MB", ...
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

// "1.234 ms", "56.7 us", ...
[[nodiscard]] std::string format_duration_ns(std::int64_t nanoseconds);

// Hex dump of at most `max_bytes` bytes, "ab cd ef ...".
[[nodiscard]] std::string hex_dump(const std::uint8_t* data, std::size_t size,
                                   std::size_t max_bytes = 64);

}  // namespace sdnbuf::util

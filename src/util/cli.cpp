#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace sdnbuf::util {

CliFlags::CliFlags(int argc, const char* const* argv, const std::vector<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string key;
    std::string value;
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      key = body;
      // `--key value` when the next token is not itself a flag; otherwise a
      // boolean `--flag`.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      ok_ = false;
      error_ = "unknown flag: --" + key;
      return;
    }
    values_[key] = std::move(value);
  }
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliFlags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

long long CliFlags::get_int(const std::string& name, long long fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sdnbuf::util

// Small-buffer-optimized move-only callable.
//
// `SmallFunction<R(Args...), N>` stores callables of up to N bytes inline
// (no heap allocation); larger or throwing-move callables fall back to a
// single heap allocation. Unlike `std::function` it is move-only, so it can
// hold move-only captures (e.g. a `std::vector` buffer or `unique_ptr`) and
// never pays for copyability it does not need. The simulator's event queue
// uses it as its callback type: typical simulation lambdas capture a few
// pointers and values and fit inline.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sdnbuf::util {

template <class Sig, std::size_t InlineBytes = 64>
class SmallFunction;

template <class R, class... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F, class Fn = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<Fn, SmallFunction> &&
                                     std::is_invocable_r_v<R, Fn&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }
  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;
  ~SmallFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) { return ops_->invoke(&storage_, std::forward<Args>(args)...); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  // True when the held callable lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= InlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* s, Args&&... args) -> R {
          return (*std::launder(static_cast<Fn*>(s)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          Fn* from = std::launder(static_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* s) noexcept { std::launder(static_cast<Fn*>(s))->~Fn(); },
        /*inline_storage=*/true,
    };
    return &ops;
  }

  template <class Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* s, Args&&... args) -> R {
          return (**std::launder(static_cast<Fn**>(s)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
        },
        [](void* s) noexcept { delete *std::launder(static_cast<Fn**>(s)); },
        /*inline_storage=*/false,
    };
    return &ops;
  }

  template <class F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  void move_from(SmallFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  static_assert(InlineBytes >= sizeof(void*), "inline buffer must hold at least a pointer");
  alignas(std::max_align_t) std::byte storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace sdnbuf::util

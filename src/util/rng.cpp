#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sdnbuf::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SDNBUF_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  SDNBUF_CHECK(mean > 0.0);
  // Avoid log(0).
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double scale, double sigma) {
  SDNBUF_CHECK(scale > 0.0);
  return scale * std::exp(sigma * normal());
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace sdnbuf::util

#include "util/strings.hpp"

#include <cmath>
#include <cstdio>

namespace sdnbuf::util {

namespace {

std::string format_with_unit(double value, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g %s", value, unit);
  return buf;
}

}  // namespace

std::string format_rate_bps(double bits_per_second) {
  if (bits_per_second >= 1e9) return format_with_unit(bits_per_second / 1e9, "Gbps");
  if (bits_per_second >= 1e6) return format_with_unit(bits_per_second / 1e6, "Mbps");
  if (bits_per_second >= 1e3) return format_with_unit(bits_per_second / 1e3, "Kbps");
  return format_with_unit(bits_per_second, "bps");
}

std::string format_bytes(std::uint64_t bytes) {
  const auto b = static_cast<double>(bytes);
  if (b >= 1e9) return format_with_unit(b / 1e9, "GB");
  if (b >= 1e6) return format_with_unit(b / 1e6, "MB");
  if (b >= 1e3) return format_with_unit(b / 1e3, "KB");
  return format_with_unit(b, "B");
}

std::string format_duration_ns(std::int64_t nanoseconds) {
  const auto ns = static_cast<double>(nanoseconds);
  if (std::abs(ns) >= 1e9) return format_with_unit(ns / 1e9, "s");
  if (std::abs(ns) >= 1e6) return format_with_unit(ns / 1e6, "ms");
  if (std::abs(ns) >= 1e3) return format_with_unit(ns / 1e3, "us");
  return format_with_unit(ns, "ns");
}

std::string hex_dump(const std::uint8_t* data, std::size_t size, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = size < max_bytes ? size : max_bytes;
  char buf[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof buf, "%02x", data[i]);
    if (i) out += ' ';
    out += buf;
  }
  if (n < size) out += " ...";
  return out;
}

}  // namespace sdnbuf::util

// Deterministic pseudo-random number generation.
//
// Experiments must be exactly reproducible across platforms and standard
// library implementations, so we implement both the generator
// (xoshiro256**, seeded via SplitMix64) and the distributions ourselves
// instead of relying on `std::*_distribution`, whose output is
// implementation-defined.
#pragma once

#include <cstdint>

namespace sdnbuf::util {

// splitmix64 finalizer: a tiny, high-quality stateless mixer — the same
// construction SplitMix64 uses per step. The repo's standard tool for
// deterministic hash-based choices (trace sampling, ECMP next-hop picks):
// mix64(key ^ seed) gives an unbiased selection that is reproducible across
// platforms and independent of container iteration order.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  // Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit integer.
  std::uint64_t next_u64();

  // Uniform in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Standard normal via Box-Muller (caches the second variate).
  double normal();

  // Normal with mean/stddev.
  double normal(double mean, double stddev);

  // Lognormal such that the *median* of the output is `scale` and the
  // underlying normal has standard deviation `sigma`. Used for service-time
  // jitter: multiply a nominal cost by `lognormal(1.0, sigma)`.
  double lognormal(double scale, double sigma);

  // Derives an independent stream (e.g. one per component) from this one.
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sdnbuf::util

// Insert-only open-addressing hash map.
//
// std::unordered_map pays one node allocation per insert, which dominates
// hot paths that insert once per simulated packet (the telemetry ledger
// does exactly that). This map stores slots contiguously with linear
// probing and never supports erase, so insertion is an amortized array
// write and lookups stay cache-friendly.
//
// Contract:
//   - no erase; clear() drops everything at once
//   - pointers/references returned by find()/try_emplace() are invalidated
//     by any later insertion (the table may grow)
//   - iteration order is unspecified (sort at export time if determinism
//     of output matters)
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"  // mix64: the canonical integer-key hash finalizer

namespace sdnbuf::util {

template <typename K, typename V, typename Hash>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Size the table so n entries stay under the load-factor ceiling.
    while (cap * kMaxLoadNum < n * kLoadDen) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  // Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] V* find(const K& key) {
    return const_cast<V*>(static_cast<const FlatMap*>(this)->find(key));
  }
  [[nodiscard]] const V* find(const K& key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = Hash{}(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.kv.first == key) return &s.kv.second;
    }
  }

  // Value for `key`, default-constructing it on first sight. Second member
  // reports whether an insertion happened (mirrors map::try_emplace).
  std::pair<V*, bool> try_emplace(const K& key) {
    if (slots_.empty() || (size_ + 1) * kLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = Hash{}(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.kv.first = key;
        ++size_;
        return {&s.kv.second, true};
      }
      if (s.kv.first == key) return {&s.kv.second, false};
    }
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  // at()/count() for test convenience; at() requires the key to exist.
  [[nodiscard]] const V& at(const K& key) const {
    const V* v = find(key);
    SDNBUF_CHECK_MSG(v != nullptr, "FlatMap::at: missing key");
    return *v;
  }
  [[nodiscard]] std::size_t count(const K& key) const { return find(key) != nullptr ? 1 : 0; }

  // Visits every (key, value) pair in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.used) f(s.kv.first, s.kv.second);
    }
  }

 private:
  struct Slot {
    std::pair<K, V> kv{};
    bool used = false;
  };
  static constexpr std::size_t kMinCapacity = 64;
  // Grow past 7/8 load: linear probing degrades sharply beyond that.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kLoadDen = 8;

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = new_capacity - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      for (std::size_t i = Hash{}(s.kv.first) & mask;; i = (i + 1) & mask) {
        if (!slots_[i].used) {
          slots_[i].used = true;
          slots_[i].kv = std::move(s.kv);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace sdnbuf::util

#include "util/logging.hpp"

#include <cstdio>

namespace sdnbuf::util {

namespace {
LogLevel g_level = LogLevel::Warn;
}

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", log_level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace sdnbuf::util

#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sdnbuf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
// Serializes line emission so concurrent sweep workers never interleave
// characters within a line.
std::mutex g_log_mutex;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_name(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  for (const LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                               LogLevel::Error, LogLevel::Off}) {
    std::string candidate = log_level_name(level);
    for (char& c : candidate) c = static_cast<char>(c - 'A' + 'a');
    if (lower == candidate) return level;
  }
  return std::nullopt;
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", log_level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace sdnbuf::util

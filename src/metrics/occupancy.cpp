#include "metrics/occupancy.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdnbuf::metrics {

void OccupancyTracker::set(std::uint64_t value, sim::SimTime now) {
  SDNBUF_CHECK_MSG(now >= last_change_, "occupancy observations must be time-ordered");
  unit_seconds_ += static_cast<double>(current_) * (now - last_change_).sec();
  last_change_ = now;
  current_ = value;
  max_ = std::max(max_, value);
  if (series_ != nullptr) series_->record(now, static_cast<double>(value));
}

void OccupancyTracker::decrement(sim::SimTime now) {
  SDNBUF_CHECK(current_ > 0);
  set(current_ - 1, now);
}

double OccupancyTracker::time_weighted_mean(sim::SimTime now) const {
  const double window = (now - start_).sec();
  if (window <= 0.0) return static_cast<double>(current_);
  const double integral =
      unit_seconds_ + static_cast<double>(current_) * (now - last_change_).sec();
  return integral / window;
}

void OccupancyTracker::reset(sim::SimTime now) {
  start_ = now;
  last_change_ = now;
  unit_seconds_ = 0.0;
  max_ = current_;
}

}  // namespace sdnbuf::metrics

// Per-flow delay bookkeeping, following the metric definitions of §III.B:
//
//   flow setup delay      first packet of a flow entering the switch ->
//                         that packet leaving the switch
//   controller delay      packet_in leaving the switch -> first
//                         flow_mod/packet_out for that flow arriving back
//   switch delay          flow setup delay - controller delay
//   flow forwarding delay first packet entering -> LAST packet of the flow
//                         leaving the switch (§V.B.4)
//
// The switch calls the `on_*` hooks as events happen; `finalize` turns the
// per-flow records into sample sets.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace sdnbuf::metrics {

// Flows tagged with this id (warm-up traffic) are not recorded.
inline constexpr std::uint64_t kUntrackedFlow = ~std::uint64_t{0};

class DelayRecorder {
 public:
  void on_first_packet_arrival(std::uint64_t flow_id, sim::SimTime t);
  void on_packet_departure(std::uint64_t flow_id, sim::SimTime t);
  void on_packet_in_sent(std::uint64_t flow_id, sim::SimTime t);
  void on_response_arrival(std::uint64_t flow_id, sim::SimTime t);
  void on_packet_delivered(std::uint64_t flow_id, sim::SimTime t);

  struct FlowRecord {
    std::optional<sim::SimTime> first_arrival;
    std::optional<sim::SimTime> first_departure;
    std::optional<sim::SimTime> last_departure;
    std::optional<sim::SimTime> pkt_in_sent;
    std::optional<sim::SimTime> response_arrival;
    std::uint64_t packets_departed = 0;
    std::uint64_t packets_delivered = 0;
  };

  struct Result {
    util::Samples setup_ms;        // Fig. 5 / Fig. 12(a)
    util::Samples controller_ms;   // Fig. 6
    util::Samples switch_ms;       // Fig. 7
    util::Samples forwarding_ms;   // Fig. 12(b)
    std::uint64_t flows_seen = 0;
    std::uint64_t flows_complete = 0;  // with both arrival and departure
    std::uint64_t packets_departed = 0;
    std::uint64_t packets_delivered = 0;
  };

  // Aggregates all flow records. Flows that never completed setup are
  // counted in `flows_seen` but contribute no samples.
  [[nodiscard]] Result finalize() const;

  [[nodiscard]] const FlowRecord* record(std::uint64_t flow_id) const;
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

 private:
  FlowRecord& flow(std::uint64_t flow_id) { return flows_[flow_id]; }
  std::unordered_map<std::uint64_t, FlowRecord> flows_;
};

}  // namespace sdnbuf::metrics

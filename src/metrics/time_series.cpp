#include "metrics/time_series.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"

namespace sdnbuf::metrics {

void TimeSeries::record(sim::SimTime t, double value) {
  SDNBUF_CHECK_MSG(points_.empty() || t >= points_.back().t,
                   "time series observations must be time-ordered");
  points_.push_back(Point{t, value});
}

double TimeSeries::value_at(sim::SimTime t, double fallback) const {
  // Last point with point.t <= t.
  const auto it = std::upper_bound(points_.begin(), points_.end(), t,
                                   [](sim::SimTime lhs, const Point& p) { return lhs < p.t; });
  if (it == points_.begin()) return fallback;
  return std::prev(it)->value;
}

double TimeSeries::time_weighted_mean(sim::SimTime start, sim::SimTime end) const {
  SDNBUF_CHECK(end > start);
  double integral = 0.0;
  sim::SimTime cursor = start;
  double current = value_at(start);
  for (const auto& p : points_) {
    if (p.t <= start) continue;
    if (p.t >= end) break;
    integral += current * (p.t - cursor).sec();
    cursor = p.t;
    current = p.value;
  }
  integral += current * (end - cursor).sec();
  return integral / (end - start).sec();
}

util::Summary TimeSeries::value_summary() const {
  util::Summary s;
  for (const auto& p : points_) s.add(p.value);
  return s;
}

std::vector<TimeSeries::Point> TimeSeries::resample_max(sim::SimTime start, sim::SimTime end,
                                                        std::size_t buckets) const {
  SDNBUF_CHECK(end > start && buckets >= 1);
  std::vector<Point> out;
  out.reserve(buckets);
  const double span = (end - start).sec();
  std::size_t next = 0;
  double carry = value_at(start);  // value in effect entering each bucket
  for (std::size_t b = 0; b < buckets; ++b) {
    const sim::SimTime lo =
        start + sim::SimTime::from_seconds(span * static_cast<double>(b) / buckets);
    const sim::SimTime hi =
        start + sim::SimTime::from_seconds(span * static_cast<double>(b + 1) / buckets);
    double peak = carry;
    while (next < points_.size() && points_[next].t < hi) {
      if (points_[next].t >= lo) peak = std::max(peak, points_[next].value);
      if (points_[next].t < hi) carry = points_[next].value;
      ++next;
    }
    peak = std::max(peak, carry);
    out.push_back(Point{hi, peak});
  }
  return out;
}

void TimeSeries::write_csv(std::ostream& out, const std::string& value_name) const {
  out << "t_ms," << value_name << '\n';
  for (const auto& p : points_) out << p.t.ms() << ',' << p.value << '\n';
}

}  // namespace sdnbuf::metrics

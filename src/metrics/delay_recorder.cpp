#include "metrics/delay_recorder.hpp"

namespace sdnbuf::metrics {

void DelayRecorder::on_first_packet_arrival(std::uint64_t flow_id, sim::SimTime t) {
  if (flow_id == kUntrackedFlow) return;
  auto& r = flow(flow_id);
  if (!r.first_arrival) r.first_arrival = t;
}

void DelayRecorder::on_packet_departure(std::uint64_t flow_id, sim::SimTime t) {
  if (flow_id == kUntrackedFlow) return;
  auto& r = flow(flow_id);
  if (!r.first_departure) r.first_departure = t;
  if (!r.last_departure || t > *r.last_departure) r.last_departure = t;
  ++r.packets_departed;
}

void DelayRecorder::on_packet_in_sent(std::uint64_t flow_id, sim::SimTime t) {
  if (flow_id == kUntrackedFlow) return;
  auto& r = flow(flow_id);
  if (!r.pkt_in_sent) r.pkt_in_sent = t;
}

void DelayRecorder::on_response_arrival(std::uint64_t flow_id, sim::SimTime t) {
  if (flow_id == kUntrackedFlow) return;
  auto& r = flow(flow_id);
  if (!r.response_arrival) r.response_arrival = t;
}

void DelayRecorder::on_packet_delivered(std::uint64_t flow_id, sim::SimTime t) {
  if (flow_id == kUntrackedFlow) return;
  (void)t;
  ++flow(flow_id).packets_delivered;
}

const DelayRecorder::FlowRecord* DelayRecorder::record(std::uint64_t flow_id) const {
  const auto it = flows_.find(flow_id);
  return it == flows_.end() ? nullptr : &it->second;
}

DelayRecorder::Result DelayRecorder::finalize() const {
  Result out;
  out.flows_seen = flows_.size();
  // One sample per complete flow: reserving up front avoids the realloc
  // churn profiled at 20 reps x 1000 flows in the sweep pooling paths.
  out.setup_ms.reserve(flows_.size());
  out.controller_ms.reserve(flows_.size());
  out.switch_ms.reserve(flows_.size());
  out.forwarding_ms.reserve(flows_.size());
  for (const auto& [id, r] : flows_) {
    out.packets_departed += r.packets_departed;
    out.packets_delivered += r.packets_delivered;
    if (!r.first_arrival || !r.first_departure) continue;
    ++out.flows_complete;
    const double setup = (*r.first_departure - *r.first_arrival).ms();
    out.setup_ms.add(setup);
    if (r.last_departure) {
      out.forwarding_ms.add((*r.last_departure - *r.first_arrival).ms());
    }
    if (r.pkt_in_sent && r.response_arrival) {
      const double controller = (*r.response_arrival - *r.pkt_in_sent).ms();
      out.controller_ms.add(controller);
      out.switch_ms.add(setup - controller);
    }
  }
  return out;
}

}  // namespace sdnbuf::metrics

// Append-only time series of (timestamp, value) observations.
//
// Used to record gauges over time — buffer occupancy during a burst, queue
// depths, windowed loads — so experiments can plot trajectories, not just
// end-of-run summaries. Observations must be appended in non-decreasing
// time order (the simulator guarantees that naturally).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace sdnbuf::metrics {

class TimeSeries {
 public:
  struct Point {
    sim::SimTime t;
    double value = 0.0;

    bool operator==(const Point&) const = default;
  };

  void record(sim::SimTime t, double value);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] const Point& front() const { return points_.front(); }
  [[nodiscard]] const Point& back() const { return points_.back(); }

  // Value in effect at time `t` (last observation at or before t);
  // `fallback` before the first observation.
  [[nodiscard]] double value_at(sim::SimTime t, double fallback = 0.0) const;

  // Step-function statistics over [start, end]: the series is treated as
  // piecewise constant between observations (matching how gauges behave).
  [[nodiscard]] double time_weighted_mean(sim::SimTime start, sim::SimTime end) const;
  [[nodiscard]] util::Summary value_summary() const;

  // Resamples onto a fixed grid of `buckets` intervals over [start, end],
  // taking the max value in effect within each bucket (peak-preserving).
  [[nodiscard]] std::vector<Point> resample_max(sim::SimTime start, sim::SimTime end,
                                                std::size_t buckets) const;

  // "t_ms,value" CSV lines (with header).
  void write_csv(std::ostream& out, const std::string& value_name) const;

  void clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

}  // namespace sdnbuf::metrics

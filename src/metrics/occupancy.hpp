// Time-weighted occupancy tracking for an integer gauge (buffer units in
// use, queue depths). Produces the paper's Fig. 8 / Fig. 13 statistics:
// time-weighted average and maximum number of units in use.
#pragma once

#include <cstdint>

#include "metrics/time_series.hpp"
#include "sim/time.hpp"

namespace sdnbuf::metrics {

class OccupancyTracker {
 public:
  // `now` is the observation start (integration begins here).
  explicit OccupancyTracker(sim::SimTime now = sim::SimTime::zero()) : last_change_(now) {}

  // Records that the gauge changed to `value` at time `now` (must be
  // non-decreasing in time).
  void set(std::uint64_t value, sim::SimTime now);

  void increment(sim::SimTime now) { set(current_ + 1, now); }
  void decrement(sim::SimTime now);

  [[nodiscard]] std::uint64_t current() const { return current_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }

  // Time-weighted mean over [start, now].
  [[nodiscard]] double time_weighted_mean(sim::SimTime now) const;

  // Restarts the statistics (keeps the current gauge value).
  void reset(sim::SimTime now);

  // Optionally mirrors every gauge change into a time series (for
  // trajectory plots); pass nullptr to stop.
  void set_series(TimeSeries* series) { series_ = series; }

 private:
  std::uint64_t current_ = 0;
  std::uint64_t max_ = 0;
  double unit_seconds_ = 0.0;  // integral of gauge over time
  sim::SimTime start_;
  sim::SimTime last_change_;
  TimeSeries* series_ = nullptr;
};

}  // namespace sdnbuf::metrics

#include "switchd/packet_buffer.hpp"

#include <algorithm>
#include <vector>

#include "openflow/constants.hpp"
#include "util/check.hpp"

namespace sdnbuf::sw {

PacketBufferManager::PacketBufferManager(sim::Simulator& sim, std::size_t capacity,
                                         sim::SimTime reclaim_delay)
    : sim_(sim), capacity_(capacity), reclaim_delay_(reclaim_delay), occupancy_(sim.now()) {
  SDNBUF_CHECK_MSG(capacity_ >= 1, "buffer needs at least one unit");
}

std::uint32_t PacketBufferManager::allocate_id() {
  // 31-bit ids can never collide with OFP_NO_BUFFER (0xffffffff).
  std::uint32_t id = next_id_;
  while (packets_.count(id) != 0) id = (id + 1) & 0x7fffffff;
  next_id_ = (id + 1) & 0x7fffffff;
  if (next_id_ == 0) next_id_ = 1;
  return id;
}

std::optional<std::uint32_t> PacketBufferManager::store(const net::Packet& packet) {
  if (mmu_ != nullptr) {
    // Shared-pool admission: one native buffer_id slot plus the frame's
    // cells. A rejection takes the same OpenFlow fallback the flat cap
    // takes — a full-frame packet_in — so delivery semantics are unchanged.
    if (!mmu_->try_admit(mmu_queue_, 1, packet.frame_size)) {
      ++rejected_full_;
      return std::nullopt;
    }
  } else if (units_in_use_ >= capacity_) {
    ++rejected_full_;
    return std::nullopt;
  }
  ++units_in_use_;
  occupancy_.set(units_in_use_, sim_.now());
  const std::uint32_t id = allocate_id();
  packets_.emplace(id, Stored{packet, sim_.now()});
  ++total_stored_;
  if (observer_ != nullptr) {
    observer_->on_buffer_store(id, packet, /*new_unit=*/true, /*flow_granularity=*/false,
                               sim_.now());
  }
  return id;
}

void PacketBufferManager::free_unit() {
  // The unit stays charged against capacity until deferred reclamation runs.
  // Under an MMU the native slot follows the same deferred schedule (the
  // packet's cells were released when it left the buffer).
  sim_.schedule(reclaim_delay_, [this]() {
    sim::ScopedProfileTag tag{"buffer_reclaim"};
    SDNBUF_CHECK(units_in_use_ > 0);
    --units_in_use_;
    occupancy_.set(units_in_use_, sim_.now());
    if (mmu_ != nullptr) mmu_->release(mmu_queue_, 1, 0);
  });
}

std::optional<net::Packet> PacketBufferManager::release(std::uint32_t buffer_id) {
  const auto it = packets_.find(buffer_id);
  if (it == packets_.end()) return std::nullopt;
  net::Packet packet = std::move(it->second.packet);
  if (instr_.residency_ms != nullptr) {
    instr_.residency_ms->record((sim_.now() - it->second.stored_at).ms());
  }
  packets_.erase(it);
  ++total_released_;
  if (mmu_ != nullptr) mmu_->release(mmu_queue_, 0, packet.frame_size);
  free_unit();
  if (observer_ != nullptr) {
    observer_->on_buffer_release(buffer_id, packet, sim_.now());
    observer_->on_buffer_unit_retired(buffer_id, sim_.now());
  }
  return packet;
}

const net::Packet* PacketBufferManager::peek(std::uint32_t buffer_id) const {
  const auto it = packets_.find(buffer_id);
  return it == packets_.end() ? nullptr : &it->second.packet;
}

std::size_t PacketBufferManager::expire_older_than(sim::SimTime cutoff) {
  std::vector<std::uint32_t> stale;
  for (const auto& [id, stored] : packets_) {
    if (stored.stored_at <= cutoff) stale.push_back(id);
  }
  std::sort(stale.begin(), stale.end());  // deterministic expiry order
  for (const auto id : stale) {
    const auto it = packets_.find(id);
    if (observer_ != nullptr) {
      observer_->on_buffer_expire(id, it->second.packet, sim_.now());
      observer_->on_buffer_unit_retired(id, sim_.now());
    }
    if (instr_.residency_ms != nullptr) {
      instr_.residency_ms->record((sim_.now() - it->second.stored_at).ms());
    }
    if (mmu_ != nullptr) mmu_->release(mmu_queue_, 0, it->second.packet.frame_size);
    packets_.erase(it);
    ++total_expired_;
    free_unit();
  }
  return stale.size();
}

}  // namespace sdnbuf::sw

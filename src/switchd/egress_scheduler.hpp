// Per-port egress scheduling — the paper's future-work direction (§VII):
// "we can design egress scheduling mechanisms combining with the ingress
// buffer mechanism proposed in this paper to provide QoS guarantee for
// different applications."
//
// The scheduler sits between the switch datapath and a port's egress link.
// Packets are classified into service classes by IP precedence (the top
// three bits of the TOS/DSCP byte) and queued per class with a byte limit
// (tail drop). Three policies:
//
//   Fifo               one queue, arrival order — behaviourally identical to
//                      sending straight to the link (the default, so the
//                      paper's experiments are unaffected)
//   StrictPriority     higher class always dequeues first
//   DeficitRoundRobin  byte-accurate weighted sharing via per-class quanta
//
// Dequeue pacing follows the link's serialization rate, so queueing happens
// here (observable per class) instead of invisibly inside the link.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "obs/instruments.hpp"
#include "sim/simulator.hpp"
#include "switchd/mmu/mmu.hpp"
#include "util/stats.hpp"

namespace sdnbuf::sw {

enum class SchedulerPolicy { Fifo, StrictPriority, DeficitRoundRobin };

[[nodiscard]] const char* scheduler_policy_name(SchedulerPolicy policy);

struct EgressSchedulerConfig {
  SchedulerPolicy policy = SchedulerPolicy::Fifo;
  // Number of service classes (IP precedence values >= num_classes-1 map to
  // the top class).
  unsigned num_classes = 4;
  // Per-class backlog cap; beyond it packets tail-drop.
  std::uint64_t queue_limit_bytes = 128 * 1024;
  // DeficitRoundRobin quanta (bytes added per round per class); sized to
  // num_classes, defaulting to 1500 each when empty.
  std::vector<std::uint32_t> drr_quanta;
};

class EgressScheduler {
 public:
  using DeliverFn = std::function<void(const net::Packet&)>;

  // `link` is the port's egress link; `deliver` fires at the far end.
  EgressScheduler(sim::Simulator& sim, EgressSchedulerConfig config, net::Link& link,
                  DeliverFn deliver);

  EgressScheduler(const EgressScheduler&) = delete;
  EgressScheduler& operator=(const EgressScheduler&) = delete;

  // Queues a packet for transmission; false (and a drop) if the class queue
  // is full — per the flat per-class byte limit, or, with an MMU attached,
  // per the shared-pool admission policy.
  bool enqueue(const net::Packet& packet);

  // Joins the switch's shared-memory MMU (DESIGN.md §16): registers one
  // accounted queue per service class and routes every admission decision
  // through the pool instead of the flat queue_limit_bytes check. Call
  // before traffic starts; null-safe never — attach once or not at all.
  void attach_mmu(mmu::SharedMemoryMmu& mmu, std::uint16_t port_no);

  // This packet's class-queue admission ceiling under the MMU policy
  // (0 without an MMU) — stamped into HopStamp::queue_threshold.
  [[nodiscard]] std::uint64_t mmu_threshold_for(const net::Packet& packet) const;

  // Fires when a dequeued packet is lost at the link (fault-plane outage, or
  // a link transmit-queue drop); `where` is the drop site label the
  // invariant registry uses ("link-down" / "link-queue"). Null = unobserved.
  using DropFn = std::function<void(const net::Packet& packet, const char* where)>;
  void set_drop_handler(DropFn on_drop) { on_drop_ = std::move(on_drop); }

  // Maps a packet to its service class under this configuration.
  [[nodiscard]] unsigned classify(const net::Packet& packet) const;

  struct ClassStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t link_dropped = 0;  // lost at the link after dequeue
    std::uint64_t bytes_sent = 0;
    util::Summary queue_delay_ms;  // enqueue -> start of transmission
  };

  // Metrics instruments (default-null bundle = disabled).
  void set_instruments(const obs::EgressInstruments& instruments) { instr_ = instruments; }

  [[nodiscard]] const ClassStats& class_stats(unsigned service_class) const;
  [[nodiscard]] std::uint64_t backlog_bytes(unsigned service_class) const;
  [[nodiscard]] std::uint64_t total_backlog_packets() const;
  [[nodiscard]] std::uint64_t total_backlog_bytes() const;
  // True high-water marks, updated at every enqueue — unlike the 10ms polled
  // gauge these cannot alias past a transient burst between snapshots.
  [[nodiscard]] std::uint64_t highwater_packets() const { return highwater_packets_; }
  [[nodiscard]] std::uint64_t highwater_bytes() const { return highwater_bytes_; }
  // Re-bases the high-water marks at the current backlog, so marks measured
  // after an experiment's reset_statistics() exclude warm-up bursts. Pure
  // counter writes — cannot perturb the event stream.
  void reset_highwater() {
    highwater_packets_ = total_backlog_packets();
    highwater_bytes_ = total_backlog_bytes();
  }
  [[nodiscard]] const EgressSchedulerConfig& config() const { return config_; }

 private:
  struct Queued {
    net::Packet packet;
    sim::SimTime enqueued_at;
  };
  struct ClassQueue {
    std::deque<Queued> packets;
    std::uint64_t backlog_bytes = 0;
    std::int64_t deficit = 0;  // DRR credit
    ClassStats stats;
  };

  void maybe_start();
  void transmit(unsigned service_class);
  // Picks the next class to serve, or -1 when everything is empty.
  [[nodiscard]] int select_class();

  sim::Simulator& sim_;
  EgressSchedulerConfig config_;
  net::Link& link_;
  DeliverFn deliver_;
  DropFn on_drop_;
  obs::EgressInstruments instr_;
  // Shared-memory MMU (null = legacy flat per-class byte limit). One
  // registered pool queue per service class, in class order.
  mmu::SharedMemoryMmu* mmu_ = nullptr;
  std::vector<mmu::SharedMemoryMmu::QueueHandle> mmu_queues_;
  // Packets on the wire, in transmission order. Link deliveries are strictly
  // FIFO (each frame's arrival time exceeds the previous frame's), so the
  // delivery callback can pop the front instead of capturing the packet —
  // which keeps the per-hop closure inside EventFn's inline buffer: the
  // steady-state forwarding path performs no heap allocation. Only valid
  // for same-shard links; shard-crossing deliveries run on the receiver's
  // shard and capture the packet by value instead of touching this state.
  std::deque<net::Packet> inflight_;
  std::vector<ClassQueue> queues_;
  unsigned drr_cursor_ = 0;
  // Whether the queue under the cursor already received its quantum during
  // this visit (reset whenever the cursor advances).
  bool drr_topped_up_ = false;
  bool busy_ = false;
  std::uint64_t highwater_packets_ = 0;
  std::uint64_t highwater_bytes_ = 0;
};

}  // namespace sdnbuf::sw

#include "switchd/egress_scheduler.hpp"

#include "util/check.hpp"

namespace sdnbuf::sw {

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::Fifo: return "fifo";
    case SchedulerPolicy::StrictPriority: return "strict-priority";
    case SchedulerPolicy::DeficitRoundRobin: return "deficit-round-robin";
  }
  return "?";
}

EgressScheduler::EgressScheduler(sim::Simulator& sim, EgressSchedulerConfig config,
                                 net::Link& link, DeliverFn deliver)
    : sim_(sim), config_(std::move(config)), link_(link), deliver_(std::move(deliver)) {
  SDNBUF_CHECK_MSG(config_.num_classes >= 1, "need at least one service class");
  if (config_.policy == SchedulerPolicy::Fifo) {
    config_.num_classes = 1;
    config_.drr_quanta.clear();
  }
  if (config_.drr_quanta.empty()) {
    config_.drr_quanta.assign(config_.num_classes, 1500);
  }
  SDNBUF_CHECK_MSG(config_.drr_quanta.size() == config_.num_classes,
                   "one DRR quantum per class");
  queues_.resize(config_.num_classes);
}

unsigned EgressScheduler::classify(const net::Packet& packet) const {
  if (config_.policy == SchedulerPolicy::Fifo) return 0;
  const unsigned precedence = (packet.ip.dscp >> 5) & 0x7;  // IP precedence bits
  return precedence < config_.num_classes ? precedence : config_.num_classes - 1;
}

void EgressScheduler::attach_mmu(mmu::SharedMemoryMmu& mmu, std::uint16_t port_no) {
  SDNBUF_CHECK_MSG(mmu_ == nullptr, "MMU already attached");
  mmu_ = &mmu;
  mmu_queues_.reserve(config_.num_classes);
  for (unsigned c = 0; c < config_.num_classes; ++c) {
    mmu_queues_.push_back(
        mmu.register_queue(mmu::QueueKind::Egress, port_no, c, config_.queue_limit_bytes));
  }
}

std::uint64_t EgressScheduler::mmu_threshold_for(const net::Packet& packet) const {
  if (mmu_ == nullptr) return 0;
  return mmu_->threshold(mmu_queues_[classify(packet)]);
}

bool EgressScheduler::enqueue(const net::Packet& packet) {
  const unsigned service_class = classify(packet);
  ClassQueue& queue = queues_[service_class];
  if (mmu_ != nullptr) {
    // Shared-pool admission: the native charge is the frame's bytes (the
    // legacy currency of queue_limit_bytes, which StaticPartition enforces
    // unchanged); the dynamic policies arbitrate the same bytes as cells.
    if (!mmu_->try_admit(mmu_queues_[service_class], packet.frame_size, packet.frame_size)) {
      ++queue.stats.dropped;
      return false;
    }
  } else if (queue.backlog_bytes + packet.frame_size > config_.queue_limit_bytes) {
    ++queue.stats.dropped;
    return false;
  }
  queue.packets.push_back(Queued{packet, sim_.now()});
  queue.backlog_bytes += packet.frame_size;
  ++queue.stats.enqueued;
  // Pure counters (no sim-state reads, no scheduling), so maintaining them
  // unconditionally cannot perturb the event sequence.
  const std::uint64_t backlog_pkts = total_backlog_packets();
  if (backlog_pkts > highwater_packets_) highwater_packets_ = backlog_pkts;
  const std::uint64_t backlog_b = total_backlog_bytes();
  if (backlog_b > highwater_bytes_) highwater_bytes_ = backlog_b;
  if (instr_.queue_depth != nullptr) {
    instr_.queue_depth->record(static_cast<double>(total_backlog_packets()));
  }
  maybe_start();
  return true;
}

int EgressScheduler::select_class() {
  switch (config_.policy) {
    case SchedulerPolicy::Fifo:
      return queues_[0].packets.empty() ? -1 : 0;
    case SchedulerPolicy::StrictPriority:
      // Highest class first.
      for (int c = static_cast<int>(config_.num_classes) - 1; c >= 0; --c) {
        if (!queues_[static_cast<unsigned>(c)].packets.empty()) return c;
      }
      return -1;
    case SchedulerPolicy::DeficitRoundRobin: {
      // Classic DRR: each queue gets its quantum once per visit of the
      // round-robin cursor and is served while its head packet fits the
      // accumulated credit; the cursor then moves on and the credit of
      // emptied queues is forfeited.
      bool any = false;
      for (const auto& q : queues_) any = any || !q.packets.empty();
      if (!any) return -1;
      // A head larger than its quantum needs several cursor round trips to
      // accumulate credit; bound the scan generously and fail loudly if the
      // configuration can never serve a packet (quantum of 0).
      for (int guard = 0; guard < 100000; ++guard) {
        ClassQueue& queue = queues_[drr_cursor_];
        if (queue.packets.empty()) {
          queue.deficit = 0;  // empty queues keep no credit
          drr_cursor_ = (drr_cursor_ + 1) % config_.num_classes;
          drr_topped_up_ = false;
          continue;
        }
        if (!drr_topped_up_) {
          queue.deficit += config_.drr_quanta[drr_cursor_];
          drr_topped_up_ = true;
        }
        if (queue.deficit >= static_cast<std::int64_t>(queue.packets.front().packet.frame_size)) {
          return static_cast<int>(drr_cursor_);
        }
        drr_cursor_ = (drr_cursor_ + 1) % config_.num_classes;
        drr_topped_up_ = false;
      }
      SDNBUF_CHECK_MSG(false, "DRR cannot accumulate enough credit — zero quantum?");
      return -1;
    }
  }
  return -1;
}

void EgressScheduler::maybe_start() {
  if (busy_) return;
  const int service_class = select_class();
  if (service_class < 0) return;
  transmit(static_cast<unsigned>(service_class));
}

void EgressScheduler::transmit(unsigned service_class) {
  ClassQueue& queue = queues_[service_class];
  SDNBUF_CHECK(!queue.packets.empty());
  Queued item = std::move(queue.packets.front());
  queue.packets.pop_front();
  queue.backlog_bytes -= item.packet.frame_size;
  ++queue.stats.dequeued;
  queue.stats.bytes_sent += item.packet.frame_size;
  const sim::SimTime waited = sim_.now() - item.enqueued_at;
  queue.stats.queue_delay_ms.add(waited.ms());
  if (mmu_ != nullptr) {
    // The frame leaves switch memory at dequeue regardless of its fate on
    // the link (a link-fault drop happens after the buffer is freed), and
    // the measured wait is the delay-driven policy's steering signal.
    mmu_->release(mmu_queues_[service_class], item.packet.frame_size, item.packet.frame_size);
    mmu_->record_queue_delay(mmu_queues_[service_class], waited);
  }
  if (config_.policy == SchedulerPolicy::DeficitRoundRobin) {
    queue.deficit -= item.packet.frame_size;
  }

  busy_ = true;
  net::Link::SendResult sent;
  if (!link_.shard_crossing()) {
    // Hot path: the delivery closure captures only `this` and pops the
    // in-flight FIFO, so it fits EventFn's inline buffer — no allocation
    // per hop. The packet is pushed only on Sent (dropped frames schedule
    // no delivery), keeping the ring in lockstep with the wire.
    sent = link_.send_frame(item.packet.frame_size, [this]() {
      net::Packet packet = std::move(inflight_.front());
      inflight_.pop_front();
      if (deliver_) deliver_(packet);
    });
    if (sent == net::Link::SendResult::Sent) inflight_.push_back(item.packet);
  } else {
    // Shard-crossing port: the callback runs on the receiver's shard, which
    // must not touch this scheduler's queues — carry the packet by value
    // (one allocation per crossing; crossings are the fabric minority).
    sent = link_.send_frame(item.packet.frame_size, [this, packet = item.packet]() {
      if (deliver_) deliver_(packet);
    });
  }
  if (sent != net::Link::SendResult::Sent) {
    ++queue.stats.link_dropped;
    if (on_drop_) {
      on_drop_(item.packet,
               sent == net::Link::SendResult::FaultDrop ? "link-down" : "link-queue");
    }
  }
  // The transmitter frees after the serialization time; queueing beyond that
  // happens here per class, not invisibly inside the link.
  const sim::SimTime tx = sim::transmission_time(item.packet.frame_size, link_.bandwidth_bps());
  sim_.schedule(tx, [this]() {
    sim::ScopedProfileTag tag{"egress_scheduler"};
    busy_ = false;
    maybe_start();
  });
}

const EgressScheduler::ClassStats& EgressScheduler::class_stats(unsigned service_class) const {
  SDNBUF_CHECK(service_class < queues_.size());
  return queues_[service_class].stats;
}

std::uint64_t EgressScheduler::backlog_bytes(unsigned service_class) const {
  SDNBUF_CHECK(service_class < queues_.size());
  return queues_[service_class].backlog_bytes;
}

std::uint64_t EgressScheduler::total_backlog_packets() const {
  std::uint64_t n = 0;
  for (const auto& q : queues_) n += q.packets.size();
  return n;
}

std::uint64_t EgressScheduler::total_backlog_bytes() const {
  std::uint64_t n = 0;
  for (const auto& q : queues_) n += q.backlog_bytes;
  return n;
}

}  // namespace sdnbuf::sw

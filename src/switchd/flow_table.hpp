// The switch flow table.
//
// Supports what the testbed and the discussion section need:
//   - priority-ordered wildcard matching (linear scan, highest priority wins)
//   - an exact-match fast path (hash on the encoded exact match) so the
//     reactive micro-flow rules the controller installs are O(1), mirroring
//     OVS's exact-match datapath cache
//   - idle and hard timeouts
//   - a capacity limit with a pluggable eviction policy (§VI.B: rules
//     "kicked out from the size limited flow table"; the related work —
//     LRU caching [13], flow-driven caching [17], adaptive caching [29] —
//     is all about this choice), reported with FlowRemovedReason::Eviction
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "openflow/actions.hpp"
#include "openflow/constants.hpp"
#include "openflow/match.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace sdnbuf::sw {

// Victim selection when the table is full.
enum class EvictionPolicy {
  Lru,     // least recently used (OVS-like default)
  Fifo,    // oldest installed
  Random,  // uniform random victim
};

[[nodiscard]] const char* eviction_policy_name(EvictionPolicy policy);

struct FlowEntry {
  of::Match match;
  std::uint16_t priority = 0;
  of::ActionList actions;
  std::uint64_t cookie = 0;
  std::uint16_t idle_timeout_s = 0;  // 0 = never
  std::uint16_t hard_timeout_s = 0;
  std::uint16_t flags = 0;  // kFlowModSendFlowRem etc.
  sim::SimTime installed_at;
  sim::SimTime last_used;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct RemovedEntry {
  FlowEntry entry;
  of::FlowRemovedReason reason = of::FlowRemovedReason::Delete;
};

class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity, EvictionPolicy policy = EvictionPolicy::Lru,
                     std::uint64_t rng_seed = 1);

  // Highest-priority matching entry, or nullptr. Updates last_used and the
  // packet/byte counters of the hit entry.
  [[nodiscard]] FlowEntry* lookup(const net::Packet& p, std::uint16_t in_port, sim::SimTime now);

  // Read-only lookup (no counter updates).
  [[nodiscard]] const FlowEntry* peek(const net::Packet& p, std::uint16_t in_port) const;

  struct AddResult {
    bool replaced = false;            // an identical (match, priority) entry existed
    std::vector<RemovedEntry> evicted;  // LRU victims if the table was full
  };

  // Installs / overwrites an entry (flow_mod ADD semantics).
  AddResult add(FlowEntry entry, sim::SimTime now);

  // flow_mod DELETE (non-strict: removes every entry subsumed by `match`) /
  // DELETE_STRICT (exact match+priority). Returns removed entries.
  std::vector<RemovedEntry> remove(const of::Match& match, std::optional<std::uint16_t> priority,
                                   bool strict);

  // Removes entries whose idle or hard timeout has elapsed at `now`.
  std::vector<RemovedEntry> expire(sim::SimTime now);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  // Iteration for diagnostics/tests (unspecified order).
  [[nodiscard]] std::vector<const FlowEntry*> entries() const;

 private:
  using EntryList = std::list<FlowEntry>;
  using EntryIt = EntryList::iterator;

  // Key for the exact-match fast path: the encoded bytes of an exact match.
  [[nodiscard]] static std::string exact_key(const of::Match& m);
  [[nodiscard]] static bool is_exact(const of::Match& m) { return m.wildcards == 0; }

  void unlink(EntryIt it);
  RemovedEntry take(EntryIt it, of::FlowRemovedReason reason);
  EntryIt find_victim();

  std::size_t capacity_;
  EvictionPolicy policy_;
  util::Rng rng_;
  EntryList entries_;
  std::unordered_map<std::string, EntryIt> exact_index_;
  std::vector<EntryIt> wildcard_entries_;  // scanned in priority order
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sdnbuf::sw

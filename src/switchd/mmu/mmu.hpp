// Shared-memory MMU: one per-switch memory pool arbitrated across every
// consumer of buffer space (DESIGN.md §16).
//
// Today's switch has two kinds of buffer memory, each with its own flat cap:
// the OpenFlow buffer (buffer_capacity unit slots, PacketBuffer/FlowBuffer)
// and the per-port egress class queues (queue_limit_bytes tail drop). A real
// ASIC backs both with the same SRAM, carved into fixed-size cells and
// shared under an admission policy. This class models that: every queue
// registers once, every enqueue asks `try_admit`, every dequeue / drop /
// expiry calls `release`, and a pluggable `SharingPolicy` decides who may
// grab how much of the pool.
//
// Accounting runs in two currencies per queue:
//  - native units mirror the legacy caps exactly (buffer_id slots for the
//    OpenFlow buffer, backlog bytes for egress queues) — this is what lets
//    StaticPartition reproduce the pre-MMU admission decisions bit-for-bit;
//  - cells (ceil(bytes / cell_bytes)) are the pool currency the dynamic
//    policies arbitrate: reserved minima per queue, one shared region, and
//    optional headroom the policies never admit into.
//
// Determinism: no RNG, no clock reads in the admission path; decisions are
// pure functions of occupancy. The simulator reference exists only so the
// conservation hooks can timestamp observer events.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "switchd/mmu/policy.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::sw::mmu {

struct MmuConfig {
  // Off by default: a disabled MMU is never constructed and every consumer
  // keeps its legacy flat cap — byte-identical to the pre-MMU build.
  bool enabled = false;
  PolicyKind policy = PolicyKind::StaticPartition;
  // Pool geometry. 256-byte cells are the common ASIC granularity; 8192
  // cells = 2 MiB of packet memory, in the range of a ToR's per-chip SRAM
  // scaled to this testbed's link speeds.
  std::uint64_t pool_cells = 8192;
  std::uint32_t cell_bytes = 256;
  // Slack the dynamic policies never admit into (PFC-style headroom).
  std::uint64_t headroom_cells = 0;
  // Per-queue reserved minimum (cells); occupancy below it always admits
  // under the dynamic policies.
  std::uint64_t reserved_cells = 0;
  // DT α per queue kind: egress class queues vs the OpenFlow buffer queue —
  // the knob that biases the pool toward data-plane backlog or toward
  // miss-path buffering.
  double alpha = 1.0;
  double buffer_alpha = 1.0;
  // Delay-driven steering (PolicyKind::DelayDriven only).
  double delay_target_ms = 1.0;
  // EWMA weight of each new delay sample in [0,1].
  double delay_ewma_weight = 0.2;
  double alpha_min = 0.02;
};

enum class QueueKind {
  OfBuffer,  // OpenFlow buffered units (PacketBufferManager / FlowBufferManager)
  Egress,    // one per (port, service class) egress queue
};

[[nodiscard]] const char* queue_kind_name(QueueKind kind);

class SharedMemoryMmu {
 public:
  using QueueHandle = std::uint32_t;
  static constexpr QueueHandle kNoQueue = 0xffffffffu;

  SharedMemoryMmu(sim::Simulator& sim, const MmuConfig& config, std::string name);

  SharedMemoryMmu(const SharedMemoryMmu&) = delete;
  SharedMemoryMmu& operator=(const SharedMemoryMmu&) = delete;

  // Registers one accounted queue. `native_cap` is the legacy flat cap in
  // the queue's native currency (unit slots or bytes); StaticPartition
  // enforces it, the dynamic policies replace it with the shared threshold.
  [[nodiscard]] QueueHandle register_queue(QueueKind kind, std::uint16_t port,
                                           unsigned service_class, std::uint64_t native_cap);

  // Admission: charge `native` legacy units and ceil(bytes/cell) pool cells,
  // or reject (false) leaving all accounting untouched. Either charge may be
  // zero — a subsequent packet of a buffered flow charges no native unit, a
  // deferred unit reclaim releases no bytes.
  [[nodiscard]] bool try_admit(QueueHandle q, std::uint64_t native, std::uint64_t bytes);

  // Releases a previous admission, in parts: the packet's cells come back
  // when it leaves the queue (dequeue / drop / expiry), the native unit when
  // its slot is reclaimed (which the buffer managers defer).
  void release(QueueHandle q, std::uint64_t native, std::uint64_t bytes);

  // Queueing-delay feedback from the egress scheduler at dequeue; folded
  // into the queue's EWMA for the delay-driven policy (cheap and harmless
  // under the other policies).
  void record_queue_delay(QueueHandle q, sim::SimTime delay);

  // Conservation hook (may be null). Fires on_mmu_admit / on_mmu_release
  // with post-transition occupancies so a ledger can cross-check them.
  void set_observer(verify::InvariantObserver* observer) { observer_ = observer; }

  // Statistics reset between experiment repetitions: zeroes the admit/reject
  // totals and re-bases the pool peak at the current occupancy. Pure counter
  // writes — never perturbs admission decisions or the event stream.
  void reset_counters();

  [[nodiscard]] std::uint64_t cells_for(std::uint64_t bytes) const {
    return (bytes + config_.cell_bytes - 1) / config_.cell_bytes;
  }

  [[nodiscard]] PolicyKind policy_kind() const { return policy_->kind(); }
  [[nodiscard]] const MmuConfig& config() const { return config_; }
  [[nodiscard]] std::size_t n_queues() const { return queues_.size(); }

  [[nodiscard]] std::uint64_t pool_cells_used() const { return pool_.used_cells; }
  [[nodiscard]] std::uint64_t peak_pool_cells() const { return peak_pool_cells_; }
  [[nodiscard]] std::uint64_t queue_cells(QueueHandle q) const;
  [[nodiscard]] std::uint64_t queue_native(QueueHandle q) const;
  // The queue's current admission ceiling under the active policy (cells for
  // the dynamic policies, the native cap for StaticPartition).
  [[nodiscard]] std::uint64_t threshold(QueueHandle q) const;

  [[nodiscard]] std::uint64_t total_admitted() const { return total_admitted_; }
  [[nodiscard]] std::uint64_t total_rejected() const { return total_rejected_; }
  [[nodiscard]] std::uint64_t rejected(QueueHandle q) const;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Queue {
    QueueKind kind = QueueKind::Egress;
    std::uint16_t port = 0;
    unsigned service_class = 0;
    QueueState state;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };

  // Keeps pool_.shared_used_cells in sync across a queue's cell transition.
  void apply_cells(Queue& queue, std::uint64_t cells, bool add);

  sim::Simulator& sim_;
  MmuConfig config_;
  std::string name_;
  std::unique_ptr<SharingPolicy> policy_;
  verify::InvariantObserver* observer_ = nullptr;
  std::vector<Queue> queues_;
  PoolState pool_;
  std::uint64_t peak_pool_cells_ = 0;
  std::uint64_t total_admitted_ = 0;
  std::uint64_t total_rejected_ = 0;
};

}  // namespace sdnbuf::sw::mmu

#include "switchd/mmu/mmu.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdnbuf::sw::mmu {

const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::OfBuffer: return "of-buffer";
    case QueueKind::Egress: return "egress";
  }
  return "?";
}

SharedMemoryMmu::SharedMemoryMmu(sim::Simulator& sim, const MmuConfig& config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  SDNBUF_CHECK_MSG(config_.cell_bytes >= 1, "MMU cells need a positive size");
  SDNBUF_CHECK_MSG(config_.pool_cells >= 1, "MMU pool needs at least one cell");
  SDNBUF_CHECK_MSG(config_.delay_target_ms > 0.0, "delay target must be positive");
  SDNBUF_CHECK_MSG(config_.delay_ewma_weight >= 0.0 && config_.delay_ewma_weight <= 1.0,
                   "EWMA weight must lie in [0,1]");
  switch (config_.policy) {
    case PolicyKind::StaticPartition: policy_ = make_static_partition(); break;
    case PolicyKind::DynamicThreshold: policy_ = make_dynamic_threshold(); break;
    case PolicyKind::DelayDriven:
      policy_ = make_delay_driven(
          DelayDrivenParams{config_.delay_target_ms, config_.alpha_min});
      break;
  }
  pool_.pool_cells = config_.pool_cells;
  pool_.headroom_cells = config_.headroom_cells;
}

SharedMemoryMmu::QueueHandle SharedMemoryMmu::register_queue(QueueKind kind, std::uint16_t port,
                                                             unsigned service_class,
                                                             std::uint64_t native_cap) {
  Queue queue;
  queue.kind = kind;
  queue.port = port;
  queue.service_class = service_class;
  queue.state.native_cap = native_cap;
  queue.state.reserved_cells = config_.reserved_cells;
  queue.state.alpha = kind == QueueKind::OfBuffer ? config_.buffer_alpha : config_.alpha;
  pool_.reserved_total += queue.state.reserved_cells;
  queues_.push_back(queue);
  return static_cast<QueueHandle>(queues_.size() - 1);
}

void SharedMemoryMmu::apply_cells(Queue& queue, std::uint64_t cells, bool add) {
  QueueState& state = queue.state;
  const std::uint64_t shared_before =
      state.cells - std::min(state.cells, state.reserved_cells);
  if (add) {
    state.cells += cells;
    pool_.used_cells += cells;
  } else {
    SDNBUF_CHECK_MSG(state.cells >= cells && pool_.used_cells >= cells,
                     "MMU cell release exceeds occupancy");
    state.cells -= cells;
    pool_.used_cells -= cells;
  }
  const std::uint64_t shared_after =
      state.cells - std::min(state.cells, state.reserved_cells);
  pool_.shared_used_cells += shared_after;
  SDNBUF_CHECK(pool_.shared_used_cells >= shared_before);
  pool_.shared_used_cells -= shared_before;
  if (pool_.used_cells > peak_pool_cells_) peak_pool_cells_ = pool_.used_cells;
}

bool SharedMemoryMmu::try_admit(QueueHandle q, std::uint64_t native, std::uint64_t bytes) {
  SDNBUF_CHECK(q < queues_.size());
  Queue& queue = queues_[q];
  const std::uint64_t cells = cells_for(bytes);
  if (!policy_->admit(queue.state, pool_, native, cells)) {
    ++queue.rejected;
    ++total_rejected_;
    return false;
  }
  queue.state.native_occ += native;
  apply_cells(queue, cells, /*add=*/true);
  ++queue.admitted;
  ++total_admitted_;
  if (observer_ != nullptr) {
    observer_->on_mmu_admit(q, native, cells, queue.state.cells, pool_.used_cells, sim_.now());
  }
  return true;
}

void SharedMemoryMmu::release(QueueHandle q, std::uint64_t native, std::uint64_t bytes) {
  SDNBUF_CHECK(q < queues_.size());
  Queue& queue = queues_[q];
  const std::uint64_t cells = cells_for(bytes);
  SDNBUF_CHECK_MSG(queue.state.native_occ >= native, "MMU native release exceeds occupancy");
  queue.state.native_occ -= native;
  apply_cells(queue, cells, /*add=*/false);
  if (observer_ != nullptr) {
    observer_->on_mmu_release(q, native, cells, queue.state.cells, pool_.used_cells, sim_.now());
  }
}

void SharedMemoryMmu::record_queue_delay(QueueHandle q, sim::SimTime delay) {
  SDNBUF_CHECK(q < queues_.size());
  QueueState& state = queues_[q].state;
  const double w = config_.delay_ewma_weight;
  state.delay_ewma_ms = (1.0 - w) * state.delay_ewma_ms + w * delay.ms();
}

void SharedMemoryMmu::reset_counters() {
  total_admitted_ = 0;
  total_rejected_ = 0;
  peak_pool_cells_ = pool_.used_cells;
  for (Queue& queue : queues_) {
    queue.admitted = 0;
    queue.rejected = 0;
  }
}

std::uint64_t SharedMemoryMmu::queue_cells(QueueHandle q) const {
  SDNBUF_CHECK(q < queues_.size());
  return queues_[q].state.cells;
}

std::uint64_t SharedMemoryMmu::queue_native(QueueHandle q) const {
  SDNBUF_CHECK(q < queues_.size());
  return queues_[q].state.native_occ;
}

std::uint64_t SharedMemoryMmu::threshold(QueueHandle q) const {
  SDNBUF_CHECK(q < queues_.size());
  return policy_->threshold(queues_[q].state, pool_);
}

std::uint64_t SharedMemoryMmu::rejected(QueueHandle q) const {
  SDNBUF_CHECK(q < queues_.size());
  return queues_[q].rejected;
}

}  // namespace sdnbuf::sw::mmu

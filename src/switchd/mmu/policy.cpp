#include "switchd/mmu/policy.hpp"

#include <algorithm>
#include <cmath>

namespace sdnbuf::sw::mmu {

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::StaticPartition: return "static";
    case PolicyKind::DynamicThreshold: return "dynamic-threshold";
    case PolicyKind::DelayDriven: return "delay-driven";
  }
  return "?";
}

namespace {

// Shared region still unclaimed: (pool − headroom − Σreserved) − shared-in-use,
// clamped at every subtraction (reservations may legitimately oversubscribe a
// small pool; DT then degenerates to reserved-only admission).
[[nodiscard]] std::uint64_t remaining_shared(const PoolState& pool) {
  std::uint64_t shared = pool.pool_cells;
  shared -= std::min(shared, pool.headroom_cells);
  shared -= std::min(shared, pool.reserved_total);
  return shared - std::min(shared, pool.shared_used_cells);
}

[[nodiscard]] std::uint64_t dt_threshold(const QueueState& q, const PoolState& pool,
                                         double alpha) {
  const double allowance = alpha * static_cast<double>(remaining_shared(pool));
  return q.reserved_cells + static_cast<std::uint64_t>(allowance);
}

// Pool capacity check shared by both dynamic policies: never admit into the
// headroom slack.
[[nodiscard]] bool pool_fits(const PoolState& pool, std::uint64_t cells) {
  const std::uint64_t admissible =
      pool.pool_cells - std::min(pool.pool_cells, pool.headroom_cells);
  return pool.used_cells + cells <= admissible;
}

class StaticPartition final : public SharingPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::StaticPartition; }

  [[nodiscard]] bool admit(const QueueState& q, const PoolState& pool, std::uint64_t native,
                           std::uint64_t cells) const override {
    (void)pool;
    (void)cells;
    // The legacy flat split, expressed as one unified test. With native
    // charge 1 against a unit cap this is exactly `units_in_use < capacity`
    // (the buffer managers' gate); with native charge = frame bytes against
    // queue_limit_bytes it is exactly `backlog + frame <= limit` (the egress
    // tail-drop gate); with native charge 0 (a subsequent packet of an
    // already-buffered flow) it always admits, matching the flow buffer's
    // unconditional append. The pool is tracked for observability but never
    // enforced — partitions cannot contend.
    return q.native_occ + native <= q.native_cap;
  }

  [[nodiscard]] std::uint64_t threshold(const QueueState& q, const PoolState& pool) const override {
    (void)pool;
    return q.native_cap;
  }
};

class DynamicThreshold final : public SharingPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::DynamicThreshold; }

  [[nodiscard]] bool admit(const QueueState& q, const PoolState& pool, std::uint64_t native,
                           std::uint64_t cells) const override {
    (void)native;
    if (!pool_fits(pool, cells)) return false;
    // DT: T = reserved + α · (shared region − shared in use). Occupancy below
    // the reserve always admits (that is what a reserve means); beyond it the
    // queue competes for the shared region under the collapsing threshold.
    return q.cells + cells <= dt_threshold(q, pool, q.alpha);
  }

  [[nodiscard]] std::uint64_t threshold(const QueueState& q, const PoolState& pool) const override {
    return dt_threshold(q, pool, q.alpha);
  }
};

class DelayDriven final : public SharingPolicy {
 public:
  explicit DelayDriven(DelayDrivenParams params) : params_(params) {}

  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::DelayDriven; }

  [[nodiscard]] bool admit(const QueueState& q, const PoolState& pool, std::uint64_t native,
                           std::uint64_t cells) const override {
    (void)native;
    if (!pool_fits(pool, cells)) return false;
    return q.cells + cells <= dt_threshold(q, pool, effective_alpha(q));
  }

  [[nodiscard]] std::uint64_t threshold(const QueueState& q, const PoolState& pool) const override {
    return dt_threshold(q, pool, effective_alpha(q));
  }

 private:
  // BShare's steering signal: once the measured queueing delay exceeds the
  // target, the queue's packets are aging faster than its drain — giving it
  // more pool memory only lengthens the line. Cut its α in proportion so the
  // shared region migrates toward queues that still drain fast; queues at or
  // under the target keep their full DT appetite.
  [[nodiscard]] double effective_alpha(const QueueState& q) const {
    const double pressure = std::max(1.0, q.delay_ewma_ms / params_.delay_target_ms);
    return std::clamp(q.alpha / pressure, params_.alpha_min, q.alpha);
  }

  DelayDrivenParams params_;
};

}  // namespace

std::unique_ptr<SharingPolicy> make_static_partition() {
  return std::make_unique<StaticPartition>();
}

std::unique_ptr<SharingPolicy> make_dynamic_threshold() {
  return std::make_unique<DynamicThreshold>();
}

std::unique_ptr<SharingPolicy> make_delay_driven(DelayDrivenParams params) {
  return std::make_unique<DelayDriven>(params);
}

}  // namespace sdnbuf::sw::mmu

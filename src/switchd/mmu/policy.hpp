// Pluggable buffer-sharing (admission) policies for the shared-memory MMU.
//
// Real datacenter ASICs arbitrate one memory pool across every port/queue of
// the switch; the admission rule — how much of the shared region one queue
// may grab — is the policy knob that separates generations of silicon:
//
//   StaticPartition    every queue is capped at its own fixed slice and the
//                      pool is never contended. This reproduces the repo's
//                      legacy flat limits (buffer_capacity units, per-class
//                      queue_limit_bytes) decision-for-decision, which is
//                      what keeps the pre-MMU byte-identity contract.
//   DynamicThreshold   classic DT (Choudhury & Hahne): a queue may occupy up
//                      to α · (shared region − shared in use). Self-tuning:
//                      the threshold collapses as the pool fills, leaving
//                      headroom for newly active queues.
//   DelayDriven        BShare-style sharing (PAPERS.md): the DT α is steered
//                      by the measured per-queue queueing delay — queues
//                      whose packets are aging get their appetite cut, so
//                      pool memory migrates to queues that still drain fast.
//
// Policies are pure functions of (queue state, pool state): no RNG and no
// clock reads, so every admission decision is deterministic and replayable.
#pragma once

#include <cstdint>
#include <memory>

namespace sdnbuf::sw::mmu {

enum class PolicyKind { StaticPartition, DynamicThreshold, DelayDriven };

[[nodiscard]] const char* policy_kind_name(PolicyKind kind);

// Per-queue accounting as the policy sees it (owned by SharedMemoryMmu).
// Every queue tracks two currencies:
//  - native: the legacy limit's unit — buffer_id slots for the OpenFlow
//    buffer queue, backlog bytes for an egress class queue. StaticPartition
//    admits on this and nothing else.
//  - cells:  the pool currency (ceil(bytes / cell_bytes)), what DT and
//    delay-driven sharing arbitrate.
struct QueueState {
  std::uint64_t native_occ = 0;
  std::uint64_t native_cap = 0;
  std::uint64_t cells = 0;
  std::uint64_t reserved_cells = 0;
  double alpha = 1.0;
  // EWMA of measured queueing delay (ms), fed by the egress scheduler at
  // dequeue; stays 0 for queues with no delay signal (the OpenFlow buffer).
  double delay_ewma_ms = 0.0;
};

struct PoolState {
  std::uint64_t pool_cells = 0;         // total pool size
  std::uint64_t headroom_cells = 0;     // slack never admitted into
  std::uint64_t used_cells = 0;         // current total occupancy
  std::uint64_t shared_used_cells = 0;  // Σ max(0, q.cells − q.reserved)
  std::uint64_t reserved_total = 0;     // Σ q.reserved
};

class SharingPolicy {
 public:
  virtual ~SharingPolicy() = default;

  [[nodiscard]] virtual PolicyKind kind() const = 0;

  // Admission decision for a packet charging `native` legacy units and
  // `cells` pool cells against queue `q`.
  [[nodiscard]] virtual bool admit(const QueueState& q, const PoolState& pool,
                                   std::uint64_t native, std::uint64_t cells) const = 0;

  // The queue's current admission ceiling, for telemetry stamps and gauges.
  // DT/delay-driven report it in cells (reserved + shared allowance);
  // StaticPartition's only ceiling is its native cap, reported as-is.
  [[nodiscard]] virtual std::uint64_t threshold(const QueueState& q,
                                                const PoolState& pool) const = 0;
};

// DelayDriven knobs (a superset of DT's single α, which both dynamic
// policies take from the queue's registration).
struct DelayDrivenParams {
  double delay_target_ms = 1.0;  // EWMA at/below this leaves α untouched
  double alpha_min = 0.02;       // floor: a starved queue keeps its reserve +
                                 // a sliver of shared space
};

[[nodiscard]] std::unique_ptr<SharingPolicy> make_static_partition();
[[nodiscard]] std::unique_ptr<SharingPolicy> make_dynamic_threshold();
[[nodiscard]] std::unique_ptr<SharingPolicy> make_delay_driven(DelayDrivenParams params);

}  // namespace sdnbuf::sw::mmu

// Flow-granularity buffer manager: the paper's *proposed* mechanism
// (§V, Algorithms 1-2).
//
// All miss-match packets of one flow share a single buffer_id derived from
// the 5-tuple (src_ip, src_port, dst_ip, dst_port, protocol). Only the first
// packet of a flow triggers a packet_in; subsequent miss-match packets are
// buffered silently (Algorithm 1, lines 10-11). One packet_out releases and
// forwards *every* buffered packet of the flow in order (Algorithm 2,
// lines 4-9), and a response timeout triggers a re-request (line 12-13).
//
// Unit accounting follows the paper's Fig. 13 semantics: a *buffer unit* is
// a buffer_id slot. The packet-granularity mechanism gives every packet an
// exclusive buffer_id (one unit per packet); here all miss-match packets of
// a flow share one buffer_id, so one unit per flow — the whole-flow release
// and the shared slot are why the proposed mechanism "improves buffer
// utilization by 71.6%". Released units pass through deferred reclamation
// like the packet-granularity ones.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "metrics/occupancy.hpp"
#include "net/flow_key.hpp"
#include "net/packet.hpp"
#include "obs/instruments.hpp"
#include "sim/simulator.hpp"
#include "switchd/mmu/mmu.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::sw {

class FlowBufferManager {
 public:
  FlowBufferManager(sim::Simulator& sim, std::size_t capacity, sim::SimTime reclaim_delay);

  // Invariant-checking hook (may be null; set by Switch::set_invariant_observer).
  void set_observer(verify::InvariantObserver* observer) { observer_ = observer; }

  // Joins the switch's shared-memory MMU (DESIGN.md §16). A flow's first
  // packet charges one native unit (the shared buffer_id slot) plus its
  // cells; subsequent packets charge cells only — under the dynamic
  // policies even packets of an already-buffered flow contend for pool
  // memory, which the flat per-slot cap never modeled.
  void attach_mmu(mmu::SharedMemoryMmu& mmu, mmu::SharedMemoryMmu::QueueHandle queue) {
    mmu_ = &mmu;
    mmu_queue_ = queue;
  }

  // Metrics instruments (default-null bundle = disabled).
  void set_instruments(const obs::BufferInstruments& instruments) { instr_ = instruments; }

  struct StoreResult {
    std::uint32_t buffer_id = 0;
    bool first_of_flow = false;  // true => the caller must send a packet_in
    std::size_t queued = 0;      // packets of this flow now buffered
  };

  // Total packets currently queued across all flows.
  [[nodiscard]] std::size_t packets_buffered() const { return packets_buffered_; }

  // Algorithm 1, lines 5-11: buffers the packet under the flow's shared
  // buffer_id, creating it for the first packet. nullopt when the buffer is
  // exhausted (caller falls back to a full-frame packet_in). `in_port` is
  // remembered per flow so a reconnect can rebuild the re-request.
  std::optional<StoreResult> store(const net::Packet& packet, std::uint16_t in_port = 0);

  // Algorithm 2, lines 4-9: removes and returns all buffered packets of the
  // flow in arrival order; empty if the id is unknown.
  std::vector<net::Packet> release_all(std::uint32_t buffer_id);

  // Lookup the shared buffer_id of a flow (Algorithm 1, line 5); nullopt if
  // the flow has no buffered packets.
  [[nodiscard]] std::optional<std::uint32_t> buffer_id_of(const net::FlowKey& key) const;

  // When the flow's last packet_in was sent, for the resend timeout
  // (Algorithm 1, line 12). Updated via mark_request_sent.
  [[nodiscard]] std::optional<sim::SimTime> last_request_at(std::uint32_t buffer_id) const;
  void mark_request_sent(std::uint32_t buffer_id, sim::SimTime when);

  // A representative packet of the flow for building a resend packet_in.
  [[nodiscard]] const net::Packet* front_packet(std::uint32_t buffer_id) const;

  // Ingress port of the flow's buffered packets (0 if the id is unknown).
  [[nodiscard]] std::uint16_t in_port_of(std::uint32_t buffer_id) const;

  // Re-requests already sent for this unit (Algorithm 1 line 13 repeats);
  // drives the capped exponential backoff.
  [[nodiscard]] unsigned resend_count(std::uint32_t buffer_id) const;
  void record_resend(std::uint32_t buffer_id);
  // Forgets request history (resend count, last request time), as after a
  // reconnect when the re-request protocol restarts from scratch.
  void reset_request_state(std::uint32_t buffer_id);

  // Ids of all units currently holding packets (deterministic order), for
  // post-reconnect reconciliation.
  [[nodiscard]] std::vector<std::uint32_t> live_unit_ids() const;

  // Drops entire flows whose *first* buffered packet is older than `cutoff`;
  // returns the number of packets dropped.
  std::size_t expire_older_than(sim::SimTime cutoff);

  // Drops one unit and its packets (resend cap reached, or the unit turned
  // out to be unrecoverable); returns the number of packets dropped.
  std::size_t expire_unit(std::uint32_t buffer_id);

  // Drops everything (fail-secure degradation); returns packets dropped.
  std::size_t expire_all() { return expire_older_than(sim_.now()); }

  [[nodiscard]] std::size_t units_in_use() const { return units_in_use_; }
  [[nodiscard]] std::size_t flows_buffered() const { return flows_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::uint64_t total_stored() const { return total_stored_; }
  [[nodiscard]] std::uint64_t total_released() const { return total_released_; }
  [[nodiscard]] std::uint64_t total_expired() const { return total_expired_; }
  [[nodiscard]] std::uint64_t rejected_full() const { return rejected_full_; }

  [[nodiscard]] metrics::OccupancyTracker& occupancy() { return occupancy_; }
  [[nodiscard]] const metrics::OccupancyTracker& occupancy() const { return occupancy_; }

 private:
  struct FlowState {
    std::uint32_t buffer_id = 0;
    std::uint16_t in_port = 0;
    unsigned resends = 0;
    std::deque<net::Packet> packets;
    sim::SimTime first_stored_at;
    std::optional<sim::SimTime> last_request_at;
  };

  // Derives the shared buffer_id from the 5-tuple hash, probing past ids
  // already used by other live flows.
  std::uint32_t derive_id(const net::FlowKey& key) const;
  void free_unit();

  sim::Simulator& sim_;
  std::size_t capacity_;
  sim::SimTime reclaim_delay_;
  verify::InvariantObserver* observer_ = nullptr;
  obs::BufferInstruments instr_;
  mmu::SharedMemoryMmu* mmu_ = nullptr;
  mmu::SharedMemoryMmu::QueueHandle mmu_queue_ = mmu::SharedMemoryMmu::kNoQueue;
  std::size_t units_in_use_ = 0;     // buffer_id slots incl. pending reclaim
  std::size_t packets_buffered_ = 0;
  std::unordered_map<net::FlowKey, FlowState> flows_;
  std::unordered_map<std::uint32_t, net::FlowKey> id_to_flow_;
  metrics::OccupancyTracker occupancy_;
  std::uint64_t total_stored_ = 0;
  std::uint64_t total_released_ = 0;
  std::uint64_t total_expired_ = 0;
  std::uint64_t rejected_full_ = 0;
};

}  // namespace sdnbuf::sw
